// Complexity bench (google-benchmark) — per-arrival work of the on-line
// algorithms (the Section-4.2 simplicity argument).
//
// The Delay Guaranteed server answers each arrival from a precomputed
// table (O(1), no decisions); the dyadic server must maintain its stack
// and compute a dyadic subinterval per arrival (O(1) amortized but with
// real work: log/pow and window popping).
#include <benchmark/benchmark.h>

#include <vector>

#include "merging/dyadic.h"
#include "online/delay_guaranteed.h"
#include "sim/arrivals.h"

namespace {

using smerge::Index;

void BM_DelayGuaranteedPerArrival(benchmark::State& state) {
  const smerge::DelayGuaranteedOnline dg(100);
  const Index horizon = 100'000;
  Index t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dg.stream_length(t, horizon));
    t = (t + 1) % horizon;
  }
}
BENCHMARK(BM_DelayGuaranteedPerArrival);

void BM_DyadicPerArrival(benchmark::State& state) {
  const std::vector<double> arrivals =
      smerge::sim::poisson_arrivals(0.005, 200.0, 1);
  std::size_t i = 0;
  smerge::merging::DyadicMerger merger(1.0, {});
  for (auto _ : state) {
    if (i == arrivals.size()) {
      // Restart with a fresh merger once the trace is exhausted (pause the
      // timer so the reset is not billed to the per-arrival figure).
      state.PauseTiming();
      merger = smerge::merging::DyadicMerger(1.0, {});
      i = 0;
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(merger.arrive(arrivals[i++]));
  }
}
BENCHMARK(BM_DyadicPerArrival);

void BM_DelayGuaranteedSetup(benchmark::State& state) {
  const Index L = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(smerge::DelayGuaranteedOnline(L));
  }
  state.SetComplexityN(static_cast<std::int64_t>(L));
}
BENCHMARK(BM_DelayGuaranteedSetup)->RangeMultiplier(4)->Range(64, 65536)->Complexity();

void BM_OnlineCostQuery(benchmark::State& state) {
  const smerge::DelayGuaranteedOnline dg(1000);
  Index n = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dg.cost(n));
    n = n % 10'000'000 + 1;
  }
}
BENCHMARK(BM_OnlineCostQuery);

}  // namespace
