// Section 3.2 worked examples — optimal full costs and stream counts.
//
// The paper's numbers:
//   F(15, 8)  = 36 with s = 1        (Fig. 3 instance)
//   F(15, 14) = 64 with s = 2        (30 + 17 + 17)
//   L=4, n=16: s0=4, s1=5, F(4,16,4)=40, F(4,16,5)=38, F(4,16,6)=38
// plus the Theorem-12 machinery (h, F_h, s1) for each instance.
#include <iostream>

#include "core/full_cost.h"
#include "util/table.h"

int main() {
  using namespace smerge;

  std::cout << "Section 3.2: optimal full costs (Theorem 12) vs exhaustive scan\n\n";
  util::TextTable table({"L", "n", "h", "F_h", "s0", "s1", "s*", "F(L,n)",
                         "scan", "partition DP"});
  bool ok = true;
  for (const auto& [L, n] : std::vector<std::pair<Index, Index>>{
           {15, 8}, {15, 14}, {4, 16}, {2, 9}, {1, 10}, {8, 100}, {100, 1000}}) {
    const int h = theorem12_index(L);
    const StreamPlan plan = optimal_stream_count(L, n);
    const Cost scan = full_cost_scan(L, n);
    const Cost dp = full_cost_partition_dp(L, n);
    ok = ok && plan.cost == scan && scan == dp;
    table.add_row(L, n, h, fib::fibonacci(h), min_streams(L, n), n / fib::fibonacci(h),
                  plan.streams, plan.cost, scan, dp);
  }
  std::cout << table.to_string();

  std::cout << "\nThe L=4, n=16 candidate costs (paper: 40, 38, 38):\n";
  util::TextTable cands({"s", "F(4,16,s)"});
  for (Index s = 4; s <= 6; ++s) cands.add_row(s, full_cost_given_streams(4, 16, s));
  std::cout << cands.to_string() << "\nformula == scan == partition DP: "
            << (ok ? "yes" : "NO") << '\n';
  return ok ? 0 : 1;
}
