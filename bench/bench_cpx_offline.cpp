// Complexity bench (google-benchmark) — the off-line algorithms.
//
// Theorem 7's claim in wall-clock form: the closed-form/r-table pipeline
// computes optimal merge costs and trees in O(n) while the Eq.-5 dynamic
// program the paper improves upon is O(n^2). BigO fitting over the range
// makes the asymptotic visible; the forest planner (Theorem 12 + Theorem
// 10) is also timed.
#include <benchmark/benchmark.h>

#include "core/full_cost.h"
#include "core/tree_builder.h"

namespace {

using smerge::Index;

void BM_MergeCostDpQuadratic(benchmark::State& state) {
  const Index n = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(smerge::merge_cost_table_dp(n));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_MergeCostDpQuadratic)->RangeMultiplier(2)->Range(64, 2048)->Complexity();

void BM_MergeCostClosedForm(benchmark::State& state) {
  const Index n = state.range(0);
  for (auto _ : state) {
    // The full table via the closed form, for an apples-to-apples O(n).
    smerge::Cost sum = 0;
    for (Index i = 1; i <= n; ++i) sum += smerge::merge_cost(i);
    benchmark::DoNotOptimize(sum);
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_MergeCostClosedForm)->RangeMultiplier(2)->Range(64, 2048)->Complexity();

void BM_LastMergeTable(benchmark::State& state) {
  const Index n = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(smerge::last_merge_table(n));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_LastMergeTable)->RangeMultiplier(4)->Range(1 << 10, 1 << 20)->Complexity();

void BM_OptimalTreeBuild(benchmark::State& state) {
  const Index n = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(smerge::optimal_merge_tree(n));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_OptimalTreeBuild)->RangeMultiplier(4)->Range(1 << 10, 1 << 20)->Complexity();

void BM_OptimalForestPlan(benchmark::State& state) {
  const Index n = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(smerge::optimal_stream_count(987, n));
  }
}
BENCHMARK(BM_OptimalForestPlan)->RangeMultiplier(10)->Range(1000, 10'000'000);

}  // namespace
