// Ablation — the Section-5 hybrid server across the load spectrum.
//
// Sweep the Poisson mean gap through the Fig.-11 crossover and print the
// hybrid cost next to the two pure policies plus its mode telemetry. The
// shape: hybrid tracks DG on the dense side, tracks dyadic on the sparse
// side, and pays a bounded switching overhead at the crossover.
#include <iostream>

#include "sim/arrivals.h"
#include "sim/experiment.h"
#include "sim/hybrid.h"
#include "util/table.h"

int main() {
  using namespace smerge;
  using namespace smerge::sim;

  const double delay = 0.01;
  const double horizon = 60.0;
  const double dg_cost = run_delay_guaranteed(delay, horizon).streams_served;

  std::cout << "Hybrid ablation: delay = " << delay << ", horizon = " << horizon
            << " media lengths, Poisson arrivals (seed 9)\n\n";
  util::TextTable table({"gap (% media)", "DG", "dyadic", "hybrid", "DG slots",
                         "dyadic slots", "switches"});
  for (const double pct : {0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    const auto arrivals = poisson_arrivals(pct / 100.0, horizon, 9);
    const double dyadic = run_dyadic(arrivals).streams_served;
    HybridParams params;
    params.delay = delay;
    const HybridOutcome hybrid = run_hybrid(arrivals, horizon, params);
    table.add_row(util::format_fixed(pct, 2), dg_cost, dyadic,
                  hybrid.bandwidth.streams_served, hybrid.dg_slots,
                  hybrid.dyadic_slots, hybrid.mode_switches);
  }
  std::cout << table.to_string();
  return 0;
}
