// Complexity bench (google-benchmark) — the [6] general-arrivals
// baseline: the split-monotone O(n^2) DP vs the assumption-free O(n^3)
// DP. This is the algorithm class the paper's O(n) delay-guaranteed
// result improves upon (Section 1.1).
#include <benchmark/benchmark.h>

#include "merging/optimal_general.h"
#include "sim/arrivals.h"

namespace {

using smerge::Index;

std::vector<double> trace(Index n) {
  // n arrivals inside one media length, so every tree window is feasible
  // and the DPs face their full asymptotic work (a trace spanning many
  // media lengths would cap the feasible window and hide the exponent).
  std::vector<double> t(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) {
    t[static_cast<std::size_t>(i)] =
        0.9 * static_cast<double>(i) / static_cast<double>(n);
  }
  return t;
}

void BM_GeneralOptQuadratic(benchmark::State& state) {
  const std::vector<double> arrivals = trace(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(smerge::merging::optimal_general_cost(arrivals, 1.0));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GeneralOptQuadratic)->RangeMultiplier(2)->Range(64, 1024)->Complexity();

void BM_GeneralOptCubic(benchmark::State& state) {
  const std::vector<double> arrivals = trace(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        smerge::merging::optimal_general_cost_cubic(arrivals, 1.0));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GeneralOptCubic)->RangeMultiplier(2)->Range(64, 512)->Complexity();

void BM_GeneralOptForestReconstruction(benchmark::State& state) {
  const std::vector<double> arrivals = trace(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        smerge::merging::optimal_general_forest(arrivals, 1.0));
  }
}
BENCHMARK(BM_GeneralOptForestReconstruction)->Arg(256)->Arg(1024);

}  // namespace
