// Fig. 11 — immediate-service dyadic vs batched dyadic vs on-line Delay
// Guaranteed under constant-rate arrivals.
//
// Paper setup: delay fixed at 1% of the media length; the inter-arrival
// gap lambda sweeps from near 0% to 5% of the media; horizon 100 media
// lengths; dyadic uses alpha = phi and beta = F_h/L for constant-rate
// arrivals (Section 4.2). Expected shape: the DG line is flat; immediate
// service loses when lambda < delay (batching shares streams) and the DG
// algorithm is worst once lambda exceeds the delay.
#include <iostream>

#include "sim/arrivals.h"
#include "sim/experiment.h"
#include "util/table.h"

int main() {
  using namespace smerge;
  using namespace smerge::sim;

  const double delay = 0.01;
  const double horizon = 100.0;
  const double dg = run_delay_guaranteed(delay, horizon).streams_served;
  merging::DyadicParams params;
  params.beta = dyadic_beta_for_constant_rate(delay);

  std::cout << "Fig. 11: constant-rate arrivals, delay = 1% of the media, "
            << "horizon = 100 media lengths\n"
            << "dyadic: alpha = phi, beta = " << params.beta << "\n\n";

  util::TextTable table({"lambda (% media)", "clients", "dyadic immediate",
                         "dyadic batched", "delay guaranteed"});
  for (const double pct :
       {0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0, 1.5, 2.0, 3.0, 4.0, 5.0}) {
    const double gap = pct / 100.0;
    const auto arrivals = constant_arrivals(gap, horizon);
    const double immediate = run_dyadic(arrivals, params).streams_served;
    const double batched = run_batched_dyadic(arrivals, delay, params).streams_served;
    table.add_row(util::format_fixed(pct, 2), arrivals.size(), immediate, batched, dg);
  }
  std::cout << table.to_string() << "\ncsv:\n" << table.to_csv();
  return 0;
}
