// Ablation — on-line heuristics vs the general-arrivals off-line optimum.
//
// The [6] baseline (O(n^2) interval DP, src/merging/optimal_general)
// lower-bounds every policy on a given trace. Rows sweep the Poisson
// intensity at the Fig.-11 operating point and print the competitive
// ratios of immediate dyadic, batched dyadic, and the off-line optimum
// applied to the *batched* starts (the fair delay-respecting reference
// for the Delay Guaranteed algorithm).
#include <iostream>

#include "merging/batching.h"
#include "merging/optimal_general.h"
#include "sim/arrivals.h"
#include "sim/experiment.h"
#include "util/table.h"

int main() {
  using namespace smerge;
  using namespace smerge::sim;

  const double delay = 0.01;
  const double horizon = 8.0;  // keeps n within the quadratic DP's reach
  const double dg =
      run_delay_guaranteed(delay, horizon).streams_served;

  std::cout << "On-line vs off-line optimum (Poisson, horizon " << horizon
            << " media lengths, delay " << 100 * delay << "%)\n\n";
  util::TextTable table({"gap (% media)", "clients", "OPT immediate",
                         "dyadic/OPT", "OPT batched", "batched dyadic/OPT",
                         "DG/OPT batched"});
  for (const double pct : {0.4, 0.8, 1.6, 3.2}) {
    const auto arrivals = poisson_arrivals(pct / 100.0, horizon, 77);
    const double opt = merging::optimal_general_cost(arrivals, 1.0);
    const double dyadic = run_dyadic(arrivals).streams_served;
    const auto starts = merging::batch_arrivals(arrivals, delay);
    const double opt_batched = merging::optimal_general_cost(starts, 1.0);
    const double dyadic_batched =
        run_batched_dyadic(arrivals, delay).streams_served;
    table.add_row(util::format_fixed(pct, 2), arrivals.size(), opt, dyadic / opt,
                  opt_batched, dyadic_batched / opt_batched, dg / opt_batched);
  }
  std::cout << table.to_string()
            << "\n(the dyadic heuristic stays within a few percent of the "
               "off-line optimum,\n matching the comparison study cited in "
               "Section 4.2)\n";
  return 0;
}
