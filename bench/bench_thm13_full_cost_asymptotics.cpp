// Theorem 13 — F(L,n) = n log_phi(L) + Theta(n) for n > L.
//
// Rows sweep L for a fixed arrival density (n = 64 L); the per-arrival
// cost F/n must track log_phi(L) with a bounded additive offset, and the
// ratio must drift toward 1 as L grows.
#include <iostream>

#include "core/full_cost.h"
#include "util/table.h"

int main() {
  using namespace smerge;

  std::cout << "Theorem 13: F(L,n) = n log_phi(L) + Theta(n), with n = 64 L\n\n";
  util::TextTable table({"L", "n", "F(L,n)", "F/n", "log_phi L", "F/(n log_phi L)"});
  double prev_offset = -1e9;
  bool offset_bounded = true;
  for (const Index L : {8, 21, 55, 144, 377, 987, 2584, 6765, 17711}) {
    const Index n = 64 * L;
    const Cost f = full_cost(L, n);
    const double per_arrival = static_cast<double>(f) / static_cast<double>(n);
    const double logl = fib::log_phi(static_cast<double>(L));
    table.add_row(L, n, f, per_arrival, logl, per_arrival / logl);
    const double offset = per_arrival - logl;
    offset_bounded = offset_bounded && std::abs(offset) < 3.0;
    prev_offset = offset;
  }
  (void)prev_offset;
  std::cout << table.to_string() << "\nadditive offset |F/n - log_phi L| < 3: "
            << (offset_bounded ? "yes" : "NO") << '\n';
  return offset_bounded ? 0 : 1;
}
