// Fig. 9 — ratio of the on-line Delay Guaranteed bandwidth to the optimal
// off-line bandwidth as the time horizon grows.
//
// The paper's empirical point: the ratio tends to 1 (Theorem 22 gives the
// guarantee 1 + 2L/n). We sweep several media lengths; each row prints
// the exact on-line cost A(L,n), the optimum F(L,n), their ratio and the
// Theorem-22 bound where it applies.
#include <iostream>

#include "core/full_cost.h"
#include "online/delay_guaranteed.h"
#include "util/table.h"

int main() {
  using namespace smerge;

  std::cout << "Fig. 9: on-line / off-line total bandwidth vs horizon\n\n";
  for (const Index L : {15, 50, 100}) {
    const DelayGuaranteedOnline dg(L);
    util::TextTable table({"n (slots)", "A(L,n)", "F(L,n)", "ratio", "1+2L/n bound"});
    for (const Index n :
         {L, 4 * L, 16 * L, 64 * L, 256 * L, 1024 * L, 4096 * L}) {
      const Cost a = dg.cost(n);
      const Cost f = full_cost(L, n);
      const double ratio = static_cast<double>(a) / static_cast<double>(f);
      const bool bound_applies = L >= 7 && n > L * L + 2;
      table.add_row(n, a, f, util::format_fixed(ratio, 6),
                    bound_applies
                        ? util::TextTable::cell(
                              DelayGuaranteedOnline::theorem22_bound(L, n))
                        : std::string("n/a"));
    }
    std::cout << "L = " << L << " slots (block size F_h = " << dg.block_size()
              << ")\n" << table.to_string() << '\n';
  }
  return 0;
}
