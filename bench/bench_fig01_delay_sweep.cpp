// Fig. 1 — bandwidth savings as the guaranteed start-up delay increases.
//
// Paper setup: a stream starts at the end of every unit (unit = delay);
// the x-axis is the delay as a percentage of the media length, the y-axis
// the server bandwidth in total complete media streams served. Both the
// optimal off-line algorithm and the on-line algorithm are plotted; the
// paper's observation is a steep drop with delay and the on-line curve
// hugging the off-line one.
#include <iostream>

#include "sim/experiment.h"
#include "util/table.h"

int main() {
  using namespace smerge;
  using namespace smerge::sim;

  const double horizon = 100.0;  // media lengths, as in the paper
  std::cout << "Fig. 1: server bandwidth vs start-up delay (horizon "
            << horizon << " media lengths)\n\n";

  util::TextTable table({"delay (% media)", "off-line streams", "on-line streams",
                         "on-line/off-line"});
  for (const double pct : {0.1, 0.2, 0.5, 1.0, 2.0, 3.0, 5.0, 7.5, 10.0, 12.5, 15.0}) {
    const double delay = pct / 100.0;
    const double off = run_offline_optimal(delay, horizon).streams_served;
    const double on = run_delay_guaranteed(delay, horizon).streams_served;
    table.add_row(util::format_fixed(pct, 1), off, on, on / off);
  }
  std::cout << table.to_string() << "\ncsv:\n" << table.to_csv();
  return 0;
}
