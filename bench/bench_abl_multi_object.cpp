// Ablation — the Section-5 multi-object server: average vs peak bandwidth.
//
// Sweep the aggregate load over a 10-movie Zipf catalogue and print, per
// policy, the total streams served and the aggregate peak channel count.
// The claim under test: the DG peak is flat in the load (the server can
// always admit), while the dyadic policies' peak grows with demand.
#include <iostream>

#include "sim/multi_object.h"
#include "util/table.h"

int main() {
  using namespace smerge;
  using namespace smerge::sim;

  std::cout << "Multi-object ablation: 10 movies, Zipf(1.0), delay 2%, "
            << "horizon 25 media lengths\n\n";
  util::TextTable table({"mean gap (% media)", "DG streams", "DG peak",
                         "dyadic streams", "dyadic peak", "batched streams",
                         "batched peak"});
  bool dg_peak_flat = true;
  Index first_dg_peak = -1;
  for (const double pct : {2.0, 1.0, 0.5, 0.2, 0.1}) {
    MultiObjectConfig config;
    config.objects = 10;
    config.zipf_exponent = 1.0;
    config.mean_gap = pct / 100.0;
    config.horizon = 25.0;
    config.delay = 0.02;
    config.seed = 31;
    const MultiObjectResult dg = run_multi_object(config, Policy::kDelayGuaranteed);
    const MultiObjectResult dyi = run_multi_object(config, Policy::kDyadicImmediate);
    const MultiObjectResult dyb = run_multi_object(config, Policy::kDyadicBatched);
    if (first_dg_peak == -1) first_dg_peak = dg.peak_concurrency;
    dg_peak_flat = dg_peak_flat && dg.peak_concurrency == first_dg_peak;
    table.add_row(util::format_fixed(pct, 2), dg.streams_served, dg.peak_concurrency,
                  dyi.streams_served, dyi.peak_concurrency, dyb.streams_served,
                  dyb.peak_concurrency);
  }
  std::cout << table.to_string() << "\nDG peak independent of load: "
            << (dg_peak_flat ? "yes" : "NO") << '\n';
  return dg_peak_flat ? 0 : 1;
}
