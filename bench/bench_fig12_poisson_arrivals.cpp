// Fig. 12 — immediate-service dyadic vs batched dyadic vs on-line Delay
// Guaranteed under Poisson arrivals.
//
// Same setup as Fig. 11 but with Poisson arrivals of mean inter-arrival
// gap lambda, and beta = 0.5 (Section 4.2 found 0.5 best under the
// variance of Poisson gaps). Results average three seeds. The paper's
// extra observation: DG fares slightly worse relative to the dyadic
// algorithms than in the constant-rate case, because gap variance leaves
// some slots empty even when the mean gap is below the delay.
#include <iostream>

#include "sim/arrivals.h"
#include "sim/experiment.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace smerge;
  using namespace smerge::sim;

  const double delay = 0.01;
  const double horizon = 100.0;
  const double dg = run_delay_guaranteed(delay, horizon).streams_served;
  const merging::DyadicParams params;  // alpha = phi, beta = 0.5

  std::cout << "Fig. 12: Poisson arrivals, delay = 1% of the media, horizon = 100 "
            << "media lengths\ndyadic: alpha = phi, beta = 0.5; 3 seeds per row\n\n";

  util::TextTable table({"lambda (% media)", "mean clients", "dyadic immediate",
                         "dyadic batched", "delay guaranteed"});
  for (const double pct :
       {0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0, 1.5, 2.0, 3.0, 4.0, 5.0}) {
    const double gap = pct / 100.0;
    util::RunningStats immediate;
    util::RunningStats batched;
    util::RunningStats clients;
    for (const std::uint64_t seed : {11u, 23u, 47u}) {
      const auto arrivals = poisson_arrivals(gap, horizon, seed);
      clients.add(static_cast<double>(arrivals.size()));
      immediate.add(run_dyadic(arrivals, params).streams_served);
      batched.add(run_batched_dyadic(arrivals, delay, params).streams_served);
    }
    table.add_row(util::format_fixed(pct, 2), clients.mean(), immediate.mean(),
                  batched.mean(), dg);
  }
  std::cout << table.to_string() << "\ncsv:\n" << table.to_csv();
  return 0;
}
