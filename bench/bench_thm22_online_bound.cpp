// Theorem 22 — the on-line competitive guarantee A(L,n)/F(L,n) <= 1+2L/n
// for L >= 7 and n > L^2 + 2.
//
// For each (L, n) in range the measured ratio must sit below the bound;
// the table also shows the slack, which the proof predicts grows as the
// bound is loose by roughly a factor 2 (the proof budgets one extra tree).
#include <iostream>

#include "core/full_cost.h"
#include "online/delay_guaranteed.h"
#include "util/table.h"

int main() {
  using namespace smerge;

  std::cout << "Theorem 22: A/F <= 1 + 2L/n for L >= 7, n > L^2+2\n\n";
  util::TextTable table({"L", "n", "ratio A/F", "bound", "holds"});
  bool all_hold = true;
  for (const Index L : {7, 10, 15, 21, 34, 55}) {
    const DelayGuaranteedOnline dg(L);
    for (const Index mult : {1, 4, 32}) {
      const Index n = (L * L + 3) * mult;
      const double ratio = static_cast<double>(dg.cost(n)) /
                           static_cast<double>(full_cost(L, n));
      const double bound = DelayGuaranteedOnline::theorem22_bound(L, n);
      const bool holds = ratio <= bound;
      all_hold = all_hold && holds;
      table.add_row(L, n, util::format_fixed(ratio, 6), util::format_fixed(bound, 6),
                    holds ? "yes" : "NO");
    }
  }
  std::cout << table.to_string() << "\nbound holds everywhere: "
            << (all_hold ? "yes" : "NO") << '\n';
  return all_hold ? 0 : 1;
}
