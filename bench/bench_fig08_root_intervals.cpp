// Fig. 8 — the table of last-merge intervals I(n) for 2 <= n <= 55.
//
// I(n) is the set of arrivals that can be the last to merge with the root
// in an optimal merge tree (Theorem 3). The harness prints the Theorem-3
// interval next to the exact DP argmin set; the two columns must agree.
#include <iostream>

#include "core/merge_cost.h"
#include "util/table.h"

int main() {
  using namespace smerge;

  const Index n_max = 55;
  const auto dp = last_merge_intervals_dp(n_max);

  std::cout << "Fig. 8: I(n) for 2 <= n <= " << n_max << "\n\n";
  util::TextTable table({"n", "I(n) Theorem 3", "I(n) exact DP", "agree", "r(n)=max"});
  bool all_agree = true;
  for (Index n = 2; n <= n_max; ++n) {
    const IndexInterval thm = last_merge_interval(n);
    const IndexInterval exact = dp[static_cast<std::size_t>(n)];
    const bool agree = thm == exact;
    all_agree = all_agree && agree;
    // Built via append to dodge GCC 12's false-positive -Wrestrict on
    // operator+ with short string literals (GCC PR105651).
    const auto show = [](const IndexInterval& iv) {
      std::string s;
      s += '[';
      s += std::to_string(iv.lo);
      s += ',';
      s += std::to_string(iv.hi);
      s += ']';
      return s;
    };
    table.add_row(n, show(thm), show(exact), agree ? "yes" : "NO", thm.hi);
  }
  std::cout << table.to_string() << "\nTheorem 3 vs exhaustive DP: "
            << (all_agree ? "all 54 rows agree" : "MISMATCH") << '\n';
  return all_agree ? 0 : 1;
}
