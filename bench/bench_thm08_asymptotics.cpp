// Theorem 8 — M(n) = n log_phi(n) + Theta(n).
//
// The harness prints M(n) against n log_phi(n) over ten decades: the
// normalized gap (M(n) - n log_phi n)/n must stay inside the proven
// window [-(phi^2+1), 0] and the ratio M(n)/(n log_phi n) must tend to 1.
#include <iostream>

#include "core/merge_cost.h"
#include "util/table.h"

int main() {
  using namespace smerge;

  std::cout << "Theorem 8: M(n) = n log_phi(n) + Theta(n)\n\n";
  util::TextTable table({"n", "M(n)", "n log_phi n", "ratio", "(M - n log)/n"});
  bool ok = true;
  for (Index n = 10; n <= 10'000'000'000'000; n *= 10) {
    const double nd = static_cast<double>(n);
    const double reference = nd * fib::log_phi(nd);
    const double m = static_cast<double>(merge_cost(n));
    const double gap = (m - reference) / nd;
    ok = ok && gap <= 1e-9 && gap >= -(fib::kGoldenRatio * fib::kGoldenRatio + 1.0);
    table.add_row(n, merge_cost(n), reference, m / reference, gap);
  }
  std::cout << table.to_string() << "\nnormalized gap within [-(phi^2+1), 0]: "
            << (ok ? "yes" : "NO") << '\n';
  return ok ? 0 : 1;
}
