// Entry point of the unified benchmark harness. All benches live in
// src/bench/ and self-register; see `smerge_bench --list`.
#include "bench/runner.h"

int main(int argc, char** argv) {
  return smerge::bench::run_cli(argc, argv);
}
