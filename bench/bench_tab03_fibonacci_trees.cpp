// Figs. 6 and 7 — optimal merge trees.
//
// Fig. 6: the two optimal trees for n = 4 (both of merge cost 6).
// Fig. 7: the unique Fibonacci merge trees for n = 3, 5, 8, 13 with merge
// costs 3, 9, 21, 46, whose right subtree is the tree for F_{k-2} and
// whose remainder is the tree for F_{k-1}.
#include <iostream>

#include "core/tree_builder.h"
#include "schedule/diagram.h"
#include "util/table.h"

int main() {
  using namespace smerge;

  std::cout << "Fig. 6: optimal trees for n = 4 (cost "
            << merge_cost(4) << ")\n";
  Index optimal_count = 0;
  enumerate_merge_trees(4, [&](const MergeTree& t) {
    if (t.merge_cost() == merge_cost(4)) {
      ++optimal_count;
      std::cout << "  " << t.to_string() << '\n';
    }
  });
  std::cout << "  (" << optimal_count << " optimal trees; paper shows two)\n\n";

  std::cout << "Fig. 7: Fibonacci merge trees\n\n";
  util::TextTable table({"k", "n = F_k", "M(n)", "optimal trees", "structure"});
  for (const int k : {4, 5, 6, 7}) {
    const Index n = fib::fibonacci(k);
    Index count = 0;
    enumerate_merge_trees(n, [&](const MergeTree& t) {
      if (t.merge_cost() == merge_cost(n)) ++count;
    });
    table.add_row(k, n, merge_cost(n), count, fibonacci_merge_tree(k).to_string());
  }
  std::cout << table.to_string() << '\n';

  std::cout << "The n = 13 Fibonacci tree (right subtree = tree for 5, rest = "
               "tree for 8):\n"
            << render_tree(fibonacci_merge_tree(7));
  return 0;
}
