// Theorems 19 and 20 — receive-two vs receive-all costs approach
// log_phi(2) ~ 1.4404.
//
// Two tables: the merge-cost ratio M(n)/Mw(n) in n (Theorem 19, fast
// convergence) and the full-cost ratio F(L,n)/Fw(L,n) in L with n = 50 L
// (Theorem 20, logarithmic convergence — the paper's double limit).
#include <iostream>

#include "core/full_cost.h"
#include "util/table.h"

int main() {
  using namespace smerge;

  const double target = fib::log_phi(2.0);
  std::cout << "Theorem 19: M(n)/Mw(n) -> log_phi 2 = "
            << util::format_fixed(target, 6) << "\n\n";
  util::TextTable mc({"n", "M(n)", "Mw(n)", "ratio"});
  for (Index n = 100; n <= 10'000'000'000; n *= 100) {
    mc.add_row(n, merge_cost(n), merge_cost_receive_all(n),
               static_cast<double>(merge_cost(n)) /
                   static_cast<double>(merge_cost_receive_all(n)));
  }
  std::cout << mc.to_string() << '\n';

  std::cout << "Theorem 20: F(L,n)/Fw(L,n) with n = 50 L\n\n";
  util::TextTable fc({"L", "F(L,n)", "Fw(L,n)", "ratio"});
  double last = 0.0;
  for (const Index L : {55, 233, 987, 4181, 17711}) {
    const Index n = 50 * L;
    const Cost f = full_cost(L, n);
    const Cost fw = full_cost(L, n, Model::kReceiveAll);
    last = static_cast<double>(f) / static_cast<double>(fw);
    fc.add_row(L, f, fw, last);
  }
  std::cout << fc.to_string() << "\nfinal full-cost ratio " << last
            << " climbing toward " << util::format_fixed(target, 4) << '\n';
  return 0;
}
