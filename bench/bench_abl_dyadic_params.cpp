// Ablation — the (alpha, beta) parameters of the dyadic algorithm.
//
// Section 4.2 chooses alpha = phi (from the comparison study [4]) and
// beta = 0.5 for Poisson / F_h/L for constant-rate arrivals "based on
// intuition and experimentation". This harness redoes that experiment:
// a grid over alpha in {phi, 2} and beta in {0.2, 0.3, 0.382, 0.45, 0.5}
// under both arrival types at the Fig.-11 operating point.
#include <iostream>

#include "sim/arrivals.h"
#include "sim/experiment.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace smerge;
  using namespace smerge::sim;

  const double delay = 0.01;
  const double horizon = 100.0;
  const double gap = 0.004;  // denser than the delay: merging matters

  const auto constant = constant_arrivals(gap, horizon);
  std::cout << "Dyadic (alpha, beta) ablation: gap = " << gap << ", delay = "
            << delay << ", horizon = " << horizon << " media lengths\n"
            << "beta* = F_h/L clamp = " << dyadic_beta_for_constant_rate(delay)
            << " (constant-rate recommendation)\n\n";

  util::TextTable table({"alpha", "beta", "constant-rate streams",
                         "Poisson streams (3 seeds)"});
  for (const double alpha : {fib::kGoldenRatio, 2.0}) {
    for (const double beta : {0.20, 0.30, 0.382, 0.45, 0.50}) {
      const merging::DyadicParams params{alpha, beta};
      const double c = run_dyadic(constant, params).streams_served;
      util::RunningStats p;
      for (const std::uint64_t seed : {5u, 6u, 7u}) {
        p.add(run_dyadic(poisson_arrivals(gap, horizon, seed), params)
                  .streams_served);
      }
      table.add_row(util::format_fixed(alpha, 4), util::format_fixed(beta, 3), c,
                    p.mean());
    }
  }
  std::cout << table.to_string()
            << "\n(batched variants track the same ordering; the paper's "
               "beta = 0.5 is near-best for Poisson)\n";
  return 0;
}
