// Theorem 14 — batching with stream merging is Theta(L / log L) better
// than batching alone.
//
// Batching alone transmits a full stream per slot: cost n L. The optimal
// merge forest costs n log_phi(L) + Theta(n), so the saving factor is
// ~ L / log_phi(L). Rows sweep L at fixed density and print the measured
// factor next to the predictor.
#include <iostream>

#include "core/full_cost.h"
#include "util/table.h"

int main() {
  using namespace smerge;

  std::cout << "Theorem 14: batching+merging vs batching alone (n = 32 L)\n\n";
  util::TextTable table({"L", "batching nL", "merging F(L,n)", "saving factor",
                         "L / log_phi L"});
  bool ok = true;
  for (const Index L : {8, 21, 55, 144, 377, 987, 2584}) {
    const Index n = 32 * L;
    const Cost batching = n * L;
    const Cost merging = full_cost(L, n);
    const double factor =
        static_cast<double>(batching) / static_cast<double>(merging);
    const double predictor =
        static_cast<double>(L) / fib::log_phi(static_cast<double>(L));
    ok = ok && factor > predictor / 2.5 && factor < predictor * 2.5;
    table.add_row(L, batching, merging, factor, predictor);
  }
  std::cout << table.to_string()
            << "\nfactor within 2.5x of L/log_phi(L) everywhere: "
            << (ok ? "yes" : "NO") << '\n';
  return ok ? 0 : 1;
}
