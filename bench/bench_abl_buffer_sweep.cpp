// Ablation — bounded client buffers (Section 3.3, Theorem 16).
//
// Sweep the buffer size B for a fixed instance and report the optimal
// constrained cost, the number of full streams and the worst Lemma-15
// buffer need of the built forest. The cost decreases with B and freezes
// at the unconstrained optimum once B reaches half the media length.
#include <iostream>

#include "core/buffer.h"
#include "core/full_cost.h"
#include "util/table.h"

int main() {
  using namespace smerge;

  const Index L = 34;
  const Index n = 300;
  const Cost unconstrained = full_cost(L, n);
  std::cout << "Section 3.3 ablation: L = " << L << ", n = " << n
            << " (unconstrained optimum " << unconstrained << ")\n\n";

  util::TextTable table({"B (slots)", "F_B(L,n)", "overhead vs unbounded",
                         "full streams", "measured max buffer"});
  bool monotone = true;
  Cost prev = -1;
  for (Index B = 1; B <= L; ++B) {
    const StreamPlan plan = optimal_stream_count_bounded(L, n, B);
    const MergeForest forest = optimal_merge_forest_bounded(L, n, B);
    const Index measured = max_buffer_requirement(forest);
    if (prev != -1 && plan.cost > prev) monotone = false;
    prev = plan.cost;
    table.add_row(B, plan.cost,
                  static_cast<double>(plan.cost) / static_cast<double>(unconstrained),
                  plan.streams, measured);
    if (measured > B && 2 * B < L) {
      std::cerr << "buffer bound violated at B=" << B << '\n';
      return 1;
    }
  }
  std::cout << table.to_string() << "\ncost non-increasing in B: "
            << (monotone ? "yes" : "NO") << '\n';
  return monotone ? 0 : 1;
}
