// Tests for optimal merge-tree construction (Theorem 7), the Fibonacci
// merge trees of Fig. 7, and the exhaustive-enumeration optimality anchor.
#include "core/tree_builder.h"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

namespace smerge {
namespace {

TEST(TreeBuilder, CountMatchesCatalan) {
  // Merge trees on n arrivals are counted by Catalan(n-1).
  constexpr std::int64_t kCatalan[] = {1, 1, 2, 5, 14, 42, 132, 429, 1430, 4862};
  for (Index n = 1; n <= 10; ++n) {
    EXPECT_EQ(count_merge_trees(n), kCatalan[n - 1]) << "n=" << n;
    Index seen = 0;
    enumerate_merge_trees(n, [&](const MergeTree& t) {
      EXPECT_EQ(t.size(), n);
      ++seen;
    });
    EXPECT_EQ(seen, kCatalan[n - 1]) << "n=" << n;
  }
  EXPECT_THROW((void)count_merge_trees(0), std::invalid_argument);
  EXPECT_THROW((void)count_merge_trees(35), std::invalid_argument);
}

TEST(TreeBuilder, OptimalMergePlanVerifies) {
  // The one-call off-line producer: an optimal tree as a canonical plan
  // costing exactly L + M(n), accepted by the universal verifier.
  for (const Index n : {1, 5, 13, 34, 100}) {
    const Index L = 2 * n;  // roomy enough for the unconstrained optimum
    const plan::MergePlan p = optimal_merge_plan(L, n);
    ASSERT_EQ(p.size(), n);
    const plan::PlanReport report = plan::verify(p);
    EXPECT_TRUE(report.ok) << "n=" << n << ": " << report.first_error;
    EXPECT_DOUBLE_EQ(report.total_cost, static_cast<double>(L + merge_cost(n)));
  }
  EXPECT_THROW((void)optimal_merge_plan(0, 3), std::invalid_argument);
}

class ExhaustiveOptimality : public ::testing::TestWithParam<Index> {};

TEST_P(ExhaustiveOptimality, ClosedFormIsTrueMinimumReceiveTwo) {
  // The optimality anchor: M(n) from Eq. (6) equals the minimum Mcost over
  // *all* Catalan(n-1) merge trees, and the built tree attains it.
  const Index n = GetParam();
  Cost best = std::numeric_limits<Cost>::max();
  enumerate_merge_trees(n, [&](const MergeTree& t) {
    best = std::min(best, t.merge_cost());
  });
  EXPECT_EQ(best, merge_cost(n));
  EXPECT_EQ(optimal_merge_tree(n).merge_cost(), best);
}

TEST_P(ExhaustiveOptimality, ClosedFormIsTrueMinimumReceiveAll) {
  const Index n = GetParam();
  Cost best = std::numeric_limits<Cost>::max();
  enumerate_merge_trees(n, [&](const MergeTree& t) {
    best = std::min(best, t.merge_cost(Model::kReceiveAll));
  });
  EXPECT_EQ(best, merge_cost_receive_all(n));
  EXPECT_EQ(optimal_merge_tree(n, Model::kReceiveAll).merge_cost(Model::kReceiveAll),
            best);
}

INSTANTIATE_TEST_SUITE_P(UpToElevenArrivals, ExhaustiveOptimality,
                         ::testing::Range<Index>(1, 12));

TEST(TreeBuilder, NumberOfOptimalTreesMatchesPaper) {
  // Fig. 6: exactly two optimal trees for n = 4. Fibonacci horizons have a
  // unique optimal tree (end of Section 3.1).
  const auto count_optimal = [](Index n) {
    Index count = 0;
    enumerate_merge_trees(n, [&](const MergeTree& t) {
      if (t.merge_cost() == merge_cost(n)) ++count;
    });
    return count;
  };
  EXPECT_EQ(count_optimal(4), 2);
  EXPECT_EQ(count_optimal(2), 1);
  EXPECT_EQ(count_optimal(3), 1);
  EXPECT_EQ(count_optimal(5), 1);
  EXPECT_EQ(count_optimal(8), 1);
  // Non-Fibonacci n > 4 have several optima.
  EXPECT_GT(count_optimal(6), 1);
  EXPECT_GT(count_optimal(7), 1);
}

TEST(TreeBuilder, FibonacciTreesMatchFigureSeven) {
  // Fig. 7: merge costs 3, 9, 21, 46 for n = 3, 5, 8, 13.
  EXPECT_EQ(fibonacci_merge_tree(4).merge_cost(), 3);
  EXPECT_EQ(fibonacci_merge_tree(5).merge_cost(), 9);
  EXPECT_EQ(fibonacci_merge_tree(6).merge_cost(), 21);
  EXPECT_EQ(fibonacci_merge_tree(7).merge_cost(), 46);
  // The n = 8 Fibonacci tree is exactly the Fig. 4 tree 0(1 2 3(4) 5(6 7)).
  EXPECT_EQ(fibonacci_merge_tree(6).parents(),
            (std::vector<Index>{-1, 0, 0, 0, 3, 0, 5, 5}));
}

TEST(TreeBuilder, FibonacciTreeRecursiveStructure) {
  // End of Section 3.1: the tree for n = F_k is the tree for F_{k-1} with
  // the tree for F_{k-2} attached as the last subtree of the root.
  for (int k = 4; k <= 16; ++k) {
    const MergeTree whole = fibonacci_merge_tree(k);
    const Index split = fib::fibonacci(k - 1);
    EXPECT_EQ(whole.prefix(split), fibonacci_merge_tree(k - 1)) << "k=" << k;
    EXPECT_EQ(whole.subtree(split), fibonacci_merge_tree(k - 2)) << "k=" << k;
    EXPECT_EQ(whole.children(0).back(), split) << "k=" << k;
  }
  EXPECT_THROW(fibonacci_merge_tree(1), std::invalid_argument);
  EXPECT_THROW(fibonacci_merge_tree(93), std::invalid_argument);
}

class BuilderOptimality : public ::testing::TestWithParam<Index> {};

TEST_P(BuilderOptimality, BuiltTreeAttainsClosedForm) {
  const Index n = GetParam();
  const MergeTree t = optimal_merge_tree(n);
  EXPECT_EQ(t.size(), n);
  EXPECT_EQ(t.merge_cost(), merge_cost(n));
}

TEST_P(BuilderOptimality, TableOverloadAgrees) {
  const Index n = GetParam();
  const auto table = last_merge_table(n + 1);
  EXPECT_EQ(optimal_merge_tree_with_table(n, table), optimal_merge_tree(n));
}

TEST_P(BuilderOptimality, ReceiveAllBuiltTreeAttainsClosedForm) {
  const Index n = GetParam();
  const MergeTree t = optimal_merge_tree(n, Model::kReceiveAll);
  EXPECT_EQ(t.merge_cost(Model::kReceiveAll), merge_cost_receive_all(n));
}

INSTANTIATE_TEST_SUITE_P(DenseSmall, BuilderOptimality, ::testing::Range<Index>(1, 144));
INSTANTIATE_TEST_SUITE_P(LargerSpots, BuilderOptimality,
                         ::testing::Values<Index>(233, 377, 1000, 4181, 10946, 50000));

TEST(TreeBuilder, LargeTreeIsLinearTimeFeasible) {
  // Smoke test that the O(n) construction handles a sizeable horizon.
  const Index n = 1'000'000;
  const MergeTree t = optimal_merge_tree(n);
  EXPECT_EQ(t.size(), n);
  EXPECT_EQ(t.merge_cost(), merge_cost(n));
}

TEST(TreeBuilder, InvalidArguments) {
  EXPECT_THROW(optimal_merge_tree(0), std::invalid_argument);
  EXPECT_THROW(optimal_merge_tree(-3), std::invalid_argument);
  const auto short_table = last_merge_table(4);
  EXPECT_THROW(optimal_merge_tree_with_table(10, short_table), std::invalid_argument);
  EXPECT_THROW(enumerate_merge_trees(0, [](const MergeTree&) {}),
               std::invalid_argument);
}

TEST(TreeBuilder, PrefixOfOptimalTreeStaysNearOptimal) {
  // Used by the on-line algorithm's final block: the prefix of an optimal
  // tree is a valid tree whose cost is at least M(r) (never better than
  // the optimum for r arrivals).
  const MergeTree t = optimal_merge_tree(55);
  for (Index r = 1; r <= 55; ++r) {
    const Cost c = t.prefix(r).merge_cost();
    EXPECT_GE(c, merge_cost(r)) << "r=" << r;
  }
}

}  // namespace
}  // namespace smerge
