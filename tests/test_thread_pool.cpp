// Tests for the persistent util::ThreadPool backing parallel_for: chunk
// coverage with real workers, exception propagation, the inline
// fallbacks (threads <= 1, zero workers, nested fork-joins), and
// determinism of pooled vs serial fills.
#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/parallel.h"

namespace smerge::util {
namespace {

TEST(ThreadPool, CoversRangeExactlyOnceWithWorkers) {
  // A private pool with real workers, so the multi-threaded chunk-claim
  // path is exercised even on single-core CI hosts.
  ThreadPool pool(3);
  EXPECT_EQ(pool.worker_count(), 3u);
  std::vector<std::atomic<int>> hits(1031);
  pool.run(0, 1031, /*grain=*/7, /*max_threads=*/4, [&](std::int64_t i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusedAcrossManyDispatches) {
  // The point of persistence: hundreds of fork-joins (one per DP
  // wavefront) on the same workers.
  ThreadPool pool(2);
  std::atomic<std::int64_t> sum{0};
  for (int round = 0; round < 200; ++round) {
    pool.run(0, 64, 8, 3, [&](std::int64_t i) { sum.fetch_add(i); });
  }
  EXPECT_EQ(sum.load(), 200 * (64 * 63 / 2));
}

TEST(ThreadPool, PropagatesFirstExceptionAndCompletesRange) {
  ThreadPool pool(2);
  std::atomic<int> executed{0};
  EXPECT_THROW(pool.run(0, 100, 5, 3,
                        [&](std::int64_t i) {
                          if (i == 37) throw std::runtime_error("boom");
                          executed.fetch_add(1);
                        }),
               std::runtime_error);
  // The contract: remaining chunks still execute after a throw; only
  // the tail of the throwing chunk (38, 39 with grain 5) is skipped.
  EXPECT_EQ(executed.load(), 97);
}

TEST(ThreadPool, InlineFallbacks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.run(5, 5, 1, 4, [&](std::int64_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 0);  // empty range
  pool.run(0, 1, 1, 4, [&](std::int64_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 1);  // singleton runs inline
  pool.run(0, 10, 1, 1, [&](std::int64_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 11);  // max_threads=1 runs inline

  ThreadPool empty(0);
  EXPECT_EQ(empty.worker_count(), 0u);
  empty.run(0, 10, 1, 8, [&](std::int64_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 21);  // no workers: inline
}

TEST(ThreadPool, NestedRunExecutesInlineWithoutDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  std::atomic<int> nested_on_worker{0};
  pool.run(0, 4, 1, 3, [&](std::int64_t) {
    if (ThreadPool::on_worker_thread()) nested_on_worker.fetch_add(1);
    // Inline either way: workers by the worker flag, the participating
    // caller by the in-region flag (it must never retouch the region
    // mutex it already owns).
    pool.run(0, 10, 1, 3,
             [&](std::int64_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 40);
}

TEST(ThreadPool, ConcurrentCallersBothComplete) {
  // A second fork-join issued while one is in flight degrades to an
  // inline loop instead of blocking or corrupting the active job.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  std::thread other([&] {
    for (int r = 0; r < 50; ++r) {
      pool.run(0, 32, 4, 3, [&](std::int64_t) { total.fetch_add(1); });
    }
  });
  for (int r = 0; r < 50; ++r) {
    pool.run(0, 32, 4, 3, [&](std::int64_t) { total.fetch_add(1); });
  }
  other.join();
  EXPECT_EQ(total.load(), 2 * 50 * 32);
}

TEST(ThreadPool, PooledFillMatchesSerialFill) {
  // Determinism: chunked execution must write exactly what a serial
  // loop writes (cells are independent; per-cell work is sequential).
  ThreadPool pool(3);
  std::vector<double> serial(512), pooled(512);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    serial[i] = static_cast<double>(i) * 1.25 + 3.0;
  }
  pool.run(0, 512, 16, 4, [&](std::int64_t i) {
    pooled[static_cast<std::size_t>(i)] = static_cast<double>(i) * 1.25 + 3.0;
  });
  EXPECT_EQ(serial, pooled);
}

TEST(ThreadPool, SharedPoolSizedToHardware) {
  EXPECT_EQ(ThreadPool::shared().worker_count(),
            std::max(1u, default_thread_count() - 1));
  EXPECT_FALSE(ThreadPool::on_worker_thread());  // the test thread
}

TEST(ThreadPool, PinnedConstructionReportsAffinity) {
  ThreadPoolConfig config;
  config.workers = 2;
  config.pin_workers = true;
  ThreadPool pool(config);
  EXPECT_EQ(pool.worker_count(), 2u);
  EXPECT_TRUE(pool.pin_requested());
#ifdef __linux__
  // Affinity is set in the constructor via the native handle, so the
  // count is exact here — no racing the workers' startup.
  EXPECT_EQ(pool.pinned_workers(), 2u);
#else
  EXPECT_EQ(pool.pinned_workers(), 0u);
#endif
  // Pinning never changes what runs, only where.
  std::vector<std::atomic<int>> hits(257);
  pool.run(0, 257, 8, 3, [&](std::int64_t i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, UnpinnedPoolReportsNoAffinity) {
  ThreadPool pool(2);
  EXPECT_FALSE(pool.pin_requested());
  EXPECT_EQ(pool.pinned_workers(), 0u);
}

TEST(ThreadPool, SharedPinnedPoolSizedToHardware) {
  ThreadPool& pool = ThreadPool::shared_pinned();
  EXPECT_EQ(pool.worker_count(), std::max(1u, default_thread_count() - 1));
  EXPECT_TRUE(pool.pin_requested());
  EXPECT_EQ(&pool, &ThreadPool::shared_pinned());  // one instance
  EXPECT_NE(&pool, &ThreadPool::shared());         // distinct from floating
}

TEST(ThreadPool, StaticScheduleCoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1031);
  pool.run_static(1031, 4, [&](std::int64_t i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, StaticScheduleIsStableAcrossCalls) {
  // The whole point of run_static: task i always lands on participant
  // i % P, so a shard's state stays on one worker's core across drains.
  ThreadPool pool(3);
  constexpr std::int64_t kTasks = 64;
  std::array<std::thread::id, kTasks> first{};
  pool.run_static(kTasks, 4, [&](std::int64_t i) {
    first[static_cast<std::size_t>(i)] = std::this_thread::get_id();
  });
  for (int round = 0; round < 32; ++round) {
    std::array<std::thread::id, kTasks> now{};
    pool.run_static(kTasks, 4, [&](std::int64_t i) {
      now[static_cast<std::size_t>(i)] = std::this_thread::get_id();
    });
    EXPECT_EQ(first, now);
  }
  // Residue classes really are distinct participants: tasks 0..P-1 ran
  // on P distinct threads (P = min(max_threads, workers + 1) = 4).
  const std::set<std::thread::id> participants(first.begin(),
                                               first.begin() + 4);
  EXPECT_EQ(participants.size(), 4u);
  for (std::int64_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(first[static_cast<std::size_t>(i)],
              first[static_cast<std::size_t>(i % 4)]);
  }
}

TEST(ThreadPool, StaticSchedulePropagatesExceptions) {
  ThreadPool pool(2);
  std::atomic<int> executed{0};
  EXPECT_THROW(pool.run_static(90, 3,
                               [&](std::int64_t i) {
                                 if (i == 37) throw std::runtime_error("boom");
                                 executed.fetch_add(1);
                               }),
               std::runtime_error);
  // Class 37 % 3 = 1 stops after the throw: tasks 40, 43, ... 88 (17 of
  // them) are skipped along with 37 itself; the other classes finish.
  EXPECT_EQ(executed.load(), 90 - 1 - 17);
}

TEST(ThreadPool, StaticScheduleInlineFallbacks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.run_static(0, 4, [&](std::int64_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 0);  // empty
  pool.run_static(1, 4, [&](std::int64_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 1);  // singleton inline
  pool.run_static(10, 1, [&](std::int64_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 11);  // max_threads=1 inline

  ThreadPool empty(0);
  empty.run_static(10, 8, [&](std::int64_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 21);  // no workers: inline

  std::atomic<int> inner{0};
  pool.run_static(4, 3, [&](std::int64_t) {
    pool.run_static(10, 3, [&](std::int64_t) { inner.fetch_add(1); });
  });
  EXPECT_EQ(inner.load(), 40);  // nested: inline, no deadlock
}

}  // namespace
}  // namespace smerge::util
