// Tests for the discrete-event multi-object simulation engine: sharding
// determinism, policy correctness against the analytic costs, delay
// guarantees, and the channel-capacity model.
#include "sim/engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "core/full_cost.h"
#include "merging/batching.h"
#include "online/delay_guaranteed.h"
#include "sim/experiment.h"

namespace smerge::sim {
namespace {

EngineConfig small_config() {
  EngineConfig config;
  config.workload.process = ArrivalProcess::kPoisson;
  config.workload.objects = 16;
  config.workload.zipf_exponent = 1.0;
  config.workload.mean_gap = 0.002;
  config.workload.horizon = 5.0;
  config.workload.seed = 17;
  config.delay = 0.02;
  // The CI TSan leg re-runs this suite with SMERGE_PIN_WORKERS=1 so the
  // pinned static drain schedule races under the same scrutiny as the
  // floating pool; results are identical either way (pure mechanism).
  config.pin_workers = std::getenv("SMERGE_PIN_WORKERS") != nullptr;
  return config;
}

void expect_identical(const EngineResult& a, const EngineResult& b) {
  EXPECT_EQ(a.total_arrivals, b.total_arrivals);
  EXPECT_EQ(a.total_streams, b.total_streams);
  // Bit-identical, not approximately equal: the reduction order is fixed.
  EXPECT_EQ(a.streams_served, b.streams_served);
  EXPECT_EQ(a.wait.mean, b.wait.mean);
  EXPECT_EQ(a.wait.p50, b.wait.p50);
  EXPECT_EQ(a.wait.p95, b.wait.p95);
  EXPECT_EQ(a.wait.p99, b.wait.p99);
  EXPECT_EQ(a.wait.max, b.wait.max);
  EXPECT_EQ(a.peak_concurrency, b.peak_concurrency);
  EXPECT_EQ(a.guarantee_violations, b.guarantee_violations);
  EXPECT_EQ(a.capacity_violations, b.capacity_violations);
  EXPECT_EQ(a.per_object, b.per_object);
}

TEST(Engine, BitIdenticalAcrossThreadCounts) {
  for (const bool batched : {false, true}) {
    GreedyMergePolicy policy(merging::DyadicParams{}, batched);
    EngineConfig config = small_config();
    config.threads = 1;
    const EngineResult serial = run_engine(config, policy);
    config.threads = 2;
    const EngineResult two = run_engine(config, policy);
    config.threads = 8;
    const EngineResult eight = run_engine(config, policy);
    expect_identical(serial, two);
    expect_identical(serial, eight);
  }
}

TEST(Engine, DelayGuaranteedMatchesAnalyticCost) {
  // One object, delay 5% -> L = 20 slots, horizon 10 media -> n = 200
  // slots: the engine's DG bandwidth must equal A(L,n)/L.
  EngineConfig config = small_config();
  config.workload.objects = 1;
  config.workload.horizon = 10.0;
  config.delay = 0.05;
  DelayGuaranteedPolicy policy;
  const EngineResult outcome = run_engine(config, policy);
  const DelayGuaranteedOnline dg(20);
  const double analytic = static_cast<double>(dg.cost(200)) / 20.0;
  EXPECT_NEAR(outcome.streams_served, analytic, 1e-9 * analytic);
  EXPECT_EQ(outcome.total_streams, 200);
}

TEST(Engine, DelayGuaranteedCoversFractionalFinalSlot) {
  // Regression: with a horizon that is not a whole number of slots
  // (5.288 / 0.02 = 264.4), a client arriving in the fractional tail
  // maps to slot 264 — the schedule must include that stream instead of
  // admitting to a phantom.
  EngineConfig config = small_config();
  config.workload.objects = 1;
  config.workload.horizon = 5.288;
  config.delay = 0.02;
  DelayGuaranteedPolicy policy;
  const EngineResult outcome = run_engine(config, policy);
  EXPECT_EQ(outcome.total_streams, 265);
  EXPECT_EQ(outcome.guarantee_violations, 0);
}

TEST(Engine, CollectedIntervalsFeedChannelPlanning) {
  EngineConfig config = small_config();
  BatchingPolicy policy;
  const EngineResult bare = run_engine(config, policy);
  EXPECT_TRUE(bare.stream_intervals.empty());

  config.collect_stream_intervals = true;
  const EngineResult collected = run_engine(config, policy);
  ASSERT_EQ(static_cast<Index>(collected.stream_intervals.size()),
            collected.total_streams);
  EXPECT_TRUE(std::is_sorted(collected.stream_intervals.begin(),
                             collected.stream_intervals.end(),
                             [](const StreamInterval& a, const StreamInterval& b) {
                               return a.start < b.start;
                             }));
  // The greedy channel plan over the collected intervals provisions
  // exactly the engine's measured peak.
  const ChannelAssignment plan = assign_channels(collected.stream_intervals);
  EXPECT_EQ(plan.channels_used, collected.peak_concurrency);
}

TEST(Engine, CollectedPlansVerifyForEveryPolicy) {
  // The engine's per-object output as the canonical IR: every shipped
  // policy's plans must pass the universal verifier, reproduce the
  // engine's own aggregates, and respect the delay guarantee.
  EngineConfig config = small_config();
  config.collect_plans = true;
  DelayGuaranteedPolicy dg;
  BatchingPolicy batching;
  GreedyMergePolicy greedy_imm(merging::DyadicParams{}, /*batched=*/false);
  GreedyMergePolicy greedy_bat(merging::DyadicParams{}, /*batched=*/true);
  OnlinePolicy* const policies[] = {&dg, &batching, &greedy_imm, &greedy_bat};
  for (OnlinePolicy* policy : policies) {
    const EngineResult result = run_engine(config, *policy);
    ASSERT_EQ(static_cast<Index>(result.plans.size()), config.workload.objects)
        << policy->name();
    double planned_cost = 0.0;
    Index planned_streams = 0;
    for (std::size_t m = 0; m < result.plans.size(); ++m) {
      const plan::MergePlan& p = result.plans[m];
      const plan::PlanReport report = plan::verify(p);
      EXPECT_TRUE(report.ok)
          << policy->name() << " object " << m << ": " << report.first_error;
      EXPECT_EQ(report.peak_bandwidth, result.per_object[m].peak_concurrency)
          << policy->name() << " object " << m;
      // Waits recorded into the IR never exceed the configured delay
      // (the greedy immediate policy admits at the arrival instant).
      EXPECT_FALSE(violates_guarantee(report.max_delay, config.delay))
          << policy->name() << " object " << m;
      planned_cost += report.total_cost;
      planned_streams += p.size();
    }
    EXPECT_NEAR(planned_cost, result.streams_served, 1e-6) << policy->name();
    EXPECT_EQ(planned_streams, result.total_streams) << policy->name();
  }
  // Plans are off by default.
  config.collect_plans = false;
  EXPECT_TRUE(run_engine(config, batching).plans.empty());
}

TEST(Engine, DelayGuaranteedCostIsDemandIndependent) {
  DelayGuaranteedPolicy policy;
  EngineConfig light = small_config();
  light.workload.mean_gap = 0.05;
  EngineConfig heavy = small_config();
  heavy.workload.mean_gap = 0.001;
  heavy.workload.seed = 99;
  const EngineResult a = run_engine(light, policy);
  const EngineResult b = run_engine(heavy, policy);
  EXPECT_DOUBLE_EQ(a.streams_served, b.streams_served);
  EXPECT_EQ(a.peak_concurrency, b.peak_concurrency);
}

TEST(Engine, SimulatedDgRespectsTheorem22Bound) {
  // The satellite cross-check: the simulated on-line cost over the
  // engine, divided by the off-line optimum on the same slotted
  // instance, sits below Theorem 22's 1 + 2L/n (L = 10, n = 150 > L^2+2).
  constexpr Index kL = 10;
  constexpr Index kN = 150;
  EngineConfig config = small_config();
  config.workload.objects = 1;
  config.workload.horizon = 15.0;
  config.delay = 0.1;
  DelayGuaranteedPolicy policy;
  const EngineResult outcome = run_engine(config, policy);
  const double offline =
      static_cast<double>(full_cost(kL, kN)) / static_cast<double>(kL);
  const double ratio = outcome.streams_served / offline;
  EXPECT_GE(ratio, 1.0 - 1e-9);
  EXPECT_LE(ratio, DelayGuaranteedOnline::theorem22_bound(kL, kN));
}

TEST(Engine, GreedyPoliciesMatchLegacyRunners) {
  EngineConfig config = small_config();
  config.workload.objects = 1;
  const auto arrivals = generate_arrivals(config.workload, 0);
  ASSERT_GT(arrivals.size(), 100u);

  GreedyMergePolicy immediate(merging::DyadicParams{}, false);
  const EngineResult imm = run_engine(config, immediate);
  const BandwidthResult legacy_imm = run_dyadic(arrivals);
  EXPECT_NEAR(imm.streams_served, legacy_imm.streams_served,
              1e-9 * legacy_imm.streams_served);
  EXPECT_EQ(imm.peak_concurrency, legacy_imm.peak_concurrency);
  EXPECT_EQ(imm.total_streams, legacy_imm.streams_started);

  GreedyMergePolicy batched(merging::DyadicParams{}, true);
  const EngineResult bat = run_engine(config, batched);
  const BandwidthResult legacy_bat = run_batched_dyadic(arrivals, config.delay);
  EXPECT_NEAR(bat.streams_served, legacy_bat.streams_served,
              1e-9 * legacy_bat.streams_served);
}

TEST(Engine, BatchingPolicyMatchesBatchingCost) {
  EngineConfig config = small_config();
  config.workload.objects = 1;
  const auto arrivals = generate_arrivals(config.workload, 0);
  BatchingPolicy policy;
  const EngineResult outcome = run_engine(config, policy);
  EXPECT_DOUBLE_EQ(outcome.streams_served,
                   merging::batching_cost(arrivals, 1.0, config.delay));
  EXPECT_EQ(outcome.total_streams,
            static_cast<Index>(
                merging::batch_arrivals(arrivals, config.delay).size()));
}

TEST(Engine, WaitGuaranteesHold) {
  EngineConfig config = small_config();

  GreedyMergePolicy immediate(merging::DyadicParams{}, false);
  const EngineResult imm = run_engine(config, immediate);
  EXPECT_EQ(imm.wait.max, 0.0);
  EXPECT_EQ(imm.guarantee_violations, 0);

  for (const bool use_batching_policy : {false, true}) {
    EngineResult outcome;
    if (use_batching_policy) {
      BatchingPolicy policy;
      outcome = run_engine(config, policy);
    } else {
      GreedyMergePolicy policy(merging::DyadicParams{}, true);
      outcome = run_engine(config, policy);
    }
    EXPECT_GT(outcome.wait.p99, 0.0);
    EXPECT_FALSE(violates_guarantee(outcome.wait.max, config.delay));
    EXPECT_EQ(outcome.guarantee_violations, 0);
    EXPECT_GE(outcome.wait.p50, 0.0);
    EXPECT_LE(outcome.wait.p50, outcome.wait.p95);
    EXPECT_LE(outcome.wait.p95, outcome.wait.p99);
    EXPECT_LE(outcome.wait.p99, outcome.wait.max);
  }
}

TEST(Engine, PerObjectOutcomesSumToTotals) {
  GreedyMergePolicy policy(merging::DyadicParams{}, true);
  const EngineResult outcome = run_engine(small_config(), policy);
  Index arrivals = 0;
  Index streams = 0;
  double cost = 0.0;
  Index violations = 0;
  Index max_object_peak = 0;
  for (const ObjectOutcome& object : outcome.per_object) {
    arrivals += object.arrivals;
    streams += object.streams;
    cost += object.cost;
    violations += object.violations;
    max_object_peak = std::max(max_object_peak, object.peak_concurrency);
  }
  EXPECT_EQ(arrivals, outcome.total_arrivals);
  EXPECT_EQ(streams, outcome.total_streams);
  EXPECT_NEAR(cost, outcome.streams_served, 1e-9 * cost);
  EXPECT_EQ(violations, outcome.guarantee_violations);
  // The server-wide peak dominates each object's own peak but never the
  // sum of them.
  EXPECT_GE(outcome.peak_concurrency, max_object_peak);
}

TEST(Engine, CapacityViolationsCounted) {
  // Dense arrivals on a catalogue force overlapping full streams; a
  // one-channel server must report saturated stream starts, and the
  // uncapped run must not.
  EngineConfig config = small_config();
  BatchingPolicy policy;
  const EngineResult uncapped = run_engine(config, policy);
  EXPECT_EQ(uncapped.capacity_violations, 0);
  ASSERT_GT(uncapped.peak_concurrency, 1);

  config.channel_capacity = 1;
  const EngineResult capped = run_engine(config, policy);
  EXPECT_GT(capped.capacity_violations, 0);
  // Capacity accounting observes, never rejects: same schedule.
  EXPECT_DOUBLE_EQ(capped.streams_served, uncapped.streams_served);
  EXPECT_EQ(capped.peak_concurrency, uncapped.peak_concurrency);
}

TEST(Engine, Validation) {
  GreedyMergePolicy policy(merging::DyadicParams{}, false);
  EngineConfig bad_delay = small_config();
  bad_delay.delay = 0.0;
  EXPECT_THROW((void)run_engine(bad_delay, policy), std::invalid_argument);
  EngineConfig bad_threads = small_config();
  bad_threads.threads = 0;
  EXPECT_THROW((void)run_engine(bad_threads, policy), std::invalid_argument);
  EngineConfig bad_capacity = small_config();
  bad_capacity.channel_capacity = -1;
  EXPECT_THROW((void)run_engine(bad_capacity, policy), std::invalid_argument);
  DelayGuaranteedPolicy unprepared;
  EXPECT_THROW((void)unprepared.make_object_policy(0.02, 5.0), std::logic_error);
  // DG's slotted model needs delay = 1/L; slot-incommensurate delays
  // are rejected rather than silently misaligning the schedule. The
  // slot-free policies accept any delay in (0, 1].
  EngineConfig odd_delay = small_config();
  odd_delay.delay = 0.03;
  DelayGuaranteedPolicy dg;
  EXPECT_THROW((void)run_engine(odd_delay, dg), std::invalid_argument);
  GreedyMergePolicy batched_odd(merging::DyadicParams{}, true);
  EXPECT_NO_THROW((void)run_engine(odd_delay, batched_odd));
}

}  // namespace
}  // namespace smerge::sim
