// Tests for the on-line Delay Guaranteed algorithm (Section 4.1):
// exact costs, the Theorem-21 bound, the Theorem-22 competitive ratio and
// the produced forests.
#include "online/delay_guaranteed.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/tree_builder.h"
#include "schedule/playback.h"

namespace smerge {
namespace {

TEST(DelayGuaranteedOnline, BlockSizeFollowsTheoremTwelve) {
  // L=15 => h=6 => blocks of F_6 = 8 arrivals; L=100 => h=10 => F_10 = 55.
  EXPECT_EQ(DelayGuaranteedOnline(15).block_size(), 8);
  EXPECT_EQ(DelayGuaranteedOnline(15).theorem_index(), 6);
  EXPECT_EQ(DelayGuaranteedOnline(100).block_size(), 55);
  EXPECT_EQ(DelayGuaranteedOnline(1).block_size(), 1);
  EXPECT_EQ(DelayGuaranteedOnline(2).block_size(), 2);
}

TEST(DelayGuaranteedOnline, TemplateIsOptimalTree) {
  const DelayGuaranteedOnline dg(15);
  EXPECT_EQ(dg.template_tree(), optimal_merge_tree(8));
  EXPECT_EQ(dg.template_tree().merge_cost(), merge_cost(8));
}

TEST(DelayGuaranteedOnline, ExactCostFullBlocks) {
  const DelayGuaranteedOnline dg(15);
  // Each full block costs L + M(F_h) = 15 + 21.
  EXPECT_EQ(dg.cost(0), 0);
  EXPECT_EQ(dg.cost(8), 36);
  EXPECT_EQ(dg.cost(16), 72);
  EXPECT_EQ(dg.cost(80), 360);
}

TEST(DelayGuaranteedOnline, ExactCostPartialBlocks) {
  const DelayGuaranteedOnline dg(15);
  // The pruned final tree pays the prefix cost of the template.
  const MergeTree& tpl = dg.template_tree();
  for (Index r = 1; r < 8; ++r) {
    EXPECT_EQ(dg.cost(r), 15 + tpl.prefix(r).merge_cost()) << "r=" << r;
    EXPECT_EQ(dg.cost(8 + r), 36 + 15 + tpl.prefix(r).merge_cost()) << "r=" << r;
  }
}

TEST(DelayGuaranteedOnline, PrefixCostsMatchDirectComputation) {
  for (const Index L : {4, 15, 34, 100, 377}) {
    const DelayGuaranteedOnline dg(L);
    const MergeTree& tpl = dg.template_tree();
    for (Index r = 1; r <= dg.block_size(); ++r) {
      EXPECT_EQ(dg.cost(r), L + tpl.prefix(r).merge_cost())
          << "L=" << L << " r=" << r;
    }
  }
}

TEST(DelayGuaranteedOnline, CostNeverBelowOptimal) {
  for (const Index L : {7, 15, 34, 100}) {
    const DelayGuaranteedOnline dg(L);
    for (Index n = 1; n <= 6 * dg.block_size(); ++n) {
      EXPECT_GE(dg.cost(n), full_cost(L, n)) << "L=" << L << " n=" << n;
    }
  }
}

TEST(DelayGuaranteedOnline, TheoremTwentyOneBound) {
  for (const Index L : {7, 15, 34, 100}) {
    const DelayGuaranteedOnline dg(L);
    for (Index n = 1; n <= 5 * dg.block_size(); n += 3) {
      EXPECT_LE(dg.cost(n), dg.cost_upper_bound(n)) << "L=" << L << " n=" << n;
    }
  }
}

TEST(DelayGuaranteedOnline, TheoremTwentyTwoRatio) {
  // A(L,n)/F(L,n) <= 1 + 2L/n for L >= 7, n > L^2 + 2.
  for (const Index L : {7, 10, 15, 21}) {
    const DelayGuaranteedOnline dg(L);
    for (const Index n : {L * L + 3, 2 * L * L, 10 * L * L}) {
      const double ratio = static_cast<double>(dg.cost(n)) /
                           static_cast<double>(full_cost(L, n));
      EXPECT_LE(ratio, DelayGuaranteedOnline::theorem22_bound(L, n))
          << "L=" << L << " n=" << n;
    }
  }
  EXPECT_THROW((void)DelayGuaranteedOnline::theorem22_bound(6, 1000), std::invalid_argument);
  EXPECT_THROW((void)DelayGuaranteedOnline::theorem22_bound(7, 51), std::invalid_argument);
}

TEST(DelayGuaranteedOnline, RatioApproachesOneWithHorizon) {
  // Fig. 9: the on-line/off-line ratio tends to 1 as n grows.
  const Index L = 50;
  const DelayGuaranteedOnline dg(L);
  double prev_ratio = 1e9;
  for (const Index n : {100, 1'000, 10'000, 100'000}) {
    const double ratio = static_cast<double>(dg.cost(n)) /
                         static_cast<double>(full_cost(L, n));
    EXPECT_GE(ratio, 1.0);
    EXPECT_LE(ratio, prev_ratio * 1.0001) << "n=" << n;  // non-increasing-ish
    prev_ratio = ratio;
  }
  EXPECT_NEAR(prev_ratio, 1.0, 0.01);
}

TEST(DelayGuaranteedOnline, ForestMatchesCostAndVerifies) {
  for (const Index L : {15, 34}) {
    const DelayGuaranteedOnline dg(L);
    for (const Index n : {5, 8, 20, 55, 100}) {
      const MergeForest forest = dg.forest(n);
      EXPECT_EQ(forest.size(), n);
      EXPECT_EQ(forest.full_cost(), dg.cost(n)) << "L=" << L << " n=" << n;
      const ForestReport report = verify_forest(forest);
      EXPECT_TRUE(report.ok) << "L=" << L << " n=" << n << ": " << report.first_error;
      // The canonical-IR oracle agrees with the slotted verifier.
      const plan::PlanReport plan_report = plan::verify(dg.to_plan(n));
      EXPECT_TRUE(plan_report.ok)
          << "L=" << L << " n=" << n << ": " << plan_report.first_error;
      EXPECT_DOUBLE_EQ(plan_report.total_cost, static_cast<double>(dg.cost(n)));
    }
  }
}

TEST(DelayGuaranteedOnline, StreamLengthLookup) {
  const DelayGuaranteedOnline dg(15);
  const Index horizon = 20;  // 2 full blocks of 8 + partial of 4
  // Block starts are full streams.
  EXPECT_EQ(dg.stream_length(0, horizon), 15);
  EXPECT_EQ(dg.stream_length(8, horizon), 15);
  EXPECT_EQ(dg.stream_length(16, horizon), 15);
  // Within a full block lengths follow the template (tree 0(1 2 3(4) 5(6 7))).
  EXPECT_EQ(dg.stream_length(5, horizon), 9);   // template node 5
  EXPECT_EQ(dg.stream_length(13, horizon), 9);  // same node, second block
  // The final partial block clips z: template node 3 has z=4, but with
  // only arrivals 16..19 alive, node 3's subtree is {3} -> leaf length 3.
  EXPECT_EQ(dg.stream_length(19, horizon), 3);
  EXPECT_THROW((void)dg.stream_length(20, horizon), std::invalid_argument);
  EXPECT_THROW((void)dg.stream_length(-1, horizon), std::invalid_argument);
}

TEST(DelayGuaranteedOnline, StreamLengthsSumToCost) {
  for (const Index L : {15, 100}) {
    const DelayGuaranteedOnline dg(L);
    for (const Index n : {7, 55, 123}) {
      Cost sum = 0;
      for (Index t = 0; t < n; ++t) sum += dg.stream_length(t, n);
      EXPECT_EQ(sum, dg.cost(n)) << "L=" << L << " n=" << n;
    }
  }
}

TEST(DelayGuaranteedOnline, Validation) {
  EXPECT_THROW(DelayGuaranteedOnline(0), std::invalid_argument);
  EXPECT_THROW(DelayGuaranteedOnline(-5), std::invalid_argument);
  const DelayGuaranteedOnline dg(15);
  EXPECT_THROW((void)dg.cost(-1), std::invalid_argument);
  EXPECT_THROW(dg.forest(0), std::invalid_argument);
}

}  // namespace
}  // namespace smerge
