// Tests for the Section-5 hybrid server extension.
#include "sim/hybrid.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/arrivals.h"

namespace smerge::sim {
namespace {

HybridParams default_params() {
  HybridParams p;
  p.delay = 0.01;
  p.window = 3;
  return p;
}

TEST(Hybrid, DenseTrafficRunsDelayGuaranteed) {
  // Constant arrivals denser than the delay keep every slot busy: after
  // the warm-up window the server must sit in DG mode.
  const auto arrivals = constant_arrivals(0.002, 20.0);
  const HybridOutcome out = run_hybrid(arrivals, 20.0, default_params());
  EXPECT_GT(out.dg_slots, out.dyadic_slots * 50);
  EXPECT_LE(out.mode_switches, 2);
}

TEST(Hybrid, SparseTrafficRunsDyadic) {
  const auto arrivals = constant_arrivals(0.5, 20.0);  // 50x the delay
  const HybridOutcome out = run_hybrid(arrivals, 20.0, default_params());
  EXPECT_EQ(out.dg_slots, 0);
  EXPECT_EQ(out.mode_switches, 0);
}

TEST(Hybrid, DenseCostTracksDelayGuaranteed) {
  const auto arrivals = constant_arrivals(0.002, 20.0);
  const HybridOutcome out = run_hybrid(arrivals, 20.0, default_params());
  const double dg = run_delay_guaranteed(0.01, 20.0).streams_served;
  // Identical up to the warm-up slots served by the dyadic merger.
  EXPECT_NEAR(out.bandwidth.streams_served, dg, dg * 0.10);
}

TEST(Hybrid, SparseCostTracksDyadic) {
  const auto arrivals = constant_arrivals(0.5, 20.0);
  const HybridOutcome out = run_hybrid(arrivals, 20.0, default_params());
  const double dyadic = run_dyadic(arrivals).streams_served;
  EXPECT_NEAR(out.bandwidth.streams_served, dyadic, 1e-9);
}

TEST(Hybrid, BoundedOverheadAtTheCrossover) {
  // Poisson traffic with mean gap == delay sits exactly at the Fig.-11
  // crossover; hysteresis then thrashes and every short DG run pays a
  // fresh full stream, so the hybrid can exceed both pure policies — but
  // only by the mode-switch overhead, which stays a bounded fraction.
  const auto arrivals = poisson_arrivals(0.01, 40.0, 5);
  const HybridOutcome out = run_hybrid(arrivals, 40.0, default_params());
  const double dg = run_delay_guaranteed(0.01, 40.0).streams_served;
  const double dyadic = run_dyadic(arrivals).streams_served;
  EXPECT_LE(out.bandwidth.streams_served, std::max(dg, dyadic) * 1.25);
  EXPECT_GT(out.bandwidth.streams_served, 0.0);
}

TEST(Hybrid, BurstTrafficSwitchesModes) {
  // A burst in the middle of an idle horizon: dyadic -> DG -> dyadic.
  std::vector<double> arrivals;
  for (double t = 10.0; t <= 12.0; t += 0.004) arrivals.push_back(t);
  const HybridOutcome out = run_hybrid(arrivals, 30.0, default_params());
  EXPECT_GE(out.mode_switches, 2);
  EXPECT_GT(out.dg_slots, 0);
  EXPECT_GT(out.dyadic_slots, 0);
}

TEST(Hybrid, DeterministicForFixedInput) {
  const auto arrivals = poisson_arrivals(0.008, 25.0, 99);
  const HybridOutcome a = run_hybrid(arrivals, 25.0, default_params());
  const HybridOutcome b = run_hybrid(arrivals, 25.0, default_params());
  EXPECT_DOUBLE_EQ(a.bandwidth.streams_served, b.bandwidth.streams_served);
  EXPECT_EQ(a.dg_slots, b.dg_slots);
  EXPECT_EQ(a.mode_switches, b.mode_switches);
}

TEST(Hybrid, Validation) {
  EXPECT_THROW((void)run_hybrid({}, 1.0, HybridParams{0.0, 3, {}}), std::invalid_argument);
  EXPECT_THROW((void)run_hybrid({}, 1.0, HybridParams{0.01, 0, {}}), std::invalid_argument);
  EXPECT_THROW((void)run_hybrid({0.5, 0.2}, 1.0, default_params()), std::invalid_argument);
}

}  // namespace
}  // namespace smerge::sim
