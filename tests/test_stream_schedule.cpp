// Tests for the slot-accurate transmission schedule (StreamSchedule).
#include "schedule/stream_schedule.h"

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>

#include "core/full_cost.h"

namespace smerge {
namespace {

TEST(StreamSchedule, FigureThreeWindows) {
  // Fig. 3 (L=15, n=8): stream A runs 15 slots from t=0, F runs 9 slots
  // from t=5, H runs 2 slots from t=7, D runs 5 slots from t=3.
  const MergeForest forest = optimal_merge_forest(15, 8);
  const StreamSchedule sched(forest);
  EXPECT_EQ(sched.stream(0), (StreamWindow{0, 15}));
  EXPECT_EQ(sched.stream(3), (StreamWindow{3, 5}));
  EXPECT_EQ(sched.stream(5), (StreamWindow{5, 9}));
  EXPECT_EQ(sched.stream(7), (StreamWindow{7, 2}));
  EXPECT_EQ(sched.total_units(), 36);  // the optimal full cost
  EXPECT_EQ(sched.media_length(), 15);
}

TEST(StreamSchedule, SlotOfSegment) {
  const StreamWindow w{5, 9};
  EXPECT_EQ(w.slot_of(1), 5);
  EXPECT_EQ(w.slot_of(9), 13);
  EXPECT_EQ(w.end(), 14);
}

TEST(StreamSchedule, ProfileSumsToTotalUnits) {
  for (const auto& [L, n] : std::vector<std::pair<Index, Index>>{
           {15, 8}, {15, 14}, {4, 16}, {34, 100}, {100, 250}}) {
    const MergeForest forest = optimal_merge_forest(L, n);
    const StreamSchedule sched(forest);
    const Cost profile_sum = std::accumulate(sched.profile().begin(),
                                             sched.profile().end(), Cost{0});
    EXPECT_EQ(profile_sum, sched.total_units()) << "L=" << L << " n=" << n;
    EXPECT_EQ(sched.total_units(), forest.full_cost()) << "L=" << L << " n=" << n;
    EXPECT_GE(sched.peak_bandwidth(), 1) << "L=" << L;
    EXPECT_LE(sched.peak_bandwidth(),
              *std::max_element(sched.profile().begin(), sched.profile().end()));
  }
}

TEST(StreamSchedule, HorizonCoversLastStream) {
  const MergeForest forest = optimal_merge_forest(15, 8);
  const StreamSchedule sched(forest);
  EXPECT_EQ(sched.horizon_end(), 15);  // root A ends last: 0 + 15
  // Every stream ends within the horizon.
  for (Index x = 0; x < sched.size(); ++x) {
    EXPECT_LE(sched.stream(x).end(), sched.horizon_end());
  }
}

TEST(StreamSchedule, ReceiveAllUsesShorterStreams) {
  const MergeForest two = optimal_merge_forest(16, 32, Model::kReceiveTwo);
  const MergeForest all = optimal_merge_forest(16, 32, Model::kReceiveAll);
  const StreamSchedule s_two(two);
  const StreamSchedule s_all(all, Model::kReceiveAll);
  EXPECT_LT(s_all.total_units(), s_two.total_units());
}

TEST(StreamSchedule, RejectsInfeasibleForest) {
  // A chain over L arrivals has Lemma-1 lengths above L: not schedulable.
  std::vector<MergeTree> trees;
  trees.push_back(MergeTree::chain(13));
  const MergeForest forest(13, std::move(trees));
  EXPECT_FALSE(forest.feasible());
  EXPECT_THROW(StreamSchedule{forest}, std::invalid_argument);
}

TEST(StreamSchedule, AccessorRangeChecks) {
  const MergeForest forest = optimal_merge_forest(15, 8);
  const StreamSchedule sched(forest);
  EXPECT_THROW((void)sched.stream(-1), std::out_of_range);
  EXPECT_THROW((void)sched.stream(8), std::out_of_range);
}

TEST(StreamSchedule, PeakBandwidthBelowStreamCount) {
  // Peak concurrency cannot exceed the number of streams, and for the
  // delay-guaranteed model it is at least ceil(Fcost / horizon).
  const MergeForest forest = optimal_merge_forest(20, 60);
  const StreamSchedule sched(forest);
  EXPECT_LE(sched.peak_bandwidth(), forest.size());
  const Cost avg_ceil =
      (sched.total_units() + sched.horizon_end() - 1) / sched.horizon_end();
  EXPECT_GE(sched.peak_bandwidth(), avg_ceil);
}

}  // namespace
}  // namespace smerge
