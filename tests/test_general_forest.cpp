// Tests for the continuous-time merge forest substrate.
#include "merging/general_forest.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace smerge::merging {
namespace {

TEST(GeneralMergeForest, SingleRootCostsMediaLength) {
  GeneralMergeForest f(1.0);
  f.add_stream(0.0, -1);
  EXPECT_EQ(f.size(), 1);
  EXPECT_EQ(f.num_roots(), 1);
  EXPECT_DOUBLE_EQ(f.total_cost(), 1.0);
  EXPECT_DOUBLE_EQ(f.stream_duration(0), 1.0);
}

TEST(GeneralMergeForest, LemmaOneLengthsInContinuousTime) {
  // Mirror of the slotted Fig.-3 instance scaled by 1/15: stream F at
  // 5/15 with z = 7/15 merging into the root must run 2z - x - p = 9/15.
  GeneralMergeForest f(1.0);
  const double u = 1.0 / 15.0;
  f.add_stream(0.0, -1);       // A
  f.add_stream(5 * u, 0);      // F
  f.add_stream(6 * u, 1);      // G
  f.add_stream(7 * u, 1);      // H
  EXPECT_NEAR(f.stream_duration(1), 9 * u, 1e-12);
  EXPECT_NEAR(f.stream_duration(2), 1 * u, 1e-12);
  EXPECT_NEAR(f.stream_duration(3), 2 * u, 1e-12);
  EXPECT_NEAR(f.last_descendant_time(1), 7 * u, 1e-12);
  EXPECT_NEAR(f.total_cost(), 1.0 + 12 * u, 1e-12);
}

TEST(GeneralMergeForest, RejectsMalformedAppends) {
  GeneralMergeForest f(1.0);
  f.add_stream(0.5, -1);
  EXPECT_THROW(f.add_stream(0.4, -1), std::invalid_argument);   // time goes back
  EXPECT_THROW(f.add_stream(0.6, 5), std::invalid_argument);    // bad parent
  EXPECT_THROW(f.add_stream(0.5, 0), std::invalid_argument);    // parent not earlier
  EXPECT_THROW(GeneralMergeForest(0.0), std::invalid_argument);
  EXPECT_THROW((void)f.stream(3), std::out_of_range);
}

TEST(GeneralMergeForest, PeakConcurrency) {
  GeneralMergeForest f(1.0);
  f.add_stream(0.0, -1);   // [0, 1)
  f.add_stream(0.2, 0);    // leaf: duration 2*0.2-0.2-0 = 0.2 -> [0.2, 0.4)
  f.add_stream(0.3, 0);    // leaf: duration 0.3 -> [0.3, 0.6)
  EXPECT_EQ(f.peak_concurrency(), 3);  // all overlap during [0.3, 0.4)
  GeneralMergeForest g(1.0);
  g.add_stream(0.0, -1);
  g.add_stream(2.0, -1);  // disjoint roots
  EXPECT_EQ(g.peak_concurrency(), 1);
  // The canonical-IR cross-check: identical structure, cost and peak.
  const plan::MergePlan p = f.to_plan();
  EXPECT_TRUE(plan::verify(p).ok);
  EXPECT_NEAR(p.total_cost(), f.total_cost(), 1e-12);
  EXPECT_EQ(p.peak_bandwidth(), 3);
  EXPECT_EQ(p.parent()[2], 0);
  EXPECT_DOUBLE_EQ(p.merge_time()[2], 2.0 * 0.3 - 0.0);
}

TEST(GeneralMergeForest, MergeCompletionCheck) {
  // A child merging into the root at 2z - p <= p + L is fine...
  GeneralMergeForest ok(1.0);
  ok.add_stream(0.0, -1);
  ok.add_stream(0.4, 0);  // merge point 0.8 <= 1.0
  EXPECT_TRUE(ok.merges_complete_in_time());
  // ...but a late child's subtree outliving the root is flagged.
  GeneralMergeForest bad(1.0);
  bad.add_stream(0.0, -1);
  bad.add_stream(0.6, 0);  // merge point 1.2 > 1.0
  EXPECT_FALSE(bad.merges_complete_in_time());
}

TEST(GeneralMergeForest, CacheInvalidationOnGrowth) {
  GeneralMergeForest f(1.0);
  f.add_stream(0.0, -1);
  f.add_stream(0.1, 0);
  EXPECT_NEAR(f.stream_duration(1), 0.1, 1e-12);  // leaf for now
  f.add_stream(0.2, 1);                           // now 0.1 has a child
  EXPECT_NEAR(f.stream_duration(1), 2 * 0.2 - 0.1 - 0.0, 1e-12);
}

}  // namespace
}  // namespace smerge::merging
