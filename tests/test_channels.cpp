// Tests for the physical channel assignment (interval scheduling).
#include "schedule/channels.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/full_cost.h"
#include "online/delay_guaranteed.h"

namespace smerge {
namespace {

void expect_valid(const StreamSchedule& schedule, const ChannelAssignment& asg) {
  // No two streams on the same channel may overlap in time.
  ASSERT_EQ(asg.channel_of.size(), static_cast<std::size_t>(schedule.size()));
  for (Index a = 0; a < schedule.size(); ++a) {
    for (Index b = a + 1; b < schedule.size(); ++b) {
      if (asg.channel_of[static_cast<std::size_t>(a)] !=
          asg.channel_of[static_cast<std::size_t>(b)]) {
        continue;
      }
      const StreamWindow& wa = schedule.stream(a);
      const StreamWindow& wb = schedule.stream(b);
      EXPECT_TRUE(wa.end() <= wb.start || wb.end() <= wa.start)
          << "streams " << a << " and " << b << " overlap on channel "
          << asg.channel_of[static_cast<std::size_t>(a)];
    }
  }
  for (const Index c : asg.channel_of) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, asg.channels_used);
  }
}

TEST(Channels, FigureThreeInstance) {
  const StreamSchedule schedule{optimal_merge_forest(15, 8)};
  const ChannelAssignment asg = assign_channels(schedule);
  expect_valid(schedule, asg);
  EXPECT_EQ(asg.channels_used, schedule.peak_bandwidth());
  // The root must sit alone on its channel (it spans the whole horizon).
  const Index root_channel = asg.channel_of[0];
  for (Index x = 1; x < schedule.size(); ++x) {
    EXPECT_NE(asg.channel_of[static_cast<std::size_t>(x)], root_channel);
  }
}

class ChannelSweep : public ::testing::TestWithParam<std::tuple<Index, Index>> {};

TEST_P(ChannelSweep, GreedyIsOptimalEverywhere) {
  const auto [L, n] = GetParam();
  const StreamSchedule schedule{optimal_merge_forest(L, n)};
  const ChannelAssignment asg = assign_channels(schedule);
  expect_valid(schedule, asg);
  // Interval-graph coloring: greedy by start time is exactly peak-optimal.
  EXPECT_EQ(asg.channels_used, schedule.peak_bandwidth());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ChannelSweep,
    ::testing::Combine(::testing::Values<Index>(2, 8, 15, 55),
                       ::testing::Values<Index>(1, 8, 40, 160)));

TEST(Channels, OnlineForestAssignment) {
  const DelayGuaranteedOnline policy(34);
  const StreamSchedule schedule{policy.forest(100)};
  const ChannelAssignment asg = assign_channels(schedule);
  expect_valid(schedule, asg);
  EXPECT_EQ(asg.channels_used, schedule.peak_bandwidth());
}

TEST(Channels, IntervalOverloadMatchesPeakOverlap) {
  // Continuous-time intervals from a small engine-style run: the greedy
  // assignment must use exactly the peak-overlap many channels and keep
  // channels conflict-free.
  const std::vector<StreamInterval> intervals{
      {0.0, 1.0}, {0.1, 0.4}, {0.2, 0.3}, {0.4, 0.9}, {1.0, 2.0}, {1.5, 1.8}};
  const ChannelAssignment asg = assign_channels(intervals);
  std::vector<ChannelEvent> events;
  for (const StreamInterval& w : intervals) {
    events.push_back({w.start, +1});
    events.push_back({w.end, -1});
  }
  EXPECT_EQ(asg.channels_used, peak_overlap(events));
  EXPECT_EQ(asg.channels_used, 3);
  for (std::size_t a = 0; a < intervals.size(); ++a) {
    for (std::size_t b = a + 1; b < intervals.size(); ++b) {
      if (asg.channel_of[a] != asg.channel_of[b]) continue;
      EXPECT_TRUE(intervals[a].end <= intervals[b].start ||
                  intervals[b].end <= intervals[a].start);
    }
  }
}

TEST(Channels, IntervalOverloadRejectsUnsortedStarts) {
  const std::vector<StreamInterval> unsorted{{1.0, 2.0}, {0.0, 3.0}};
  EXPECT_THROW((void)assign_channels(unsorted), std::invalid_argument);
}

TEST(Channels, PeakOverlapCountsBackToBackOnce) {
  // A stream ending exactly when another starts frees its channel first.
  std::vector<ChannelEvent> events{{0.0, +1}, {1.0, -1}, {1.0, +1}, {2.0, -1}};
  EXPECT_EQ(peak_overlap(events), 1);
  std::vector<ChannelEvent> empty;
  EXPECT_EQ(peak_overlap(empty), 0);
}

TEST(Channels, RenderPlanListsEveryStream) {
  const StreamSchedule schedule{optimal_merge_forest(15, 8)};
  const ChannelAssignment asg = assign_channels(schedule);
  const std::string plan = render_channel_plan(schedule, asg);
  for (const char* name : {"A[0,15)", "F[5,14)", "H[7,9)"}) {
    EXPECT_NE(plan.find(name), std::string::npos) << name;
  }
  EXPECT_EQ(static_cast<Index>(std::count(plan.begin(), plan.end(), '\n')),
            asg.channels_used);
}

}  // namespace
}  // namespace smerge
