// Tests for Theorem 3's last-merge intervals I(n) and the r(i) table that
// drives the O(n) tree construction (Theorem 7) — including the Fig. 8
// reproduction cross-check.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/merge_cost.h"

namespace smerge {
namespace {

TEST(LastMergeInterval, SmallValuesFromTheoremThree) {
  // Derived in Section 3.1's discussion and Fig. 6/7: I(2)={1}, I(3)={2},
  // I(4)={2,3} (two optimal trees for n=4), I(5)={3}, I(6)={3,4},
  // I(7)={4,5}, I(8)={5} (Fibonacci), I(13)={8} (Fibonacci).
  EXPECT_EQ(last_merge_interval(2), (IndexInterval{1, 1}));
  EXPECT_EQ(last_merge_interval(3), (IndexInterval{2, 2}));
  EXPECT_EQ(last_merge_interval(4), (IndexInterval{2, 3}));
  EXPECT_EQ(last_merge_interval(5), (IndexInterval{3, 3}));
  EXPECT_EQ(last_merge_interval(6), (IndexInterval{3, 4}));
  EXPECT_EQ(last_merge_interval(7), (IndexInterval{4, 5}));
  EXPECT_EQ(last_merge_interval(8), (IndexInterval{5, 5}));
  EXPECT_EQ(last_merge_interval(13), (IndexInterval{8, 8}));
}

TEST(LastMergeInterval, FibonacciHorizonsAreSingletons) {
  // For n = F_k the unique last merge is F_{k-1} (the Fibonacci merge
  // tree is unique; end of Section 3.1).
  for (int k = 3; k <= 30; ++k) {
    const IndexInterval iv = last_merge_interval(fib::fibonacci(k));
    EXPECT_EQ(iv.lo, iv.hi) << "k=" << k;
    EXPECT_EQ(iv.lo, fib::fibonacci(k - 1)) << "k=" << k;
  }
}

TEST(LastMergeInterval, RequiresAtLeastTwoArrivals) {
  EXPECT_THROW((void)last_merge_interval(1), std::invalid_argument);
  EXPECT_THROW((void)last_merge_interval(0), std::invalid_argument);
}

TEST(LastMergeInterval, MatchesDpArgminSets) {
  // The Fig.-8 table (2 <= n <= 55) and beyond: Theorem 3's intervals
  // equal the exact argmin sets of H(n, .).
  const Index n_max = 320;
  const auto dp = last_merge_intervals_dp(n_max);
  for (Index n = 2; n <= n_max; ++n) {
    EXPECT_EQ(last_merge_interval(n), dp[static_cast<std::size_t>(n)]) << "n=" << n;
  }
}

TEST(LastMergeInterval, EndpointsAchieveTheMinimum) {
  for (Index n = 2; n <= 2000; ++n) {
    const IndexInterval iv = last_merge_interval(n);
    EXPECT_EQ(last_merge_cost(n, iv.lo), merge_cost(n)) << "n=" << n;
    EXPECT_EQ(last_merge_cost(n, iv.hi), merge_cost(n)) << "n=" << n;
    if (iv.lo > 1) {
      EXPECT_GT(last_merge_cost(n, iv.lo - 1), merge_cost(n)) << "n=" << n;
    }
    if (iv.hi < n - 1) {
      EXPECT_GT(last_merge_cost(n, iv.hi + 1), merge_cost(n)) << "n=" << n;
    }
  }
}

TEST(LastMergeInterval, ObservationFourNesting) {
  // Observation 4: if I(x-1) = [i, j] then I(x) is contained in [i, j+1].
  for (Index n = 3; n <= 2000; ++n) {
    const IndexInterval prev = last_merge_interval(n - 1);
    const IndexInterval cur = last_merge_interval(n);
    EXPECT_GE(cur.lo, prev.lo) << "n=" << n;
    EXPECT_LE(cur.hi, prev.hi + 1) << "n=" << n;
  }
}

TEST(LastMergeTable, MatchesClosedFormMaxima) {
  const Index n_max = 5000;
  const auto table = last_merge_table(n_max);
  EXPECT_EQ(table[1], 0);  // single-arrival sentinel
  for (Index i = 2; i <= n_max; ++i) {
    EXPECT_EQ(table[static_cast<std::size_t>(i)], last_merge_root(i)) << "i=" << i;
  }
}

TEST(LastMergeTable, RecurrenceStepsAreZeroOrOne) {
  const Index n_max = 3000;
  const auto table = last_merge_table(n_max);
  for (Index i = 3; i <= n_max; ++i) {
    const Index step = table[static_cast<std::size_t>(i)] -
                       table[static_cast<std::size_t>(i - 1)];
    EXPECT_TRUE(step == 0 || step == 1) << "i=" << i;
  }
}

class IntervalStructure : public ::testing::TestWithParam<Index> {};

TEST_P(IntervalStructure, TheoremThreeCasewiseConstruction) {
  // Re-derive I(n) from the three interval cases of Theorem 3 explicitly
  // and compare with the production implementation. This covers the
  // redundancy at the case boundaries (m = F_{k-3}, F_{k-2}, F_{k-1}).
  const Index n = GetParam();
  const fib::Bracket b = fib::decompose(n);
  const std::int64_t fk3 = b.k >= 3 ? fib::fibonacci(b.k - 3) : 0;
  const std::int64_t fk2 = fib::fibonacci(b.k - 2);
  const std::int64_t fk1 = fib::fibonacci(b.k - 1);

  IndexInterval expected{};
  if (b.m <= fk3) {
    expected = IndexInterval{fk1, fk1 + b.m};          // I1
  } else if (b.m <= fk2) {
    expected = IndexInterval{fk2 + b.m, fk1 + b.m};    // I2
  } else {
    expected = IndexInterval{fk2 + b.m, b.fk};         // I3
  }
  EXPECT_EQ(last_merge_interval(n), expected);
}

INSTANTIATE_TEST_SUITE_P(Fig8Range, IntervalStructure,
                         ::testing::Range<Index>(2, 56));
INSTANTIATE_TEST_SUITE_P(WiderSweep, IntervalStructure,
                         ::testing::Range<Index>(56, 1200, 7));

}  // namespace
}  // namespace smerge
