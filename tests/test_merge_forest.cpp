// Dedicated MergeForest tests: layout, lookup, costs and feasibility.
#include "core/merge_forest.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/full_cost.h"
#include "core/tree_builder.h"

namespace smerge {
namespace {

MergeForest two_tree_forest() {
  std::vector<MergeTree> trees;
  trees.push_back(optimal_merge_tree(7));
  trees.push_back(optimal_merge_tree(7));
  return MergeForest(15, std::move(trees));
}

TEST(MergeForest, LayoutAndOffsets) {
  const MergeForest f = two_tree_forest();
  EXPECT_EQ(f.size(), 14);
  EXPECT_EQ(f.num_trees(), 2);
  EXPECT_EQ(f.media_length(), 15);
  EXPECT_EQ(f.tree_offset(0), 0);
  EXPECT_EQ(f.tree_offset(1), 7);
  EXPECT_THROW((void)f.tree(2), std::out_of_range);
  EXPECT_THROW((void)f.tree_offset(-1), std::out_of_range);
}

TEST(MergeForest, TreeOfBoundaries) {
  const MergeForest f = two_tree_forest();
  EXPECT_EQ(f.tree_of(0), 0);
  EXPECT_EQ(f.tree_of(6), 0);
  EXPECT_EQ(f.tree_of(7), 1);
  EXPECT_EQ(f.tree_of(13), 1);
  EXPECT_THROW((void)f.tree_of(14), std::out_of_range);
  EXPECT_THROW((void)f.tree_of(-1), std::out_of_range);
}

TEST(MergeForest, StreamLengthsRootsAndLocals) {
  const MergeForest f = two_tree_forest();
  // Both roots transmit the full media; interior arrivals shift by block.
  EXPECT_EQ(f.stream_length(0), 15);
  EXPECT_EQ(f.stream_length(7), 15);
  for (Index x = 1; x < 7; ++x) {
    EXPECT_EQ(f.stream_length(x), f.stream_length(x + 7)) << "x=" << x;
  }
}

TEST(MergeForest, CostsMatchPaperExample) {
  // L=15, n=14: the paper's optimal forest 30 + 17 + 17 = 64.
  const MergeForest f = two_tree_forest();
  EXPECT_EQ(f.full_cost(), 64);
  EXPECT_DOUBLE_EQ(f.average_bandwidth(), 64.0 / 14.0);
}

TEST(MergeForest, ReceiveAllCostsDiffer) {
  const MergeForest f = two_tree_forest();
  EXPECT_LT(f.full_cost(Model::kReceiveAll), f.full_cost(Model::kReceiveTwo));
}

TEST(MergeForest, ConstructionValidation) {
  EXPECT_THROW(MergeForest(15, {}), std::invalid_argument);
  EXPECT_THROW(MergeForest(0, std::vector<MergeTree>{MergeTree::single()}),
               std::invalid_argument);
  // A tree spanning beyond L-1 cannot be served by its root.
  std::vector<MergeTree> too_wide;
  too_wide.push_back(MergeTree::star(16));
  EXPECT_THROW(MergeForest(15, std::move(too_wide)), std::invalid_argument);
}

TEST(MergeForest, FeasibilityDistinguishesModels) {
  // A chain of 10 over L=10 fits by span but its receive-two lengths
  // exceed L; receive-all lengths (z - p <= span) always fit.
  std::vector<MergeTree> trees;
  trees.push_back(MergeTree::chain(10));
  const MergeForest f(10, std::move(trees));
  EXPECT_FALSE(f.feasible(Model::kReceiveTwo));
  EXPECT_TRUE(f.feasible(Model::kReceiveAll));
}

TEST(MergeForest, PlanRoundTripMatchesLegacyWalks) {
  const MergeForest f = two_tree_forest();
  for (const Model model : {Model::kReceiveTwo, Model::kReceiveAll}) {
    const plan::MergePlan p = f.to_plan(model);
    ASSERT_EQ(p.size(), f.size());
    EXPECT_EQ(p.num_roots(), f.num_trees());
    for (Index x = 0; x < f.size(); ++x) {
      EXPECT_DOUBLE_EQ(p.length()[static_cast<std::size_t>(x)],
                       static_cast<double>(f.stream_length(x, model)));
    }
    const plan::PlanReport report = plan::verify(p);
    EXPECT_TRUE(report.ok) << report.first_error;
    EXPECT_DOUBLE_EQ(report.total_cost, static_cast<double>(f.full_cost(model)));
  }
}

TEST(MergeForest, SingleArrival) {
  std::vector<MergeTree> trees;
  trees.push_back(MergeTree::single());
  const MergeForest f(1, std::move(trees));
  EXPECT_EQ(f.full_cost(), 1);
  EXPECT_EQ(f.stream_length(0), 1);
  EXPECT_TRUE(f.feasible());
}

}  // namespace
}  // namespace smerge
