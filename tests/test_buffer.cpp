// Tests for the Lemma-15 buffer-requirement helpers (Section 3.3).
#include "core/buffer.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/full_cost.h"

namespace smerge {
namespace {

TEST(BufferRequirement, LemmaFifteenFormula) {
  // b(x) = min(x - r, L - (x - r)).
  EXPECT_EQ(buffer_requirement(0, 15), 0);
  EXPECT_EQ(buffer_requirement(1, 15), 1);
  EXPECT_EQ(buffer_requirement(7, 15), 7);
  EXPECT_EQ(buffer_requirement(8, 15), 7);
  EXPECT_EQ(buffer_requirement(14, 15), 1);
}

TEST(BufferRequirement, NeverExceedsHalfMedia) {
  for (Index L = 1; L <= 64; ++L) {
    for (Index d = 0; d < L; ++d) {
      EXPECT_LE(buffer_requirement(d, L), L / 2) << "L=" << L << " d=" << d;
    }
  }
}

TEST(BufferRequirement, SymmetricAroundMidpoint) {
  const Index L = 40;
  for (Index d = 1; d < L; ++d) {
    EXPECT_EQ(buffer_requirement(d, L), buffer_requirement(L - d, L));
  }
}

TEST(BufferRequirement, RangeChecked) {
  EXPECT_THROW((void)buffer_requirement(-1, 15), std::invalid_argument);
  EXPECT_THROW((void)buffer_requirement(15, 15), std::invalid_argument);
}

TEST(MaxBufferRequirement, TreeAndForest) {
  // The Fig.-3 instance: the deepest client is arrival 7; b = min(7, 8) = 7.
  const MergeForest forest = optimal_merge_forest(15, 8);
  EXPECT_EQ(max_buffer_requirement(forest), 7);
  EXPECT_EQ(max_buffer_requirement(forest.tree(0), 15), 7);
}

TEST(MaxBufferRequirement, RejectsOversizedTree) {
  const MergeTree chain = MergeTree::chain(10);
  EXPECT_THROW((void)max_buffer_requirement(chain, 5), std::invalid_argument);
}

class ForestBufferSweep : public ::testing::TestWithParam<std::tuple<Index, Index>> {};

TEST_P(ForestBufferSweep, OptimalForestsNeverNeedMoreThanHalfL) {
  const auto [L, n] = GetParam();
  const MergeForest forest = optimal_merge_forest(L, n);
  EXPECT_LE(max_buffer_requirement(forest), L / 2);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ForestBufferSweep,
    ::testing::Combine(::testing::Values<Index>(2, 5, 15, 34, 100),
                       ::testing::Values<Index>(1, 7, 20, 55, 160)));

}  // namespace
}  // namespace smerge
