// Tests for client receiving programs: the Section-2 stage rules, the
// worked client-H example, and the receive-all rules of Lemma 17.
#include "schedule/receiving_program.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/full_cost.h"

namespace smerge {
namespace {

TEST(ReceivingProgram, PaperClientH) {
  // Section 2's worked example (L=15): client H arrives at 7 with path
  // 0 < 5 < 7; it takes segments 1-2 from stream 7, 3-9 from stream 5
  // (parts 3,4 then 5..9 across the two stages) and 10-15 from the root.
  const MergeForest forest = optimal_merge_forest(15, 8);
  const ReceivingProgram prog(forest, 7);
  EXPECT_EQ(prog.path(), (std::vector<Index>{0, 5, 7}));
  ASSERT_EQ(prog.receptions().size(), 3u);
  EXPECT_EQ(prog.receptions()[0], (Reception{7, 1, 2}));
  EXPECT_EQ(prog.receptions()[1], (Reception{5, 3, 9}));
  EXPECT_EQ(prog.receptions()[2], (Reception{0, 10, 15}));
  EXPECT_EQ(prog.to_string(), "client 7: [1,2]<-7 [3,9]<-5 [10,15]<-0");
}

TEST(ReceivingProgram, PaperClientF) {
  // Client F (arrival 5) merges directly with the root at time 10:
  // segments 1-5 from its own stream, 6-15 from the root.
  const MergeForest forest = optimal_merge_forest(15, 8);
  const ReceivingProgram prog(forest, 5);
  ASSERT_EQ(prog.receptions().size(), 2u);
  EXPECT_EQ(prog.receptions()[0], (Reception{5, 1, 5}));
  EXPECT_EQ(prog.receptions()[1], (Reception{0, 6, 15}));
  // Merge completes when the own-stream block ends: slot 2*5 - 0 = 10.
  EXPECT_EQ(prog.receptions()[0].end_slot(), 10);
}

TEST(ReceivingProgram, RootClientPlaysOwnStream) {
  const MergeForest forest = optimal_merge_forest(15, 8);
  const ReceivingProgram prog(forest, 0);
  ASSERT_EQ(prog.receptions().size(), 1u);
  EXPECT_EQ(prog.receptions()[0], (Reception{0, 1, 15}));
}

TEST(ReceivingProgram, SecondTreeUsesItsOwnRoot) {
  // L=15, n=14 splits into two 7-arrival trees; client 9 sits in the
  // second tree whose root is arrival 7.
  const MergeForest forest = optimal_merge_forest(15, 14);
  const ReceivingProgram prog(forest, 9);
  EXPECT_EQ(prog.path().front(), 7);
  EXPECT_EQ(prog.receptions().back().stream, 7);
  EXPECT_EQ(prog.receptions().back().last_part, 15);
}

TEST(ReceivingProgram, BlocksPartitionMediaEverywhere) {
  for (const auto& [L, n] : std::vector<std::pair<Index, Index>>{
           {15, 8}, {15, 14}, {4, 16}, {34, 89}, {10, 35}}) {
    const MergeForest forest = optimal_merge_forest(L, n);
    for (Index a = 0; a < n; ++a) {
      const ReceivingProgram prog(forest, a);
      Index next = 1;
      for (const Reception& r : prog.receptions()) {
        ASSERT_EQ(r.first_part, next) << "L=" << L << " n=" << n << " a=" << a;
        ASSERT_LE(r.first_part, r.last_part);
        next = r.last_part + 1;
      }
      EXPECT_EQ(next, L + 1) << "L=" << L << " n=" << n << " a=" << a;
    }
  }
}

TEST(ReceivingProgram, ReceiveAllFollowsLemmaSeventeen) {
  // Receive-all: client a takes segments (a-x_i, a-x_{i-1}] from x_i.
  const MergeForest forest = optimal_merge_forest(16, 16, Model::kReceiveAll);
  for (Index a = 0; a < 16; ++a) {
    const ReceivingProgram prog(forest, a, Model::kReceiveAll);
    const auto& path = prog.path();
    const auto k = static_cast<Index>(path.size()) - 1;
    Index block = 0;
    for (Index m = k; m >= 0; --m) {
      const Index lo = m == k ? 1 : a - path[static_cast<std::size_t>(m)] + 1;
      const Index hi = m == 0 ? 16 : a - path[static_cast<std::size_t>(m - 1)];
      if (lo > hi) continue;  // empty provider
      const Reception& r = prog.receptions()[static_cast<std::size_t>(block++)];
      EXPECT_EQ(r.stream, path[static_cast<std::size_t>(m)]) << "a=" << a;
      EXPECT_EQ(r.first_part, lo) << "a=" << a;
      EXPECT_EQ(r.last_part, hi) << "a=" << a;
    }
    EXPECT_EQ(block, static_cast<Index>(prog.receptions().size()));
  }
}

TEST(ReceivingProgram, DeepClientCapsRootBlock) {
  // With d = a - root > L/2 the root block is clipped at L (Lemma 15
  // case 2). Build a star over 8 arrivals with L=8: client 7 has d=7,
  // receives 1..7 from its own stream and only segment 8 from the root.
  std::vector<MergeTree> trees;
  trees.push_back(MergeTree::star(8));
  const MergeForest forest(8, std::move(trees));
  const ReceivingProgram prog(forest, 7);
  ASSERT_EQ(prog.receptions().size(), 2u);
  EXPECT_EQ(prog.receptions()[0], (Reception{7, 1, 7}));
  EXPECT_EQ(prog.receptions()[1], (Reception{0, 8, 8}));
}

TEST(ReceivingProgram, InvalidArrivalThrows) {
  const MergeForest forest = optimal_merge_forest(15, 8);
  EXPECT_THROW(ReceivingProgram(forest, -1), std::out_of_range);
  EXPECT_THROW(ReceivingProgram(forest, 8), std::out_of_range);
}

TEST(ReceivingProgram, ReceptionHelpers) {
  const Reception r{5, 3, 9};
  EXPECT_EQ(r.slot_of(3), 7);
  EXPECT_EQ(r.start_slot(), 7);
  EXPECT_EQ(r.end_slot(), 14);
  EXPECT_EQ(r.parts(), 7);
}

}  // namespace
}  // namespace smerge
