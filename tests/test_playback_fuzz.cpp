// Fuzz-style playback verification over random, non-optimal tree shapes.
//
// The constructed-forest tests exercise only optimal structures; here we
// grow random preorder trees, keep the feasible ones, and check that
//   * the receiving-program/playback machinery accepts every feasible
//     tree (the model is sound beyond the optimum), and
//   * Lemma 15 is exact for *arbitrary* feasible L-trees: the measured
//     peak buffer of every client equals min(d, L-d).
#include <gtest/gtest.h>

#include "core/buffer.h"
#include "core/tree_builder.h"
#include "schedule/playback.h"

namespace smerge {
namespace {

class RandomTreeFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomTreeFuzz, RandomTreesAreValidMergeTrees) {
  const std::uint64_t seed = GetParam();
  for (const Index n : {1, 2, 5, 13, 40, 120}) {
    const MergeTree t = random_merge_tree(n, seed);
    EXPECT_EQ(t.size(), n);
    // Reconstructing from the same parents must succeed (preorder holds).
    EXPECT_NO_THROW(MergeTree{t.parents()});
    // Costs are sandwiched between the optimum and the worst chain.
    EXPECT_GE(t.merge_cost(), merge_cost(n));
    EXPECT_LE(t.merge_cost(), (n - 1) * (n - 1));
  }
}

TEST_P(RandomTreeFuzz, FeasibleTreesPlayBackWithExactLemma15Buffers) {
  const std::uint64_t seed = GetParam();
  Index verified = 0;
  for (Index variant = 0; variant < 12; ++variant) {
    const Index n = 3 + (static_cast<Index>(seed) + 5 * variant) % 14;
    const MergeTree t = random_merge_tree(n, seed * 1009 + static_cast<std::uint64_t>(variant));
    // Pick the smallest L that makes the tree a feasible L-tree.
    Cost max_len = n;  // span needs L >= n
    for (Index x = 1; x < n; ++x) max_len = std::max(max_len, t.length(x));
    const Index L = static_cast<Index>(max_len);
    ASSERT_TRUE(t.feasible(L));
    std::vector<MergeTree> trees;
    trees.push_back(t);
    const MergeForest forest(L, std::move(trees));
    const ForestReport report = verify_forest(forest);
    // verify_forest internally asserts peak buffer == Lemma-15 prediction
    // per client; any mismatch lands in first_error.
    EXPECT_TRUE(report.ok) << "n=" << n << " L=" << L << " seed=" << seed
                           << ": " << report.first_error;
    EXPECT_LE(report.max_concurrent, 2);
    EXPECT_EQ(report.unused_units, 0);
    // The canonical-IR oracle agrees with the slotted verifier on
    // arbitrary feasible trees, including the measured peak buffer.
    const plan::PlanReport plan_report = plan::verify(forest.to_plan());
    EXPECT_TRUE(plan_report.ok) << "n=" << n << " L=" << L << " seed=" << seed
                                << ": " << plan_report.first_error;
    EXPECT_NEAR(plan_report.peak_buffer,
                static_cast<double>(report.peak_buffer), 1e-9);
    EXPECT_DOUBLE_EQ(plan_report.total_cost,
                     static_cast<double>(forest.full_cost()));
    ++verified;
  }
  EXPECT_EQ(verified, 12);
}

TEST_P(RandomTreeFuzz, RandomForestsOfRandomTreesVerify) {
  // Several random trees in one forest, sized so each fits the media.
  const std::uint64_t seed = GetParam();
  const Index L = 24;
  std::vector<MergeTree> trees;
  for (Index b = 0; b < 5; ++b) {
    for (std::uint64_t attempt = 0;; ++attempt) {
      const Index n = 2 + (static_cast<Index>(seed ^ attempt) + b) % 10;
      const MergeTree t =
          random_merge_tree(n, seed * 31 + static_cast<std::uint64_t>(b) * 7 + attempt);
      if (t.feasible(L)) {
        trees.push_back(t);
        break;
      }
    }
  }
  const MergeForest forest(L, std::move(trees));
  const ForestReport report = verify_forest(forest);
  EXPECT_TRUE(report.ok) << report.first_error;
  // Cross-check the per-client Lemma-15 maximum over the whole forest.
  EXPECT_EQ(report.peak_buffer, max_buffer_requirement(forest));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTreeFuzz,
                         ::testing::Range<std::uint64_t>(1, 33));

}  // namespace
}  // namespace smerge
