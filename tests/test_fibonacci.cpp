// Unit tests for the Fibonacci substrate (src/fib).
#include "fib/fibonacci.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace smerge::fib {
namespace {

TEST(Fibonacci, FirstValuesMatchDefinition) {
  // F_0 = 0, F_1 = 1, F_k = F_{k-1} + F_{k-2} (Section 3.1).
  EXPECT_EQ(fibonacci(0), 0);
  EXPECT_EQ(fibonacci(1), 1);
  EXPECT_EQ(fibonacci(2), 1);
  EXPECT_EQ(fibonacci(3), 2);
  EXPECT_EQ(fibonacci(4), 3);
  EXPECT_EQ(fibonacci(5), 5);
  EXPECT_EQ(fibonacci(6), 8);
  EXPECT_EQ(fibonacci(7), 13);
  EXPECT_EQ(fibonacci(8), 21);
  EXPECT_EQ(fibonacci(9), 34);
  EXPECT_EQ(fibonacci(10), 55);
}

TEST(Fibonacci, RecurrenceHoldsOverFullRange) {
  for (int k = 2; k <= kMaxIndex; ++k) {
    EXPECT_EQ(fibonacci(k), fibonacci(k - 1) + fibonacci(k - 2)) << "k=" << k;
  }
}

TEST(Fibonacci, LargestRepresentableTerm) {
  EXPECT_EQ(fibonacci(kMaxIndex), 7540113804746346429LL);
}

TEST(Fibonacci, IndexOutOfRangeThrows) {
  EXPECT_THROW((void)fibonacci(-1), std::out_of_range);
  EXPECT_THROW((void)fibonacci(kMaxIndex + 1), std::out_of_range);
}

TEST(Fibonacci, SumIdentity) {
  // The identity used by Lemma 11's chains: F_{j+2} - 1 = sum_{i<=j} F_i.
  std::int64_t sum = 0;
  for (int j = 0; j <= 40; ++j) {
    sum += fibonacci(j);
    EXPECT_EQ(fibonacci(j + 2) - 1, sum) << "j=" << j;
  }
}

TEST(BracketIndex, SmallValues) {
  EXPECT_EQ(bracket_index(1), 2);  // largest k with F_k <= 1
  EXPECT_EQ(bracket_index(2), 3);
  EXPECT_EQ(bracket_index(3), 4);
  EXPECT_EQ(bracket_index(4), 4);
  EXPECT_EQ(bracket_index(5), 5);
  EXPECT_EQ(bracket_index(7), 5);
  EXPECT_EQ(bracket_index(8), 6);
  EXPECT_EQ(bracket_index(12), 6);
  EXPECT_EQ(bracket_index(13), 7);
}

TEST(BracketIndex, RequiresPositive) {
  EXPECT_THROW((void)bracket_index(0), std::invalid_argument);
  EXPECT_THROW((void)bracket_index(-5), std::invalid_argument);
}

class BracketProperty : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(BracketProperty, BracketsAreTight) {
  const std::int64_t n = GetParam();
  const int k = bracket_index(n);
  EXPECT_GE(k, 2);
  EXPECT_LE(fibonacci(k), n);
  EXPECT_GT(fibonacci(k + 1), n);
}

TEST_P(BracketProperty, DecomposeIsConsistent) {
  const std::int64_t n = GetParam();
  const Bracket b = decompose(n);
  EXPECT_EQ(b.fk + b.m, n);
  EXPECT_EQ(b.fk, fibonacci(b.k));
  EXPECT_GE(b.m, 0);
  if (b.k >= 1) {
    EXPECT_LT(b.m, fibonacci(b.k - 1) == 0 ? 1 : fibonacci(b.k - 1));
  }
}

INSTANTIATE_TEST_SUITE_P(DenseSmallRange, BracketProperty,
                         ::testing::Range<std::int64_t>(1, 400));
INSTANTIATE_TEST_SUITE_P(LargeSpotChecks, BracketProperty,
                         ::testing::Values<std::int64_t>(1000, 46368, 46369, 832040,
                                                         1'000'000'000,
                                                         7540113804746346428LL));

TEST(IsFibonacci, MatchesTableMembership) {
  int next_fib_index = 0;
  for (std::int64_t n = 0; n <= 400; ++n) {
    while (fibonacci(next_fib_index) < n) ++next_fib_index;
    const bool expected = fibonacci(next_fib_index) == n;
    EXPECT_EQ(is_fibonacci(n), expected) << "n=" << n;
  }
  EXPECT_FALSE(is_fibonacci(-1));
}

TEST(LogPhi, GoldenRatioPowers) {
  EXPECT_NEAR(log_phi(1.0), 0.0, 1e-12);
  EXPECT_NEAR(log_phi(kGoldenRatio), 1.0, 1e-12);
  EXPECT_NEAR(log_phi(kGoldenRatio * kGoldenRatio), 2.0, 1e-12);
  EXPECT_THROW((void)log_phi(0.0), std::invalid_argument);
  EXPECT_THROW((void)log_phi(-1.0), std::invalid_argument);
}

TEST(LogPhi, ApproximatesFibonacciGrowth) {
  // F_k ~ phi^k / sqrt(5), so log_phi(F_k) should be close to k - 1.67.
  for (int k = 10; k <= 80; k += 7) {
    const double lg = log_phi(static_cast<double>(fibonacci(k)));
    EXPECT_NEAR(lg, k - 1.6723, 0.01) << "k=" << k;
  }
}

}  // namespace
}  // namespace smerge::fib
