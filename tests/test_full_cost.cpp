// Tests for the full-cost machinery (Section 3.2): Lemma 9, Theorem 12's
// stream-count formula, Theorem 10's forest construction, the bounded
// buffer adaptation (Section 3.3) and the receive-all analogue (3.4).
#include "core/full_cost.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/buffer.h"

namespace smerge {
namespace {

TEST(FullCost, PaperWorkedExampleFifteenEight) {
  // Section 2 / Fig. 3: L=15, n=8 => one full stream, Fcost = 15+21 = 36.
  const StreamPlan plan = optimal_stream_count(15, 8);
  EXPECT_EQ(plan.streams, 1);
  EXPECT_EQ(plan.cost, 36);
  EXPECT_EQ(full_cost(15, 8), 36);
}

TEST(FullCost, PaperWorkedExampleFifteenFourteen) {
  // Section 2: L=15, n=14 => two full streams, Fcost = 30+17+17 = 64.
  const StreamPlan plan = optimal_stream_count(15, 14);
  EXPECT_EQ(plan.streams, 2);
  EXPECT_EQ(plan.cost, 64);
  EXPECT_EQ(plan.p, 7);
  EXPECT_EQ(plan.trees_of_size_p, 2);
  EXPECT_EQ(plan.trees_of_size_p1, 0);
}

TEST(FullCost, PaperWorkedExampleFourSixteen) {
  // Section 3.2 (after Theorem 12): L=4, n=16 => h=4, F_h=3, s0=4, s1=5,
  // F(4,16,4)=40, F(4,16,5)=38, F(4,16,6)=38.
  EXPECT_EQ(theorem12_index(4), 4);
  EXPECT_EQ(full_cost_given_streams(4, 16, 4), 40);
  EXPECT_EQ(full_cost_given_streams(4, 16, 5), 38);
  EXPECT_EQ(full_cost_given_streams(4, 16, 6), 38);
  EXPECT_EQ(full_cost(4, 16), 38);
  EXPECT_EQ(optimal_stream_count(4, 16).streams, 5);  // tie -> smaller s
}

TEST(FullCost, TheoremTwelveIndexExamples) {
  // L=1 => h=2; L=2 => h=3 (both from the discussion after Theorem 12);
  // L=4 => h=4; L=15 => h=6 (F_7=13 < 17 <= F_8=21).
  EXPECT_EQ(theorem12_index(1), 2);
  EXPECT_EQ(theorem12_index(2), 3);
  EXPECT_EQ(theorem12_index(4), 4);
  EXPECT_EQ(theorem12_index(15), 6);
  EXPECT_THROW((void)theorem12_index(0), std::invalid_argument);
}

TEST(FullCost, DegenerateMediaLengths) {
  // L=1: every arrival needs its own full stream (batching degenerates).
  EXPECT_EQ(full_cost(1, 10), 10);
  EXPECT_EQ(optimal_stream_count(1, 10).streams, 10);
  // L=2, odd n: s = ceil(n/2) (discussion after Theorem 12).
  EXPECT_EQ(optimal_stream_count(2, 9).streams, 5);
}

TEST(FullCost, MinStreams) {
  EXPECT_EQ(min_streams(15, 8), 1);
  EXPECT_EQ(min_streams(15, 16), 2);
  EXPECT_EQ(min_streams(1, 7), 7);
  EXPECT_EQ(min_streams(4, 16), 4);
  EXPECT_THROW((void)min_streams(0, 5), std::invalid_argument);
  EXPECT_THROW((void)min_streams(5, 0), std::invalid_argument);
}

TEST(FullCost, GivenStreamsValidatesRange) {
  EXPECT_THROW((void)full_cost_given_streams(15, 8, 0), std::invalid_argument);
  EXPECT_THROW((void)full_cost_given_streams(15, 8, 9), std::invalid_argument);
  EXPECT_THROW((void)full_cost_given_streams(4, 16, 3), std::invalid_argument);
  EXPECT_NO_THROW((void)full_cost_given_streams(4, 16, 16));
}

class TheoremTwelveSweep
    : public ::testing::TestWithParam<std::tuple<Index, Index>> {};

TEST_P(TheoremTwelveSweep, FormulaMatchesExhaustiveScan) {
  // Theorem 12's {s1, s1+1} candidates (with feasibility clamping) find
  // the true minimum of f(s) over the whole feasible range.
  const auto [L, n] = GetParam();
  EXPECT_EQ(optimal_stream_count(L, n).cost, full_cost_scan(L, n))
      << "L=" << L << " n=" << n;
}

TEST_P(TheoremTwelveSweep, LemmaNineMatchesPartitionDp) {
  // The even-split formula (Lemma 9) minimized over s equals the
  // unconstrained partition DP, i.e. uneven splits never win.
  const auto [L, n] = GetParam();
  EXPECT_EQ(full_cost_scan(L, n), full_cost_partition_dp(L, n))
      << "L=" << L << " n=" << n;
}

TEST_P(TheoremTwelveSweep, ReceiveAllScanMatchesPartitionDp) {
  const auto [L, n] = GetParam();
  EXPECT_EQ(full_cost(L, n, Model::kReceiveAll),
            full_cost_partition_dp(L, n, Model::kReceiveAll))
      << "L=" << L << " n=" << n;
}

INSTANTIATE_TEST_SUITE_P(
    GridSweep, TheoremTwelveSweep,
    ::testing::Combine(::testing::Values<Index>(1, 2, 3, 4, 5, 7, 8, 12, 15, 20, 33),
                       ::testing::Values<Index>(1, 2, 3, 5, 8, 13, 14, 16, 21, 34, 55,
                                                60, 89, 100, 144)));

TEST(FullCost, LemmaElevenUnimodality) {
  // Lemma 11's conclusion: f(s) = F(L,n,s) is non-increasing up to some
  // s' and non-decreasing after it, over the whole feasible range.
  for (const Index L : {3, 8, 15, 34, 55}) {
    for (const Index n : {10, 33, 80, 144}) {
      const Index s0 = min_streams(L, n);
      bool rising = false;
      for (Index s = s0; s < n; ++s) {
        const Cost a = full_cost_given_streams(L, n, s);
        const Cost b = full_cost_given_streams(L, n, s + 1);
        if (b > a) rising = true;
        if (rising) {
          EXPECT_GE(b, a) << "L=" << L << " n=" << n << " s=" << s
                          << ": f dips after rising (not unimodal)";
        }
      }
    }
  }
}

TEST(FullCost, TheoremTwelveTieCases) {
  // The discussion after Theorem 12: instances exist where only s1 is
  // optimal, where only s1+1 is, and where both are.
  // L=15, n=8: s1=1 optimal, s1+1=2 not (36 vs 42).
  EXPECT_LT(full_cost_given_streams(15, 8, 1), full_cost_given_streams(15, 8, 2));
  // L=2, n=9 (odd): s0 = s1+1 = 5 is optimal, s1=4 infeasible (> ceil? no:
  // 4 >= ceil(9/2)=5 fails feasibility).
  EXPECT_EQ(optimal_stream_count(2, 9).streams, 5);
  EXPECT_THROW((void)full_cost_given_streams(2, 9, 4), std::invalid_argument);
  // L=4, n=16: both s1=5 and s1+1=6 cost 38 (the paper's example).
  EXPECT_EQ(full_cost_given_streams(4, 16, 5), full_cost_given_streams(4, 16, 6));
}

TEST(FullCost, OptimalForestMatchesPlan) {
  for (const auto& [L, n] : std::vector<std::pair<Index, Index>>{
           {15, 8}, {15, 14}, {4, 16}, {8, 100}, {1, 9}, {100, 1000}}) {
    const StreamPlan plan = optimal_stream_count(L, n);
    const MergeForest forest = optimal_merge_forest(L, n);
    EXPECT_EQ(forest.size(), n);
    EXPECT_EQ(forest.num_trees(), plan.streams);
    EXPECT_EQ(forest.full_cost(), plan.cost);
    EXPECT_EQ(forest.media_length(), L);
  }
}

TEST(FullCost, OptimalForestReceiveAll) {
  for (const auto& [L, n] : std::vector<std::pair<Index, Index>>{
           {15, 8}, {16, 64}, {8, 100}}) {
    const MergeForest forest = optimal_merge_forest(L, n, Model::kReceiveAll);
    EXPECT_EQ(forest.size(), n);
    EXPECT_EQ(forest.full_cost(Model::kReceiveAll), full_cost(L, n, Model::kReceiveAll));
  }
}

TEST(FullCost, ForestStreamLengths) {
  // Fig. 3: in the L=15, n=8 forest the root stream has length 15, stream
  // F (arrival 5) length 9, stream H (arrival 7) length 2.
  const MergeForest forest = optimal_merge_forest(15, 8);
  EXPECT_EQ(forest.stream_length(0), 15);
  EXPECT_EQ(forest.stream_length(5), 9);
  EXPECT_EQ(forest.stream_length(7), 2);
  // Total transmitted units == full cost.
  Cost total = 0;
  for (Index x = 0; x < 8; ++x) total += forest.stream_length(x);
  EXPECT_EQ(total, forest.full_cost());
}

TEST(FullCost, MonotoneInHorizonAndDelay) {
  // More arrivals can only cost more; longer media can only cost more.
  for (Index n = 1; n < 60; ++n) {
    EXPECT_LE(full_cost(10, n), full_cost(10, n + 1));
  }
  for (Index L = 1; L < 40; ++L) {
    EXPECT_LE(full_cost(L, 50), full_cost(L + 1, 50));
  }
}

TEST(FullCost, BatchingComparison) {
  // Theorem 14: batching alone costs n*L; merging wins by ~ L / log_phi L.
  for (const Index L : {8, 21, 55, 144, 377}) {
    const Index n = 10 * L;
    const double ratio = static_cast<double>(n * L) /
                         static_cast<double>(full_cost(L, n));
    const double predicted = static_cast<double>(L) /
                             fib::log_phi(static_cast<double>(L));
    // Same order of magnitude: within a factor of 2.5 of the predictor.
    EXPECT_GT(ratio, predicted / 2.5) << "L=" << L;
    EXPECT_LT(ratio, predicted * 2.5) << "L=" << L;
  }
}

// --- Section 3.3: bounded buffers ----------------------------------------

TEST(BoundedBuffer, ReducesToUnboundedWhenRoomy) {
  // With B >= the unconstrained optimal tree span the constraint is inert.
  EXPECT_EQ(full_cost_bounded(15, 8, 15), full_cost(15, 8));
  EXPECT_EQ(full_cost_bounded(15, 14, 7), full_cost(15, 14));
}

TEST(BoundedBuffer, ConstrainedMatchesScan) {
  // Ground truth for binding buffers (2B < L): scan f(s) over the
  // constrained range s >= ceil(n/B). For 2B >= L Lemma 15 makes the
  // constraint inert, so the unconstrained optimum must be returned.
  for (const Index L : {10, 15, 21, 34}) {
    for (const Index n : {5, 13, 20, 34, 55, 80}) {
      for (Index B = 1; B <= L; ++B) {
        if (2 * B >= L) {
          EXPECT_EQ(full_cost_bounded(L, n, B), full_cost(L, n))
              << "L=" << L << " n=" << n << " B=" << B;
          continue;
        }
        Cost best = std::numeric_limits<Cost>::max();
        const Index s_floor = std::max((n + L - 1) / L, (n + B - 1) / B);
        for (Index s = s_floor; s <= n; ++s) {
          best = std::min(best, full_cost_given_streams(L, n, s));
        }
        EXPECT_EQ(full_cost_bounded(L, n, B), best)
            << "L=" << L << " n=" << n << " B=" << B;
      }
    }
  }
}

TEST(BoundedBuffer, ForestRespectsBufferBound) {
  // Theorem 16 construction: every tree holds at most B arrivals, so by
  // Lemma 15 no client needs more than B buffer slots.
  for (const Index B : {1, 2, 3, 5, 7}) {
    const MergeForest forest = optimal_merge_forest_bounded(15, 40, B);
    EXPECT_EQ(forest.size(), 40);
    for (Index t = 0; t < forest.num_trees(); ++t) {
      EXPECT_LE(forest.tree(t).size(), B) << "B=" << B;
    }
    EXPECT_LE(max_buffer_requirement(forest), B);
  }
}

TEST(BoundedBuffer, CostDecreasesWithBuffer) {
  // A bigger buffer can only help.
  for (Index B = 1; B < 15; ++B) {
    EXPECT_GE(full_cost_bounded(15, 60, B), full_cost_bounded(15, 60, B + 1)) << B;
  }
}

TEST(BoundedBuffer, Validation) {
  EXPECT_THROW((void)full_cost_bounded(15, 8, 0), std::invalid_argument);
  EXPECT_THROW((void)full_cost_bounded(15, 8, 16), std::invalid_argument);
}

// --- Section 3.4: receive-all full costs ----------------------------------

TEST(ReceiveAllFullCost, NeverWorseThanReceiveTwo) {
  for (const Index L : {4, 15, 32, 100}) {
    for (const Index n : {1, 8, 16, 100, 250}) {
      EXPECT_LE(full_cost(L, n, Model::kReceiveAll), full_cost(L, n))
          << "L=" << L << " n=" << n;
    }
  }
}

TEST(ReceiveAllFullCost, RatioApproachesLogPhiTwo) {
  // Theorem 20: lim_{L->inf} lim_{n->inf} F/Fw = log_phi 2 ~ 1.44. The
  // double limit converges only logarithmically in L (the Theta(n) terms
  // of Theorem 13 shift the ratio by ~1/log L), so we assert the monotone
  // climb toward the limit rather than tight closeness.
  const double target = fib::log_phi(2.0);
  double prev = 1.0;
  for (const Index L : {55, 987, 17'711}) {  // F_10, F_16, F_22
    const Index n = 50 * L;
    const double ratio = static_cast<double>(full_cost(L, n)) /
                         static_cast<double>(full_cost(L, n, Model::kReceiveAll));
    EXPECT_GT(ratio, prev) << "L=" << L;          // climbing...
    EXPECT_LT(ratio, target + 0.02) << "L=" << L;  // ...toward the limit
    prev = ratio;
  }
  EXPECT_NEAR(prev, target, 0.10);  // within ~7% at L = F_22
}

}  // namespace
}  // namespace smerge
