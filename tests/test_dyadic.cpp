// Tests for the (alpha,beta)-dyadic stream merging algorithm [9]:
// hand-computed small instances, the stack-vs-recursive cross-check, and
// the structural window invariants.
#include "merging/dyadic.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "sim/arrivals.h"

namespace smerge::merging {
namespace {

DyadicParams original_params() {
  return DyadicParams{2.0, 0.5};  // the original paper's choice
}

TEST(Dyadic, SingleArrivalIsRoot) {
  DyadicMerger m(1.0, original_params());
  EXPECT_EQ(m.arrive(0.25), 0);
  EXPECT_EQ(m.forest().num_roots(), 1);
  EXPECT_DOUBLE_EQ(m.total_cost(), 1.0);
}

TEST(Dyadic, HandComputedThreeArrivals) {
  // alpha=2, beta=0.5: root at 0 owns (0, 0.5]; 0.3 lands in I_1 =
  // (0.25, 0.5] and merges into the root (leaf cost 0.3); 0.6 is past the
  // window and opens a new root. Total = 1 + 0.3 + 1.
  DyadicMerger m(1.0, original_params());
  m.arrive(0.0);
  m.arrive(0.3);
  m.arrive(0.6);
  EXPECT_EQ(m.forest().num_roots(), 2);
  EXPECT_EQ(m.forest().stream(1).parent, 0);
  EXPECT_NEAR(m.total_cost(), 2.3, 1e-12);
}

TEST(Dyadic, HandComputedFourArrivals) {
  // Arrivals 0, 0.1, 0.3, 0.45 under (2, 0.5):
  //   0.1 in I_3 = (0.0625, 0.125] of the root window -> child of 0,
  //   0.3 in I_1 = (0.25, 0.5]                        -> child of 0,
  //   0.45 in I_1 = (0.4, 0.5] of 0.3's window (0.3, 0.5] -> child of 0.3.
  // Costs: 1 (root) + 0.1 (leaf) + (2*0.45 - 0.3) = 0.6 + 0.15 (leaf).
  DyadicMerger m(1.0, original_params());
  m.arrive(0.0);
  m.arrive(0.1);
  m.arrive(0.3);
  m.arrive(0.45);
  const GeneralMergeForest& f = m.forest();
  EXPECT_EQ(f.stream(1).parent, 0);
  EXPECT_EQ(f.stream(2).parent, 0);
  EXPECT_EQ(f.stream(3).parent, 2);
  EXPECT_NEAR(m.total_cost(), 1.85, 1e-12);
}

TEST(Dyadic, CoincidentArrivalsShareOneStream) {
  DyadicMerger m(1.0, original_params());
  const Index a = m.arrive(0.0);
  const Index b = m.arrive(0.0);
  const Index c = m.arrive(0.3);
  const Index d = m.arrive(0.3);
  EXPECT_EQ(a, b);
  EXPECT_EQ(c, d);
  EXPECT_EQ(m.forest().size(), 2);
}

TEST(Dyadic, ParameterValidation) {
  EXPECT_THROW(DyadicMerger(0.0, original_params()), std::invalid_argument);
  EXPECT_THROW(DyadicMerger(1.0, DyadicParams{1.0, 0.5}), std::invalid_argument);
  EXPECT_THROW(DyadicMerger(1.0, DyadicParams{2.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(DyadicMerger(1.0, DyadicParams{2.0, 0.6}), std::invalid_argument);
}

class DyadicCrossCheck : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DyadicCrossCheck, StackMatchesRecursiveReference) {
  // The O(1)-amortized stack form and the independent per-arrival descent
  // must produce identical forests on random Poisson instances, for both
  // the original (2, 0.5) and the golden-ratio parameterization.
  const std::uint64_t seed = GetParam();
  const std::vector<double> arrivals = sim::poisson_arrivals(0.02, 20.0, seed);
  for (const DyadicParams params :
       {original_params(), DyadicParams{fib::kGoldenRatio, 0.5},
        DyadicParams{fib::kGoldenRatio, 0.21}}) {
    DyadicMerger merger(1.0, params);
    for (const double t : arrivals) merger.arrive(t);
    const GeneralMergeForest ref = dyadic_forest_recursive(1.0, arrivals, params);
    ASSERT_EQ(merger.forest().size(), ref.size());
    for (Index i = 0; i < ref.size(); ++i) {
      EXPECT_DOUBLE_EQ(merger.forest().stream(i).time, ref.stream(i).time) << i;
      EXPECT_EQ(merger.forest().stream(i).parent, ref.stream(i).parent) << i;
    }
    EXPECT_NEAR(merger.total_cost(), ref.total_cost(), 1e-9);
  }
}

TEST_P(DyadicCrossCheck, WindowInvariants) {
  // Every non-root lies strictly inside its parent's beta window, and all
  // merges complete while the target stream is still transmitting
  // (guaranteed by beta <= 1/2).
  const std::uint64_t seed = GetParam();
  const std::vector<double> arrivals = sim::poisson_arrivals(0.05, 30.0, seed);
  DyadicMerger merger(1.0, DyadicParams{fib::kGoldenRatio, 0.5});
  for (const double t : arrivals) merger.arrive(t);
  const GeneralMergeForest& f = merger.forest();
  for (Index i = 0; i < f.size(); ++i) {
    const Index p = f.stream(i).parent;
    if (p == -1) continue;
    EXPECT_GT(f.stream(i).time, f.stream(p).time);
    // Within the root's window (roots own (x, x + beta L]).
    Index root = p;
    while (f.stream(root).parent != -1) root = f.stream(root).parent;
    EXPECT_LE(f.stream(i).time, f.stream(root).time + 0.5 + 1e-12);
  }
  EXPECT_TRUE(f.merges_complete_in_time());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DyadicCrossCheck,
                         ::testing::Values<std::uint64_t>(1, 2, 3, 7, 42, 1234, 99999));

TEST(Dyadic, DenseArrivalsBeatUnicast) {
  // With many arrivals per media length, merging must save a lot over one
  // full stream per client.
  const std::vector<double> arrivals = sim::constant_arrivals(0.001, 10.0);
  DyadicMerger merger(1.0, DyadicParams{});
  for (const double t : arrivals) merger.arrive(t);
  const double unicast = static_cast<double>(arrivals.size());
  EXPECT_LT(merger.total_cost(), unicast / 50.0);
}

TEST(Dyadic, SparseArrivalsDegradeToUnicast) {
  // Gaps larger than beta*L leave nothing to merge: every arrival is a
  // root.
  const std::vector<double> arrivals = sim::constant_arrivals(0.7, 20.0);
  DyadicMerger merger(1.0, DyadicParams{2.0, 0.5});
  for (const double t : arrivals) merger.arrive(t);
  EXPECT_EQ(merger.forest().num_roots(), merger.forest().size());
  EXPECT_DOUBLE_EQ(merger.total_cost(), static_cast<double>(arrivals.size()));
}

TEST(Dyadic, CostDecreasesWithArrivalDensity) {
  // Normalized cost (per media length of horizon) should fall as arrivals
  // densify — the Fig.-1-style saving.
  double prev = 1e100;
  for (const double gap : {0.2, 0.05, 0.01, 0.002}) {
    const std::vector<double> arrivals = sim::constant_arrivals(gap, 50.0);
    DyadicMerger merger(1.0, DyadicParams{});
    for (const double t : arrivals) merger.arrive(t);
    const double per_client = merger.total_cost() / static_cast<double>(arrivals.size());
    EXPECT_LT(per_client, prev) << "gap=" << gap;
    prev = per_client;
  }
}

}  // namespace
}  // namespace smerge::merging
