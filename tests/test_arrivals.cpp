// Tests for the synthetic arrival generators.
#include "sim/arrivals.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace smerge::sim {
namespace {

TEST(ConstantArrivals, SpacingAndCount) {
  const std::vector<double> a = constant_arrivals(0.25, 1.0);
  ASSERT_EQ(a.size(), 4u);
  EXPECT_DOUBLE_EQ(a[0], 0.25);
  EXPECT_DOUBLE_EQ(a[3], 1.0);
  for (std::size_t i = 1; i < a.size(); ++i) {
    EXPECT_NEAR(a[i] - a[i - 1], 0.25, 1e-12);
  }
}

TEST(ConstantArrivals, EmptyHorizon) {
  EXPECT_TRUE(constant_arrivals(0.5, 0.0).empty());
  EXPECT_TRUE(constant_arrivals(2.0, 1.0).empty());
}

TEST(ConstantArrivals, Validation) {
  EXPECT_THROW(constant_arrivals(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(constant_arrivals(0.5, -1.0), std::invalid_argument);
}

TEST(PoissonArrivals, DeterministicUnderSeed) {
  const auto a = poisson_arrivals(0.05, 10.0, 1234);
  const auto b = poisson_arrivals(0.05, 10.0, 1234);
  EXPECT_EQ(a, b);
  const auto c = poisson_arrivals(0.05, 10.0, 1235);
  EXPECT_NE(a, c);
}

TEST(PoissonArrivals, SortedWithinHorizon) {
  const auto a = poisson_arrivals(0.02, 25.0, 7);
  for (std::size_t i = 1; i < a.size(); ++i) {
    EXPECT_LE(a[i - 1], a[i]);
  }
  EXPECT_GT(a.front(), 0.0);
  EXPECT_LE(a.back(), 25.0);
}

TEST(PoissonArrivals, MeanGapApproximatesLambda) {
  // With horizon/mean_gap = 20000 expected arrivals, the sample mean gap
  // should sit within a few percent of the target for this fixed seed.
  const double mean_gap = 0.005;
  const auto a = poisson_arrivals(mean_gap, 100.0, 42);
  ASSERT_GT(a.size(), 1000u);
  const double observed = a.back() / static_cast<double>(a.size());
  EXPECT_NEAR(observed, mean_gap, mean_gap * 0.05);
}

TEST(PoissonArrivals, Validation) {
  EXPECT_THROW(poisson_arrivals(0.0, 1.0, 1), std::invalid_argument);
  EXPECT_THROW(poisson_arrivals(0.1, -1.0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace smerge::sim
