// Tests for the ASCII diagram renderers (Fig. 3 / Fig. 4 reproductions).
#include "schedule/diagram.h"

#include <gtest/gtest.h>

#include "core/full_cost.h"
#include "core/tree_builder.h"

namespace smerge {
namespace {

TEST(StreamName, PaperNaming) {
  EXPECT_EQ(stream_name(0), "A");
  EXPECT_EQ(stream_name(7), "H");
  EXPECT_EQ(stream_name(25), "Z");
  EXPECT_EQ(stream_name(26), "s26");
}

TEST(ConcreteDiagram, FigureThreeContents) {
  const MergeForest forest = optimal_merge_forest(15, 8);
  const std::string d = concrete_diagram(forest);
  // Every stream row is present with its paper name.
  for (const char* label : {"A (t=0):", "F (t=5):", "H (t=7):"}) {
    EXPECT_NE(d.find(label), std::string::npos) << label;
  }
  // Stream A transmits all 15 segments; F stops at segment 9.
  const std::size_t row_a = d.find("A (t=0):");
  const std::size_t row_b = d.find("B (t=1):");
  const std::string a_row = d.substr(row_a, row_b - row_a);
  EXPECT_NE(a_row.find(" 15"), std::string::npos);
  const std::size_t row_f = d.find("F (t=5):");
  const std::size_t row_g = d.find("G (t=6):");
  const std::string f_row = d.substr(row_f, row_g - row_f);
  EXPECT_NE(f_row.find(" 9"), std::string::npos);
  EXPECT_EQ(f_row.find("10"), std::string::npos);
}

TEST(ConcreteDiagram, GoldenFigureThree) {
  // Exact reproduction of Fig. 3 as rendered text — a regression anchor
  // for the whole schedule pipeline.
  const MergeForest forest = optimal_merge_forest(15, 8);
  const std::string expected =
      "      t:  0  1  2  3  4  5  6  7  8  9 10 11 12 13 14\n"
      "A (t=0):  1  2  3  4  5  6  7  8  9 10 11 12 13 14 15\n"
      "B (t=1):     1\n"
      "C (t=2):        1  2\n"
      "D (t=3):           1  2  3  4  5\n"
      "E (t=4):              1\n"
      "F (t=5):                 1  2  3  4  5  6  7  8  9\n"
      "G (t=6):                    1\n"
      "H (t=7):                       1  2\n";
  EXPECT_EQ(concrete_diagram(forest), expected);
}

TEST(ConcreteDiagram, RowCountMatchesStreams) {
  const MergeForest forest = optimal_merge_forest(15, 14);
  const std::string d = concrete_diagram(forest);
  const auto lines = static_cast<Index>(std::count(d.begin(), d.end(), '\n'));
  EXPECT_EQ(lines, 14 + 1);  // one header + one row per stream
}

TEST(RenderTree, FigureFourShape) {
  const std::string r = render_tree(optimal_merge_tree(8));
  // Root and both named subtrees appear with paper letters.
  EXPECT_NE(r.find("0 (A)"), std::string::npos);
  EXPECT_NE(r.find("5 (F)"), std::string::npos);
  EXPECT_NE(r.find("7 (H)"), std::string::npos);
  // H is nested under F: its connector is indented.
  const std::size_t f_pos = r.find("5 (F)");
  const std::size_t h_pos = r.find("7 (H)");
  ASSERT_NE(f_pos, std::string::npos);
  ASSERT_NE(h_pos, std::string::npos);
  EXPECT_LT(f_pos, h_pos);
}

TEST(RenderTree, OffsetShiftsLabels) {
  const std::string r = render_tree(optimal_merge_tree(3), 7);
  EXPECT_NE(r.find("7 (H)"), std::string::npos);
  EXPECT_NE(r.find("8 (I)"), std::string::npos);
  EXPECT_NE(r.find("9 (J)"), std::string::npos);
}

TEST(RenderTree, SingleNode) {
  EXPECT_EQ(render_tree(MergeTree::single()), "0 (A)\n");
}

}  // namespace
}  // namespace smerge
