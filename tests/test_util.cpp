// Tests for the util substrate: tables, CLI parsing, statistics, the
// parallel-for helper and the splittable RNG.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/cli.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace smerge::util {
namespace {

TEST(TextTable, AlignedRendering) {
  TextTable t({"n", "M(n)"});
  t.add_row(8, 21);
  t.add_row(144, 1153);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("|   n |"), std::string::npos);  // right-aligned header
  EXPECT_NE(s.find("|   8 |"), std::string::npos);
  EXPECT_NE(s.find("| 144 |"), std::string::npos);
}

TEST(TextTable, CsvEscaping) {
  TextTable t({"name", "value"});
  t.add_row(std::vector<std::string>{"a,b", "say \"hi\""});
  EXPECT_EQ(t.to_csv(), "name,value\n\"a,b\",\"say \"\"hi\"\"\"\n");
}

TEST(TextTable, ArityChecked) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row(std::vector<std::string>{"x"}), std::invalid_argument);
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(TextTable, CellFormatting) {
  EXPECT_EQ(TextTable::cell(std::int64_t{42}), "42");
  EXPECT_EQ(TextTable::cell(1.5), "1.5000");
  EXPECT_EQ(TextTable::cell("text"), "text");
}

TEST(ArgParser, ParsesTypedFlags) {
  ArgParser p("test");
  p.add_int("n", 10, "count");
  p.add_double("rate", 0.5, "rate");
  p.add_string("mode", "fast", "mode");
  p.add_bool("verbose", false, "verbosity");
  const char* argv[] = {"prog", "--n=25", "--rate", "1.75", "--verbose", "pos1"};
  ASSERT_TRUE(p.parse(6, argv));
  EXPECT_EQ(p.get_int("n"), 25);
  EXPECT_DOUBLE_EQ(p.get_double("rate"), 1.75);
  EXPECT_EQ(p.get_string("mode"), "fast");
  EXPECT_TRUE(p.get_bool("verbose"));
  ASSERT_EQ(p.positional().size(), 1u);
  EXPECT_EQ(p.positional()[0], "pos1");
}

TEST(ArgParser, HelpRequested) {
  ArgParser p("test");
  p.add_int("n", 1, "count");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(p.parse(2, argv));
  EXPECT_NE(p.help().find("--n"), std::string::npos);
}

TEST(ArgParser, RejectsUnknownAndMalformed) {
  ArgParser p("test");
  p.add_int("n", 1, "count");
  const char* bad_flag[] = {"prog", "--typo=3"};
  EXPECT_THROW(p.parse(2, bad_flag), std::invalid_argument);
  ArgParser q("test");
  q.add_int("n", 1, "count");
  const char* bad_value[] = {"prog", "--n=abc"};
  ASSERT_TRUE(q.parse(2, bad_value));
  EXPECT_THROW((void)q.get_int("n"), std::invalid_argument);
  EXPECT_THROW((void)q.get_int("nope"), std::out_of_range);
}

TEST(RunningStats, MomentsMatchDirectComputation) {
  RunningStats s;
  const std::vector<double> xs{1.0, 2.0, 3.5, -4.0, 10.0};
  double sum = 0;
  for (double x : xs) {
    s.add(x);
    sum += x;
  }
  EXPECT_EQ(s.count(), 5);
  EXPECT_DOUBLE_EQ(s.mean(), sum / 5.0);
  EXPECT_DOUBLE_EQ(s.min(), -4.0);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
  double ss = 0;
  for (double x : xs) ss += (x - s.mean()) * (x - s.mean());
  EXPECT_NEAR(s.variance(), ss / 4.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(ss / 4.0), 1e-12);
  EXPECT_NEAR(s.sum(), sum, 1e-12);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10.0;
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, EmptyEdgeCases) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.variance(), 0.0);
  RunningStats t;
  t.add(3.0);
  t.merge(s);  // merging empty is a no-op
  EXPECT_EQ(t.count(), 1);
  s.merge(t);  // merging into empty copies
  EXPECT_EQ(s.count(), 1);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
}

TEST(ParallelFor, CoversRangeExactlyOnce) {
  std::vector<std::atomic<int>> hits(257);
  parallel_for(0, 257, [&](std::int64_t i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1);
  }, 4);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyAndSingletonRanges) {
  std::atomic<int> count{0};
  parallel_for(5, 5, [&](std::int64_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 0);
  parallel_for(5, 6, [&](std::int64_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 1);
}

TEST(ParallelFor, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_for(0, 100,
                   [](std::int64_t i) {
                     if (i == 37) throw std::runtime_error("boom");
                   },
                   4),
      std::runtime_error);
}

TEST(ParallelFor, SerialFallbackMatches) {
  std::vector<int> serial(100), parallel(100);
  parallel_for(0, 100, [&](std::int64_t i) {
    serial[static_cast<std::size_t>(i)] = static_cast<int>(i * i);
  }, 1);
  parallel_for(0, 100, [&](std::int64_t i) {
    parallel[static_cast<std::size_t>(i)] = static_cast<int>(i * i);
  }, 8);
  EXPECT_EQ(serial, parallel);
}

TEST(DefaultThreadCount, Sane) {
  const unsigned t = default_thread_count();
  EXPECT_GE(t, 1u);
  EXPECT_LE(t, 64u);
}

TEST(SplitMix64, DeterministicAndSeedSensitive) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next(), b.next());
  SplitMix64 c(43);
  EXPECT_NE(SplitMix64(42).next(), c.next());
}

TEST(SplitMix64, SplitIgnoresParentPosition) {
  // split derives from the initial seed, not the current state: a parent
  // that has already produced values splits to the same substream.
  SplitMix64 fresh(7);
  SplitMix64 advanced(7);
  for (int i = 0; i < 100; ++i) (void)advanced.next();
  SplitMix64 sub_fresh = fresh.split(3);
  SplitMix64 sub_advanced = advanced.split(3);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(sub_fresh.next(), sub_advanced.next());
  // Distinct keys give distinct substreams.
  EXPECT_NE(fresh.split(3).next(), fresh.split(4).next());
}

TEST(SplitMix64, DoublesInUnitIntervalWithSaneMean) {
  SplitMix64 rng(1234);
  double sum = 0.0;
  constexpr int kDraws = 10000;
  for (int i = 0; i < kDraws; ++i) {
    const double u = rng.next_double();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kDraws, 0.5, 0.02);
}

TEST(SplitMix64, ExponentialHasConfiguredMean) {
  SplitMix64 rng(99);
  double sum = 0.0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.next_exponential(2.5);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kDraws, 2.5, 0.1);
}

TEST(P2Quantile, StateRoundTripContinuesBitIdentically) {
  // Kill the estimator at every prefix of a stream: the restored copy
  // must equal the original on every future observation, bit for bit.
  SplitMix64 rng(314159);
  std::vector<double> stream(257);
  for (double& x : stream) x = rng.next_exponential(0.05);
  for (const double q : {0.5, 0.95, 0.99}) {
    for (const std::size_t kill : {0UL, 1UL, 3UL, 4UL, 5UL, 17UL, 200UL}) {
      P2Quantile original(q);
      for (std::size_t i = 0; i < kill; ++i) original.add(stream[i]);
      const P2State saved = original.state();
      P2Quantile restored(saved);
      EXPECT_EQ(restored.state(), saved);
      EXPECT_EQ(restored.estimate(), original.estimate());
      for (std::size_t i = kill; i < stream.size(); ++i) {
        original.add(stream[i]);
        restored.add(stream[i]);
        ASSERT_EQ(restored.estimate(), original.estimate())
            << "q=" << q << " kill=" << kill << " i=" << i;
      }
      EXPECT_EQ(restored.state(), original.state());
      EXPECT_EQ(restored.count(), original.count());
    }
  }
  // States of different streams (or positions) compare unequal.
  P2Quantile a(0.5);
  P2Quantile b(0.5);
  a.add(1.0);
  EXPECT_FALSE(a.state() == b.state());
  EXPECT_THROW(P2Quantile bad(P2State{}), std::invalid_argument);
}

TEST(QuantileSorted, NearestRankConventions) {
  std::vector<double> values{5.0, 1.0, 4.0, 2.0, 3.0};
  std::sort(values.begin(), values.end());
  EXPECT_DOUBLE_EQ(quantile_sorted(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(values, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(values, 0.6), 3.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(values, 0.61), 4.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(values, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile_sorted({}, 0.5), 0.0);
  EXPECT_THROW((void)quantile_sorted(values, 1.5), std::invalid_argument);
}

}  // namespace
}  // namespace smerge::util
