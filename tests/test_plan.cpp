// The canonical MergePlan IR: builder invariants, round-trips from
// every producer, and the universal verifier as a cross-check oracle
// against the legacy per-structure walks.
#include "core/plan.h"

#include <gtest/gtest.h>

#include <random>

#include "core/full_cost.h"
#include "core/tree_builder.h"
#include "merging/dyadic.h"
#include "merging/optimal_general.h"
#include "online/delay_guaranteed.h"
#include "schedule/channels.h"
#include "schedule/receiving_program.h"
#include "schedule/stream_schedule.h"
#include "sim/arrivals.h"
#include "util/json_writer.h"

namespace smerge {
namespace {

TEST(PlanBuilder, ValidatesStructure) {
  EXPECT_THROW((void)plan::PlanBuilder(0.0), std::invalid_argument);
  plan::PlanBuilder b(1.0);
  EXPECT_EQ(b.add_stream(0.0, -1), 0);
  EXPECT_THROW((void)b.add_stream(0.5, 1), std::invalid_argument);   // future parent
  EXPECT_THROW((void)b.add_stream(0.5, -2), std::invalid_argument);  // bad id
  EXPECT_EQ(b.add_stream(0.5, 0), 1);
  EXPECT_THROW((void)b.add_stream(0.2, 0), std::invalid_argument);  // start order
  EXPECT_THROW((void)b.add_stream(0.5, 1), std::invalid_argument);  // equal-start parent
  EXPECT_THROW((void)b.add_stream(0.7, 0, -1.0), std::invalid_argument);
  EXPECT_THROW(b.record_wait(7, 0.1), std::out_of_range);
  EXPECT_THROW(b.record_wait(0, -0.1), std::invalid_argument);
  b.record_wait(1, 0.25);
  b.record_wait(1, 0.125);  // max-accumulates, does not overwrite
  const plan::MergePlan p = b.build();
  ASSERT_EQ(p.size(), 2);
  EXPECT_EQ(p.num_roots(), 1);
  EXPECT_DOUBLE_EQ(p.delay()[1], 0.25);
  EXPECT_DOUBLE_EQ(p.length()[0], 1.0);           // root: full media
  EXPECT_DOUBLE_EQ(p.length()[1], 2.0 * 0.5 - 0.5 - 0.0);  // Lemma 1
  EXPECT_DOUBLE_EQ(p.merge_time()[1], 2.0 * 0.5 - 0.0);
  ASSERT_EQ(p.children(0).size(), 1u);
  EXPECT_EQ(p.children(0)[0], 1);
  EXPECT_TRUE(p.children(1).empty());
  EXPECT_EQ(p.root_path(1), (std::vector<Index>{0, 1}));
  // The builder empties on build and is reusable.
  EXPECT_EQ(b.size(), 0);
}

TEST(Plan, EmptyPlanVerifies) {
  plan::PlanBuilder b(1.0);
  const plan::MergePlan p = b.build();
  EXPECT_EQ(p.size(), 0);
  EXPECT_DOUBLE_EQ(p.total_cost(), 0.0);
  EXPECT_EQ(p.peak_bandwidth(), 0);
  const plan::PlanReport r = plan::verify(p);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.clients, 0);
}

TEST(Plan, VerifyRejectsOverTruncatedStream) {
  // Chain 0 <- 5 with the child's Lemma-1 length (2*5 - 5 - 0 = 5)
  // explicitly cut to 3: its own client then has a media gap.
  plan::PlanBuilder b(16.0);
  (void)b.add_stream(0.0, -1);
  (void)b.add_stream(5.0, 0, 3.0);
  const plan::MergePlan p = b.build();
  const plan::PlanReport r = plan::verify(p);
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.first_error.empty());
}

TEST(Plan, VerifyRejectsShortRoot) {
  plan::PlanBuilder b(8.0);
  (void)b.add_stream(0.0, -1, 5.0);  // a root must carry the full media
  const plan::MergePlan p = b.build();
  EXPECT_FALSE(plan::verify(p).ok);
}

TEST(PlanRoundTrip, FuzzedMergeForestsMatchLegacyWalks) {
  // MergeForest -> MergePlan -> verify on random preorder trees: the
  // verifier must accept every feasible forest and its cost / peak must
  // match the legacy full_cost / StreamSchedule walks exactly.
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    const Index L = 24;
    std::vector<MergeTree> trees;
    for (Index b = 0; b < 4; ++b) {
      for (std::uint64_t attempt = 0;; ++attempt) {
        const Index n = 2 + (static_cast<Index>(seed ^ attempt) + b) % 10;
        const MergeTree t =
            random_merge_tree(n, seed * 131 + static_cast<std::uint64_t>(b) * 17 + attempt);
        if (t.feasible(L)) {
          trees.push_back(t);
          break;
        }
      }
    }
    const MergeForest forest(L, std::move(trees));
    const plan::MergePlan p = forest.to_plan();
    ASSERT_EQ(p.size(), forest.size());
    EXPECT_EQ(p.num_roots(), forest.num_trees());
    const plan::PlanReport report = plan::verify(p);
    EXPECT_TRUE(report.ok) << "seed=" << seed << ": " << report.first_error;
    EXPECT_DOUBLE_EQ(report.total_cost, static_cast<double>(forest.full_cost()));
    const StreamSchedule schedule(forest);
    EXPECT_EQ(report.peak_bandwidth, schedule.peak_bandwidth()) << "seed=" << seed;
    // The greedy channel assignment over the plan provisions exactly
    // the peak.
    EXPECT_EQ(assign_channels(p).channels_used, report.peak_bandwidth);
  }
}

TEST(PlanRoundTrip, FuzzedGeneralForestsMatchLegacyWalks) {
  // GeneralMergeForest -> MergePlan -> verify over the PR-2 fuzz corpus
  // (same generator: 180 trials x 3 media lengths, 540 instances): cost
  // and peak must agree with the forest's own walks, and the banded
  // optimum's direct plan (optimal_general_plan) must be identical to
  // the forest route.
  std::mt19937_64 rng(20260728);
  std::uniform_int_distribution<std::size_t> size_dist(0, 24);
  std::uniform_real_distribution<double> time_dist(0.0, 8.0);
  int instances = 0;
  for (int trial = 0; trial < 180; ++trial) {
    const std::size_t n = size_dist(rng);
    std::vector<double> t(n);
    for (double& x : t) x = time_dist(rng);
    std::sort(t.begin(), t.end());
    t.erase(std::unique(t.begin(), t.end()), t.end());
    for (const double L : {1e-6, 0.75, 100.0}) {
      ++instances;
      const merging::GeneralOptimum opt = merging::optimal_general_forest(t, L);
      const plan::MergePlan via_forest = opt.forest.to_plan();
      const plan::PlanReport report = plan::verify(via_forest);
      EXPECT_TRUE(report.ok)
          << "trial=" << trial << " L=" << L << ": " << report.first_error;
      EXPECT_NEAR(report.total_cost, opt.forest.total_cost(), 1e-9)
          << "trial=" << trial << " L=" << L;
      EXPECT_NEAR(report.total_cost, opt.cost, 1e-9);
      EXPECT_EQ(report.peak_bandwidth, opt.forest.peak_concurrency());
      // The direct producer emits the same plan.
      const plan::MergePlan direct = merging::optimal_general_plan(t, L);
      ASSERT_EQ(direct.size(), via_forest.size());
      for (Index i = 0; i < direct.size(); ++i) {
        const auto u = static_cast<std::size_t>(i);
        EXPECT_EQ(direct.parent()[u], via_forest.parent()[u]);
        EXPECT_DOUBLE_EQ(direct.start()[u], via_forest.start()[u]);
        EXPECT_DOUBLE_EQ(direct.length()[u], via_forest.length()[u]);
      }
    }
  }
  EXPECT_GE(instances, 500);
}

TEST(PlanRoundTrip, DyadicForestsVerify) {
  const auto arrivals = sim::poisson_arrivals(0.02, 10.0, 11);
  merging::DyadicMerger merger(1.0, {});
  for (const double t : arrivals) merger.arrive(t);
  const plan::MergePlan p = merger.forest().to_plan();
  const plan::PlanReport report = plan::verify(p);
  EXPECT_TRUE(report.ok) << report.first_error;
  EXPECT_NEAR(report.total_cost, merger.forest().total_cost(), 1e-9);
  EXPECT_LE(report.max_concurrent, 2);
  EXPECT_LE(report.peak_buffer, 0.5 + 1e-9);  // Lemma 15 in continuous form
}

TEST(PlanRoundTrip, DelayGuaranteedOnlinePlanVerifies) {
  const DelayGuaranteedOnline dg(100);
  for (const Index n : {1, 20, 89, 200, 233, 500}) {
    const plan::MergePlan p = dg.to_plan(n);
    ASSERT_EQ(p.size(), n);
    const plan::PlanReport report = plan::verify(p);
    EXPECT_TRUE(report.ok) << "n=" << n << ": " << report.first_error;
    EXPECT_DOUBLE_EQ(report.total_cost, static_cast<double>(dg.cost(n)))
        << "n=" << n;
    // Section 3.3: nobody buffers more than L/2 slots.
    EXPECT_LE(report.peak_buffer, 50.0 + 1e-9);
  }
}

TEST(PlanRoundTrip, ReceiveAllModel) {
  const Index L = 32;
  const Index n = 24;
  const MergeForest forest = optimal_merge_forest(L, n, Model::kReceiveAll);
  const plan::MergePlan p = forest.to_plan(Model::kReceiveAll);
  EXPECT_EQ(p.model(), Model::kReceiveAll);
  const plan::PlanReport report = plan::verify(p);
  EXPECT_TRUE(report.ok) << report.first_error;
  EXPECT_DOUBLE_EQ(report.total_cost,
                   static_cast<double>(forest.full_cost(Model::kReceiveAll)));
  // Receive-all clients may read whole root paths at once...
  EXPECT_GE(report.max_concurrent, 2);
  // ...but the same lengths are illegal under receive-two.
  EXPECT_FALSE(plan::verify(p, Model::kReceiveTwo).ok);
}

TEST(Plan, ReceivingProgramOverloadMatchesForestPrograms) {
  const Index L = 16;
  const Index n = 13;
  const MergeForest forest = optimal_merge_forest(L, n);
  const plan::MergePlan p = forest.to_plan();
  for (Index a = 0; a < n; ++a) {
    const ReceivingProgram from_forest(forest, a);
    const ReceivingProgram from_plan(p, a);
    EXPECT_EQ(from_plan.arrival(), from_forest.arrival());
    EXPECT_EQ(from_plan.media_length(), from_forest.media_length());
    EXPECT_EQ(from_plan.path(), from_forest.path());
    EXPECT_EQ(from_plan.receptions(), from_forest.receptions());
  }
  // The overload rejects plans that are not slot-aligned.
  plan::PlanBuilder b(1.0);
  (void)b.add_stream(0.25, -1);
  const plan::MergePlan continuous = b.build();
  EXPECT_THROW((void)ReceivingProgram(continuous, 0), std::invalid_argument);
}

TEST(Plan, JsonDumpIsValid) {
  const plan::MergePlan p = optimal_merge_plan(16, 8);
  const std::string doc = plan::to_json(p);
  EXPECT_EQ(util::json_error(doc), std::nullopt) << doc;
  EXPECT_NE(doc.find("\"schema\": \"smerge-plan-v2\""), std::string::npos);
  EXPECT_NE(doc.find("\"peak_bandwidth\""), std::string::npos);
  EXPECT_NE(doc.find("\"chunking\""), std::string::npos);
  EXPECT_NE(doc.find("\"active\""), std::string::npos);
}

}  // namespace
}  // namespace smerge
