// Admission wire protocol (src/net/protocol.h): framing round-trips,
// incremental decoding over every torn-prefix byte boundary (the
// non-blocking socket reality — frames arrive split anywhere, mirroring
// the torn-tail coverage of test_recovery.cpp), and loud rejection of
// every malformed-header class: bad magic, unknown version or type,
// nonzero reserved bits, oversized payload, checksum mismatch. Also the
// typed payload codecs shared with the crash-consistency substrate
// (server/wire.h): Ticket, LiveStats and WireSummary must round-trip
// bit-exactly.
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "net/protocol.h"
#include "server/wire.h"
#include "util/snapshot.h"

namespace smerge::net {
namespace {

std::vector<std::uint8_t> bytes_of(std::initializer_list<int> values) {
  std::vector<std::uint8_t> out;
  for (const int v : values) out.push_back(static_cast<std::uint8_t>(v));
  return out;
}

/// A representative multi-frame stream: one of each client/server type.
std::vector<std::uint8_t> sample_stream() {
  std::vector<std::uint8_t> out;
  append_admit(out, 7, 3, 0.625);
  append_u64_frame(out, RecordType::kPing, 0xDEADBEEFCAFEF00Dull);
  append_frame(out, RecordType::kStatsRequest, {});
  const auto payload = bytes_of({1, 2, 3, 4, 5});
  append_frame(out, RecordType::kTicket, payload);
  append_admit(out, 8, 0, 0.0);
  return out;
}

/// Decodes every buffered frame, returning (type, payload copy) pairs.
std::vector<std::pair<RecordType, std::vector<std::uint8_t>>> drain(
    FrameDecoder& decoder) {
  std::vector<std::pair<RecordType, std::vector<std::uint8_t>>> frames;
  Frame frame;
  while (decoder.next_frame(frame)) {
    frames.emplace_back(frame.type, std::vector<std::uint8_t>(
                                        frame.payload.begin(),
                                        frame.payload.end()));
  }
  return frames;
}

void expect_sample_frames(
    const std::vector<std::pair<RecordType, std::vector<std::uint8_t>>>& got) {
  ASSERT_EQ(got.size(), 5u);
  EXPECT_EQ(got[0].first, RecordType::kAdmit);
  const AdmitRecord admit = parse_admit(got[0].second);
  EXPECT_EQ(admit.request_id, 7u);
  EXPECT_EQ(admit.object, 3);
  EXPECT_EQ(admit.time, 0.625);
  EXPECT_EQ(got[1].first, RecordType::kPing);
  EXPECT_EQ(parse_u64(got[1].second), 0xDEADBEEFCAFEF00Dull);
  EXPECT_EQ(got[2].first, RecordType::kStatsRequest);
  EXPECT_TRUE(got[2].second.empty());
  EXPECT_EQ(got[3].first, RecordType::kTicket);
  EXPECT_EQ(got[3].second, bytes_of({1, 2, 3, 4, 5}));
  EXPECT_EQ(got[4].first, RecordType::kAdmit);
  const AdmitRecord last = parse_admit(got[4].second);
  EXPECT_EQ(last.request_id, 8u);
  EXPECT_EQ(last.object, 0);
  EXPECT_EQ(last.time, 0.0);
}

TEST(NetProtocol, WholeStreamRoundTrip) {
  const auto stream = sample_stream();
  FrameDecoder decoder;
  decoder.feed(stream);
  expect_sample_frames(drain(decoder));
  EXPECT_EQ(decoder.buffered(), 0u);
}

// Frames torn at EVERY two-chunk byte boundary: the decoder must buffer
// any prefix, yield only complete frames, and never duplicate or drop a
// frame once the suffix arrives.
TEST(NetProtocol, TornPrefixEverySplitBoundary) {
  const auto stream = sample_stream();
  for (std::size_t split = 0; split <= stream.size(); ++split) {
    FrameDecoder decoder;
    decoder.feed(std::span(stream.data(), split));
    auto frames = drain(decoder);
    decoder.feed(std::span(stream.data() + split, stream.size() - split));
    for (auto& f : drain(decoder)) frames.push_back(std::move(f));
    SCOPED_TRACE("split=" + std::to_string(split));
    expect_sample_frames(frames);
    EXPECT_EQ(decoder.buffered(), 0u);
  }
}

TEST(NetProtocol, ByteAtATimeFeeding) {
  const auto stream = sample_stream();
  FrameDecoder decoder;
  std::vector<std::pair<RecordType, std::vector<std::uint8_t>>> frames;
  for (const std::uint8_t byte : stream) {
    decoder.feed(std::span(&byte, 1));
    for (auto& f : drain(decoder)) frames.push_back(std::move(f));
  }
  expect_sample_frames(frames);
}

// The zero-copy socket path: writable() reserves, commit() publishes
// only what was actually read — including short and zero-byte reads.
TEST(NetProtocol, WritableCommitPartialReads) {
  const auto stream = sample_stream();
  FrameDecoder decoder;
  std::vector<std::pair<RecordType, std::vector<std::uint8_t>>> frames;
  std::size_t at = 0;
  const std::size_t chunks[] = {1, 0, 3, 7, 2, 64, 1024};
  std::size_t pick = 0;
  while (at < stream.size()) {
    const std::size_t want = chunks[pick++ % std::size(chunks)];
    auto span = decoder.writable(want > 0 ? want : 8);
    const std::size_t n =
        std::min({span.size(), want, stream.size() - at});
    std::memcpy(span.data(), stream.data() + at, n);
    decoder.commit(n);
    at += n;
    for (auto& f : drain(decoder)) frames.push_back(std::move(f));
  }
  expect_sample_frames(frames);
}

TEST(NetProtocol, ValidRecordTypes) {
  EXPECT_FALSE(valid_record_type(0));
  for (std::uint8_t t = 1; t <= 8; ++t) EXPECT_TRUE(valid_record_type(t));
  EXPECT_FALSE(valid_record_type(9));
  EXPECT_FALSE(valid_record_type(255));
}

// Each malformed-header class throws ProtocolError, and the decoder is
// poisoned afterwards: even pristine follow-up bytes keep throwing (the
// stream is dead, the owner must close it).
TEST(NetProtocol, MalformedHeadersRejectAndPoison) {
  std::vector<std::uint8_t> good;
  append_admit(good, 1, 0, 1.0);
  struct Corruption {
    const char* name;
    std::size_t offset;
    std::uint8_t value;
  };
  const Corruption corruptions[] = {
      {"magic", 0, 0x54},       // not 'S'
      {"version", 4, 9},        // unknown version
      {"type", 5, 0},           // invalid record type (checksum refreshed? no
                                // — checksum covers it, either check throws)
      {"reserved", 6, 1},       // must-be-zero bits set
      {"checksum", 12, 0xFF},   // valid fields, wrong checksum
  };
  for (const Corruption& c : corruptions) {
    SCOPED_TRACE(c.name);
    auto bad = good;
    bad[c.offset] = c.value;
    FrameDecoder decoder;
    decoder.feed(bad);
    Frame frame;
    EXPECT_THROW((void)decoder.next_frame(frame), ProtocolError);
    EXPECT_THROW(
        {
          decoder.feed(good);
          (void)decoder.next_frame(frame);
        },
        ProtocolError)
        << "decoder must stay poisoned";
  }
}

// An oversized payload length with a *valid* checksum must still be
// rejected — the length guard, not the checksum, is the defense against
// a hostile 4 GB allocation.
TEST(NetProtocol, OversizedPayloadRejected) {
  std::vector<std::uint8_t> header(kHeaderSize, 0);
  header[0] = 0x53;
  header[1] = 0x4D;
  header[2] = 0x4E;
  header[3] = 0x31;
  header[4] = kProtocolVersion;
  header[5] = static_cast<std::uint8_t>(RecordType::kPing);
  const std::uint32_t huge = static_cast<std::uint32_t>(kMaxPayload) + 1;
  std::memcpy(header.data() + 8, &huge, 4);
  const std::uint64_t sum = util::fnv1a64(std::span(header.data(), 12));
  const auto low = static_cast<std::uint32_t>(sum);
  std::memcpy(header.data() + 12, &low, 4);
  FrameDecoder decoder;
  decoder.feed(header);
  Frame frame;
  EXPECT_THROW((void)decoder.next_frame(frame), ProtocolError);
}

// A decoder-level payload cap below kMaxPayload (the server could run a
// tighter bound) rejects frames the default would accept.
TEST(NetProtocol, DecoderPayloadCapIsEnforced) {
  const std::vector<std::uint8_t> payload(128, 0xAB);
  std::vector<std::uint8_t> stream;
  append_frame(stream, RecordType::kTicket, payload);
  FrameDecoder tight(64);
  tight.feed(stream);
  Frame frame;
  EXPECT_THROW((void)tight.next_frame(frame), ProtocolError);
  FrameDecoder roomy(256);
  roomy.feed(stream);
  ASSERT_TRUE(roomy.next_frame(frame));
  EXPECT_EQ(frame.payload.size(), 128u);
}

TEST(NetProtocol, PayloadSizeMismatchThrows) {
  EXPECT_THROW((void)parse_admit(std::vector<std::uint8_t>(23)), ProtocolError);
  EXPECT_THROW((void)parse_admit(std::vector<std::uint8_t>(25)), ProtocolError);
  EXPECT_THROW((void)parse_u64(std::vector<std::uint8_t>(7)), ProtocolError);
  EXPECT_THROW((void)parse_u64(std::vector<std::uint8_t>(9)), ProtocolError);
}

TEST(NetProtocol, PeekConsumeBypassFraming) {
  FrameDecoder decoder;
  const auto text = bytes_of({'G', 'E', 'T', ' ', '/'});
  decoder.feed(text);
  const auto seen = decoder.peek();
  ASSERT_EQ(seen.size(), text.size());
  EXPECT_EQ(seen[0], 'G');
  decoder.consume(3);
  EXPECT_EQ(decoder.buffered(), 2u);
  decoder.consume(100);  // over-consume clamps
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(NetWire, TicketRoundTripsBitExactly) {
  server::Ticket t;
  t.admitted = true;
  t.object = 41;
  t.slot = 17;
  t.arrival = 1.0625;
  t.decision_time = 1.125;
  t.playback_start = 1.25;
  t.wait = 0.1875;
  t.guarantee_wait = 0.125;
  t.deferred_slots = 3;
  t.degraded = true;
  t.program = 9;
  util::SnapshotWriter w;
  server::write_ticket(w, t);
  util::SnapshotReader r(w.payload());
  const server::Ticket got = server::read_ticket(r);
  r.expect_end();
  EXPECT_EQ(got.admitted, t.admitted);
  EXPECT_EQ(got.object, t.object);
  EXPECT_EQ(got.slot, t.slot);
  EXPECT_EQ(got.arrival, t.arrival);
  EXPECT_EQ(got.decision_time, t.decision_time);
  EXPECT_EQ(got.playback_start, t.playback_start);
  EXPECT_EQ(got.wait, t.wait);
  EXPECT_EQ(got.guarantee_wait, t.guarantee_wait);
  EXPECT_EQ(got.deferred_slots, t.deferred_slots);
  EXPECT_EQ(got.degraded, t.degraded);
  EXPECT_EQ(got.program, t.program);
}

// The generic-policy sentinel ticket (fields -1.0: "decided at the next
// drain") must survive the wire unchanged — clients branch on it.
TEST(NetWire, SentinelTicketRoundTrips) {
  server::Ticket t;
  t.admitted = true;
  t.object = 2;
  t.arrival = 0.5;
  t.decision_time = 0.5;
  t.playback_start = -1.0;
  t.wait = -1.0;
  t.guarantee_wait = -1.0;
  util::SnapshotWriter w;
  server::write_ticket(w, t);
  util::SnapshotReader r(w.payload());
  const server::Ticket got = server::read_ticket(r);
  r.expect_end();
  EXPECT_EQ(got.playback_start, -1.0);
  EXPECT_EQ(got.wait, -1.0);
  EXPECT_EQ(got.guarantee_wait, -1.0);
  EXPECT_EQ(got.slot, -1);
  EXPECT_EQ(got.program, -1);
}

TEST(NetWire, LiveStatsRoundTrip) {
  server::LiveStats s;
  s.arrivals = 100;
  s.admitted = 90;
  s.rejected = 10;
  s.deferrals = 5;
  s.degraded = 2;
  s.streams = 40;
  s.cost = 123.5;
  s.current_channels = 7;
  s.peak_channels = 12;
  s.wait.mean = 0.004;
  s.wait.max = 0.01;
  s.wait.p50 = 0.003;
  s.wait.p95 = 0.008;
  s.wait.p99 = 0.009;
  s.live_sessions = 3;
  s.session_pauses = 1;
  s.session_seeks = 2;
  s.session_abandons = 4;
  util::SnapshotWriter w;
  server::write_live_stats(w, s);
  util::SnapshotReader r(w.payload());
  const server::LiveStats got = server::read_live_stats(r);
  r.expect_end();
  EXPECT_EQ(got.arrivals, s.arrivals);
  EXPECT_EQ(got.admitted, s.admitted);
  EXPECT_EQ(got.rejected, s.rejected);
  EXPECT_EQ(got.deferrals, s.deferrals);
  EXPECT_EQ(got.degraded, s.degraded);
  EXPECT_EQ(got.streams, s.streams);
  EXPECT_EQ(got.cost, s.cost);
  EXPECT_EQ(got.current_channels, s.current_channels);
  EXPECT_EQ(got.peak_channels, s.peak_channels);
  EXPECT_EQ(got.wait.mean, s.wait.mean);
  EXPECT_EQ(got.wait.max, s.wait.max);
  EXPECT_EQ(got.wait.p50, s.wait.p50);
  EXPECT_EQ(got.wait.p95, s.wait.p95);
  EXPECT_EQ(got.wait.p99, s.wait.p99);
  EXPECT_EQ(got.live_sessions, s.live_sessions);
  EXPECT_EQ(got.session_pauses, s.session_pauses);
  EXPECT_EQ(got.session_seeks, s.session_seeks);
  EXPECT_EQ(got.session_abandons, s.session_abandons);
}

TEST(NetWire, SummaryRoundTrip) {
  server::WireSummary s;
  s.ok = true;
  s.digest = 0x0123456789ABCDEFull;
  s.total_arrivals = 1000;
  s.total_streams = 600;
  s.streams_served = 599.5;
  s.peak_concurrency = 77;
  s.guarantee_violations = 0;
  s.rejected = 4;
  s.wait.mean = 0.005;
  s.wait.max = 0.01;
  s.wait.p50 = 0.004;
  s.wait.p95 = 0.009;
  s.wait.p99 = 0.0095;
  util::SnapshotWriter w;
  server::write_summary(w, s);
  util::SnapshotReader r(w.payload());
  const server::WireSummary got = server::read_summary(r);
  r.expect_end();
  EXPECT_EQ(got.ok, s.ok);
  EXPECT_EQ(got.digest, s.digest);
  EXPECT_EQ(got.total_arrivals, s.total_arrivals);
  EXPECT_EQ(got.total_streams, s.total_streams);
  EXPECT_EQ(got.streams_served, s.streams_served);
  EXPECT_EQ(got.peak_concurrency, s.peak_concurrency);
  EXPECT_EQ(got.guarantee_violations, s.guarantee_violations);
  EXPECT_EQ(got.rejected, s.rejected);
  EXPECT_EQ(got.wait.mean, s.wait.mean);
  EXPECT_EQ(got.wait.max, s.wait.max);
  EXPECT_EQ(got.wait.p50, s.wait.p50);
  EXPECT_EQ(got.wait.p95, s.wait.p95);
  EXPECT_EQ(got.wait.p99, s.wait.p99);
}

}  // namespace
}  // namespace smerge::net
