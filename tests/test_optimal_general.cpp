// Tests for the general-arrivals optimal off-line algorithm (the [6]
// baseline). The strongest anchor: on the delay-guaranteed instance
// (one arrival per slot) the general DP must reproduce the Fibonacci
// closed forms exactly.
#include "merging/optimal_general.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>

#include "core/full_cost.h"
#include "merging/dyadic.h"
#include "sim/arrivals.h"

namespace smerge::merging {
namespace {

std::vector<double> slotted(Index n) {
  std::vector<double> t(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) t[static_cast<std::size_t>(i)] = static_cast<double>(i);
  return t;
}

TEST(OptimalGeneral, TrivialInstances) {
  EXPECT_DOUBLE_EQ(optimal_general_cost({}, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(optimal_general_cost({0.3}, 1.0), 1.0);
  // Two arrivals close together: one root plus a leaf merge.
  EXPECT_DOUBLE_EQ(optimal_general_cost({0.0, 0.2}, 1.0), 1.2);
  // Two arrivals too far apart to merge: two full streams.
  EXPECT_DOUBLE_EQ(optimal_general_cost({0.0, 1.5}, 1.0), 2.0);
}

TEST(OptimalGeneral, SpanAtMediaLengthForcesSecondRoot) {
  // z - r < L is required; at exactly L the root cannot serve the client.
  EXPECT_DOUBLE_EQ(optimal_general_cost({0.0, 1.0}, 1.0), 2.0);
}

class SlottedCrossCheck : public ::testing::TestWithParam<std::tuple<Index, Index>> {};

TEST_P(SlottedCrossCheck, ReproducesDelayGuaranteedClosedForm) {
  // The delay-guaranteed model is the special case t_i = i. The general
  // DP (which also enforces L-tree feasibility) must match F(L,n) — this
  // simultaneously validates the DP and the feasibility of the paper's
  // optimal plans.
  const auto [L, n] = GetParam();
  const double general = optimal_general_cost(slotted(n), static_cast<double>(L));
  EXPECT_DOUBLE_EQ(general, static_cast<double>(full_cost(L, n)))
      << "L=" << L << " n=" << n;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SlottedCrossCheck,
    ::testing::Combine(::testing::Values<Index>(1, 2, 3, 4, 5, 8, 13, 15, 21, 34),
                       ::testing::Values<Index>(1, 2, 5, 8, 13, 14, 16, 34, 55, 89)));

class RandomInstances : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomInstances, QuadraticMatchesCubic) {
  // The split-monotonicity optimization against the assumption-free
  // O(n^3) DP, across media lengths that make the L-tree constraint bite.
  const std::uint64_t seed = GetParam();
  const std::vector<double> arrivals = sim::poisson_arrivals(0.08, 8.0, seed);
  ASSERT_LE(arrivals.size(), 200u);
  for (const double L : {0.3, 1.0, 2.5}) {
    EXPECT_NEAR(optimal_general_cost(arrivals, L),
                optimal_general_cost_cubic(arrivals, L), 1e-6)
        << "L=" << L << " seed=" << seed;
  }
}

TEST_P(RandomInstances, ForestAttainsCostAndIsFeasible) {
  const std::uint64_t seed = GetParam();
  const std::vector<double> arrivals = sim::poisson_arrivals(0.05, 6.0, seed);
  const GeneralOptimum opt = optimal_general_forest(arrivals, 1.0);
  EXPECT_NEAR(opt.forest.total_cost(), opt.cost, 1e-9);
  EXPECT_EQ(opt.forest.size(), static_cast<Index>(arrivals.size()));
  for (Index i = 0; i < opt.forest.size(); ++i) {
    EXPECT_LE(opt.forest.stream_duration(i), 1.0 + 1e-9) << i;  // L-tree
    const Index p = opt.forest.stream(i).parent;
    if (p != -1) {
      EXPECT_LT(opt.forest.stream(i).time, opt.forest.stream(p).time + 1.0) << i;
    }
  }
}

TEST_P(RandomInstances, NeverWorseThanDyadic) {
  // The off-line optimum lower-bounds every on-line algorithm.
  const std::uint64_t seed = GetParam();
  const std::vector<double> arrivals = sim::poisson_arrivals(0.05, 6.0, seed);
  DyadicMerger dyadic(1.0, {});
  for (const double t : arrivals) dyadic.arrive(t);
  const double opt = optimal_general_cost(arrivals, 1.0);
  EXPECT_LE(opt, dyadic.total_cost() + 1e-9);
  // The dyadic heuristic is competitive: within a small constant factor.
  EXPECT_LE(dyadic.total_cost(), opt * 1.6) << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomInstances,
                         ::testing::Values<std::uint64_t>(1, 2, 3, 5, 8, 13, 21, 42));

TEST(OptimalGeneral, MatchesBatchedSlotGrid) {
  // Arrivals on a delay grid with gaps (batched starts): still optimal vs
  // the cubic reference, and cheaper than serving each with a full stream.
  std::vector<double> starts;
  for (const double t : {0.1, 0.2, 0.3, 0.7, 0.8, 1.4, 1.5, 1.6, 1.7}) {
    starts.push_back(t);
  }
  const double opt = optimal_general_cost(starts, 1.0);
  EXPECT_NEAR(opt, optimal_general_cost_cubic(starts, 1.0), 1e-9);
  EXPECT_LT(opt, static_cast<double>(starts.size()) * 1.0);
}

TEST(OptimalGeneral, BeyondTheOldDenseCap) {
  // Regression for the historical hard cap (and the i*n+j flattening
  // done in Index arithmetic): the banded solver must sail past the old
  // kMaxGeneralArrivals = 2000 boundary and still reproduce the
  // delay-guaranteed closed form on the slotted instance t_i = i.
  for (const Index n : {2000, 2001, 2048}) {
    const double L = 34.0;
    EXPECT_DOUBLE_EQ(optimal_general_cost(slotted(n), L),
                     static_cast<double>(full_cost(static_cast<Index>(L), n)))
        << "n=" << n;
  }
  // The dense oracle keeps the old cap.
  EXPECT_THROW((void)optimal_general_cost_dense(slotted(2001), 34.0),
               std::invalid_argument);
  EXPECT_DOUBLE_EQ(optimal_general_cost_dense(slotted(2000), 34.0),
                   optimal_general_cost(slotted(2000), 34.0));
}

TEST(OptimalGeneral, BandCellCapGuardsDenseInstances) {
  // ~11.6k arrivals all inside one media length: the band is the full
  // triangle (> kMaxGeneralBandCells cells), which the materializing
  // paths must refuse rather than allocate.
  const std::size_t n = 11700;
  std::vector<double> t(n);
  for (std::size_t i = 0; i < n; ++i) {
    t[i] = 0.9 * static_cast<double>(i) / static_cast<double>(n);
  }
  EXPECT_THROW((void)optimal_general_forest(t, 1.0), std::invalid_argument);
  EXPECT_THROW((void)optimal_general_cost(t, 1.0, 4), std::invalid_argument);
  EXPECT_THROW((void)optimal_general_cost(t, 1.0), std::invalid_argument);
}

TEST(OptimalGeneral, ThreadedCostFallsBackToRollingWhenBandTooLarge) {
  // A narrow band over many arrivals: sum of widths exceeds
  // kMaxGeneralBandCells (no materialized table possible) while the
  // w x w rolling ring is tiny. threads > 1 must fall back to the
  // serial rolling path and still solve — on the slotted instance the
  // delay-guaranteed closed form is the independent anchor.
  const Index n = 700000;
  const Index L = 100;  // slotted band width 100 -> 70M cells > 2^26
  const std::vector<double> t = slotted(n);
  const auto expected = static_cast<double>(full_cost(L, n));
  EXPECT_DOUBLE_EQ(optimal_general_cost(t, static_cast<double>(L), 4), expected);
}

TEST(OptimalGeneral, ThreadedFillBitIdenticalToSerial) {
  const std::vector<double> arrivals = sim::poisson_arrivals(0.08, 8.0, 99);
  for (const double L : {0.3, 1.0, 2.5}) {
    EXPECT_DOUBLE_EQ(optimal_general_cost(arrivals, L),
                     optimal_general_cost(arrivals, L, 4))
        << "L=" << L;
    const GeneralOptimum serial = optimal_general_forest(arrivals, L);
    const GeneralOptimum pooled = optimal_general_forest(arrivals, L, 4);
    EXPECT_DOUBLE_EQ(serial.cost, pooled.cost) << "L=" << L;
    for (Index i = 0; i < serial.forest.size(); ++i) {
      EXPECT_EQ(serial.forest.stream(i).parent, pooled.forest.stream(i).parent)
          << "L=" << L << " i=" << i;
    }
  }
}

TEST(OptimalGeneral, PooledWavefrontFillMatchesSerialAtScale) {
  // Large enough that every early wavefront clears the fill's
  // pool-dispatch threshold (4096 rows), so this actually runs the
  // cross-thread chunked fill (the shared pool keeps >= 1 worker even
  // on single-core hosts). Anchored to the closed form and to the
  // serial fill, parent by parent.
  const Index n = 8192;
  const double L = 16.0;
  const std::vector<double> t = slotted(n);
  EXPECT_DOUBLE_EQ(optimal_general_cost(t, L, 4),
                   static_cast<double>(full_cost(16, n)));
  const GeneralOptimum serial = optimal_general_forest(t, L);
  const GeneralOptimum pooled = optimal_general_forest(t, L, 4);
  EXPECT_DOUBLE_EQ(serial.cost, pooled.cost);
  for (Index i = 0; i < n; ++i) {
    ASSERT_EQ(serial.forest.stream(i).parent, pooled.forest.stream(i).parent) << i;
  }
}

TEST(OptimalGeneral, FuzzBandedMatchesCubicAndDenseOracles) {
  // 540 random (arrivals, L) instances spanning the band-shape extremes:
  // L so small every stream is a root (width-1 band), L so large the
  // band is the whole table, and a mid regime where the constraint
  // genuinely prunes. The banded solver must agree with the O(n^3)
  // ground truth and the dense split-monotone oracle on all of them.
  std::mt19937_64 rng(20260728);
  std::uniform_int_distribution<std::size_t> size_dist(0, 24);
  std::uniform_real_distribution<double> time_dist(0.0, 8.0);
  int instances = 0;
  for (int trial = 0; trial < 180; ++trial) {
    const std::size_t n = size_dist(rng);
    std::vector<double> t(n);
    for (double& x : t) x = time_dist(rng);
    std::sort(t.begin(), t.end());
    t.erase(std::unique(t.begin(), t.end()), t.end());
    for (const double L : {1e-6, 0.75, 100.0}) {
      ++instances;
      const double banded = optimal_general_cost(t, L);
      const double cubic = optimal_general_cost_cubic(t, L);
      const double dense = optimal_general_cost_dense(t, L);
      EXPECT_NEAR(banded, cubic, 1e-9 * std::max(1.0, cubic))
          << "trial=" << trial << " n=" << t.size() << " L=" << L;
      EXPECT_DOUBLE_EQ(banded, dense)
          << "trial=" << trial << " n=" << t.size() << " L=" << L;
      // The forest must attain the cost it claims.
      const GeneralOptimum opt = optimal_general_forest(t, L);
      EXPECT_NEAR(opt.forest.total_cost(), banded, 1e-9)
          << "trial=" << trial << " n=" << t.size() << " L=" << L;
      if (L == 1e-6) {
        // Every stream is its own root: n full streams.
        EXPECT_EQ(opt.forest.num_roots(), static_cast<Index>(t.size()));
      }
    }
  }
  EXPECT_GE(instances, 500);
}

TEST(OptimalGeneral, Validation) {
  EXPECT_THROW((void)optimal_general_cost({0.2, 0.1}, 1.0), std::invalid_argument);
  EXPECT_THROW((void)optimal_general_cost({0.1, 0.1}, 1.0), std::invalid_argument);
  EXPECT_THROW((void)optimal_general_cost({0.1}, 0.0), std::invalid_argument);
  std::vector<double> too_many(
      static_cast<std::size_t>(kMaxGeneralArrivals) + 1);
  for (std::size_t i = 0; i < too_many.size(); ++i) {
    too_many[i] = static_cast<double>(i);
  }
  EXPECT_THROW((void)optimal_general_cost(too_many, 10.0), std::invalid_argument);
}

}  // namespace
}  // namespace smerge::merging
