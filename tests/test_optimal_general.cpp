// Tests for the general-arrivals optimal off-line algorithm (the [6]
// baseline). The strongest anchor: on the delay-guaranteed instance
// (one arrival per slot) the general DP must reproduce the Fibonacci
// closed forms exactly.
#include "merging/optimal_general.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/full_cost.h"
#include "merging/dyadic.h"
#include "sim/arrivals.h"

namespace smerge::merging {
namespace {

std::vector<double> slotted(Index n) {
  std::vector<double> t(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) t[static_cast<std::size_t>(i)] = static_cast<double>(i);
  return t;
}

TEST(OptimalGeneral, TrivialInstances) {
  EXPECT_DOUBLE_EQ(optimal_general_cost({}, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(optimal_general_cost({0.3}, 1.0), 1.0);
  // Two arrivals close together: one root plus a leaf merge.
  EXPECT_DOUBLE_EQ(optimal_general_cost({0.0, 0.2}, 1.0), 1.2);
  // Two arrivals too far apart to merge: two full streams.
  EXPECT_DOUBLE_EQ(optimal_general_cost({0.0, 1.5}, 1.0), 2.0);
}

TEST(OptimalGeneral, SpanAtMediaLengthForcesSecondRoot) {
  // z - r < L is required; at exactly L the root cannot serve the client.
  EXPECT_DOUBLE_EQ(optimal_general_cost({0.0, 1.0}, 1.0), 2.0);
}

class SlottedCrossCheck : public ::testing::TestWithParam<std::tuple<Index, Index>> {};

TEST_P(SlottedCrossCheck, ReproducesDelayGuaranteedClosedForm) {
  // The delay-guaranteed model is the special case t_i = i. The general
  // DP (which also enforces L-tree feasibility) must match F(L,n) — this
  // simultaneously validates the DP and the feasibility of the paper's
  // optimal plans.
  const auto [L, n] = GetParam();
  const double general = optimal_general_cost(slotted(n), static_cast<double>(L));
  EXPECT_DOUBLE_EQ(general, static_cast<double>(full_cost(L, n)))
      << "L=" << L << " n=" << n;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SlottedCrossCheck,
    ::testing::Combine(::testing::Values<Index>(1, 2, 3, 4, 5, 8, 13, 15, 21, 34),
                       ::testing::Values<Index>(1, 2, 5, 8, 13, 14, 16, 34, 55, 89)));

class RandomInstances : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomInstances, QuadraticMatchesCubic) {
  // The split-monotonicity optimization against the assumption-free
  // O(n^3) DP, across media lengths that make the L-tree constraint bite.
  const std::uint64_t seed = GetParam();
  const std::vector<double> arrivals = sim::poisson_arrivals(0.08, 8.0, seed);
  ASSERT_LE(arrivals.size(), 200u);
  for (const double L : {0.3, 1.0, 2.5}) {
    EXPECT_NEAR(optimal_general_cost(arrivals, L),
                optimal_general_cost_cubic(arrivals, L), 1e-6)
        << "L=" << L << " seed=" << seed;
  }
}

TEST_P(RandomInstances, ForestAttainsCostAndIsFeasible) {
  const std::uint64_t seed = GetParam();
  const std::vector<double> arrivals = sim::poisson_arrivals(0.05, 6.0, seed);
  const GeneralOptimum opt = optimal_general_forest(arrivals, 1.0);
  EXPECT_NEAR(opt.forest.total_cost(), opt.cost, 1e-9);
  EXPECT_EQ(opt.forest.size(), static_cast<Index>(arrivals.size()));
  for (Index i = 0; i < opt.forest.size(); ++i) {
    EXPECT_LE(opt.forest.stream_duration(i), 1.0 + 1e-9) << i;  // L-tree
    const Index p = opt.forest.stream(i).parent;
    if (p != -1) {
      EXPECT_LT(opt.forest.stream(i).time, opt.forest.stream(p).time + 1.0) << i;
    }
  }
}

TEST_P(RandomInstances, NeverWorseThanDyadic) {
  // The off-line optimum lower-bounds every on-line algorithm.
  const std::uint64_t seed = GetParam();
  const std::vector<double> arrivals = sim::poisson_arrivals(0.05, 6.0, seed);
  DyadicMerger dyadic(1.0, {});
  for (const double t : arrivals) dyadic.arrive(t);
  const double opt = optimal_general_cost(arrivals, 1.0);
  EXPECT_LE(opt, dyadic.total_cost() + 1e-9);
  // The dyadic heuristic is competitive: within a small constant factor.
  EXPECT_LE(dyadic.total_cost(), opt * 1.6) << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomInstances,
                         ::testing::Values<std::uint64_t>(1, 2, 3, 5, 8, 13, 21, 42));

TEST(OptimalGeneral, MatchesBatchedSlotGrid) {
  // Arrivals on a delay grid with gaps (batched starts): still optimal vs
  // the cubic reference, and cheaper than serving each with a full stream.
  std::vector<double> starts;
  for (const double t : {0.1, 0.2, 0.3, 0.7, 0.8, 1.4, 1.5, 1.6, 1.7}) {
    starts.push_back(t);
  }
  const double opt = optimal_general_cost(starts, 1.0);
  EXPECT_NEAR(opt, optimal_general_cost_cubic(starts, 1.0), 1e-9);
  EXPECT_LT(opt, static_cast<double>(starts.size()) * 1.0);
}

TEST(OptimalGeneral, Validation) {
  EXPECT_THROW((void)optimal_general_cost({0.2, 0.1}, 1.0), std::invalid_argument);
  EXPECT_THROW((void)optimal_general_cost({0.1, 0.1}, 1.0), std::invalid_argument);
  EXPECT_THROW((void)optimal_general_cost({0.1}, 0.0), std::invalid_argument);
  std::vector<double> too_many(
      static_cast<std::size_t>(kMaxGeneralArrivals) + 1);
  for (std::size_t i = 0; i < too_many.size(); ++i) {
    too_many[i] = static_cast<double>(i);
  }
  EXPECT_THROW((void)optimal_general_cost(too_many, 10.0), std::invalid_argument);
}

}  // namespace
}  // namespace smerge::merging
