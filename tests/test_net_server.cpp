// NetServer end-to-end over loopback: wire-fed runs must be
// indistinguishable from trace-fed runs (the determinism acceptance for
// the network front end — snapshot digests identical at shard widths 1,
// 2 and 4, with and without connection churn), tickets must carry the
// construction-time slot arithmetic, the control plane (PING / STATS /
// FINISH) must round-trip, the HTTP debug surface must answer on the
// same port, and transport failures (double bind, garbage bytes,
// per-connection contract violations) must stay contained to their
// connection.
#include <sys/socket.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/client.h"
#include "net/event_loop.h"
#include "net/server.h"
#include "online/policy.h"
#include "server/server_core.h"
#include "server/wire.h"

namespace smerge::net {
namespace {

constexpr double kDelay = 0.01;

/// A small deterministic catalogue: object m gets arrivals at
/// m*1e-3 + k*7.3e-3 — dense enough that batches share slots, spread
/// enough that every object differs.
std::vector<std::vector<double>> make_traces(Index objects, int per_object) {
  std::vector<std::vector<double>> traces(static_cast<std::size_t>(objects));
  for (Index m = 0; m < objects; ++m) {
    for (int k = 0; k < per_object; ++k) {
      traces[static_cast<std::size_t>(m)].push_back(
          static_cast<double>(m) * 1e-3 + static_cast<double>(k) * 7.3e-3);
    }
  }
  return traces;
}

server::ServerCoreConfig core_config(Index objects, unsigned shards) {
  server::ServerCoreConfig config;
  config.objects = objects;
  config.delay = kDelay;
  config.horizon = 10.0;
  config.shards = shards;
  return config;
}

/// Serial trace-fed run — the reference every wire run must match.
std::uint64_t reference_digest(const std::vector<std::vector<double>>& traces,
                               server::Snapshot* out = nullptr) {
  BatchingPolicy policy;
  server::ServerCore core(core_config(static_cast<Index>(traces.size()), 2),
                          policy);
  for (std::size_t m = 0; m < traces.size(); ++m) {
    core.ingest_trace(static_cast<Index>(m), std::vector<double>(traces[m]));
  }
  core.finish();
  server::Snapshot snap = core.take_snapshot();
  const std::uint64_t digest = server::snapshot_digest(snap);
  if (out != nullptr) *out = std::move(snap);
  return digest;
}

bool snapshots_match(const server::Snapshot& a, const server::Snapshot& b) {
  return a.total_arrivals == b.total_arrivals &&
         a.total_streams == b.total_streams &&
         a.streams_served == b.streams_served &&
         a.peak_concurrency == b.peak_concurrency &&
         a.guarantee_violations == b.guarantee_violations &&
         a.wait.mean == b.wait.mean && a.wait.max == b.wait.max &&
         a.wait.p50 == b.wait.p50 && a.wait.p95 == b.wait.p95 &&
         a.wait.p99 == b.wait.p99 && a.per_object == b.per_object;
}

/// Sends `traces` over `clients` connections (objects round-robin, each
/// connection time-ordered), collects every ticket, FINISHes, and
/// returns the server's summary. `churn_every` > 0 reconnects each
/// client after that many admissions.
server::WireSummary drive_wire(NetServer& server,
                               const std::vector<std::vector<double>>& traces,
                               unsigned clients, std::uint64_t churn_every = 0,
                               std::vector<server::Ticket>* tickets = nullptr) {
  std::mutex tickets_mutex;
  auto worker = [&](unsigned who) {
    std::vector<std::pair<double, Index>> sends;
    for (std::size_t m = who; m < traces.size(); m += clients) {
      for (const double t : traces[m]) sends.emplace_back(t, static_cast<Index>(m));
    }
    std::stable_sort(sends.begin(), sends.end(),
                     [](const auto& a, const auto& b) { return a.first < b.first; });
    BlockingClient client;
    client.connect("127.0.0.1", server.port());
    std::uint64_t sent = 0, acked = 0;
    const auto on_ticket = [&](const TicketReply& reply) {
      if (tickets != nullptr) {
        const std::lock_guard<std::mutex> lock(tickets_mutex);
        tickets->push_back(reply.ticket);
      }
      (void)reply;
    };
    const auto collect = [&] {
      client.flush();
      while (acked < sent) acked += client.poll_tickets(on_ticket, true);
    };
    for (const auto& [time, object] : sends) {
      if (churn_every > 0 && sent > 0 && sent % churn_every == 0) {
        collect();
        client.close();
        client.connect("127.0.0.1", server.port());
      }
      (void)client.admit(object, time);
      ++sent;
    }
    collect();
    client.close();
  };
  {
    std::vector<std::thread> threads;
    for (unsigned c = 0; c < clients; ++c) threads.emplace_back(worker, c);
    for (auto& t : threads) t.join();
  }
  BlockingClient control;
  control.connect("127.0.0.1", server.port());
  const server::WireSummary summary = control.finish();
  control.close();
  EXPECT_TRUE(server.wait_finished(std::chrono::seconds(30)));
  return summary;
}

// The acceptance identity: wire-fed and trace-fed snapshots are
// byte-identical (same digest, same fields) at shard widths 1, 2 and 4.
TEST(NetServer, WireMatchesTraceAtShardWidths) {
  const auto traces = make_traces(24, 40);
  server::Snapshot reference;
  const std::uint64_t expected = reference_digest(traces, &reference);
  for (const unsigned shards : {1u, 2u, 4u}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    BatchingPolicy policy;
    NetServerConfig net;
    net.reactors = 2;
    net.drain_interval_us = 200;
    NetServer server(net, core_config(24, shards), policy);
    server.start();
    const server::WireSummary summary = drive_wire(server, traces, 2);
    EXPECT_TRUE(summary.ok);
    EXPECT_EQ(summary.digest, expected);
    EXPECT_TRUE(snapshots_match(server.snapshot(), reference));
    EXPECT_EQ(summary.total_arrivals, reference.total_arrivals);
    server.stop();
  }
}

// Connection churn (reconnect mid-stream) must not perturb results: an
// object's arrival order survives because it never leaves its client.
TEST(NetServer, ChurnPreservesIdentity) {
  const auto traces = make_traces(16, 30);
  const std::uint64_t expected = reference_digest(traces);
  BatchingPolicy policy;
  NetServerConfig net;
  net.drain_interval_us = 200;
  NetServer server(net, core_config(16, 2), policy);
  server.start();
  const server::WireSummary summary =
      drive_wire(server, traces, 3, /*churn_every=*/50);
  EXPECT_TRUE(summary.ok);
  EXPECT_EQ(summary.digest, expected);
  server.stop();
}

// Tickets carry the batching preview: playback at batch_start_of, wait
// derived from it, admitted always (the generic policy path rejects
// nothing at admission).
TEST(NetServer, TicketsCarryBatchArithmetic) {
  const auto traces = make_traces(8, 10);
  BatchingPolicy policy;
  NetServerConfig net;
  net.drain_interval_us = 200;
  NetServer server(net, core_config(8, 2), policy);
  server.start();
  std::vector<server::Ticket> tickets;
  const server::WireSummary summary =
      drive_wire(server, traces, 1, 0, &tickets);
  EXPECT_TRUE(summary.ok);
  ASSERT_EQ(tickets.size(), 8u * 10u);
  for (const server::Ticket& t : tickets) {
    EXPECT_TRUE(t.admitted);
    const double expected_start = batch_start_of(t.arrival, kDelay);
    EXPECT_EQ(t.playback_start, expected_start);
    EXPECT_EQ(t.wait, expected_start - t.arrival);
    EXPECT_EQ(t.guarantee_wait, expected_start - t.decision_time);
    EXPECT_LE(t.wait, kDelay + 1e-12);
    EXPECT_EQ(t.deferred_slots, 0);
    EXPECT_FALSE(t.degraded);
  }
  server.stop();
}

TEST(NetServer, PingAndStatsRoundTrip) {
  BatchingPolicy policy;
  NetServerConfig net;
  net.drain_interval_us = 200;
  NetServer server(net, core_config(4, 1), policy);
  server.start();
  BlockingClient client;
  client.connect("127.0.0.1", server.port());
  EXPECT_EQ(client.ping(0x5EED), 0x5EEDu);
  for (int k = 0; k < 10; ++k) {
    (void)client.admit(k % 4, 0.001 * k);
  }
  client.flush();
  // Collect every ticket first — ping()/stats() block on the shared
  // stream and would silently consume (and discard) ticket frames.
  std::size_t got = 0;
  while (got < 10) got += client.poll_tickets(nullptr, true);
  // A ticket certifies a completed drain covering its admit, so the
  // cached stats converge immediately; the retry absorbs the refresh
  // race between the drain counter and the stats cache.
  server::LiveStats live = client.stats();
  for (int tries = 0; live.arrivals < 10 && tries < 500; ++tries) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    live = client.stats();
  }
  EXPECT_EQ(live.arrivals, 10);
  EXPECT_EQ(live.admitted, 10);
  EXPECT_EQ(client.ping(77), 77u);
  client.close();
  server.stop();
}

/// Raw HTTP GET against the shared port; returns everything until the
/// server closes.
std::string http_get(std::uint16_t port, const std::string& request) {
  FdHandle fd = connect_tcp("127.0.0.1", port);
  std::size_t at = 0;
  while (at < request.size()) {
    const auto n = ::send(fd.get(), request.data() + at, request.size() - at,
                          MSG_NOSIGNAL);
    if (n < 0) throw_errno("send");
    at += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  while (true) {
    const auto n = ::recv(fd.get(), buf, sizeof buf, 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  return response;
}

TEST(NetServer, HttpDebugSurface) {
  BatchingPolicy policy;
  NetServerConfig net;
  net.drain_interval_us = 200;
  NetServer server(net, core_config(4, 2), policy);
  server.start();
  const std::string live =
      http_get(server.port(), "GET /live HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(live.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(live.find("Content-Type: application/json"), std::string::npos);
  EXPECT_NE(live.find("\"arrivals\""), std::string::npos);
  const std::string stats =
      http_get(server.port(), "GET /stats HTTP/1.1\r\n\r\n");
  EXPECT_NE(stats.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(stats.find("\"net\""), std::string::npos);
  EXPECT_NE(stats.find("\"accepted\""), std::string::npos);
  const std::string dispatch =
      http_get(server.port(), "GET /dispatch HTTP/1.1\r\n\r\n");
  EXPECT_NE(dispatch.find("\"policy\""), std::string::npos);
  const std::string missing =
      http_get(server.port(), "GET /nope HTTP/1.1\r\n\r\n");
  EXPECT_NE(missing.find("HTTP/1.1 404"), std::string::npos);
  const std::string post =
      http_get(server.port(), "POST /live HTTP/1.1\r\n\r\n");
  EXPECT_NE(post.find("HTTP/1.1 405"), std::string::npos);
  EXPECT_GE(server.counters().http_requests, 5u);
  server.stop();
}

TEST(NetServer, DoubleBindThrowsSystemError) {
  BatchingPolicy policy;
  NetServerConfig net;
  NetServer first(net, core_config(2, 1), policy);
  first.start();
  NetServerConfig clash;
  clash.port = first.port();
  NetServer second(clash, core_config(2, 1), policy);
  EXPECT_THROW(second.start(), std::system_error);
  first.stop();
}

// A garbage stream (bad magic after the binary sniff byte) kills only
// its own connection; the server keeps serving and finishing.
TEST(NetServer, ProtocolErrorIsContainedToItsConnection) {
  const auto traces = make_traces(6, 8);
  const std::uint64_t expected = reference_digest(traces);
  BatchingPolicy policy;
  NetServerConfig net;
  net.drain_interval_us = 200;
  NetServer server(net, core_config(6, 2), policy);
  server.start();

  // 'S' selects the binary protocol, then nonsense: ProtocolError.
  FdHandle bad = connect_tcp("127.0.0.1", server.port());
  const char junk[] = "SMNX garbage that is not a frame header....";
  ASSERT_GT(::send(bad.get(), junk, sizeof junk - 1, MSG_NOSIGNAL), 0);
  char buf[64];
  EXPECT_EQ(::recv(bad.get(), buf, sizeof buf, 0), 0)
      << "server must close the bad connection";
  bad.reset();

  const server::WireSummary summary = drive_wire(server, traces, 2);
  EXPECT_TRUE(summary.ok);
  EXPECT_EQ(summary.digest, expected);
  EXPECT_GE(server.counters().protocol_errors, 1u);
  server.stop();
}

// The per-connection contract: ADMIT times must be nondecreasing. A
// violation closes the connection before the bad post can poison the
// drain (which would fail the whole run).
TEST(NetServer, DecreasingAdmitTimeClosesConnection) {
  BatchingPolicy policy;
  NetServerConfig net;
  net.drain_interval_us = 200;
  NetServer server(net, core_config(4, 2), policy);
  server.start();
  FdHandle fd = connect_tcp("127.0.0.1", server.port());
  std::vector<std::uint8_t> out;
  append_admit(out, 1, 0, 1.0);
  append_admit(out, 2, 1, 0.5);  // goes backwards: contract violation
  ASSERT_GT(::send(fd.get(), out.data(), out.size(), MSG_NOSIGNAL), 0);
  char buf[256];
  // The server may first flush a ticket for the valid admit; the stream
  // must end in a close either way.
  while (true) {
    const auto n = ::recv(fd.get(), buf, sizeof buf, 0);
    if (n <= 0) {
      EXPECT_EQ(n, 0);
      break;
    }
  }
  fd.reset();
  EXPECT_GE(server.counters().protocol_errors, 1u);

  // The server survives and still finishes cleanly.
  BlockingClient control;
  control.connect("127.0.0.1", server.port());
  const server::WireSummary summary = control.finish();
  EXPECT_TRUE(summary.ok);
  control.close();
  server.stop();
}

// stop() without any client finishing must shut down cleanly (the
// destructor path) — including with connections still open.
TEST(NetServer, StopWithoutFinishIsClean) {
  BatchingPolicy policy;
  NetServerConfig net;
  NetServer server(net, core_config(4, 2), policy);
  server.start();
  BlockingClient client;
  client.connect("127.0.0.1", server.port());
  (void)client.admit(0, 0.25);
  client.flush();
  EXPECT_FALSE(server.finished());
  EXPECT_THROW((void)server.summary(), std::logic_error);
  server.stop();  // open connection + posted admit: still clean
}

TEST(NetServer, ConfigValidation) {
  BatchingPolicy policy;
  {
    NetServerConfig net;
    net.reactors = 0;
    EXPECT_THROW(NetServer(net, core_config(2, 1), policy),
                 std::invalid_argument);
  }
  {
    NetServerConfig net;
    net.drain_interval_us = 0;
    EXPECT_THROW(NetServer(net, core_config(2, 1), policy),
                 std::invalid_argument);
  }
  {
    NetServerConfig net;
    auto config = core_config(2, 1);
    config.enable_sessions = true;
    EXPECT_THROW(NetServer(net, config, policy), std::invalid_argument);
  }
}

}  // namespace
}  // namespace smerge::net
