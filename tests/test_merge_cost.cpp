// Tests for the optimal merge-cost functions (Section 3.1 / 3.4):
// the paper's in-text tables, closed form vs. recurrence, and the
// observations used inside the Theorem-3 proof.
#include "core/merge_cost.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace smerge {
namespace {

// Section 3.1, in-text table: M(n) for n = 1..16.
constexpr Cost kPaperMergeCosts[] = {0,  1,  3,  6,  9,  13, 17, 21,
                                     26, 31, 36, 41, 46, 52, 58, 64};

// Section 3.4, in-text table: Mw(n) for n = 1..16.
constexpr Cost kPaperReceiveAllCosts[] = {0,  1,  3,  5,  8,  11, 14, 17,
                                          21, 25, 29, 33, 37, 41, 45, 49};

TEST(MergeCost, PaperTableReceiveTwo) {
  for (Index n = 1; n <= 16; ++n) {
    EXPECT_EQ(merge_cost(n), kPaperMergeCosts[n - 1]) << "n=" << n;
  }
}

TEST(MergeCost, PaperTableReceiveAll) {
  for (Index n = 1; n <= 16; ++n) {
    EXPECT_EQ(merge_cost_receive_all(n), kPaperReceiveAllCosts[n - 1]) << "n=" << n;
  }
}

TEST(MergeCost, TrivialCases) {
  EXPECT_EQ(merge_cost(0), 0);
  EXPECT_EQ(merge_cost(1), 0);
  EXPECT_EQ(merge_cost_receive_all(0), 0);
  EXPECT_EQ(merge_cost_receive_all(1), 0);
}

TEST(MergeCost, RejectsOutOfRange) {
  EXPECT_THROW((void)merge_cost(-1), std::invalid_argument);
  EXPECT_THROW((void)merge_cost(kMaxHorizon + 1), std::invalid_argument);
  EXPECT_THROW((void)merge_cost_receive_all(-1), std::invalid_argument);
}

TEST(MergeCost, ModelDispatch) {
  EXPECT_EQ(merge_cost(10, Model::kReceiveTwo), merge_cost(10));
  EXPECT_EQ(merge_cost(10, Model::kReceiveAll), merge_cost_receive_all(10));
}

TEST(MergeCost, ClosedFormMatchesRecurrenceReceiveTwo) {
  // Eq. (6) == Eq. (5) over a dense range.
  const Index n_max = 2000;
  const std::vector<Cost> dp = merge_cost_table_dp(n_max, Model::kReceiveTwo);
  for (Index n = 0; n <= n_max; ++n) {
    ASSERT_EQ(merge_cost(n), dp[static_cast<std::size_t>(n)]) << "n=" << n;
  }
}

TEST(MergeCost, ClosedFormMatchesRecurrenceReceiveAll) {
  // Eq. (20) == Eq. (19) over a dense range.
  const Index n_max = 2000;
  const std::vector<Cost> dp = merge_cost_table_dp(n_max, Model::kReceiveAll);
  for (Index n = 0; n <= n_max; ++n) {
    ASSERT_EQ(merge_cost_receive_all(n), dp[static_cast<std::size_t>(n)]) << "n=" << n;
  }
}

TEST(MergeCost, FibonacciRedundancy) {
  // Section 3.1: for n = F_k the formula with k and with k-1 agree:
  // (k-1)n - F_{k+2} + 2 == (k-2)n - F_{k+1} + 2.
  for (int k = 3; k <= 40; ++k) {
    const Index n = fib::fibonacci(k);
    const Cost with_k = static_cast<Cost>(k - 1) * n - fib::fibonacci(k + 2) + 2;
    const Cost with_k_minus_1 = static_cast<Cost>(k - 2) * n - fib::fibonacci(k + 1) + 2;
    EXPECT_EQ(with_k, with_k_minus_1) << "k=" << k;
    EXPECT_EQ(merge_cost(n), with_k);
  }
}

TEST(MergeCost, MonotoneAndConvexIncrements) {
  // Observation 5: for F_j <= x < F_{j+1}, M(x+1) - M(x) = j - 1; hence
  // increments are non-decreasing in x (inequality (12)).
  Cost prev_step = 0;
  for (Index x = 1; x <= 5000; ++x) {
    const Cost step = merge_cost(x + 1) - merge_cost(x);
    const int j = fib::bracket_index(x);
    EXPECT_EQ(step, j - 1) << "x=" << x;
    EXPECT_GE(step, prev_step) << "x=" << x;
    prev_step = step;
  }
}

TEST(MergeCost, ExchangeInequality) {
  // Inequality (12): M(i+1) + M(j-1) <= M(i) + M(j) for 1 <= i < j.
  for (Index i = 1; i <= 120; ++i) {
    for (Index j = i + 1; j <= 121; ++j) {
      EXPECT_LE(merge_cost(i + 1) + merge_cost(j - 1), merge_cost(i) + merge_cost(j))
          << "i=" << i << " j=" << j;
    }
  }
}

TEST(LastMergeCost, DefinitionMatchesEquation7) {
  // H(n,h) = M(h) + M(n-h) + 2n - h - 2.
  EXPECT_EQ(last_merge_cost(8, 5), merge_cost(5) + merge_cost(3) + 2 * 8 - 5 - 2);
  EXPECT_EQ(last_merge_cost(2, 1), 1);
  EXPECT_THROW((void)last_merge_cost(2, 0), std::invalid_argument);
  EXPECT_THROW((void)last_merge_cost(2, 2), std::invalid_argument);
  EXPECT_THROW((void)last_merge_cost(1, 1), std::invalid_argument);
}

TEST(LastMergeCost, MinimizesToMergeCost) {
  // M(n) = min_h H(n,h) (Eq. 5).
  for (Index n = 2; n <= 300; ++n) {
    Cost best = last_merge_cost(n, 1);
    for (Index h = 2; h <= n - 1; ++h) best = std::min(best, last_merge_cost(n, h));
    EXPECT_EQ(best, merge_cost(n)) << "n=" << n;
  }
}

class MergeCostAsymptotics : public ::testing::TestWithParam<Index> {};

TEST_P(MergeCostAsymptotics, TheoremEightBounds) {
  // Theorem 8: n log_phi(n) - c n <= M(n) <= n log_phi(n) with
  // c = phi^2 + 1 (Eq. 9 / Eq. 10).
  const Index n = GetParam();
  const double nd = static_cast<double>(n);
  const double upper = nd * fib::log_phi(nd);
  const double c = fib::kGoldenRatio * fib::kGoldenRatio + 1.0;
  const double lower = upper - c * nd;
  const double m = static_cast<double>(merge_cost(n));
  EXPECT_LE(m, upper + 1e-6) << "n=" << n;
  EXPECT_GE(m, lower - 1e-6) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(GrowingHorizons, MergeCostAsymptotics,
                         ::testing::Values<Index>(2, 10, 100, 1000, 10'000, 100'000,
                                                  1'000'000, 10'000'000,
                                                  1'000'000'000, 1'000'000'000'000));

TEST(MergeCostReceiveAll, PowerOfTwoRedundancy) {
  // Eq. (20) at n = 2^k agrees under both band choices.
  for (int k = 1; k <= 40; ++k) {
    const Index n = Index{1} << k;
    const Cost with_k = static_cast<Cost>(k + 1) * n - (Cost{2} << k) + 1;
    const Cost with_k_minus_1 = static_cast<Cost>(k)*n - (Cost{1} << k) + 1;
    EXPECT_EQ(with_k, with_k_minus_1) << "k=" << k;
    EXPECT_EQ(merge_cost_receive_all(n), with_k);
  }
}

TEST(MergeCostReceiveAll, MidpointIsOptimalSplit) {
  // Section 3.4: h = floor(n/2) (and ceil) attain Eq. (19)'s minimum.
  for (Index n = 2; n <= 400; ++n) {
    Cost best = std::numeric_limits<Cost>::max();
    for (Index h = 1; h <= n - 1; ++h) {
      best = std::min(best, merge_cost_receive_all(h) + merge_cost_receive_all(n - h) +
                                n - 1);
    }
    const Cost at_floor = merge_cost_receive_all(n / 2) +
                          merge_cost_receive_all(n - n / 2) + n - 1;
    EXPECT_EQ(best, merge_cost_receive_all(n)) << "n=" << n;
    EXPECT_EQ(at_floor, best) << "n=" << n;
  }
}

TEST(MergeCostRatio, ApproachesLogPhiTwo) {
  // Theorem 19: lim M(n)/Mw(n) = log_phi(2) ~ 1.4404.
  const double target = fib::log_phi(2.0);
  const double r6 = static_cast<double>(merge_cost(1'000'000)) /
                    static_cast<double>(merge_cost_receive_all(1'000'000));
  const double r9 = static_cast<double>(merge_cost(1'000'000'000)) /
                    static_cast<double>(merge_cost_receive_all(1'000'000'000));
  EXPECT_NEAR(r6, target, 0.05);
  EXPECT_NEAR(r9, target, 0.02);
  // Convergence: the larger horizon is closer.
  EXPECT_LT(std::abs(r9 - target), std::abs(r6 - target));
}

}  // namespace
}  // namespace smerge
