// Crash consistency end to end: kill-point recovery fuzz over the
// PR-2 540-instance corpus (policy ingest/drain runs and slotted
// capacity-aware admit runs), torn-WAL and corrupted-checkpoint
// handling, ledger and plan state round-trips, and the deterministic
// fault-injection harness on a sessions-enabled flash-crowd engine run
// at shard widths 1, 2 and 4.
//
// The oracle everywhere: a run crashed at WAL record k and put through
// `server::recover` (checkpoint restore + WAL tail replay + re-feed of
// the regenerated remainder) finishes with a snapshot bit-identical to
// the uninterrupted run's — every counter, every exact percentile,
// every per-object outcome. Corruption never surfaces as UB: a flipped
// checkpoint byte or a torn WAL suffix is a structured SnapshotError /
// torn-tail report, and recovery falls back to the next artifact.
#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/plan_io.h"
#include "merging/optimal_general.h"
#include "online/policy.h"
#include "server/channel_ledger.h"
#include "server/checkpoint.h"
#include "server/server_core.h"
#include "sim/engine.h"
#include "sim/fault.h"
#include "util/snapshot.h"

namespace {

using namespace smerge;

// --- shared oracles ---------------------------------------------------------

void expect_same_wait(const util::DelayProfile& a, const util::DelayProfile& b,
                      const std::string& context) {
  EXPECT_EQ(a.mean, b.mean) << context;
  EXPECT_EQ(a.p50, b.p50) << context;
  EXPECT_EQ(a.p95, b.p95) << context;
  EXPECT_EQ(a.p99, b.p99) << context;
  EXPECT_EQ(a.max, b.max) << context;
}

void expect_same_snapshot(const server::Snapshot& a, const server::Snapshot& b,
                          const std::string& context) {
  EXPECT_EQ(a.total_arrivals, b.total_arrivals) << context;
  EXPECT_EQ(a.total_streams, b.total_streams) << context;
  EXPECT_EQ(a.streams_served, b.streams_served) << context;
  expect_same_wait(a.wait, b.wait, context);
  EXPECT_EQ(a.peak_concurrency, b.peak_concurrency) << context;
  EXPECT_EQ(a.guarantee_violations, b.guarantee_violations) << context;
  EXPECT_EQ(a.capacity_violations, b.capacity_violations) << context;
  EXPECT_EQ(a.rejected, b.rejected) << context;
  EXPECT_EQ(a.deferrals, b.deferrals) << context;
  EXPECT_EQ(a.degraded, b.degraded) << context;
  EXPECT_EQ(a.total_sessions, b.total_sessions) << context;
  EXPECT_EQ(a.session_pauses, b.session_pauses) << context;
  EXPECT_EQ(a.session_seeks, b.session_seeks) << context;
  EXPECT_EQ(a.session_abandons, b.session_abandons) << context;
  EXPECT_EQ(a.plan_truncations, b.plan_truncations) << context;
  EXPECT_EQ(a.plan_reroots, b.plan_reroots) << context;
  EXPECT_EQ(a.retracted_cost, b.retracted_cost) << context;
  EXPECT_EQ(a.extended_cost, b.extended_cost) << context;
  EXPECT_EQ(a.per_object, b.per_object) << context;
}

void expect_same_result(const sim::EngineResult& a, const sim::EngineResult& b,
                        const std::string& context) {
  EXPECT_EQ(a.total_arrivals, b.total_arrivals) << context;
  EXPECT_EQ(a.total_streams, b.total_streams) << context;
  EXPECT_EQ(a.streams_served, b.streams_served) << context;
  expect_same_wait(a.wait, b.wait, context);
  EXPECT_EQ(a.peak_concurrency, b.peak_concurrency) << context;
  EXPECT_EQ(a.guarantee_violations, b.guarantee_violations) << context;
  EXPECT_EQ(a.capacity_violations, b.capacity_violations) << context;
  EXPECT_EQ(a.total_sessions, b.total_sessions) << context;
  EXPECT_EQ(a.session_pauses, b.session_pauses) << context;
  EXPECT_EQ(a.session_seeks, b.session_seeks) << context;
  EXPECT_EQ(a.session_abandons, b.session_abandons) << context;
  EXPECT_EQ(a.plan_truncations, b.plan_truncations) << context;
  EXPECT_EQ(a.plan_reroots, b.plan_reroots) << context;
  EXPECT_EQ(a.retracted_cost, b.retracted_cost) << context;
  EXPECT_EQ(a.extended_cost, b.extended_cost) << context;
  EXPECT_EQ(a.per_object, b.per_object) << context;
}

// The PR-2 fuzz corpus generator (test_plan.cpp / test_session_repair.cpp):
// 180 trials x 3 media lengths = 540 instances of sorted unique arrival
// times on [0, 8).
std::vector<std::vector<double>> corpus_traces() {
  std::mt19937_64 rng(20260728);
  std::uniform_int_distribution<std::size_t> size_dist(0, 24);
  std::uniform_real_distribution<double> time_dist(0.0, 8.0);
  std::vector<std::vector<double>> traces;
  traces.reserve(180);
  for (int trial = 0; trial < 180; ++trial) {
    const std::size_t n = size_dist(rng);
    std::vector<double> t(n);
    for (double& x : t) x = time_dist(rng);
    std::sort(t.begin(), t.end());
    t.erase(std::unique(t.begin(), t.end()), t.end());
    traces.push_back(std::move(t));
  }
  return traces;
}

// Driver-blob codec shared by the recorded drivers below: the chunk (or
// global admit) cursor plus each object's trace cursor.
std::vector<std::uint8_t> encode_cursors(std::uint64_t head,
                                         const std::vector<std::uint64_t>& cs) {
  util::SnapshotWriter w;
  w.u64(head);
  w.u64(cs.size());
  for (const std::uint64_t c : cs) w.u64(c);
  const auto p = w.payload();
  return {p.begin(), p.end()};
}

std::vector<std::uint64_t> decode_cursors(std::span<const std::uint8_t> blob,
                                          std::size_t n) {
  std::vector<std::uint64_t> cs(n, 0);
  if (blob.empty()) return cs;
  util::SnapshotReader r(blob);
  (void)r.u64();
  const std::uint64_t count = r.u64();
  EXPECT_EQ(count, n);
  for (std::size_t i = 0; i < n; ++i) cs[i] = r.u64();
  r.expect_end();
  return cs;
}

// One uninterrupted policy-path run of a corpus instance, recorded: the
// WAL byte length after every record, every checkpoint with its WAL
// cursor, and the final snapshot. Kill points replay against these
// artifacts without re-running the driver.
struct RecordedRun {
  server::ServerCoreConfig config;
  std::vector<std::vector<double>> per_object;      // the split traces
  server::AdmissionWal wal;
  std::vector<std::size_t> bytes_at_record;         // wal size after record i
  std::vector<std::pair<std::vector<std::uint8_t>, std::uint64_t>> checkpoints;
  server::Snapshot uninterrupted;
};

RecordedRun record_policy_run(const std::vector<double>& times, double delay) {
  RecordedRun run;
  run.config.objects = 3;
  run.config.delay = delay;
  run.config.horizon = 8.0;
  run.per_object.resize(3);
  for (std::size_t i = 0; i < times.size(); ++i) {
    run.per_object[i % 3].push_back(times[i]);
  }

  GreedyMergePolicy policy(merging::DyadicParams{}, /*batched=*/true);
  server::ServerCore core(run.config, policy);
  std::vector<std::uint64_t> cursors(3, 0);
  const auto note_record = [&] {
    run.bytes_at_record.push_back(run.wal.bytes().size());
  };
  for (int chunk = 0; chunk < 4; ++chunk) {
    const double upper = chunk == 3 ? 1e300 : 2.0 * (chunk + 1);
    for (std::size_t m = 0; m < 3; ++m) {
      std::uint64_t end = cursors[m];
      while (end < run.per_object[m].size() &&
             run.per_object[m][static_cast<std::size_t>(end)] <= upper) {
        ++end;
      }
      if (end == cursors[m]) continue;
      const std::span<const double> batch{
          run.per_object[m].data() + cursors[m],
          static_cast<std::size_t>(end - cursors[m])};
      run.wal.log_ingest_trace(static_cast<Index>(m), batch);
      note_record();
      core.ingest_trace(static_cast<Index>(m), {batch.begin(), batch.end()});
      cursors[m] = end;
      if (m == 0 && chunk % 2 == 1) {
        // A checkpoint with pending, un-drained mailboxes — the
        // quiescent-point contract is between calls, not drains.
        run.checkpoints.emplace_back(
            core.checkpoint(run.wal.records(), encode_cursors(0, cursors)),
            run.wal.records());
      }
    }
    run.wal.log_drain();
    note_record();
    core.drain();
    run.checkpoints.emplace_back(
        core.checkpoint(run.wal.records(), encode_cursors(0, cursors)),
        run.wal.records());
  }
  core.finish();
  run.uninterrupted = core.take_snapshot();
  return run;
}

// Recovers a recorded run killed after `kill_record` WAL records (the
// durable WAL holding exactly that prefix plus `extra_tail` garbage
// bytes), finishes it, and checks the snapshot against the
// uninterrupted run. `shards` exercises restore across widths.
void recover_and_check(const RecordedRun& run, std::uint64_t kill_record,
                       unsigned shards,
                       std::span<const std::uint8_t> extra_tail,
                       const std::string& context) {
  std::vector<std::uint8_t> durable(
      run.wal.bytes().begin(),
      run.wal.bytes().begin() +
          static_cast<std::ptrdiff_t>(
              kill_record == 0
                  ? 16
                  : run.bytes_at_record[static_cast<std::size_t>(kill_record) -
                                        1]));
  durable.insert(durable.end(), extra_tail.begin(), extra_tail.end());

  std::vector<std::vector<std::uint8_t>> candidates;
  for (auto it = run.checkpoints.rbegin(); it != run.checkpoints.rend(); ++it) {
    if (it->second <= kill_record) candidates.push_back(it->first);
  }

  server::ServerCoreConfig config = run.config;
  config.shards = shards;
  GreedyMergePolicy policy(merging::DyadicParams{}, /*batched=*/true);
  server::RecoveredCore recovered =
      server::recover(config, &policy, candidates,
                      {durable.data(), durable.size()});
  EXPECT_EQ(recovered.report.wal_torn, !extra_tail.empty()) << context;
  EXPECT_EQ(recovered.report.used_checkpoint, !candidates.empty()) << context;

  std::vector<std::uint64_t> cursors =
      decode_cursors({recovered.driver_blob.data(),
                      recovered.driver_blob.size()},
                     3);
  for (const server::WalRecord& record : recovered.replayed) {
    if (record.type == server::WalRecordType::kIngestTrace) {
      cursors[static_cast<std::size_t>(record.object)] += record.times.size();
    }
  }
  for (std::size_t m = 0; m < 3; ++m) {
    if (cursors[m] >= run.per_object[m].size()) continue;
    recovered.core->ingest_trace(
        static_cast<Index>(m),
        {run.per_object[m].begin() + static_cast<std::ptrdiff_t>(cursors[m]),
         run.per_object[m].end()});
  }
  recovered.core->finish();
  server::Snapshot snapshot = recovered.core->take_snapshot();
  expect_same_snapshot(snapshot, run.uninterrupted, context);
}

}  // namespace

// --- kill-point fuzz over the corpus ----------------------------------------

TEST(Recovery, CorpusKillPointsPolicyPathBitIdentical) {
  const std::vector<std::vector<double>> traces = corpus_traces();
  std::mt19937_64 kills(0xdead5eedULL);
  const double delays[3] = {0.01, 0.1, 0.5};
  int kill_points = 0;
  for (std::size_t trial = 0; trial < traces.size(); trial += 9) {
    const RecordedRun run =
        record_policy_run(traces[trial], delays[(trial / 9) % 3]);
    const std::uint64_t records = run.wal.records();
    for (int k = 0; k < 3; ++k) {
      const std::uint64_t kill =
          records == 0 ? 0 : kills() % (records + 1);
      const unsigned shards = 1u << (kill_points % 3);  // 1, 2, 4
      recover_and_check(run, kill, shards, {},
                        "trial=" + std::to_string(trial) +
                            " kill=" + std::to_string(kill) +
                            " shards=" + std::to_string(shards));
      ++kill_points;
    }
  }
  EXPECT_GE(kill_points, 50);
}

TEST(Recovery, TornWalTailRecoversAtRecordBoundary) {
  const std::vector<std::vector<double>> traces = corpus_traces();
  // A torn suffix — half a record header, then noise — must be dropped
  // at the last complete record, landing on the same state as a clean
  // kill there.
  const std::uint8_t torn[] = {0x20, 0x00, 0x00, 0x00, 0xab, 0xcd, 0x11};
  for (const std::size_t trial : {4UL, 40UL, 112UL}) {
    const RecordedRun run = record_policy_run(traces[trial], 0.1);
    const std::uint64_t records = run.wal.records();
    if (records == 0) continue;
    for (const std::uint64_t kill : {records / 2, records}) {
      recover_and_check(run, kill, 2, torn,
                        "torn trial=" + std::to_string(trial) +
                            " kill=" + std::to_string(kill));
    }
  }
}

TEST(Recovery, CorruptedCheckpointDetectedAndFallsBack) {
  const std::vector<std::vector<double>> traces = corpus_traces();
  const RecordedRun run = record_policy_run(traces[7], 0.1);
  ASSERT_GE(run.checkpoints.size(), 2u);
  const auto& [newest_frame, newest_cursor] = run.checkpoints.back();
  const auto& [older_frame, older_cursor] = run.checkpoints.front();

  // Every flipped byte is a structured error on a fresh core, never UB.
  const std::size_t probes[] = {0,
                                1,
                                newest_frame.size() / 4,
                                newest_frame.size() / 2,
                                (3 * newest_frame.size()) / 4,
                                newest_frame.size() - 9,
                                newest_frame.size() - 1};
  for (const std::size_t at : probes) {
    std::vector<std::uint8_t> corrupt = newest_frame;
    corrupt[at] ^= 0x40;
    GreedyMergePolicy policy(merging::DyadicParams{}, /*batched=*/true);
    server::ServerCore core(run.config, policy);
    EXPECT_THROW((void)core.restore_state({corrupt.data(), corrupt.size()}),
                 util::SnapshotError)
        << "byte " << at;
  }

  // recover() skips the damaged candidate, restores the older one, and
  // still lands bit-identical after replaying the longer WAL tail.
  std::vector<std::uint8_t> corrupt = newest_frame;
  corrupt[corrupt.size() / 2] ^= 0x40;
  std::vector<std::uint8_t> durable = run.wal.bytes();
  GreedyMergePolicy policy(merging::DyadicParams{}, /*batched=*/true);
  server::RecoveredCore recovered = server::recover(
      run.config, &policy,
      std::vector<std::vector<std::uint8_t>>{corrupt, older_frame},
      {durable.data(), durable.size()});
  EXPECT_TRUE(recovered.report.used_checkpoint);
  EXPECT_EQ(recovered.report.checkpoint_index, 1u);
  ASSERT_EQ(recovered.report.rejected_checkpoints.size(), 1u);
  EXPECT_EQ(recovered.report.wal_records_replayed,
            run.wal.records() - older_cursor);
  (void)newest_cursor;
  recovered.core->finish();
  expect_same_snapshot(recovered.core->take_snapshot(), run.uninterrupted,
                       "fallback");
}

TEST(Recovery, SlottedAdmitKillPointsUnderCapacityBitIdentical) {
  const std::vector<std::vector<double>> traces = corpus_traces();
  std::mt19937_64 kills(0xad317ULL);
  for (std::size_t trial = 0; trial < traces.size(); trial += 18) {
    const std::vector<double>& times = traces[trial];
    server::ServerCoreConfig config;
    config.objects = 3;
    config.delay = 0.25;
    config.horizon = 8.0;
    config.serve = server::ServeMode::kSlottedBatching;
    config.channel_capacity = 2;
    config.admission = server::AdmissionMode::kDefer;

    // Uninterrupted run, recorded.
    server::AdmissionWal wal;
    std::vector<std::size_t> bytes_at_record;
    std::vector<std::pair<std::vector<std::uint8_t>, std::uint64_t>> ckpts;
    server::ServerCore core(config);
    for (std::size_t i = 0; i < times.size(); ++i) {
      const auto object = static_cast<Index>(i % 3);
      wal.log_admit(object, times[i]);
      bytes_at_record.push_back(wal.bytes().size());
      (void)core.admit(object, times[i]);
      if ((i + 1) % 8 == 0) {
        ckpts.emplace_back(core.checkpoint(wal.records(),
                                           encode_cursors(i + 1, {})),
                           wal.records());
      }
    }
    core.finish();
    const server::Snapshot uninterrupted = core.take_snapshot();

    for (int k = 0; k < 2; ++k) {
      const std::uint64_t records = wal.records();
      const std::uint64_t kill = records == 0 ? 0 : kills() % (records + 1);
      std::vector<std::uint8_t> durable(
          wal.bytes().begin(),
          wal.bytes().begin() +
              static_cast<std::ptrdiff_t>(
                  kill == 0 ? 16
                            : bytes_at_record[static_cast<std::size_t>(kill) -
                                              1]));
      std::vector<std::vector<std::uint8_t>> candidates;
      for (auto it = ckpts.rbegin(); it != ckpts.rend(); ++it) {
        if (it->second <= kill) candidates.push_back(it->first);
      }
      // Degrade-under-pressure is recovery's *intentional* divergence
      // from the uninterrupted run (defer flips to degrade when the
      // recovered clock finds the channels saturated); switch it off so
      // the bit-identity oracle applies, and test it separately below.
      server::RecoveredCore recovered = server::recover(
          config, nullptr, candidates, {durable.data(), durable.size()},
          {.degrade_under_pressure = false});
      std::uint64_t cursor = 0;
      if (!recovered.driver_blob.empty()) {
        util::SnapshotReader r(
            {recovered.driver_blob.data(), recovered.driver_blob.size()});
        cursor = r.u64();
      }
      for (const server::WalRecord& record : recovered.replayed) {
        if (record.type == server::WalRecordType::kAdmit) ++cursor;
      }
      for (std::size_t i = static_cast<std::size_t>(cursor); i < times.size();
           ++i) {
        (void)recovered.core->admit(static_cast<Index>(i % 3), times[i]);
      }
      recovered.core->finish();
      expect_same_snapshot(recovered.core->take_snapshot(), uninterrupted,
                           "slotted trial=" + std::to_string(trial) +
                               " kill=" + std::to_string(kill));
    }
  }
}

TEST(Recovery, RecoveryUnderCapacityPressureDegradesInsteadOfRefusing) {
  // A defer core killed with its one channel saturated: with the
  // default options, recovery flips admissions to the degrade path —
  // every remaining client is served (late batches count as guarantee
  // violations), nobody is refused after the restart.
  std::vector<double> times;
  for (int i = 0; i < 40; ++i) times.push_back(0.05 + 0.1 * i);
  server::ServerCoreConfig config;
  config.objects = 2;
  config.delay = 0.5;
  config.horizon = 8.0;
  config.serve = server::ServeMode::kSlottedBatching;
  config.channel_capacity = 1;
  config.admission = server::AdmissionMode::kDefer;
  config.max_defer_slots = 1;

  // Uninterrupted run, with a checkpoint and the rejection count
  // recorded after every admission.
  server::AdmissionWal wal;
  server::ServerCore core(config);
  std::vector<std::size_t> bytes_at_record;
  std::vector<std::vector<std::uint8_t>> frame_after;
  std::vector<Index> rejected_after_admit;
  Index rejects = 0;
  for (std::size_t i = 0; i < times.size(); ++i) {
    const auto object = static_cast<Index>(i % 2);
    wal.log_admit(object, times[i]);
    bytes_at_record.push_back(wal.bytes().size());
    if (!core.admit(object, times[i]).admitted) ++rejects;
    rejected_after_admit.push_back(rejects);
    frame_after.push_back(core.checkpoint(wal.records(), {}));
  }
  core.finish();
  ASSERT_GT(core.take_snapshot().rejected, 0);  // genuinely overloaded

  // Find a kill point where the recovered clock sees the channel busy.
  bool found = false;
  for (std::size_t kill = 4; kill < times.size(); ++kill) {
    const std::vector<std::uint8_t> durable(
        wal.bytes().begin(),
        wal.bytes().begin() +
            static_cast<std::ptrdiff_t>(bytes_at_record[kill - 1]));
    server::RecoveredCore recovered = server::recover(
        config, nullptr,
        std::vector<std::vector<std::uint8_t>>{frame_after[kill - 1]},
        {durable.data(), durable.size()});
    ASSERT_TRUE(recovered.report.used_checkpoint);
    if (!recovered.report.degraded_admissions) continue;
    found = true;

    Index rejected_after = 0;
    Index degraded_after = 0;
    for (std::size_t i = kill; i < times.size(); ++i) {
      const server::Ticket ticket =
          recovered.core->admit(static_cast<Index>(i % 2), times[i]);
      if (!ticket.admitted) ++rejected_after;
      if (ticket.degraded) ++degraded_after;
    }
    EXPECT_EQ(rejected_after, 0) << "kill=" << kill;
    EXPECT_GT(degraded_after, 0) << "kill=" << kill;
    recovered.core->finish();
    const server::Snapshot snapshot = recovered.core->take_snapshot();
    EXPECT_EQ(snapshot.total_arrivals, static_cast<Index>(times.size()));
    EXPECT_EQ(snapshot.rejected, rejected_after_admit[kill - 1]);
    EXPECT_GT(snapshot.degraded, 0);
    break;
  }
  EXPECT_TRUE(found) << "no kill point landed under capacity pressure";
}

// --- the fault-injection harness on a sessions-enabled flash crowd ----------

namespace {

sim::EngineConfig flash_crowd_config(unsigned threads) {
  sim::EngineConfig config;
  config.workload.process = sim::ArrivalProcess::kFlashCrowd;
  config.workload.objects = 10;
  config.workload.zipf_exponent = 1.0;
  config.workload.mean_gap = 0.02;
  config.workload.horizon = 6.0;
  config.workload.seed = 20260807;
  config.workload.burst_start = 1.0;
  config.workload.burst_duration = 1.0;
  config.workload.burst_multiplier = 10.0;
  config.delay = 0.05;
  config.threads = threads;
  config.churn.abandon_rate = 0.2;
  config.churn.pause_rate = 0.2;
  config.churn.seek_rate = 0.2;
  return config;
}

}  // namespace

TEST(Recovery, FaultHarnessFlashCrowdSessionsBitIdentical) {
  GreedyMergePolicy baseline_policy(merging::DyadicParams{}, /*batched=*/true);
  const sim::EngineResult baseline =
      sim::run_engine(flash_crowd_config(1), baseline_policy);
  ASSERT_GT(baseline.total_sessions, 0);
  ASSERT_GT(baseline.session_abandons + baseline.session_seeks, 0);

  // Total WAL records of the chunked drive (a fault-free harness pass).
  GreedyMergePolicy dry_policy(merging::DyadicParams{}, /*batched=*/true);
  const sim::FaultRunResult dry =
      sim::run_engine_with_faults(flash_crowd_config(1), dry_policy, {});
  EXPECT_FALSE(dry.report.crashed);
  expect_same_result(dry.result, baseline, "fault-free harness pass");
  const std::uint64_t total_records = dry.report.crash_record;
  ASSERT_GT(total_records, 8u);

  std::mt19937_64 rng(0xc4a5ULL);
  for (const unsigned threads : {1u, 2u, 4u}) {
    for (int k = 0; k < 4; ++k) {
      sim::FaultPlan plan;
      plan.crash_at_record =
          static_cast<std::int64_t>(1 + rng() % total_records);
      plan.wal_torn_bytes = static_cast<std::size_t>(rng() % 48);
      GreedyMergePolicy policy(merging::DyadicParams{}, /*batched=*/true);
      const sim::FaultRunResult faulted =
          sim::run_engine_with_faults(flash_crowd_config(threads), policy, plan);
      const std::string context =
          "threads=" + std::to_string(threads) +
          " crash@" + std::to_string(plan.crash_at_record) +
          " torn=" + std::to_string(plan.wal_torn_bytes);
      EXPECT_TRUE(faulted.report.crashed) << context;
      expect_same_result(faulted.result, baseline, context);
    }
  }
}

TEST(Recovery, FaultHarnessCorruptedCheckpointFallsBack) {
  GreedyMergePolicy baseline_policy(merging::DyadicParams{}, /*batched=*/true);
  const sim::EngineResult baseline =
      sim::run_engine(flash_crowd_config(1), baseline_policy);

  sim::FaultPlan plan;
  plan.ingest_chunks = 8;
  plan.checkpoint_every_drains = 1;
  plan.keep_checkpoints = 3;
  plan.crash_at_record = 60;
  plan.corrupt_checkpoint_byte = 97;
  GreedyMergePolicy policy(merging::DyadicParams{}, /*batched=*/true);
  const sim::FaultRunResult faulted =
      sim::run_engine_with_faults(flash_crowd_config(2), policy, plan);
  ASSERT_TRUE(faulted.report.crashed);
  ASSERT_GE(faulted.report.checkpoints_written, 2u);
  EXPECT_TRUE(faulted.report.recovery.used_checkpoint);
  EXPECT_EQ(faulted.report.recovery.checkpoint_index, 1u);
  EXPECT_EQ(faulted.report.recovery.rejected_checkpoints.size(), 1u);
  expect_same_result(faulted.result, baseline, "corrupt fallback");
}

TEST(Recovery, FaultHarnessMailboxDropsAreBoundedAndReported) {
  sim::FaultPlan plan;
  plan.mailbox_drop_rate = 0.4;
  plan.max_delivery_retries = 2;
  plan.fault_seed = 99;
  GreedyMergePolicy policy(merging::DyadicParams{}, /*batched=*/true);
  sim::EngineConfig config = flash_crowd_config(1);
  config.churn = {};  // plain arrivals: lost batches shrink totals
  const sim::FaultRunResult faulted =
      sim::run_engine_with_faults(config, policy, plan);
  EXPECT_FALSE(faulted.report.crashed);
  EXPECT_GT(faulted.report.dropped_deliveries, 0u);
  // Deterministic: the same plan reproduces the same drops and result.
  GreedyMergePolicy again_policy(merging::DyadicParams{}, /*batched=*/true);
  const sim::FaultRunResult again =
      sim::run_engine_with_faults(config, again_policy, plan);
  EXPECT_EQ(faulted.report.dropped_deliveries, again.report.dropped_deliveries);
  EXPECT_EQ(faulted.report.lost_batches, again.report.lost_batches);
  expect_same_result(faulted.result, again.result, "drop determinism");
}

// --- WAL parsing ------------------------------------------------------------

TEST(Recovery, WalPrefixesParseToCompleteRecordsOnly) {
  server::AdmissionWal wal;
  wal.log_ingest_trace(0, std::vector<double>{0.25, 0.5, 1.0});
  wal.log_admit(1, 0.75);
  wal.log_drain();
  const std::vector<std::uint8_t>& bytes = wal.bytes();

  std::vector<std::size_t> boundaries;  // byte size after each record
  {
    server::AdmissionWal replay;
    boundaries.push_back(replay.bytes().size());  // header only
    replay.log_ingest_trace(0, std::vector<double>{0.25, 0.5, 1.0});
    boundaries.push_back(replay.bytes().size());
    replay.log_admit(1, 0.75);
    boundaries.push_back(replay.bytes().size());
    replay.log_drain();
    boundaries.push_back(replay.bytes().size());
  }

  EXPECT_TRUE(server::read_wal({}).records.empty());
  for (std::size_t cut = 1; cut < boundaries.front(); ++cut) {
    EXPECT_THROW((void)server::read_wal({bytes.data(), cut}),
                 util::SnapshotError)
        << "cut=" << cut;
  }
  for (std::size_t cut = boundaries.front(); cut <= bytes.size(); ++cut) {
    const server::WalReadResult result = server::read_wal({bytes.data(), cut});
    std::size_t complete = 0;
    while (complete + 1 < boundaries.size() && boundaries[complete + 1] <= cut) {
      ++complete;
    }
    EXPECT_EQ(result.records.size(), complete) << "cut=" << cut;
    EXPECT_EQ(result.torn, cut != boundaries[complete]) << "cut=" << cut;
    EXPECT_EQ(result.dropped_bytes, cut - boundaries[complete]) << "cut=" << cut;
  }

  // A checksummed record body flipped in place is damage, not data.
  std::vector<std::uint8_t> flipped = bytes;
  flipped[boundaries[0] + 13] ^= 0x01;  // inside the first record body
  const server::WalReadResult damaged =
      server::read_wal({flipped.data(), flipped.size()});
  EXPECT_TRUE(damaged.torn);
  EXPECT_TRUE(damaged.records.empty());

  // Round-trip fidelity of the parsed records themselves.
  const server::WalReadResult parsed =
      server::read_wal({bytes.data(), bytes.size()});
  ASSERT_EQ(parsed.records.size(), 3u);
  EXPECT_EQ(parsed.records[0].type, server::WalRecordType::kIngestTrace);
  EXPECT_EQ(parsed.records[0].object, 0);
  EXPECT_EQ(parsed.records[0].times, (std::vector<double>{0.25, 0.5, 1.0}));
  EXPECT_EQ(parsed.records[1].type, server::WalRecordType::kAdmit);
  EXPECT_EQ(parsed.records[1].object, 1);
  EXPECT_EQ(parsed.records[1].times, (std::vector<double>{0.75}));
  EXPECT_EQ(parsed.records[2].type, server::WalRecordType::kDrain);
}

// --- ledger round-trip at every kill point ----------------------------------

namespace {

// A scripted mix of genuine intervals and move_end compensation pairs
// (retractions and extensions), deliberately out of time order so dirty
// buckets exist mid-stream.
struct LedgerOp {
  enum Kind { kInterval, kMoveEnd } kind = kInterval;
  double a = 0.0, b = 0.0;
  Index object = 0;
};

std::vector<LedgerOp> ledger_script() {
  return {
      {LedgerOp::kInterval, 0.1, 1.1, 0}, {LedgerOp::kInterval, 0.2, 1.2, 1},
      {LedgerOp::kInterval, 0.15, 1.15, 2}, {LedgerOp::kMoveEnd, 1.2, 0.6, 1},
      {LedgerOp::kInterval, 0.05, 1.05, 3}, {LedgerOp::kMoveEnd, 1.1, 1.6, 0},
      {LedgerOp::kInterval, 2.0, 3.0, 4}, {LedgerOp::kMoveEnd, 1.05, 0.5, 3},
      {LedgerOp::kInterval, 1.9, 2.9, 5}, {LedgerOp::kMoveEnd, 3.0, 2.2, 4},
      {LedgerOp::kInterval, 0.3, 1.3, 6}, {LedgerOp::kMoveEnd, 1.6, 1.0, 0},
  };
}

void apply_op(server::ChannelLedger& ledger, const LedgerOp& op) {
  if (op.kind == LedgerOp::kInterval) {
    ledger.add_interval(op.a, op.b, op.object);
  } else {
    ledger.move_end(op.a, op.b, op.object);
  }
}

void expect_same_answers(server::ChannelLedger& a, server::ChannelLedger& b,
                         const std::string& context) {
  EXPECT_EQ(a.peak(), b.peak()) << context;
  EXPECT_EQ(a.capacity_violations(2), b.capacity_violations(2)) << context;
  for (const double t : {0.0, 0.12, 0.55, 1.0, 1.45, 2.05, 2.5, 3.5}) {
    EXPECT_EQ(a.occupancy_at(t), b.occupancy_at(t)) << context << " t=" << t;
  }
  EXPECT_EQ(a.max_over(0.0, 4.0), b.max_over(0.0, 4.0)) << context;
  EXPECT_EQ(a.max_over(0.5, 1.5), b.max_over(0.5, 1.5)) << context;
}

}  // namespace

TEST(Recovery, LedgerMoveEndRoundTripAtEveryKillPoint) {
  const std::vector<LedgerOp> script = ledger_script();
  for (std::size_t kill = 0; kill <= script.size(); ++kill) {
    const std::string context = "kill=" + std::to_string(kill);
    // Original: killed at `kill`, saved, restored, then continued.
    server::ChannelLedger original(4.0, 0.5);
    for (std::size_t i = 0; i < kill; ++i) apply_op(original, script[i]);
    util::SnapshotWriter w;
    original.save(w);
    const std::vector<std::uint8_t> frame = w.frame("test-ledger");

    server::ChannelLedger restored(4.0, 0.5);
    util::SnapshotReader r = util::SnapshotReader::open(
        {frame.data(), frame.size()}, "test-ledger");
    restored.restore(r);
    r.expect_end();

    for (std::size_t i = kill; i < script.size(); ++i) {
      apply_op(original, script[i]);
      apply_op(restored, script[i]);
    }
    expect_same_answers(original, restored, context + " restored");

    // Fresh-rebuild recount: replaying the whole script from scratch
    // agrees with the killed-and-restored ledger on every answer.
    server::ChannelLedger fresh(4.0, 0.5);
    for (const LedgerOp& op : script) apply_op(fresh, op);
    expect_same_answers(restored, fresh, context + " fresh");
  }

  // Geometry is part of the contract: a differently-bucketed ledger
  // refuses the frame instead of misreading it.
  server::ChannelLedger saved(4.0, 0.5);
  saved.add_interval(0.1, 1.0, 0);
  util::SnapshotWriter w;
  saved.save(w);
  const std::vector<std::uint8_t> frame = w.frame("test-ledger");
  server::ChannelLedger narrow(4.0, 0.25);
  util::SnapshotReader r =
      util::SnapshotReader::open({frame.data(), frame.size()}, "test-ledger");
  EXPECT_THROW(narrow.restore(r), util::SnapshotError);
}

// --- plan codec round-trip ---------------------------------------------------

TEST(Recovery, PlanCodecRoundTripsBitIdentically) {
  const std::vector<std::vector<double>> traces = corpus_traces();
  for (const std::size_t trial : {3UL, 57UL, 120UL}) {
    for (const double L : {1e-6, 0.75, 100.0}) {
      const plan::MergePlan original =
          merging::optimal_general_forest(traces[trial], L).forest.to_plan();
      util::SnapshotWriter w;
      plan::save_plan(w, original);
      const std::vector<std::uint8_t> frame = w.frame("test-plan");
      util::SnapshotReader r = util::SnapshotReader::open(
          {frame.data(), frame.size()}, "test-plan");
      const plan::MergePlan loaded = plan::load_plan(r);
      r.expect_end();

      const std::string context =
          "trial=" + std::to_string(trial) + " L=" + std::to_string(L);
      EXPECT_EQ(loaded.size(), original.size()) << context;
      EXPECT_EQ(loaded.media_length(), original.media_length()) << context;
      EXPECT_EQ(loaded.model(), original.model()) << context;
      EXPECT_EQ(loaded.num_roots(), original.num_roots()) << context;
      EXPECT_EQ(loaded.total_cost(), original.total_cost()) << context;
      for (Index i = 0; i < original.size(); ++i) {
        const auto s = static_cast<std::size_t>(i);
        EXPECT_EQ(loaded.start()[s], original.start()[s]) << context;
        EXPECT_EQ(loaded.delay()[s], original.delay()[s]) << context;
        EXPECT_EQ(loaded.length()[s], original.length()[s]) << context;
        EXPECT_EQ(loaded.merge_time()[s], original.merge_time()[s]) << context;
        EXPECT_EQ(loaded.parent()[s], original.parent()[s]) << context;
      }
    }
  }
}

// --- fault-plan parsing ------------------------------------------------------

TEST(Recovery, ParseFaultPlanAcceptsSpecsAndRejectsGarbage) {
  const sim::FaultPlan defaults = sim::parse_fault_plan("none");
  EXPECT_EQ(defaults.crash_at_record, -1);

  const sim::FaultPlan plan =
      sim::parse_fault_plan("crash@120,torn=7,corrupt=3,drop=0.25,retries=5,"
                            "chunks=16,ckpt=4,keep=3,seed=99");
  EXPECT_EQ(plan.crash_at_record, 120);
  EXPECT_EQ(plan.wal_torn_bytes, 7u);
  EXPECT_EQ(plan.corrupt_checkpoint_byte, 3);
  EXPECT_EQ(plan.mailbox_drop_rate, 0.25);
  EXPECT_EQ(plan.max_delivery_retries, 5);
  EXPECT_EQ(plan.ingest_chunks, 16);
  EXPECT_EQ(plan.checkpoint_every_drains, 4);
  EXPECT_EQ(plan.keep_checkpoints, 3);
  EXPECT_EQ(plan.fault_seed, 99u);

  EXPECT_THROW((void)sim::parse_fault_plan("crash@"), std::invalid_argument);
  EXPECT_THROW((void)sim::parse_fault_plan("crash@12,"), std::invalid_argument);
  EXPECT_THROW((void)sim::parse_fault_plan("explode"), std::invalid_argument);
  EXPECT_THROW((void)sim::parse_fault_plan("torn=x"), std::invalid_argument);
  EXPECT_THROW((void)sim::parse_fault_plan("drop=1.5"), std::invalid_argument);
  EXPECT_THROW((void)sim::parse_fault_plan("chunks=0"), std::invalid_argument);
  EXPECT_THROW((void)sim::parse_fault_plan("wat=1"), std::invalid_argument);
}

// --- restore preconditions ---------------------------------------------------

TEST(Recovery, RestoreRefusesUsedCoresAndForeignConfigs) {
  server::ServerCoreConfig config;
  config.objects = 2;
  config.delay = 0.1;
  config.horizon = 4.0;
  GreedyMergePolicy policy(merging::DyadicParams{}, /*batched=*/true);
  server::ServerCore core(config, policy);
  core.ingest(0, 0.5);
  core.drain();
  const std::vector<std::uint8_t> frame = core.checkpoint(3);

  // A core that already served traffic refuses to be overwritten.
  GreedyMergePolicy used_policy(merging::DyadicParams{}, /*batched=*/true);
  server::ServerCore used(config, used_policy);
  used.ingest(0, 0.25);
  EXPECT_THROW((void)used.restore_state({frame.data(), frame.size()}),
               std::logic_error);

  // A different catalogue is a structured mismatch, not a misread.
  server::ServerCoreConfig other = config;
  other.objects = 3;
  GreedyMergePolicy other_policy(merging::DyadicParams{}, /*batched=*/true);
  server::ServerCore foreign(other, other_policy);
  EXPECT_THROW((void)foreign.restore_state({frame.data(), frame.size()}),
               util::SnapshotError);

  // The happy path round-trips the cursor and continues identically.
  GreedyMergePolicy fresh_policy(merging::DyadicParams{}, /*batched=*/true);
  server::ServerCore fresh(config, fresh_policy);
  const server::RestoreInfo info =
      fresh.restore_state({frame.data(), frame.size()});
  EXPECT_EQ(info.wal_records, 3u);
  core.ingest(1, 1.5);
  fresh.ingest(1, 1.5);
  core.finish();
  fresh.finish();
  expect_same_snapshot(fresh.take_snapshot(), core.take_snapshot(),
                       "happy path");
}
