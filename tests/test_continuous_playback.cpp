// Continuous-time playback verification: dyadic forests, batched starts
// and the general off-line optimum all genuinely serve every client.
#include "merging/continuous_playback.h"

#include <gtest/gtest.h>

#include "merging/batching.h"
#include "merging/dyadic.h"
#include "merging/optimal_general.h"
#include "sim/arrivals.h"

namespace smerge::merging {
namespace {

TEST(ContinuousPlayback, MirrorsSlottedFigureThree) {
  // The Fig.-3 instance scaled into continuous time: client H's program
  // must be the continuous version of [1,2]<-H [3,9]<-F [10,15]<-A.
  GeneralMergeForest f(15.0);
  f.add_stream(0.0, -1);  // A
  f.add_stream(5.0, 0);   // F
  f.add_stream(6.0, 1);   // G
  f.add_stream(7.0, 1);   // H
  const auto program = continuous_program(f, 3);
  ASSERT_EQ(program.size(), 3u);
  EXPECT_EQ(program[0].stream, 3);
  EXPECT_DOUBLE_EQ(program[0].from, 0.0);
  EXPECT_DOUBLE_EQ(program[0].to, 2.0);
  EXPECT_EQ(program[1].stream, 1);
  EXPECT_DOUBLE_EQ(program[1].from, 2.0);
  EXPECT_DOUBLE_EQ(program[1].to, 9.0);
  EXPECT_EQ(program[2].stream, 0);
  EXPECT_DOUBLE_EQ(program[2].from, 9.0);
  EXPECT_DOUBLE_EQ(program[2].to, 15.0);
  const ContinuousForestReport report = verify_continuous_forest(f);
  EXPECT_TRUE(report.ok) << report.first_error;
  EXPECT_EQ(report.max_concurrent, 2);
  EXPECT_DOUBLE_EQ(report.peak_buffer, 7.0);  // Lemma 15: min(7, 15-7)
}

TEST(ContinuousPlayback, RootOnlyClient) {
  GeneralMergeForest f(1.0);
  f.add_stream(0.25, -1);
  const ContinuousClientReport r = verify_continuous_client(f, 0);
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.max_concurrent, 1);
  EXPECT_DOUBLE_EQ(r.peak_buffer, 0.0);
}

class DyadicPlayback : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DyadicPlayback, EveryClientPlaysBack) {
  // The headline property: dyadic schedules (alpha = phi and 2, both
  // betas) serve every client within the receive-two constraints.
  const std::uint64_t seed = GetParam();
  const auto arrivals = sim::poisson_arrivals(0.03, 25.0, seed);
  for (const DyadicParams params :
       {DyadicParams{}, DyadicParams{2.0, 0.5}, DyadicParams{2.0, 0.25}}) {
    DyadicMerger merger(1.0, params);
    for (const double t : arrivals) merger.arrive(t);
    const ContinuousForestReport report = verify_continuous_forest(merger.forest());
    EXPECT_TRUE(report.ok) << "seed=" << seed << ": " << report.first_error;
    EXPECT_LE(report.max_concurrent, 2);
    // Lemma 15 in continuous form: no client buffers more than L/2.
    EXPECT_LE(report.peak_buffer, 0.5 + 1e-9);
  }
}

TEST_P(DyadicPlayback, BatchedStartsPlayBack) {
  const std::uint64_t seed = GetParam();
  const auto arrivals = sim::poisson_arrivals(0.004, 15.0, seed);
  const auto starts = batch_arrivals(arrivals, 0.01);
  DyadicMerger merger(1.0, {});
  for (const double t : starts) merger.arrive(t);
  const ContinuousForestReport report = verify_continuous_forest(merger.forest());
  EXPECT_TRUE(report.ok) << report.first_error;
}

TEST_P(DyadicPlayback, GeneralOptimumPlaysBack) {
  // The [6] optimal forests are feasible L-trees; the continuous verifier
  // must accept them too.
  const std::uint64_t seed = GetParam();
  const auto arrivals = sim::poisson_arrivals(0.05, 5.0, seed);
  const GeneralOptimum opt = optimal_general_forest(arrivals, 1.0);
  const ContinuousForestReport report = verify_continuous_forest(opt.forest);
  EXPECT_TRUE(report.ok) << "seed=" << seed << ": " << report.first_error;
  EXPECT_LE(report.max_concurrent, 2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DyadicPlayback,
                         ::testing::Values<std::uint64_t>(3, 9, 27, 81, 243));

TEST(ContinuousPlayback, DetectsOverTruncatedStream) {
  // Hand-build a forest whose middle stream is too short for the last
  // client: parent chain 0 <- 0.2 <- 0.35 where stream 0.2 would need to
  // run to position 2*0.35-0.2-0 = 0.3 but we cut its subtree early by
  // pointing the last client directly at an unrelated stream... instead,
  // simply craft the program against a *different* forest: drop the last
  // client so stream 1's Lemma-1 duration shrinks below what the three-
  // client program requires.
  GeneralMergeForest full(1.0);
  full.add_stream(0.0, -1);
  full.add_stream(0.2, 0);
  full.add_stream(0.35, 1);
  GeneralMergeForest clipped(1.0);
  clipped.add_stream(0.0, -1);
  clipped.add_stream(0.2, 0);
  clipped.add_stream(0.35, 0);  // rewired: stream 1 stays a leaf
  // Client 2's program in `full` needs stream 1 up to position 0.5;
  // in `clipped` stream 1 only runs 0.2. Verify against clipped durations
  // by transplanting the program source ids (same indices, same times).
  const auto program = continuous_program(full, 2);
  ASSERT_EQ(program.size(), 3u);
  EXPECT_GT(program[1].to, clipped.stream_duration(1) + 1e-9);
}

TEST(ContinuousPlayback, SparseForestsAreTrivialUnicast) {
  GeneralMergeForest f(1.0);
  f.add_stream(0.0, -1);
  f.add_stream(2.0, -1);
  f.add_stream(4.0, -1);
  const ContinuousForestReport report = verify_continuous_forest(f);
  EXPECT_TRUE(report.ok);
  EXPECT_EQ(report.max_concurrent, 1);
  EXPECT_DOUBLE_EQ(report.peak_buffer, 0.0);
}

}  // namespace
}  // namespace smerge::merging
