// Integration tests for the experiment runners: the qualitative claims of
// Figs. 1, 11 and 12 at reduced scale.
#include "sim/experiment.h"

#include <gtest/gtest.h>

#include "online/delay_guaranteed.h"
#include "sim/arrivals.h"

namespace smerge::sim {
namespace {

TEST(Experiment, DelayGuaranteedMatchesPolicyCost) {
  const double delay = 0.01;  // L = 100 slots
  const double horizon = 10.0;
  const BandwidthResult r = run_delay_guaranteed(delay, horizon);
  const DelayGuaranteedOnline dg(100);
  EXPECT_DOUBLE_EQ(r.streams_served,
                   static_cast<double>(dg.cost(1000)) / 100.0);
  EXPECT_EQ(r.streams_started, 1000);
  EXPECT_GT(r.peak_concurrency, 0);
}

TEST(Experiment, OfflineOptimalMatchesFullCost) {
  const BandwidthResult r = run_offline_optimal(0.05, 5.0);  // L=20, n=100
  EXPECT_DOUBLE_EQ(r.streams_served, static_cast<double>(full_cost(20, 100)) / 20.0);
  EXPECT_EQ(r.full_streams, optimal_stream_count(20, 100).streams);
}

TEST(Experiment, OnlineCloseToOfflineOnLongHorizons) {
  // Fig. 1 / Fig. 9: the on-line cost approaches the off-line optimum.
  const double delay = 0.02;
  const BandwidthResult off = run_offline_optimal(delay, 100.0);
  const BandwidthResult on = run_delay_guaranteed(delay, 100.0);
  EXPECT_GE(on.streams_served, off.streams_served - 1e-9);
  EXPECT_LT(on.streams_served / off.streams_served, 1.02);
}

TEST(Experiment, BandwidthFallsAsDelayGrows) {
  // Fig. 1: more delay, less bandwidth — for both off-line and on-line.
  double prev_off = 1e100;
  double prev_on = 1e100;
  for (const double delay : {0.005, 0.01, 0.02, 0.05, 0.10}) {
    const double off = run_offline_optimal(delay, 50.0).streams_served;
    const double on = run_delay_guaranteed(delay, 50.0).streams_served;
    EXPECT_LT(off, prev_off) << "delay=" << delay;
    EXPECT_LT(on, prev_on) << "delay=" << delay;
    prev_off = off;
    prev_on = on;
  }
}

TEST(Experiment, DelayGuaranteedIsArrivalIndependent) {
  // The DG cost is a function of (delay, horizon) only; the Fig.-11 "flat
  // line" is literal.
  const BandwidthResult r = run_delay_guaranteed(0.01, 20.0);
  EXPECT_GT(r.streams_served, 0.0);
  // (No arrivals parameter exists; this test documents the API contract.)
}

TEST(Experiment, Figure11CrossoverConstantRate) {
  // Fig. 11 (delay = 1% of the media): for inter-arrival gaps below the
  // delay the Delay Guaranteed cost is at most the immediate dyadic cost;
  // for gaps well above the delay DG is the worst of the three.
  const double delay = 0.01;
  const double horizon = 50.0;
  const double dg = run_delay_guaranteed(delay, horizon).streams_served;
  const merging::DyadicParams beta_const{fib::kGoldenRatio,
                                         dyadic_beta_for_constant_rate(delay)};

  {  // dense: gap = delay/5
    const auto arrivals = constant_arrivals(delay / 5.0, horizon);
    const double immediate = run_dyadic(arrivals, beta_const).streams_served;
    EXPECT_LT(dg, immediate);
  }
  {  // sparse: gap = 5 * delay
    const auto arrivals = constant_arrivals(5.0 * delay, horizon);
    const double immediate = run_dyadic(arrivals, beta_const).streams_served;
    const double batched =
        run_batched_dyadic(arrivals, delay, beta_const).streams_served;
    EXPECT_GT(dg, immediate);
    EXPECT_GT(dg, batched);
  }
}

TEST(Experiment, Figure11BatchingHelpsOnlyWhenDense) {
  // Batched vs immediate dyadic: batching saves bandwidth when several
  // clients share an interval (gap < delay) and converges to immediate
  // service when arrivals are sparse.
  const double delay = 0.01;
  const double horizon = 50.0;
  {
    const auto arrivals = constant_arrivals(delay / 4.0, horizon);
    const double immediate = run_dyadic(arrivals).streams_served;
    const double batched = run_batched_dyadic(arrivals, delay).streams_served;
    EXPECT_LT(batched, immediate);
  }
  {
    const auto arrivals = constant_arrivals(4.0 * delay, horizon);
    const double immediate = run_dyadic(arrivals).streams_served;
    const double batched = run_batched_dyadic(arrivals, delay).streams_served;
    EXPECT_NEAR(batched, immediate, immediate * 0.10);
  }
}

TEST(Experiment, Figure12PoissonTrends) {
  // Fig. 12: same qualitative picture under Poisson arrivals (beta = 0.5
  // per Section 4.2).
  const double delay = 0.01;
  const double horizon = 50.0;
  const double dg = run_delay_guaranteed(delay, horizon).streams_served;
  {
    const auto arrivals = poisson_arrivals(delay / 5.0, horizon, 11);
    const double immediate = run_dyadic(arrivals).streams_served;
    EXPECT_LT(dg, immediate);
  }
  {
    const auto arrivals = poisson_arrivals(5.0 * delay, horizon, 11);
    const double immediate = run_dyadic(arrivals).streams_served;
    EXPECT_GT(dg, immediate);
  }
}

TEST(Experiment, UnicastAndBatchingBaselines) {
  const auto arrivals = constant_arrivals(0.02, 10.0);
  const BandwidthResult uni = run_unicast(arrivals);
  const BandwidthResult bat = run_batching(arrivals, 0.1);
  EXPECT_DOUBLE_EQ(uni.streams_served, static_cast<double>(arrivals.size()));
  EXPECT_LT(bat.streams_served, uni.streams_served);
  EXPECT_GT(uni.peak_concurrency, bat.peak_concurrency / 2);
}

TEST(Experiment, DyadicBetaForConstantRate) {
  // Section 4.2: beta = F_h / L, clamped at the merge-feasibility ceiling
  // 1/2 (beta > 1/2 would let window-edge merges outlive the root).
  EXPECT_DOUBLE_EQ(dyadic_beta_for_constant_rate(0.01), 0.5);        // 55/100
  EXPECT_DOUBLE_EQ(dyadic_beta_for_constant_rate(1.0 / 21.0), 0.5);  // 13/21
  // L=19 => h=6 => F_6/L = 8/19 ~ 0.42: below the ceiling, kept as is.
  EXPECT_DOUBLE_EQ(dyadic_beta_for_constant_rate(1.0 / 19.0), 8.0 / 19.0);
}

TEST(Experiment, EdgeCasesAndValidation) {
  // Zero horizon: nothing transmitted.
  const BandwidthResult zero = run_delay_guaranteed(0.01, 0.0);
  EXPECT_DOUBLE_EQ(zero.streams_served, 0.0);
  EXPECT_EQ(zero.streams_started, 0);
  const BandwidthResult zero_off = run_offline_optimal(0.01, 0.0);
  EXPECT_DOUBLE_EQ(zero_off.streams_served, 0.0);
  // Delay outside (0, 1] rejected.
  EXPECT_THROW((void)run_delay_guaranteed(0.0, 10.0), std::invalid_argument);
  EXPECT_THROW((void)run_delay_guaranteed(1.5, 10.0), std::invalid_argument);
  EXPECT_THROW((void)run_offline_optimal(-0.1, 10.0), std::invalid_argument);
  EXPECT_THROW((void)run_delay_guaranteed(0.01, -1.0), std::invalid_argument);
  // Empty arrival traces are fine for the trace-driven policies.
  EXPECT_DOUBLE_EQ(run_dyadic({}).streams_served, 0.0);
  EXPECT_DOUBLE_EQ(run_batched_dyadic({}, 0.01).streams_served, 0.0);
  EXPECT_DOUBLE_EQ(run_unicast({}).streams_served, 0.0);
  EXPECT_DOUBLE_EQ(run_batching({}, 0.01).streams_served, 0.0);
}

TEST(Experiment, DelayOfWholeMediaIsPureBatching) {
  // delay = 100% of the media => L = 1 slot: the DG policy degenerates to
  // one full stream per slot, i.e. classic batching (Theorem 12, L=1).
  const BandwidthResult r = run_delay_guaranteed(1.0, 25.0);
  EXPECT_DOUBLE_EQ(r.streams_served, 25.0);
  EXPECT_EQ(r.full_streams, 25);
}

}  // namespace
}  // namespace smerge::sim
