// End-to-end playback verification: every client of every constructed
// forest plays the media uninterrupted within the model's constraints.
// This is the paper's implicit correctness claim, checked segment by
// segment (see src/schedule/playback.h for the invariant list).
#include "schedule/playback.h"

#include <gtest/gtest.h>

#include "core/buffer.h"
#include "core/full_cost.h"

namespace smerge {
namespace {

TEST(Playback, FigureThreeInstanceVerifies) {
  const MergeForest forest = optimal_merge_forest(15, 8);
  const ForestReport report = verify_forest(forest);
  EXPECT_TRUE(report.ok) << report.first_error;
  EXPECT_EQ(report.clients, 8);
  EXPECT_EQ(report.max_concurrent, 2);
  EXPECT_EQ(report.peak_buffer, 7);  // client 7: min(7, 15-7)
  EXPECT_EQ(report.unused_units, 0);
}

TEST(Playback, ClientHDetails) {
  const MergeForest forest = optimal_merge_forest(15, 8);
  const StreamSchedule schedule(forest);
  const ReceivingProgram program(forest, 7);
  const ClientReport report = verify_client(schedule, program, Model::kReceiveTwo);
  EXPECT_TRUE(report.ok) << report.error;
  EXPECT_EQ(report.max_concurrent, 2);
  EXPECT_EQ(report.peak_buffer, buffer_requirement(7, 15));
  EXPECT_EQ(report.completion_slot, 15);  // last root segment lands at t=15
}

class PlaybackSweep : public ::testing::TestWithParam<std::tuple<Index, Index>> {};

TEST_P(PlaybackSweep, ReceiveTwoForestsVerify) {
  const auto [L, n] = GetParam();
  const ForestReport report = verify_forest(optimal_merge_forest(L, n));
  EXPECT_TRUE(report.ok) << "L=" << L << " n=" << n << ": " << report.first_error;
  EXPECT_LE(report.max_concurrent, 2);
  EXPECT_LE(report.peak_buffer, L / 2);
  EXPECT_EQ(report.unused_units, 0);
}

TEST_P(PlaybackSweep, ReceiveAllForestsVerify) {
  const auto [L, n] = GetParam();
  const ForestReport report =
      verify_forest(optimal_merge_forest(L, n, Model::kReceiveAll), Model::kReceiveAll);
  EXPECT_TRUE(report.ok) << "L=" << L << " n=" << n << ": " << report.first_error;
  EXPECT_EQ(report.unused_units, 0);
}

TEST_P(PlaybackSweep, BoundedBufferForestsVerify) {
  const auto [L, n] = GetParam();
  const Index B = std::max<Index>(1, L / 3);
  const ForestReport report = verify_forest(optimal_merge_forest_bounded(L, n, B));
  EXPECT_TRUE(report.ok) << "L=" << L << " n=" << n << ": " << report.first_error;
  EXPECT_LE(report.peak_buffer, B);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PlaybackSweep,
    ::testing::Combine(::testing::Values<Index>(1, 2, 3, 5, 8, 15, 21, 40, 100),
                       ::testing::Values<Index>(1, 2, 7, 8, 16, 55, 150)));

TEST(Playback, StarTreeDeepClients) {
  // Star over 8 arrivals with L=8 exercises the Lemma-15 case-2 path
  // (d > L/2) for several clients at once.
  std::vector<MergeTree> trees;
  trees.push_back(MergeTree::star(8));
  const MergeForest forest(8, std::move(trees));
  const ForestReport report = verify_forest(forest);
  EXPECT_TRUE(report.ok) << report.first_error;
  EXPECT_EQ(report.peak_buffer, 4);  // min(d, 8-d) maxes at d=4
}

TEST(Playback, ReceiveAllConcurrencyGrowsWithDepth) {
  // In the receive-all model a depth-k client listens to k+1 streams.
  const MergeForest forest = optimal_merge_forest(64, 64, Model::kReceiveAll);
  const ForestReport report = verify_forest(forest, Model::kReceiveAll);
  EXPECT_TRUE(report.ok) << report.first_error;
  EXPECT_GT(report.max_concurrent, 2);  // beyond receive-two's budget
}

TEST(Playback, FailureInjectionTruncatedStream) {
  // Client H's program (from the optimal tree, where stream 5 carries
  // segments up to 9) must fail against a schedule in which arrival 7
  // merges directly with the root, so stream 5 is truncated at 7.
  const MergeForest forest = optimal_merge_forest(15, 8);
  std::vector<MergeTree> trees;
  trees.push_back(MergeTree(std::vector<Index>{-1, 0, 0, 0, 3, 0, 5, 0}));
  const MergeForest tampered(15, std::move(trees));
  const StreamSchedule short_schedule(tampered);
  ASSERT_EQ(short_schedule.stream(5).length, 7);  // vs 9 in the optimum
  const ReceivingProgram program(forest, 7);
  const ClientReport report =
      verify_client(short_schedule, program, Model::kReceiveTwo);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.error.find("truncated"), std::string::npos) << report.error;
}

TEST(Playback, FailureInjectionWrongModel) {
  // A receive-all program generally listens to more than two streams at
  // once; verifying it under receive-two rules must fail for deep clients.
  const MergeForest forest = optimal_merge_forest(64, 64, Model::kReceiveAll);
  const StreamSchedule schedule(forest, Model::kReceiveAll);
  bool any_violation = false;
  for (Index a = 0; a < forest.size(); ++a) {
    const ReceivingProgram program(forest, a, Model::kReceiveAll);
    const ClientReport r = verify_client(schedule, program, Model::kReceiveTwo);
    if (!r.ok && r.error.find("streams at once") != std::string::npos) {
      any_violation = true;
    }
  }
  EXPECT_TRUE(any_violation);
}

}  // namespace
}  // namespace smerge
