// Compilation/integration test for the umbrella header: a miniature
// end-to-end pipeline written against streammerge.h alone, touching one
// entry point from every subsystem.
#include "streammerge.h"

#include <gtest/gtest.h>

namespace {

TEST(Umbrella, EndToEndPipeline) {
  using namespace smerge;

  // Off-line: plan, schedule, assign channels, verify.
  const MergeForest forest = optimal_merge_forest(15, 8);
  const StreamSchedule schedule(forest);
  const ChannelAssignment channels = assign_channels(schedule);
  EXPECT_EQ(channels.channels_used, schedule.peak_bandwidth());
  EXPECT_TRUE(verify_forest(forest).ok);
  EXPECT_EQ(max_buffer_requirement(forest), 7);
  EXPECT_NE(concrete_diagram(forest).find("A (t=0):"), std::string::npos);

  // On-line: server issues table programs (stable indices) with
  // bounded waits.
  DelayGuaranteedServer server(15, 1.0);
  const ClientTicket ticket = server.admit(6.25);
  EXPECT_LE(ticket.wait, 1.0);
  EXPECT_EQ(ticket.program, 6);
  EXPECT_FALSE(server.programs().lookup(ticket.program).blocks.empty());

  // General arrivals: dyadic vs the off-line optimum, continuously
  // verified.
  const auto arrivals = sim::poisson_arrivals(0.05, 3.0, 7);
  merging::DyadicMerger dyadic(1.0, {});
  for (const double t : arrivals) dyadic.arrive(t);
  const double opt = merging::optimal_general_cost(arrivals, 1.0);
  EXPECT_LE(opt, dyadic.total_cost() + 1e-9);
  EXPECT_TRUE(merging::verify_continuous_forest(dyadic.forest()).ok);

  // Simulation + utilities.
  const sim::BandwidthResult dg = sim::run_delay_guaranteed(0.05, 10.0);
  EXPECT_GT(dg.streams_served, 0.0);
  util::RunningStats stats;
  stats.add(dg.streams_served);
  EXPECT_EQ(stats.count(), 1);
  util::TextTable table({"metric", "value"});
  table.add_row("streams", dg.streams_served);
  EXPECT_NE(table.to_csv().find("streams"), std::string::npos);
  EXPECT_NEAR(fib::log_phi(fib::kGoldenRatio), 1.0, 1e-12);
}

}  // namespace
