// Tests for the live serving runtime: the incremental channel ledger
// against the legacy end-of-run reduction, mid-run queries (running P²
// percentiles vs exact sorted quantiles), capacity-aware admission
// semantics, and the engine/DG-server adapters' equivalence.
#include "server/server_core.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "online/server.h"
#include "server/channel_ledger.h"
#include "sim/engine.h"
#include "util/rng.h"
#include "util/stats.h"

namespace smerge::server {
namespace {

// --- ChannelLedger vs brute force -------------------------------------------

struct Interval {
  double start;
  double end;
  Index object;
};

/// Brute-force occupancy at `t` over half-open intervals.
Index brute_occupancy(const std::vector<Interval>& intervals, double t) {
  Index depth = 0;
  for (const Interval& iv : intervals) {
    if (iv.start <= t && t < iv.end) ++depth;
  }
  return depth;
}

std::vector<Interval> random_intervals(std::uint64_t seed, int count,
                                       double span) {
  util::SplitMix64 rng(seed);
  std::vector<Interval> intervals;
  intervals.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const double start = rng.next_double() * span;
    const double length = 0.01 + rng.next_double() * span * 0.3;
    intervals.push_back({start, start + length, static_cast<Index>(i % 7)});
  }
  return intervals;
}

TEST(ChannelLedger, PeakMatchesLegacyEventSweep) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    const auto intervals = random_intervals(seed, 200, 10.0);
    ChannelLedger ledger(10.0, 0.25);
    std::vector<ChannelEvent> events;
    for (const Interval& iv : intervals) {
      ledger.add_interval(iv.start, iv.end, iv.object);
      events.push_back({iv.start, +1});
      events.push_back({iv.end, -1});
    }
    // peak_overlap is the legacy engine's per-object sweep — the ledger
    // must agree exactly, not approximately.
    EXPECT_EQ(ledger.peak(), peak_overlap(events)) << "seed=" << seed;
  }
}

TEST(ChannelLedger, OccupancyMatchesBruteForce) {
  const auto intervals = random_intervals(17, 150, 8.0);
  ChannelLedger ledger(8.0, 0.2);
  for (const Interval& iv : intervals) {
    ledger.add_interval(iv.start, iv.end, iv.object);
  }
  util::SplitMix64 rng(99);
  for (int i = 0; i < 300; ++i) {
    const double t = rng.next_double() * 12.0;  // probes beyond the span too
    EXPECT_EQ(ledger.occupancy_at(t), brute_occupancy(intervals, t))
        << "t=" << t;
  }
  // Interval endpoints are the interesting probes: starts count, ends
  // free the channel at that instant.
  for (const Interval& iv : intervals) {
    EXPECT_EQ(ledger.occupancy_at(iv.start), brute_occupancy(intervals, iv.start));
    EXPECT_EQ(ledger.occupancy_at(iv.end), brute_occupancy(intervals, iv.end));
  }
}

TEST(ChannelLedger, WindowedMaxMatchesBruteForce) {
  const auto intervals = random_intervals(23, 120, 6.0);
  ChannelLedger ledger(6.0, 0.3);
  std::vector<double> edges;
  for (const Interval& iv : intervals) {
    ledger.add_interval(iv.start, iv.end, iv.object);
    edges.push_back(iv.start);
    edges.push_back(iv.end);
  }
  const auto brute_max = [&](double a, double b) {
    // Max over the window = max of the occupancy at `a` and at every
    // event edge inside [a, b).
    Index best = brute_occupancy(intervals, a);
    for (const double e : edges) {
      if (e > a && e < b) best = std::max(best, brute_occupancy(intervals, e));
    }
    return best;
  };
  util::SplitMix64 rng(7);
  for (int i = 0; i < 200; ++i) {
    double a = rng.next_double() * 7.0;
    double b = rng.next_double() * 7.0;
    if (a > b) std::swap(a, b);
    EXPECT_EQ(ledger.max_over(a, b), brute_max(a, b)) << "[" << a << "," << b << ")";
  }
}

TEST(ChannelLedger, IncrementalQueriesStayExactWhileGrowing) {
  // Interleave inserts and queries: laziness must never serve a stale
  // answer.
  const auto intervals = random_intervals(31, 100, 5.0);
  ChannelLedger ledger(5.0, 0.25);
  std::vector<Interval> so_far;
  for (const Interval& iv : intervals) {
    ledger.add_interval(iv.start, iv.end, iv.object);
    so_far.push_back(iv);
    EXPECT_EQ(ledger.occupancy_at(iv.start), brute_occupancy(so_far, iv.start));
    std::vector<ChannelEvent> events;
    for (const Interval& j : so_far) {
      events.push_back({j.start, +1});
      events.push_back({j.end, -1});
    }
    EXPECT_EQ(ledger.peak(), peak_overlap(events));
  }
}

TEST(ChannelLedger, CapacityViolationsMatchLegacyCounting) {
  const auto intervals = random_intervals(41, 180, 9.0);
  ChannelLedger ledger(9.0, 0.5);
  std::vector<ChannelEvent> events;
  for (const Interval& iv : intervals) {
    ledger.add_interval(iv.start, iv.end, iv.object);
    events.push_back({iv.start, +1});
    events.push_back({iv.end, -1});
  }
  // The legacy engine's reduction: sorted sweep counting saturated
  // starts.
  std::sort(events.begin(), events.end(), [](const ChannelEvent& a,
                                             const ChannelEvent& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.delta < b.delta;
  });
  for (const Index capacity : {1, 3, 8, 20}) {
    Index depth = 0;
    Index expected = 0;
    for (const ChannelEvent& e : events) {
      depth += e.delta;
      if (e.delta > 0 && depth > capacity) ++expected;
    }
    EXPECT_EQ(ledger.capacity_violations(capacity), expected)
        << "capacity=" << capacity;
  }
  EXPECT_EQ(ledger.capacity_violations(0), 0);
}

TEST(ChannelLedger, Validation) {
  EXPECT_THROW(ChannelLedger(0.0, 0.1), std::invalid_argument);
  EXPECT_THROW(ChannelLedger(1.0, 0.0), std::invalid_argument);
  ChannelLedger ledger(1.0, 0.1);
  EXPECT_THROW(ledger.add_interval(-1.0, 0.5, 0), std::invalid_argument);
  EXPECT_THROW(ledger.add_interval(0.5, 0.2, 0), std::invalid_argument);
  EXPECT_THROW((void)ledger.max_over(0.7, 0.2), std::invalid_argument);
  EXPECT_EQ(ledger.peak(), 0);
  EXPECT_EQ(ledger.occupancy_at(0.5), 0);
}

// --- P2 running percentiles -------------------------------------------------

TEST(P2Quantile, TracksExactQuantilesOnUniformStream) {
  util::SplitMix64 rng(5);
  util::P2Quantile p50(0.50);
  util::P2Quantile p95(0.95);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.next_double();
    samples.push_back(x);
    p50.add(x);
    p95.add(x);
  }
  std::sort(samples.begin(), samples.end());
  EXPECT_NEAR(p50.estimate(), util::quantile_sorted(samples, 0.50), 0.02);
  EXPECT_NEAR(p95.estimate(), util::quantile_sorted(samples, 0.95), 0.02);
  EXPECT_EQ(p50.count(), 20000);
}

TEST(P2Quantile, SmallStreamsAreExact) {
  util::P2Quantile p50(0.50);
  EXPECT_EQ(p50.estimate(), 0.0);
  p50.add(3.0);
  EXPECT_EQ(p50.estimate(), 3.0);
  p50.add(1.0);
  p50.add(2.0);
  EXPECT_EQ(p50.estimate(), 2.0);  // nearest-rank median of {1,2,3}
  EXPECT_THROW(util::P2Quantile(0.0), std::invalid_argument);
  EXPECT_THROW(util::P2Quantile(1.0), std::invalid_argument);
}

// --- ServerCore: mid-run queries vs the end-of-run reduction ----------------

sim::EngineConfig engine_config() {
  sim::EngineConfig config;
  config.workload.process = sim::ArrivalProcess::kPoisson;
  config.workload.objects = 16;
  config.workload.zipf_exponent = 1.0;
  config.workload.mean_gap = 0.002;
  config.workload.horizon = 5.0;
  config.workload.seed = 17;
  config.delay = 0.02;
  // The CI TSan leg re-runs the suite pinned (SMERGE_PIN_WORKERS=1);
  // the snapshots compared below must be identical either way.
  config.pin_workers = std::getenv("SMERGE_PIN_WORKERS") != nullptr;
  return config;
}

TEST(ServerCore, ChunkedIngestMatchesOneShotEngineRun) {
  // Drive the core in four drained chunks with live queries in between;
  // the final snapshot must equal the one-shot engine run bit for bit.
  const sim::EngineConfig config = engine_config();
  GreedyMergePolicy reference_policy(merging::DyadicParams{}, /*batched=*/true);
  const sim::EngineResult reference = run_engine(config, reference_policy);

  GreedyMergePolicy policy(merging::DyadicParams{}, /*batched=*/true);
  auto core_cfg = sim::core_config(config);
  core_cfg.collect_stream_intervals = true;
  ServerCore core(core_cfg, policy);
  const std::vector<double> weights =
      sim::zipf_weights(config.workload.objects, config.workload.zipf_exponent);
  std::vector<std::vector<double>> traces(16);
  for (Index m = 0; m < 16; ++m) {
    traces[static_cast<std::size_t>(m)] = sim::generate_arrivals(
        config.workload, m, weights[static_cast<std::size_t>(m)]);
  }
  Index last_peak = 0;
  for (int chunk = 0; chunk < 4; ++chunk) {
    const double until = config.workload.horizon * (chunk + 1) / 4.0;
    for (Index m = 0; m < 16; ++m) {
      auto& trace = traces[static_cast<std::size_t>(m)];
      std::vector<double> slice;
      while (!trace.empty() && trace.front() <= until) {
        slice.push_back(trace.front());
        trace.erase(trace.begin());
      }
      core.ingest_trace(m, std::move(slice));
    }
    core.drain();
    // Live queries between drains: the peak is monotone and the P²
    // percentiles track the exact-on-demand hybrid.
    const LiveStats live = core.live_stats();
    EXPECT_GE(live.peak_channels, last_peak);
    last_peak = live.peak_channels;
    const util::DelayProfile exact = core.wait_profile(/*exact=*/true);
    if (live.admitted > 100) {
      EXPECT_NEAR(live.wait.p50, exact.p50, 0.25 * config.delay);
      EXPECT_NEAR(live.wait.p99, exact.p99, 0.25 * config.delay);
      EXPECT_EQ(live.wait.max, exact.max);
      EXPECT_EQ(live.wait.mean, exact.mean);
    }
  }
  core.finish();
  const sim::EngineResult chunked = sim::to_engine_result(core.take_snapshot());

  EXPECT_EQ(chunked.total_arrivals, reference.total_arrivals);
  EXPECT_EQ(chunked.total_streams, reference.total_streams);
  EXPECT_EQ(chunked.streams_served, reference.streams_served);
  EXPECT_EQ(chunked.peak_concurrency, reference.peak_concurrency);
  EXPECT_EQ(chunked.wait.mean, reference.wait.mean);
  EXPECT_EQ(chunked.wait.p50, reference.wait.p50);
  EXPECT_EQ(chunked.wait.p95, reference.wait.p95);
  EXPECT_EQ(chunked.wait.p99, reference.wait.p99);
  EXPECT_EQ(chunked.wait.max, reference.wait.max);
  EXPECT_EQ(chunked.per_object, reference.per_object);
  // The mid-run ledger agrees with the legacy interval-based greedy
  // assignment: exactly the measured peak.
  const ChannelAssignment plan = assign_channels(chunked.stream_intervals);
  EXPECT_EQ(plan.channels_used, chunked.peak_concurrency);
}

TEST(ServerCore, FlashCrowdCapacityAccountingMatchesLegacy) {
  // Observe mode on an over-capacity flash crowd: the incremental
  // ledger's saturated-start count must equal the legacy sweep over the
  // collected intervals.
  sim::EngineConfig config = engine_config();
  config.workload.process = sim::ArrivalProcess::kFlashCrowd;
  config.workload.burst_start = 1.0;
  config.workload.burst_duration = 1.0;
  config.workload.burst_multiplier = 10.0;
  config.channel_capacity = 4;
  config.collect_stream_intervals = true;
  BatchingPolicy policy;
  const sim::EngineResult result = run_engine(config, policy);
  ASSERT_GT(result.peak_concurrency, 4);
  ASSERT_GT(result.capacity_violations, 0);

  std::vector<ChannelEvent> events;
  for (const StreamInterval& iv : result.stream_intervals) {
    events.push_back({iv.start, +1});
    events.push_back({iv.end, -1});
  }
  std::sort(events.begin(), events.end(), [](const ChannelEvent& a,
                                             const ChannelEvent& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.delta < b.delta;
  });
  Index depth = 0;
  Index expected = 0;
  for (const ChannelEvent& e : events) {
    depth += e.delta;
    if (e.delta > 0 && depth > config.channel_capacity) ++expected;
  }
  EXPECT_EQ(result.capacity_violations, expected);
}

TEST(ServerCore, SerialAdmitMatchesMailboxPath) {
  // The same arrivals through admit() one by one and through
  // ingest/drain must land on the identical snapshot.
  const sim::EngineConfig config = engine_config();
  const std::vector<double> weights =
      sim::zipf_weights(config.workload.objects, config.workload.zipf_exponent);

  BatchingPolicy policy_a;
  ServerCore serial(sim::core_config(config), policy_a);
  for (Index m = 0; m < config.workload.objects; ++m) {
    for (const double t : sim::generate_arrivals(
             config.workload, m, weights[static_cast<std::size_t>(m)])) {
      const Ticket ticket = serial.admit(m, t);
      EXPECT_TRUE(ticket.admitted);
      EXPECT_GE(ticket.wait, 0.0);
      EXPECT_FALSE(violates_guarantee(ticket.wait, config.delay));
    }
  }
  serial.finish();
  const Snapshot a = serial.take_snapshot();

  BatchingPolicy policy_b;
  ServerCore mailbox(sim::core_config(config), policy_b);
  for (Index m = 0; m < config.workload.objects; ++m) {
    mailbox.ingest_trace(m, sim::generate_arrivals(
                                config.workload, m,
                                weights[static_cast<std::size_t>(m)]));
  }
  mailbox.finish();
  const Snapshot b = mailbox.take_snapshot();

  EXPECT_EQ(a.total_arrivals, b.total_arrivals);
  EXPECT_EQ(a.total_streams, b.total_streams);
  EXPECT_EQ(a.streams_served, b.streams_served);
  EXPECT_EQ(a.peak_concurrency, b.peak_concurrency);
  EXPECT_EQ(a.wait.p99, b.wait.p99);
  EXPECT_EQ(a.per_object, b.per_object);
}

// --- Capacity-aware admission -----------------------------------------------

ServerCoreConfig capacity_config(AdmissionMode mode, Index capacity) {
  ServerCoreConfig config;
  config.objects = 4;
  config.delay = 0.2;  // L = 5 slots per stream
  config.horizon = 12.0;
  config.serve = ServeMode::kSlottedBatching;
  config.channel_capacity = capacity;
  config.admission = mode;
  return config;
}

/// Two clients per slot per object for a few slots: with 4 objects and
/// capacity 2, only two batch streams fit at a time.
std::vector<std::pair<Index, double>> overload_arrivals() {
  std::vector<std::pair<Index, double>> arrivals;
  for (int slot = 0; slot < 10; ++slot) {
    for (Index object = 0; object < 4; ++object) {
      for (int j = 0; j < 2; ++j) {
        arrivals.push_back(
            {object, 0.2 * slot + 0.05 + 0.05 * j + 0.01 * object});
      }
    }
  }
  std::sort(arrivals.begin(), arrivals.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  return arrivals;
}

TEST(ServerCore, RejectModeKeepsPeakWithinBudgetAndGuaranteeIntact) {
  ServerCore core(capacity_config(AdmissionMode::kReject, 2));
  Index admitted = 0;
  Index rejected = 0;
  for (const auto& [object, time] : overload_arrivals()) {
    const Ticket ticket = core.admit(object, time);
    if (ticket.admitted) {
      ++admitted;
      // The acceptance criterion: every admitted client starts within
      // the delay, measured from its (non-deferred) arrival.
      EXPECT_FALSE(violates_guarantee(ticket.wait, 0.2));
      EXPECT_EQ(ticket.guarantee_wait, ticket.wait);
      EXPECT_EQ(ticket.deferred_slots, 0);
    } else {
      ++rejected;
    }
  }
  EXPECT_GT(admitted, 0);
  EXPECT_GT(rejected, 0);
  EXPECT_LE(core.peak_channels(), 2);
  core.finish();
  const Snapshot snap = core.take_snapshot();
  EXPECT_EQ(snap.guarantee_violations, 0);
  EXPECT_EQ(snap.capacity_violations, 0);
  EXPECT_EQ(snap.rejected, rejected);
  EXPECT_EQ(snap.total_arrivals - snap.rejected,
            static_cast<Index>(admitted));
}

TEST(ServerCore, DeferModeAdmitsMoreAndRepromisesTheDelay) {
  ServerCoreConfig config = capacity_config(AdmissionMode::kDefer, 2);
  config.max_defer_slots = 8;
  ServerCore defer_core(config);
  ServerCore reject_core(capacity_config(AdmissionMode::kReject, 2));
  Index deferred_clients = 0;
  for (const auto& [object, time] : overload_arrivals()) {
    const Ticket ticket = defer_core.admit(object, time);
    (void)reject_core.admit(object, time);
    if (ticket.admitted) {
      // The guarantee re-runs from the deferred slot; queueing time
      // stays visible in `wait`.
      EXPECT_FALSE(violates_guarantee(ticket.guarantee_wait, 0.2));
      if (ticket.deferred_slots > 0) {
        ++deferred_clients;
        EXPECT_GT(ticket.wait, ticket.guarantee_wait);
        EXPECT_NEAR(ticket.decision_time, 0.2 * (ticket.slot + ticket.deferred_slots),
                    1e-12);
      }
    }
  }
  EXPECT_GT(deferred_clients, 0);
  EXPECT_LE(defer_core.peak_channels(), 2);
  defer_core.finish();
  reject_core.finish();
  const Snapshot deferred = defer_core.take_snapshot();
  const Snapshot rejected = reject_core.take_snapshot();
  EXPECT_EQ(deferred.capacity_violations, 0);
  EXPECT_GT(deferred.deferrals, 0);
  // Deferral trades waiting for service: strictly fewer rejections.
  EXPECT_LT(deferred.rejected, rejected.rejected);
}

TEST(ServerCore, DegradeModeNeverRejectsAndStaysWithinBudget) {
  ServerCore core(capacity_config(AdmissionMode::kDegrade, 2));
  Index degraded = 0;
  for (const auto& [object, time] : overload_arrivals()) {
    const Ticket ticket = core.admit(object, time);
    ASSERT_TRUE(ticket.admitted);
    if (ticket.degraded) ++degraded;
  }
  EXPECT_GT(degraded, 0);
  EXPECT_LE(core.peak_channels(), 2);
  core.finish();
  const Snapshot snap = core.take_snapshot();
  EXPECT_EQ(snap.rejected, 0);
  EXPECT_EQ(snap.capacity_violations, 0);
  EXPECT_EQ(snap.total_arrivals, 80);
  // Degrading trades the guarantee for service: the coalesced batches
  // breach the per-client delay and the core says so.
  EXPECT_GT(snap.guarantee_violations, 0);
}

TEST(ServerCore, ObserveModeCountsInsteadOfRejecting) {
  ServerCore core(capacity_config(AdmissionMode::kObserve, 2));
  for (const auto& [object, time] : overload_arrivals()) {
    const Ticket ticket = core.admit(object, time);
    ASSERT_TRUE(ticket.admitted);
    EXPECT_FALSE(violates_guarantee(ticket.wait, 0.2));
  }
  EXPECT_GT(core.peak_channels(), 2);
  core.finish();
  const Snapshot snap = core.take_snapshot();
  EXPECT_EQ(snap.rejected, 0);
  EXPECT_GT(snap.capacity_violations, 0);
  EXPECT_EQ(snap.guarantee_violations, 0);
}

TEST(ServerCore, SlottedDgMatchesDelayGuaranteedServer) {
  // The adapter and a hand-driven slotted-DG core agree on every ticket
  // and on the live ledger peak.
  DelayGuaranteedServer server(15, 1.0);
  ServerCoreConfig config;
  config.objects = 1;
  config.delay = 1.0;
  config.horizon = 0.0;
  config.serve = ServeMode::kSlottedDg;
  config.dg_media_slots = 15;
  ServerCore core(config);
  for (double t = 0.3; t < 40.0; t += 1.3) {
    const ClientTicket a = server.admit(t);
    const Ticket b = core.admit(0, t);
    EXPECT_EQ(a.slot, b.slot);
    EXPECT_EQ(a.program, b.program);
    EXPECT_DOUBLE_EQ(a.playback_start, b.playback_start);
    EXPECT_DOUBLE_EQ(a.wait, b.wait);
  }
  EXPECT_EQ(server.clients(), core.object_clients(0));
  EXPECT_EQ(server.last_slot(), core.object_last_slot(0));
  EXPECT_EQ(server.peak_channels(), core.peak_channels());
  EXPECT_GT(server.peak_channels(), 0);
  // The DG schedule's cost query stays the closed form.
  EXPECT_EQ(server.transmitted_units(30), server.policy().cost(30));
}

TEST(ServerCore, Validation) {
  ServerCoreConfig config;
  config.objects = 0;
  EXPECT_THROW(ServerCore{config}, std::invalid_argument);
  config = ServerCoreConfig{};
  config.serve = ServeMode::kPolicy;
  EXPECT_THROW(ServerCore{config}, std::invalid_argument);  // needs a policy
  BatchingPolicy policy;
  config = ServerCoreConfig{};
  config.admission = AdmissionMode::kReject;
  config.channel_capacity = 4;
  EXPECT_THROW(ServerCore(config, policy), std::invalid_argument);  // kPolicy
  config.serve = ServeMode::kSlottedBatching;
  config.channel_capacity = 0;
  EXPECT_THROW(ServerCore{config}, std::invalid_argument);  // needs a budget
  config.channel_capacity = 4;
  ServerCore ok{config};
  EXPECT_THROW((void)ok.admit(-1, 0.5), std::out_of_range);
  EXPECT_THROW((void)ok.admit(0, -0.5), std::invalid_argument);
  (void)ok.admit(0, 1.0);
  EXPECT_THROW((void)ok.admit(0, 0.5), std::invalid_argument);  // unsorted
  EXPECT_THROW(ok.ingest(0, 2.0), std::invalid_argument);  // slotted mode
  ok.finish();
  EXPECT_THROW((void)ok.admit(0, 2.0), std::logic_error);
  config = ServerCoreConfig{};
  ServerCore generic(config, policy);
  EXPECT_THROW((void)generic.take_snapshot(), std::logic_error);
  EXPECT_THROW((void)generic.dg_policy(), std::logic_error);
}

}  // namespace
}  // namespace smerge::server
