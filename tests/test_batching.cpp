// Tests for the batching front-end and the non-merging baselines.
#include "merging/batching.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/arrivals.h"

namespace smerge::merging {
namespace {

TEST(BatchArrivals, QuantizesToIntervalEnds) {
  const std::vector<double> starts = batch_arrivals({0.05, 0.35, 0.41, 0.99}, 0.1);
  EXPECT_EQ(starts, (std::vector<double>{0.1, 0.4, 0.5, 1.0}));
}

TEST(BatchArrivals, DeduplicatesWithinInterval) {
  const std::vector<double> starts = batch_arrivals({0.01, 0.02, 0.09, 0.11}, 0.1);
  EXPECT_EQ(starts, (std::vector<double>{0.1, 0.2}));
}

TEST(BatchArrivals, BoundaryArrivalGetsZeroDelay) {
  const std::vector<double> starts = batch_arrivals({0.2}, 0.1);
  ASSERT_EQ(starts.size(), 1u);
  EXPECT_DOUBLE_EQ(starts[0], 0.2);
}

TEST(BatchArrivals, DelayGuaranteeHolds) {
  const std::vector<double> arrivals = sim::poisson_arrivals(0.03, 50.0, 7);
  const double delay = 0.02;
  const std::vector<double> starts = batch_arrivals(arrivals, delay);
  // Each arrival is served by the first start at or after it, within D.
  for (const double t : arrivals) {
    const auto it = std::lower_bound(starts.begin(), starts.end(), t - 1e-12);
    ASSERT_NE(it, starts.end());
    EXPECT_GE(*it + 1e-12, t);
    EXPECT_LT(*it - t, delay + 1e-9);
  }
}

TEST(BatchArrivals, Validation) {
  EXPECT_THROW(batch_arrivals({0.1}, 0.0), std::invalid_argument);
  EXPECT_THROW(batch_arrivals({0.3, 0.2}, 0.1), std::invalid_argument);
  EXPECT_TRUE(batch_arrivals({}, 0.1).empty());
}

TEST(Baselines, UnicastCost) {
  EXPECT_DOUBLE_EQ(unicast_cost({0.1, 0.2, 0.3}, 1.0), 3.0);
  EXPECT_DOUBLE_EQ(unicast_cost({}, 1.0), 0.0);
  EXPECT_THROW((void)unicast_cost({0.1}, 0.0), std::invalid_argument);
}

TEST(Baselines, BatchingCost) {
  // Three nonempty intervals out of the arrivals below.
  EXPECT_DOUBLE_EQ(batching_cost({0.01, 0.02, 0.55, 0.99}, 1.0, 0.1), 3.0);
  // Batching never exceeds unicast.
  const std::vector<double> arrivals = sim::poisson_arrivals(0.01, 30.0, 3);
  EXPECT_LE(batching_cost(arrivals, 1.0, 0.05), unicast_cost(arrivals, 1.0));
}

}  // namespace
}  // namespace smerge::merging
