// Tests for the per-client timeline renderer and a systematic truncation
// failure-injection sweep (the verifier must notice when any stream loses
// its last needed slot).
#include <gtest/gtest.h>

#include <sstream>

#include "core/full_cost.h"
#include "schedule/diagram.h"
#include "schedule/playback.h"

namespace smerge {
namespace {

TEST(ClientTimeline, ClientHGolden) {
  // The client-side view of Fig. 3 for client H (arrival 7, path 0<5<7):
  // segments 1-2 from H, 3-9 from F, 10-15 from A, with the Lemma-15
  // buffer climbing to 7 and draining as playback catches up.
  const MergeForest forest = optimal_merge_forest(15, 8);
  const std::string timeline = client_timeline(forest, 7);
  const std::string expected =
      "client 7 (H): plays segments 1..15 from slot 7\n"
      "     t:  7  8  9 10 11 12 13 14\n"
      "from H:  1  2\n"
      "from F:  3  4  5  6  7  8  9\n"
      "from A:       10 11 12 13 14 15\n"
      "buffer:  1  2  3  4  5  6  7  7\n";
  EXPECT_EQ(timeline, expected);
}

TEST(ClientTimeline, RootClientIsFlat) {
  const MergeForest forest = optimal_merge_forest(15, 8);
  const std::string timeline = client_timeline(forest, 0);
  EXPECT_NE(timeline.find("client 0 (A)"), std::string::npos);
  // A root client never buffers.
  EXPECT_EQ(timeline.find("buffer:  1"), std::string::npos);
}

TEST(ClientTimeline, BufferRowMatchesLemma15Peak) {
  // The maximum number in the buffer row equals min(d, L-d) for each
  // client of the Fig.-3 instance.
  const MergeForest forest = optimal_merge_forest(15, 8);
  const StreamSchedule schedule(forest);
  for (Index a = 0; a < 8; ++a) {
    const ClientReport report =
        verify_client(schedule, ReceivingProgram(forest, a), Model::kReceiveTwo);
    const std::string timeline = client_timeline(forest, a);
    std::string needle = " ";  // built via append (GCC PR105651)
    needle += std::to_string(report.peak_buffer);
    EXPECT_NE(timeline.find(needle), std::string::npos) << "a=" << a;
  }
}

TEST(FailureInjection, EveryTightTruncationIsNoticed) {
  // For each non-root stream, serve the original programs against a
  // schedule in which that stream is one slot shorter. Lemma-1 lengths
  // are tight (invariant 6), so the verifier must flag some client.
  const MergeForest forest = optimal_merge_forest(15, 14);
  const StreamSchedule schedule(forest);

  for (Index victim = 0; victim < forest.size(); ++victim) {
    const bool is_root = forest.tree_offset(forest.tree_of(victim)) == victim;
    if (is_root) continue;

    bool noticed = false;
    for (Index a = 0; a < forest.size(); ++a) {
      const ReceivingProgram program(forest, a);
      for (const Reception& r : program.receptions()) {
        // Simulate the shortened stream by checking whether this client
        // needs the victim's final slot.
        if (r.stream == victim &&
            r.last_part == schedule.stream(victim).length) {
          noticed = true;
        }
      }
    }
    EXPECT_TRUE(noticed) << "stream " << victim
                         << " could be shortened with no client noticing "
                            "(truncation not tight)";
  }
}

TEST(ClientTimeline, ReceiveAllShowsAllPathStreams) {
  // Under receive-all the deepest clients list one row per path stream.
  const MergeForest forest = optimal_merge_forest(16, 16, Model::kReceiveAll);
  Index deepest = 0;
  Index depth = 0;
  const MergeTree& tree = forest.tree(0);
  for (Index a = 0; a < tree.size(); ++a) {
    if (tree.depth(a) > depth) {
      depth = tree.depth(a);
      deepest = a;
    }
  }
  ASSERT_GT(depth, 1);
  const std::string timeline =
      client_timeline(forest, forest.tree_offset(0) + deepest, Model::kReceiveAll);
  // Count "from X:" rows below the header (the header itself says
  // "... from slot t", so a raw substring count would overshoot).
  Index rows = 0;
  std::istringstream lines(timeline);
  std::string line;
  std::getline(lines, line);  // drop the header
  while (std::getline(lines, line)) {
    if (line.find("from ") != std::string::npos) ++rows;
  }
  EXPECT_EQ(rows, depth + 1);  // the whole root path supplies data
}

TEST(ClientTimeline, InvalidArrivalThrows) {
  const MergeForest forest = optimal_merge_forest(15, 8);
  EXPECT_THROW(client_timeline(forest, 8), std::out_of_range);
  EXPECT_THROW(client_timeline(forest, -1), std::out_of_range);
}

}  // namespace
}  // namespace smerge
