// The SIMD kernels' one contract: bit-identical to the scalar oracles
// on every input. Fuzzed over lengths that cover empty inputs, single
// elements, odd tails around every lane multiple, and int64 prefix
// extremes (large but non-overflowing: bmax is exact only while a - b
// stays inside int64, which the ledger's bounded prefixes guarantee).
#include "util/simd.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <random>
#include <string_view>
#include <vector>

namespace smerge::util::simd {
namespace {

// Every length from empty through several vector blocks, so each lane
// count (1/2/4) sees full blocks, partial tails, and the scalar ramp.
std::vector<std::size_t> interesting_lengths() {
  std::vector<std::size_t> lengths;
  for (std::size_t n = 0; n <= 37; ++n) lengths.push_back(n);
  lengths.insert(lengths.end(), {63, 64, 65, 127, 128, 129, 1000, 4096});
  return lengths;
}

TEST(Simd, DispatchIsCoherent) {
  ASSERT_FALSE(scalar_forced());
  const char* kernel = active_kernel();
  const unsigned width = lanes();
  if (std::string_view(kernel) == "avx2") {
    EXPECT_EQ(width, 4u);
  } else if (std::string_view(kernel) == "v128") {
    EXPECT_EQ(width, 2u);
  } else {
    EXPECT_STREQ(kernel, "scalar");
    EXPECT_EQ(width, 1u);
  }
}

TEST(Simd, ForceScalarRoutesToOracle) {
  force_scalar(true);
  EXPECT_TRUE(scalar_forced());
  EXPECT_STREQ(active_kernel(), "scalar");
  EXPECT_EQ(lanes(), 1u);
  const std::int32_t deltas[] = {1, -1, 1, 1, -1};
  const ScanResult forced = prefix_scan(deltas, 5, 0, 0);
  force_scalar(false);
  EXPECT_FALSE(scalar_forced());
  const ScanResult oracle = prefix_scan_scalar(deltas, 5, 0, 0);
  EXPECT_EQ(forced.running, oracle.running);
  EXPECT_EQ(forced.best, oracle.best);
}

TEST(Simd, BmaxMatchesStdMax) {
  std::mt19937_64 rng(20260807);
  // |a|, |b| < 2^62 keeps a - b inside int64 — bmax's documented domain.
  std::uniform_int_distribution<std::int64_t> dist(-(std::int64_t{1} << 62),
                                                   std::int64_t{1} << 62);
  for (int trial = 0; trial < 100000; ++trial) {
    const std::int64_t a = dist(rng);
    const std::int64_t b = dist(rng);
    EXPECT_EQ(bmax(a, b), a > b ? a : b);
  }
  EXPECT_EQ(bmax(0, 0), 0);
  EXPECT_EQ(bmax(-1, 1), 1);
  EXPECT_EQ(bmax(1, -1), 1);
}

TEST(Simd, PrefixScanMatchesOracleOnLedgerDeltas) {
  // The ledger's actual delta alphabet is ±1; seeds cover resumed scans
  // (nonzero running/best, as max_over issues them).
  std::mt19937_64 rng(101);
  std::uniform_int_distribution<int> delta(0, 1);
  std::uniform_int_distribution<std::int64_t> seed(-1000, 1000);
  for (const std::size_t n : interesting_lengths()) {
    std::vector<std::int32_t> deltas(n);
    for (auto& d : deltas) d = delta(rng) == 0 ? -1 : 1;
    for (int trial = 0; trial < 4; ++trial) {
      const std::int64_t running = trial == 0 ? 0 : seed(rng);
      const std::int64_t best = trial == 0 ? 0 : seed(rng);
      const ScanResult got = prefix_scan(deltas.data(), n, running, best);
      const ScanResult want =
          prefix_scan_scalar(deltas.data(), n, running, best);
      EXPECT_EQ(got.running, want.running) << "n=" << n;
      EXPECT_EQ(got.best, want.best) << "n=" << n;
    }
  }
}

TEST(Simd, PrefixScanMatchesOracleOnFullInt32Range) {
  std::mt19937_64 rng(202);
  std::uniform_int_distribution<std::int32_t> delta(INT32_MIN, INT32_MAX);
  for (const std::size_t n : interesting_lengths()) {
    std::vector<std::int32_t> deltas(n);
    for (auto& d : deltas) d = delta(rng);
    // Seeds near the extremes: n * |delta| <= 4096 * 2^31 < 2^43, so a
    // start inside ±2^62 keeps every intermediate off overflow.
    for (const std::int64_t running :
         {std::int64_t{0}, std::int64_t{1} << 62, -(std::int64_t{1} << 62)}) {
      const ScanResult got = prefix_scan(deltas.data(), n, running, running);
      const ScanResult want =
          prefix_scan_scalar(deltas.data(), n, running, running);
      EXPECT_EQ(got.running, want.running) << "n=" << n;
      EXPECT_EQ(got.best, want.best) << "n=" << n;
    }
  }
}

TEST(Simd, SumMatchesOracle) {
  std::mt19937_64 rng(303);
  std::uniform_int_distribution<std::int32_t> delta(INT32_MIN, INT32_MAX);
  for (const std::size_t n : interesting_lengths()) {
    std::vector<std::int32_t> deltas(n);
    for (auto& d : deltas) d = delta(rng);
    EXPECT_EQ(sum(deltas.data(), n), sum_scalar(deltas.data(), n))
        << "n=" << n;
  }
}

TEST(Simd, StrictlyIncreasingMatchesOracle) {
  std::mt19937_64 rng(404);
  std::uniform_real_distribution<double> step(0.0, 1.0);
  std::uniform_int_distribution<int> mutate(0, 3);
  for (const std::size_t n : interesting_lengths()) {
    std::vector<double> x(n);
    double t = 0.0;
    for (auto& v : x) {
      t += step(rng);
      v = t;
    }
    // As generated: strictly increasing (steps can be 0 with measure
    // zero; the oracle is still the arbiter either way).
    EXPECT_EQ(strictly_increasing(x.data(), n),
              strictly_increasing_scalar(x.data(), n))
        << "n=" << n;
    if (n < 2) continue;
    // Mutations: a tie, a decrease, each at a random position — the
    // kernel must flag them wherever the tail/vector boundary falls.
    std::uniform_int_distribution<std::size_t> pos(1, n - 1);
    for (int trial = 0; trial < 8; ++trial) {
      std::vector<double> y = x;
      const std::size_t p = pos(rng);
      y[p] = mutate(rng) == 0 ? y[p - 1] : y[p - 1] - step(rng);
      const bool got = strictly_increasing(y.data(), n);
      EXPECT_EQ(got, strictly_increasing_scalar(y.data(), n))
          << "n=" << n << " p=" << p;
      EXPECT_FALSE(got);
    }
  }
}

TEST(Simd, StrictlyIncreasingEdgeValues) {
  EXPECT_TRUE(strictly_increasing(nullptr, 0));
  const double one[] = {3.5};
  EXPECT_TRUE(strictly_increasing(one, 1));
  const double flat[] = {1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0};
  EXPECT_FALSE(strictly_increasing(flat, 9));
  const double tail_tie[] = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 8.0};
  EXPECT_FALSE(strictly_increasing(tail_tie, 9));
  EXPECT_EQ(strictly_increasing(tail_tie, 8),
            strictly_increasing_scalar(tail_tie, 8));
}

}  // namespace
}  // namespace smerge::util::simd
