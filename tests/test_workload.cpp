// Tests for the pluggable workload generators: determinism, popularity
// thinning, and the statistical shape of each arrival process.
#include "sim/workload.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "sim/arrivals.h"

namespace smerge::sim {
namespace {

WorkloadConfig base_config() {
  WorkloadConfig config;
  config.process = ArrivalProcess::kPoisson;
  config.objects = 8;
  config.zipf_exponent = 1.0;
  config.mean_gap = 0.001;
  config.horizon = 50.0;
  config.seed = 123;
  return config;
}

std::size_t count_in(const std::vector<double>& times, double lo, double hi) {
  return static_cast<std::size_t>(std::count_if(
      times.begin(), times.end(), [=](double t) { return t >= lo && t < hi; }));
}

TEST(Workload, DeterministicPerObjectAndSeedSensitive) {
  const WorkloadConfig config = base_config();
  const auto a = generate_arrivals(config, 0);
  const auto b = generate_arrivals(config, 0);
  EXPECT_EQ(a, b);
  const auto other_object = generate_arrivals(config, 1);
  EXPECT_NE(a, other_object);
  WorkloadConfig reseeded = base_config();
  reseeded.seed = 124;
  EXPECT_NE(a, generate_arrivals(reseeded, 0));
  // Sorted within the horizon.
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
  EXPECT_GT(a.front(), 0.0);
  EXPECT_LE(a.back(), config.horizon);
}

TEST(Workload, ConstantRateSingleObjectMatchesLegacyGenerator) {
  WorkloadConfig config = base_config();
  config.process = ArrivalProcess::kConstantRate;
  config.objects = 1;
  config.mean_gap = 0.01;
  config.horizon = 10.0;
  EXPECT_EQ(generate_arrivals(config, 0),
            constant_arrivals(config.mean_gap, config.horizon));
}

TEST(Workload, PoissonGapsHaveConfiguredMean) {
  WorkloadConfig config = base_config();
  config.objects = 1;
  config.mean_gap = 0.01;
  config.horizon = 200.0;
  const auto times = generate_arrivals(config, 0);
  ASSERT_GT(times.size(), 10000u);
  const double mean_gap = times.back() / static_cast<double>(times.size());
  EXPECT_NEAR(mean_gap, config.mean_gap, 0.05 * config.mean_gap);
}

TEST(Workload, ZipfThinningMatchesPopularity) {
  const WorkloadConfig config = base_config();
  const auto weights = zipf_weights(config.objects, config.zipf_exponent);
  std::size_t total = 0;
  std::vector<std::size_t> counts(static_cast<std::size_t>(config.objects));
  for (Index m = 0; m < config.objects; ++m) {
    counts[static_cast<std::size_t>(m)] = generate_arrivals(config, m).size();
    total += counts[static_cast<std::size_t>(m)];
  }
  // ~50k aggregate arrivals: every object's share sits near its weight.
  ASSERT_GT(total, 10000u);
  for (Index m = 0; m < config.objects; ++m) {
    const double share = static_cast<double>(counts[static_cast<std::size_t>(m)]) /
                         static_cast<double>(total);
    EXPECT_NEAR(share, weights[static_cast<std::size_t>(m)],
                0.15 * weights[static_cast<std::size_t>(m)] + 0.002)
        << "object " << m;
  }
  // The most popular object dominates.
  EXPECT_EQ(std::max_element(counts.begin(), counts.end()), counts.begin());
}

TEST(Workload, FlashCrowdElevatesBurstWindow) {
  WorkloadConfig config = base_config();
  config.process = ArrivalProcess::kFlashCrowd;
  config.objects = 1;
  config.mean_gap = 0.005;
  config.horizon = 40.0;
  config.burst_start = 10.0;
  config.burst_duration = 5.0;
  config.burst_multiplier = 8.0;
  const auto times = generate_arrivals(config, 0);
  const double inside =
      static_cast<double>(count_in(times, 10.0, 15.0));
  const double outside_baseline =
      static_cast<double>(count_in(times, 20.0, 25.0));
  ASSERT_GT(outside_baseline, 100.0);
  const double ratio = inside / outside_baseline;
  EXPECT_GT(ratio, 0.5 * config.burst_multiplier);
  EXPECT_LT(ratio, 2.0 * config.burst_multiplier);
}

TEST(Workload, DiurnalModulationFollowsTheSine) {
  WorkloadConfig config = base_config();
  config.process = ArrivalProcess::kDiurnal;
  config.objects = 1;
  config.mean_gap = 0.002;
  config.horizon = 20.0;
  config.diurnal_period = 20.0;   // one full cycle over the horizon
  config.diurnal_amplitude = 0.9;
  const auto times = generate_arrivals(config, 0);
  // First half-period: rate 1 + 0.9 sin > 1; second half: < 1.
  const double crest = static_cast<double>(count_in(times, 0.0, 10.0));
  const double trough = static_cast<double>(count_in(times, 10.0, 20.0));
  ASSERT_GT(trough, 100.0);
  EXPECT_GT(crest / trough, 1.5);
}

TEST(Workload, ExpectedArrivalsTracksActualCounts) {
  for (const ArrivalProcess process :
       {ArrivalProcess::kPoisson, ArrivalProcess::kFlashCrowd,
        ArrivalProcess::kDiurnal}) {
    WorkloadConfig config = base_config();
    config.process = process;
    config.mean_gap = 0.002;
    config.horizon = 30.0;
    std::size_t total = 0;
    for (Index m = 0; m < config.objects; ++m) {
      total += generate_arrivals(config, m).size();
    }
    const double expected = expected_arrivals(config);
    EXPECT_NEAR(static_cast<double>(total), expected, 0.1 * expected)
        << to_string(process);
  }
}

TEST(Workload, Validation) {
  WorkloadConfig config = base_config();
  config.objects = 0;
  EXPECT_THROW(validate(config), std::invalid_argument);
  config = base_config();
  config.mean_gap = 0.0;
  EXPECT_THROW(validate(config), std::invalid_argument);
  config = base_config();
  config.horizon = -1.0;
  EXPECT_THROW(validate(config), std::invalid_argument);
  config = base_config();
  config.process = ArrivalProcess::kFlashCrowd;
  config.burst_multiplier = 0.5;
  EXPECT_THROW(validate(config), std::invalid_argument);
  config = base_config();
  config.process = ArrivalProcess::kDiurnal;
  config.diurnal_amplitude = 1.0;
  EXPECT_THROW(validate(config), std::invalid_argument);
  EXPECT_THROW((void)generate_arrivals(base_config(), 8), std::invalid_argument);
  EXPECT_THROW((void)generate_arrivals(base_config(), 0, 0.0),
               std::invalid_argument);
  EXPECT_THROW((void)zipf_weights(0, 1.0), std::invalid_argument);
}

TEST(Workload, ProcessNames) {
  EXPECT_STREQ(to_string(ArrivalProcess::kPoisson), "poisson");
  EXPECT_STREQ(to_string(ArrivalProcess::kConstantRate), "constant-rate");
  EXPECT_STREQ(to_string(ArrivalProcess::kFlashCrowd), "flash-crowd");
  EXPECT_STREQ(to_string(ArrivalProcess::kDiurnal), "diurnal");
}

}  // namespace
}  // namespace smerge::sim
