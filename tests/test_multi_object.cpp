// Tests for the Section-5 multi-object server extension.
#include "sim/multi_object.h"

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>

namespace smerge::sim {
namespace {

MultiObjectConfig small_config() {
  MultiObjectConfig c;
  c.objects = 5;
  c.zipf_exponent = 1.0;
  c.mean_gap = 0.01;
  c.horizon = 10.0;
  c.delay = 0.02;
  c.seed = 17;
  return c;
}

TEST(ZipfWeights, NormalizedAndDecreasing) {
  const auto w = zipf_weights(8, 1.0);
  ASSERT_EQ(w.size(), 8u);
  EXPECT_NEAR(std::accumulate(w.begin(), w.end(), 0.0), 1.0, 1e-12);
  for (std::size_t i = 1; i < w.size(); ++i) {
    EXPECT_LT(w[i], w[i - 1]);
  }
  // Uniform when the exponent is zero.
  const auto u = zipf_weights(4, 0.0);
  for (const double x : u) EXPECT_NEAR(x, 0.25, 1e-12);
  EXPECT_THROW(zipf_weights(0, 1.0), std::invalid_argument);
}

TEST(MultiObject, DeterministicUnderConfig) {
  const MultiObjectConfig c = small_config();
  const MultiObjectResult a = run_multi_object(c, Policy::kDyadicImmediate);
  const MultiObjectResult b = run_multi_object(c, Policy::kDyadicImmediate);
  EXPECT_DOUBLE_EQ(a.streams_served, b.streams_served);
  EXPECT_EQ(a.peak_concurrency, b.peak_concurrency);
  EXPECT_EQ(a.arrivals_per_object, b.arrivals_per_object);
}

TEST(MultiObject, ArrivalsFollowPopularity) {
  MultiObjectConfig c = small_config();
  c.mean_gap = 0.002;  // plenty of arrivals for the skew to show
  const MultiObjectResult r = run_multi_object(c, Policy::kDyadicImmediate);
  const Index total = std::accumulate(r.arrivals_per_object.begin(),
                                      r.arrivals_per_object.end(), Index{0});
  EXPECT_GT(total, 1000);
  // Most popular object receives the most arrivals.
  EXPECT_EQ(*std::max_element(r.arrivals_per_object.begin(),
                              r.arrivals_per_object.end()),
            r.arrivals_per_object[0]);
}

TEST(MultiObject, DelayGuaranteedCostIsDemandIndependent) {
  // DG transmits per slot per object no matter the arrivals: two seeds,
  // same aggregate DG cost.
  MultiObjectConfig c1 = small_config();
  MultiObjectConfig c2 = small_config();
  c2.seed = 18;
  const double cost1 = run_multi_object(c1, Policy::kDelayGuaranteed).streams_served;
  const double cost2 = run_multi_object(c2, Policy::kDelayGuaranteed).streams_served;
  EXPECT_DOUBLE_EQ(cost1, cost2);
}

TEST(MultiObject, BatchingReducesDyadicCostWhenDense) {
  MultiObjectConfig c = small_config();
  c.mean_gap = 0.001;  // far denser than the 0.02 delay
  const double immediate =
      run_multi_object(c, Policy::kDyadicImmediate).streams_served;
  const double batched = run_multi_object(c, Policy::kDyadicBatched).streams_served;
  EXPECT_LT(batched, immediate);
}

TEST(MultiObject, PerObjectCostsSumToTotal) {
  const MultiObjectResult r =
      run_multi_object(small_config(), Policy::kDyadicImmediate);
  const double sum = std::accumulate(r.per_object.begin(), r.per_object.end(), 0.0);
  EXPECT_NEAR(sum, r.streams_served, 1e-9);
}

TEST(MultiObject, DgPeakStableUnderLoadDyadicPeakGrows) {
  // The Section-5 argument: DG caps the peak bandwidth regardless of
  // intensity, while immediate dyadic service scales with demand.
  MultiObjectConfig light = small_config();
  light.mean_gap = 0.05;
  MultiObjectConfig heavy = small_config();
  heavy.mean_gap = 0.001;
  const Index dg_light =
      run_multi_object(light, Policy::kDelayGuaranteed).peak_concurrency;
  const Index dg_heavy =
      run_multi_object(heavy, Policy::kDelayGuaranteed).peak_concurrency;
  EXPECT_EQ(dg_light, dg_heavy);
  const Index dy_light =
      run_multi_object(light, Policy::kDyadicImmediate).peak_concurrency;
  const Index dy_heavy =
      run_multi_object(heavy, Policy::kDyadicImmediate).peak_concurrency;
  EXPECT_GT(dy_heavy, dy_light);
}

TEST(MultiObject, Validation) {
  MultiObjectConfig c = small_config();
  c.delay = 0.0;
  EXPECT_THROW(run_multi_object(c, Policy::kDelayGuaranteed), std::invalid_argument);
}

}  // namespace
}  // namespace smerge::sim
