// Tests for the MergeTree invariants: preorder property enforcement,
// Lemma-1 / Lemma-17 lengths, and the Lemma-2 recursive decomposition.
#include "core/merge_tree.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/tree_builder.h"

namespace smerge {
namespace {

TEST(MergeTree, SingleNode) {
  const MergeTree t = MergeTree::single();
  EXPECT_EQ(t.size(), 1);
  EXPECT_EQ(t.parent(0), -1);
  EXPECT_EQ(t.last_descendant(0), 0);
  EXPECT_EQ(t.merge_cost(), 0);
  EXPECT_EQ(t.span(), 0);
  EXPECT_TRUE(t.fits(1));
}

TEST(MergeTree, PaperFigureFourTree) {
  // Fig. 4 (equivalently Fig. 3): the optimal merge tree for n = 8 with
  // structure 0(1 2 3(4) 5(6 7)) — client H (arrival 7) has receiving
  // path 0 < 5 < 7. Lengths from the worked examples: l(7)=2 (leaf H),
  // l(5)=9 (stream F), total Mcost = 21.
  const MergeTree t(std::vector<Index>{-1, 0, 0, 0, 3, 0, 5, 5});
  EXPECT_EQ(t.size(), 8);
  EXPECT_EQ(t.merge_cost(), 21);
  EXPECT_EQ(t.length(7), 2);   // H - p(H) = 7 - 5
  EXPECT_EQ(t.length(5), 9);   // 2 z(F) - F - p(F) = 14 - 5 - 0
  EXPECT_EQ(t.last_descendant(5), 7);
  EXPECT_EQ(t.last_descendant(0), 7);
  EXPECT_EQ(t.last_descendant(1), 1);
  EXPECT_EQ(t.path_from_root(7), (std::vector<Index>{0, 5, 7}));
  EXPECT_EQ(t.to_string(), "0(1 2 3(4) 5(6 7))");
}

TEST(MergeTree, ChainAndStarCosts) {
  // Chain: node i has subtree [i, n-1], so l(i) = 2(n-1) - i - (i-1);
  // summing the odd numbers 1, 3, ..., 2n-3 gives Mcost = (n-1)^2.
  // Star: node i has z=i, parent 0 => l(i) = i, Mcost = n(n-1)/2.
  for (Index n = 1; n <= 40; ++n) {
    EXPECT_EQ(MergeTree::chain(n).merge_cost(), (n - 1) * (n - 1));
    EXPECT_EQ(MergeTree::star(n).merge_cost(), n * (n - 1) / 2);
  }
}

TEST(MergeTree, ChainAndStarReceiveAllCosts) {
  // Receive-all lengths w(x) = z(x) - p(x): chain node i has w = 1... no:
  // chain: z(i)=n-1 for every i, w(i) = n-1-(i-1) = n-i; star: w(i) = i.
  for (Index n = 2; n <= 30; ++n) {
    Cost chain_expected = 0;
    for (Index i = 1; i < n; ++i) chain_expected += n - i;
    EXPECT_EQ(MergeTree::chain(n).merge_cost(Model::kReceiveAll), chain_expected);
    EXPECT_EQ(MergeTree::star(n).merge_cost(Model::kReceiveAll), n * (n - 1) / 2);
  }
}

TEST(MergeTree, RejectsMalformedParentVectors) {
  // Root must be -1.
  EXPECT_THROW(MergeTree(std::vector<Index>{0}), std::invalid_argument);
  // Parent after node.
  EXPECT_THROW(MergeTree(std::vector<Index>{-1, 1}), std::invalid_argument);
  EXPECT_THROW(MergeTree(std::vector<Index>{-1, 2, 1}), std::invalid_argument);
  // Negative parent on non-root.
  EXPECT_THROW(MergeTree(std::vector<Index>{-1, -1}), std::invalid_argument);
  // Empty.
  EXPECT_THROW(MergeTree(std::vector<Index>{}), std::invalid_argument);
}

TEST(MergeTree, RejectsPreorderViolations) {
  // parents = {-1,0,1,1} is fine (0(1(2 3))), but {-1,0,0,1} visits 3
  // after returning from 1's subtree => preorder violation.
  EXPECT_NO_THROW(MergeTree(std::vector<Index>{-1, 0, 1, 1}));
  EXPECT_THROW(MergeTree(std::vector<Index>{-1, 0, 0, 1}), std::invalid_argument);
  // 0(1(2) 3) then node 4 attaching to 2 (no longer on rightmost path).
  EXPECT_THROW(MergeTree(std::vector<Index>{-1, 0, 1, 0, 2}), std::invalid_argument);
  EXPECT_NO_THROW(MergeTree(std::vector<Index>{-1, 0, 1, 0, 3}));
}

TEST(MergeTree, PathFromRoot) {
  const MergeTree t(std::vector<Index>{-1, 0, 0, 0, 3, 0, 5, 5});
  EXPECT_EQ(t.path_from_root(7), (std::vector<Index>{0, 5, 7}));
  EXPECT_EQ(t.path_from_root(4), (std::vector<Index>{0, 3, 4}));
  EXPECT_EQ(t.path_from_root(0), (std::vector<Index>{0}));
  EXPECT_EQ(t.depth(7), 2);
  EXPECT_EQ(t.depth(0), 0);
}

TEST(MergeTree, ChildrenAreSorted) {
  const MergeTree t(std::vector<Index>{-1, 0, 0, 0, 3, 0, 5, 5});
  EXPECT_EQ(t.children(0), (std::vector<Index>{1, 2, 3, 5}));
  EXPECT_EQ(t.children(5), (std::vector<Index>{6, 7}));
  EXPECT_TRUE(t.children(7).empty());
}

TEST(MergeTree, PrefixKeepsParents) {
  const MergeTree t(std::vector<Index>{-1, 0, 0, 0, 3, 0, 5, 5});
  const MergeTree p = t.prefix(5);
  EXPECT_EQ(p.size(), 5);
  EXPECT_EQ(p.parents(), (std::vector<Index>{-1, 0, 0, 0, 3}));
  EXPECT_THROW(t.prefix(0), std::invalid_argument);
  EXPECT_THROW(t.prefix(9), std::invalid_argument);
  EXPECT_EQ(t.prefix(8), t);
}

TEST(MergeTree, SubtreeExtraction) {
  const MergeTree t(std::vector<Index>{-1, 0, 0, 0, 3, 0, 5, 5});
  const MergeTree sub = t.subtree(5);  // 5(6 7) -> 0(1 2)
  EXPECT_EQ(sub.parents(), (std::vector<Index>{-1, 0, 0}));
  const MergeTree leaf = t.subtree(2);
  EXPECT_EQ(leaf.size(), 1);
  EXPECT_THROW(t.subtree(8), std::out_of_range);
}

TEST(MergeTree, AccessorsRangeCheck) {
  const MergeTree t = MergeTree::chain(3);
  EXPECT_THROW((void)t.parent(3), std::out_of_range);
  EXPECT_THROW((void)t.children(-1), std::out_of_range);
  EXPECT_THROW((void)t.last_descendant(5), std::out_of_range);
  EXPECT_THROW((void)t.length(0), std::invalid_argument);  // root has length L
}

TEST(MergeTree, LeafLengthIsGapToParent) {
  // Lemma 1 specialization: leaves have l(x) = x - p(x).
  const MergeTree t(std::vector<Index>{-1, 0, 0, 0, 3, 0, 5, 5});
  EXPECT_EQ(t.length(2), 2 - 0);
  EXPECT_EQ(t.length(4), 4 - 3);
  EXPECT_EQ(t.length(6), 6 - 5);
  EXPECT_EQ(t.length(7), 7 - 5);
}

class LemmaTwoDecomposition : public ::testing::TestWithParam<Index> {};

TEST_P(LemmaTwoDecomposition, HoldsOnEveryMergeTree) {
  // Lemma 2: Mcost(T) = Mcost(T') + Mcost(T'') + (2z - x - r) where x is
  // the last child of the root and T'/T'' the split at x. Verified over
  // every merge tree of the given size.
  const Index n = GetParam();
  Index checked = 0;
  enumerate_merge_trees(n, [&](const MergeTree& t) {
    const auto& root_children = t.children(0);
    ASSERT_FALSE(root_children.empty());
    const Index x = root_children.back();
    const MergeTree t_prime = t.prefix(x);
    const MergeTree t_second = t.subtree(x);
    const Cost glue = 2 * (n - 1) - x - 0;
    EXPECT_EQ(t.merge_cost(),
              t_prime.merge_cost() + t_second.merge_cost() + glue);
    ++checked;
  });
  EXPECT_EQ(checked, count_merge_trees(n));
}

TEST_P(LemmaTwoDecomposition, ReceiveAllVariantHolds) {
  // Lemma 18: Mcost_w(T) = Mcost_w(T') + Mcost_w(T'') + (z - r).
  const Index n = GetParam();
  enumerate_merge_trees(n, [&](const MergeTree& t) {
    const Index x = t.children(0).back();
    EXPECT_EQ(t.merge_cost(Model::kReceiveAll),
              t.prefix(x).merge_cost(Model::kReceiveAll) +
                  t.subtree(x).merge_cost(Model::kReceiveAll) + (n - 1));
  });
}

INSTANTIATE_TEST_SUITE_P(SmallSizes, LemmaTwoDecomposition,
                         ::testing::Range<Index>(2, 9));

TEST(MergeTree, LastDescendantIsSubtreeInterval) {
  // Preorder property <=> subtree of x is the interval [x, z(x)]: check
  // that children partition (x, z(x)].
  enumerate_merge_trees(7, [&](const MergeTree& t) {
    for (Index x = 0; x < t.size(); ++x) {
      Index cursor = x;
      for (const Index c : t.children(x)) {
        EXPECT_EQ(c, cursor + 1);  // children blocks are contiguous
        cursor = t.last_descendant(c);
      }
      EXPECT_EQ(cursor, t.last_descendant(x));
    }
  });
}

}  // namespace
}  // namespace smerge
