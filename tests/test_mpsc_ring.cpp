// Tests for the lock-free hot-path ingest: the bounded MPSC ring and
// its never-drop spill mailbox (util/mpsc_ring.h), multi-producer
// interleaving under real threads, ChannelLedger::apply_batch vs the
// per-event path, and the drain-equivalence contract — ring-fed
// ServerCore snapshots bit-identical to the serial ingest_trace
// baseline across shard widths and ring sizes.
#include "util/mpsc_ring.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

#include "online/policy.h"
#include "server/channel_ledger.h"
#include "server/server_core.h"
#include "sim/engine.h"
#include "util/rng.h"

namespace smerge {
namespace {

struct Tagged {
  std::uint32_t producer = 0;
  std::uint32_t seq = 0;
};

// --- Ring basics ------------------------------------------------------------

TEST(MpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(util::MpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(util::MpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(util::MpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(util::MpscRing<int>(1024).capacity(), 1024u);
  EXPECT_EQ(util::MpscRing<int>(1025).capacity(), 2048u);
  EXPECT_THROW(util::MpscRing<int>(0), std::invalid_argument);
}

TEST(MpscRing, FifoAndFullDetection) {
  util::MpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99));  // full, element not enqueued
  EXPECT_TRUE(ring.has_published());

  std::vector<int> out;
  EXPECT_EQ(ring.drain(out), 4u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_FALSE(ring.has_published());

  // Slots recycle: the ring is reusable for many times its capacity.
  out.clear();
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 3; ++i) EXPECT_TRUE(ring.try_push(round * 3 + i));
    EXPECT_EQ(ring.drain(out), 3u);
  }
  for (int i = 0; i < 30; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i);
}

TEST(MpscMailbox, OverflowSpillsInOrderAndNothingDrops) {
  util::MpscMailbox<int> box(4);
  for (int i = 0; i < 11; ++i) box.push(i);  // 4 in the ring, 7 spilled
  EXPECT_EQ(box.spilled(), 7u);
  EXPECT_TRUE(box.has_items());

  // Single-producer drain order: the ring's range first, then the
  // spill, each FIFO — so one producer's elements come back in push
  // order here (ring filled first, spill strictly after).
  std::vector<int> out;
  EXPECT_EQ(box.drain(out), 11u);
  EXPECT_EQ(out.size(), 11u);
  for (int i = 0; i < 11; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i);
  EXPECT_FALSE(box.has_items());

  // The spill counter is monotone across drains (pressure telemetry).
  box.push(42);
  out.clear();
  EXPECT_EQ(box.drain(out), 1u);
  EXPECT_EQ(box.spilled(), 7u);
}

// --- Multi-producer interleaving fuzz ---------------------------------------

TEST(MpscMailbox, ConcurrentProducersDeliverEverythingExactlyOnce) {
  constexpr unsigned kProducers = 4;
  constexpr std::uint32_t kPerProducer = 20'000;
  // Small ring: the consumer races the producers, so both the ring and
  // the spill path are exercised heavily.
  util::MpscMailbox<Tagged> box(256);

  std::atomic<unsigned> remaining{kProducers};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (unsigned p = 0; p < kProducers; ++p) {
    producers.emplace_back([&box, &remaining, p] {
      for (std::uint32_t i = 0; i < kPerProducer; ++i) box.push({p, i});
      remaining.fetch_sub(1, std::memory_order_release);
    });
  }

  std::vector<Tagged> received;
  received.reserve(kProducers * kPerProducer);
  while (remaining.load(std::memory_order_acquire) > 0) {
    box.drain(received);
    std::this_thread::yield();
  }
  for (std::thread& t : producers) t.join();
  box.drain(received);

  ASSERT_EQ(received.size(), kProducers * kPerProducer);
  // Exactly-once: per producer, the multiset of sequence numbers is
  // {0, ..., n-1} — sort by (producer, seq) and demand the identity.
  std::sort(received.begin(), received.end(),
            [](const Tagged& a, const Tagged& b) {
              if (a.producer != b.producer) return a.producer < b.producer;
              return a.seq < b.seq;
            });
  std::size_t k = 0;
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    for (std::uint32_t i = 0; i < kPerProducer; ++i, ++k) {
      ASSERT_EQ(received[k].producer, p);
      ASSERT_EQ(received[k].seq, i);
    }
  }
}

TEST(MpscMailbox, RingPathPreservesPerProducerFifo) {
  constexpr unsigned kProducers = 3;
  constexpr std::uint32_t kPerProducer = 5'000;
  // Ring big enough that nothing spills: drain order must then be
  // strictly increasing per producer (the FIFO-per-producer guarantee
  // downstream determinism builds on).
  util::MpscMailbox<Tagged> box(1u << 16);

  std::atomic<unsigned> remaining{kProducers};
  std::vector<std::thread> producers;
  for (unsigned p = 0; p < kProducers; ++p) {
    producers.emplace_back([&box, &remaining, p] {
      for (std::uint32_t i = 0; i < kPerProducer; ++i) box.push({p, i});
      remaining.fetch_sub(1, std::memory_order_release);
    });
  }
  std::vector<Tagged> received;
  while (remaining.load(std::memory_order_acquire) > 0) {
    box.drain(received);
    std::this_thread::yield();
  }
  for (std::thread& t : producers) t.join();
  box.drain(received);

  ASSERT_EQ(received.size(), kProducers * kPerProducer);
  EXPECT_EQ(box.spilled(), 0u);
  std::uint32_t next[kProducers] = {0, 0, 0};
  for (const Tagged& item : received) {
    ASSERT_LT(item.producer, kProducers);
    EXPECT_EQ(item.seq, next[item.producer]);
    ++next[item.producer];
  }
}

// --- ChannelLedger::apply_batch vs the per-event path -----------------------

TEST(ChannelLedger, ApplyBatchMatchesPerEventPath) {
  util::SplitMix64 rng(7);
  std::vector<server::LedgerEvent> events;
  for (int i = 0; i < 400; ++i) {
    const double start = rng.next_double() * 9.0;
    const double end = start + 0.05 + rng.next_double() * 2.0;
    const auto object = static_cast<Index>(i % 11);
    events.push_back({start, object, +1, true});
    events.push_back({end, object, -1, false});
  }

  server::ChannelLedger one_by_one(12.0, 0.25);
  for (std::size_t i = 0; i + 1 < events.size(); i += 2) {
    one_by_one.add_interval(events[i].time, events[i + 1].time,
                            events[i].object);
  }
  server::ChannelLedger batched(12.0, 0.25);
  // Apply in uneven chunks so batches straddle bucket and sort-state
  // boundaries.
  std::size_t offset = 0;
  std::size_t chunk = 2;
  while (offset < events.size()) {
    const std::size_t n = std::min(chunk, events.size() - offset);
    batched.apply_batch({events.data() + offset, n});
    offset += n;
    chunk = chunk * 3 % 97 + 2;
    chunk -= chunk % 2;  // keep +1/-1 pairs intact per batch
  }

  EXPECT_EQ(batched.events(), one_by_one.events());
  EXPECT_EQ(batched.peak(), one_by_one.peak());
  for (double t = 0.0; t < 12.0; t += 0.17) {
    EXPECT_EQ(batched.occupancy_at(t), one_by_one.occupancy_at(t)) << t;
    EXPECT_EQ(batched.max_over(t, t + 1.3), one_by_one.max_over(t, t + 1.3));
  }
  EXPECT_EQ(batched.capacity_violations(5), one_by_one.capacity_violations(5));
}

// --- ServerCore drain equivalence -------------------------------------------

sim::EngineConfig small_engine_config() {
  sim::EngineConfig config;
  config.workload.process = sim::ArrivalProcess::kPoisson;
  config.workload.objects = 24;
  config.workload.zipf_exponent = 1.0;
  config.workload.mean_gap = 1e-3;
  config.workload.horizon = 4.0;
  config.workload.seed = 20260728;
  config.delay = 0.05;
  // SMERGE_PIN_WORKERS=1 (the CI TSan pinned re-run) drains on the
  // core-pinned static pool; snapshots must not change.
  config.pin_workers = std::getenv("SMERGE_PIN_WORKERS") != nullptr;
  return config;
}

void expect_identical(const server::Snapshot& a, const server::Snapshot& b) {
  EXPECT_EQ(a.total_arrivals, b.total_arrivals);
  EXPECT_EQ(a.total_streams, b.total_streams);
  EXPECT_EQ(a.streams_served, b.streams_served);
  EXPECT_EQ(a.peak_concurrency, b.peak_concurrency);
  EXPECT_EQ(a.guarantee_violations, b.guarantee_violations);
  EXPECT_EQ(a.wait.mean, b.wait.mean);
  EXPECT_EQ(a.wait.max, b.wait.max);
  EXPECT_EQ(a.wait.p50, b.wait.p50);
  EXPECT_EQ(a.wait.p95, b.wait.p95);
  EXPECT_EQ(a.wait.p99, b.wait.p99);
  EXPECT_EQ(a.per_object, b.per_object);
}

/// Ring-fed snapshots must be bit-identical to the serial ingest_trace
/// baseline across shard widths (1/2/4/8), drain cadences, and ring
/// sizes small enough to force the overflow spill.
TEST(ServerCorePost, SnapshotsMatchIngestTraceAcrossShardWidths) {
  const sim::EngineConfig config = small_engine_config();
  const std::vector<double> weights = sim::zipf_weights(
      config.workload.objects, config.workload.zipf_exponent);
  const auto n = static_cast<std::size_t>(config.workload.objects);
  std::vector<std::vector<double>> traces(n);
  for (std::size_t m = 0; m < n; ++m) {
    traces[m] = sim::generate_arrivals(config.workload, static_cast<Index>(m),
                                       weights[m]);
  }

  BatchingPolicy policy;
  server::Snapshot baseline;
  {
    auto core_cfg = sim::core_config(config);
    core_cfg.shards = 1;
    server::ServerCore core(core_cfg, policy);
    for (std::size_t m = 0; m < n; ++m) {
      core.ingest_trace(static_cast<Index>(m), std::vector<double>(traces[m]));
    }
    core.finish();
    baseline = core.take_snapshot();
  }
  ASSERT_GT(baseline.total_arrivals, 1000);

  for (const unsigned shards : {1u, 2u, 4u, 8u}) {
    // mailbox_capacity 64 << arrivals per wave: the spill path runs for
    // real at every width.
    for (const Index capacity : {Index{0}, Index{64}}) {
      auto core_cfg = sim::core_config(config);
      core_cfg.shards = shards;
      core_cfg.mailbox_capacity = capacity;
      server::ServerCore core(core_cfg, policy);
      // Post in waves with an uneven cadence: a few arrivals per object
      // between drains, so drain boundaries differ from every other
      // configuration in this test.
      std::size_t longest = 0;
      for (const auto& trace : traces) {
        longest = std::max(longest, trace.size());
      }
      std::size_t offset = 0;
      std::size_t wave = 17;
      while (offset < longest) {
        for (std::size_t m = 0; m < n; ++m) {
          const std::size_t hi = std::min(traces[m].size(), offset + wave);
          for (std::size_t k = offset; k < hi && k < traces[m].size(); ++k) {
            core.post(static_cast<Index>(m), traces[m][k]);
          }
        }
        offset += wave;
        wave = wave * 5 % 53 + 3;
        core.drain();
      }
      core.finish();
      const server::Snapshot snapshot = core.take_snapshot();
      expect_identical(snapshot, baseline);
    }
  }
}

/// The engine's posted wave pipeline is an exact stand-in for trace
/// ingest — same EngineResult, field by field.
TEST(ServerCorePost, EnginePostedModeMatchesTraceMode) {
  sim::EngineConfig config = small_engine_config();
  BatchingPolicy policy;
  const sim::EngineResult trace_result = sim::run_engine(config, policy);

  for (const unsigned threads : {1u, 4u}) {
    config.threads = threads;
    config.ingest = sim::IngestMode::kPosted;
    config.mailbox_capacity = threads == 4 ? 128 : 0;  // spill on one leg
    BatchingPolicy posted_policy;
    const sim::EngineResult posted = sim::run_engine(config, posted_policy);
    EXPECT_EQ(posted.total_arrivals, trace_result.total_arrivals);
    EXPECT_EQ(posted.total_streams, trace_result.total_streams);
    EXPECT_EQ(posted.streams_served, trace_result.streams_served);
    EXPECT_EQ(posted.peak_concurrency, trace_result.peak_concurrency);
    EXPECT_EQ(posted.wait.mean, trace_result.wait.mean);
    EXPECT_EQ(posted.wait.p99, trace_result.wait.p99);
    EXPECT_EQ(posted.per_object, trace_result.per_object);
  }
}

/// Concurrent producers + a live drain loop land on the same snapshot
/// as the serial baseline — the full lock-free path under real threads.
TEST(ServerCorePost, ConcurrentProducersMatchSerialBaseline) {
  const sim::EngineConfig config = small_engine_config();
  const std::vector<double> weights = sim::zipf_weights(
      config.workload.objects, config.workload.zipf_exponent);
  const auto n = static_cast<std::size_t>(config.workload.objects);
  std::vector<std::vector<double>> traces(n);
  for (std::size_t m = 0; m < n; ++m) {
    traces[m] = sim::generate_arrivals(config.workload, static_cast<Index>(m),
                                       weights[m]);
  }

  BatchingPolicy policy;
  server::Snapshot baseline;
  {
    auto core_cfg = sim::core_config(config);
    server::ServerCore core(core_cfg, policy);
    for (std::size_t m = 0; m < n; ++m) {
      core.ingest_trace(static_cast<Index>(m), std::vector<double>(traces[m]));
    }
    core.finish();
    baseline = core.take_snapshot();
  }

  constexpr unsigned kProducers = 4;
  auto core_cfg = sim::core_config(config);
  core_cfg.shards = kProducers;
  core_cfg.mailbox_capacity = 512;  // small enough to spill under load
  server::ServerCore core(core_cfg, policy);

  std::atomic<unsigned> remaining{kProducers};
  std::vector<std::thread> producers;
  for (unsigned p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t m = p; m < n; m += kProducers) {
        for (const double t : traces[m]) {
          core.post(static_cast<Index>(m), t);
        }
      }
      remaining.fetch_sub(1, std::memory_order_release);
    });
  }
  while (remaining.load(std::memory_order_acquire) > 0) {
    core.drain();
    std::this_thread::yield();
  }
  for (std::thread& t : producers) t.join();
  core.drain();
  core.finish();
  expect_identical(core.take_snapshot(), baseline);
}

// Regression: one drain's spill claim can contain arrivals whose shard
// tickets are NEWER than ring slots the same sweep left behind — the
// ring sweep stops at a claimed-but-unpublished slot, and the producer
// may publish it and then spill past it before the drain reaches the
// spill. The collector must fold in contiguous ticket order and hold
// the post-gap tail for a later pass; folding the claim as-is threw a
// spurious "nondecreasing per object" here. A tiny ring and a spinning
// drain loop maximize ring/spill boundary crossings.
TEST(ServerCorePost, SpillRingInterleavingKeepsPerObjectOrder) {
  constexpr std::size_t kArrivals = 200000;
  BatchingPolicy policy;
  server::ServerCoreConfig config;
  config.objects = 1;
  config.delay = 0.5;
  config.horizon = kArrivals * 1e-5 + 1.0;
  config.shards = 1;
  config.mailbox_capacity = 16;
  server::ServerCore core(config, policy);
  std::atomic<bool> done{false};
  std::thread producer([&] {
    for (std::size_t i = 0; i < kArrivals; ++i) {
      core.post(0, static_cast<double>(i) * 1e-5);
    }
    done.store(true, std::memory_order_release);
  });
  while (!done.load(std::memory_order_acquire)) {
    ASSERT_NO_THROW(core.drain());
  }
  producer.join();
  core.drain();
  core.finish();
  EXPECT_EQ(core.take_snapshot().total_arrivals, static_cast<Index>(kArrivals));
}

// --- post() contract edges --------------------------------------------------

TEST(ServerCorePost, ValidatesArgumentsAndServeMode) {
  BatchingPolicy policy;
  server::ServerCoreConfig config;
  config.objects = 4;
  config.delay = 0.1;
  config.horizon = 2.0;
  server::ServerCore core(config, policy);
  EXPECT_THROW(core.post(-1, 0.5), std::out_of_range);
  EXPECT_THROW(core.post(4, 0.5), std::out_of_range);
  EXPECT_THROW(core.post(0, -0.5), std::invalid_argument);

  server::ServerCoreConfig slotted = config;
  slotted.serve = server::ServeMode::kSlottedBatching;
  server::ServerCore slotted_core(slotted);
  EXPECT_THROW(slotted_core.post(0, 0.5), std::invalid_argument);
}

TEST(ServerCorePost, OutOfOrderPostsAreDetectedAtDrain) {
  BatchingPolicy policy;
  server::ServerCoreConfig config;
  config.objects = 2;
  config.delay = 0.1;
  config.horizon = 2.0;
  server::ServerCore core(config, policy);
  core.post(0, 1.0);
  core.drain();
  core.post(0, 0.5);  // behind what object 0 already served
  EXPECT_THROW(core.drain(), std::invalid_argument);
}

TEST(ServerCorePost, CheckpointRefusesUndrainedPosts) {
  BatchingPolicy policy;
  server::ServerCoreConfig config;
  config.objects = 2;
  config.delay = 0.1;
  config.horizon = 2.0;
  server::ServerCore core(config, policy);
  core.post(0, 0.25);
  EXPECT_THROW((void)core.checkpoint(), std::logic_error);
  core.drain();
  EXPECT_NO_THROW((void)core.checkpoint());
}

}  // namespace
}  // namespace smerge
