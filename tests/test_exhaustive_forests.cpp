// Exhaustive optimality anchor at the forest level.
//
// full_cost (Lemma 9 + Theorem 12) minimizes over *unconstrained* merge
// trees; physical schedules additionally require every stream length to
// fit the media ("L-trees", cf. Lemma 15's assumption). This suite
// enumerates every forest — all block partitions x all Catalan-many trees
// per block, keeping only feasible trees — and checks that the honest
// feasible optimum coincides with the closed-form F(L,n): the L-tree
// constraint never costs anything at the optimum.
#include <gtest/gtest.h>

#include <limits>

#include "core/full_cost.h"
#include "core/tree_builder.h"

namespace smerge {
namespace {

// Minimum merge cost over *feasible* trees of the given size (INF when no
// feasible tree exists, e.g. size > L).
Cost feasible_tree_minimum(Index size, Index media_length, Model model) {
  if (size > media_length) return std::numeric_limits<Cost>::max();
  Cost best = std::numeric_limits<Cost>::max();
  enumerate_merge_trees(size, [&](const MergeTree& t) {
    if (t.feasible(media_length, model)) {
      best = std::min(best, t.merge_cost(model));
    }
  });
  return best;
}

// Exhaustive feasible forest optimum by partition DP over the per-size
// feasible tree minima.
Cost feasible_forest_minimum(Index media_length, Index n, Model model) {
  std::vector<Cost> tree_min(static_cast<std::size_t>(std::min(n, media_length)) + 1,
                             std::numeric_limits<Cost>::max());
  for (Index b = 1; b <= std::min(n, media_length); ++b) {
    tree_min[static_cast<std::size_t>(b)] = feasible_tree_minimum(b, media_length, model);
  }
  std::vector<Cost> g(static_cast<std::size_t>(n) + 1,
                      std::numeric_limits<Cost>::max());
  g[0] = 0;
  for (Index i = 1; i <= n; ++i) {
    for (Index b = 1; b <= std::min(i, media_length); ++b) {
      const Cost tree = tree_min[static_cast<std::size_t>(b)];
      const Cost prev = g[static_cast<std::size_t>(i - b)];
      if (tree == std::numeric_limits<Cost>::max() ||
          prev == std::numeric_limits<Cost>::max()) {
        continue;
      }
      g[static_cast<std::size_t>(i)] =
          std::min(g[static_cast<std::size_t>(i)], prev + media_length + tree);
    }
  }
  return g[static_cast<std::size_t>(n)];
}

class ExhaustiveForests : public ::testing::TestWithParam<std::tuple<Index, Index>> {};

TEST_P(ExhaustiveForests, FeasibleOptimumEqualsClosedFormReceiveTwo) {
  const auto [L, n] = GetParam();
  EXPECT_EQ(feasible_forest_minimum(L, n, Model::kReceiveTwo), full_cost(L, n))
      << "L=" << L << " n=" << n;
}

TEST_P(ExhaustiveForests, FeasibleOptimumEqualsClosedFormReceiveAll) {
  const auto [L, n] = GetParam();
  EXPECT_EQ(feasible_forest_minimum(L, n, Model::kReceiveAll),
            full_cost(L, n, Model::kReceiveAll))
      << "L=" << L << " n=" << n;
}

INSTANTIATE_TEST_SUITE_P(
    SmallGrid, ExhaustiveForests,
    ::testing::Combine(::testing::Values<Index>(2, 3, 4, 5, 7, 8),
                       ::testing::Range<Index>(1, 11)));

TEST(ExhaustiveForests, UniversalVerifierAcceptsEveryFeasibleTree) {
  // The strongest oracle wiring available: enumerate *every* merge tree
  // on n arrivals and check that each feasible one round-trips through
  // the canonical IR with a clean verify and the exact legacy costs.
  for (const Index n : {1, 2, 3, 5, 7, 8}) {
    const Index L = n + 1;  // every tree fits; lengths still prune some
    Index feasible = 0;
    enumerate_merge_trees(n, [&](const MergeTree& t) {
      if (!t.feasible(L)) return;
      ++feasible;
      const plan::MergePlan p = t.to_plan(L);
      const plan::PlanReport report = plan::verify(p);
      EXPECT_TRUE(report.ok) << t.to_string() << ": " << report.first_error;
      EXPECT_DOUBLE_EQ(report.total_cost,
                       static_cast<double>(L + t.merge_cost()));
    });
    EXPECT_GT(feasible, 0) << n;
  }
}

TEST(ExhaustiveForests, ConstraintBitesForSingleTreesNotForests) {
  // The constraint is non-trivial: at L = n = 8 the unconstrained optimal
  // tree itself is infeasible (the Fibonacci tree's stream 5 has Lemma-1
  // length 9 > 8), so the best feasible *single tree* costs more than
  // M(8) = 21...
  EXPECT_FALSE(optimal_merge_tree(8).feasible(8));
  EXPECT_EQ(feasible_tree_minimum(8, 8, Model::kReceiveTwo), merge_cost(8) + 1);
  // ...but the *forest* optimum never wants such a tree: F(8,8) = 28 uses
  // two 4-trees (8 + M(8) = 29 would lose even unconstrained).
  EXPECT_EQ(full_cost(8, 8), 28);
  EXPECT_EQ(feasible_forest_minimum(8, 8, Model::kReceiveTwo), 28);
}

}  // namespace
}  // namespace smerge
