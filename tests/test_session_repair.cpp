// Tests for the session-lifecycle layer: in-place SessionPlan repair
// against the replay-from-scratch oracle over the PR-2 fuzz corpus,
// ledger retraction against a fresh rebuild, chunk-granular
// verification, churn workload generation, and engine-level shard
// determinism under churn.
#include "core/plan_repair.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <stdexcept>
#include <vector>

#include "core/plan.h"
#include "merging/dyadic.h"
#include "merging/optimal_general.h"
#include "online/policy.h"
#include "server/channel_ledger.h"
#include "sim/engine.h"
#include "sim/workload.h"
#include "util/rng.h"

namespace smerge {
namespace {

using plan::Invariant;
using plan::MergePlan;
using plan::SessionPlan;

struct ChurnEvent {
  bool is_seek = false;
  Index stream = -1;
  double at = 0.0;
};

/// Roughly half the streams get one churn event each (seeks make up
/// ~30%), at a wall time inside the stream's own transmission window.
std::vector<ChurnEvent> make_churn(const MergePlan& plan, std::uint64_t seed) {
  util::SplitMix64 rng(seed);
  std::vector<ChurnEvent> events;
  for (Index i = 0; i < plan.size(); ++i) {
    if (rng.next_double() >= 0.5) continue;
    const auto u = static_cast<std::size_t>(i);
    ChurnEvent e;
    e.stream = i;
    e.is_seek = rng.next_double() < 0.3;
    e.at = plan.start()[u] +
           rng.next_double() * std::max(plan.length()[u], 1e-12);
    events.push_back(e);
  }
  std::sort(events.begin(), events.end(),
            [](const ChurnEvent& a, const ChurnEvent& b) {
              if (a.at != b.at) return a.at < b.at;
              return a.stream < b.stream;
            });
  return events;
}

/// Applies one event and checks every oracle: bit-equality with the
/// full-recompute replay, verifier approval of the snapshot under the
/// active mask, and the incrementally maintained cost.
void apply_and_check(SessionPlan& session, const MergePlan& base,
                     const ChurnEvent& e, const char* context) {
  if (e.is_seek) {
    session.seek(e.stream, e.at);
  } else {
    session.abandon(e.stream, e.at);
  }
  const std::vector<double> reference = session.reference_lengths();
  const auto lengths = session.lengths();
  ASSERT_EQ(lengths.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    // Same formulas, same application order: bit-equal, not just close.
    ASSERT_EQ(lengths[i], reference[i])
        << context << ": stream " << i << " after "
        << (e.is_seek ? "seek" : "abandon") << " of " << e.stream;
  }
  double sum = 0.0;
  for (const double l : lengths) sum += l;
  EXPECT_NEAR(session.total_cost(), sum, 1e-9 * std::max(1.0, sum)) << context;
  const plan::PlanReport report =
      plan::verify(session.snapshot(), base.model(), {session.active_mask()});
  EXPECT_TRUE(report.ok) << context << ": " << report.first_error;
}

TEST(SessionRepair, FuzzedCorpusMatchesReplayAndVerifies) {
  // The PR-2 fuzz corpus (same generator as test_plan.cpp: 180 trials x
  // 3 media lengths, 540 instances), each put through random
  // abandon/seek churn with every oracle checked after every event.
  std::mt19937_64 rng(20260728);
  std::uniform_int_distribution<std::size_t> size_dist(0, 24);
  std::uniform_real_distribution<double> time_dist(0.0, 8.0);
  Index abandons = 0;
  Index seeks = 0;
  Index reroots = 0;
  for (int trial = 0; trial < 180; ++trial) {
    const std::size_t n = size_dist(rng);
    std::vector<double> t(n);
    for (double& x : t) x = time_dist(rng);
    std::sort(t.begin(), t.end());
    t.erase(std::unique(t.begin(), t.end()), t.end());
    for (const double L : {1e-6, 0.75, 100.0}) {
      const MergePlan base = merging::optimal_general_forest(t, L).forest.to_plan();
      SessionPlan session(base);
      const std::uint64_t seed =
          0x5e55'0000ULL + static_cast<std::uint64_t>(trial) * 3 +
          static_cast<std::uint64_t>(L > 1.0);
      const std::string context =
          "trial=" + std::to_string(trial) + " L=" + std::to_string(L);
      for (const ChurnEvent& e : make_churn(base, seed)) {
        apply_and_check(session, base, e, context.c_str());
      }
      abandons += session.stats().abandons;
      seeks += session.stats().seeks;
      reroots += session.stats().reroots;
      EXPECT_EQ(session.stats().abandons + session.stats().seeks,
                static_cast<Index>(session.size()) -
                    static_cast<Index>(std::count(
                        session.active_mask().begin(),
                        session.active_mask().end(), std::uint8_t{1})) +
                    session.stats().seeks)
          << context;  // exactly the abandoned clients are inactive
    }
  }
  // The corpus must actually exercise the interesting paths.
  EXPECT_GT(abandons, 500);
  EXPECT_GT(seeks, 200);
  EXPECT_GT(reroots, 50);
}

TEST(SessionRepair, AbandonedLeafTruncatesAtTheWallClock) {
  plan::PlanBuilder builder(1.0);
  const Index root = builder.add_stream(0.0, -1);
  const Index leaf = builder.add_stream(0.1, root);
  const MergePlan base = builder.build();
  const double old_length = base.length()[1];
  ASSERT_GT(old_length, 0.05);

  SessionPlan session(base);
  session.abandon(leaf, 0.1 + 0.05);
  // The leaf lost its only viewer: transmitted history stays (0.05 of
  // it), the untransmitted tail is cancelled.
  EXPECT_DOUBLE_EQ(session.lengths()[1], 0.05);
  EXPECT_FALSE(session.active(leaf));
  EXPECT_TRUE(session.active(root));
  ASSERT_EQ(session.edits().size(), 1u);
  EXPECT_EQ(session.edits()[0].stream, leaf);
  EXPECT_DOUBLE_EQ(session.edits()[0].old_end, 0.1 + old_length);
  EXPECT_DOUBLE_EQ(session.edits()[0].new_end, 0.15);
  EXPECT_FALSE(session.edits()[0].reroot);
  EXPECT_EQ(session.stats().truncations, 1);
  EXPECT_NEAR(session.stats().retracted, old_length - 0.05, 1e-12);
  const plan::PlanReport report =
      plan::verify(session.snapshot(), base.model(), {session.active_mask()});
  EXPECT_TRUE(report.ok) << report.first_error;
}

TEST(SessionRepair, SeekRerootsAndExtendsToTheFullMedia) {
  plan::PlanBuilder builder(1.0);
  const Index root = builder.add_stream(0.0, -1);
  const Index mid = builder.add_stream(0.1, root);
  builder.add_stream(0.15, mid);
  const MergePlan base = builder.build();

  SessionPlan session(base);
  session.seek(mid, 0.2);
  // The subtree detached: its stream becomes a root carrying the full
  // media, the grandchild still rides it.
  const MergePlan repaired = session.snapshot();
  EXPECT_EQ(repaired.parent()[1], -1);
  EXPECT_EQ(repaired.parent()[2], 1);
  EXPECT_DOUBLE_EQ(session.lengths()[1], 1.0);
  EXPECT_EQ(session.stats().reroots, 1);
  EXPECT_EQ(session.stats().seeks, 1);
  EXPECT_GT(session.stats().extended, 0.0);
  bool saw_reroot_edit = false;
  for (const plan::StreamEdit& edit : session.edits()) {
    saw_reroot_edit = saw_reroot_edit || (edit.stream == mid && edit.reroot);
  }
  EXPECT_TRUE(saw_reroot_edit);
  const plan::PlanReport report =
      plan::verify(repaired, base.model(), {session.active_mask()});
  EXPECT_TRUE(report.ok) << report.first_error;
  // A root seek has nothing to detach: the plan is unchanged.
  SessionPlan root_session(base);
  root_session.seek(root, 0.2);
  EXPECT_EQ(root_session.stats().reroots, 0);
  EXPECT_TRUE(root_session.edits().empty());
}

TEST(SessionRepair, ChurnOnAChunkedPlanKeepsTheTimelineLegal) {
  plan::PlanBuilder builder(1.0);
  builder.set_chunking({.base = 0.05});
  const Index root = builder.add_stream(0.0, -1);
  const Index mid = builder.add_stream(0.04, root);
  builder.add_stream(0.07, mid);
  const MergePlan base = builder.build();
  ASSERT_TRUE(base.chunked());
  ASSERT_TRUE(plan::verify(base).ok);

  SessionPlan session(base);
  session.abandon(2, 0.09);
  session.seek(mid, 0.12);
  const MergePlan repaired = session.snapshot();
  EXPECT_TRUE(repaired.chunked());
  const plan::PlanReport report =
      plan::verify(repaired, base.model(), {session.active_mask()});
  EXPECT_TRUE(report.ok) << report.first_error;
}

TEST(SessionRepair, Validation) {
  plan::PlanBuilder builder(1.0);
  const Index root = builder.add_stream(0.0, -1);
  builder.add_stream(0.1, root);
  const MergePlan base = builder.build();
  SessionPlan session(base);
  EXPECT_THROW(session.abandon(7, 0.5), std::out_of_range);
  EXPECT_THROW(session.abandon(-1, 0.5), std::out_of_range);
  EXPECT_THROW(session.abandon(1, -0.5), std::invalid_argument);
  session.abandon(1, 0.2);
  EXPECT_THROW(session.abandon(1, 0.3), std::invalid_argument);
  EXPECT_THROW(session.seek(1, 0.3), std::invalid_argument);
}

TEST(ChunkVerify, OversizedSteadyChunksMissTheirDeadlines) {
  // With the derived cap (= the start buffer) the timeline is legal;
  // an explicit cap above the start buffer cannot complete in time.
  plan::PlanBuilder builder(1.0);
  builder.set_chunking({.base = 0.05});
  builder.add_stream(0.0, -1);
  const MergePlan good = builder.build();
  const plan::PlanReport good_report = plan::verify(good);
  EXPECT_TRUE(good_report.ok) << good_report.first_error;
  // Start buffer = first two chunks = 0.05 + 0.10.
  EXPECT_NEAR(good_report.max_chunk_startup, 0.15, 1e-12);
  EXPECT_GT(good_report.chunk_peak_buffer, 0.0);

  plan::PlanBuilder bad_builder(1.0);
  bad_builder.set_chunking({.base = 0.05, .cap = 0.5});
  bad_builder.add_stream(0.0, -1);
  const plan::PlanReport bad_report = plan::verify(bad_builder.build());
  EXPECT_FALSE(bad_report.ok);
  ASSERT_FALSE(bad_report.diagnostics.empty());
  bool saw_deadline = false;
  for (const plan::PlanDiagnostic& d : bad_report.diagnostics) {
    if (d.invariant != Invariant::kChunkDeadline) continue;
    saw_deadline = true;
    EXPECT_EQ(d.stream, 0);
    EXPECT_GT(d.observed, d.expected);
    EXPECT_NE(d.message.find("deadline"), std::string::npos);
  }
  EXPECT_TRUE(saw_deadline);
  EXPECT_EQ(bad_report.first_error, bad_report.diagnostics.front().message);
}

TEST(ChannelLedger, MoveEndMatchesAFreshRebuild) {
  // Random intervals, then random retractions/extensions through
  // move_end; every query must agree with a ledger built directly from
  // the final intervals (the brute-force recount).
  util::SplitMix64 rng(0xABCDEF);
  constexpr double kSpan = 100.0;
  struct Interval {
    double start, end;
    Index object;
  };
  std::vector<Interval> intervals;
  server::ChannelLedger mutated(kSpan, 1.0);
  for (int i = 0; i < 400; ++i) {
    const double start = rng.next_double() * (kSpan - 1.0);
    const double end = start + 1e-3 + rng.next_double() * (kSpan - start - 1e-3);
    const auto object = static_cast<Index>(i % 7);
    intervals.push_back({start, end, object});
    mutated.add_interval(start, end, object);
  }
  for (int i = 0; i < 150; ++i) {
    auto& iv = intervals[static_cast<std::size_t>(rng.next_double() *
                                                  0.999 * intervals.size())];
    const bool retract = rng.next_double() < 0.7;
    const double new_end =
        retract ? iv.start + rng.next_double() * (iv.end - iv.start)
                : iv.end + rng.next_double() * (kSpan - iv.end);
    mutated.move_end(iv.end, new_end, iv.object);
    iv.end = new_end;
  }
  server::ChannelLedger fresh(kSpan, 1.0);
  for (const Interval& iv : intervals) {
    fresh.add_interval(iv.start, iv.end, iv.object);
  }

  EXPECT_EQ(mutated.peak(), fresh.peak());
  for (int i = 0; i < 64; ++i) {
    const double t = rng.next_double() * kSpan;
    Index brute = 0;
    for (const Interval& iv : intervals) {
      brute += (iv.start <= t && t < iv.end) ? 1 : 0;
    }
    EXPECT_EQ(mutated.occupancy_at(t), brute) << "t=" << t;
    EXPECT_EQ(fresh.occupancy_at(t), brute) << "t=" << t;
    const double b = t + rng.next_double() * (kSpan - t);
    EXPECT_EQ(mutated.max_over(t, b), fresh.max_over(t, b));
  }
  for (const Index capacity : {1, 2, 4, 8, 64}) {
    EXPECT_EQ(mutated.capacity_violations(capacity),
              fresh.capacity_violations(capacity))
        << "capacity=" << capacity;
  }
}

TEST(ChannelLedger, RetractionCompensationIsNotAStreamStart) {
  // [0,10) and [1,10) under capacity 1: the second start is saturated.
  // Retracting the first stream to end at 5 appends a +1 compensation
  // at 10 — which must never be counted as a new saturated start.
  server::ChannelLedger ledger(20.0, 1.0);
  ledger.add_interval(0.0, 10.0, 0);
  ledger.add_interval(1.0, 10.0, 1);
  EXPECT_EQ(ledger.capacity_violations(1), 1);
  ledger.move_end(10.0, 5.0, 0);
  EXPECT_EQ(ledger.capacity_violations(1), 1);
  EXPECT_EQ(ledger.occupancy_at(7.0), 1);
  EXPECT_EQ(ledger.occupancy_at(3.0), 2);
  // Four interval events plus the compensation pair.
  EXPECT_EQ(ledger.events(), 6);
}

TEST(Workload, SessionChurnRidesItsOwnSubstream) {
  sim::WorkloadConfig config;
  config.objects = 4;
  config.mean_gap = 0.01;
  config.horizon = 3.0;
  config.seed = 99;
  sim::SessionChurnConfig churn{.abandon_rate = 0.3, .pause_rate = 0.4,
                                .seek_rate = 0.3};
  sim::SessionChurnConfig heavy{.abandon_rate = 1.0, .pause_rate = 1.0,
                                .seek_rate = 1.0};
  for (Index object = 0; object < config.objects; ++object) {
    const std::vector<double> arrivals = sim::generate_arrivals(config, object);
    const std::vector<SessionTrace> sessions =
        sim::generate_sessions(config, churn, object);
    const std::vector<SessionTrace> stormy =
        sim::generate_sessions(config, heavy, object);
    // Session i's arrival is generate_arrivals[i] bit-for-bit, at any
    // churn setting: churn draws never touch the arrival substream.
    ASSERT_EQ(sessions.size(), arrivals.size());
    ASSERT_EQ(stormy.size(), arrivals.size());
    for (std::size_t i = 0; i < arrivals.size(); ++i) {
      EXPECT_EQ(sessions[i].arrival, arrivals[i]);
      EXPECT_EQ(stormy[i].arrival, arrivals[i]);
    }
    for (const SessionTrace& s : stormy) {
      // All three behaviours fire at rate 1; the abandon ends the
      // event list and positions are sorted.
      ASSERT_FALSE(s.events.empty());
      EXPECT_EQ(s.events.back().type, SessionEventType::kAbandon);
      double position = 0.0;
      for (const SessionEvent& e : s.events) {
        EXPECT_GE(e.position, position);
        EXPECT_LE(e.position, 1.0);
        position = e.position;
        if (e.type == SessionEventType::kPause) {
          EXPECT_GT(e.value, 0.0);
        }
        if (e.type == SessionEventType::kSeek) {
          EXPECT_GE(e.value, 0.0);
          EXPECT_LE(e.value, 1.0);
        }
      }
    }
  }
  // Disabled churn degenerates to plain arrivals with no events.
  const std::vector<SessionTrace> quiet =
      sim::generate_sessions(config, sim::SessionChurnConfig{}, 0);
  for (const SessionTrace& s : quiet) EXPECT_TRUE(s.events.empty());
}

TEST(Workload, ChurnValidation) {
  sim::SessionChurnConfig churn;
  EXPECT_NO_THROW(sim::validate(churn));
  churn.abandon_rate = -0.1;
  EXPECT_THROW(sim::validate(churn), std::invalid_argument);
  churn.abandon_rate = 1.5;
  EXPECT_THROW(sim::validate(churn), std::invalid_argument);
  churn.abandon_rate = 0.5;
  churn.pause_rate = 2.0;
  EXPECT_THROW(sim::validate(churn), std::invalid_argument);
  churn.pause_rate = 0.5;
  churn.seek_rate = -1.0;
  EXPECT_THROW(sim::validate(churn), std::invalid_argument);
  churn.seek_rate = 0.5;
  churn.mean_pause = 0.0;
  EXPECT_THROW(sim::validate(churn), std::invalid_argument);
}

sim::EngineConfig churn_config() {
  sim::EngineConfig config;
  config.workload.process = sim::ArrivalProcess::kFlashCrowd;
  config.workload.objects = 12;
  config.workload.zipf_exponent = 1.0;
  config.workload.mean_gap = 0.004;
  config.workload.horizon = 6.0;
  config.workload.seed = 23;
  config.workload.burst_start = 1.0;
  config.workload.burst_duration = 1.0;
  config.workload.burst_multiplier = 8.0;
  config.delay = 0.02;
  config.churn = {.abandon_rate = 0.25, .pause_rate = 0.2, .seek_rate = 0.1};
  return config;
}

TEST(EngineChurn, BitIdenticalAcrossShardWidths) {
  GreedyMergePolicy one_policy(merging::DyadicParams{}, false);
  sim::EngineConfig config = churn_config();
  config.threads = 1;
  const sim::EngineResult serial = run_engine(config, one_policy);
  for (const unsigned threads : {2u, 4u}) {
    GreedyMergePolicy policy(merging::DyadicParams{}, false);
    config.threads = threads;
    const sim::EngineResult sharded = run_engine(config, policy);
    EXPECT_EQ(serial.total_arrivals, sharded.total_arrivals);
    EXPECT_EQ(serial.total_streams, sharded.total_streams);
    EXPECT_EQ(serial.streams_served, sharded.streams_served);
    EXPECT_EQ(serial.peak_concurrency, sharded.peak_concurrency);
    EXPECT_EQ(serial.wait.mean, sharded.wait.mean);
    EXPECT_EQ(serial.wait.max, sharded.wait.max);
    EXPECT_EQ(serial.total_sessions, sharded.total_sessions);
    EXPECT_EQ(serial.session_pauses, sharded.session_pauses);
    EXPECT_EQ(serial.session_seeks, sharded.session_seeks);
    EXPECT_EQ(serial.session_abandons, sharded.session_abandons);
    EXPECT_EQ(serial.plan_truncations, sharded.plan_truncations);
    EXPECT_EQ(serial.plan_reroots, sharded.plan_reroots);
    EXPECT_EQ(serial.retracted_cost, sharded.retracted_cost);
    EXPECT_EQ(serial.extended_cost, sharded.extended_cost);
    EXPECT_EQ(serial.per_object, sharded.per_object);
  }
}

TEST(EngineChurn, RepairAccountingIsConsistent) {
  GreedyMergePolicy policy(merging::DyadicParams{}, false);
  sim::EngineConfig config = churn_config();
  const sim::EngineResult churned = run_engine(config, policy);
  // Every arrival is a session, and the flash crowd is large enough to
  // exercise every behaviour and repair kind.
  EXPECT_EQ(churned.total_sessions, churned.total_arrivals);
  EXPECT_GT(churned.session_abandons, 0);
  EXPECT_GT(churned.session_pauses, 0);
  EXPECT_GT(churned.session_seeks, 0);
  EXPECT_GT(churned.plan_truncations, 0);
  EXPECT_GT(churned.retracted_cost, 0.0);
  // Totals are exactly the per-object sums.
  Index sessions = 0;
  Index truncations = 0;
  double retracted = 0.0;
  double extended = 0.0;
  for (const sim::ObjectOutcome& o : churned.per_object) {
    sessions += o.sessions;
    truncations += o.plan_truncations;
    retracted += o.retracted_cost;
    extended += o.extended_cost;
  }
  EXPECT_EQ(sessions, churned.total_sessions);
  EXPECT_EQ(truncations, churned.plan_truncations);
  EXPECT_NEAR(retracted, churned.retracted_cost, 1e-9);
  EXPECT_NEAR(extended, churned.extended_cost, 1e-9);

  // Churn never perturbs admissions, so the served cost differs from
  // the churn-free run by exactly the repair delta.
  GreedyMergePolicy plain_policy(merging::DyadicParams{}, false);
  sim::EngineConfig plain = config;
  plain.churn = {};
  const sim::EngineResult baseline = run_engine(plain, plain_policy);
  EXPECT_EQ(baseline.total_arrivals, churned.total_arrivals);
  EXPECT_EQ(baseline.total_streams, churned.total_streams);
  EXPECT_EQ(baseline.wait.mean, churned.wait.mean);
  EXPECT_NEAR(churned.streams_served,
              baseline.streams_served - churned.retracted_cost +
                  churned.extended_cost,
              1e-6);
  EXPECT_EQ(baseline.total_sessions, 0);
  EXPECT_EQ(baseline.plan_truncations, 0);
}

}  // namespace
}  // namespace smerge
