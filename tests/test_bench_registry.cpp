// Smoke test of the benchmark registry: every registered bench must run
// in --quick mode, succeed, emit every series it declared (each with at
// least two points), and produce a JSON document that parses.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "bench/registry.h"
#include "bench/runner.h"
#include "util/json_writer.h"

namespace {

using smerge::bench::BenchContext;
using smerge::bench::BenchRegistry;
using smerge::bench::BenchRun;
using smerge::bench::BenchSpec;

BenchContext quick_context() {
  BenchContext ctx;
  ctx.quick = true;
  ctx.threads = 2;
  return ctx;
}

std::vector<BenchRun> run_all_quick() {
  static const std::vector<BenchRun> runs = [] {
    std::vector<BenchRun> out;
    for (const BenchSpec* spec : BenchRegistry::instance().all()) {
      out.push_back(smerge::bench::run_bench(*spec, quick_context()));
    }
    return out;
  }();
  return runs;
}

TEST(BenchRegistry, AllMigratedBenchesAreRegistered) {
  const std::vector<std::string> expected = {
      "abl_buffer_sweep",     "abl_dyadic_params",
      "abl_general_offline",  "abl_hybrid",
      "abl_multi_object",     "cpx_general",
      "cpx_general_scaling",  "cpx_offline",
      "cpx_online",           "cpx_parallel_scaling",
      "cpx_plan_ops",
      "fig01_delay_sweep",
      "fig08_root_intervals", "fig09_online_ratio",
      "fig11_constant_arrivals", "fig12_poisson_arrivals",
      "net_loopback_scale",
      "sim_multi_object_scale", "sim_recovery",
      "sim_server_core_hotpath", "sim_server_core_scale",
      "sim_session_churn",    "sim_workload_mix",
      "tab01_merge_cost",     "tab02_full_cost",
      "tab03_fibonacci_trees", "thm08_asymptotics",
      "thm13_full_cost_asymptotics", "thm14_batching_ratio",
      "thm19_receive_all_ratio", "thm22_online_bound"};
  EXPECT_EQ(BenchRegistry::instance().size(), expected.size());
  for (const std::string& name : expected) {
    EXPECT_NE(BenchRegistry::instance().find(name), nullptr)
        << "missing bench " << name;
  }
}

TEST(BenchRegistry, SpecsAreWellFormed) {
  for (const BenchSpec* spec : BenchRegistry::instance().all()) {
    EXPECT_FALSE(spec->name.empty());
    EXPECT_FALSE(spec->description.empty()) << spec->name;
    EXPECT_FALSE(spec->series.empty()) << spec->name;
    EXPECT_TRUE(spec->run != nullptr) << spec->name;
  }
}

TEST(BenchRegistry, QuickRunSucceedsEverywhere) {
  for (const BenchRun& run : run_all_quick()) {
    EXPECT_TRUE(run.error.empty())
        << run.spec->name << " threw: " << run.error;
    EXPECT_TRUE(run.result.ok) << run.spec->name << " reported failure";
  }
}

TEST(BenchRegistry, DeclaredSeriesAreEmittedWithData) {
  for (const BenchRun& run : run_all_quick()) {
    ASSERT_TRUE(run.error.empty()) << run.spec->name;
    for (const std::string& declared : run.spec->series) {
      const auto it = std::find_if(
          run.result.series.begin(), run.result.series.end(),
          [&declared](const auto& s) { return s.name == declared; });
      ASSERT_NE(it, run.result.series.end())
          << run.spec->name << " did not emit declared series " << declared;
      EXPECT_GE(it->values.size(), 2u)
          << run.spec->name << " series " << declared
          << " must keep >= 2 points even in --quick mode";
    }
  }
}

TEST(BenchRegistry, DataSeriesDeterministicAcrossThreadCounts) {
  // The ThreadPool fan-out must not change what a bench computes: every
  // non-timing series of the parallel_for-heavy data benches is
  // bit-identical under --threads=1 and --threads=4. (Timing series
  // cpx_* emit are inherently run-dependent and excluded.)
  for (const std::string name :
       {"abl_general_offline", "fig12_poisson_arrivals", "tab02_full_cost"}) {
    const BenchSpec* spec = BenchRegistry::instance().find(name);
    ASSERT_NE(spec, nullptr) << name;
    BenchContext serial = quick_context();
    serial.threads = 1;
    BenchContext pooled = quick_context();
    pooled.threads = 4;
    const BenchRun a = smerge::bench::run_bench(*spec, serial);
    const BenchRun b = smerge::bench::run_bench(*spec, pooled);
    ASSERT_TRUE(a.error.empty()) << name << ": " << a.error;
    ASSERT_TRUE(b.error.empty()) << name << ": " << b.error;
    ASSERT_EQ(a.result.series.size(), b.result.series.size()) << name;
    for (std::size_t s = 0; s < a.result.series.size(); ++s) {
      EXPECT_EQ(a.result.series[s].name, b.result.series[s].name) << name;
      EXPECT_EQ(a.result.series[s].values, b.result.series[s].values)
          << name << " series " << a.result.series[s].name
          << " differs between --threads=1 and --threads=4";
    }
  }
}

TEST(BenchRegistry, JsonDocumentParsesAndContainsSeries) {
  const std::vector<BenchRun> runs = run_all_quick();
  const std::string doc = smerge::bench::to_json(runs, quick_context());

  const auto error = smerge::util::json_error(doc);
  EXPECT_FALSE(error.has_value()) << *error;

  EXPECT_NE(doc.find("\"schema\": \"smerge-bench-v1\""), std::string::npos);
  for (const BenchRun& run : runs) {
    EXPECT_NE(doc.find('"' + run.spec->name + '"'), std::string::npos)
        << run.spec->name;
    for (const std::string& declared : run.spec->series) {
      EXPECT_NE(doc.find('"' + declared + "\": ["), std::string::npos)
          << run.spec->name << " series " << declared << " absent from JSON";
    }
  }
}

}  // namespace
