// The hot-path variants' one contract: pinning, SIMD ledger walks and
// the sealed admit fast path are pure mechanism — for every {pinned x
// simd x fast-path} combination, at every shard width, a posted run's
// checkpoint bytes and finished snapshot are identical to the serial
// generic/scalar/unpinned ingest_trace baseline. Exercised over the
// PR-2 540-instance corpus (180 traces x 3 policy families,
// round-robining widths and combos) plus a full 24-point cross-product
// on fixed instances.
#include <algorithm>
#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "online/policy.h"
#include "server/server_core.h"
#include "util/simd.h"

namespace {

using namespace smerge;

// The PR-2 fuzz corpus generator (test_plan.cpp / test_recovery.cpp):
// 180 trials of sorted unique arrival times on [0, 8).
std::vector<std::vector<double>> corpus_traces() {
  std::mt19937_64 rng(20260728);
  std::uniform_int_distribution<std::size_t> size_dist(0, 24);
  std::uniform_real_distribution<double> time_dist(0.0, 8.0);
  std::vector<std::vector<double>> traces;
  traces.reserve(180);
  for (int trial = 0; trial < 180; ++trial) {
    const std::size_t n = size_dist(rng);
    std::vector<double> t(n);
    for (double& x : t) x = time_dist(rng);
    std::sort(t.begin(), t.end());
    t.erase(std::unique(t.begin(), t.end()), t.end());
    traces.push_back(std::move(t));
  }
  return traces;
}

struct Variant {
  bool pin = false;
  bool simd = false;
  bool fast = false;
};

constexpr Variant kVariants[] = {
    {false, false, false}, {false, false, true}, {false, true, false},
    {false, true, true},   {true, false, false}, {true, false, true},
    {true, true, false},   {true, true, true},
};

constexpr unsigned kWidths[] = {1, 2, 4};

// RAII guard: the scalar toggle is process-global, so every run resets
// it even when an assertion throws.
struct ScalarGuard {
  explicit ScalarGuard(bool scalar) { util::simd::force_scalar(scalar); }
  ~ScalarGuard() { util::simd::force_scalar(false); }
};

std::unique_ptr<OnlinePolicy> make_policy(int family) {
  switch (family) {
    case 0: return std::make_unique<DelayGuaranteedPolicy>();
    case 1: return std::make_unique<BatchingPolicy>();
    // kNone: the sealed path must fall back to the virtual hop and
    // still match — the control arm of the cross-product.
    default:
      return std::make_unique<GreedyMergePolicy>(merging::DyadicParams{},
                                                 /*batched=*/true);
  }
}

server::ServerCoreConfig base_config(unsigned shards) {
  server::ServerCoreConfig config;
  config.objects = 3;
  config.delay = 0.25;  // 1/L with L = 4, so the DG family is happy
  config.horizon = 8.0;
  config.shards = shards;
  return config;
}

void expect_same_snapshot(const server::Snapshot& a, const server::Snapshot& b,
                          const std::string& context) {
  EXPECT_EQ(a.total_arrivals, b.total_arrivals) << context;
  EXPECT_EQ(a.total_streams, b.total_streams) << context;
  EXPECT_EQ(a.streams_served, b.streams_served) << context;
  EXPECT_EQ(a.wait.mean, b.wait.mean) << context;
  EXPECT_EQ(a.wait.p50, b.wait.p50) << context;
  EXPECT_EQ(a.wait.p95, b.wait.p95) << context;
  EXPECT_EQ(a.wait.p99, b.wait.p99) << context;
  EXPECT_EQ(a.wait.max, b.wait.max) << context;
  EXPECT_EQ(a.peak_concurrency, b.peak_concurrency) << context;
  EXPECT_EQ(a.guarantee_violations, b.guarantee_violations) << context;
  EXPECT_EQ(a.per_object, b.per_object) << context;
}

// The baseline everything must match: serial ingest_trace, generic
// virtual dispatch, scalar kernels, floating workers.
struct Reference {
  std::vector<std::uint8_t> checkpoint;
  server::Snapshot snapshot;
};

// Both runs deliver in the same two chunks (split at the global halfway
// index) with a drain after each: mid-run checkpoint bytes include the
// P2 percentile marker state, which folds waits in drain order — the
// cadence is part of the logical state (the WAL records every drain),
// so reference and variant must share it while everything else (serial
// vs posted, generic vs sealed, scalar vs SIMD, floating vs pinned)
// differs.
Reference reference_run(const std::vector<double>& times, int family,
                        unsigned shards) {
  const ScalarGuard guard(true);
  auto policy = make_policy(family);
  auto config = base_config(shards);
  config.fast_path = false;
  server::ServerCore core(config, *policy);
  const std::size_t half = times.size() / 2;
  for (const auto& [begin, end] :
       {std::pair<std::size_t, std::size_t>{0, half}, {half, times.size()}}) {
    std::vector<std::vector<double>> per_object(3);
    for (std::size_t i = begin; i < end; ++i) {
      per_object[i % 3].push_back(times[i]);
    }
    for (Index m = 0; m < 3; ++m) {
      core.ingest_trace(m, std::move(per_object[static_cast<std::size_t>(m)]));
    }
    core.drain();
  }
  Reference ref;
  ref.checkpoint = core.checkpoint();
  core.finish();
  ref.snapshot = core.take_snapshot();
  return ref;
}

// One posted run under a variant, byte-compared against the reference:
// checkpoint at the all-delivered quiescent point (the config echo pins
// the shard width, so the reference must share it), snapshot at finish.
void run_variant(const std::vector<double>& times, int family, unsigned shards,
                 const Variant& v, const Reference& ref,
                 const std::string& context) {
  const ScalarGuard guard(!v.simd);
  auto policy = make_policy(family);
  auto config = base_config(shards);
  config.fast_path = v.fast;
  config.pin_workers = v.pin;
  server::ServerCore core(config, *policy);
  if (v.fast && family < 2) {
    EXPECT_STREQ(core.admit_dispatch(),
                 family == 0 ? "sealed:dg-slot" : "sealed:batch-slot")
        << context;
  } else {
    EXPECT_STREQ(core.admit_dispatch(), "generic") << context;
  }
  std::size_t posted = 0;
  for (std::size_t i = 0; i < times.size(); ++i) {
    core.post(static_cast<Index>(i % 3), times[i]);
    if (++posted == times.size() / 2) core.drain();
  }
  core.drain();
  EXPECT_EQ(core.checkpoint(), ref.checkpoint) << context;
  core.finish();
  expect_same_snapshot(core.take_snapshot(), ref.snapshot, context);
}

std::string context_of(int instance, int family, unsigned shards,
                       const Variant& v) {
  return "instance=" + std::to_string(instance) +
         " family=" + std::to_string(family) +
         " shards=" + std::to_string(shards) + " pin=" + std::to_string(v.pin) +
         " simd=" + std::to_string(v.simd) + " fast=" + std::to_string(v.fast);
}

// 180 traces x 3 policy families = 540 instances; width and variant
// round-robin so every (width, variant) pair sees dozens of instances
// without running the full 24-point product 540 times.
TEST(HotpathVariants, CorpusCheckpointAndSnapshotByteIdentity) {
  const auto traces = corpus_traces();
  int instance = 0;
  for (int family = 0; family < 3; ++family) {
    for (const auto& times : traces) {
      const unsigned shards = kWidths[instance % 3];
      const Variant v = kVariants[static_cast<std::size_t>(instance) % 8];
      const Reference ref = reference_run(times, family, shards);
      run_variant(times, family, shards, v, ref,
                  context_of(instance, family, shards, v));
      ++instance;
    }
  }
  EXPECT_EQ(instance, 540);
}

// The full {pin x simd x fast} x width cross-product on fixed dense
// instances — every combination, not just the round-robin sample.
TEST(HotpathVariants, FullCrossProductOnFixedInstances) {
  const auto traces = corpus_traces();
  // The two densest corpus traces give every shard a nonempty mailbox
  // at width 4.
  std::vector<std::size_t> picks{0, 0};
  for (std::size_t i = 0; i < traces.size(); ++i) {
    if (traces[i].size() > traces[picks[0]].size()) {
      picks[1] = picks[0];
      picks[0] = i;
    } else if (traces[i].size() > traces[picks[1]].size()) {
      picks[1] = i;
    }
  }
  for (const std::size_t pick : picks) {
    const auto& times = traces[pick];
    ASSERT_GE(times.size(), 16u);
    for (int family = 0; family < 3; ++family) {
      for (const unsigned shards : kWidths) {
        const Reference ref = reference_run(times, family, shards);
        for (const Variant& v : kVariants) {
          run_variant(times, family, shards, v, ref,
                      context_of(static_cast<int>(pick), family, shards, v));
        }
      }
    }
  }
}

}  // namespace
