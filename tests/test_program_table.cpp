// Tests for the O(1) receiving-program lookup table and the event-driven
// Delay Guaranteed server (Section 4.2's simplicity claim, executable).
#include "online/program_table.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "online/server.h"
#include "schedule/playback.h"

namespace smerge {
namespace {

TEST(ProgramTable, MatchesPerClientPrograms) {
  // Table entries must equal freshly computed programs for every position
  // of a full block.
  const DelayGuaranteedOnline policy(15);
  const ProgramTable table(policy);
  ASSERT_EQ(table.block_size(), 8);
  std::vector<MergeTree> trees;
  trees.push_back(policy.template_tree());
  const MergeForest block(15, std::move(trees));
  for (Index a = 0; a < 8; ++a) {
    const ReceivingProgram fresh(block, a);
    EXPECT_EQ(table.lookup(a).blocks, fresh.receptions()) << "a=" << a;
    EXPECT_EQ(table.lookup(a).path, fresh.path()) << "a=" << a;
  }
}

TEST(ProgramTable, AbsoluteProgramsShiftByBlock) {
  const DelayGuaranteedOnline policy(15);
  const ProgramTable table(policy);
  // Slot 23 = block 2 (base 16) position 7: the client-H program shifted.
  const std::vector<Reception> abs = table.program_at(23);
  ASSERT_EQ(abs.size(), 3u);
  EXPECT_EQ(abs[0], (Reception{23, 1, 2}));
  EXPECT_EQ(abs[1], (Reception{21, 3, 9}));
  EXPECT_EQ(abs[2], (Reception{16, 10, 15}));
}

TEST(ProgramTable, AbsoluteProgramsMatchForestPrograms) {
  // Against the ground truth on a multi-block DG forest, including the
  // final partial block — the table is static, programs never change.
  const DelayGuaranteedOnline policy(15);
  const ProgramTable table(policy);
  const Index n = 21;  // 2 full blocks + partial block of 5
  const MergeForest forest = policy.forest(n);
  for (Index t = 0; t < n; ++t) {
    const ReceivingProgram fresh(forest, t);
    EXPECT_EQ(table.program_at(t), fresh.receptions()) << "t=" << t;
  }
}

TEST(ProgramTable, LookupValidation) {
  const ProgramTable table{DelayGuaranteedOnline(15)};
  EXPECT_THROW((void)table.lookup(-1), std::out_of_range);
  EXPECT_THROW((void)table.lookup(8), std::out_of_range);
  EXPECT_THROW(table.program_at(-1), std::out_of_range);
}

TEST(Server, WaitIsAlwaysWithinOneSlot) {
  DelayGuaranteedServer server(100, 0.01);
  double t = 0.0;
  for (int i = 0; i < 500; ++i) {
    t += 0.0137;  // irrational-ish stride hits many slot phases
    const ClientTicket ticket = server.admit(t);
    EXPECT_GT(ticket.wait, -1e-12);
    EXPECT_LE(ticket.wait, 0.01 + 1e-12);
    EXPECT_NEAR(ticket.playback_start, static_cast<double>(ticket.slot + 1) * 0.01,
                1e-12);
    // The ticket's program is a stable index into the table, valid for
    // the server's lifetime (never a pointer that growth could dangle).
    ASSERT_GE(ticket.program, 0);
    ASSERT_LT(ticket.program, server.programs().block_size());
  }
  EXPECT_EQ(server.clients(), 500);
}

TEST(Server, BoundaryArrivalJoinsStartingStream) {
  DelayGuaranteedServer server(100, 0.01);
  const ClientTicket ticket = server.admit(0.05);  // exactly slot 4's end
  EXPECT_EQ(ticket.slot, 4);
  EXPECT_NEAR(ticket.wait, 0.0, 1e-9);
}

TEST(Server, ProgramsComeFromTheTable) {
  DelayGuaranteedServer server(15, 1.0);
  const ClientTicket ticket = server.admit(6.5);  // slot 6, position 6
  EXPECT_EQ(ticket.slot, 6);
  EXPECT_EQ(ticket.program, 6);
  EXPECT_EQ(server.programs().lookup(ticket.program).blocks,
            server.programs().lookup(6).blocks);
}

TEST(Server, CostMatchesPolicy) {
  DelayGuaranteedServer server(15, 0.25);
  EXPECT_EQ(server.transmitted_units(16), server.policy().cost(16));
  EXPECT_EQ(server.transmitted_units(0), 0);
}

TEST(Server, RejectsOutOfOrderArrivals) {
  DelayGuaranteedServer server(15, 1.0);
  server.admit(5.0);
  EXPECT_THROW(server.admit(4.0), std::invalid_argument);
  EXPECT_THROW(server.admit(-1.0), std::invalid_argument);
  EXPECT_THROW(DelayGuaranteedServer(15, 0.0), std::invalid_argument);
}

TEST(Server, ServedProgramsPlayBackCorrectly) {
  // End to end: admit clients over three blocks, then verify each issued
  // program against the actual transmission schedule.
  const Index L = 15;
  DelayGuaranteedServer server(L, 1.0);
  const Index horizon = 20;
  std::vector<ClientTicket> tickets;
  for (double t = 0.4; t < static_cast<double>(horizon); t += 1.7) {
    tickets.push_back(server.admit(t));
  }
  const MergeForest forest = server.policy().forest(horizon);
  const StreamSchedule schedule(forest);
  for (const ClientTicket& ticket : tickets) {
    const ReceivingProgram fresh(forest, ticket.slot);
    const ClientReport report = verify_client(schedule, fresh, Model::kReceiveTwo);
    EXPECT_TRUE(report.ok) << report.error;
  }
}

}  // namespace
}  // namespace smerge
