// Slot-accurate playback verification.
//
// This is the substrate substituting for the paper's (simulated) multicast
// testbed: every client's receiving program is executed against the
// transmission schedule segment by segment, and the paper's correctness
// claims become checkable invariants:
//
//   1. the reception blocks partition the media segments [1, L];
//   2. every requested segment is actually transmitted by its source
//      stream (the Lemma-1 / Lemma-17 truncation suffices);
//   3. every segment is fully received no later than the end of its
//      playback slot (uninterrupted playback from the arrival time);
//   4. a client never listens to more streams at once than the model
//      allows (2 in the receive-two model);
//   5. the peak buffer occupancy equals Lemma 15's b(x) = min(d, L-d)
//      in the receive-two model;
//   6. streams are truncated tightly: no transmitted segment goes
//      unused unless the stream is a root (roots always carry the full
//      media for late tuners).
#ifndef SMERGE_SCHEDULE_PLAYBACK_H
#define SMERGE_SCHEDULE_PLAYBACK_H

#include <string>

#include "schedule/receiving_program.h"
#include "schedule/stream_schedule.h"

namespace smerge {

/// Verification outcome for a single client.
struct ClientReport {
  Index arrival = 0;
  bool ok = true;
  std::string error;          ///< first violated invariant, empty when ok
  Index max_concurrent = 0;   ///< peak streams listened to in one slot
  Index peak_buffer = 0;      ///< peak fully-received-but-unplayed segments
  Index completion_slot = 0;  ///< first slot boundary with all L segments
};

/// Executes one client's program against the schedule and checks
/// invariants 1-5 above.
[[nodiscard]] ClientReport verify_client(const StreamSchedule& schedule,
                                         const ReceivingProgram& program,
                                         Model model);

/// Aggregate outcome over every client of a forest.
struct ForestReport {
  bool ok = true;
  std::string first_error;
  Index clients = 0;
  Index max_concurrent = 0;   ///< worst client concurrency
  Index peak_buffer = 0;      ///< worst client buffer occupancy
  Cost unused_units = 0;      ///< transmitted non-root units no client used
};

/// Verifies every client in the forest (invariants 1-6).
[[nodiscard]] ForestReport verify_forest(const MergeForest& forest,
                                         Model model = Model::kReceiveTwo);

}  // namespace smerge

#endif  // SMERGE_SCHEDULE_PLAYBACK_H
