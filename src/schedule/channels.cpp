#include "schedule/channels.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "schedule/diagram.h"

namespace smerge {

ChannelAssignment assign_channels(const StreamSchedule& schedule) {
  ChannelAssignment out;
  out.channel_of.assign(static_cast<std::size_t>(schedule.size()), -1);

  // Streams are already ordered by start time (stream id == arrival).
  // free_at: min-heap of (end, channel) for channels in use; idle
  // channels queue up for reuse in LIFO order (better locality).
  using EndChannel = std::pair<Index, Index>;
  std::priority_queue<EndChannel, std::vector<EndChannel>, std::greater<>> busy;
  std::vector<Index> idle;

  for (Index x = 0; x < schedule.size(); ++x) {
    const StreamWindow& w = schedule.stream(x);
    while (!busy.empty() && busy.top().first <= w.start) {
      idle.push_back(busy.top().second);
      busy.pop();
    }
    Index channel;
    if (!idle.empty()) {
      channel = idle.back();
      idle.pop_back();
    } else {
      channel = out.channels_used++;
    }
    out.channel_of[static_cast<std::size_t>(x)] = channel;
    busy.emplace(w.end(), channel);
  }
  return out;
}

ChannelAssignment assign_channels(const std::vector<StreamInterval>& intervals) {
  ChannelAssignment out;
  out.channel_of.assign(intervals.size(), -1);

  using EndChannel = std::pair<double, Index>;
  std::priority_queue<EndChannel, std::vector<EndChannel>, std::greater<>> busy;
  std::vector<Index> idle;

  double prev_start = -std::numeric_limits<double>::infinity();
  for (std::size_t x = 0; x < intervals.size(); ++x) {
    const StreamInterval& w = intervals[x];
    if (w.start < prev_start) {
      throw std::invalid_argument(
          "assign_channels: intervals must be sorted by start time");
    }
    prev_start = w.start;
    while (!busy.empty() && busy.top().first <= w.start) {
      idle.push_back(busy.top().second);
      busy.pop();
    }
    Index channel;
    if (!idle.empty()) {
      channel = idle.back();
      idle.pop_back();
    } else {
      channel = out.channels_used++;
    }
    out.channel_of[x] = channel;
    busy.emplace(w.end, channel);
  }
  return out;
}

ChannelAssignment assign_channels(const plan::MergePlan& plan) {
  std::vector<StreamInterval> intervals;
  const auto start = plan.start();
  const auto length = plan.length();
  intervals.reserve(start.size());
  for (std::size_t i = 0; i < start.size(); ++i) {
    intervals.push_back({start[i], start[i] + length[i]});
  }
  return assign_channels(intervals);
}

Index peak_overlap(std::vector<ChannelEvent>& events) {
  std::sort(events.begin(), events.end(),
            [](const ChannelEvent& a, const ChannelEvent& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.delta < b.delta;
            });
  Index depth = 0;
  Index peak = 0;
  for (const ChannelEvent& e : events) {
    depth += e.delta;
    if (depth > peak) peak = depth;
  }
  return peak;
}

std::string render_channel_plan(const StreamSchedule& schedule,
                                const ChannelAssignment& assignment) {
  std::vector<std::vector<Index>> per_channel(
      static_cast<std::size_t>(assignment.channels_used));
  for (Index x = 0; x < schedule.size(); ++x) {
    per_channel[static_cast<std::size_t>(
                    assignment.channel_of[static_cast<std::size_t>(x)])]
        .push_back(x);
  }
  std::ostringstream os;
  for (std::size_t c = 0; c < per_channel.size(); ++c) {
    os << "channel " << c << ":";
    for (const Index x : per_channel[c]) {
      const StreamWindow& w = schedule.stream(x);
      os << ' ' << stream_name(x) << '[' << w.start << ',' << w.end() << ')';
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace smerge
