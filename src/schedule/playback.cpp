#include "schedule/playback.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "core/buffer.h"

namespace smerge {

namespace {

void fail(ClientReport& report, const std::string& message) {
  if (report.ok) {
    report.ok = false;
    report.error = "client " + std::to_string(report.arrival) + ": " + message;
  }
}

}  // namespace

ClientReport verify_client(const StreamSchedule& schedule,
                           const ReceivingProgram& program, Model model) {
  ClientReport report;
  report.arrival = program.arrival();
  const Index a = program.arrival();
  const Index L = program.media_length();
  const auto& blocks = program.receptions();

  // Invariant 1: the blocks partition [1, L] in order.
  Index expected_next = 1;
  for (const Reception& r : blocks) {
    if (r.first_part != expected_next) {
      fail(report, "segment gap: expected next " + std::to_string(expected_next) +
                       ", block starts at " + std::to_string(r.first_part));
    }
    if (r.last_part < r.first_part) fail(report, "empty reception block");
    expected_next = r.last_part + 1;
  }
  if (expected_next != L + 1) {
    fail(report, "program ends at segment " + std::to_string(expected_next - 1) +
                     " instead of L=" + std::to_string(L));
  }

  // Invariants 2 and 3: every segment transmitted by its source and
  // received no later than its playback slot.
  for (const Reception& r : blocks) {
    const StreamWindow& w = schedule.stream(r.stream);
    if (r.last_part > w.length) {
      fail(report, "stream " + std::to_string(r.stream) + " truncated at " +
                       std::to_string(w.length) + " but segment " +
                       std::to_string(r.last_part) + " requested");
    }
    for (Index j = r.first_part; j <= r.last_part; ++j) {
      const Index reception_slot = r.slot_of(j);
      const Index playback_slot = a + j - 1;
      if (reception_slot > playback_slot) {
        fail(report, "segment " + std::to_string(j) + " received in slot " +
                         std::to_string(reception_slot) + " after its playback slot " +
                         std::to_string(playback_slot));
      }
    }
    report.completion_slot = std::max(report.completion_slot, r.end_slot());
  }

  // Invariant 4: concurrent receptions per slot.
  {
    std::vector<std::pair<Index, Index>> events;  // (slot, +1/-1)
    events.reserve(blocks.size() * 2);
    for (const Reception& r : blocks) {
      events.emplace_back(r.start_slot(), +1);
      events.emplace_back(r.end_slot(), -1);
    }
    std::sort(events.begin(), events.end());
    Index depth = 0;
    for (const auto& [slot, delta] : events) {
      depth += delta;
      report.max_concurrent = std::max(report.max_concurrent, depth);
    }
    const Index allowed = model == Model::kReceiveTwo ? 2 : L;
    if (report.max_concurrent > allowed) {
      fail(report, "listens to " + std::to_string(report.max_concurrent) +
                       " streams at once (model allows " + std::to_string(allowed) + ")");
    }
  }

  // Invariant 5: peak buffer occupancy. received(t) counts segments fully
  // received by boundary t; played(t) = clamp(t - a, 0, L).
  {
    std::vector<Index> received_at(static_cast<std::size_t>(L), 0);
    for (const Reception& r : blocks) {
      for (Index j = r.first_part; j <= r.last_part; ++j) {
        received_at[static_cast<std::size_t>(j - 1)] = r.slot_of(j) + 1;
      }
    }
    for (Index t = a; t <= report.completion_slot; ++t) {
      Index received = 0;
      for (Index j = 1; j <= L; ++j) {
        if (received_at[static_cast<std::size_t>(j - 1)] <= t) ++received;
      }
      const Index played = std::clamp<Index>(t - a, 0, L);
      report.peak_buffer = std::max(report.peak_buffer, received - played);
    }
  }

  return report;
}

ForestReport verify_forest(const MergeForest& forest, Model model) {
  ForestReport report;
  const StreamSchedule schedule(forest, model);
  const Index n = forest.size();
  const Index L = forest.media_length();

  // High-water mark of segments requested per stream, for invariant 6.
  std::vector<Index> used(static_cast<std::size_t>(n), 0);

  for (Index a = 0; a < n; ++a) {
    const ReceivingProgram program(forest, a, model);
    const ClientReport client = verify_client(schedule, program, model);
    ++report.clients;
    report.max_concurrent = std::max(report.max_concurrent, client.max_concurrent);
    report.peak_buffer = std::max(report.peak_buffer, client.peak_buffer);
    if (!client.ok && report.ok) {
      report.ok = false;
      report.first_error = client.error;
    }

    // Lemma 15 exactness in the receive-two model.
    if (model == Model::kReceiveTwo) {
      const Index t = forest.tree_of(a);
      const Index d = a - forest.tree_offset(t);
      const Index predicted = buffer_requirement(d, L);
      if (client.peak_buffer != predicted && report.ok) {
        report.ok = false;
        std::ostringstream os;
        os << "client " << a << ": peak buffer " << client.peak_buffer
           << " != Lemma-15 prediction " << predicted;
        report.first_error = os.str();
      }
    }

    for (const Reception& r : program.receptions()) {
      auto& high = used[static_cast<std::size_t>(r.stream)];
      high = std::max(high, r.last_part);
    }
  }

  // Invariant 6: non-root streams are truncated tightly (every transmitted
  // segment serves some client); roots always transmit the full media.
  for (Index x = 0; x < n; ++x) {
    const StreamWindow& w = schedule.stream(x);
    const bool is_root = forest.tree_offset(forest.tree_of(x)) == x;
    if (is_root) continue;
    report.unused_units += w.length - used[static_cast<std::size_t>(x)];
  }
  if (report.unused_units != 0 && report.ok) {
    report.ok = false;
    report.first_error = "streams transmit " + std::to_string(report.unused_units) +
                         " units no client consumes (truncation not tight)";
  }
  return report;
}

}  // namespace smerge
