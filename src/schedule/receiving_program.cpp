#include "schedule/receiving_program.h"

#include <sstream>
#include <stdexcept>

namespace smerge {

ReceivingProgram::ReceivingProgram(const MergeForest& forest, Index arrival,
                                   Model model)
    : arrival_(arrival), media_length_(forest.media_length()) {
  const Index t = forest.tree_of(arrival);  // range-checks arrival
  const MergeTree& tree = forest.tree(t);
  const Index offset = forest.tree_offset(t);
  if (!tree.feasible(media_length_, model)) {
    throw std::invalid_argument("ReceivingProgram: tree is not a feasible L-tree");
  }

  for (const Index local : tree.path_from_root(arrival - offset)) {
    path_.push_back(local + offset);
  }
  const Index a = arrival;
  const Index L = media_length_;
  const auto k = static_cast<Index>(path_.size()) - 1;

  auto push = [this](Index stream, Index lo, Index hi) {
    if (lo <= hi) receptions_.push_back(Reception{stream, lo, hi});
  };

  if (k == 0) {
    // The client is a root: play straight off its own full stream.
    push(a, 1, L);
    return;
  }

  const auto x = [this](Index m) { return path_[static_cast<std::size_t>(m)]; };
  if (model == Model::kReceiveTwo) {
    push(a, 1, a - x(k - 1));
    for (Index m = k - 1; m >= 1; --m) {
      push(x(m), 2 * a - x(m + 1) - x(m) + 1, 2 * a - x(m) - x(m - 1));
    }
    // Root reception is capped at L: when 2(a - x_0) >= L the client
    // finishes the media from the root's tail early (Lemma 15, case 2).
    push(x(0), std::min(2 * a - x(1) - x(0) + 1, L + 1), L);
  } else {
    push(a, 1, a - x(k - 1));
    for (Index m = k - 1; m >= 1; --m) {
      push(x(m), a - x(m) + 1, a - x(m - 1));
    }
    push(x(0), a - x(0) + 1, L);
  }
}

std::string ReceivingProgram::to_string() const {
  std::ostringstream os;
  os << "client " << arrival_ << ":";
  for (const Reception& r : receptions_) {
    os << " [" << r.first_part << "," << r.last_part << "]<-" << r.stream;
  }
  return os.str();
}

}  // namespace smerge
