#include "schedule/receiving_program.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace smerge {

namespace {

/// Rounds a slot-aligned plan quantity to its integer slot value;
/// throws when the plan is not slot-aligned.
Index slot_value(double x, const char* what) {
  const double rounded = std::nearbyint(x);
  if (std::abs(x - rounded) > 1e-9) {
    throw std::invalid_argument(std::string("ReceivingProgram: plan ") + what +
                                " is not slot-aligned");
  }
  return static_cast<Index>(rounded);
}

}  // namespace

ReceivingProgram::ReceivingProgram(const MergeForest& forest, Index arrival,
                                   Model model)
    : arrival_(arrival), media_length_(forest.media_length()) {
  const Index t = forest.tree_of(arrival);  // range-checks arrival
  const MergeTree& tree = forest.tree(t);
  const Index offset = forest.tree_offset(t);
  if (!tree.feasible(media_length_, model)) {
    throw std::invalid_argument("ReceivingProgram: tree is not a feasible L-tree");
  }

  for (const Index local : tree.path_from_root(arrival - offset)) {
    path_.push_back(local + offset);
  }
  assemble(model);
}

ReceivingProgram::ReceivingProgram(const plan::MergePlan& plan, Index client,
                                   Model model)
    : arrival_(0), media_length_(slot_value(plan.media_length(), "media length")) {
  const auto start = plan.start();
  const auto length = plan.length();
  const std::vector<Index> ids = plan.root_path(client);  // range-checks client
  for (const Index id : ids) {
    path_.push_back(slot_value(start[static_cast<std::size_t>(id)], "start"));
  }
  arrival_ = path_.back();
  assemble(model);
  // Feasibility against the plan's own (possibly explicit) truncations:
  // every requested segment must actually be transmitted. Path slots
  // are strictly increasing, so each reception's source is found by one
  // scan over the (short) path.
  for (const Reception& r : receptions_) {
    for (std::size_t m = 0; m < path_.size(); ++m) {
      if (path_[m] != r.stream) continue;
      if (static_cast<double>(r.last_part) >
          length[static_cast<std::size_t>(ids[m])] + 1e-9) {
        throw std::invalid_argument(
            "ReceivingProgram: plan stream too short for the program");
      }
      break;
    }
  }
}

void ReceivingProgram::assemble(Model model) {
  const Index a = arrival_;
  const Index L = media_length_;
  const auto k = static_cast<Index>(path_.size()) - 1;

  auto push = [this](Index stream, Index lo, Index hi) {
    if (lo <= hi) receptions_.push_back(Reception{stream, lo, hi});
  };

  if (k == 0) {
    // The client is a root: play straight off its own full stream.
    push(a, 1, L);
    return;
  }

  const auto x = [this](Index m) { return path_[static_cast<std::size_t>(m)]; };
  if (model == Model::kReceiveTwo) {
    push(a, 1, a - x(k - 1));
    for (Index m = k - 1; m >= 1; --m) {
      push(x(m), 2 * a - x(m + 1) - x(m) + 1, 2 * a - x(m) - x(m - 1));
    }
    // Root reception is capped at L: when 2(a - x_0) >= L the client
    // finishes the media from the root's tail early (Lemma 15, case 2).
    push(x(0), std::min(2 * a - x(1) - x(0) + 1, L + 1), L);
  } else {
    push(a, 1, a - x(k - 1));
    for (Index m = k - 1; m >= 1; --m) {
      push(x(m), a - x(m) + 1, a - x(m - 1));
    }
    push(x(0), a - x(0) + 1, L);
  }
}

std::string ReceivingProgram::to_string() const {
  std::ostringstream os;
  os << "client " << arrival_ << ":";
  for (const Reception& r : receptions_) {
    os << " [" << r.first_part << "," << r.last_part << "]<-" << r.stream;
  }
  return os.str();
}

}  // namespace smerge
