#include "schedule/diagram.h"

#include <algorithm>
#include <sstream>

#include "schedule/receiving_program.h"
#include "schedule/stream_schedule.h"

namespace smerge {

std::string stream_name(Index arrival) {
  if (arrival >= 0 && arrival < 26) {
    return std::string(1, static_cast<char>('A' + arrival));
  }
  // Built via append to dodge GCC 12's false-positive -Wrestrict on
  // operator+ with a short string literal (GCC PR105651).
  std::string name = "s";
  name += std::to_string(arrival);
  return name;
}

std::string concrete_diagram(const MergeForest& forest, Model model) {
  const StreamSchedule schedule(forest, model);
  const Index horizon = schedule.horizon_end();
  // Cell width fits the largest segment number and the time header.
  const std::size_t cell =
      std::max<std::size_t>(std::to_string(forest.media_length()).size(),
                            std::to_string(horizon - 1).size()) +
      1;
  const auto pad = [cell](const std::string& s) {
    return s.size() >= cell ? s : std::string(cell - s.size(), ' ') + s;
  };

  // Left margin sized to the widest stream label "H (t=7):".
  std::vector<std::string> labels;
  labels.reserve(static_cast<std::size_t>(forest.size()));
  std::size_t margin = std::string("t:").size();
  for (Index x = 0; x < forest.size(); ++x) {
    labels.push_back(stream_name(x) + " (t=" + std::to_string(x) + "):");
    margin = std::max(margin, labels.back().size());
  }

  std::ostringstream os;
  os << std::string(margin - 2, ' ') << "t:";
  for (Index t = 0; t < horizon; ++t) os << pad(std::to_string(t));
  os << '\n';
  for (Index x = 0; x < forest.size(); ++x) {
    const std::string& label = labels[static_cast<std::size_t>(x)];
    os << std::string(margin - label.size(), ' ') << label;
    const StreamWindow& w = schedule.stream(x);
    for (Index t = 0; t < w.start; ++t) os << pad("");
    for (Index j = 1; j <= w.length; ++j) os << pad(std::to_string(j));
    os << '\n';
  }
  return os.str();
}

std::string client_timeline(const MergeForest& forest, Index arrival, Model model) {
  const ReceivingProgram program(forest, arrival, model);
  const Index a = arrival;
  const Index L = forest.media_length();
  Index end = a;  // one past the last reception slot
  for (const Reception& r : program.receptions()) {
    end = std::max(end, r.end_slot());
  }

  const std::size_t cell = std::to_string(std::max(L, end - 1)).size() + 1;
  const auto pad = [cell](const std::string& s) {
    return s.size() >= cell ? s : std::string(cell - s.size(), ' ') + s;
  };
  std::vector<std::string> labels;
  std::size_t margin = std::string("buffer:").size();
  for (const Reception& r : program.receptions()) {
    labels.push_back("from " + stream_name(r.stream) + ":");
    margin = std::max(margin, labels.back().size());
  }
  margin = std::max(margin, std::string("t:").size());

  std::ostringstream os;
  os << "client " << a << " (" << stream_name(a) << "): plays segments 1.." << L
     << " from slot " << a << '\n';
  os << std::string(margin - 2, ' ') << "t:";
  for (Index t = a; t < end; ++t) os << pad(std::to_string(t));
  os << '\n';

  // One row per reception block: segment j sits at slot r.slot_of(j).
  for (std::size_t b = 0; b < program.receptions().size(); ++b) {
    const Reception& r = program.receptions()[b];
    const std::string& label = labels[b];
    std::string line = std::string(margin - label.size(), ' ') + label;
    for (Index t = a; t < end; ++t) {
      const Index j = t - r.stream + 1;  // segment on the air at slot t
      if (j >= r.first_part && j <= r.last_part) {
        line += pad(std::to_string(j));
      } else {
        line += pad("");
      }
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    os << line << '\n';
  }

  // Buffer occupancy at the end of each slot: segments fully received
  // minus segments fully played.
  os << std::string(margin - 7, ' ') << "buffer:";
  for (Index t = a + 1; t <= end; ++t) {
    Index received = 0;
    for (const Reception& r : program.receptions()) {
      for (Index j = r.first_part; j <= r.last_part; ++j) {
        if (r.slot_of(j) + 1 <= t) ++received;
      }
    }
    const Index played = std::clamp<Index>(t - a, 0, L);
    os << pad(std::to_string(received - played));
  }
  os << '\n';
  return os.str();
}

namespace {

void render_node(const MergeTree& tree, Index node, Index offset,
                 const std::string& prefix, bool last, std::ostringstream& os) {
  if (node == 0) {
    os << (node + offset) << " (" << stream_name(node + offset) << ")\n";
  } else {
    os << prefix << (last ? "`- " : "+- ") << (node + offset) << " ("
       << stream_name(node + offset) << ")\n";
  }
  const auto& kids = tree.children(node);
  const std::string child_prefix =
      node == 0 ? std::string() : prefix + (last ? "   " : "|  ");
  for (std::size_t i = 0; i < kids.size(); ++i) {
    render_node(tree, kids[i], offset, child_prefix, i + 1 == kids.size(), os);
  }
}

}  // namespace

std::string render_tree(const MergeTree& tree, Index offset) {
  std::ostringstream os;
  render_node(tree, 0, offset, "", true, os);
  return os.str();
}

}  // namespace smerge
