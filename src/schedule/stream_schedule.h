// Slot-accurate transmission schedules.
//
// A merge forest determines exactly what the server multicasts: the stream
// started at arrival x transmits media segments 1..len(x) (len = L for
// roots, Lemma-1/Lemma-17 lengths otherwise), segment j occupying the slot
// [x+j-1, x+j). StreamSchedule materializes those windows and derives the
// channel-occupancy profile — the "server bandwidth" the paper's plots
// measure, including the peak number of simultaneously active streams
// (the Section-5 future-work metric).
#ifndef SMERGE_SCHEDULE_STREAM_SCHEDULE_H
#define SMERGE_SCHEDULE_STREAM_SCHEDULE_H

#include <vector>

#include "core/merge_forest.h"

namespace smerge {

/// One transmitted (possibly truncated) stream.
struct StreamWindow {
  Index start;   ///< slot at which the stream begins (its arrival time)
  Cost length;   ///< number of segments transmitted (1..L)

  /// Slot during which segment `part` is on the air: [start+part-1, start+part).
  [[nodiscard]] Index slot_of(Index part) const noexcept { return start + part - 1; }
  /// First slot after the stream ends.
  [[nodiscard]] Index end() const noexcept { return start + length; }
  friend bool operator==(const StreamWindow&, const StreamWindow&) = default;
};

/// The full multicast schedule of a merge forest under a reception model.
class StreamSchedule {
 public:
  /// Builds the schedule. Throws std::invalid_argument if the forest is
  /// not feasible under `model` (some Lemma-1 length would exceed L).
  explicit StreamSchedule(const MergeForest& forest, Model model = Model::kReceiveTwo);

  /// Number of streams (= number of arrivals n).
  [[nodiscard]] Index size() const noexcept { return static_cast<Index>(streams_.size()); }
  /// The window of the stream started at arrival x.
  [[nodiscard]] const StreamWindow& stream(Index arrival) const;
  /// All windows, indexed by arrival.
  [[nodiscard]] const std::vector<StreamWindow>& streams() const noexcept { return streams_; }

  /// Total transmitted slot-units; equals the forest's full cost.
  [[nodiscard]] Cost total_units() const noexcept { return total_units_; }

  /// First slot after every stream has ended.
  [[nodiscard]] Index horizon_end() const noexcept { return horizon_end_; }

  /// Channel occupancy per slot: profile()[t] = number of streams active
  /// during [t, t+1), for 0 <= t < horizon_end().
  [[nodiscard]] const std::vector<Index>& profile() const noexcept { return profile_; }

  /// max over t of profile()[t] — the peak server bandwidth in channels.
  [[nodiscard]] Index peak_bandwidth() const noexcept { return peak_bandwidth_; }

  /// The media length L of the underlying forest.
  [[nodiscard]] Index media_length() const noexcept { return media_length_; }

 private:
  Index media_length_;
  std::vector<StreamWindow> streams_;
  std::vector<Index> profile_;
  Cost total_units_ = 0;
  Index horizon_end_ = 0;
  Index peak_bandwidth_ = 0;
};

}  // namespace smerge

#endif  // SMERGE_SCHEDULE_STREAM_SCHEDULE_H
