#include "schedule/stream_schedule.h"

#include <algorithm>
#include <stdexcept>

namespace smerge {

StreamSchedule::StreamSchedule(const MergeForest& forest, Model model)
    : media_length_(forest.media_length()) {
  if (!forest.feasible(model)) {
    throw std::invalid_argument(
        "StreamSchedule: forest has a stream longer than the media (not an L-tree)");
  }
  const Index n = forest.size();
  streams_.reserve(static_cast<std::size_t>(n));
  for (Index x = 0; x < n; ++x) {
    const Cost len = forest.stream_length(x, model);
    streams_.push_back(StreamWindow{x, len});
    total_units_ += len;
    horizon_end_ = std::max(horizon_end_, x + len);
  }

  // Channel occupancy by difference array over [0, horizon_end).
  std::vector<Index> delta(static_cast<std::size_t>(horizon_end_) + 1, 0);
  for (const StreamWindow& w : streams_) {
    ++delta[static_cast<std::size_t>(w.start)];
    --delta[static_cast<std::size_t>(w.end())];
  }
  profile_.resize(static_cast<std::size_t>(horizon_end_));
  Index running = 0;
  for (Index t = 0; t < horizon_end_; ++t) {
    running += delta[static_cast<std::size_t>(t)];
    profile_[static_cast<std::size_t>(t)] = running;
    peak_bandwidth_ = std::max(peak_bandwidth_, running);
  }
}

const StreamWindow& StreamSchedule::stream(Index arrival) const {
  if (arrival < 0 || arrival >= size()) {
    throw std::out_of_range("StreamSchedule::stream");
  }
  return streams_[static_cast<std::size_t>(arrival)];
}

}  // namespace smerge
