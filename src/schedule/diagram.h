// ASCII renderings of the paper's diagrams.
//
// `concrete_diagram` reproduces Fig. 3: one row per stream, one column per
// slot, each cell holding the media segment number that stream transmits
// during that slot. `render_tree` reproduces the Fig. 4/6/7 merge-tree
// drawings with box-drawing characters. Streams are named A, B, C, ... as
// in the paper (falling back to the arrival number past 26 streams).
#ifndef SMERGE_SCHEDULE_DIAGRAM_H
#define SMERGE_SCHEDULE_DIAGRAM_H

#include <string>

#include "core/merge_forest.h"
#include "core/merge_tree.h"

namespace smerge {

/// The paper's stream naming: A..Z for the first 26 arrivals, then "s27",
/// "s28", ...
[[nodiscard]] std::string stream_name(Index arrival);

/// Fig.-3 style concrete diagram of the whole forest's transmission
/// schedule under `model`.
[[nodiscard]] std::string concrete_diagram(const MergeForest& forest,
                                           Model model = Model::kReceiveTwo);

/// Fig.-4 style tree rendering. `offset` shifts the displayed labels
/// (global arrival times when the tree sits inside a forest).
[[nodiscard]] std::string render_tree(const MergeTree& tree, Index offset = 0);

/// Per-client reception timeline: one row per source stream showing which
/// segment arrives in which slot, plus a buffer-occupancy row — the
/// client-side view of the Fig.-3 diagram (the vertical lines of the
/// paper's figure, made explicit). Slots run from the client's arrival to
/// its last reception.
[[nodiscard]] std::string client_timeline(const MergeForest& forest, Index arrival,
                                          Model model = Model::kReceiveTwo);

}  // namespace smerge

#endif  // SMERGE_SCHEDULE_DIAGRAM_H
