// Physical channel assignment.
//
// The paper counts bandwidth in abstract "channels"; a deployment must
// pin each (truncated) stream to a concrete multicast channel such that
// no channel carries two streams at once. Streams are time intervals, so
// the interval-graph greedy (earliest start, reuse the channel freed the
// earliest) is optimal: it uses exactly the schedule's peak bandwidth.
#ifndef SMERGE_SCHEDULE_CHANNELS_H
#define SMERGE_SCHEDULE_CHANNELS_H

#include <string>
#include <vector>

#include "schedule/stream_schedule.h"

namespace smerge {

/// A stream -> channel mapping.
struct ChannelAssignment {
  std::vector<Index> channel_of;  ///< indexed by arrival/stream id
  Index channels_used = 0;

  friend bool operator==(const ChannelAssignment&, const ChannelAssignment&) = default;
};

/// Assigns every stream of the schedule to a channel; the result uses
/// exactly `schedule.peak_bandwidth()` channels (interval scheduling).
[[nodiscard]] ChannelAssignment assign_channels(const StreamSchedule& schedule);

/// Renders a per-channel timeline: one row per channel listing the
/// streams it carries as "name[start,end)" hops.
[[nodiscard]] std::string render_channel_plan(const StreamSchedule& schedule,
                                              const ChannelAssignment& assignment);

}  // namespace smerge

#endif  // SMERGE_SCHEDULE_CHANNELS_H
