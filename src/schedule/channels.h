// Physical channel assignment.
//
// The paper counts bandwidth in abstract "channels"; a deployment must
// pin each (truncated) stream to a concrete multicast channel such that
// no channel carries two streams at once. Streams are time intervals, so
// the interval-graph greedy (earliest start, reuse the channel freed the
// earliest) is optimal: it uses exactly the schedule's peak bandwidth.
#ifndef SMERGE_SCHEDULE_CHANNELS_H
#define SMERGE_SCHEDULE_CHANNELS_H

#include <string>
#include <vector>

#include "core/plan.h"
#include "schedule/stream_schedule.h"

namespace smerge {

/// A stream -> channel mapping.
struct ChannelAssignment {
  std::vector<Index> channel_of;  ///< indexed by arrival/stream id
  Index channels_used = 0;

  friend bool operator==(const ChannelAssignment&, const ChannelAssignment&) = default;
};

/// Assigns every stream of the schedule to a channel; the result uses
/// exactly `schedule.peak_bandwidth()` channels (interval scheduling).
[[nodiscard]] ChannelAssignment assign_channels(const StreamSchedule& schedule);

/// A continuous-time transmission interval [start, end), the channel
/// occupancy unit of the simulation engine (src/sim/engine.h).
struct StreamInterval {
  double start = 0.0;
  double end = 0.0;
};

/// Greedy channel assignment over raw intervals, sorted by start time by
/// the caller (ties allowed): the continuous-time analogue of the
/// schedule overload, again using exactly the peak-overlap many channels.
[[nodiscard]] ChannelAssignment assign_channels(
    const std::vector<StreamInterval>& intervals);

/// Channel assignment straight off the canonical IR: works for any
/// producer's plan (off-line forests, the banded general optimum, the
/// on-line policies' engine output). Plan ids are already start-ordered,
/// so the result uses exactly `plan.peak_bandwidth()` channels.
[[nodiscard]] ChannelAssignment assign_channels(const plan::MergePlan& plan);

/// A +-1 occupancy edge at `time` (+1 = a stream starts, -1 = it ends).
struct ChannelEvent {
  double time = 0.0;
  int delta = 0;
};

/// Peak simultaneous occupancy of the half-open intervals described by
/// `events`. Sorts `events` in place (time ascending, ends before starts
/// at equal times, so back-to-back hops reuse a channel).
[[nodiscard]] Index peak_overlap(std::vector<ChannelEvent>& events);

/// Renders a per-channel timeline: one row per channel listing the
/// streams it carries as "name[start,end)" hops.
[[nodiscard]] std::string render_channel_plan(const StreamSchedule& schedule,
                                              const ChannelAssignment& assignment);

}  // namespace smerge

#endif  // SMERGE_SCHEDULE_CHANNELS_H
