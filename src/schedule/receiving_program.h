// Client receiving programs (Section 2, "Receiving programs").
//
// A client arriving at time a with root path x_0 < x_1 < ... < x_k = a
// receives each media segment from exactly one stream on the path. The
// paper's stage rules reduce to a clean per-stream segment assignment:
//
// receive-two (the stage rules of Section 2):
//   from x_k = a:        segments [1,                    a - x_{k-1}]
//   from x_m (0<m<k):    segments [2a - x_{m+1} - x_m + 1, 2a - x_m - x_{m-1}]
//   from the root x_0:   segments [2a - x_1 - x_0 + 1,    L]
//
// receive-all (the proof of Lemma 17):
//   from x_m (0<m<=k):   segments [a - x_m + 1,           a - x_{m-1}]
//   from the root x_0:   segments [a - x_1 + 1,           L]
//
// Segment j of stream x is on the air during slot [x+j-1, x+j), so a
// reception block from stream x covering [lo, hi] occupies the time window
// [x+lo-1, x+hi). For k = 0 (the client is a root) the whole media comes
// from its own stream. Empty ranges (lo > hi) are dropped — they occur
// when an ancestor merge already delivered everything a stream would
// provide.
#ifndef SMERGE_SCHEDULE_RECEIVING_PROGRAM_H
#define SMERGE_SCHEDULE_RECEIVING_PROGRAM_H

#include <string>
#include <vector>

#include "core/merge_forest.h"
#include "core/plan.h"

namespace smerge {

/// A contiguous block of segments received from one stream.
struct Reception {
  Index stream;      ///< global arrival time of the source stream
  Index first_part;  ///< first media segment taken from it (1-based)
  Index last_part;   ///< last media segment taken from it (inclusive)

  /// Slot during which segment `part` of this block is received.
  [[nodiscard]] Index slot_of(Index part) const noexcept {
    return stream + part - 1;
  }
  /// First slot of the block.
  [[nodiscard]] Index start_slot() const noexcept { return slot_of(first_part); }
  /// First slot after the block.
  [[nodiscard]] Index end_slot() const noexcept { return slot_of(last_part) + 1; }
  /// Number of segments in the block.
  [[nodiscard]] Index parts() const noexcept { return last_part - first_part + 1; }
  friend bool operator==(const Reception&, const Reception&) = default;
};

/// The complete receiving program of one client.
class ReceivingProgram {
 public:
  /// Builds the program for the client arriving at global time `arrival`
  /// in `forest` under `model`. Throws std::out_of_range for bad arrivals
  /// and std::invalid_argument for infeasible forests.
  ReceivingProgram(const MergeForest& forest, Index arrival,
                   Model model = Model::kReceiveTwo);

  /// Builds the program for the client of stream `client` in a
  /// *slot-aligned* canonical plan (all starts and the media length
  /// integral, e.g. any off-line forest plan or
  /// `DelayGuaranteedOnline::to_plan`) — so receiving programs work on
  /// any producer's plan, not just `MergeForest`. Streams are named by
  /// their start slot, like the forest overload. Throws
  /// std::invalid_argument for non-slot-aligned or infeasible plans.
  ReceivingProgram(const plan::MergePlan& plan, Index client,
                   Model model = Model::kReceiveTwo);

  /// The client's arrival time (= start of playback).
  [[nodiscard]] Index arrival() const noexcept { return arrival_; }
  /// Media length L.
  [[nodiscard]] Index media_length() const noexcept { return media_length_; }
  /// The reception blocks ordered root-ward (own stream first, root last),
  /// which is also ascending segment order.
  [[nodiscard]] const std::vector<Reception>& receptions() const noexcept {
    return receptions_;
  }

  /// The root path x_0 < ... < x_k = arrival (global times).
  [[nodiscard]] const std::vector<Index>& path() const noexcept { return path_; }

  /// Human-readable rendering, e.g. for the quickstart example:
  /// "client 7: [1,2]<-7 [3,9]<-5 [10,15]<-0".
  [[nodiscard]] std::string to_string() const;

 private:
  /// Shared stage-rule assembly: fills receptions_ from path_,
  /// arrival_ and media_length_ (both constructors end here).
  void assemble(Model model);

  Index arrival_;
  Index media_length_;
  std::vector<Index> path_;
  std::vector<Reception> receptions_;
};

}  // namespace smerge

#endif  // SMERGE_SCHEDULE_RECEIVING_PROGRAM_H
