// The on-line delay-guaranteed algorithm (Section 4.1).
//
// The off-line optimum needs the horizon n to pick its stream count
// (Theorem 12). The on-line algorithm does not know n, so it makes the
// decision *statically*: with h such that F_{h+1} < L+2 <= F_{h+2} it
// starts a full stream every F_h slots and serves each block of F_h
// arrivals with the (precomputed) optimal merge tree for F_h arrivals —
// the Fibonacci merge tree. Nothing is decided per arrival: receiving
// programs come from a lookup table, which is the simplicity argument of
// Section 4.2.
//
// Costs:
//   A(L,n)               — exact on-line cost: full blocks pay L + M(F_h),
//                          the final partial block pays the cost of the
//                          pruned template tree (its prefix).
//   Theorem 21:  A(L,n) <= (s1+1)(L + M(F_h)),  s1 = floor(n / F_h)
//   Theorem 22:  A(L,n)/F(L,n) <= 1 + 2L/n   for L >= 7, n > L^2 + 2.
#ifndef SMERGE_ONLINE_DELAY_GUARANTEED_H
#define SMERGE_ONLINE_DELAY_GUARANTEED_H

#include <vector>

#include "core/full_cost.h"
#include "core/merge_forest.h"
#include "core/merge_tree.h"

namespace smerge {

/// The static on-line policy for one media object of length L slots.
class DelayGuaranteedOnline {
 public:
  /// Precomputes the template tree (optimal merge tree for F_h arrivals)
  /// and its prefix costs. O(F_h^2) setup, O(1) per horizon query.
  /// Requires 1 <= media_length <= ~10^6 (the template is materialized).
  explicit DelayGuaranteedOnline(Index media_length);

  /// Media length L in slots.
  [[nodiscard]] Index media_length() const noexcept { return media_length_; }
  /// Block size F_h: a new full stream starts every F_h slots.
  [[nodiscard]] Index block_size() const noexcept { return block_; }
  /// The Theorem-12 index h.
  [[nodiscard]] int theorem_index() const noexcept { return h_; }
  /// The precomputed optimal merge tree for a full block.
  [[nodiscard]] const MergeTree& template_tree() const noexcept { return template_; }

  /// Exact on-line cost A(L,n) for a horizon of n slots. O(1).
  [[nodiscard]] Cost cost(Index n) const;

  /// Theorem-21 upper bound (s1+1)(L + M(F_h)).
  [[nodiscard]] Cost cost_upper_bound(Index n) const;

  /// The length of the stream started at slot t (truncation from the
  /// template; L at block starts). `horizon` clips the final block.
  /// O(1) — this is the per-arrival "decision", a table lookup.
  [[nodiscard]] Cost stream_length(Index t, Index horizon) const;

  /// Materializes the merge forest the policy produces for n slots
  /// (s1 template copies plus a pruned final block).
  [[nodiscard]] MergeForest forest(Index n) const;

  /// The same schedule as the canonical flat IR (slot units): the
  /// on-line producer feeding `plan::verify` and the schedule layer.
  [[nodiscard]] plan::MergePlan to_plan(Index n) const;

  /// Theorem-22 guarantee 1 + 2L/n on A/F; requires L >= 7, n > L^2+2.
  [[nodiscard]] static double theorem22_bound(Index media_length, Index n);

 private:
  Index media_length_;
  int h_;
  Index block_;
  MergeTree template_;
  Cost template_cost_;                  // M(F_h)
  std::vector<Cost> prefix_cost_;       // Mcost(template.prefix(r)), r = 0..F_h
};

}  // namespace smerge

#endif  // SMERGE_ONLINE_DELAY_GUARANTEED_H
