#include "online/policy.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/snapshot.h"

namespace smerge {

Index dg_slot_of(double arrival_time, double slot_duration) {
  const double slots = arrival_time / slot_duration;
  const auto rounded = static_cast<Index>(std::ceil(slots - 1e-12));
  return rounded == 0 ? Index{0} : rounded - 1;
}

double batch_start_of(double t, double delay) {
  return std::ceil(t / delay) * delay;
}

namespace {

void check_delay(double delay) {
  if (!(delay > 0.0) || delay > 1.0) {
    throw std::invalid_argument("policy: delay must be in (0, 1]");
  }
}

// --- Delay Guaranteed -----------------------------------------------------

class DgObjectPolicy final : public ObjectPolicy {
 public:
  DgObjectPolicy(std::shared_ptr<const DelayGuaranteedOnline> dg, double delay)
      : dg_(std::move(dg)), delay_(delay) {}

  void on_arrival(double time, PolicySink& sink) override {
    // The per-arrival "decision" is the O(1) slot lookup of
    // DelayGuaranteedServer::admit; the multicast schedule itself is
    // fixed and emitted in finish().
    const Index slot = dg_slot_of(time, delay_);
    sink.admit(time, static_cast<double>(slot + 1) * delay_);
  }

  void finish(double horizon, PolicySink& sink) override {
    const Index L = dg_->media_length();
    const MergeTree& tmpl = dg_->template_tree();
    const Index block = dg_->block_size();
    // Every slot that begins within the horizon gets its stream — the
    // ceil (with dg_slot_of's boundary guard) covers a fractional final
    // slot, so no admitted client can map past the emitted schedule.
    // Parents follow the template tree (a prefix keeps its parents), so
    // the emitted schedule round-trips into a verifiable MergePlan.
    const auto n = static_cast<Index>(
        std::ceil(horizon * static_cast<double>(L) - 1e-12));
    for (Index t = 0; t < n; ++t) {
      const Index local = t % block;
      const Index parent = local == 0 ? -1 : (t - local) + tmpl.parent(local);
      sink.start_stream(static_cast<double>(t + 1) * delay_,
                        static_cast<double>(dg_->stream_length(t, n)) * delay_,
                        parent);
    }
  }

  [[nodiscard]] FastSlotKind fast_slot_kind() const noexcept override {
    return FastSlotKind::kDgSlot;
  }

 private:
  std::shared_ptr<const DelayGuaranteedOnline> dg_;
  double delay_;
};

// --- Batching -------------------------------------------------------------

class BatchingObjectPolicy final : public ObjectPolicy {
 public:
  explicit BatchingObjectPolicy(double delay) : delay_(delay) {}

  void on_arrival(double time, PolicySink& sink) override {
    const double start = batch_start_of(time, delay_);
    if (start > last_start_) {
      sink.start_stream(start, 1.0);
      last_start_ = start;
    }
    sink.admit(time, start);
  }

  void finish(double, PolicySink&) override {}

  void save_state(util::SnapshotWriter& writer) const override {
    writer.f64(last_start_);
  }

  void load_state(util::SnapshotReader& reader) override {
    last_start_ = reader.f64();
  }

  [[nodiscard]] FastSlotKind fast_slot_kind() const noexcept override {
    return FastSlotKind::kBatchSlot;
  }

  [[nodiscard]] double fast_slot_cursor() const noexcept override {
    return last_start_;
  }

  void set_fast_slot_cursor(double cursor) noexcept override {
    last_start_ = cursor;
  }

 private:
  double delay_;
  double last_start_ = -std::numeric_limits<double>::infinity();
};

// --- Greedy (dyadic) merging ----------------------------------------------

class GreedyObjectPolicy final : public ObjectPolicy {
 public:
  GreedyObjectPolicy(merging::DyadicParams params, bool batched, double delay)
      : merger_(1.0, params), batched_(batched), delay_(delay) {}

  void on_arrival(double time, PolicySink& sink) override {
    if (batched_) {
      const double start = batch_start_of(time, delay_);
      sink.admit(time, start);
      if (start > last_start_) {
        merger_.arrive(start);
        last_start_ = start;
      }
    } else {
      sink.admit(time, time);
      merger_.arrive(time);
    }
  }

  void finish(double, PolicySink& sink) override {
    // Truncations (Lemma-1 durations) are final only once the last
    // arrival is known, so the stream intervals are emitted here; the
    // merger's parents pass straight through (ids = emission order).
    const merging::GeneralMergeForest& forest = merger_.forest();
    for (Index i = 0; i < forest.size(); ++i) {
      sink.start_stream(forest.stream(i).time, forest.stream_duration(i),
                        forest.stream(i).parent);
    }
  }

  void save_state(util::SnapshotWriter& writer) const override {
    merger_.save(writer);
    writer.f64(last_start_);
  }

  void load_state(util::SnapshotReader& reader) override {
    merger_.restore(reader);
    last_start_ = reader.f64();
  }

 private:
  merging::DyadicMerger merger_;
  bool batched_;
  double delay_;
  double last_start_ = -std::numeric_limits<double>::infinity();
};

}  // namespace

void PolicySink::retract_stream(Index /*index*/, double /*new_end*/) {}

void ObjectPolicy::on_session_event(double /*time*/, double /*arrival*/,
                                    const SessionEvent& /*event*/,
                                    PolicySink& /*sink*/) {}

void ObjectPolicy::save_state(util::SnapshotWriter& /*writer*/) const {}

void ObjectPolicy::load_state(util::SnapshotReader& /*reader*/) {}

FastSlotKind ObjectPolicy::fast_slot_kind() const noexcept {
  return FastSlotKind::kNone;
}

double ObjectPolicy::fast_slot_cursor() const noexcept { return 0.0; }

void ObjectPolicy::set_fast_slot_cursor(double /*cursor*/) noexcept {}

void OnlinePolicy::prepare(double delay, double horizon) {
  check_delay(delay);
  if (horizon < 0.0) {
    throw std::invalid_argument("policy: horizon must be nonnegative");
  }
}

std::string DelayGuaranteedPolicy::name() const { return "delay-guaranteed"; }

Index DelayGuaranteedPolicy::media_slots(double delay) {
  check_delay(delay);
  const auto L = std::max<Index>(
      static_cast<Index>(std::llround(1.0 / delay)), 1);
  // The DG model slots the unit media into exactly L delay-length
  // pieces; a delay that is not (within rounding) the reciprocal of an
  // integer would make the admission map and the emitted schedule
  // disagree about slot boundaries, so reject it loudly.
  if (std::abs(delay * static_cast<double>(L) - 1.0) > 1e-9) {
    throw std::invalid_argument(
        "DelayGuaranteedPolicy: delay must be 1/L for an integer slot "
        "count L");
  }
  return L;
}

void DelayGuaranteedPolicy::prepare(double delay, double horizon) {
  OnlinePolicy::prepare(delay, horizon);
  const Index L = media_slots(delay);
  if (shared_ == nullptr || shared_->media_length() != L) {
    shared_ = std::make_shared<const DelayGuaranteedOnline>(L);
  }
}

std::unique_ptr<ObjectPolicy> DelayGuaranteedPolicy::make_object_policy(
    double delay, double) const {
  const Index L = media_slots(delay);
  if (shared_ == nullptr) {
    throw std::logic_error("DelayGuaranteedPolicy: prepare() not called");
  }
  if (shared_->media_length() != L) {
    throw std::logic_error("DelayGuaranteedPolicy: prepared for another delay");
  }
  return std::make_unique<DgObjectPolicy>(shared_, delay);
}

std::string BatchingPolicy::name() const { return "batching"; }

std::unique_ptr<ObjectPolicy> BatchingPolicy::make_object_policy(
    double delay, double) const {
  check_delay(delay);
  return std::make_unique<BatchingObjectPolicy>(delay);
}

GreedyMergePolicy::GreedyMergePolicy(merging::DyadicParams params, bool batched)
    : params_(params), batched_(batched) {}

std::string GreedyMergePolicy::name() const {
  return batched_ ? "greedy-merge-batched" : "greedy-merge";
}

std::unique_ptr<ObjectPolicy> GreedyMergePolicy::make_object_policy(
    double delay, double) const {
  check_delay(delay);
  return std::make_unique<GreedyObjectPolicy>(params_, batched_, delay);
}

}  // namespace smerge
