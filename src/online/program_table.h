// The O(1) receiving-program lookup table (Section 4.2).
//
// "Since this merge tree size is picked statically, the server can
// precompute receiving programs and use a look-up table to inform a
// client of its receiving program based only on the arrival time of the
// client relative to the start of a new tree. This table lookup can be
// done in O(1) time, so our Delay Guaranteed algorithm operates in O(1)
// amortized time."
//
// The table holds one entry per slot position inside the F_h-slot block.
// Programs are position-relative (stream ids are offsets into the block)
// and *identical for every block, including the final partial one*: a
// client's program depends only on its root path, which pruning the
// template does not change — only stream truncations move, and they only
// ever shrink toward exactly what the remaining clients need (Lemma 1).
#ifndef SMERGE_ONLINE_PROGRAM_TABLE_H
#define SMERGE_ONLINE_PROGRAM_TABLE_H

#include <vector>

#include "online/delay_guaranteed.h"
#include "schedule/receiving_program.h"

namespace smerge {

/// Precomputed per-position receiving programs for a DG policy.
class ProgramTable {
 public:
  /// Builds the table from the policy's template tree. O(F_h * depth).
  explicit ProgramTable(const DelayGuaranteedOnline& policy);

  /// One table entry: the reception blocks of the client at this block
  /// position, with stream ids relative to the block start.
  struct Entry {
    std::vector<Index> path;           ///< block-relative root path
    std::vector<Reception> blocks;     ///< block-relative reception plan
  };

  /// Block size F_h (number of entries).
  [[nodiscard]] Index block_size() const noexcept {
    return static_cast<Index>(entries_.size());
  }

  /// O(1) lookup by position inside the block. Throws std::out_of_range.
  [[nodiscard]] const Entry& lookup(Index position_in_block) const;

  /// Absolute program for the client of slot t: the looked-up entry with
  /// stream ids shifted by the block start. O(path length).
  [[nodiscard]] std::vector<Reception> program_at(Index t) const;

 private:
  std::vector<Entry> entries_;
};

}  // namespace smerge

#endif  // SMERGE_ONLINE_PROGRAM_TABLE_H
