// Event-driven Delay Guaranteed server.
//
// The deployable face of Section 4: clients arrive at arbitrary
// (continuous) times; the server maps each to the stream starting at the
// end of its slot — guaranteeing a wait below one slot duration — and
// hands out the precomputed receiving program in O(1). No per-arrival
// scheduling decisions are made: the multicast schedule is fixed by the
// policy (a stream per slot, truncated per the template tree), which is
// exactly why the paper calls this the simplest of the on-line merging
// algorithms.
//
// Since the serving-runtime refactor this is a one-object adapter over
// `server::ServerCore` in its slotted Delay Guaranteed mode: admissions,
// counters and the incremental channel ledger all live in the core, so
// the same runtime object also answers live queries (peak channels,
// running percentiles) that the historical stand-alone server could not.
#ifndef SMERGE_ONLINE_SERVER_H
#define SMERGE_ONLINE_SERVER_H

#include <memory>

#include "online/policy.h"
#include "online/program_table.h"
#include "server/server_core.h"

namespace smerge {

// The slot mapping shared with the policy layer lives in
// online/policy.h (`dg_slot_of`), its single home.

/// What a client receives back at admission.
///
/// Lifetime contract: `program` is a stable *index* into the server's
/// `ProgramTable` (look it up via `programs().lookup(program)`), valid
/// for the server's whole lifetime. It deliberately is not a pointer:
/// entry addresses are an implementation detail of the table's storage,
/// and handing them out would dangle if the table ever grew or
/// relocated.
struct ClientTicket {
  Index slot = 0;              ///< slot whose stream serves the client
  double playback_start = 0.0; ///< when that stream begins (slot end)
  double wait = 0.0;           ///< playback_start - arrival, in (0, slot]
  Index program = -1;          ///< stable ProgramTable index, O(1) lookup
};

/// One media object served under the on-line DG policy.
class DelayGuaranteedServer {
 public:
  /// `media_slots` = L (media length / delay); `slot_duration` = the
  /// guaranteed start-up delay in continuous time units.
  DelayGuaranteedServer(Index media_slots, double slot_duration);

  /// Admits a client; arrivals must be nondecreasing. O(1).
  ClientTicket admit(double arrival_time);

  /// Number of clients admitted so far.
  [[nodiscard]] Index clients() const noexcept;
  /// Slot of the latest admission (defines the served horizon).
  [[nodiscard]] Index last_slot() const noexcept;

  /// Total transmitted slot-units if the server runs for `horizon_slots`
  /// slots (the policy cost; independent of admissions).
  [[nodiscard]] Cost transmitted_units(Index horizon_slots) const;

  /// Peak concurrent channels of the schedule emitted so far (through
  /// the latest admission's slot) — a live ledger query the historical
  /// server could not answer.
  [[nodiscard]] Index peak_channels();

  /// The underlying static policy.
  [[nodiscard]] const DelayGuaranteedOnline& policy() const noexcept;
  /// The underlying program table.
  [[nodiscard]] const ProgramTable& programs() const noexcept;

  /// The serving runtime underneath (one object, slotted DG mode).
  [[nodiscard]] server::ServerCore& core() noexcept { return *core_; }

 private:
  std::unique_ptr<server::ServerCore> core_;
};

}  // namespace smerge

#endif  // SMERGE_ONLINE_SERVER_H
