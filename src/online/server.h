// Event-driven Delay Guaranteed server.
//
// The deployable face of Section 4: clients arrive at arbitrary
// (continuous) times; the server maps each to the stream starting at the
// end of its slot — guaranteeing a wait below one slot duration — and
// hands out the precomputed receiving program in O(1). No per-arrival
// scheduling decisions are made: the multicast schedule is fixed by the
// policy (a stream per slot, truncated per the template tree), which is
// exactly why the paper calls this the simplest of the on-line merging
// algorithms.
#ifndef SMERGE_ONLINE_SERVER_H
#define SMERGE_ONLINE_SERVER_H

#include "online/policy.h"
#include "online/program_table.h"

namespace smerge {

// The slot mapping shared with the policy layer lives in
// online/policy.h (`dg_slot_of`), its single home.

/// What a client receives back at admission.
struct ClientTicket {
  Index slot = 0;              ///< slot whose stream serves the client
  double playback_start = 0.0; ///< when that stream begins (slot end)
  double wait = 0.0;           ///< playback_start - arrival, in (0, slot]
  const ProgramTable::Entry* program = nullptr;  ///< O(1) table entry
};

/// One media object served under the on-line DG policy.
class DelayGuaranteedServer {
 public:
  /// `media_slots` = L (media length / delay); `slot_duration` = the
  /// guaranteed start-up delay in continuous time units.
  DelayGuaranteedServer(Index media_slots, double slot_duration);

  /// Admits a client; arrivals must be nondecreasing. O(1).
  ClientTicket admit(double arrival_time);

  /// Number of clients admitted so far.
  [[nodiscard]] Index clients() const noexcept { return clients_; }
  /// Slot of the latest admission (defines the served horizon).
  [[nodiscard]] Index last_slot() const noexcept { return last_slot_; }

  /// Total transmitted slot-units if the server runs for `horizon_slots`
  /// slots (the policy cost; independent of admissions).
  [[nodiscard]] Cost transmitted_units(Index horizon_slots) const;

  /// The underlying static policy.
  [[nodiscard]] const DelayGuaranteedOnline& policy() const noexcept { return policy_; }
  /// The underlying program table.
  [[nodiscard]] const ProgramTable& programs() const noexcept { return table_; }

 private:
  DelayGuaranteedOnline policy_;
  ProgramTable table_;
  double slot_duration_;
  double last_arrival_ = 0.0;
  Index clients_ = 0;
  Index last_slot_ = -1;
};

}  // namespace smerge

#endif  // SMERGE_ONLINE_SERVER_H
