#include "online/delay_guaranteed.h"

#include <algorithm>
#include <stdexcept>

#include "core/tree_builder.h"

namespace smerge {

namespace {

constexpr Index kMaxOnlineMedia = 1'000'000;

std::size_t index_of(Index x) { return static_cast<std::size_t>(x); }

}  // namespace

DelayGuaranteedOnline::DelayGuaranteedOnline(Index media_length)
    : media_length_(media_length),
      h_((media_length >= 1 && media_length <= kMaxOnlineMedia)
             ? theorem12_index(media_length)
             : throw std::invalid_argument(
                   "DelayGuaranteedOnline: media length outside [1, 10^6]")),
      block_(fib::fibonacci(h_)),
      template_(optimal_merge_tree(block_)),
      template_cost_(template_.merge_cost()) {
  // prefix_cost_[r] = Mcost of the template restricted to its first r
  // arrivals (z(x) clips to r-1 in the prefix). Incrementally: appending
  // arrival r adds its own leaf length r - p(r) and extends z by one for
  // every proper non-root ancestor (exactly the nodes whose clipped z
  // equals r-1), i.e. 2 * (depth(r) - 1):
  //   prefix_cost[r+1] = prefix_cost[r] + (r - p(r)) + 2 (depth(r) - 1).
  prefix_cost_.assign(index_of(block_) + 1, 0);
  for (Index r = 1; r < block_; ++r) {
    prefix_cost_[index_of(r + 1)] =
        prefix_cost_[index_of(r)] + (r - template_.parent(r)) +
        2 * (template_.depth(r) - 1);
  }
}

Cost DelayGuaranteedOnline::cost(Index n) const {
  if (n < 0) throw std::invalid_argument("DelayGuaranteedOnline::cost: n >= 0");
  const Index full_blocks = n / block_;
  const Index rest = n - full_blocks * block_;
  Cost total = full_blocks * (media_length_ + template_cost_);
  if (rest > 0) total += media_length_ + prefix_cost_[index_of(rest)];
  return total;
}

Cost DelayGuaranteedOnline::cost_upper_bound(Index n) const {
  if (n < 0) throw std::invalid_argument("DelayGuaranteedOnline: n >= 0");
  const Index s1 = n / block_;
  return (s1 + 1) * (media_length_ + template_cost_);
}

Cost DelayGuaranteedOnline::stream_length(Index t, Index horizon) const {
  if (t < 0 || t >= horizon) {
    throw std::invalid_argument("DelayGuaranteedOnline::stream_length: t outside horizon");
  }
  const Index block_start = (t / block_) * block_;
  const Index local = t - block_start;
  if (local == 0) return media_length_;
  // z clips to the last arrival that actually exists in this block.
  const Index block_last = std::min(block_start + block_, horizon) - 1 - block_start;
  const Index z = std::min(template_.last_descendant(local), block_last);
  return 2 * z - local - template_.parent(local);
}

MergeForest DelayGuaranteedOnline::forest(Index n) const {
  if (n < 1) throw std::invalid_argument("DelayGuaranteedOnline::forest: n >= 1");
  std::vector<MergeTree> trees;
  const Index full_blocks = n / block_;
  const Index rest = n - full_blocks * block_;
  trees.reserve(index_of(full_blocks + (rest > 0 ? 1 : 0)));
  for (Index b = 0; b < full_blocks; ++b) trees.push_back(template_);
  if (rest > 0) trees.push_back(template_.prefix(rest));
  return MergeForest(media_length_, std::move(trees));
}

plan::MergePlan DelayGuaranteedOnline::to_plan(Index n) const {
  return forest(n).to_plan(Model::kReceiveTwo);
}

double DelayGuaranteedOnline::theorem22_bound(Index media_length, Index n) {
  if (media_length < 7 || n <= media_length * media_length + 2) {
    throw std::invalid_argument(
        "theorem22_bound: requires L >= 7 and n > L^2 + 2");
  }
  return 1.0 + 2.0 * static_cast<double>(media_length) / static_cast<double>(n);
}

}  // namespace smerge
