// Pluggable on-line policies for the multi-object simulation engine.
//
// The engine (src/sim/engine.h) drives each media object through one
// ObjectPolicy: arrivals are delivered in nondecreasing time order and
// the policy answers by emitting admissions (arrival -> playback start)
// and multicast streams (start + duration) into a PolicySink. Three of
// the paper's algorithms plug in behind the same interface:
//
//  * DelayGuaranteedPolicy — Section 4.1, refactored out of
//    online/delay_guaranteed + online/server: a stream per slot with
//    template-tree truncation, demand-independent, wait <= delay;
//  * BatchingPolicy — one full stream at the end of every nonempty
//    delay-interval (the Theorem-14 baseline), wait <= delay;
//  * GreedyMergePolicy — the (alpha,beta)-dyadic merger of Section 4.2,
//    immediate (wait 0) or batched to slot ends (wait <= delay).
//
// Contract: on_arrival may only emit streams starting at or after the
// current arrival time; finish may emit anywhere in [0, horizon] (used
// by policies whose schedule is fixed, like Delay Guaranteed, or whose
// stream truncations resolve only at the horizon, like the merger's).
// Media length is the paper's normalized 1.0; delay and horizon are
// fractions/multiples of it.
#ifndef SMERGE_ONLINE_POLICY_H
#define SMERGE_ONLINE_POLICY_H

#include <cstdint>
#include <memory>
#include <string>

#include "core/session.h"
#include "merging/dyadic.h"
#include "online/delay_guaranteed.h"

namespace smerge::util {
class SnapshotReader;
class SnapshotWriter;
}  // namespace smerge::util

namespace smerge {

/// The slot whose stream serves a client arriving at `arrival_time`
/// under the DG mapping: an arrival during slot t — the interval
/// (t*D, (t+1)*D] — is served by the stream starting at the slot's end,
/// and an arrival exactly on a boundary joins the stream starting right
/// there (zero wait). The single home of the mapping, shared by
/// DelayGuaranteedPolicy and the event-driven DelayGuaranteedServer
/// (src/online/server.h).
[[nodiscard]] Index dg_slot_of(double arrival_time, double slot_duration);

/// The batching interval end serving an arrival at `t`: intervals are
/// ((k-1)D, kD] and an arrival exactly on a boundary is served by the
/// stream starting there (matches merging::batch_arrivals). The single
/// home of the mapping, shared by the batching policies and
/// ServerCore's sealed admit fast path.
[[nodiscard]] double batch_start_of(double t, double delay);

/// How (whether) a policy's per-arrival decision can be sealed into
/// ServerCore's devirtualized admit fast path. A policy advertising a
/// slotted kind promises its on_arrival is *exactly* the corresponding
/// closed-form mapping — same floating-point expressions, same emission
/// order — so the core may compute admissions inline (dg_slot_of /
/// batch_start_of) without the two virtual hops per arrival, and a
/// checkpoint taken after either path is byte-identical.
enum class FastSlotKind : std::uint8_t {
  kNone = 0,   ///< generic: every arrival goes through on_arrival
  kDgSlot,     ///< stateless: admit at (dg_slot_of(t, D) + 1) * D;
               ///< the multicast schedule is fixed and emitted in finish
  kBatchSlot,  ///< one cursor: admit at batch_start_of(t, D), emitting a
               ///< full stream whenever the batch start advances
};

/// Where a policy records its decisions; implemented by the engine.
class PolicySink {
 public:
  virtual ~PolicySink() = default;
  /// A multicast stream transmitting [start, start + duration).
  /// `parent` is the stream this one merges into — the index of an
  /// earlier `start_stream` call on this sink (emission order), or -1
  /// for a full stream. It is what lets the engine assemble each
  /// object's schedule into a verifiable `plan::MergePlan`.
  virtual void start_stream(double start, double duration, Index parent = -1) = 0;
  /// A client admission; wait = playback_start - arrival >= 0. The
  /// playback start must coincide with some emitted stream's start.
  virtual void admit(double arrival, double playback_start) = 0;
  /// A previously emitted stream's end moved (plan repair after session
  /// churn): stream `index` (emission order on this sink) now ends at
  /// `new_end` absolute time. Default: ignore — policies that track
  /// their own cost or intervals override. Called only after the last
  /// on_arrival/finish, never concurrently with them.
  virtual void retract_stream(Index index, double new_end);
};

/// Per-object policy state; one instance per simulated media object.
class ObjectPolicy {
 public:
  virtual ~ObjectPolicy() = default;
  /// One client arrival, times nondecreasing across calls. Must admit
  /// the client; may emit streams starting at or after `time`.
  virtual void on_arrival(double time, PolicySink& sink) = 0;
  /// End of the run at `horizon`: flush fixed schedules and streams
  /// whose truncation resolved late.
  virtual void finish(double horizon, PolicySink& sink) = 0;
  /// A mid-session event (pause / seek / abandon) from the client
  /// admitted at `arrival`, observed at wall time `time`. Informational:
  /// the server applies the plan repair itself; policies override to
  /// adapt future decisions. Default: ignore. Times nondecreasing,
  /// interleaved with on_arrival in wall-time order.
  virtual void on_session_event(double time, double arrival,
                                const SessionEvent& event, PolicySink& sink);
  /// Appends this policy's mutable decision state (batching cursors,
  /// merge-forest structure) to a checkpoint payload. Stateless policies
  /// write nothing (the default). A `load_state` of the written bytes
  /// into a freshly made policy must reproduce future decisions
  /// bit-identically — the contract ServerCore::restore_state builds on.
  virtual void save_state(util::SnapshotWriter& writer) const;
  /// Restores state written by `save_state` on a policy freshly created
  /// by the same OnlinePolicy with the same (delay, horizon). Throws
  /// util::SnapshotError on malformed bytes. Default: reads nothing.
  virtual void load_state(util::SnapshotReader& reader);
  /// Whether this policy's on_arrival can be sealed into the core's
  /// inline slot computation (see FastSlotKind). Default: kNone.
  [[nodiscard]] virtual FastSlotKind fast_slot_kind() const noexcept;
  /// For kBatchSlot policies: the batching cursor (last emitted batch
  /// start). The fast path reads it once per delivered batch, replays
  /// the slot arithmetic locally, and writes it back with
  /// `set_fast_slot_cursor` — one virtual round-trip per batch instead
  /// of two per arrival, with `save_state` bytes unchanged. Default 0.
  [[nodiscard]] virtual double fast_slot_cursor() const noexcept;
  virtual void set_fast_slot_cursor(double cursor) noexcept;
};

/// A policy family: a name plus a factory for per-object state.
class OnlinePolicy {
 public:
  virtual ~OnlinePolicy() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  /// Called once, single-threaded, before any object policies exist —
  /// the hook for shared precomputation (DG's template tree).
  virtual void prepare(double delay, double horizon);
  /// Fresh per-object state; called concurrently by engine shards, so
  /// it must not mutate the policy object.
  [[nodiscard]] virtual std::unique_ptr<ObjectPolicy> make_object_policy(
      double delay, double horizon) const = 0;
};

/// Section 4.1: a stream per slot, truncated per the Fibonacci template
/// tree; the cost is demand-independent and the wait is always < delay.
/// Requires delay = 1/L for an integer L (the slotted model's premise);
/// other delays throw from prepare/make_object_policy.
class DelayGuaranteedPolicy final : public OnlinePolicy {
 public:
  [[nodiscard]] std::string name() const override;
  void prepare(double delay, double horizon) override;
  [[nodiscard]] std::unique_ptr<ObjectPolicy> make_object_policy(
      double delay, double horizon) const override;

  /// L = round(1/delay), the media length in slots (>= 1). Throws
  /// std::invalid_argument unless delay is 1/L within rounding.
  [[nodiscard]] static Index media_slots(double delay);

 private:
  std::shared_ptr<const DelayGuaranteedOnline> shared_;  ///< built in prepare
};

/// Batching alone: one full stream at the end of each nonempty
/// delay-interval (no merging) — the Theorem-14 comparison point.
class BatchingPolicy final : public OnlinePolicy {
 public:
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<ObjectPolicy> make_object_policy(
      double delay, double horizon) const override;
};

/// The (alpha,beta)-dyadic greedy merger, immediate or batched.
class GreedyMergePolicy final : public OnlinePolicy {
 public:
  /// `batched` quantizes arrivals to the ends of delay-intervals before
  /// merging (Section 4.2's batched variant); immediate serves at the
  /// arrival instant with zero wait.
  explicit GreedyMergePolicy(merging::DyadicParams params = {},
                             bool batched = false);
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<ObjectPolicy> make_object_policy(
      double delay, double horizon) const override;
  [[nodiscard]] const merging::DyadicParams& params() const noexcept {
    return params_;
  }

 private:
  merging::DyadicParams params_;
  bool batched_;
};

}  // namespace smerge

#endif  // SMERGE_ONLINE_POLICY_H
