#include "online/server.h"

namespace smerge {

DelayGuaranteedServer::DelayGuaranteedServer(Index media_slots, double slot_duration) {
  server::ServerCoreConfig config;
  config.objects = 1;
  config.delay = slot_duration;
  // The served horizon is open-ended: the schedule extends with the
  // admissions (dg_emit_through), never from a finish() flush.
  config.horizon = 0.0;
  config.serve = server::ServeMode::kSlottedDg;
  config.dg_media_slots = media_slots;
  core_ = std::make_unique<server::ServerCore>(config);
}

ClientTicket DelayGuaranteedServer::admit(double arrival_time) {
  const server::Ticket ticket = core_->admit(0, arrival_time);
  ClientTicket out;
  out.slot = ticket.slot;
  out.playback_start = ticket.playback_start;
  out.wait = ticket.wait;
  out.program = ticket.program;
  return out;
}

Index DelayGuaranteedServer::clients() const noexcept {
  return core_->object_clients(0);
}

Index DelayGuaranteedServer::last_slot() const noexcept {
  return core_->object_last_slot(0);
}

Cost DelayGuaranteedServer::transmitted_units(Index horizon_slots) const {
  return core_->dg_policy().cost(horizon_slots);
}

Index DelayGuaranteedServer::peak_channels() { return core_->peak_channels(); }

const DelayGuaranteedOnline& DelayGuaranteedServer::policy() const noexcept {
  return core_->dg_policy();
}

const ProgramTable& DelayGuaranteedServer::programs() const noexcept {
  return core_->programs();
}

}  // namespace smerge
