#include "online/server.h"

#include <cmath>
#include <stdexcept>

namespace smerge {

DelayGuaranteedServer::DelayGuaranteedServer(Index media_slots, double slot_duration)
    : policy_(media_slots), table_(policy_), slot_duration_(slot_duration) {
  if (!(slot_duration > 0.0)) {
    throw std::invalid_argument("DelayGuaranteedServer: slot duration must be positive");
  }
}

ClientTicket DelayGuaranteedServer::admit(double arrival_time) {
  if (arrival_time < 0.0) {
    throw std::invalid_argument("DelayGuaranteedServer::admit: negative arrival time");
  }
  if (arrival_time < last_arrival_) {
    throw std::invalid_argument("DelayGuaranteedServer::admit: arrivals must be sorted");
  }
  last_arrival_ = arrival_time;

  const Index slot = dg_slot_of(arrival_time, slot_duration_);
  ClientTicket ticket;
  ticket.slot = slot;
  ticket.playback_start = static_cast<double>(slot + 1) * slot_duration_;
  ticket.wait = ticket.playback_start - arrival_time;
  ticket.program = &table_.lookup(slot % policy_.block_size());
  ++clients_;
  if (slot > last_slot_) last_slot_ = slot;
  return ticket;
}

Cost DelayGuaranteedServer::transmitted_units(Index horizon_slots) const {
  return policy_.cost(horizon_slots);
}

}  // namespace smerge
