#include "online/program_table.h"

#include <stdexcept>

namespace smerge {

ProgramTable::ProgramTable(const DelayGuaranteedOnline& policy) {
  // Programs are derived from a single-block forest; positions map 1:1.
  std::vector<MergeTree> trees;
  trees.push_back(policy.template_tree());
  const MergeForest block(policy.media_length(), std::move(trees));
  entries_.reserve(static_cast<std::size_t>(policy.block_size()));
  for (Index a = 0; a < policy.block_size(); ++a) {
    const ReceivingProgram program(block, a);
    entries_.push_back(Entry{program.path(), program.receptions()});
  }
}

const ProgramTable::Entry& ProgramTable::lookup(Index position_in_block) const {
  if (position_in_block < 0 || position_in_block >= block_size()) {
    throw std::out_of_range("ProgramTable::lookup");
  }
  return entries_[static_cast<std::size_t>(position_in_block)];
}

std::vector<Reception> ProgramTable::program_at(Index t) const {
  if (t < 0) throw std::out_of_range("ProgramTable::program_at");
  const Index base = (t / block_size()) * block_size();
  std::vector<Reception> absolute = lookup(t - base).blocks;
  for (Reception& r : absolute) r.stream += base;
  return absolute;
}

}  // namespace smerge
