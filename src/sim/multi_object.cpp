#include "sim/multi_object.h"

#include "sim/engine.h"

namespace smerge::sim {

MultiObjectResult run_multi_object(const MultiObjectConfig& config, Policy policy,
                                   unsigned threads) {
  EngineConfig engine_config;
  engine_config.workload.process = ArrivalProcess::kPoisson;
  engine_config.workload.objects = config.objects;
  engine_config.workload.zipf_exponent = config.zipf_exponent;
  engine_config.workload.mean_gap = config.mean_gap;
  engine_config.workload.horizon = config.horizon;
  engine_config.workload.seed = config.seed;
  engine_config.delay = config.delay;
  engine_config.threads = threads;

  const EngineResult outcome = [&] {
    switch (policy) {
      case Policy::kDelayGuaranteed: {
        DelayGuaranteedPolicy dg;
        return run_engine(engine_config, dg);
      }
      case Policy::kDyadicBatched: {
        GreedyMergePolicy batched(merging::DyadicParams{}, /*batched=*/true);
        return run_engine(engine_config, batched);
      }
      case Policy::kDyadicImmediate:
      default: {
        GreedyMergePolicy immediate(merging::DyadicParams{}, /*batched=*/false);
        return run_engine(engine_config, immediate);
      }
    }
  }();

  MultiObjectResult result;
  result.streams_served = outcome.streams_served;
  result.peak_concurrency = outcome.peak_concurrency;
  result.per_object.reserve(outcome.per_object.size());
  result.arrivals_per_object.reserve(outcome.per_object.size());
  for (const ObjectOutcome& object : outcome.per_object) {
    result.per_object.push_back(object.cost);
    result.arrivals_per_object.push_back(object.arrivals);
  }
  return result;
}

}  // namespace smerge::sim
