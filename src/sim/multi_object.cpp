#include "sim/multi_object.h"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>

#include "merging/batching.h"
#include "online/delay_guaranteed.h"
#include "sim/arrivals.h"

namespace smerge::sim {

namespace {

std::size_t index_of(Index x) { return static_cast<std::size_t>(x); }

void add_window_events(std::vector<std::pair<double, int>>& events, double start,
                       double duration) {
  events.emplace_back(start, +1);
  events.emplace_back(start + duration, -1);
}

Index sweep_peak(std::vector<std::pair<double, int>>& events) {
  std::sort(events.begin(), events.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first < b.first;
    return a.second < b.second;
  });
  Index depth = 0;
  Index peak = 0;
  for (const auto& [t, delta] : events) {
    depth += delta;
    peak = std::max(peak, depth);
  }
  return peak;
}

}  // namespace

std::vector<double> zipf_weights(Index objects, double exponent) {
  if (objects < 1) throw std::invalid_argument("zipf_weights: objects >= 1");
  std::vector<double> w(index_of(objects));
  double sum = 0.0;
  for (Index i = 0; i < objects; ++i) {
    w[index_of(i)] = 1.0 / std::pow(static_cast<double>(i + 1), exponent);
    sum += w[index_of(i)];
  }
  for (double& x : w) x /= sum;
  return w;
}

MultiObjectResult run_multi_object(const MultiObjectConfig& config, Policy policy) {
  if (!(config.delay > 0.0) || config.delay > 1.0) {
    throw std::invalid_argument("run_multi_object: delay must be in (0, 1]");
  }
  // Aggregate Poisson arrivals, then a categorical object choice per
  // arrival — equivalent to independent thinned Poisson processes.
  const std::vector<double> all =
      poisson_arrivals(config.mean_gap, config.horizon, config.seed);
  const std::vector<double> weights = zipf_weights(config.objects, config.zipf_exponent);
  std::mt19937_64 rng(config.seed ^ 0x9e3779b97f4a7c15ULL);
  std::discrete_distribution<int> pick(weights.begin(), weights.end());

  std::vector<std::vector<double>> per_object(index_of(config.objects));
  for (const double t : all) {
    per_object[static_cast<std::size_t>(pick(rng))].push_back(t);
  }

  MultiObjectResult result;
  result.per_object.resize(index_of(config.objects), 0.0);
  result.arrivals_per_object.resize(index_of(config.objects), 0);
  std::vector<std::pair<double, int>> events;

  const double D = config.delay;
  const Index L = std::max<Index>(1, static_cast<Index>(std::llround(1.0 / D)));

  for (Index m = 0; m < config.objects; ++m) {
    const std::vector<double>& arrivals = per_object[index_of(m)];
    result.arrivals_per_object[index_of(m)] = static_cast<Index>(arrivals.size());
    double cost = 0.0;

    switch (policy) {
      case Policy::kDelayGuaranteed: {
        // DG transmits on every slot regardless of demand.
        const DelayGuaranteedOnline dg(L);
        const Index n = static_cast<Index>(
            std::llround(config.horizon * static_cast<double>(L)));
        cost = static_cast<double>(dg.cost(n)) / static_cast<double>(L);
        for (Index t = 0; t < n; ++t) {
          add_window_events(events, static_cast<double>(t + 1) * D,
                            static_cast<double>(dg.stream_length(t, n)) * D);
        }
        break;
      }
      case Policy::kDyadicImmediate:
      case Policy::kDyadicBatched: {
        merging::DyadicMerger merger(1.0, merging::DyadicParams{});
        const std::vector<double> feed =
            policy == Policy::kDyadicImmediate
                ? arrivals
                : merging::batch_arrivals(arrivals, D);
        for (const double t : feed) merger.arrive(t);
        const merging::GeneralMergeForest& forest = merger.forest();
        cost = forest.total_cost();
        for (Index i = 0; i < forest.size(); ++i) {
          add_window_events(events, forest.stream(i).time, forest.stream_duration(i));
        }
        break;
      }
    }
    result.per_object[index_of(m)] = cost;
    result.streams_served += cost;
  }
  result.peak_concurrency = sweep_peak(events);
  return result;
}

}  // namespace smerge::sim
