// Hybrid server (Section 5, "future work"): Delay Guaranteed under load,
// dyadic when idle.
//
// The paper's closing discussion proposes a server that runs the Delay
// Guaranteed algorithm while heavily loaded (its bandwidth is capped and
// no request is ever declined) and switches to a more efficient dynamic
// algorithm such as the dyadic one when the arrival intensity is low.
//
// This implementation quantizes time into delay-length slots and applies
// hysteresis over a trailing window of W slots: if every slot in the
// window saw an arrival the server enters DG mode; if none did it enters
// dyadic mode; otherwise it keeps its mode. DG runs are costed with the
// exact on-line DG cost (src/online); dyadic runs serve their arrivals
// immediately with a fresh (alpha,beta)-dyadic merger.
#ifndef SMERGE_SIM_HYBRID_H
#define SMERGE_SIM_HYBRID_H

#include <vector>

#include "merging/dyadic.h"
#include "sim/experiment.h"

namespace smerge::sim {

/// Tunables of the hybrid policy.
struct HybridParams {
  double delay = 0.01;               ///< start-up delay, fraction of the media
  Index window = 3;                  ///< trailing slots for the load estimate
  merging::DyadicParams dyadic = {}; ///< parameters of the idle-mode merger
};

/// Outcome of a hybrid run, with mode telemetry for the ablation bench.
struct HybridOutcome {
  BandwidthResult bandwidth;
  Index dg_slots = 0;          ///< slots served in Delay Guaranteed mode
  Index dyadic_slots = 0;      ///< slots served in dyadic mode
  Index mode_switches = 0;     ///< number of DG <-> dyadic transitions
};

/// Simulates the hybrid server over `horizon` media lengths.
/// Requires nondecreasing arrivals within [0, horizon].
[[nodiscard]] HybridOutcome run_hybrid(const std::vector<double>& arrivals,
                                       double horizon, const HybridParams& params);

}  // namespace smerge::sim

#endif  // SMERGE_SIM_HYBRID_H
