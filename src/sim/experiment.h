// Experiment runners for the paper's on-line comparisons (Figs. 9/11/12).
//
// All quantities are normalized the way the paper plots them: the media
// length is 1.0 time unit, the start-up delay and inter-arrival gap are
// fractions of it, horizons are multiples of it (the paper simulates
// 100 media lengths), and bandwidth is reported in *complete media
// streams served* (transmitted time-units divided by the media length).
#ifndef SMERGE_SIM_EXPERIMENT_H
#define SMERGE_SIM_EXPERIMENT_H

#include <vector>

#include "fib/fibonacci.h"
#include "merging/dyadic.h"

namespace smerge::sim {

/// Bandwidth measurement of one simulated policy.
struct BandwidthResult {
  double streams_served = 0.0;  ///< total bandwidth / media length
  Index full_streams = 0;       ///< number of complete (root) streams
  Index streams_started = 0;    ///< total streams (incl. truncated)
  Index peak_concurrency = 0;   ///< max simultaneously active streams
};

/// Immediate-service dyadic merging on the raw arrivals.
[[nodiscard]] BandwidthResult run_dyadic(const std::vector<double>& arrivals,
                                         merging::DyadicParams params = {});

/// Batched dyadic: arrivals quantized to the ends of `delay`-long
/// intervals (streams only where clients exist), then dyadic merging.
[[nodiscard]] BandwidthResult run_batched_dyadic(const std::vector<double>& arrivals,
                                                 double delay,
                                                 merging::DyadicParams params = {});

/// The on-line Delay Guaranteed algorithm over `horizon` media lengths
/// with start-up delay `delay` (fraction of the media). Its cost is
/// arrival-independent: a stream starts every slot regardless of demand.
/// The media length in slots is round(1/delay).
[[nodiscard]] BandwidthResult run_delay_guaranteed(double delay, double horizon);

/// Off-line optimum over the same slotted horizon (the Fig. 9 / Fig. 1
/// reference): F(L, n) with L = round(1/delay), n = horizon/delay slots.
[[nodiscard]] BandwidthResult run_offline_optimal(double delay, double horizon);

/// One-stream-per-arrival baseline (immediate service, no merging).
[[nodiscard]] BandwidthResult run_unicast(const std::vector<double>& arrivals);

/// Batching-only baseline (full stream per nonempty interval).
[[nodiscard]] BandwidthResult run_batching(const std::vector<double>& arrivals,
                                           double delay);

/// The paper's default beta for the dyadic algorithm (Section 4.2):
/// 0.5 for Poisson arrivals; F_h / L for constant-rate arrivals, where L
/// = round(1/delay) and h is the Theorem-12 index.
[[nodiscard]] double dyadic_beta_for_constant_rate(double delay);

}  // namespace smerge::sim

#endif  // SMERGE_SIM_EXPERIMENT_H
