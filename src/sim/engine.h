// The discrete-event multi-object simulation engine — now a thin
// workload driver over the live serving runtime
// (src/server/server_core.h).
//
// One run drives a catalogue of N media objects (each of normalized
// length 1.0) under a pluggable on-line policy (src/online/policy.h) and
// a pluggable workload (src/sim/workload.h):
//
//  1. Arrival traces are generated per object (each object draws from
//     its own split RNG substream, so a trace is a pure function of
//     (config, object)) and ingested into the ServerCore's per-shard
//     mailboxes.
//  2. The core's drain()/finish() deliver every object's arrivals in
//     time order to its ObjectPolicy on the persistent
//     util::ThreadPool and fold the results in a fixed object-id
//     order, so the outcome is bit-identical for any thread count.
//  3. The server-wide channel occupancy comes from the core's
//     incremental bucketed ledger — the same canonical event order the
//     old end-of-run k-way merge swept, now queryable mid-run.
//
// The engine remains the ROADMAP's scenario substrate: a new experiment
// is a workload or policy plug-in, not a hand-rolled loop. Code that
// wants live queries (current/peak channels, running percentiles,
// capacity-aware admission) drives a server::ServerCore directly.
#ifndef SMERGE_SIM_ENGINE_H
#define SMERGE_SIM_ENGINE_H

#include <vector>

#include "core/plan.h"
#include "online/policy.h"
#include "schedule/channels.h"
#include "server/server_core.h"
#include "sim/workload.h"
#include "util/stats.h"

namespace smerge::sim {

/// How generated traces reach the core.
enum class IngestMode {
  kTrace,   ///< move whole traces into per-shard mailboxes (the default)
  kPosted,  ///< publish every arrival through the lock-free post() rings
            ///< in bounded waves (post a chunk per object, drain, repeat)
            ///< — exercises the concurrent hot path; results are
            ///< bit-identical to kTrace (snapshots are drain-cadence
            ///< independent). Incompatible with session churn.
};

/// One engine run: workload x policy x server model.
struct EngineConfig {
  WorkloadConfig workload;
  double delay = 0.01;         ///< guaranteed start-up delay (fraction of media)
  Index channel_capacity = 0;  ///< server channels; 0 = unbounded
  unsigned threads = 1;        ///< object-shard fan-out width
  IngestMode ingest = IngestMode::kTrace;
  Index mailbox_capacity = 0;  ///< kPosted ring slots per shard; 0 = default
  /// Mid-session behaviour (pause / seek / abandon). When any rate is
  /// positive the run goes through the core's session path: traces are
  /// generated per session on a churn-salted substream (arrivals are
  /// unchanged), and each object's plan is repaired in place at the
  /// horizon — subtree truncation, re-roots, ledger retraction.
  SessionChurnConfig churn;
  /// Segment timeline attached to emitted plans (`plan::ChunkingConfig`,
  /// disabled by default).
  plan::ChunkingConfig chunking;
  /// Also return every transmission interval (start-ordered), the input
  /// `assign_channels` needs for a concrete channel plan. Off by
  /// default: it is O(total streams) extra memory.
  bool collect_stream_intervals = false;
  /// Also assemble each object's emitted schedule into a canonical
  /// `plan::MergePlan` (parents from the policy's `start_stream` calls,
  /// per-stream delays from the admissions it served) — the engine's
  /// verifiable per-object output. Off by default: O(total streams)
  /// extra memory.
  bool collect_plans = false;
  /// Drain the shards on the core-pinned static pool (see
  /// ServerCoreConfig::pin_workers). Pure mechanism: results and
  /// checkpoint bytes never depend on it.
  bool pin_workers = false;
};

/// Exact client start-up delay distribution (nearest-rank percentiles).
using DelayProfile = util::DelayProfile;

/// Per-object outcome (index = object id).
using ObjectOutcome = server::ObjectOutcome;

/// Aggregate outcome of a run. Deterministic for a fixed config —
/// including `threads`, which never changes any field.
struct EngineResult {
  Index total_arrivals = 0;
  Index total_streams = 0;
  double streams_served = 0.0;      ///< total cost / media length
  DelayProfile wait;
  Index peak_concurrency = 0;       ///< server-wide channel peak
  Index guarantee_violations = 0;   ///< sum of per-object violations
  Index capacity_violations = 0;    ///< stream starts above channel_capacity
  // Session lifecycle totals (zero unless churn is enabled).
  Index total_sessions = 0;
  Index session_pauses = 0;
  Index session_seeks = 0;
  Index session_abandons = 0;
  Index plan_truncations = 0;       ///< stream ends pulled earlier by repair
  Index plan_reroots = 0;           ///< subtrees detached and re-rooted
  double retracted_cost = 0.0;      ///< media units cancelled by repair
  double extended_cost = 0.0;       ///< media units added by re-roots
  std::vector<ObjectOutcome> per_object;
  /// All transmission intervals sorted by start time (deterministic:
  /// ties keep object-id order); empty unless
  /// `EngineConfig::collect_stream_intervals` is set. Feed to
  /// `assign_channels` for a physical channel plan.
  std::vector<StreamInterval> stream_intervals;
  /// Per-object canonical plans (index = object id, media length 1.0);
  /// empty unless `EngineConfig::collect_plans` is set. Each passes
  /// `plan::verify` for the shipped policies — the cross-check the
  /// engine tests and benches run.
  std::vector<plan::MergePlan> plans;
};

/// True when `wait` exceeds `delay` beyond floating-point slot-boundary
/// rounding — the single definition of a guarantee violation (the
/// serving core's `server::violates_guarantee`), shared by the engine,
/// the benches and the tests.
[[nodiscard]] bool violates_guarantee(double wait, double delay) noexcept;

/// Builds the ServerCore configuration an engine run uses — exposed so
/// benches and examples can drive the core directly (live queries,
/// chunked ingest) on the exact engine setup.
[[nodiscard]] server::ServerCoreConfig core_config(const EngineConfig& config);

/// Maps the core's end-of-run snapshot onto the engine result shape.
[[nodiscard]] EngineResult to_engine_result(server::Snapshot&& snapshot);

/// Runs the simulation. `policy.prepare(delay, horizon)` is invoked
/// once (single-threaded) before objects are sharded. Throws
/// std::invalid_argument on a bad config.
[[nodiscard]] EngineResult run_engine(const EngineConfig& config,
                                      OnlinePolicy& policy);

}  // namespace smerge::sim

#endif  // SMERGE_SIM_ENGINE_H
