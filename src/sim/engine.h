// The discrete-event multi-object simulation engine.
//
// One run drives a catalogue of N media objects (each of normalized
// length 1.0) under a pluggable on-line policy (src/online/policy.h) and
// a pluggable workload (src/sim/workload.h):
//
//  1. Per object, a discrete-event loop delivers the object's arrivals
//     to its ObjectPolicy in time order; the admissions become the
//     per-client timeline (arrival -> playback start -> wait) and every
//     stream the policy schedules becomes a +-1 channel-event pair,
//     time-ordered within the object.
//  2. Objects are sharded over the persistent util::ThreadPool. Every
//     shard is a pure function of (config, object) — the workload gives
//     each object its own split RNG substream — so the sharding is
//     embarrassingly parallel AND the result is bit-identical for any
//     thread count.
//  3. A deterministic serial reduction merges the per-object event
//     sequences through one time-ordered queue (k-way merge) to compute
//     the server-wide channel occupancy: peak concurrent channels and,
//     when a channel capacity is configured, the number of stream starts
//     that found the server saturated. Waits reduce to exact delay
//     percentiles (p50/p95/p99/max) and guarantee-violation counts.
//
// The engine is the ROADMAP's scenario substrate: a new experiment is a
// workload or policy plug-in, not a hand-rolled loop.
#ifndef SMERGE_SIM_ENGINE_H
#define SMERGE_SIM_ENGINE_H

#include <vector>

#include "core/plan.h"
#include "online/policy.h"
#include "schedule/channels.h"
#include "sim/workload.h"

namespace smerge::sim {

/// One engine run: workload x policy x server model.
struct EngineConfig {
  WorkloadConfig workload;
  double delay = 0.01;         ///< guaranteed start-up delay (fraction of media)
  Index channel_capacity = 0;  ///< server channels; 0 = unbounded
  unsigned threads = 1;        ///< object-shard fan-out width
  /// Also return every transmission interval (start-ordered), the input
  /// `assign_channels` needs for a concrete channel plan. Off by
  /// default: it is O(total streams) extra memory.
  bool collect_stream_intervals = false;
  /// Also assemble each object's emitted schedule into a canonical
  /// `plan::MergePlan` (parents from the policy's `start_stream` calls,
  /// per-stream delays from the admissions it served) — the engine's
  /// verifiable per-object output. Off by default: O(total streams)
  /// extra memory.
  bool collect_plans = false;
};

/// Exact client start-up delay distribution (nearest-rank percentiles).
struct DelayProfile {
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

/// Per-object outcome (index = object id).
struct ObjectOutcome {
  Index arrivals = 0;
  Index streams = 0;
  double cost = 0.0;            ///< transmitted media units (media length 1.0)
  double max_wait = 0.0;
  Index peak_concurrency = 0;   ///< this object's own channel peak
  Index violations = 0;         ///< clients whose wait exceeded the delay

  friend bool operator==(const ObjectOutcome&, const ObjectOutcome&) = default;
};

/// Aggregate outcome of a run. Deterministic for a fixed config —
/// including `threads`, which never changes any field.
struct EngineResult {
  Index total_arrivals = 0;
  Index total_streams = 0;
  double streams_served = 0.0;      ///< total cost / media length
  DelayProfile wait;
  Index peak_concurrency = 0;       ///< server-wide channel peak
  Index guarantee_violations = 0;   ///< sum of per-object violations
  Index capacity_violations = 0;    ///< stream starts above channel_capacity
  std::vector<ObjectOutcome> per_object;
  /// All transmission intervals sorted by start time (deterministic:
  /// ties keep object-id order); empty unless
  /// `EngineConfig::collect_stream_intervals` is set. Feed to
  /// `assign_channels` for a physical channel plan.
  std::vector<StreamInterval> stream_intervals;
  /// Per-object canonical plans (index = object id, media length 1.0);
  /// empty unless `EngineConfig::collect_plans` is set. Each passes
  /// `plan::verify` for the shipped policies — the cross-check the
  /// engine tests and benches run.
  std::vector<plan::MergePlan> plans;
};

/// True when `wait` exceeds `delay` beyond floating-point slot-boundary
/// rounding — the single definition of a guarantee violation, shared by
/// the engine, the benches and the tests.
[[nodiscard]] bool violates_guarantee(double wait, double delay) noexcept;

/// Runs the simulation. `policy.prepare(delay, horizon)` is invoked
/// once (single-threaded) before objects are sharded. Throws
/// std::invalid_argument on a bad config.
[[nodiscard]] EngineResult run_engine(const EngineConfig& config,
                                      OnlinePolicy& policy);

}  // namespace smerge::sim

#endif  // SMERGE_SIM_ENGINE_H
