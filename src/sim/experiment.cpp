#include "sim/experiment.h"

#include <cmath>
#include <stdexcept>

#include "core/full_cost.h"
#include "merging/batching.h"
#include "online/delay_guaranteed.h"
#include "schedule/stream_schedule.h"

namespace smerge::sim {

namespace {

Index slots_for_delay(double delay) {
  if (!(delay > 0.0) || delay > 1.0) {
    throw std::invalid_argument("delay must be a fraction of the media in (0, 1]");
  }
  const Index L = static_cast<Index>(std::llround(1.0 / delay));
  return std::max<Index>(L, 1);
}

Index slotted_horizon(double delay, double horizon, Index media_slots) {
  if (horizon < 0.0) throw std::invalid_argument("horizon must be nonnegative");
  (void)delay;
  return static_cast<Index>(std::llround(horizon * static_cast<double>(media_slots)));
}

BandwidthResult from_general_forest(const merging::GeneralMergeForest& forest) {
  BandwidthResult r;
  r.streams_served = forest.total_cost() / forest.media_length();
  r.full_streams = forest.num_roots();
  r.streams_started = forest.size();
  r.peak_concurrency = forest.peak_concurrency();
  return r;
}

}  // namespace

BandwidthResult run_dyadic(const std::vector<double>& arrivals,
                           merging::DyadicParams params) {
  merging::DyadicMerger merger(1.0, params);
  for (const double t : arrivals) merger.arrive(t);
  return from_general_forest(merger.forest());
}

BandwidthResult run_batched_dyadic(const std::vector<double>& arrivals, double delay,
                                   merging::DyadicParams params) {
  const std::vector<double> starts = merging::batch_arrivals(arrivals, delay);
  merging::DyadicMerger merger(1.0, params);
  for (const double t : starts) merger.arrive(t);
  return from_general_forest(merger.forest());
}

BandwidthResult run_delay_guaranteed(double delay, double horizon) {
  const Index L = slots_for_delay(delay);
  const Index n = slotted_horizon(delay, horizon, L);
  const DelayGuaranteedOnline policy(L);
  BandwidthResult r;
  if (n == 0) return r;
  r.streams_served =
      static_cast<double>(policy.cost(n)) / static_cast<double>(L);
  const Index blocks = n / policy.block_size();
  r.full_streams = blocks + (n % policy.block_size() != 0 ? 1 : 0);
  r.streams_started = n;
  r.peak_concurrency = StreamSchedule(policy.forest(n)).peak_bandwidth();
  return r;
}

BandwidthResult run_offline_optimal(double delay, double horizon) {
  const Index L = slots_for_delay(delay);
  const Index n = slotted_horizon(delay, horizon, L);
  BandwidthResult r;
  if (n == 0) return r;
  const StreamPlan plan = optimal_stream_count(L, n);
  r.streams_served = static_cast<double>(plan.cost) / static_cast<double>(L);
  r.full_streams = plan.streams;
  r.streams_started = n;
  r.peak_concurrency = StreamSchedule(optimal_merge_forest(L, n)).peak_bandwidth();
  return r;
}

BandwidthResult run_unicast(const std::vector<double>& arrivals) {
  BandwidthResult r;
  r.streams_served = merging::unicast_cost(arrivals, 1.0);
  r.full_streams = static_cast<Index>(arrivals.size());
  r.streams_started = r.full_streams;
  // Every stream is full-length: peak = max overlap of [t, t+1) windows.
  merging::GeneralMergeForest forest(1.0);
  for (const double t : arrivals) forest.add_stream(t, -1);
  r.peak_concurrency = forest.peak_concurrency();
  return r;
}

BandwidthResult run_batching(const std::vector<double>& arrivals, double delay) {
  const std::vector<double> starts = merging::batch_arrivals(arrivals, delay);
  BandwidthResult r;
  r.streams_served = static_cast<double>(starts.size());
  r.full_streams = static_cast<Index>(starts.size());
  r.streams_started = r.full_streams;
  merging::GeneralMergeForest forest(1.0);
  for (const double t : starts) forest.add_stream(t, -1);
  r.peak_concurrency = forest.peak_concurrency();
  return r;
}

double dyadic_beta_for_constant_rate(double delay) {
  const Index L = slots_for_delay(delay);
  const int h = theorem12_index(L);
  const double beta =
      static_cast<double>(fib::fibonacci(h)) / static_cast<double>(L);
  return std::min(beta, 0.5);
}

}  // namespace smerge::sim
