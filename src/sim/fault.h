// Deterministic fault injection for the crash-recovery stack.
//
// `run_engine_with_faults` is `run_engine` rebuilt as a crash-aware
// driver: arrivals (or session traces) are generated up front exactly
// as the engine generates them, then ingested chunk by chunk with an
// admission WAL logged *before* every delivery and a checkpoint taken
// on a drain cadence. A `FaultPlan` injects failures at exact,
// reproducible points — crash after WAL record k, a torn byte suffix on
// the durable log, a flipped byte in the newest checkpoint, mailbox
// deliveries dropped from a seeded substream with bounded retries —
// and the harness then runs the real recovery path
// (`server::recover`), derives per-object resume cursors from the
// checkpoint's driver blob plus the replayed WAL tail, re-feeds the
// untouched remainder of each trace, and finishes the run.
//
// The oracle the tests lean on: with no lost deliveries, the result of
// a crashed-and-recovered run is bit-identical to the uninterrupted
// `run_engine` result for the same config — at any crash record, any
// torn-tail length, any shard width. Dropped deliveries are the one
// fault that is allowed to change the outcome (the batch is genuinely
// lost if every retry fails), and the report says exactly how many
// were lost.
#ifndef SMERGE_SIM_FAULT_H
#define SMERGE_SIM_FAULT_H

#include <cstdint>
#include <stdexcept>
#include <string>

#include "server/checkpoint.h"
#include "sim/engine.h"

namespace smerge::sim {

/// Where and how a run fails. Every field is exact and seeded — the
/// same plan on the same config reproduces the same failure.
struct FaultPlan {
  /// Crash once the WAL holds this many records (the crash lands after
  /// the record is logged but before its delivery is applied — the
  /// WAL-ahead-of-state window). Negative: never crash.
  std::int64_t crash_at_record = -1;
  /// Ingest is split into this many equal horizon chunks, each ended by
  /// a logged drain (the group-commit boundary).
  int ingest_chunks = 8;
  /// A checkpoint is taken after every this-many drains.
  int checkpoint_every_drains = 2;
  /// Checkpoints retained, newest first (older ones age out).
  int keep_checkpoints = 2;
  /// Bytes torn off the durable WAL tail at the crash (simulates a
  /// partial final write; the file header always survives).
  std::size_t wal_torn_bytes = 0;
  /// Flip one byte of the newest checkpoint at this offset (modulo its
  /// size) — recovery must detect it and fall back. Negative: none.
  std::int64_t corrupt_checkpoint_byte = -1;
  /// Probability a mailbox delivery attempt is dropped.
  double mailbox_drop_rate = 0.0;
  /// Redelivery attempts after a drop before the batch is declared lost.
  int max_delivery_retries = 3;
  /// Seed of the drop substream (independent of the workload seed).
  std::uint64_t fault_seed = 0x5eedfa017ULL;
};

/// Validates a fault plan; throws std::invalid_argument with the
/// offending field on failure.
void validate(const FaultPlan& plan);

/// Thrown at the injected crash point. Internal to the harness (it is
/// caught inside `run_engine_with_faults`), exposed so direct drivers
/// of the chunked loop can reuse the same signal.
struct InjectedCrash : std::runtime_error {
  InjectedCrash() : std::runtime_error("injected crash") {}
};

/// What the harness observed: the failure, the recovery, the losses.
struct FaultReport {
  bool crashed = false;                ///< the crash point was reached
  std::uint64_t crash_record = 0;      ///< WAL records at the crash
  std::size_t checkpoints_written = 0; ///< taken before the crash
  server::RecoveryReport recovery;     ///< meaningful when `crashed`
  std::uint64_t refed_batches = 0;     ///< per-object remainders re-fed
  std::uint64_t dropped_deliveries = 0; ///< individual attempts dropped
  std::uint64_t lost_batches = 0;      ///< batches lost after all retries
};

/// A faulted run's outcome: the engine result plus the fault report.
struct FaultRunResult {
  EngineResult result;
  FaultReport report;
};

/// Runs the engine workload under `plan`, crashing and recovering as
/// planned. Throws std::invalid_argument on a bad config or plan.
[[nodiscard]] FaultRunResult run_engine_with_faults(const EngineConfig& config,
                                                    OnlinePolicy& policy,
                                                    const FaultPlan& plan);

/// Parses a `--fault=` spec: `crash@K` plus optional comma-separated
/// knobs `torn=N`, `corrupt=I`, `drop=P`, `retries=R`, `chunks=C`,
/// `ckpt=D`, `keep=K`, `seed=S` (e.g. `crash@120,torn=7,corrupt=0`).
/// `none` yields the default (fault-free) plan. Throws
/// std::invalid_argument on a malformed spec.
[[nodiscard]] FaultPlan parse_fault_plan(const std::string& spec);

}  // namespace smerge::sim

#endif  // SMERGE_SIM_FAULT_H
