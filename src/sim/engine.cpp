#include "sim/engine.h"

#include <algorithm>
#include <queue>
#include <stdexcept>
#include <utility>

#include "schedule/channels.h"
#include "util/parallel.h"
#include "util/stats.h"

namespace smerge::sim {

namespace {

std::size_t index_of(Index x) { return static_cast<std::size_t>(x); }

/// The engine-side PolicySink: records one object's client timeline and
/// transmission intervals as +-1 channel events.
class ShardSink final : public PolicySink {
 public:
  ShardSink(double delay, bool collect_intervals, bool collect_plan)
      : delay_(delay),
        collect_intervals_(collect_intervals),
        collect_plan_(collect_plan) {}

  void start_stream(double start, double duration, Index parent) override {
    if (start < 0.0 || !(duration >= 0.0)) {
      throw std::invalid_argument("engine: policy emitted a bad stream interval");
    }
    if (parent < -1 || parent >= outcome.streams) {
      throw std::invalid_argument("engine: policy emitted a bad stream parent");
    }
    ++outcome.streams;
    outcome.cost += duration;
    events.push_back({start, +1});
    events.push_back({start + duration, -1});
    if (collect_intervals_) intervals.push_back({start, start + duration});
    if (collect_plan_) {
      stream_starts.push_back(start);
      stream_durations.push_back(duration);
      stream_parents.push_back(parent);
    }
  }

  void admit(double arrival, double playback_start) override {
    double wait = playback_start - arrival;
    if (wait < 0.0) {
      if (wait < -1e-9) {
        throw std::invalid_argument("engine: playback before arrival");
      }
      wait = 0.0;  // boundary rounding, not time travel
    }
    waits.push_back(wait);
    wait_sum += wait;
    if (wait > outcome.max_wait) outcome.max_wait = wait;
    if (violates_guarantee(wait, delay_)) ++outcome.violations;
    if (collect_plan_) admissions.push_back({playback_start, wait});
  }

  /// Assembles the recorded schedule into the canonical IR: streams in
  /// emission order (the policies emit in start order), per-stream
  /// delays from the waits of the admissions each stream served.
  [[nodiscard]] plan::MergePlan build_plan() const {
    plan::PlanBuilder builder(1.0, Model::kReceiveTwo);
    for (std::size_t i = 0; i < stream_starts.size(); ++i) {
      builder.add_stream(stream_starts[i], stream_parents[i], stream_durations[i]);
    }
    for (const auto& [playback, wait] : admissions) {
      // The admission contract: playback coincides with a stream start
      // (both sides compute the identical slot/batch expression, so the
      // match is exact; the tolerance absorbs nothing but future
      // policies' rounding).
      const auto it = std::lower_bound(stream_starts.begin(), stream_starts.end(),
                                       playback - 1e-9);
      if (it == stream_starts.end() || std::abs(*it - playback) > 1e-9) {
        throw std::logic_error(
            "engine: admission playback start matches no emitted stream");
      }
      builder.record_wait(static_cast<Index>(it - stream_starts.begin()), wait);
    }
    return builder.build();
  }

  ObjectOutcome outcome;
  std::vector<ChannelEvent> events;
  std::vector<StreamInterval> intervals;
  std::vector<double> waits;
  double wait_sum = 0.0;
  std::vector<double> stream_starts;     ///< collect_plans only
  std::vector<double> stream_durations;  ///< collect_plans only
  std::vector<Index> stream_parents;     ///< collect_plans only
  std::vector<std::pair<double, double>> admissions;  ///< (playback, wait)

 private:
  double delay_;
  bool collect_intervals_;
  bool collect_plan_;
};

/// One object's completed shard: outcome + time-ordered channel events.
struct Shard {
  ObjectOutcome outcome;
  std::vector<ChannelEvent> events;  ///< sorted (time, ends-before-starts)
  std::vector<StreamInterval> intervals;  ///< sorted by start (collected only)
  std::vector<double> waits;         ///< in arrival order
  double wait_sum = 0.0;
  plan::MergePlan plan;              ///< canonical IR (collected only)
};

/// Simulates one object: a pure function of (config, object, weight),
/// safe to run on any shard thread.
Shard simulate_object(const EngineConfig& config, const OnlinePolicy& policy,
                      Index object, double weight) {
  const std::vector<double> arrivals =
      generate_arrivals(config.workload, object, weight);
  const std::unique_ptr<ObjectPolicy> state =
      policy.make_object_policy(config.delay, config.workload.horizon);

  ShardSink sink(config.delay, config.collect_stream_intervals, config.collect_plans);
  for (const double t : arrivals) state->on_arrival(t, sink);
  state->finish(config.workload.horizon, sink);

  Shard shard;
  if (config.collect_plans) shard.plan = sink.build_plan();
  shard.outcome = sink.outcome;
  shard.outcome.arrivals = static_cast<Index>(arrivals.size());
  shard.events = std::move(sink.events);
  shard.intervals = std::move(sink.intervals);
  shard.waits = std::move(sink.waits);
  shard.wait_sum = sink.wait_sum;
  // peak_overlap sorts the events — the order the global merge relies on.
  shard.outcome.peak_concurrency = peak_overlap(shard.events);
  std::stable_sort(shard.intervals.begin(), shard.intervals.end(),
                   [](const StreamInterval& a, const StreamInterval& b) {
                     return a.start < b.start;
                   });
  return shard;
}

/// A position in one shard's sorted event sequence (k-way merge input).
struct Cursor {
  const ChannelEvent* it = nullptr;
  const ChannelEvent* end = nullptr;
  Index object = 0;
};

}  // namespace

bool violates_guarantee(double wait, double delay) noexcept {
  // Absolute + relative slack: admissions sit on slot boundaries
  // computed in floating point, so an exact comparison against `delay`
  // would flag rounding, not policy bugs.
  return wait > delay * (1.0 + 1e-9) + 1e-12;
}

EngineResult run_engine(const EngineConfig& config, OnlinePolicy& policy) {
  validate(config.workload);
  if (config.threads < 1) {
    throw std::invalid_argument("engine: threads must be >= 1");
  }
  if (config.channel_capacity < 0) {
    throw std::invalid_argument("engine: channel_capacity must be >= 0");
  }
  // Single-threaded shared precomputation; also validates delay/horizon.
  policy.prepare(config.delay, config.workload.horizon);

  const std::vector<double> weights =
      zipf_weights(config.workload.objects, config.workload.zipf_exponent);
  const auto n_objects = index_of(config.workload.objects);

  // Shard objects across the pool. Each shard is independent and
  // deterministic, and lands in its own slot, so the fan-out width
  // cannot change any result bit.
  std::vector<Shard> shards(n_objects);
  util::parallel_for(
      0, static_cast<std::int64_t>(n_objects),
      [&](std::int64_t i) {
        const auto m = static_cast<std::size_t>(i);
        shards[m] =
            simulate_object(config, policy, static_cast<Index>(i), weights[m]);
      },
      config.threads);

  // --- Deterministic serial reduction, in object order. ---
  EngineResult result;
  result.per_object.reserve(n_objects);
  std::size_t total_waits = 0;
  for (const Shard& shard : shards) {
    result.total_arrivals += shard.outcome.arrivals;
    result.total_streams += shard.outcome.streams;
    result.streams_served += shard.outcome.cost;
    result.guarantee_violations += shard.outcome.violations;
    if (shard.outcome.max_wait > result.wait.max) {
      result.wait.max = shard.outcome.max_wait;
    }
    result.per_object.push_back(shard.outcome);
    total_waits += shard.waits.size();
  }

  // Server-wide channel occupancy: one time-ordered event queue over all
  // objects' sorted event sequences (k-way merge; ties broken end-first,
  // then by object id, so the scan order is fully specified).
  const auto cmp = [](const Cursor& a, const Cursor& b) {
    if (a.it->time != b.it->time) return a.it->time > b.it->time;
    if (a.it->delta != b.it->delta) return a.it->delta > b.it->delta;
    return a.object > b.object;
  };
  std::priority_queue<Cursor, std::vector<Cursor>, decltype(cmp)> queue(cmp);
  for (std::size_t m = 0; m < shards.size(); ++m) {
    if (!shards[m].events.empty()) {
      queue.push(Cursor{shards[m].events.data(),
                        shards[m].events.data() + shards[m].events.size(),
                        static_cast<Index>(m)});
    }
  }
  Index depth = 0;
  while (!queue.empty()) {
    Cursor cursor = queue.top();
    queue.pop();
    depth += cursor.it->delta;
    if (depth > result.peak_concurrency) result.peak_concurrency = depth;
    if (config.channel_capacity > 0 && cursor.it->delta > 0 &&
        depth > config.channel_capacity) {
      ++result.capacity_violations;
    }
    if (++cursor.it != cursor.end) queue.push(cursor);
  }

  // Channel-plan input: all intervals, globally start-ordered. The
  // stable sort over the object-ordered concatenation keeps ties in
  // object-id order, so the plan is deterministic too.
  if (config.collect_stream_intervals) {
    result.stream_intervals.reserve(static_cast<std::size_t>(result.total_streams));
    for (const Shard& shard : shards) {
      result.stream_intervals.insert(result.stream_intervals.end(),
                                     shard.intervals.begin(),
                                     shard.intervals.end());
    }
    std::stable_sort(result.stream_intervals.begin(),
                     result.stream_intervals.end(),
                     [](const StreamInterval& a, const StreamInterval& b) {
                       return a.start < b.start;
                     });
  }

  // Per-object canonical plans, in object-id order (deterministic).
  if (config.collect_plans) {
    result.plans.reserve(shards.size());
    for (Shard& shard : shards) result.plans.push_back(std::move(shard.plan));
  }

  // Exact delay percentiles over every client of the run.
  if (total_waits > 0) {
    std::vector<double> all_waits;
    all_waits.reserve(total_waits);
    double wait_sum = 0.0;
    for (const Shard& shard : shards) {
      all_waits.insert(all_waits.end(), shard.waits.begin(), shard.waits.end());
      wait_sum += shard.wait_sum;
    }
    std::sort(all_waits.begin(), all_waits.end());
    result.wait.mean = wait_sum / static_cast<double>(total_waits);
    result.wait.p50 = util::quantile_sorted(all_waits, 0.50);
    result.wait.p95 = util::quantile_sorted(all_waits, 0.95);
    result.wait.p99 = util::quantile_sorted(all_waits, 0.99);
  }
  return result;
}

}  // namespace smerge::sim
