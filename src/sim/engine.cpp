#include "sim/engine.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "util/parallel.h"

namespace smerge::sim {

bool violates_guarantee(double wait, double delay) noexcept {
  return server::violates_guarantee(wait, delay);
}

server::ServerCoreConfig core_config(const EngineConfig& config) {
  server::ServerCoreConfig core;
  core.objects = config.workload.objects;
  core.delay = config.delay;
  core.horizon = config.workload.horizon;
  core.shards = config.threads;
  core.serve = server::ServeMode::kPolicy;
  core.channel_capacity = config.channel_capacity;
  core.admission = server::AdmissionMode::kObserve;
  core.collect_stream_intervals = config.collect_stream_intervals;
  core.collect_plans = config.collect_plans;
  core.enable_sessions = config.churn.enabled();
  core.chunking = config.chunking;
  core.mailbox_capacity = config.mailbox_capacity;
  core.pin_workers = config.pin_workers;
  return core;
}

EngineResult to_engine_result(server::Snapshot&& snapshot) {
  EngineResult result;
  result.total_arrivals = snapshot.total_arrivals;
  result.total_streams = snapshot.total_streams;
  result.streams_served = snapshot.streams_served;
  result.wait = snapshot.wait;
  result.peak_concurrency = snapshot.peak_concurrency;
  result.guarantee_violations = snapshot.guarantee_violations;
  result.capacity_violations = snapshot.capacity_violations;
  result.total_sessions = snapshot.total_sessions;
  result.session_pauses = snapshot.session_pauses;
  result.session_seeks = snapshot.session_seeks;
  result.session_abandons = snapshot.session_abandons;
  result.plan_truncations = snapshot.plan_truncations;
  result.plan_reroots = snapshot.plan_reroots;
  result.retracted_cost = snapshot.retracted_cost;
  result.extended_cost = snapshot.extended_cost;
  result.per_object = std::move(snapshot.per_object);
  result.stream_intervals = std::move(snapshot.stream_intervals);
  result.plans = std::move(snapshot.plans);
  return result;
}

EngineResult run_engine(const EngineConfig& config, OnlinePolicy& policy) {
  validate(config.workload);
  if (config.threads < 1) {
    throw std::invalid_argument("engine: threads must be >= 1");
  }
  if (config.channel_capacity < 0) {
    throw std::invalid_argument("engine: channel_capacity must be >= 0");
  }
  if (config.ingest == IngestMode::kPosted && config.churn.enabled()) {
    throw std::invalid_argument(
        "engine: posted ingest serves plain arrivals only (session churn "
        "needs whole lifecycles)");
  }
  // The core calls policy.prepare (single-threaded) and builds the
  // per-object ObjectPolicy states.
  server::ServerCore core(core_config(config), policy);

  // Trace generation fans out over the pool: each object's arrivals
  // (and, under churn, its session events) are a pure function of
  // (workload, object), whatever thread computes them.
  const std::vector<double> weights =
      zipf_weights(config.workload.objects, config.workload.zipf_exponent);
  const auto n_objects = static_cast<std::size_t>(config.workload.objects);
  if (config.churn.enabled()) {
    std::vector<std::vector<SessionTrace>> traces(n_objects);
    util::parallel_for(
        0, static_cast<std::int64_t>(n_objects),
        [&](std::int64_t i) {
          const auto m = static_cast<std::size_t>(i);
          traces[m] = generate_sessions(config.workload, config.churn,
                                        static_cast<Index>(i), weights[m]);
        },
        config.threads);
    for (std::size_t m = 0; m < n_objects; ++m) {
      core.ingest_session_trace(static_cast<Index>(m), std::move(traces[m]));
    }
  } else {
    std::vector<std::vector<double>> traces(n_objects);
    util::parallel_for(
        0, static_cast<std::int64_t>(n_objects),
        [&](std::int64_t i) {
          const auto m = static_cast<std::size_t>(i);
          traces[m] =
              generate_arrivals(config.workload, static_cast<Index>(i), weights[m]);
        },
        config.threads);
    if (config.ingest == IngestMode::kPosted) {
      // Wave pipeline over the lock-free rings: every object publishes
      // its next chunk through post() (the pool supplies the
      // producers — each object stays single-producer within a wave),
      // then one drain claims the published ranges. The wave size
      // bounds ring pressure; nothing else is needed for determinism —
      // snapshots are drain-cadence independent.
      constexpr std::size_t kWave = 4096;
      std::size_t longest = 0;
      for (const auto& trace : traces) longest = std::max(longest, trace.size());
      for (std::size_t offset = 0; offset < longest; offset += kWave) {
        util::parallel_for(
            0, static_cast<std::int64_t>(n_objects),
            [&](std::int64_t i) {
              const auto m = static_cast<std::size_t>(i);
              const std::vector<double>& trace = traces[m];
              const std::size_t hi = std::min(trace.size(), offset + kWave);
              for (std::size_t k = offset; k < hi; ++k) {
                core.post(static_cast<Index>(i), trace[k]);
              }
            },
            config.threads);
        core.drain();
      }
    } else {
      for (std::size_t m = 0; m < n_objects; ++m) {
        core.ingest_trace(static_cast<Index>(m), std::move(traces[m]));
      }
    }
  }

  // drain() shards the mailboxes over the pool; finish() flushes the
  // horizon schedules and runs the fixed-order reduction.
  core.finish();
  return to_engine_result(core.take_snapshot());
}

}  // namespace smerge::sim
