#include "sim/workload.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace smerge::sim {

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

std::size_t index_of(Index x) { return static_cast<std::size_t>(x); }

/// Homogeneous Poisson arrivals at rate `rate` on (0, horizon].
void poisson_into(std::vector<double>& out, util::SplitMix64& rng, double rate,
                  double horizon) {
  const double mean = 1.0 / rate;
  for (double t = rng.next_exponential(mean); t <= horizon;
       t += rng.next_exponential(mean)) {
    out.push_back(t);
  }
}

/// Inhomogeneous Poisson arrivals by thinning: candidates at `peak_rate`,
/// kept with probability rate(t) / peak_rate. `accept` returns that
/// probability; it must never exceed 1.
template <typename AcceptFn>
void thinned_into(std::vector<double>& out, util::SplitMix64& rng,
                  double peak_rate, double horizon, AcceptFn accept) {
  const double mean = 1.0 / peak_rate;
  for (double t = rng.next_exponential(mean); t <= horizon;
       t += rng.next_exponential(mean)) {
    // One uniform per candidate, drawn unconditionally so the candidate
    // stream and the thinning stream stay aligned.
    if (rng.next_double() < accept(t)) out.push_back(t);
  }
}

}  // namespace

const char* to_string(ArrivalProcess process) noexcept {
  switch (process) {
    case ArrivalProcess::kPoisson: return "poisson";
    case ArrivalProcess::kConstantRate: return "constant-rate";
    case ArrivalProcess::kFlashCrowd: return "flash-crowd";
    case ArrivalProcess::kDiurnal: return "diurnal";
  }
  return "unknown";
}

std::vector<double> zipf_weights(Index objects, double exponent) {
  if (objects < 1) throw std::invalid_argument("zipf_weights: objects >= 1");
  std::vector<double> w(index_of(objects));
  double sum = 0.0;
  for (Index i = 0; i < objects; ++i) {
    w[index_of(i)] = 1.0 / std::pow(static_cast<double>(i + 1), exponent);
    sum += w[index_of(i)];
  }
  for (double& x : w) x /= sum;
  return w;
}

void validate(const WorkloadConfig& config) {
  if (config.objects < 1) {
    throw std::invalid_argument("workload: objects must be >= 1");
  }
  if (!(config.mean_gap > 0.0)) {
    throw std::invalid_argument("workload: mean_gap must be positive");
  }
  if (config.horizon < 0.0) {
    throw std::invalid_argument("workload: horizon must be nonnegative");
  }
  if (config.process == ArrivalProcess::kFlashCrowd) {
    if (config.burst_duration < 0.0 || !(config.burst_multiplier >= 1.0)) {
      throw std::invalid_argument(
          "workload: flash crowd needs burst_duration >= 0 and multiplier >= 1");
    }
  }
  if (config.process == ArrivalProcess::kDiurnal) {
    if (config.diurnal_amplitude < 0.0 || config.diurnal_amplitude >= 1.0 ||
        !(config.diurnal_period > 0.0)) {
      throw std::invalid_argument(
          "workload: diurnal needs amplitude in [0, 1) and period > 0");
    }
  }
}

std::vector<double> generate_arrivals(const WorkloadConfig& config, Index object) {
  const std::vector<double> weights =
      zipf_weights(config.objects, config.zipf_exponent);
  if (object < 0 || object >= config.objects) {
    throw std::invalid_argument("generate_arrivals: object outside catalogue");
  }
  return generate_arrivals(config, object, weights[index_of(object)]);
}

std::vector<double> generate_arrivals(const WorkloadConfig& config, Index object,
                                      double weight) {
  validate(config);
  if (object < 0 || object >= config.objects) {
    throw std::invalid_argument("generate_arrivals: object outside catalogue");
  }
  if (!(weight > 0.0)) {
    throw std::invalid_argument("generate_arrivals: weight must be positive");
  }
  const double rate = weight / config.mean_gap;

  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(rate * config.horizon) + 8);
  util::SplitMix64 rng =
      util::SplitMix64(config.seed).split(static_cast<std::uint64_t>(object));

  switch (config.process) {
    case ArrivalProcess::kConstantRate: {
      const double gap = 1.0 / rate;
      for (double t = gap; t <= config.horizon; t += gap) out.push_back(t);
      break;
    }
    case ArrivalProcess::kPoisson:
      poisson_into(out, rng, rate, config.horizon);
      break;
    case ArrivalProcess::kFlashCrowd: {
      const double lo = config.burst_start;
      const double hi = config.burst_start + config.burst_duration;
      const double mult = config.burst_multiplier;
      thinned_into(out, rng, rate * mult, config.horizon,
                   [lo, hi, mult](double t) {
                     return (t >= lo && t < hi) ? 1.0 : 1.0 / mult;
                   });
      break;
    }
    case ArrivalProcess::kDiurnal: {
      const double amp = config.diurnal_amplitude;
      const double period = config.diurnal_period;
      thinned_into(out, rng, rate * (1.0 + amp), config.horizon,
                   [amp, period](double t) {
                     return (1.0 + amp * std::sin(kTwoPi * t / period)) /
                            (1.0 + amp);
                   });
      break;
    }
  }
  return out;
}

void validate(const SessionChurnConfig& churn) {
  const auto probability = [](double p) { return p >= 0.0 && p <= 1.0; };
  if (!probability(churn.abandon_rate)) {
    throw std::invalid_argument("churn: abandon_rate must be in [0, 1]");
  }
  if (!probability(churn.pause_rate)) {
    throw std::invalid_argument("churn: pause_rate must be in [0, 1]");
  }
  if (!probability(churn.seek_rate)) {
    throw std::invalid_argument("churn: seek_rate must be in [0, 1]");
  }
  if (!(churn.mean_pause > 0.0)) {
    throw std::invalid_argument("churn: mean_pause must be positive");
  }
}

std::vector<SessionTrace> generate_sessions(const WorkloadConfig& config,
                                            const SessionChurnConfig& churn,
                                            Index object) {
  const std::vector<double> weights =
      zipf_weights(config.objects, config.zipf_exponent);
  if (object < 0 || object >= config.objects) {
    throw std::invalid_argument("generate_sessions: object outside catalogue");
  }
  return generate_sessions(config, churn, object, weights[index_of(object)]);
}

std::vector<SessionTrace> generate_sessions(const WorkloadConfig& config,
                                            const SessionChurnConfig& churn,
                                            Index object, double weight) {
  validate(churn);
  const std::vector<double> arrivals =
      generate_arrivals(config, object, weight);
  std::vector<SessionTrace> sessions(arrivals.size());

  // The churn substream is a salted sibling of the arrival substream:
  // split(object) ^ split(salt) ^ split(i). Each session burns a fixed
  // set of draws whether or not an event fires, so toggling one rate
  // never shifts another session's randomness.
  constexpr std::uint64_t kChurnSalt = 0x6368'7572'6eULL;  // "churn"
  const util::SplitMix64 object_rng = util::SplitMix64(config.seed)
                                          .split(static_cast<std::uint64_t>(object))
                                          .split(kChurnSalt);
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    SessionTrace& session = sessions[i];
    session.arrival = arrivals[i];
    if (!churn.enabled()) continue;
    util::SplitMix64 rng = object_rng.split(static_cast<std::uint64_t>(i));
    const double u_abandon = rng.next_double();
    const double abandon_pos = rng.next_double();
    const double u_pause = rng.next_double();
    const double pause_pos = rng.next_double();
    const double pause_len = rng.next_exponential(churn.mean_pause);
    const double u_seek = rng.next_double();
    const double seek_pos = rng.next_double();
    const double seek_target = rng.next_double();

    std::vector<SessionEvent>& events = session.events;
    if (u_pause < churn.pause_rate) {
      events.push_back({SessionEventType::kPause, pause_pos, pause_len});
    }
    if (u_seek < churn.seek_rate) {
      events.push_back({SessionEventType::kSeek, seek_pos, seek_target});
    }
    if (u_abandon < churn.abandon_rate) {
      events.push_back({SessionEventType::kAbandon, abandon_pos, 0.0});
    }
    std::sort(events.begin(), events.end(),
              [](const SessionEvent& a, const SessionEvent& b) {
                if (a.position != b.position) return a.position < b.position;
                return static_cast<int>(a.type) < static_cast<int>(b.type);
              });
    // A departed viewer emits nothing further.
    const auto gone = std::find_if(
        events.begin(), events.end(), [](const SessionEvent& e) {
          return e.type == SessionEventType::kAbandon;
        });
    if (gone != events.end()) events.erase(gone + 1, events.end());
  }
  return sessions;
}

double expected_arrivals(const WorkloadConfig& config) {
  validate(config);
  const double base = config.horizon / config.mean_gap;
  switch (config.process) {
    case ArrivalProcess::kConstantRate:
    case ArrivalProcess::kPoisson:
      return base;
    case ArrivalProcess::kFlashCrowd: {
      // The elevated window only matters where arrivals can occur:
      // clamp it to (0, horizon] before integrating.
      const double lo =
          std::clamp(config.burst_start, 0.0, config.horizon);
      const double hi = std::clamp(config.burst_start + config.burst_duration,
                                   0.0, config.horizon);
      return base + (config.burst_multiplier - 1.0) * (hi - lo) / config.mean_gap;
    }
    case ArrivalProcess::kDiurnal: {
      // Integral of A sin(2 pi t / P) over [0, H].
      const double phase = kTwoPi * config.horizon / config.diurnal_period;
      return base + config.diurnal_amplitude * config.diurnal_period /
                        kTwoPi * (1.0 - std::cos(phase)) / config.mean_gap;
    }
  }
  return base;
}

}  // namespace smerge::sim
