#include "sim/hybrid.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "online/delay_guaranteed.h"

namespace smerge::sim {

namespace {

std::size_t index_of(Index x) { return static_cast<std::size_t>(x); }

// Sweep-line peak over (start, duration) stream windows.
Index peak_of(std::vector<std::pair<double, int>>& events) {
  std::sort(events.begin(), events.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first < b.first;
    return a.second < b.second;  // ends before starts at equal times
  });
  Index depth = 0;
  Index peak = 0;
  for (const auto& [t, delta] : events) {
    depth += delta;
    peak = std::max(peak, static_cast<Index>(depth));
  }
  return peak;
}

}  // namespace

HybridOutcome run_hybrid(const std::vector<double>& arrivals, double horizon,
                         const HybridParams& params) {
  if (!(params.delay > 0.0) || params.delay > 1.0) {
    throw std::invalid_argument("run_hybrid: delay must be in (0, 1]");
  }
  if (params.window < 1) {
    throw std::invalid_argument("run_hybrid: window must be >= 1");
  }
  const double D = params.delay;
  const Index L = std::max<Index>(1, static_cast<Index>(std::llround(1.0 / D)));
  const Index slots = std::max<Index>(1, static_cast<Index>(std::ceil(horizon / D - 1e-9)));
  const DelayGuaranteedOnline dg(L);

  // Arrivals per slot k covering (kD, (k+1)D], k = 0..slots-1.
  std::vector<Index> occupancy(index_of(slots), 0);
  std::vector<std::vector<double>> per_slot(occupancy.size());
  double prev = 0.0;
  for (const double t : arrivals) {
    if (t < prev) throw std::invalid_argument("run_hybrid: arrivals must be sorted");
    prev = t;
    const auto k = std::min<Index>(
        slots - 1, std::max<Index>(0, static_cast<Index>(std::ceil(t / D)) - 1));
    ++occupancy[index_of(k)];
    per_slot[index_of(k)].push_back(t);
  }

  HybridOutcome out;
  // Mode decision with hysteresis over the trailing window: all trailing
  // slots busy => DG; all idle => dyadic; mixed => keep the current mode.
  std::vector<bool> dg_mode(index_of(slots), false);
  bool mode = false;  // start idle => dyadic
  for (Index k = 0; k < slots; ++k) {
    const Index lo = std::max<Index>(0, k - params.window);
    Index nonempty = 0;
    for (Index j = lo; j < k; ++j) {
      if (occupancy[index_of(j)] > 0) ++nonempty;
    }
    if (k - lo >= params.window) {
      const bool was = mode;
      if (nonempty == k - lo) mode = true;
      else if (nonempty == 0) mode = false;
      if (was != mode) ++out.mode_switches;
    }
    dg_mode[index_of(k)] = mode;
    if (mode) ++out.dg_slots;
    else ++out.dyadic_slots;
  }

  double total_cost = 0.0;  // media-length units
  Index full_streams = 0;
  Index streams_started = 0;
  std::vector<std::pair<double, int>> events;

  // DG runs: contiguous DG-mode stretches, each costed with the exact
  // on-line DG cost; stream windows recorded for the concurrency sweep.
  for (Index k = 0; k < slots;) {
    if (!dg_mode[index_of(k)]) {
      ++k;
      continue;
    }
    Index end = k;
    while (end < slots && dg_mode[index_of(end)]) ++end;
    const Index run = end - k;
    total_cost += static_cast<double>(dg.cost(run)) / static_cast<double>(L);
    for (Index t = 0; t < run; ++t) {
      const double start = static_cast<double>(k + t + 1) * D;
      const double dur = static_cast<double>(dg.stream_length(t, run)) * D;
      events.emplace_back(start, +1);
      events.emplace_back(start + dur, -1);
      ++streams_started;
      if (t % dg.block_size() == 0) ++full_streams;
    }
    k = end;
  }

  // Dyadic runs: raw arrivals of dyadic-mode stretches served immediately
  // by a fresh merger (streams never merge across a mode switch).
  for (Index k = 0; k < slots;) {
    if (dg_mode[index_of(k)]) {
      ++k;
      continue;
    }
    Index end = k;
    while (end < slots && !dg_mode[index_of(end)]) ++end;
    merging::DyadicMerger merger(1.0, params.dyadic);
    for (Index j = k; j < end; ++j) {
      for (const double t : per_slot[index_of(j)]) merger.arrive(t);
    }
    const merging::GeneralMergeForest& forest = merger.forest();
    total_cost += forest.total_cost();
    full_streams += forest.num_roots();
    streams_started += forest.size();
    for (Index i = 0; i < forest.size(); ++i) {
      const double start = forest.stream(i).time;
      events.emplace_back(start, +1);
      events.emplace_back(start + forest.stream_duration(i), -1);
    }
    k = end;
  }

  out.bandwidth.streams_served = total_cost;
  out.bandwidth.full_streams = full_streams;
  out.bandwidth.streams_started = streams_started;
  out.bandwidth.peak_concurrency = peak_of(events);
  return out;
}

}  // namespace smerge::sim
