#include "sim/fault.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <utility>
#include <vector>

#include "util/parallel.h"
#include "util/rng.h"
#include "util/snapshot.h"

namespace smerge::sim {

namespace {

// The driver's checkpoint-time extension: the chunk the next drain
// boundary belongs to plus each object's trace cursor (arrivals or
// sessions already handed to the core). Restored verbatim by recovery
// and advanced by the replayed WAL tail.
std::vector<std::uint8_t> encode_driver_blob(
    std::uint64_t next_chunk, const std::vector<std::uint64_t>& cursors) {
  util::SnapshotWriter w;
  w.u64(next_chunk);
  w.u64(cursors.size());
  for (const std::uint64_t c : cursors) w.u64(c);
  const auto payload = w.payload();
  return {payload.begin(), payload.end()};
}

struct DriverCursor {
  std::uint64_t next_chunk = 0;
  std::vector<std::uint64_t> cursors;
};

DriverCursor decode_driver_blob(std::span<const std::uint8_t> blob,
                                std::size_t n_objects) {
  DriverCursor out;
  out.cursors.assign(n_objects, 0);
  if (blob.empty()) return out;
  util::SnapshotReader r(blob);
  out.next_chunk = r.u64();
  const std::uint64_t n = r.u64();
  if (n != n_objects) {
    throw util::SnapshotError("fault driver blob: object count mismatch");
  }
  for (std::uint64_t i = 0; i < n; ++i) out.cursors[i] = r.u64();
  r.expect_end();
  return out;
}

}  // namespace

void validate(const FaultPlan& plan) {
  if (plan.ingest_chunks < 1) {
    throw std::invalid_argument("fault plan: ingest_chunks must be >= 1");
  }
  if (plan.checkpoint_every_drains < 1) {
    throw std::invalid_argument(
        "fault plan: checkpoint_every_drains must be >= 1");
  }
  if (plan.keep_checkpoints < 1) {
    throw std::invalid_argument("fault plan: keep_checkpoints must be >= 1");
  }
  if (!(plan.mailbox_drop_rate >= 0.0) || !(plan.mailbox_drop_rate < 1.0)) {
    throw std::invalid_argument(
        "fault plan: mailbox_drop_rate must be in [0, 1)");
  }
  if (plan.max_delivery_retries < 0) {
    throw std::invalid_argument(
        "fault plan: max_delivery_retries must be >= 0");
  }
}

FaultRunResult run_engine_with_faults(const EngineConfig& config,
                                      OnlinePolicy& policy,
                                      const FaultPlan& plan) {
  validate(config.workload);
  validate(plan);
  if (config.threads < 1) {
    throw std::invalid_argument("engine: threads must be >= 1");
  }
  if (config.channel_capacity < 0) {
    throw std::invalid_argument("engine: channel_capacity must be >= 0");
  }
  const server::ServerCoreConfig core_cfg = core_config(config);
  const bool sessions = config.churn.enabled();
  const auto n_objects = static_cast<std::size_t>(config.workload.objects);

  // Full traces up front, exactly as run_engine generates them — the
  // deterministic source the WAL-and-re-feed loop draws from.
  const std::vector<double> weights =
      zipf_weights(config.workload.objects, config.workload.zipf_exponent);
  std::vector<std::vector<double>> arrival_traces(sessions ? 0 : n_objects);
  std::vector<std::vector<SessionTrace>> session_traces(sessions ? n_objects : 0);
  util::parallel_for(
      0, static_cast<std::int64_t>(n_objects),
      [&](std::int64_t i) {
        const auto m = static_cast<std::size_t>(i);
        if (sessions) {
          session_traces[m] = generate_sessions(config.workload, config.churn,
                                                static_cast<Index>(i), weights[m]);
        } else {
          arrival_traces[m] =
              generate_arrivals(config.workload, static_cast<Index>(i), weights[m]);
        }
      },
      config.threads);
  const auto trace_size = [&](std::size_t m) {
    return sessions ? session_traces[m].size() : arrival_traces[m].size();
  };
  const auto arrival_of = [&](std::size_t m, std::uint64_t i) {
    return sessions ? session_traces[m][static_cast<std::size_t>(i)].arrival
                    : arrival_traces[m][static_cast<std::size_t>(i)];
  };

  FaultRunResult out;
  server::AdmissionWal wal;
  std::deque<std::vector<std::uint8_t>> checkpoints;  // newest at front
  std::vector<std::uint64_t> cursors(n_objects, 0);
  util::SplitMix64 drop_rng(plan.fault_seed);
  auto core = std::make_unique<server::ServerCore>(core_cfg, policy);

  const auto crash_due = [&] {
    return plan.crash_at_record >= 0 &&
           wal.records() >= static_cast<std::uint64_t>(plan.crash_at_record);
  };
  // One mailbox delivery with the drop fault: each attempt may fail;
  // after the retries the batch is lost (WAL still carries it, so a
  // *crash* would redeliver — the in-run loss models a dead letter).
  const auto deliver = [&](auto&& apply) {
    for (int attempt = 0; attempt <= plan.max_delivery_retries; ++attempt) {
      if (plan.mailbox_drop_rate > 0.0 &&
          drop_rng.next_double() < plan.mailbox_drop_rate) {
        ++out.report.dropped_deliveries;
        continue;
      }
      apply();
      return;
    }
    ++out.report.lost_batches;
  };

  bool crashed = false;
  try {
    const double chunk_span =
        config.workload.horizon / static_cast<double>(plan.ingest_chunks);
    int drains = 0;
    for (int c = 0; c < plan.ingest_chunks; ++c) {
      const double upper = c + 1 == plan.ingest_chunks
                               ? std::numeric_limits<double>::infinity()
                               : chunk_span * static_cast<double>(c + 1);
      for (std::size_t m = 0; m < n_objects; ++m) {
        std::uint64_t end = cursors[m];
        while (end < trace_size(m) && arrival_of(m, end) <= upper) ++end;
        if (end == cursors[m]) continue;
        const auto object = static_cast<Index>(m);
        if (sessions) {
          const std::vector<SessionTrace> batch(
              session_traces[m].begin() +
                  static_cast<std::ptrdiff_t>(cursors[m]),
              session_traces[m].begin() + static_cast<std::ptrdiff_t>(end));
          wal.log_ingest_sessions(object, batch);
          if (crash_due()) throw InjectedCrash();
          deliver([&] { core->ingest_session_trace(object, batch); });
        } else {
          const std::span<const double> batch{
              arrival_traces[m].data() + cursors[m],
              static_cast<std::size_t>(end - cursors[m])};
          wal.log_ingest_trace(object, batch);
          if (crash_due()) throw InjectedCrash();
          deliver([&] {
            core->ingest_trace(object, {batch.begin(), batch.end()});
          });
        }
        cursors[m] = end;
      }
      wal.log_drain();
      if (crash_due()) throw InjectedCrash();
      core->drain();
      ++drains;
      if (drains % plan.checkpoint_every_drains == 0) {
        checkpoints.push_front(core->checkpoint(
            wal.records(),
            encode_driver_blob(static_cast<std::uint64_t>(c + 1), cursors)));
        while (checkpoints.size() >
               static_cast<std::size_t>(plan.keep_checkpoints)) {
          checkpoints.pop_back();
        }
        ++out.report.checkpoints_written;
      }
    }
  } catch (const InjectedCrash&) {
    crashed = true;
  }
  out.report.crashed = crashed;
  out.report.crash_record = wal.records();

  if (crashed) {
    // The durable artifacts at the crash: the WAL possibly missing a
    // torn suffix (header always survives — shorter is not a crash
    // artifact but a wrong file), checkpoints possibly corrupted.
    std::vector<std::uint8_t> durable_wal = wal.bytes();
    if (plan.wal_torn_bytes > 0 && durable_wal.size() > 16) {
      durable_wal.resize(
          std::max<std::size_t>(16, durable_wal.size() - plan.wal_torn_bytes));
    }
    std::vector<std::vector<std::uint8_t>> candidates(checkpoints.begin(),
                                                      checkpoints.end());
    if (plan.corrupt_checkpoint_byte >= 0 && !candidates.empty() &&
        !candidates.front().empty()) {
      auto& newest = candidates.front();
      newest[static_cast<std::size_t>(plan.corrupt_checkpoint_byte) %
             newest.size()] ^= 0xff;
    }

    server::RecoveredCore recovered = server::recover(
        core_cfg, &policy, candidates, {durable_wal.data(), durable_wal.size()});
    out.report.recovery = std::move(recovered.report);
    core = std::move(recovered.core);

    // Resume cursors: what the restored checkpoint had seen, advanced
    // by every replayed ingest record. Records torn off the WAL tail
    // are simply regenerated from the deterministic traces below.
    DriverCursor resume = decode_driver_blob(
        {recovered.driver_blob.data(), recovered.driver_blob.size()},
        n_objects);
    for (const server::WalRecord& record : recovered.replayed) {
      const auto m = static_cast<std::size_t>(record.object);
      switch (record.type) {
        case server::WalRecordType::kIngest:
        case server::WalRecordType::kAdmit:
          resume.cursors[m] += 1;
          break;
        case server::WalRecordType::kIngestTrace:
          resume.cursors[m] += record.times.size();
          break;
        case server::WalRecordType::kIngestSessions:
          resume.cursors[m] += record.sessions.size();
          break;
        case server::WalRecordType::kDrain:
          break;
      }
    }
    for (std::size_t m = 0; m < n_objects; ++m) {
      if (resume.cursors[m] >= trace_size(m)) continue;
      const auto object = static_cast<Index>(m);
      const auto from = static_cast<std::ptrdiff_t>(resume.cursors[m]);
      if (sessions) {
        core->ingest_session_trace(
            object, {session_traces[m].begin() + from, session_traces[m].end()});
      } else {
        core->ingest_trace(
            object, {arrival_traces[m].begin() + from, arrival_traces[m].end()});
      }
      ++out.report.refed_batches;
    }
  }

  core->finish();
  out.result = to_engine_result(core->take_snapshot());
  return out;
}

FaultPlan parse_fault_plan(const std::string& spec) {
  FaultPlan plan;
  if (spec.empty() || spec == "none") return plan;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = std::min(spec.find(',', pos), spec.size());
    const std::string token = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (token.empty()) {
      throw std::invalid_argument("--fault: empty clause in '" + spec + "'");
    }
    const auto number = [&](const std::string& text) {
      std::size_t used = 0;
      long long value = 0;
      try {
        value = std::stoll(text, &used);
      } catch (const std::exception&) {
        used = 0;
      }
      if (text.empty() || used != text.size()) {
        throw std::invalid_argument("--fault: bad number '" + text + "' in '" +
                                    spec + "'");
      }
      return value;
    };
    if (token.rfind("crash@", 0) == 0) {
      plan.crash_at_record = number(token.substr(6));
      continue;
    }
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("--fault: bad clause '" + token +
                                  "' (expected crash@K or key=value)");
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "torn") {
      const long long n = number(value);
      if (n < 0) throw std::invalid_argument("--fault: torn must be >= 0");
      plan.wal_torn_bytes = static_cast<std::size_t>(n);
    } else if (key == "corrupt") {
      plan.corrupt_checkpoint_byte = number(value);
    } else if (key == "drop") {
      std::size_t used = 0;
      double rate = 0.0;
      try {
        rate = std::stod(value, &used);
      } catch (const std::exception&) {
        used = 0;
      }
      if (value.empty() || used != value.size()) {
        throw std::invalid_argument("--fault: bad number '" + value + "' in '" +
                                    spec + "'");
      }
      plan.mailbox_drop_rate = rate;
    } else if (key == "retries") {
      plan.max_delivery_retries = static_cast<int>(number(value));
    } else if (key == "chunks") {
      plan.ingest_chunks = static_cast<int>(number(value));
    } else if (key == "ckpt") {
      plan.checkpoint_every_drains = static_cast<int>(number(value));
    } else if (key == "keep") {
      plan.keep_checkpoints = static_cast<int>(number(value));
    } else if (key == "seed") {
      plan.fault_seed = static_cast<std::uint64_t>(number(value));
    } else {
      throw std::invalid_argument("--fault: unknown key '" + key + "'");
    }
  }
  validate(plan);
  return plan;
}

}  // namespace smerge::sim
