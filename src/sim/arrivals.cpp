#include "sim/arrivals.h"

#include <random>
#include <stdexcept>

namespace smerge::sim {

std::vector<double> constant_arrivals(double gap, double horizon) {
  if (!(gap > 0.0)) {
    throw std::invalid_argument("constant_arrivals: gap must be positive");
  }
  if (horizon < 0.0) {
    throw std::invalid_argument("constant_arrivals: horizon must be nonnegative");
  }
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(horizon / gap) + 1);
  for (double t = gap; t <= horizon; t += gap) out.push_back(t);
  return out;
}

std::vector<double> poisson_arrivals(double mean_gap, double horizon,
                                     std::uint64_t seed) {
  if (!(mean_gap > 0.0)) {
    throw std::invalid_argument("poisson_arrivals: mean gap must be positive");
  }
  if (horizon < 0.0) {
    throw std::invalid_argument("poisson_arrivals: horizon must be nonnegative");
  }
  std::mt19937_64 rng(seed);
  std::exponential_distribution<double> gap(1.0 / mean_gap);
  std::vector<double> out;
  for (double t = gap(rng); t <= horizon; t += gap(rng)) out.push_back(t);
  return out;
}

}  // namespace smerge::sim
