// Pluggable workload generators for the multi-object simulation engine.
//
// A workload describes *who asks for what, when*: an arrival process in
// continuous time (the paper's constant-rate and Poisson processes of
// Section 4.2, plus a flash-crowd burst and a diurnal rate modulation
// motivated by the heterogeneous-access and QoE literature) spread over
// a catalogue of N media objects with Zipf-skewed popularity. Every
// object draws from its own splittable RNG substream
// (`util::SplitMix64::split(object)`), so the arrival trace of object m
// is a pure function of (config, m) — independent of how objects are
// sharded across threads, which is what makes whole runs reproducible
// from a single seed.
//
// All quantities follow the paper's normalization: the media length is
// 1.0 time unit, gaps and horizons are expressed in media lengths.
#ifndef SMERGE_SIM_WORKLOAD_H
#define SMERGE_SIM_WORKLOAD_H

#include <cstdint>
#include <vector>

#include "core/session.h"
#include "fib/fibonacci.h"
#include "util/rng.h"

namespace smerge::sim {

/// The shape of the client arrival process.
enum class ArrivalProcess {
  kPoisson,       ///< memoryless gaps around the mean (Fig. 12 setup)
  kConstantRate,  ///< exact gaps (Fig. 11 setup)
  kFlashCrowd,    ///< Poisson with a rate-multiplied burst window
  kDiurnal,       ///< Poisson with sinusoidal rate-of-day modulation
};

/// Human-readable process name.
[[nodiscard]] const char* to_string(ArrivalProcess process) noexcept;

/// One workload: an arrival process over a Zipf-weighted catalogue.
struct WorkloadConfig {
  ArrivalProcess process = ArrivalProcess::kPoisson;
  Index objects = 1;           ///< catalogue size N
  double zipf_exponent = 1.0;  ///< popularity skew (0 = uniform)
  double mean_gap = 0.01;      ///< aggregate mean inter-arrival gap
  double horizon = 100.0;      ///< simulated time, in media lengths
  std::uint64_t seed = 42;     ///< master seed; objects get substreams

  // Flash crowd: inside [burst_start, burst_start + burst_duration) the
  // arrival rate is multiplied by burst_multiplier.
  double burst_start = 10.0;
  double burst_duration = 2.0;
  double burst_multiplier = 10.0;

  // Diurnal: rate(t) = base * (1 + amplitude * sin(2*pi*t / period)).
  double diurnal_amplitude = 0.5;  ///< in [0, 1)
  double diurnal_period = 24.0;    ///< in media lengths
};

/// Mid-session behaviour layered on top of an arrival process: each
/// session independently may pause, seek, or abandon. Rates are
/// per-session probabilities (not hazards); positions are uniform over
/// the media. Drawn from a churn-salted RNG substream *separate* from
/// the arrival substream, so enabling churn never perturbs the arrival
/// trace — the with/without-churn runs see identical admissions.
struct SessionChurnConfig {
  double abandon_rate = 0.0;  ///< P(session departs mid-play)
  double pause_rate = 0.0;    ///< P(session pauses once)
  double seek_rate = 0.0;     ///< P(session seeks once)
  double mean_pause = 0.1;    ///< mean pause duration, in media lengths

  /// Whether any churn behaviour is switched on.
  [[nodiscard]] bool enabled() const noexcept {
    return abandon_rate > 0.0 || pause_rate > 0.0 || seek_rate > 0.0;
  }
};

/// Validates a churn config; throws std::invalid_argument with the
/// offending field on failure.
void validate(const SessionChurnConfig& churn);

/// Sessions of one object: `generate_arrivals` for the arrival times,
/// plus per-session churn events (sorted by media position; nothing
/// follows an abandon). Deterministic per (config, churn, object), and
/// session i's arrival equals generate_arrivals(config, object)[i]
/// exactly — churn draws ride a salted sibling substream.
[[nodiscard]] std::vector<SessionTrace> generate_sessions(
    const WorkloadConfig& config, const SessionChurnConfig& churn, Index object);

/// Same, with the object's popularity weight precomputed by the caller.
[[nodiscard]] std::vector<SessionTrace> generate_sessions(
    const WorkloadConfig& config, const SessionChurnConfig& churn, Index object,
    double weight);

/// Zipf popularity weights for `objects` objects with the given exponent,
/// normalized to sum to 1 (object 0 most popular). Throws
/// std::invalid_argument when objects < 1.
[[nodiscard]] std::vector<double> zipf_weights(Index objects, double exponent);

/// Validates a workload config; throws std::invalid_argument with the
/// offending field on failure.
void validate(const WorkloadConfig& config);

/// Sorted arrival times of one object on (0, horizon]. Deterministic:
/// a pure function of (config, object), whatever thread calls it.
/// Object m runs the process at rate zipf_weights[m] / mean_gap; for
/// the Poisson-based processes this thinning is exact (the aggregate
/// over all objects is the configured process at rate 1 / mean_gap);
/// for constant rate each object is its own regular comb, matching the
/// aggregate rate but not a single merged comb.
[[nodiscard]] std::vector<double> generate_arrivals(const WorkloadConfig& config,
                                                    Index object);

/// Same, with the object's popularity weight already computed by the
/// caller (the engine computes `zipf_weights` once per run instead of
/// once per object).
[[nodiscard]] std::vector<double> generate_arrivals(const WorkloadConfig& config,
                                                    Index object, double weight);

/// Expected aggregate arrival count over the horizon (all objects) —
/// the mean of the process (a sanity anchor for sizing scenarios and
/// for the generator statistics tests).
[[nodiscard]] double expected_arrivals(const WorkloadConfig& config);

}  // namespace smerge::sim

#endif  // SMERGE_SIM_WORKLOAD_H
