// Synthetic client-arrival processes (Section 4.2's experimental setup).
//
// The paper evaluates two arrival types over a horizon of 100 media
// lengths: constant-rate arrivals with inter-arrival gap lambda and
// Poisson arrivals with mean inter-arrival gap lambda (both expressed as
// a fraction of the media length). Generators are deterministic under a
// fixed seed so every experiment is reproducible.
#ifndef SMERGE_SIM_ARRIVALS_H
#define SMERGE_SIM_ARRIVALS_H

#include <cstdint>
#include <vector>

namespace smerge::sim {

/// Arrival times k*gap for k = 1, 2, ... up to and including `horizon`.
/// Requires gap > 0 and horizon >= 0.
[[nodiscard]] std::vector<double> constant_arrivals(double gap, double horizon);

/// Poisson process with mean inter-arrival `mean_gap` on (0, horizon],
/// generated from a seeded mt19937_64. Requires mean_gap > 0.
[[nodiscard]] std::vector<double> poisson_arrivals(double mean_gap, double horizon,
                                                   std::uint64_t seed);

}  // namespace smerge::sim

#endif  // SMERGE_SIM_ARRIVALS_H
