// Multi-object server (Section 5, "future work").
//
// A real Media-on-Demand server carries many media objects with skewed
// popularity. The paper's discussion argues the stream-merging model fits
// this setting because bandwidth is allocated dynamically, and that the
// Delay Guaranteed algorithm caps the *peak* bandwidth (it never starts
// more than one stream per object per slot and never declines a request).
//
// This module simulates M objects with Zipf-distributed popularity under
// a shared Poisson arrival process and compares per-object policies by
// aggregate bandwidth and aggregate peak concurrency.
#ifndef SMERGE_SIM_MULTI_OBJECT_H
#define SMERGE_SIM_MULTI_OBJECT_H

#include <cstdint>
#include <vector>

#include "sim/experiment.h"

namespace smerge::sim {

/// Per-object service policy.
enum class Policy {
  kDelayGuaranteed,  ///< a stream per slot per object, DG merging
  kDyadicImmediate,  ///< immediate dyadic merging on raw arrivals
  kDyadicBatched,    ///< batch to slot ends, then dyadic merging
};

/// Configuration of a multi-object run. All media have length 1.0.
struct MultiObjectConfig {
  Index objects = 10;           ///< catalogue size M
  double zipf_exponent = 1.0;   ///< popularity skew (0 = uniform)
  double mean_gap = 0.005;      ///< aggregate mean inter-arrival gap
  double horizon = 100.0;       ///< simulated time, media lengths
  double delay = 0.01;          ///< per-object start-up delay
  std::uint64_t seed = 42;      ///< RNG seed (arrivals + object choice)
};

/// Aggregate outcome of a multi-object simulation.
struct MultiObjectResult {
  double streams_served = 0.0;           ///< summed over objects
  Index peak_concurrency = 0;            ///< across all objects' streams
  std::vector<double> per_object;        ///< streams served per object
  std::vector<Index> arrivals_per_object;
};

/// Runs the simulation under `policy`. Deterministic for a fixed config.
[[nodiscard]] MultiObjectResult run_multi_object(const MultiObjectConfig& config,
                                                 Policy policy);

/// Zipf popularity weights for M objects with the given exponent,
/// normalized to sum to 1 (object 0 most popular).
[[nodiscard]] std::vector<double> zipf_weights(Index objects, double exponent);

}  // namespace smerge::sim

#endif  // SMERGE_SIM_MULTI_OBJECT_H
