// Multi-object server (Section 5, "future work").
//
// A real Media-on-Demand server carries many media objects with skewed
// popularity. The paper's discussion argues the stream-merging model fits
// this setting because bandwidth is allocated dynamically, and that the
// Delay Guaranteed algorithm caps the *peak* bandwidth (it never starts
// more than one stream per object per slot and never declines a request).
//
// This module is now a thin adapter over the discrete-event engine
// (src/sim/engine.h): it maps the historical per-object `Policy` enum to
// the pluggable OnlinePolicy implementations and a Zipf/Poisson workload,
// preserving the original comparison API for the Section-5 ablation.
#ifndef SMERGE_SIM_MULTI_OBJECT_H
#define SMERGE_SIM_MULTI_OBJECT_H

#include <cstdint>
#include <vector>

#include "sim/workload.h"

namespace smerge::sim {

/// Per-object service policy.
enum class Policy {
  kDelayGuaranteed,  ///< a stream per slot per object, DG merging
  kDyadicImmediate,  ///< immediate dyadic merging on raw arrivals
  kDyadicBatched,    ///< batch to slot ends, then dyadic merging
};

/// Configuration of a multi-object run. All media have length 1.0.
struct MultiObjectConfig {
  Index objects = 10;           ///< catalogue size M
  double zipf_exponent = 1.0;   ///< popularity skew (0 = uniform)
  double mean_gap = 0.005;      ///< aggregate mean inter-arrival gap
  double horizon = 100.0;       ///< simulated time, media lengths
  double delay = 0.01;          ///< per-object start-up delay
  std::uint64_t seed = 42;      ///< RNG seed (arrivals + object choice)
};

/// Aggregate outcome of a multi-object simulation.
struct MultiObjectResult {
  double streams_served = 0.0;           ///< summed over objects
  Index peak_concurrency = 0;            ///< across all objects' streams
  std::vector<double> per_object;        ///< streams served per object
  std::vector<Index> arrivals_per_object;
};

/// Runs the simulation under `policy` through the discrete-event engine.
/// Deterministic for a fixed config (any `threads`); `threads` widens
/// the engine's object sharding.
[[nodiscard]] MultiObjectResult run_multi_object(const MultiObjectConfig& config,
                                                 Policy policy,
                                                 unsigned threads = 1);

}  // namespace smerge::sim

#endif  // SMERGE_SIM_MULTI_OBJECT_H
