// The asynchronous network front end over server::ServerCore — the
// wire that turns the in-process admission engine into a service.
//
// Thread shape:
//
//  * one *driver* thread owns everything only the core's single driver
//    may touch: it accepts connections (handing each to a reactor
//    round-robin), runs `drain()` on a timerfd cadence (so batching
//    survives idle sockets), refreshes the cached stats the wire and
//    HTTP surfaces serve, and executes the finish sequence;
//  * `reactors` *reactor* threads each run an edge-triggered epoll loop
//    over their connections: non-blocking reads feed the incremental
//    frame decoder, ADMIT records go straight into
//    `ServerCore::post()` — the existing lock-free per-shard MPSC
//    mailboxes, zero new locks on the hot path — and TICKET replies are
//    stamped from `preview_admission()` (construction-time slot
//    arithmetic, safe from any thread).
//
// Tickets and drains: a TICKET is buffered per connection tagged with
// the drain epoch observed before its post and flushed once a strictly
// later drain completes, so a client that has received every ticket
// knows its admissions are folded — which is what makes the FINISH
// handshake sound: by the time a client sends FINISH, all tickets (its
// own and, per the protocol contract, every other producer's) are in,
// so the driver's drain+finish sees quiesced mailboxes. The driver
// still retries a few drain rounds and reports a failed summary rather
// than crashing if a peer violates the contract.
//
// Determinism: the core folds arrivals by per-object arrival order, so
// the final snapshot is a pure function of each object's arrival
// sequence — not of connection interleaving, drain cadence, reactor or
// shard count. The loopback soak asserts exactly this: a wire-fed run
// hashes (server/wire.h snapshot_digest) identical to `ingest_trace`
// of the same workload at shard widths 1, 2 and 4.
//
// Debug surface: plain-text HTTP on the same port (the binary magic
// starts with 'S', so the first byte classifies the stream): GET
// /stats, /live and /dispatch answer JSON built with util::JsonWriter
// and close.
#ifndef SMERGE_NET_SERVER_H
#define SMERGE_NET_SERVER_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/connection.h"
#include "net/event_loop.h"
#include "server/server_core.h"
#include "server/wire.h"

namespace smerge::net {

struct NetServerConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;        ///< 0 = ephemeral (read back via port())
  unsigned reactors = 1;         ///< epoll loops; >= 1
  std::uint64_t drain_interval_us = 500;  ///< timerfd drain cadence
  std::size_t read_chunk = std::size_t{64} << 10;
  std::size_t write_high_watermark = std::size_t{4} << 20;
  int listen_backlog = 128;
};

/// Transport-level totals (independent of the core's admission stats).
struct NetCounters {
  std::uint64_t accepted = 0;
  std::uint64_t closed = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t http_requests = 0;
  std::uint64_t admits = 0;    ///< ADMIT records posted
  std::uint64_t tickets = 0;   ///< TICKET records sent
  std::uint64_t drains = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
};

class NetServer {
 public:
  /// Builds the core (generic-policy, non-session serving only — the
  /// post() path) and validates the net config. The policy must outlive
  /// the server. Throws std::invalid_argument on a bad config.
  NetServer(const NetServerConfig& net_config,
            const server::ServerCoreConfig& core_config,
            OnlinePolicy& policy);
  ~NetServer();
  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds, listens and spawns the driver + reactor threads. Throws
  /// std::system_error (EADDRINUSE lands here) without leaking threads.
  void start();

  /// Stops every thread and closes every connection. Idempotent;
  /// callable whether or not a FINISH was served.
  void stop();

  /// The bound port (resolves an ephemeral request). Valid after
  /// start().
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Waits until a client's FINISH was served *and* its FINISHED reply
  /// flushed (or the finishing connection died). Returns false on
  /// timeout.
  bool wait_finished(std::chrono::milliseconds timeout);

  /// True once the finish sequence ran (successfully or not).
  [[nodiscard]] bool finished() const noexcept {
    return finished_.load(std::memory_order_acquire);
  }

  /// The end-of-run summary / snapshot. Valid after finished(); throws
  /// std::logic_error before.
  [[nodiscard]] const server::WireSummary& summary() const;
  [[nodiscard]] const server::Snapshot& snapshot() const;
  /// Non-empty when the finish sequence failed server-side.
  [[nodiscard]] std::string error() const;

  /// The stats the wire/HTTP surfaces serve: the core's LiveStats as of
  /// the latest completed drain. Callable from any thread.
  [[nodiscard]] server::LiveStats live() const;
  [[nodiscard]] NetCounters counters() const;

 private:
  struct Reactor;

  void driver_loop();
  void reactor_loop(Reactor& r);
  void accept_ready();
  void run_drain();
  void run_finish();
  void adopt_inbox(Reactor& r);
  void handle_conn_event(Reactor& r, int fd, std::uint32_t events);
  void process_input(Reactor& r, Connection& c);
  void handle_frame(Reactor& r, Connection& c, const Frame& frame);
  void handle_http(Reactor& r, Connection& c);
  void flush_tickets(Reactor& r);
  void update_write_interest(Reactor& r, Connection& c);
  void close_conn(Reactor& r, int fd);
  [[nodiscard]] std::string http_body(const std::string& path);

  NetServerConfig net_config_;
  OnlinePolicy& policy_;
  server::ServerCore core_;
  std::uint16_t port_ = 0;

  FdHandle listener_;
  EventFd driver_wake_;
  std::thread driver_;
  std::vector<std::unique_ptr<Reactor>> reactors_;
  std::size_t next_reactor_ = 0;  ///< driver-only round-robin cursor

  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> completed_drains_{0};
  std::atomic<bool> finish_requested_{false};
  std::atomic<bool> finished_{false};

  // Finish handshake: which connection sent FINISH (reactor index +
  // fd), and whether its FINISHED reply left the socket buffer.
  std::atomic<int> finish_reactor_{-1};
  std::atomic<int> finish_fd_{-1};
  std::atomic<bool> finish_flushed_{false};

  mutable std::mutex state_mutex_;  ///< cached stats + finish results
  std::condition_variable finished_cv_;
  server::LiveStats cached_live_;
  server::Snapshot snapshot_;
  server::WireSummary summary_;
  std::string error_;

  // Transport counters (relaxed; exactness is not load-bearing).
  std::atomic<std::uint64_t> n_accepted_{0}, n_closed_{0}, n_proto_errors_{0},
      n_http_{0}, n_admits_{0}, n_tickets_{0}, n_drains_{0}, n_bytes_in_{0},
      n_bytes_out_{0};
};

}  // namespace smerge::net

#endif  // SMERGE_NET_SERVER_H
