// The admission wire protocol: a minimal length-prefixed binary framing
// carrying ADMIT / TICKET / STATS / PING records between vod_loadgen
// (or any client) and the NetServer front end.
//
// Every frame is a fixed 16-byte little-endian header followed by a
// typed payload:
//
//   offset  size  field
//        0     4  magic "SMN1" (0x314E4D53 LE)
//        4     1  version (kProtocolVersion)
//        5     1  record type (RecordType)
//        6     2  reserved, must be zero
//        8     4  payload length (<= kMaxPayload)
//       12     4  header checksum: FNV-1a 64 over bytes [0, 12), low 32
//
// The checksum makes a desynchronized or corrupted stream fail loudly
// at the first bad header instead of mis-framing everything after it.
// Payload encodings reuse the typed little-endian substrate of
// util/snapshot.h (bit-exact doubles), so ticket and stats bytes are
// shared with the crash-consistency codec via server/wire.h.
//
// `FrameDecoder` is the incremental receive side: bytes arrive in
// arbitrary splits (non-blocking sockets tear frames at every byte
// boundary), the decoder buffers the torn prefix and yields each
// complete frame exactly once. Malformed input — bad magic, unknown
// version or type, nonzero reserved bits, checksum mismatch, oversized
// payload — throws a structured `ProtocolError`; the connection owner
// closes the stream (there is no resynchronization by design: the
// transport is a reliable byte stream, so a framing error means a buggy
// or hostile peer, not noise).
//
// The first magic byte 0x53 ('S') differs from 'G'/'P'/'H', which is
// what lets the server sniff plain-text HTTP ("GET /stats ...") on the
// same listening port and route it to the debug surface.
#ifndef SMERGE_NET_PROTOCOL_H
#define SMERGE_NET_PROTOCOL_H

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace smerge::net {

inline constexpr std::uint32_t kMagic = 0x314E4D53;  // "SMN1" little-endian
inline constexpr std::uint8_t kProtocolVersion = 1;
inline constexpr std::size_t kHeaderSize = 16;
/// Upper bound on a payload: large enough for any stats/summary record,
/// small enough that a corrupted length cannot balloon the buffer.
inline constexpr std::size_t kMaxPayload = std::size_t{1} << 20;

/// Record types. Client-to-server: kAdmit, kStatsRequest, kPing,
/// kFinish. Server-to-client: kTicket, kStats, kPong, kFinished.
enum class RecordType : std::uint8_t {
  kAdmit = 1,        ///< u64 request_id, i64 object, f64 time
  kTicket = 2,       ///< u64 request_id, server::Ticket (server/wire.h)
  kStatsRequest = 3, ///< empty
  kStats = 4,        ///< server::LiveStats (server/wire.h)
  kPing = 5,         ///< u64 nonce
  kPong = 6,         ///< u64 nonce echoed
  kFinish = 7,       ///< empty: drain, finish(), certify the run
  kFinished = 8,     ///< server::WireSummary (server/wire.h)
};

/// True for the types this protocol version defines.
[[nodiscard]] bool valid_record_type(std::uint8_t type) noexcept;

/// Structured framing failure; the message names the violated field.
class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One complete frame, viewing the decoder's buffer. Valid until the
/// next next_frame()/feed() call on the decoder that produced it.
struct Frame {
  RecordType type = RecordType::kPing;
  std::span<const std::uint8_t> payload;
};

/// Appends a framed record (header + payload) to `out`.
void append_frame(std::vector<std::uint8_t>& out, RecordType type,
                  std::span<const std::uint8_t> payload);

/// Appends an ADMIT record to `out` — the hot-path encoder, one append,
/// no intermediate writer.
void append_admit(std::vector<std::uint8_t>& out, std::uint64_t request_id,
                  std::int64_t object, double time);

/// Decoded ADMIT payload.
struct AdmitRecord {
  std::uint64_t request_id = 0;
  std::int64_t object = 0;
  double time = 0.0;
};

/// Parses an ADMIT payload — the hot-path decoder. Throws ProtocolError
/// on a size mismatch.
[[nodiscard]] AdmitRecord parse_admit(std::span<const std::uint8_t> payload);

/// Appends a frame whose payload is a single u64 (PING/PONG nonces).
void append_u64_frame(std::vector<std::uint8_t>& out, RecordType type,
                      std::uint64_t value);

/// Parses a single-u64 payload. Throws ProtocolError on a size mismatch.
[[nodiscard]] std::uint64_t parse_u64(std::span<const std::uint8_t> payload);

/// Incremental frame decoder over an arbitrarily torn byte stream.
///
///   auto span = decoder.writable(64 << 10);
///   ssize_t n = read(fd, span.data(), span.size());
///   decoder.commit(size_t(n));
///   while (auto frame = decoder.next_frame()) { ... }
///
/// `feed` is the copying convenience for tests and blocking clients.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_payload = kMaxPayload)
      : max_payload_(max_payload) {}

  /// Reserves `n` writable bytes at the buffer tail for a direct socket
  /// read, compacting consumed bytes first. commit() the bytes actually
  /// read. The span is invalidated by any other decoder call.
  [[nodiscard]] std::span<std::uint8_t> writable(std::size_t n);
  void commit(std::size_t n) noexcept;

  /// Copying append (equivalent to writable+memcpy+commit).
  void feed(std::span<const std::uint8_t> bytes);

  /// Yields the next complete frame, or false when only a torn prefix
  /// remains buffered. Throws ProtocolError on a malformed header; the
  /// decoder is then poisoned (every later call throws) — close the
  /// connection.
  [[nodiscard]] bool next_frame(Frame& frame);

  /// Bytes buffered but not yet consumed as frames (the torn prefix
  /// plus any complete frames not yet pulled).
  [[nodiscard]] std::size_t buffered() const noexcept {
    return buffer_.size() - pos_;
  }

  /// The buffered bytes, unconsumed — what the server's HTTP sniffer
  /// classifies before any frame parsing. Invalidated like `Frame`.
  [[nodiscard]] std::span<const std::uint8_t> peek() const noexcept {
    return {buffer_.data() + pos_, buffer_.size() - pos_};
  }
  /// Drops up to `n` buffered bytes without frame parsing (the HTTP
  /// path drains the raw bytes it consumed).
  void consume(std::size_t n) noexcept {
    pos_ += n < buffered() ? n : buffered();
  }

 private:
  void compact();

  std::size_t max_payload_;
  std::vector<std::uint8_t> buffer_;
  std::size_t pos_ = 0;        ///< first unconsumed byte
  std::size_t reserved_ = 0;   ///< last writable() reservation
  bool poisoned_ = false;
};

}  // namespace smerge::net

#endif  // SMERGE_NET_PROTOCOL_H
