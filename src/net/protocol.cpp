#include "net/protocol.h"

#include <bit>
#include <cstring>

#include "util/snapshot.h"

namespace smerge::net {

namespace {

void put_u32(std::uint8_t* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

void put_u64(std::uint8_t* p, std::uint64_t v) noexcept {
  put_u32(p, static_cast<std::uint32_t>(v));
  put_u32(p + 4, static_cast<std::uint32_t>(v >> 32));
}

[[nodiscard]] std::uint32_t get_u32(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

[[nodiscard]] std::uint32_t header_checksum(const std::uint8_t* header) noexcept {
  return static_cast<std::uint32_t>(
      util::fnv1a64({header, kHeaderSize - 4}));
}

}  // namespace

bool valid_record_type(std::uint8_t type) noexcept {
  return type >= static_cast<std::uint8_t>(RecordType::kAdmit) &&
         type <= static_cast<std::uint8_t>(RecordType::kFinished);
}

void append_frame(std::vector<std::uint8_t>& out, RecordType type,
                  std::span<const std::uint8_t> payload) {
  if (payload.size() > kMaxPayload) {
    throw ProtocolError("net: frame payload exceeds kMaxPayload");
  }
  const std::size_t base = out.size();
  out.resize(base + kHeaderSize + payload.size());
  std::uint8_t* h = out.data() + base;
  put_u32(h, kMagic);
  h[4] = kProtocolVersion;
  h[5] = static_cast<std::uint8_t>(type);
  h[6] = 0;
  h[7] = 0;
  put_u32(h + 8, static_cast<std::uint32_t>(payload.size()));
  put_u32(h + 12, header_checksum(h));
  if (!payload.empty()) {
    std::memcpy(h + kHeaderSize, payload.data(), payload.size());
  }
}

void append_admit(std::vector<std::uint8_t>& out, std::uint64_t request_id,
                  std::int64_t object, double time) {
  constexpr std::size_t kPayload = 24;
  const std::size_t base = out.size();
  out.resize(base + kHeaderSize + kPayload);
  std::uint8_t* h = out.data() + base;
  put_u32(h, kMagic);
  h[4] = kProtocolVersion;
  h[5] = static_cast<std::uint8_t>(RecordType::kAdmit);
  h[6] = 0;
  h[7] = 0;
  put_u32(h + 8, kPayload);
  put_u32(h + 12, header_checksum(h));
  put_u64(h + kHeaderSize, request_id);
  put_u64(h + kHeaderSize + 8, static_cast<std::uint64_t>(object));
  put_u64(h + kHeaderSize + 16, std::bit_cast<std::uint64_t>(time));
}

namespace {

[[nodiscard]] std::uint64_t get_u64(const std::uint8_t* p) noexcept {
  return static_cast<std::uint64_t>(get_u32(p)) |
         (static_cast<std::uint64_t>(get_u32(p + 4)) << 32);
}

}  // namespace

AdmitRecord parse_admit(std::span<const std::uint8_t> payload) {
  if (payload.size() != 24) {
    throw ProtocolError("net: ADMIT payload must be 24 bytes");
  }
  AdmitRecord r;
  r.request_id = get_u64(payload.data());
  r.object = static_cast<std::int64_t>(get_u64(payload.data() + 8));
  r.time = std::bit_cast<double>(get_u64(payload.data() + 16));
  return r;
}

void append_u64_frame(std::vector<std::uint8_t>& out, RecordType type,
                      std::uint64_t value) {
  std::uint8_t payload[8];
  put_u64(payload, value);
  append_frame(out, type, payload);
}

std::uint64_t parse_u64(std::span<const std::uint8_t> payload) {
  if (payload.size() != 8) {
    throw ProtocolError("net: payload must be a single u64");
  }
  return get_u64(payload.data());
}

std::span<std::uint8_t> FrameDecoder::writable(std::size_t n) {
  if (poisoned_) throw ProtocolError("net: decoder poisoned by earlier error");
  compact();
  const std::size_t base = buffer_.size();
  buffer_.resize(base + n);
  reserved_ = n;
  return {buffer_.data() + base, n};
}

void FrameDecoder::commit(std::size_t n) noexcept {
  // writable() grew the buffer by the full reservation; shrink back to
  // what the socket actually delivered.
  if (n > reserved_) n = reserved_;
  buffer_.resize(buffer_.size() - (reserved_ - n));
  reserved_ = 0;
}

void FrameDecoder::feed(std::span<const std::uint8_t> bytes) {
  if (poisoned_) throw ProtocolError("net: decoder poisoned by earlier error");
  compact();
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

bool FrameDecoder::next_frame(Frame& frame) {
  if (poisoned_) throw ProtocolError("net: decoder poisoned by earlier error");
  if (buffer_.size() - pos_ < kHeaderSize) return false;
  const std::uint8_t* h = buffer_.data() + pos_;
  if (get_u32(h) != kMagic) {
    poisoned_ = true;
    throw ProtocolError("net: bad frame magic");
  }
  if (h[4] != kProtocolVersion) {
    poisoned_ = true;
    throw ProtocolError("net: unsupported protocol version");
  }
  if (!valid_record_type(h[5])) {
    poisoned_ = true;
    throw ProtocolError("net: unknown record type");
  }
  if (h[6] != 0 || h[7] != 0) {
    poisoned_ = true;
    throw ProtocolError("net: nonzero reserved header bits");
  }
  const std::uint32_t len = get_u32(h + 8);
  if (len > max_payload_) {
    poisoned_ = true;
    throw ProtocolError("net: frame payload exceeds the size bound");
  }
  if (get_u32(h + 12) != header_checksum(h)) {
    poisoned_ = true;
    throw ProtocolError("net: header checksum mismatch");
  }
  if (buffer_.size() - pos_ < kHeaderSize + len) return false;
  frame.type = static_cast<RecordType>(h[5]);
  frame.payload = {buffer_.data() + pos_ + kHeaderSize, len};
  pos_ += kHeaderSize + len;
  return true;
}

void FrameDecoder::compact() {
  if (pos_ == 0) return;
  if (pos_ == buffer_.size()) {
    buffer_.clear();
  } else {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(pos_));
  }
  pos_ = 0;
}

}  // namespace smerge::net
