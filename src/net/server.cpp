#include "net/server.h"

#include <sys/epoll.h>
#include <sys/socket.h>

#include <cerrno>
#include <chrono>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include "util/json_writer.h"
#include "util/snapshot.h"

namespace smerge::net {

namespace {

constexpr std::uint32_t kBaseInterest = EPOLLET | EPOLLRDHUP;
constexpr std::size_t kMaxHttpRequest = std::size_t{16} << 10;
constexpr int kFinishAttempts = 10;

void json_live_fields(util::JsonWriter& w, const server::LiveStats& live) {
  w.key("arrivals").value(live.arrivals);
  w.key("admitted").value(live.admitted);
  w.key("rejected").value(live.rejected);
  w.key("deferrals").value(live.deferrals);
  w.key("degraded").value(live.degraded);
  w.key("streams").value(live.streams);
  w.key("cost").value(live.cost);
  w.key("current_channels").value(live.current_channels);
  w.key("peak_channels").value(live.peak_channels);
  w.key("wait_mean").value(live.wait.mean);
  w.key("wait_p50").value(live.wait.p50);
  w.key("wait_p95").value(live.wait.p95);
  w.key("wait_p99").value(live.wait.p99);
  w.key("wait_max").value(live.wait.max);
}

}  // namespace

struct NetServer::Reactor {
  unsigned index = 0;
  Epoll epoll;
  EventFd wake;
  std::mutex inbox_mutex;
  std::vector<FdHandle> inbox;  ///< accepted fds awaiting adoption
  std::unordered_map<int, std::unique_ptr<Connection>> conns;
  std::atomic<std::uint64_t> pending_count{0};  ///< tickets awaiting a drain
  std::vector<ReadyEvent> ready;
  std::thread thread;
};

NetServer::NetServer(const NetServerConfig& net_config,
                     const server::ServerCoreConfig& core_config,
                     OnlinePolicy& policy)
    : net_config_(net_config), policy_(policy), core_(core_config, policy) {
  if (core_config.serve != server::ServeMode::kPolicy ||
      core_config.enable_sessions) {
    throw std::invalid_argument(
        "NetServer: the wire feeds post(), which requires generic-policy, "
        "non-session serving");
  }
  if (net_config_.reactors < 1) {
    throw std::invalid_argument("NetServer: reactors must be >= 1");
  }
  if (net_config_.drain_interval_us < 1) {
    throw std::invalid_argument("NetServer: drain_interval_us must be >= 1");
  }
  if (net_config_.read_chunk < kHeaderSize) {
    throw std::invalid_argument("NetServer: read_chunk too small");
  }
}

NetServer::~NetServer() { stop(); }

void NetServer::start() {
  if (running_.load(std::memory_order_acquire)) return;
  listener_ = make_listener(net_config_.host, net_config_.port,
                            net_config_.listen_backlog);
  port_ = local_port(listener_.get());
  running_.store(true, std::memory_order_release);
  reactors_.clear();
  reactors_.reserve(net_config_.reactors);
  for (unsigned i = 0; i < net_config_.reactors; ++i) {
    auto r = std::make_unique<Reactor>();
    r->index = i;
    r->epoll.add(r->wake.fd(), EPOLLIN);
    reactors_.push_back(std::move(r));
  }
  for (auto& r : reactors_) {
    Reactor* raw = r.get();
    r->thread = std::thread([this, raw] { reactor_loop(*raw); });
  }
  driver_ = std::thread([this] { driver_loop(); });
}

void NetServer::stop() {
  const bool was_running = running_.exchange(false, std::memory_order_acq_rel);
  if (was_running) {
    driver_wake_.notify();
    for (auto& r : reactors_) r->wake.notify();
  }
  if (driver_.joinable()) driver_.join();
  for (auto& r : reactors_) {
    if (r->thread.joinable()) r->thread.join();
  }
  reactors_.clear();  // closes every adopted connection
  listener_.reset();
}

bool NetServer::wait_finished(std::chrono::milliseconds timeout) {
  std::unique_lock lock(state_mutex_);
  return finished_cv_.wait_for(lock, timeout, [this] {
    return finished_.load(std::memory_order_acquire) &&
           finish_flushed_.load(std::memory_order_acquire);
  });
}

const server::WireSummary& NetServer::summary() const {
  if (!finished()) {
    throw std::logic_error("NetServer::summary: no FINISH served yet");
  }
  return summary_;
}

const server::Snapshot& NetServer::snapshot() const {
  if (!finished()) {
    throw std::logic_error("NetServer::snapshot: no FINISH served yet");
  }
  return snapshot_;
}

std::string NetServer::error() const {
  std::lock_guard lock(state_mutex_);
  return error_;
}

server::LiveStats NetServer::live() const {
  std::lock_guard lock(state_mutex_);
  return cached_live_;
}

NetCounters NetServer::counters() const {
  NetCounters c;
  c.accepted = n_accepted_.load(std::memory_order_relaxed);
  c.closed = n_closed_.load(std::memory_order_relaxed);
  c.protocol_errors = n_proto_errors_.load(std::memory_order_relaxed);
  c.http_requests = n_http_.load(std::memory_order_relaxed);
  c.admits = n_admits_.load(std::memory_order_relaxed);
  c.tickets = n_tickets_.load(std::memory_order_relaxed);
  c.drains = n_drains_.load(std::memory_order_relaxed);
  c.bytes_in = n_bytes_in_.load(std::memory_order_relaxed);
  c.bytes_out = n_bytes_out_.load(std::memory_order_relaxed);
  return c;
}

// --- Driver thread ----------------------------------------------------------

void NetServer::driver_loop() {
  Epoll epoll;
  TimerFd timer(net_config_.drain_interval_us);
  epoll.add(listener_.get(), EPOLLIN);
  epoll.add(timer.fd(), EPOLLIN);
  epoll.add(driver_wake_.fd(), EPOLLIN);
  std::vector<ReadyEvent> ready;
  while (running_.load(std::memory_order_acquire)) {
    epoll.wait(ready, -1);
    if (!running_.load(std::memory_order_acquire)) break;
    for (const ReadyEvent& ev : ready) {
      if (ev.fd == listener_.get()) {
        accept_ready();
      } else if (ev.fd == timer.fd()) {
        timer.read_ticks();
        run_drain();
      } else if (ev.fd == driver_wake_.fd()) {
        driver_wake_.clear();
        if (finish_requested_.load(std::memory_order_acquire) && !finished()) {
          run_finish();
        }
      }
    }
  }
}

void NetServer::accept_ready() {
  while (true) {
    const int fd = ::accept4(listener_.get(), nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN or a transient accept failure: try again next edge
    }
    FdHandle handle(fd);
    try {
      set_nodelay(fd);
    } catch (const std::system_error&) {
      continue;  // handle closes the socket
    }
    Reactor& r = *reactors_[next_reactor_++ % reactors_.size()];
    {
      std::lock_guard lock(r.inbox_mutex);
      r.inbox.push_back(std::move(handle));
    }
    r.wake.notify();
    n_accepted_.fetch_add(1, std::memory_order_relaxed);
  }
}

void NetServer::run_drain() {
  if (finished()) return;
  try {
    core_.drain();
  } catch (const std::exception& e) {
    // A peer violated the per-object contract (e.g. two connections
    // interleaving one object out of order). Fail the run, keep serving
    // the error over the stats surface instead of crashing the process.
    {
      std::lock_guard lock(state_mutex_);
      error_ = e.what();
      summary_ = {};
      summary_.ok = false;
      finished_.store(true, std::memory_order_release);
    }
    finished_cv_.notify_all();
    for (auto& r : reactors_) r->wake.notify();
    return;
  }
  completed_drains_.fetch_add(1, std::memory_order_release);
  n_drains_.fetch_add(1, std::memory_order_relaxed);
  {
    server::LiveStats live = core_.live_stats();
    std::lock_guard lock(state_mutex_);
    cached_live_ = live;
  }
  for (auto& r : reactors_) {
    if (r->pending_count.load(std::memory_order_relaxed) > 0) {
      r->wake.notify();
    }
  }
  if (finish_requested_.load(std::memory_order_acquire) && !finished()) {
    run_finish();
  }
}

void NetServer::run_finish() {
  std::string failure;
  bool ok = false;
  // finish() drains, then refuses if an in-flight post is still in a
  // ring. The FINISH contract says producers have quiesced, so a couple
  // of retry rounds absorb the last packets' worth of in-flight posts.
  for (int attempt = 0; attempt < kFinishAttempts; ++attempt) {
    try {
      core_.finish();
      ok = true;
      break;
    } catch (const std::exception& e) {
      failure = e.what();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  {
    std::lock_guard lock(state_mutex_);
    if (ok) {
      try {
        snapshot_ = core_.take_snapshot();
        summary_ = server::summarize(snapshot_);
        cached_live_ = core_.live_stats();
      } catch (const std::exception& e) {
        ok = false;
        failure = e.what();
      }
    }
    if (!ok) {
      error_ = failure;
      summary_ = {};
      summary_.ok = false;
    }
    finished_.store(true, std::memory_order_release);
  }
  finished_cv_.notify_all();
  for (auto& r : reactors_) r->wake.notify();
}

// --- Reactor threads --------------------------------------------------------

void NetServer::reactor_loop(Reactor& r) {
  while (running_.load(std::memory_order_acquire)) {
    r.epoll.wait(r.ready, -1);
    if (!running_.load(std::memory_order_acquire)) break;
    for (const ReadyEvent& ev : r.ready) {
      if (ev.fd == r.wake.fd()) {
        r.wake.clear();
        adopt_inbox(r);
      } else {
        handle_conn_event(r, ev.fd, ev.events);
      }
    }
    flush_tickets(r);
  }
}

void NetServer::adopt_inbox(Reactor& r) {
  std::vector<FdHandle> adopted;
  {
    std::lock_guard lock(r.inbox_mutex);
    adopted.swap(r.inbox);
  }
  for (FdHandle& handle : adopted) {
    const int fd = handle.get();
    auto conn = std::make_unique<Connection>(std::move(handle),
                                             net_config_.write_high_watermark);
    conn->interest = kBaseInterest | EPOLLIN;
    r.epoll.add(fd, conn->interest);
    r.conns.emplace(fd, std::move(conn));
  }
}

void NetServer::update_write_interest(Reactor& r, Connection& c) {
  std::uint32_t want = kBaseInterest;
  if (!c.read_paused) want |= EPOLLIN;
  if (c.want_write()) want |= EPOLLOUT;
  if (want != c.interest) {
    c.interest = want;
    r.epoll.modify(c.fd(), want);
  }
}

void NetServer::close_conn(Reactor& r, int fd) {
  auto it = r.conns.find(fd);
  if (it == r.conns.end()) return;
  Connection& c = *it->second;
  r.pending_count.fetch_sub(c.pending.size(), std::memory_order_relaxed);
  const bool was_finish_conn =
      finish_fd_.load(std::memory_order_relaxed) == fd &&
      finish_reactor_.load(std::memory_order_relaxed) ==
          static_cast<int>(r.index);
  try {
    r.epoll.remove(fd);
  } catch (const std::system_error&) {
    // Already gone (peer reset) — the erase below still closes our end.
  }
  r.conns.erase(it);
  n_closed_.fetch_add(1, std::memory_order_relaxed);
  if (was_finish_conn && !finish_flushed_.load(std::memory_order_relaxed)) {
    // The finisher died before reading its reply; don't wedge
    // wait_finished() on a reply no one will read.
    {
      std::lock_guard lock(state_mutex_);
      finish_flushed_.store(true, std::memory_order_release);
    }
    finished_cv_.notify_all();
  }
}

void NetServer::handle_conn_event(Reactor& r, int fd, std::uint32_t events) {
  auto it = r.conns.find(fd);
  if (it == r.conns.end()) return;
  Connection& c = *it->second;
  if ((events & (EPOLLHUP | EPOLLERR)) != 0) {
    close_conn(r, fd);
    return;
  }
  bool resumed_read = false;
  if ((events & EPOLLOUT) != 0) {
    std::uint64_t sent = 0;
    const auto res = c.flush(sent);
    n_bytes_out_.fetch_add(sent, std::memory_order_relaxed);
    if (res == Connection::IoResult::kClosed) {
      close_conn(r, fd);
      return;
    }
    if (c.finish_sent && !c.want_write() &&
        !finish_flushed_.load(std::memory_order_relaxed)) {
      {
        std::lock_guard lock(state_mutex_);
        finish_flushed_.store(true, std::memory_order_release);
      }
      finished_cv_.notify_all();
    }
    if (c.closing && !c.want_write()) {
      close_conn(r, fd);
      return;
    }
    if (c.read_paused && !c.over_watermark()) {
      c.read_paused = false;
      resumed_read = true;
    }
    update_write_interest(r, c);
  }
  if ((events & (EPOLLIN | EPOLLRDHUP)) != 0 || resumed_read) {
    std::uint64_t got = 0;
    const auto res = c.fill_from_socket(net_config_.read_chunk, got);
    n_bytes_in_.fetch_add(got, std::memory_order_relaxed);
    process_input(r, c);
    // process_input may have closed the connection on a protocol error.
    if (r.conns.find(fd) == r.conns.end()) return;
    if (res == Connection::IoResult::kClosed) {
      close_conn(r, fd);
      return;
    }
    update_write_interest(r, c);
  }
}

void NetServer::process_input(Reactor& r, Connection& c) {
  FrameDecoder& dec = c.decoder();
  if (!c.sniffed && dec.buffered() > 0) {
    c.sniffed = true;
    // The binary magic begins with 'S'; anything else is the plain-text
    // debug surface (GET /stats, ...).
    c.http = dec.peek().front() != 0x53;
  }
  if (c.http) {
    handle_http(r, c);
    return;
  }
  std::uint64_t admits = 0;
  try {
    Frame frame;
    while (dec.next_frame(frame)) {
      if (frame.type == RecordType::kAdmit) ++admits;
      handle_frame(r, c, frame);
    }
  } catch (const ProtocolError&) {
    n_proto_errors_.fetch_add(1, std::memory_order_relaxed);
    if (admits > 0) n_admits_.fetch_add(admits, std::memory_order_relaxed);
    close_conn(r, c.fd());
    return;
  }
  if (admits > 0) n_admits_.fetch_add(admits, std::memory_order_relaxed);
  if (c.over_watermark() && !c.read_paused) {
    c.read_paused = true;
    update_write_interest(r, c);
  }
}

void NetServer::handle_frame(Reactor& r, Connection& c, const Frame& frame) {
  switch (frame.type) {
    case RecordType::kAdmit: {
      const AdmitRecord admit = parse_admit(frame.payload);
      if (admit.object < 0 || admit.object >= core_.config().objects) {
        throw ProtocolError("net: ADMIT object out of range");
      }
      if (!(admit.time >= 0.0)) {
        throw ProtocolError("net: ADMIT time must be nonnegative");
      }
      // The wire contract: one connection's ADMIT times are
      // nondecreasing (which implies the core's per-object contract as
      // long as an object stays on one connection at a time). Checking
      // here keeps a buggy client from poisoning the drain.
      if (admit.time < c.last_admit_time) {
        throw ProtocolError("net: ADMIT times must be nondecreasing");
      }
      if (finish_requested_.load(std::memory_order_acquire)) {
        throw ProtocolError("net: ADMIT after FINISH");
      }
      c.last_admit_time = admit.time;
      const std::uint64_t epoch =
          completed_drains_.load(std::memory_order_acquire);
      core_.post(admit.object, admit.time);
      c.pending.push_back({admit.request_id, admit.object, admit.time, epoch});
      r.pending_count.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    case RecordType::kPing:
      append_u64_frame(c.out(), RecordType::kPong, parse_u64(frame.payload));
      return;
    case RecordType::kStatsRequest: {
      server::LiveStats live;
      {
        std::lock_guard lock(state_mutex_);
        live = cached_live_;
      }
      util::SnapshotWriter w;
      server::write_live_stats(w, live);
      append_frame(c.out(), RecordType::kStats, w.payload());
      return;
    }
    case RecordType::kFinish: {
      finish_reactor_.store(static_cast<int>(r.index),
                            std::memory_order_relaxed);
      finish_fd_.store(c.fd(), std::memory_order_relaxed);
      finish_requested_.store(true, std::memory_order_release);
      driver_wake_.notify();
      return;
    }
    case RecordType::kTicket:
    case RecordType::kStats:
    case RecordType::kPong:
    case RecordType::kFinished:
      throw ProtocolError("net: server-only record type from a client");
  }
  throw ProtocolError("net: unknown record type");
}

void NetServer::flush_tickets(Reactor& r) {
  const std::uint64_t completed =
      completed_drains_.load(std::memory_order_acquire);
  const bool fin = finished_.load(std::memory_order_acquire);
  util::SnapshotWriter w;
  for (auto it = r.conns.begin(); it != r.conns.end();) {
    Connection& c = *(it++)->second;  // close_conn below invalidates `it`-1
    if (c.http) continue;
    std::size_t ready = 0;
    while (ready < c.pending.size() &&
           (fin || c.pending[ready].epoch < completed)) {
      ++ready;
    }
    bool wrote = false;
    if (ready > 0) {
      for (std::size_t i = 0; i < ready; ++i) {
        const PendingAdmit& p = c.pending[i];
        const std::size_t base = w.size();
        w.u64(p.request_id);
        server::write_ticket(w, core_.preview_admission(p.object, p.time));
        append_frame(c.out(), RecordType::kTicket,
                     w.payload().subspan(base));
      }
      c.pending.erase(c.pending.begin(),
                      c.pending.begin() + static_cast<std::ptrdiff_t>(ready));
      r.pending_count.fetch_sub(ready, std::memory_order_relaxed);
      n_tickets_.fetch_add(ready, std::memory_order_relaxed);
      wrote = true;
    }
    const bool is_finish_conn =
        fin && !c.finish_sent && c.pending.empty() &&
        finish_fd_.load(std::memory_order_relaxed) == c.fd() &&
        finish_reactor_.load(std::memory_order_relaxed) ==
            static_cast<int>(r.index);
    if (is_finish_conn) {
      server::WireSummary summary;
      {
        std::lock_guard lock(state_mutex_);
        summary = summary_;
      }
      const std::size_t base = w.size();
      server::write_summary(w, summary);
      append_frame(c.out(), RecordType::kFinished, w.payload().subspan(base));
      c.finish_sent = true;
      wrote = true;
    }
    if (!wrote) continue;
    std::uint64_t sent = 0;
    if (c.flush(sent) == Connection::IoResult::kClosed) {
      n_bytes_out_.fetch_add(sent, std::memory_order_relaxed);
      close_conn(r, c.fd());
      continue;
    }
    n_bytes_out_.fetch_add(sent, std::memory_order_relaxed);
    if (c.finish_sent && !c.want_write() &&
        !finish_flushed_.load(std::memory_order_relaxed)) {
      {
        std::lock_guard lock(state_mutex_);
        finish_flushed_.store(true, std::memory_order_release);
      }
      finished_cv_.notify_all();
    }
    update_write_interest(r, c);
  }
}

// --- HTTP debug surface -----------------------------------------------------

void NetServer::handle_http(Reactor& r, Connection& c) {
  FrameDecoder& dec = c.decoder();
  const auto bytes = dec.peek();
  c.http_request.append(reinterpret_cast<const char*>(bytes.data()),
                        bytes.size());
  dec.consume(bytes.size());
  if (c.closing) return;  // response already staged; ignore extra bytes
  if (c.http_request.find("\r\n\r\n") == std::string::npos) {
    if (c.http_request.size() > kMaxHttpRequest) close_conn(r, c.fd());
    return;
  }
  n_http_.fetch_add(1, std::memory_order_relaxed);
  std::string status = "200 OK";
  std::string body;
  const auto line_end = c.http_request.find("\r\n");
  const std::string line = c.http_request.substr(0, line_end);
  const auto sp1 = line.find(' ');
  const auto sp2 = line.find(' ', sp1 + 1);
  const std::string method = sp1 == std::string::npos ? "" : line.substr(0, sp1);
  const std::string path = sp1 == std::string::npos || sp2 == std::string::npos
                               ? ""
                               : line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (method != "GET") {
    status = "405 Method Not Allowed";
    body = "{\n  \"error\": \"only GET is supported\"\n}";
  } else if (path == "/stats" || path == "/live" || path == "/dispatch") {
    body = http_body(path);
  } else {
    status = "404 Not Found";
    body = "{\n  \"error\": \"unknown path; try /stats, /live, /dispatch\"\n}";
  }
  std::string response = "HTTP/1.1 " + status +
                         "\r\nContent-Type: application/json\r\n"
                         "Content-Length: " +
                         std::to_string(body.size()) +
                         "\r\nConnection: close\r\n\r\n" +
                         body;
  auto& out = c.out();
  out.insert(out.end(), response.begin(), response.end());
  c.closing = true;
  std::uint64_t sent = 0;
  const auto res = c.flush(sent);
  n_bytes_out_.fetch_add(sent, std::memory_order_relaxed);
  if (res == Connection::IoResult::kClosed ||
      (c.closing && !c.want_write())) {
    close_conn(r, c.fd());
    return;
  }
  update_write_interest(r, c);
}

std::string NetServer::http_body(const std::string& path) {
  util::JsonWriter w;
  w.begin_object();
  if (path == "/live") {
    server::LiveStats live;
    {
      std::lock_guard lock(state_mutex_);
      live = cached_live_;
    }
    json_live_fields(w, live);
  } else if (path == "/stats") {
    server::LiveStats live;
    {
      std::lock_guard lock(state_mutex_);
      live = cached_live_;
    }
    const NetCounters nc = counters();
    w.key("live").begin_object();
    json_live_fields(w, live);
    w.end_object();
    w.key("net").begin_object();
    w.key("accepted").value(nc.accepted);
    w.key("closed").value(nc.closed);
    w.key("protocol_errors").value(nc.protocol_errors);
    w.key("http_requests").value(nc.http_requests);
    w.key("admits").value(nc.admits);
    w.key("tickets").value(nc.tickets);
    w.key("drains").value(nc.drains);
    w.key("bytes_in").value(nc.bytes_in);
    w.key("bytes_out").value(nc.bytes_out);
    w.end_object();
    w.key("finished").value(finished());
  } else {  // /dispatch
    const server::ServerCoreConfig& cfg = core_.config();
    w.key("dispatch").value(core_.admit_dispatch());
    w.key("policy").value(policy_.name());
    w.key("objects").value(cfg.objects);
    w.key("delay").value(cfg.delay);
    w.key("horizon").value(cfg.horizon);
    w.key("shards").value(cfg.shards);
    w.key("reactors").value(net_config_.reactors);
    w.key("drain_interval_us").value(net_config_.drain_interval_us);
  }
  w.end_object();
  return w.str();
}

}  // namespace smerge::net
