// Per-connection buffered transport state for the admission front end:
// an incremental frame decoder on the read side, a partial-write-safe
// output buffer on the write side, and the backpressure bookkeeping
// that ties them together (an output buffer past its high watermark
// pauses reads until the peer drains it — the server never buffers
// unboundedly for a slow client).
#ifndef SMERGE_NET_CONNECTION_H
#define SMERGE_NET_CONNECTION_H

#include <cstdint>
#include <string>
#include <vector>

#include "net/event_loop.h"
#include "net/protocol.h"

namespace smerge::net {

/// An ADMIT posted to the core but whose TICKET is not yet certain to
/// be covered by a completed drain. `epoch` is the drain counter
/// observed *before* the post; the ticket flushes once a strictly later
/// drain completes.
struct PendingAdmit {
  std::uint64_t request_id = 0;
  std::int64_t object = 0;
  double time = 0.0;
  std::uint64_t epoch = 0;
};

class Connection {
 public:
  Connection(FdHandle fd, std::size_t write_high_watermark)
      : fd_(std::move(fd)), high_watermark_(write_high_watermark) {}

  [[nodiscard]] int fd() const noexcept { return fd_.get(); }

  enum class IoResult : std::uint8_t {
    kOk,      ///< progressed (possibly zero bytes, EAGAIN)
    kClosed,  ///< peer closed or hard socket error — drop the connection
  };

  /// Edge-triggered read: pulls everything available (until EAGAIN)
  /// into the decoder in `chunk`-sized reads. Honors `read_paused`.
  IoResult fill_from_socket(std::size_t chunk, std::uint64_t& bytes_in);

  /// Writes as much buffered output as the socket accepts right now
  /// (MSG_NOSIGNAL; partial writes leave a cursor).
  IoResult flush(std::uint64_t& bytes_out);

  /// Frame staging area — append with net::append_frame and call
  /// flush() when done.
  [[nodiscard]] std::vector<std::uint8_t>& out() noexcept { return out_; }
  [[nodiscard]] FrameDecoder& decoder() noexcept { return decoder_; }

  /// Unsent output remains (EPOLLOUT interest).
  [[nodiscard]] bool want_write() const noexcept {
    return out_pos_ < out_.size();
  }
  /// Output buffer beyond the high watermark — pause reads.
  [[nodiscard]] bool over_watermark() const noexcept {
    return out_.size() - out_pos_ > high_watermark_;
  }

  // Transport-visible state the owning reactor drives.
  bool read_paused = false;   ///< over watermark: EPOLLIN dropped
  bool sniffed = false;       ///< first bytes classified (binary vs HTTP)
  bool http = false;          ///< plain-text debug request
  bool closing = false;       ///< flush remaining output, then close
  bool finish_sent = false;   ///< FINISHED reply staged on this conn
  std::uint32_t interest = 0;         ///< epoll events currently registered
  double last_admit_time = 0.0;       ///< wire contract: nondecreasing
  std::string http_request;           ///< accumulated HTTP header bytes
  std::vector<PendingAdmit> pending;  ///< tickets awaiting a drain epoch

 private:
  FdHandle fd_;
  FrameDecoder decoder_;
  std::vector<std::uint8_t> out_;
  std::size_t out_pos_ = 0;
  std::size_t high_watermark_;
};

}  // namespace smerge::net

#endif  // SMERGE_NET_CONNECTION_H
