#include "net/connection.h"

#include <sys/socket.h>

#include <cerrno>

namespace smerge::net {

Connection::IoResult Connection::fill_from_socket(std::size_t chunk,
                                                  std::uint64_t& bytes_in) {
  while (!read_paused) {
    auto span = decoder_.writable(chunk);
    const auto n = ::recv(fd_.get(), span.data(), span.size(), 0);
    if (n > 0) {
      decoder_.commit(static_cast<std::size_t>(n));
      bytes_in += static_cast<std::uint64_t>(n);
      if (static_cast<std::size_t>(n) < span.size()) return IoResult::kOk;
      continue;  // full chunk: the socket may hold more (edge-triggered)
    }
    decoder_.commit(0);
    if (n == 0) return IoResult::kClosed;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoResult::kOk;
    if (errno == EINTR) continue;
    return IoResult::kClosed;
  }
  return IoResult::kOk;
}

Connection::IoResult Connection::flush(std::uint64_t& bytes_out) {
  while (out_pos_ < out_.size()) {
    const auto n = ::send(fd_.get(), out_.data() + out_pos_,
                          out_.size() - out_pos_, MSG_NOSIGNAL);
    if (n > 0) {
      out_pos_ += static_cast<std::size_t>(n);
      bytes_out += static_cast<std::uint64_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return IoResult::kClosed;
  }
  if (out_pos_ == out_.size()) {
    out_.clear();
    out_pos_ = 0;
  } else if (out_pos_ > (std::size_t{64} << 10)) {
    // Keep the unsent suffix compact so a slow peer cannot pin the
    // whole history of the buffer.
    out_.erase(out_.begin(), out_.begin() + static_cast<std::ptrdiff_t>(out_pos_));
    out_pos_ = 0;
  }
  return IoResult::kOk;
}

}  // namespace smerge::net
