#include "net/event_loop.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/timerfd.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace smerge::net {

void FdHandle::reset() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void throw_errno(const std::string& what) {
  throw std::system_error(errno, std::generic_category(), what);
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) throw_errno("fcntl(F_GETFL)");
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("fcntl(F_SETFL, O_NONBLOCK)");
  }
}

void set_nodelay(int fd) {
  const int one = 1;
  if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one) < 0) {
    throw_errno("setsockopt(TCP_NODELAY)");
  }
}

namespace {

[[nodiscard]] sockaddr_in resolve_v4(const std::string& host,
                                     std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw std::system_error(
        std::make_error_code(std::errc::invalid_argument),
        "inet_pton(" + host + "): not an IPv4 address");
  }
  return addr;
}

[[nodiscard]] std::string endpoint_name(const std::string& host,
                                        std::uint16_t port) {
  return host + ":" + std::to_string(static_cast<unsigned>(port));
}

}  // namespace

FdHandle make_listener(const std::string& host, std::uint16_t port,
                       int backlog) {
  const sockaddr_in addr = resolve_v4(host, port);
  FdHandle fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) throw_errno("socket");
  const int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one) < 0) {
    throw_errno("setsockopt(SO_REUSEADDR)");
  }
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) < 0) {
    throw_errno("bind(" + endpoint_name(host, port) + ")");
  }
  if (::listen(fd.get(), backlog) < 0) {
    throw_errno("listen(" + endpoint_name(host, port) + ")");
  }
  set_nonblocking(fd.get());
  return fd;
}

std::uint16_t local_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    throw_errno("getsockname");
  }
  return ntohs(addr.sin_port);
}

FdHandle connect_tcp(const std::string& host, std::uint16_t port, int attempts,
                     int retry_ms) {
  const sockaddr_in addr = resolve_v4(host, port);
  int last_errno = ECONNREFUSED;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    FdHandle fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
    if (!fd.valid()) throw_errno("socket");
    if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) == 0) {
      set_nodelay(fd.get());
      return fd;
    }
    last_errno = errno;
    if (last_errno != ECONNREFUSED && last_errno != ETIMEDOUT &&
        last_errno != EAGAIN) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(retry_ms));
  }
  errno = last_errno;
  throw_errno("connect(" + endpoint_name(host, port) + ")");
}

Epoll::Epoll() : epfd_(::epoll_create1(EPOLL_CLOEXEC)) {
  if (!epfd_.valid()) throw_errno("epoll_create1");
}

void Epoll::add(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epfd_.get(), EPOLL_CTL_ADD, fd, &ev) < 0) {
    throw_errno("epoll_ctl(ADD)");
  }
}

void Epoll::modify(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epfd_.get(), EPOLL_CTL_MOD, fd, &ev) < 0) {
    throw_errno("epoll_ctl(MOD)");
  }
}

void Epoll::remove(int fd) {
  if (::epoll_ctl(epfd_.get(), EPOLL_CTL_DEL, fd, nullptr) < 0) {
    throw_errno("epoll_ctl(DEL)");
  }
}

std::size_t Epoll::wait(std::vector<ReadyEvent>& out, int timeout_ms) {
  out.clear();
  epoll_event events[64];
  int n;
  do {
    n = ::epoll_wait(epfd_.get(), events, 64, timeout_ms);
  } while (n < 0 && errno == EINTR);
  if (n < 0) throw_errno("epoll_wait");
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    out.push_back({events[i].data.fd, events[i].events});
  }
  return static_cast<std::size_t>(n);
}

EventFd::EventFd() : fd_(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK)) {
  if (!fd_.valid()) throw_errno("eventfd");
}

void EventFd::notify() noexcept {
  const std::uint64_t one = 1;
  // A full eventfd counter (EAGAIN) already guarantees a pending wakeup.
  [[maybe_unused]] const auto n = ::write(fd_.get(), &one, sizeof one);
}

void EventFd::clear() noexcept {
  std::uint64_t drained;
  [[maybe_unused]] const auto n = ::read(fd_.get(), &drained, sizeof drained);
}

TimerFd::TimerFd(std::uint64_t interval_us)
    : fd_(::timerfd_create(CLOCK_MONOTONIC, TFD_CLOEXEC | TFD_NONBLOCK)) {
  if (!fd_.valid()) throw_errno("timerfd_create");
  if (interval_us == 0) interval_us = 1;
  itimerspec spec{};
  spec.it_interval.tv_sec = static_cast<time_t>(interval_us / 1000000);
  spec.it_interval.tv_nsec = static_cast<long>((interval_us % 1000000) * 1000);
  spec.it_value = spec.it_interval;
  if (::timerfd_settime(fd_.get(), 0, &spec, nullptr) < 0) {
    throw_errno("timerfd_settime");
  }
}

std::uint64_t TimerFd::read_ticks() noexcept {
  std::uint64_t ticks = 0;
  if (::read(fd_.get(), &ticks, sizeof ticks) != sizeof ticks) return 0;
  return ticks;
}

}  // namespace smerge::net
