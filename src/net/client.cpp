#include "net/client.h"

#include <sys/socket.h>

#include <cerrno>
#include <stdexcept>

#include "util/snapshot.h"

namespace smerge::net {

void BlockingClient::connect(const std::string& host, std::uint16_t port) {
  close();
  fd_ = connect_tcp(host, port);
  decoder_ = FrameDecoder();
  out_.clear();
}

void BlockingClient::close() {
  fd_.reset();
  out_.clear();
}

std::uint64_t BlockingClient::admit(std::int64_t object, double time) {
  const std::uint64_t id = next_request_id_++;
  append_admit(out_, id, object, time);
  if (out_.size() >= autoflush_bytes_) flush();
  return id;
}

void BlockingClient::flush() {
  std::size_t pos = 0;
  while (pos < out_.size()) {
    const auto n = ::send(fd_.get(), out_.data() + pos, out_.size() - pos,
                          MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    pos += static_cast<std::size_t>(n);
  }
  out_.clear();
}

void BlockingClient::read_some(bool block) {
  auto span = decoder_.writable(std::size_t{64} << 10);
  const auto n =
      ::recv(fd_.get(), span.data(), span.size(), block ? 0 : MSG_DONTWAIT);
  if (n > 0) {
    decoder_.commit(static_cast<std::size_t>(n));
    return;
  }
  decoder_.commit(0);
  if (n == 0) throw std::runtime_error("net client: server closed the stream");
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
  throw_errno("recv");
}

bool BlockingClient::next_frame(Frame& frame) { return decoder_.next_frame(frame); }

std::size_t BlockingClient::poll_tickets(
    const std::function<void(const TicketReply&)>& on_ticket, bool block) {
  std::size_t tickets = 0;
  std::size_t frames = 0;
  const auto drain_frames = [&] {
    Frame frame;
    while (next_frame(frame)) {
      ++frames;
      switch (frame.type) {
        case RecordType::kTicket: {
          util::SnapshotReader reader(frame.payload);
          TicketReply reply;
          reply.request_id = reader.u64();
          reply.ticket = server::read_ticket(reader);
          reader.expect_end();
          ++tickets;
          if (on_ticket) on_ticket(reply);
          break;
        }
        case RecordType::kPong:
          pongs_.push_back(parse_u64(frame.payload));
          break;
        case RecordType::kStats: {
          util::SnapshotReader reader(frame.payload);
          stats_replies_.push_back(server::read_live_stats(reader));
          reader.expect_end();
          break;
        }
        case RecordType::kFinished: {
          util::SnapshotReader reader(frame.payload);
          finished_replies_.push_back(server::read_summary(reader));
          reader.expect_end();
          break;
        }
        default:
          throw ProtocolError("net client: unexpected record type");
      }
    }
  };
  drain_frames();
  if (block) {
    // Return as soon as at least one frame of any type was processed —
    // the round-trip helpers (ping/stats/finish) loop on their own
    // reply queues.
    while (frames == 0) {
      read_some(true);
      drain_frames();
    }
  } else {
    read_some(false);
    drain_frames();
  }
  return tickets;
}

std::uint64_t BlockingClient::ping(std::uint64_t nonce) {
  flush();
  append_u64_frame(out_, RecordType::kPing, nonce);
  flush();
  while (pongs_.empty()) poll_tickets(nullptr, true);
  const std::uint64_t got = pongs_.front();
  pongs_.erase(pongs_.begin());
  return got;
}

server::LiveStats BlockingClient::stats() {
  flush();
  append_frame(out_, RecordType::kStatsRequest, {});
  flush();
  while (stats_replies_.empty()) poll_tickets(nullptr, true);
  server::LiveStats s = stats_replies_.front();
  stats_replies_.erase(stats_replies_.begin());
  return s;
}

server::WireSummary BlockingClient::finish() {
  flush();
  append_frame(out_, RecordType::kFinish, {});
  flush();
  while (finished_replies_.empty()) poll_tickets(nullptr, true);
  server::WireSummary s = finished_replies_.front();
  finished_replies_.erase(finished_replies_.begin());
  return s;
}

}  // namespace smerge::net
