// Thin RAII wrappers over the Linux readiness primitives the network
// front end is built on: non-blocking sockets, epoll (edge-triggered),
// eventfd wakeups and timerfd drain cadence. Every failure surfaces as
// std::system_error carrying errno and the failing call — which is how
// `vod_server` turns a port collision into a readable
// "bind(127.0.0.1:9090): Address already in use" instead of a raw
// throw.
#ifndef SMERGE_NET_EVENT_LOOP_H
#define SMERGE_NET_EVENT_LOOP_H

#include <cstdint>
#include <span>
#include <string>
#include <system_error>
#include <vector>

namespace smerge::net {

/// Owning file descriptor; closes on destruction, move-only.
class FdHandle {
 public:
  FdHandle() = default;
  explicit FdHandle(int fd) noexcept : fd_(fd) {}
  ~FdHandle() { reset(); }
  FdHandle(FdHandle&& other) noexcept : fd_(other.release()) {}
  FdHandle& operator=(FdHandle&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }
  FdHandle(const FdHandle&) = delete;
  FdHandle& operator=(const FdHandle&) = delete;

  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset() noexcept;

 private:
  int fd_ = -1;
};

/// Throws std::system_error(errno) with `what` naming the failing call.
[[noreturn]] void throw_errno(const std::string& what);

/// O_NONBLOCK on an existing descriptor.
void set_nonblocking(int fd);
/// TCP_NODELAY — admission records are tiny; Nagle would serialize the
/// closed-loop latency measurement.
void set_nodelay(int fd);

/// Creates a non-blocking listening TCP socket bound to host:port
/// (SO_REUSEADDR; port 0 picks an ephemeral port). Throws
/// std::system_error naming the failing call and address — EADDRINUSE
/// lands here.
[[nodiscard]] FdHandle make_listener(const std::string& host,
                                     std::uint16_t port, int backlog);

/// The port a bound socket actually listens on (resolves port 0).
[[nodiscard]] std::uint16_t local_port(int fd);

/// Blocking connect to host:port with `attempts` retries spaced
/// `retry_ms` apart — absorbs the server-startup race in tests and CI.
/// Returns a connected non-blocking-capable fd (left in blocking mode).
[[nodiscard]] FdHandle connect_tcp(const std::string& host, std::uint16_t port,
                                   int attempts = 50, int retry_ms = 20);

/// One epoll readiness event.
struct ReadyEvent {
  int fd = -1;
  std::uint32_t events = 0;  ///< EPOLLIN/EPOLLOUT/EPOLLHUP/EPOLLERR bits
};

/// Edge-triggered epoll instance.
class Epoll {
 public:
  Epoll();

  /// Registers `fd` for `events` (caller ors in EPOLLET as desired).
  void add(int fd, std::uint32_t events);
  void modify(int fd, std::uint32_t events);
  void remove(int fd);

  /// Waits up to timeout_ms (-1 = forever) and appends ready fds to
  /// `out` (cleared first). Returns the number of events. EINTR retries.
  std::size_t wait(std::vector<ReadyEvent>& out, int timeout_ms);

 private:
  FdHandle epfd_;
};

/// eventfd wakeup: edge-trigger-friendly cross-thread kick.
class EventFd {
 public:
  EventFd();
  [[nodiscard]] int fd() const noexcept { return fd_.get(); }
  /// Signal (async-signal-safe, callable from any thread).
  void notify() noexcept;
  /// Consume all pending signals (the owning loop, after readiness).
  void clear() noexcept;

 private:
  FdHandle fd_;
};

/// Periodic timerfd — the drain cadence that keeps admission batching
/// alive over idle sockets.
class TimerFd {
 public:
  /// Fires every `interval_us` microseconds (>= 1).
  explicit TimerFd(std::uint64_t interval_us);
  [[nodiscard]] int fd() const noexcept { return fd_.get(); }
  /// Consume expirations; returns how many ticks elapsed.
  std::uint64_t read_ticks() noexcept;

 private:
  FdHandle fd_;
};

}  // namespace smerge::net

#endif  // SMERGE_NET_EVENT_LOOP_H
