// Blocking admission-protocol client — the send side of vod_loadgen,
// the loopback bench and the end-to-end tests. One instance per thread;
// ADMIT records batch into a local buffer and go out in one write, so a
// client thread can sustain wire rates without a syscall per admission.
#ifndef SMERGE_NET_CLIENT_H
#define SMERGE_NET_CLIENT_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "net/event_loop.h"
#include "net/protocol.h"
#include "server/wire.h"

namespace smerge::net {

/// A TICKET as received: the request it answers plus the decoded fields.
struct TicketReply {
  std::uint64_t request_id = 0;
  server::Ticket ticket;
};

class BlockingClient {
 public:
  BlockingClient() = default;
  ~BlockingClient() = default;
  BlockingClient(const BlockingClient&) = delete;
  BlockingClient& operator=(const BlockingClient&) = delete;

  /// Connects (with retries — absorbs the server-startup race). Throws
  /// std::system_error when the server never comes up.
  void connect(const std::string& host, std::uint16_t port);
  void close();
  [[nodiscard]] bool connected() const noexcept { return fd_.valid(); }

  /// Stages an ADMIT (buffered; nothing hits the socket until flush()
  /// or the buffer passes `autoflush_bytes`). Returns the request id.
  std::uint64_t admit(std::int64_t object, double time);

  /// Writes the staged batch fully (blocking).
  void flush();

  /// Decodes replies. `block` waits for at least one frame; otherwise
  /// only drains what the socket already holds. Every TICKET invokes
  /// `on_ticket`; PONG/STATS/FINISHED frames are queued for their
  /// dedicated calls. Returns the number of tickets seen. Throws
  /// ProtocolError on a malformed stream and std::runtime_error when
  /// the server closes mid-read.
  std::size_t poll_tickets(const std::function<void(const TicketReply&)>& on_ticket,
                           bool block);

  /// PING round-trip; returns the echoed nonce (must equal `nonce`).
  std::uint64_t ping(std::uint64_t nonce);

  /// STATS round-trip: the server's LiveStats as of its latest drain.
  server::LiveStats stats();

  /// FINISH handshake: sends FINISH (after flushing any staged admits)
  /// and blocks until FINISHED. All tickets must have been collected
  /// first (the protocol contract: FINISH certifies quiesced producers).
  server::WireSummary finish();

  /// Tune the admit autoflush threshold (bytes; default 60 KiB).
  void set_autoflush(std::size_t bytes) noexcept { autoflush_bytes_ = bytes; }

 private:
  void read_some(bool block);
  bool next_frame(Frame& frame);

  FdHandle fd_;
  FrameDecoder decoder_;
  std::vector<std::uint8_t> out_;
  std::uint64_t next_request_id_ = 1;
  std::size_t autoflush_bytes_ = std::size_t{60} << 10;

  // Non-ticket replies parked until their round-trip call collects them.
  std::vector<std::uint64_t> pongs_;
  std::vector<server::LiveStats> stats_replies_;
  std::vector<server::WireSummary> finished_replies_;
};

}  // namespace smerge::net

#endif  // SMERGE_NET_CLIENT_H
