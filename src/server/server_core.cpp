#include "server/server_core.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string_view>
#include <utility>

#include "core/plan_io.h"
#include "util/arena.h"
#include "util/mpsc_ring.h"
#include "util/parallel.h"
#include "util/simd.h"
#include "util/snapshot.h"
#include "util/thread_pool.h"

namespace smerge::server {

bool violates_guarantee(double wait, double delay) noexcept {
  // Absolute + relative slack: admissions sit on slot boundaries
  // computed in floating point, so an exact comparison against `delay`
  // would flag rounding, not policy bugs.
  return wait > delay * (1.0 + 1e-9) + 1e-12;
}

const char* to_string(AdmissionMode mode) noexcept {
  switch (mode) {
    case AdmissionMode::kObserve: return "observe";
    case AdmissionMode::kReject: return "reject";
    case AdmissionMode::kDefer: return "defer";
    case AdmissionMode::kDegrade: return "degrade";
  }
  return "?";
}

namespace {

std::size_t index_of(Index x) { return static_cast<std::size_t>(x); }

/// One arrival published through the lock-free post() path. `seq` is
/// the shard-wide ticket stamped at publication: ring and spill drains
/// each preserve per-producer order but may interleave, so the
/// collector re-sorts an object's batch by (time, seq) — which is
/// exactly the order its single producer posted in (times are
/// nondecreasing per object and the ticket breaks every tie).
struct PostedArrival {
  double time = 0.0;
  Index object = 0;
  std::uint64_t seq = 0;
};

bool posted_less(const PostedArrival& a, const PostedArrival& b) noexcept {
  if (a.time != b.time) return a.time < b.time;
  return a.seq < b.seq;
}

}  // namespace

/// Per-object serving state. Doubles as the object's PolicySink: the
/// recording semantics (validation, wait clamping, violation counting,
/// plan assembly) are the legacy engine ShardSink's, verbatim — that is
/// what keeps the refactored engine bit-identical.
struct ServerCore::ObjectState final : PolicySink {
  ObjectState(Index id_, double delay_, bool collect_intervals_, bool collect_plan_,
              const plan::ChunkingConfig& chunking_)
      : id(id_),
        delay(delay_),
        collect_intervals(collect_intervals_),
        collect_plan(collect_plan_),
        chunking(chunking_) {}

  void start_stream(double start, double duration, Index parent) override {
    if (start < 0.0 || !(duration >= 0.0)) {
      throw std::invalid_argument(
          "server-core: policy emitted a bad stream interval");
    }
    if (parent < -1 || parent >= outcome.streams) {
      throw std::invalid_argument(
          "server-core: policy emitted a bad stream parent");
    }
    ++outcome.streams;
    outcome.cost += duration;
    // The +1/-1 pair stays adjacent: the incremental ledger flush walks
    // the vector two events at a time.
    events.push_back({start, +1});
    events.push_back({start + duration, -1});
    if (collect_intervals) intervals.push_back({start, start + duration});
    if (collect_plan) {
      stream_starts.push_back(start);
      stream_durations.push_back(duration);
      stream_parents.push_back(parent);
    }
  }

  void admit(double arrival, double playback_start) override {
    record_admission(arrival, playback_start, arrival);
  }

  void retract_stream(Index index, double new_end) override {
    if (index < 0 || index_of(index) >= stream_starts.size()) {
      throw std::out_of_range("server-core: retract_stream index");
    }
    const std::size_t u = index_of(index);
    const double new_duration = new_end - stream_starts[u];
    outcome.cost += new_duration - stream_durations[u];
    stream_durations[u] = new_duration;
    if (collect_intervals) intervals[u].end = new_end;
  }

  /// Records one admission; the guarantee is measured from `basis`
  /// (== arrival everywhere except the defer admission mode, which
  /// re-promises from the deferred slot).
  void record_admission(double arrival, double playback_start, double basis) {
    double wait = playback_start - arrival;
    if (wait < 0.0) {
      if (wait < -1e-9) {
        throw std::invalid_argument("server-core: playback before arrival");
      }
      wait = 0.0;  // boundary rounding, not time travel
    }
    waits.push_back(wait);
    wait_sum += wait;
    if (wait > outcome.max_wait) outcome.max_wait = wait;
    if (violates_guarantee(playback_start - basis, delay)) ++outcome.violations;
    if (collect_plan) admissions.push_back({playback_start, wait});
    last_playback = playback_start;
  }

  /// Assembles the recorded schedule into the canonical IR: streams in
  /// emission order (the policies emit in start order), per-stream
  /// delays from the waits of the admissions each stream served.
  /// The stream whose start coincides with `playback` — the admission
  /// contract (both sides compute the identical slot/batch expression,
  /// so the match is exact; the tolerance absorbs nothing but future
  /// policies' rounding).
  [[nodiscard]] Index stream_for_playback(double playback) const {
    const auto it = std::lower_bound(stream_starts.begin(), stream_starts.end(),
                                     playback - 1e-9);
    if (it == stream_starts.end() || std::abs(*it - playback) > 1e-9) {
      throw std::logic_error(
          "server-core: admission playback start matches no emitted stream");
    }
    return static_cast<Index>(it - stream_starts.begin());
  }

  [[nodiscard]] plan::MergePlan build_plan() const {
    plan::PlanBuilder builder(1.0, Model::kReceiveTwo);
    if (chunking.enabled()) builder.set_chunking(chunking);
    for (std::size_t i = 0; i < stream_starts.size(); ++i) {
      builder.add_stream(stream_starts[i], stream_parents[i], stream_durations[i]);
    }
    for (const auto& [playback, wait] : admissions) {
      builder.record_wait(stream_for_playback(playback), wait);
    }
    return builder.build();
  }

  const Index id;
  const double delay;
  const bool collect_intervals;
  const bool collect_plan;
  const plan::ChunkingConfig chunking;

  std::unique_ptr<ObjectPolicy> policy;  ///< generic path only
  /// Sealed admit dispatch (set at build from the policy's
  /// advertisement when config.fast_path; kNone = virtual on_arrival).
  /// Derived state: never serialized, identical decisions either way.
  FastSlotKind fast_kind = FastSlotKind::kNone;

  // Recorder (the legacy ShardSink fields).
  ObjectOutcome outcome;
  std::vector<ChannelEvent> events;  ///< emission order until finalized
  std::vector<StreamInterval> intervals;
  std::vector<double> waits;  ///< in admission order
  double wait_sum = 0.0;
  std::vector<double> stream_starts;     ///< collect_plans only
  std::vector<double> stream_durations;  ///< collect_plans only
  std::vector<Index> stream_parents;     ///< collect_plans only
  std::vector<std::pair<double, double>> admissions;  ///< (playback, wait)
  plan::MergePlan plan;

  // Mailbox + incremental-fold cursors.
  std::vector<double> pending;     ///< time-ordered, unprocessed arrivals
  std::vector<PostedArrival> posted_batch;  ///< this drain's post() claims
  std::size_t flushed_events = 0;  ///< events already in the global ledger
  std::size_t flushed_waits = 0;   ///< waits already in the P2 trackers
  bool dirty = false;              ///< queued in its shard's dirty list

  // Session lifecycle (enable_sessions only). Sessions align 1:1 with
  // arrivals: session i is the client admitted i-th, so its playback
  // start is admissions[i] — which is how media positions resolve to
  // wall times at drain.
  struct PlanEvent {
    double wall = 0.0;      ///< resolved wall time of the event
    double playback = 0.0;  ///< the session's playback start
    Index session = -1;
    bool is_seek = false;   ///< else: abandon
  };
  std::vector<SessionTrace> sessions;     ///< arrival order
  std::size_t resolved_sessions = 0;      ///< prefix already wall-resolved
  std::vector<double> session_playbacks;  ///< nondecreasing (admission order)
  std::vector<double> session_ends;       ///< wall time each session stops
  bool session_ends_sorted = true;
  std::vector<PlanEvent> plan_events;     ///< abandons + seeks, resolution order
  std::vector<plan::StreamEdit> session_edits;  ///< finish()-time repair feed
  plan::RepairStats repair;

  // Serving state.
  double last_time = 0.0;     ///< monotonicity guard (ingest + admit)
  double last_playback = 0.0; ///< most recent admission (ticket assembly)
  Index last_slot = -1;       ///< slotted modes
  Index dg_emitted = -1;      ///< SlottedDg: last slot already in the ledger
  std::vector<std::uint8_t> slot_has_stream;  ///< SlottedBatching
};

struct ServerCore::Impl {
  /// One shard's lock-free intake: the ring mailbox producers publish
  /// to (`box`, `ticket`), plus consumer-side scratch touched only by
  /// the shard's drain worker (one worker per shard per drain) or the
  /// driver's serial fold — never by producers.
  struct ShardMailbox {
    explicit ShardMailbox(std::size_t ring_slots) : box(ring_slots) {}

    util::MpscMailbox<PostedArrival> box;
    alignas(64) std::atomic<std::uint64_t> ticket{0};  ///< post order stamp
    std::vector<PostedArrival> scratch;  ///< one drain's claimed range
    std::vector<Index> touched;          ///< objects seen in the claim
    /// Claimed arrivals whose ticket lies past a gap: arrivals with
    /// smaller tickets were still in flight in the ring when this
    /// pass's claim swept it, so these wait here (consumer-owned) for
    /// the pass that claims the gap.
    std::vector<PostedArrival> held;
    std::uint64_t next_seq = 0;  ///< next ticket the fold may consume
    Index collected = 0;    ///< arrivals claimed, awaiting the serial fold
    double max_time = 0.0;  ///< latest claimed arrival time
  };

  Impl(double span, double bucket) : ledger(span, bucket) {}

  std::vector<std::unique_ptr<ObjectState>> objects;
  std::vector<std::vector<Index>> shard_dirty;  ///< per-shard mailbox index
  std::vector<std::unique_ptr<ShardMailbox>> mailboxes;  ///< post() path only
  std::atomic<bool> posted_out_of_order{false};  ///< set by drain workers
  std::vector<LedgerEvent> ledger_batch;  ///< flush_object scratch (serial)
  ChannelLedger ledger;

  // Running counters (updated in deterministic fold order).
  Index arrivals = 0;
  Index admitted = 0;
  Index rejected = 0;
  Index deferrals = 0;
  Index degraded = 0;
  Index streams = 0;
  double cost = 0.0;
  double clock = 0.0;  ///< latest ingested/admitted time

  // Live percentile trackers (P2) + exact running mean/max.
  util::P2Quantile p50{0.50};
  util::P2Quantile p95{0.95};
  util::P2Quantile p99{0.99};
  double wait_sum = 0.0;
  double wait_max = 0.0;
  Index wait_count = 0;

  // Slotted Delay Guaranteed substrate.
  std::shared_ptr<const DelayGuaranteedOnline> dg;
  std::unique_ptr<ProgramTable> table;

  OnlinePolicy* policy = nullptr;  ///< generic path only
  /// Slot arithmetic for preview_admission: the policy's advertised
  /// FastSlotKind (or the slotted serve mode's), fixed at construction
  /// and independent of the fast_path execution knob.
  FastSlotKind preview_kind = FastSlotKind::kNone;
  bool finished = false;
  Snapshot snapshot;  ///< assembled by finish()
};

ServerCore::~ServerCore() = default;

void ServerCore::validate() const {
  if (config_.objects < 1) {
    throw std::invalid_argument("ServerCore: objects must be >= 1");
  }
  if (config_.shards < 1) {
    throw std::invalid_argument("ServerCore: shards must be >= 1");
  }
  if (!(config_.delay > 0.0)) {
    throw std::invalid_argument("ServerCore: delay must be positive");
  }
  if (!(config_.horizon >= 0.0)) {
    throw std::invalid_argument("ServerCore: horizon must be nonnegative");
  }
  if (config_.channel_capacity < 0) {
    throw std::invalid_argument("ServerCore: channel_capacity must be >= 0");
  }
  if (config_.max_defer_slots < 0) {
    throw std::invalid_argument("ServerCore: max_defer_slots must be >= 0");
  }
  if (!(config_.ledger_bucket >= 0.0)) {
    throw std::invalid_argument("ServerCore: ledger_bucket must be >= 0");
  }
  if (config_.mailbox_capacity < 0) {
    throw std::invalid_argument("ServerCore: mailbox_capacity must be >= 0");
  }
  plan::validate(config_.chunking, 1.0);
  if (config_.enable_sessions && config_.serve != ServeMode::kPolicy) {
    throw std::invalid_argument(
        "ServerCore: sessions require generic policy serving");
  }
  if (config_.admission != AdmissionMode::kObserve) {
    if (config_.serve != ServeMode::kSlottedBatching) {
      throw std::invalid_argument(
          "ServerCore: capacity admission modes require slotted batching "
          "serving (the stream an admission needs must be statically known)");
    }
    if (config_.channel_capacity < 1) {
      throw std::invalid_argument(
          "ServerCore: capacity admission modes require channel_capacity >= 1");
    }
  }
}

ServerCore::ServerCore(const ServerCoreConfig& config, OnlinePolicy& policy)
    : config_(config) {
  if (config_.serve != ServeMode::kPolicy) {
    throw std::invalid_argument(
        "ServerCore: the policy constructor requires ServeMode::kPolicy");
  }
  validate();
  policy.prepare(config_.delay, config_.horizon);
  build_objects(&policy);
}

ServerCore::ServerCore(const ServerCoreConfig& config) : config_(config) {
  if (config_.serve == ServeMode::kPolicy) {
    throw std::invalid_argument(
        "ServerCore: the slotted constructor requires a slotted ServeMode");
  }
  validate();
  build_objects(nullptr);
}

void ServerCore::build_objects(OnlinePolicy* policy) {
  const double bucket =
      config_.ledger_bucket > 0.0 ? config_.ledger_bucket : config_.delay;
  // Streams can outlive the horizon by up to one media length plus the
  // defer slack; later times clamp into the ledger's final bucket,
  // which stays exact (only slower to scan). Open-ended cores
  // (horizon 0, e.g. the DelayGuaranteedServer adapter) get a 32-media
  // floor so live queries keep their bucketed complexity over a
  // realistic served window instead of piling everything into one
  // overflow bucket.
  const double span =
      std::max(32.0, config_.horizon + 1.0) +
      config_.delay * static_cast<double>(config_.max_defer_slots + 2);
  impl_ = std::make_unique<Impl>(span, bucket);
  impl_->policy = policy;

  if (config_.serve == ServeMode::kSlottedDg) {
    Index slots = config_.dg_media_slots;
    if (slots < 0) {
      throw std::invalid_argument("ServerCore: dg_media_slots must be >= 0");
    }
    if (slots == 0) slots = DelayGuaranteedPolicy::media_slots(config_.delay);
    impl_->dg = std::make_shared<const DelayGuaranteedOnline>(slots);
    impl_->table = std::make_unique<ProgramTable>(*impl_->dg);
  }

  impl_->objects.reserve(index_of(config_.objects));
  for (Index m = 0; m < config_.objects; ++m) {
    // Sessions need the stream/admission record to resolve events and
    // repair plans, whether or not plans are exported to the snapshot.
    auto state = std::make_unique<ObjectState>(
        m, config_.delay, config_.collect_stream_intervals,
        config_.collect_plans || config_.enable_sessions, config_.chunking);
    if (policy != nullptr) {
      state->policy = policy->make_object_policy(config_.delay, config_.horizon);
      if (config_.fast_path) {
        state->fast_kind = state->policy->fast_slot_kind();
      }
    }
    impl_->objects.push_back(std::move(state));
  }
  if (policy != nullptr) {
    impl_->preview_kind = impl_->objects.front()->policy->fast_slot_kind();
  } else {
    impl_->preview_kind = config_.serve == ServeMode::kSlottedDg
                              ? FastSlotKind::kDgSlot
                              : FastSlotKind::kBatchSlot;
  }
  impl_->shard_dirty.resize(config_.shards);

  // Ring mailboxes exist only where post() is legal (generic-policy,
  // non-session serving); slotted and session cores never pay for them.
  if (config_.serve == ServeMode::kPolicy && !config_.enable_sessions) {
    const std::size_t ring_slots =
        config_.mailbox_capacity > 0
            ? static_cast<std::size_t>(config_.mailbox_capacity)
            : std::size_t{1} << 16;
    impl_->mailboxes.reserve(config_.shards);
    for (unsigned s = 0; s < config_.shards; ++s) {
      impl_->mailboxes.push_back(
          std::make_unique<Impl::ShardMailbox>(ring_slots));
    }
  }
}

// --- Incremental folding ----------------------------------------------------

void ServerCore::flush_object(Index m) {
  ObjectState& state = *impl_->objects[index_of(m)];
  // Stage the object's whole ±1 run and hand it to the ledger in one
  // apply_batch — one segment-tree path per touched bucket instead of
  // one per event. The cost accumulation stays per-pair inside the loop
  // so the float fold order (and thus every snapshot byte) is unchanged.
  std::vector<LedgerEvent>& batch = impl_->ledger_batch;
  batch.clear();
  for (std::size_t i = state.flushed_events; i + 1 < state.events.size(); i += 2) {
    const double start = state.events[i].time;
    const double end = state.events[i + 1].time;
    if (!(start >= 0.0) || !(end >= start)) {
      throw std::invalid_argument("ChannelLedger: bad interval");
    }
    batch.push_back({start, state.id, +1, true});
    batch.push_back({end, state.id, -1, false});
    impl_->cost += end - start;
    ++impl_->streams;
  }
  impl_->ledger.apply_batch(batch);
  state.flushed_events = state.events.size();
  for (std::size_t i = state.flushed_waits; i < state.waits.size(); ++i) {
    const double w = state.waits[i];
    impl_->p50.add(w);
    impl_->p95.add(w);
    impl_->p99.add(w);
    impl_->wait_sum += w;
    if (w > impl_->wait_max) impl_->wait_max = w;
    ++impl_->wait_count;
    ++impl_->admitted;
  }
  state.flushed_waits = state.waits.size();
  state.dirty = false;
}

void ServerCore::epilogue(std::span<const Index> objects) {
  // The serial fold: object-id order, arrival order within an object —
  // never a function of the shard fan-out.
  for (const Index m : objects) flush_object(m);
}

/// Delivers a batch of arrivals to one object, dispatching once per
/// batch instead of twice per arrival: slotted policies that advertised
/// a FastSlotKind get their on_arrival arithmetic replayed inline
/// (ObjectState is final, so the sink calls devirtualize too), all
/// others take the generic virtual hop. The inline bodies are
/// *transcriptions* of DgObjectPolicy::on_arrival and
/// BatchingObjectPolicy::on_arrival — same floating-point expressions,
/// same emission order, same recorder calls — which is what makes
/// snapshots and checkpoint bytes identical on either path (asserted by
/// tests/test_hotpath_variants.cpp).
void ServerCore::deliver_arrivals(ObjectState& state, const double* times,
                                  std::size_t count) {
  switch (state.fast_kind) {
    case FastSlotKind::kDgSlot:
      // Stateless: admit at the end of the arrival's slot; the schedule
      // itself is fixed and emitted at finish().
      for (std::size_t i = 0; i < count; ++i) {
        const double t = times[i];
        const Index slot = dg_slot_of(t, config_.delay);
        state.record_admission(
            t, static_cast<double>(slot + 1) * config_.delay, t);
      }
      return;
    case FastSlotKind::kBatchSlot: {
      // One cursor: mirror it locally, replay the batch, sync it back
      // with a single virtual round-trip so the policy's save_state
      // bytes are exactly what the virtual path would have written.
      double last_start = state.policy->fast_slot_cursor();
      for (std::size_t i = 0; i < count; ++i) {
        const double t = times[i];
        const double start = batch_start_of(t, config_.delay);
        if (start > last_start) {
          state.start_stream(start, 1.0, -1);
          last_start = start;
        }
        state.record_admission(t, start, t);
      }
      state.policy->set_fast_slot_cursor(last_start);
      return;
    }
    case FastSlotKind::kNone:
      break;
  }
  for (std::size_t i = 0; i < count; ++i) {
    state.policy->on_arrival(times[i], state);
  }
}

void ServerCore::process_object(ObjectState& state) {
  const std::size_t delivered = state.pending.size();
  deliver_arrivals(state, state.pending.data(), delivered);
  state.outcome.arrivals += static_cast<Index>(delivered);
  // Large one-shot traces (ingest_trace) release their memory here;
  // small mailboxes keep their capacity for the next drain.
  if (state.pending.capacity() > 4096) {
    std::vector<double>().swap(state.pending);
  } else {
    state.pending.clear();
  }
  if (config_.enable_sessions) resolve_sessions(state);
}

/// Resolves every newly admitted session's media-position events to
/// wall times by walking its playhead: wall advances with playback,
/// jumps over pauses, and restarts from seek targets. Events the
/// playhead already passed (a forward seek skipped them) are dropped;
/// nothing follows an abandon. Runs inside the parallel drain — it
/// touches only this object's state.
void ServerCore::resolve_sessions(ObjectState& state) {
  while (state.resolved_sessions < state.sessions.size() &&
         state.resolved_sessions < state.admissions.size()) {
    const std::size_t i = state.resolved_sessions++;
    const SessionTrace& trace = state.sessions[i];
    const double playback = state.admissions[i].first;
    ++state.outcome.sessions;
    double wall = playback;
    double pos = 0.0;
    bool departed = false;
    for (const SessionEvent& event : trace.events) {
      if (event.position < pos || event.position > 1.0) continue;
      wall += event.position - pos;
      pos = event.position;
      if (state.policy != nullptr) {
        state.policy->on_session_event(wall, trace.arrival, event, state);
      }
      switch (event.type) {
        case SessionEventType::kPause:
          wall += event.value;
          ++state.outcome.session_pauses;
          break;
        case SessionEventType::kSeek:
          ++state.outcome.session_seeks;
          state.plan_events.push_back(
              {wall, playback, static_cast<Index>(i), true});
          pos = event.value;
          break;
        case SessionEventType::kAbandon:
          ++state.outcome.session_abandons;
          state.plan_events.push_back(
              {wall, playback, static_cast<Index>(i), false});
          departed = true;
          break;
      }
      if (departed) break;
    }
    state.session_playbacks.push_back(playback);
    state.session_ends.push_back(departed ? wall : wall + (1.0 - pos));
    state.session_ends_sorted = false;
  }
}

/// Applies the object's churn to its assembled plan in place: each
/// abandon decrements its serving stream's live-session count and the
/// plan-level departure fires when the last viewer leaves; a seek
/// re-roots the serving subtree only when the seeker is its sole
/// viewer (a shared stream keeps serving the others). The edits feed
/// `retract_stream` (stream record + cost) here and the ledger fold in
/// finish()'s serial epilogue. Runs in the parallel finalization — it
/// touches only this object's state.
void ServerCore::repair_object_plan(ObjectState& state) {
  if (state.resolved_sessions != state.sessions.size()) {
    throw std::logic_error("server-core: unresolved sessions at finish");
  }
  if (state.plan_events.empty()) return;
  std::vector<Index> session_stream(state.resolved_sessions, -1);
  std::vector<Index> viewers(state.stream_starts.size(), 0);
  for (std::size_t i = 0; i < state.resolved_sessions; ++i) {
    const Index s = state.stream_for_playback(state.admissions[i].first);
    session_stream[i] = s;
    ++viewers[index_of(s)];
  }
  std::sort(state.plan_events.begin(), state.plan_events.end(),
            [](const ObjectState::PlanEvent& a, const ObjectState::PlanEvent& b) {
              if (a.wall != b.wall) return a.wall < b.wall;
              return a.session < b.session;
            });
  plan::SessionPlan session_plan(state.plan);
  for (const ObjectState::PlanEvent& event : state.plan_events) {
    const Index s = session_stream[index_of(event.session)];
    if (event.is_seek) {
      if (viewers[index_of(s)] == 1 && session_plan.active(s)) {
        session_plan.seek(s, event.wall);
      }
    } else if (--viewers[index_of(s)] == 0) {
      session_plan.abandon(s, event.wall);
    }
  }
  state.repair = session_plan.stats();
  state.session_edits.assign(session_plan.edits().begin(),
                             session_plan.edits().end());
  for (const plan::StreamEdit& edit : state.session_edits) {
    state.retract_stream(edit.stream, edit.new_end);
  }
  state.plan = session_plan.snapshot();
  state.outcome.plan_truncations += state.repair.truncations;
  state.outcome.plan_reroots += state.repair.reroots;
  state.outcome.retracted_cost += state.repair.retracted;
  state.outcome.extended_cost += state.repair.extended;
}

// --- Ingest -----------------------------------------------------------------

void ServerCore::ingest(Index object, double time) {
  if (impl_->finished) throw std::logic_error("ServerCore: already finished");
  if (config_.serve != ServeMode::kPolicy) {
    throw std::invalid_argument(
        "ServerCore: ingest/drain serve the generic policy path; slotted "
        "modes use admit()");
  }
  if (config_.enable_sessions) {
    throw std::invalid_argument(
        "ServerCore: a session core must know every client's lifecycle — "
        "use ingest_session_trace");
  }
  if (object < 0 || object >= config_.objects) {
    throw std::out_of_range("ServerCore::ingest: object out of range");
  }
  if (time < 0.0 || time < impl_->objects[index_of(object)]->last_time) {
    throw std::invalid_argument(
        "ServerCore::ingest: arrivals must be nondecreasing per object");
  }
  ObjectState& state = *impl_->objects[index_of(object)];
  state.pending.push_back(time);
  state.last_time = time;
  if (time > impl_->clock) impl_->clock = time;
  ++impl_->arrivals;
  if (!state.dirty) {
    state.dirty = true;
    impl_->shard_dirty[index_of(object) % config_.shards].push_back(object);
  }
}

void ServerCore::ingest_trace(Index object, std::vector<double> times) {
  if (impl_->finished) throw std::logic_error("ServerCore: already finished");
  if (config_.serve != ServeMode::kPolicy) {
    throw std::invalid_argument(
        "ServerCore: ingest/drain serve the generic policy path; slotted "
        "modes use admit()");
  }
  if (config_.enable_sessions) {
    throw std::invalid_argument(
        "ServerCore: a session core must know every client's lifecycle — "
        "use ingest_session_trace");
  }
  if (object < 0 || object >= config_.objects) {
    throw std::out_of_range("ServerCore::ingest_trace: object out of range");
  }
  if (times.empty()) return;
  ObjectState& state = *impl_->objects[index_of(object)];
  const auto count = static_cast<Index>(times.size());
  double last = state.last_time;
  for (const double t : times) {
    if (t < 0.0 || t < last) {
      throw std::invalid_argument(
          "ServerCore::ingest_trace: arrivals must be nondecreasing per object");
    }
    last = t;
  }
  if (state.pending.empty()) {
    state.pending = std::move(times);
  } else {
    state.pending.insert(state.pending.end(), times.begin(), times.end());
  }
  state.last_time = last;
  if (last > impl_->clock) impl_->clock = last;
  impl_->arrivals += count;
  if (!state.dirty) {
    state.dirty = true;
    impl_->shard_dirty[index_of(object) % config_.shards].push_back(object);
  }
}

void ServerCore::post(Index object, double time) {
  // Producer-side fast path: everything read here is immutable after
  // construction (config, object count, mailbox array), everything
  // written is the lock-free ring. Monotonicity is validated where the
  // order is known — at collection, after the (time, seq) sort.
  if (impl_->mailboxes.empty()) {
    throw std::invalid_argument(
        "ServerCore::post: generic-policy, non-session serving only");
  }
  if (impl_->finished) {
    throw std::logic_error("ServerCore: already finished");
  }
  if (object < 0 || object >= config_.objects) {
    throw std::out_of_range("ServerCore::post: object out of range");
  }
  if (!(time >= 0.0)) {
    throw std::invalid_argument("ServerCore::post: negative arrival time");
  }
  Impl::ShardMailbox& mb =
      *impl_->mailboxes[index_of(object) % config_.shards];
  const std::uint64_t seq = mb.ticket.fetch_add(1, std::memory_order_relaxed);
  mb.box.push({time, object, seq});
}

/// Claims shard `s`'s published ring range in one step and folds it
/// into the per-object pending mailboxes: scatter by object, restore
/// each object's (time, seq) post order, validate monotonicity against
/// what the object already served, append. Runs on the shard's drain
/// worker; touches only shard-owned state (plus per-object state this
/// shard owns), so workers never contend.
void ServerCore::collect_posted(unsigned s) {
  Impl::ShardMailbox& mb = *impl_->mailboxes[s];
  mb.scratch.clear();
  mb.box.drain(mb.scratch);
  // Rejoin arrivals a previous pass held back behind a ticket gap.
  if (!mb.held.empty()) {
    mb.scratch.insert(mb.scratch.end(), mb.held.begin(), mb.held.end());
    mb.held.clear();
  }
  if (mb.scratch.empty()) return;
  // The claim is seq-sorted runs (ring, then spill, then the held
  // leftovers); restore shard-wide ticket order.
  const auto seq_less = [](const PostedArrival& a,
                           const PostedArrival& b) noexcept {
    return a.seq < b.seq;
  };
  if (!std::is_sorted(mb.scratch.begin(), mb.scratch.end(), seq_less)) {
    std::sort(mb.scratch.begin(), mb.scratch.end(), seq_less);
  }
  // Fold only the contiguous ticket prefix. The ring sweep stops at the
  // first claimed-but-unpublished slot, and the producer may publish it
  // and spill newer arrivals before this same pass claims the spill —
  // so one claim can contain a later arrival while an earlier one (of
  // the same object) still sits in the ring. Folding past the gap would
  // deliver those out of order; post-gap arrivals wait in `held` for
  // the pass that claims the gap.
  std::size_t fold = 0;
  while (fold < mb.scratch.size() &&
         mb.scratch[fold].seq == mb.next_seq + fold) {
    ++fold;
  }
  if (fold < mb.scratch.size()) {
    mb.held.assign(mb.scratch.begin() + static_cast<std::ptrdiff_t>(fold),
                   mb.scratch.end());
    mb.scratch.resize(fold);
  }
  mb.next_seq += fold;
  if (mb.scratch.empty()) return;
  mb.touched.clear();
  for (const PostedArrival& a : mb.scratch) {
    ObjectState& state = *impl_->objects[index_of(a.object)];
    if (state.posted_batch.empty()) mb.touched.push_back(a.object);
    state.posted_batch.push_back(a);
  }
  // Time-key scratch for the re-sort check, on this worker's arena (the
  // shard's drain worker is stable under pin_workers, so the buffer
  // stays in its cache and is released by one pointer rewind).
  util::MonotonicArena& arena = util::thread_arena();
  const util::ArenaScope scope(arena);
  util::ArenaVector<double> keys{util::ArenaAllocator<double>(arena)};
  keys.reserve(mb.scratch.size());
  // Object-id order keeps the dirty-list append order (and therefore a
  // restored core's rebuilt lists) independent of ring interleaving.
  std::sort(mb.touched.begin(), mb.touched.end());
  for (const Index m : mb.touched) {
    ObjectState& state = *impl_->objects[index_of(m)];
    std::vector<PostedArrival>& batch = state.posted_batch;
    // Strictly increasing times mean the batch is already in (time,
    // seq) order with no tie that needs the ticket — the common
    // single-producer case, checked by the lane-parallel kernel. Only
    // on ties/reordering does the scalar comparator (and maybe the
    // sort) run.
    keys.resize(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) keys[i] = batch[i].time;
    if (!util::simd::strictly_increasing(keys.data(), keys.size()) &&
        !std::is_sorted(batch.begin(), batch.end(), posted_less)) {
      std::sort(batch.begin(), batch.end(), posted_less);
    }
    if (batch.front().time < state.last_time) {
      impl_->posted_out_of_order.store(true, std::memory_order_relaxed);
      batch.clear();
      continue;
    }
    state.pending.reserve(state.pending.size() + batch.size());
    for (const PostedArrival& a : batch) state.pending.push_back(a.time);
    state.last_time = batch.back().time;
    if (batch.back().time > mb.max_time) mb.max_time = batch.back().time;
    mb.collected += static_cast<Index>(batch.size());
    batch.clear();
    if (!state.dirty) {
      state.dirty = true;
      impl_->shard_dirty[s].push_back(m);
    }
  }
}

void ServerCore::ingest_session_trace(Index object,
                                      std::vector<SessionTrace> sessions) {
  if (impl_->finished) throw std::logic_error("ServerCore: already finished");
  if (!config_.enable_sessions) {
    throw std::invalid_argument(
        "ServerCore::ingest_session_trace: enable_sessions is off");
  }
  if (object < 0 || object >= config_.objects) {
    throw std::out_of_range("ServerCore::ingest_session_trace: object");
  }
  if (sessions.empty()) return;
  ObjectState& state = *impl_->objects[index_of(object)];
  double last = state.last_time;
  for (const SessionTrace& session : sessions) {
    if (session.arrival < 0.0 || session.arrival < last) {
      throw std::invalid_argument(
          "ServerCore::ingest_session_trace: arrivals must be nondecreasing "
          "per object");
    }
    last = session.arrival;
  }
  const auto count = static_cast<Index>(sessions.size());
  state.pending.reserve(state.pending.size() + sessions.size());
  state.sessions.reserve(state.sessions.size() + sessions.size());
  for (SessionTrace& session : sessions) {
    state.pending.push_back(session.arrival);
    state.sessions.push_back(std::move(session));
  }
  state.last_time = last;
  if (last > impl_->clock) impl_->clock = last;
  impl_->arrivals += count;
  if (!state.dirty) {
    state.dirty = true;
    impl_->shard_dirty[index_of(object) % config_.shards].push_back(object);
  }
}

void ServerCore::drain() {
  if (impl_->finished) return;
  // Fan-out scratch (active list, merged dirty list) lives on the
  // caller's arena for the duration of this drain: no heap traffic on
  // the steady-state path, released by one pointer rewind.
  util::MonotonicArena& arena = util::thread_arena();
  const util::ArenaScope scope(arena);
  // Active-shard gather: a shard reaches the pool only when it has
  // dirty objects or published posts, so idle-catalogue drains cost one
  // scan instead of a full pool fan-out.
  const bool posted = !impl_->mailboxes.empty();
  util::ArenaVector<unsigned> active{util::ArenaAllocator<unsigned>(arena)};
  active.reserve(config_.shards);
  for (unsigned s = 0; s < config_.shards; ++s) {
    if (!impl_->shard_dirty[s].empty() ||
        (posted && (impl_->mailboxes[s]->box.has_items() ||
                    !impl_->mailboxes[s]->held.empty()))) {
      active.push_back(s);
    }
  }
  if (active.empty()) return;
  const auto drain_shard = [&](unsigned s) {
    if (posted) collect_posted(s);
    for (const Index m : impl_->shard_dirty[s]) {
      process_object(*impl_->objects[index_of(m)]);
    }
  };
  if (config_.pin_workers) {
    // Static residue-class schedule on the pinned pool: shard s always
    // lands on participant s % P, so a shard's mailbox ring, dirty
    // list, and drain scratch stay hot in one core's cache across
    // drains. Idle shards are skipped via the mask — the mapping must
    // not depend on which shards happen to be active this round.
    util::ArenaVector<std::uint8_t> is_active{
        util::ArenaAllocator<std::uint8_t>(arena)};
    is_active.assign(config_.shards, 0);
    for (const unsigned s : active) is_active[s] = 1;
    util::ThreadPool::shared_pinned().run_static(
        config_.shards, config_.shards, [&](std::int64_t s) {
          if (is_active[static_cast<std::size_t>(s)]) {
            drain_shard(static_cast<unsigned>(s));
          }
        });
  } else {
    util::parallel_for(
        0, static_cast<std::int64_t>(active.size()),
        [&](std::int64_t i) {
          drain_shard(active[static_cast<std::size_t>(i)]);
        },
        config_.shards);
  }
  if (posted) {
    if (impl_->posted_out_of_order.load(std::memory_order_relaxed)) {
      impl_->posted_out_of_order.store(false, std::memory_order_relaxed);
      throw std::invalid_argument(
          "ServerCore::post: arrivals must be nondecreasing per object");
    }
    // Serial fold of the claimed counts, shard order — the same totals
    // the serial ingest paths maintain per call.
    for (const auto& mb_ptr : impl_->mailboxes) {
      Impl::ShardMailbox& mb = *mb_ptr;
      impl_->arrivals += mb.collected;
      if (mb.max_time > impl_->clock) impl_->clock = mb.max_time;
      mb.collected = 0;
      mb.max_time = 0.0;
    }
  }
  util::ArenaVector<Index> dirty{util::ArenaAllocator<Index>(arena)};
  std::size_t dirty_total = 0;
  for (const auto& list : impl_->shard_dirty) dirty_total += list.size();
  dirty.reserve(dirty_total);
  for (auto& list : impl_->shard_dirty) {
    dirty.insert(dirty.end(), list.begin(), list.end());
    list.clear();
  }
  std::sort(dirty.begin(), dirty.end());
  epilogue({dirty.data(), dirty.size()});
}

// --- The serial live path ---------------------------------------------------

Ticket ServerCore::admit(Index object, double time) {
  if (impl_->finished) throw std::logic_error("ServerCore: already finished");
  if (object < 0 || object >= config_.objects) {
    throw std::out_of_range("ServerCore::admit: object out of range");
  }
  if (time < 0.0) {
    throw std::invalid_argument("ServerCore::admit: negative arrival time");
  }
  if (config_.enable_sessions) {
    throw std::invalid_argument(
        "ServerCore: a session core must know every client's lifecycle — "
        "use ingest_session_trace");
  }
  ObjectState& state = *impl_->objects[index_of(object)];
  if (time < state.last_time) {
    throw std::invalid_argument("ServerCore::admit: arrivals must be sorted");
  }
  state.last_time = time;
  if (time > impl_->clock) impl_->clock = time;
  ++impl_->arrivals;
  ++state.outcome.arrivals;
  return config_.serve == ServeMode::kPolicy ? admit_policy(object, time)
                                             : admit_slotted(object, time);
}

Ticket ServerCore::admit_policy(Index object, double time) {
  ObjectState& state = *impl_->objects[index_of(object)];
  // Preserve per-object time order if the driver mixed in mailbox
  // arrivals for this object.
  if (!state.pending.empty()) process_object(state);
  deliver_arrivals(state, &time, 1);
  flush_object(object);

  Ticket ticket;
  ticket.admitted = true;
  ticket.object = object;
  ticket.arrival = time;
  ticket.decision_time = time;
  ticket.playback_start = state.last_playback;
  ticket.wait = std::max(0.0, state.last_playback - time);
  ticket.guarantee_wait = ticket.wait;
  return ticket;
}

bool ServerCore::slot_stream_fits(double start, double duration) {
  if (config_.channel_capacity < 1) return true;
  return impl_->ledger.max_over(start, start + duration) + 1 <=
         config_.channel_capacity;
}

void ServerCore::start_slot_stream(ObjectState& state, Index slot, double start,
                                   double duration, Index parent) {
  state.start_stream(start, duration, parent);
  if (slot >= 0) {
    if (state.slot_has_stream.size() <= index_of(slot)) {
      state.slot_has_stream.resize(index_of(slot) + 1, 0);
    }
    state.slot_has_stream[index_of(slot)] = 1;
  }
}

void ServerCore::dg_emit_through(ObjectState& state, Index slot) {
  const MergeTree& tmpl = impl_->dg->template_tree();
  const Index block = impl_->dg->block_size();
  for (Index t = state.dg_emitted + 1; t <= slot; ++t) {
    const Index local = t % block;
    const Index parent = local == 0 ? -1 : (t - local) + tmpl.parent(local);
    // Unclipped template truncation: the running schedule cannot know
    // the final horizon yet, so final-block pruning applies only to the
    // closed-form cost (DelayGuaranteedOnline::cost), not the ledger.
    const Index block_end = (t - local) + block;
    state.start_stream(
        static_cast<double>(t + 1) * config_.delay,
        static_cast<double>(impl_->dg->stream_length(t, block_end)) * config_.delay,
        parent);
  }
  if (slot > state.dg_emitted) state.dg_emitted = slot;
}

Ticket ServerCore::admit_slotted(Index object, double time) {
  ObjectState& state = *impl_->objects[index_of(object)];
  const double delay = config_.delay;
  const Index slot = dg_slot_of(time, delay);

  Ticket ticket;
  ticket.object = object;
  ticket.arrival = time;
  ticket.decision_time = time;
  ticket.slot = slot;

  if (config_.serve == ServeMode::kSlottedDg) {
    // Delay Guaranteed: the schedule is fixed (a stream per slot), the
    // admission is a pure O(1) lookup.
    dg_emit_through(state, slot);
    ticket.admitted = true;
    ticket.playback_start = static_cast<double>(slot + 1) * delay;
    ticket.wait = ticket.playback_start - time;
    ticket.guarantee_wait = ticket.wait;
    ticket.program = slot % impl_->dg->block_size();
    state.record_admission(time, ticket.playback_start, time);
    if (slot > state.last_slot) state.last_slot = slot;
    flush_object(object);
    return ticket;
  }

  // Slotted batching: one full stream per nonempty slot; the channel
  // budget is checked before the client is accepted.
  const auto slot_covered = [&](Index s) {
    return index_of(s) < state.slot_has_stream.size() &&
           state.slot_has_stream[index_of(s)] != 0;
  };
  const auto slot_start = [&](Index s) {
    return static_cast<double>(s + 1) * delay;
  };

  Index serve_slot = slot;
  bool fits = slot_covered(slot) ||
              config_.admission == AdmissionMode::kObserve ||
              slot_stream_fits(slot_start(slot), 1.0);
  if (!fits) {
    switch (config_.admission) {
      case AdmissionMode::kObserve:
        break;  // unreachable: observe always fits
      case AdmissionMode::kReject:
        ++impl_->rejected;
        return ticket;  // admitted == false
      case AdmissionMode::kDefer: {
        for (Index k = 1; k <= config_.max_defer_slots && !fits; ++k) {
          serve_slot = slot + k;
          fits = slot_covered(serve_slot) ||
                 slot_stream_fits(slot_start(serve_slot), 1.0);
        }
        if (!fits) {
          ++impl_->rejected;
          return ticket;
        }
        ticket.deferred_slots = serve_slot - slot;
        // The guarantee re-runs from the deferred slot's start; the
        // queueing time stays visible in `wait`.
        ticket.decision_time = static_cast<double>(serve_slot) * delay;
        ++impl_->deferrals;
        break;
      }
      case AdmissionMode::kDegrade: {
        // Never reject: coalesce into the first batch that fits. The
        // probe terminates because every committed stream eventually
        // ends, after which the windowed max is 0 and any slot fits.
        while (!fits) {
          ++serve_slot;
          fits = slot_covered(serve_slot) ||
                 slot_stream_fits(slot_start(serve_slot), 1.0);
        }
        ticket.deferred_slots = serve_slot - slot;
        ticket.degraded = true;
        ++impl_->degraded;
        break;
      }
    }
  }

  if (!slot_covered(serve_slot)) {
    start_slot_stream(state, serve_slot, slot_start(serve_slot), 1.0, -1);
  }
  ticket.admitted = true;
  ticket.playback_start = slot_start(serve_slot);
  ticket.wait = ticket.playback_start - time;
  ticket.guarantee_wait = ticket.playback_start - ticket.decision_time;
  state.record_admission(time, ticket.playback_start, ticket.decision_time);
  if (serve_slot > state.last_slot) state.last_slot = serve_slot;
  flush_object(object);
  return ticket;
}

// --- End of run -------------------------------------------------------------

void ServerCore::finish() {
  if (impl_->finished) return;
  drain();
  for (const auto& mb : impl_->mailboxes) {
    if (mb->box.has_items() || !mb->held.empty()) {
      throw std::logic_error(
          "ServerCore::finish: producers still posting — quiesce them first");
    }
  }

  // The finish fan-outs go to the pinned pool when the drains did, so
  // an object's final flush runs on the core that owns its shard's
  // cache lines.
  util::ThreadPool& pool = config_.pin_workers
                               ? util::ThreadPool::shared_pinned()
                               : util::ThreadPool::shared();
  const auto n = static_cast<std::int64_t>(config_.objects);
  if (config_.serve == ServeMode::kPolicy) {
    // Horizon flush: fixed schedules (DG) and late-resolving
    // truncations (the greedy merger) emit here. Objects are
    // independent, so the flush fans out over the pool.
    util::parallel_for_on(
        pool, 0, n,
        [&](std::int64_t m) {
          ObjectState& state = *impl_->objects[static_cast<std::size_t>(m)];
          state.policy->finish(config_.horizon, state);
        },
        config_.shards);
  } else if (config_.serve == ServeMode::kSlottedDg && config_.horizon > 0.0) {
    // The DG schedule is demand-independent: extend it through every
    // slot that begins within the horizon.
    const auto slots = static_cast<Index>(
        std::ceil(config_.horizon / config_.delay - 1e-12));
    for (auto& state : impl_->objects) dg_emit_through(*state, slots - 1);
  }

  util::MonotonicArena& arena = util::thread_arena();
  const util::ArenaScope scope(arena);
  util::ArenaVector<Index> all{util::ArenaAllocator<Index>(arena)};
  all.resize(index_of(config_.objects));
  for (Index m = 0; m < config_.objects; ++m) all[index_of(m)] = m;
  epilogue({all.data(), all.size()});

  // Per-object finalization: the object's own channel peak (sorts its
  // events — safe now, the ledger has its own copy), the canonical
  // plan, and the interval ordering. Parallel: objects are independent.
  util::parallel_for_on(
      pool, 0, n,
      [&](std::int64_t m) {
        ObjectState& state = *impl_->objects[static_cast<std::size_t>(m)];
        if (state.collect_plan) state.plan = state.build_plan();
        if (config_.enable_sessions) {
          repair_object_plan(state);
          // The object's own peak reflects the repaired stream ends.
          std::vector<ChannelEvent> repaired;
          repaired.reserve(2 * state.stream_starts.size());
          for (std::size_t i = 0; i < state.stream_starts.size(); ++i) {
            repaired.push_back({state.stream_starts[i], +1});
            repaired.push_back(
                {state.stream_starts[i] + state.stream_durations[i], -1});
          }
          state.outcome.peak_concurrency = peak_overlap(repaired);
        } else {
          state.outcome.peak_concurrency = peak_overlap(state.events);
        }
        std::stable_sort(state.intervals.begin(), state.intervals.end(),
                         [](const StreamInterval& a, const StreamInterval& b) {
                           return a.start < b.start;
                         });
      },
      config_.shards);

  // Fold the repairs through the global ledger: serial, object-id
  // order, edit order within an object — never a function of the shard
  // fan-out, exactly like the epilogue. Retraction pairs keep the
  // ledger append-only; occupancy and capacity accounting from here on
  // see the repaired schedule.
  if (config_.enable_sessions) {
    for (const auto& state : impl_->objects) {
      for (const plan::StreamEdit& edit : state->session_edits) {
        impl_->ledger.move_end(edit.old_end, edit.new_end, state->id);
        impl_->cost += edit.new_end - edit.old_end;
      }
    }
  }

  // The deterministic serial reduction, in object order — the legacy
  // engine's fold, with the k-way event merge replaced by the ledger.
  Snapshot& snap = impl_->snapshot;
  snap.per_object.reserve(index_of(config_.objects));
  std::size_t total_waits = 0;
  for (const auto& state : impl_->objects) {
    snap.total_arrivals += state->outcome.arrivals;
    snap.total_streams += state->outcome.streams;
    snap.streams_served += state->outcome.cost;
    snap.guarantee_violations += state->outcome.violations;
    snap.total_sessions += state->outcome.sessions;
    snap.session_pauses += state->outcome.session_pauses;
    snap.session_seeks += state->outcome.session_seeks;
    snap.session_abandons += state->outcome.session_abandons;
    snap.plan_truncations += state->outcome.plan_truncations;
    snap.plan_reroots += state->outcome.plan_reroots;
    snap.retracted_cost += state->outcome.retracted_cost;
    snap.extended_cost += state->outcome.extended_cost;
    if (state->outcome.max_wait > snap.wait.max) {
      snap.wait.max = state->outcome.max_wait;
    }
    snap.per_object.push_back(state->outcome);
    total_waits += state->waits.size();
  }
  snap.peak_concurrency = impl_->ledger.peak();
  if (config_.channel_capacity > 0) {
    snap.capacity_violations =
        impl_->ledger.capacity_violations(config_.channel_capacity);
  }
  snap.rejected = impl_->rejected;
  snap.deferrals = impl_->deferrals;
  snap.degraded = impl_->degraded;

  if (config_.collect_stream_intervals) {
    snap.stream_intervals.reserve(static_cast<std::size_t>(snap.total_streams));
    for (const auto& state : impl_->objects) {
      snap.stream_intervals.insert(snap.stream_intervals.end(),
                                   state->intervals.begin(),
                                   state->intervals.end());
    }
    std::stable_sort(snap.stream_intervals.begin(), snap.stream_intervals.end(),
                     [](const StreamInterval& a, const StreamInterval& b) {
                       return a.start < b.start;
                     });
  }
  if (config_.collect_plans) {
    snap.plans.reserve(impl_->objects.size());
    for (auto& state : impl_->objects) snap.plans.push_back(std::move(state->plan));
  }

  if (total_waits > 0) {
    std::vector<double> all_waits;
    all_waits.reserve(total_waits);
    double wait_sum = 0.0;
    for (const auto& state : impl_->objects) {
      all_waits.insert(all_waits.end(), state->waits.begin(), state->waits.end());
      wait_sum += state->wait_sum;
    }
    std::sort(all_waits.begin(), all_waits.end());
    snap.wait.mean = wait_sum / static_cast<double>(total_waits);
    snap.wait.p50 = util::quantile_sorted(all_waits, 0.50);
    snap.wait.p95 = util::quantile_sorted(all_waits, 0.95);
    snap.wait.p99 = util::quantile_sorted(all_waits, 0.99);
  }
  impl_->finished = true;
}

Snapshot ServerCore::take_snapshot() {
  if (!impl_->finished) {
    throw std::logic_error("ServerCore::take_snapshot: call finish() first");
  }
  return std::move(impl_->snapshot);
}

// --- Live queries -----------------------------------------------------------

LiveStats ServerCore::live_stats() {
  LiveStats stats;
  stats.arrivals = impl_->arrivals;
  stats.admitted = impl_->admitted;
  stats.rejected = impl_->rejected;
  stats.deferrals = impl_->deferrals;
  stats.degraded = impl_->degraded;
  stats.streams = impl_->streams;
  stats.cost = impl_->cost;
  stats.current_channels = impl_->ledger.occupancy_at(impl_->clock);
  stats.peak_channels = impl_->ledger.peak();
  stats.wait = wait_profile(/*exact=*/false);
  if (config_.enable_sessions) {
    const double now = impl_->clock;
    for (auto& state : impl_->objects) {
      stats.session_pauses += state->outcome.session_pauses;
      stats.session_seeks += state->outcome.session_seeks;
      stats.session_abandons += state->outcome.session_abandons;
      if (!state->session_ends_sorted) {
        std::sort(state->session_ends.begin(), state->session_ends.end());
        state->session_ends_sorted = true;
      }
      // Playbacks are nondecreasing (admission order), ends sorted just
      // above: live = started-by-now minus ended-by-now.
      const auto started =
          std::upper_bound(state->session_playbacks.begin(),
                           state->session_playbacks.end(), now) -
          state->session_playbacks.begin();
      const auto ended = std::upper_bound(state->session_ends.begin(),
                                          state->session_ends.end(), now) -
                         state->session_ends.begin();
      stats.live_sessions += static_cast<Index>(started - ended);
    }
  }
  return stats;
}

Index ServerCore::current_channels(double t) {
  return impl_->ledger.occupancy_at(t);
}

Index ServerCore::peak_channels() { return impl_->ledger.peak(); }

util::DelayProfile ServerCore::wait_profile(bool exact) {
  util::DelayProfile profile;
  if (impl_->wait_count == 0) return profile;
  profile.mean = impl_->wait_sum / static_cast<double>(impl_->wait_count);
  profile.max = impl_->wait_max;
  if (!exact) {
    profile.p50 = impl_->p50.estimate();
    profile.p95 = impl_->p95.estimate();
    profile.p99 = impl_->p99.estimate();
    return profile;
  }
  std::vector<double> all;
  all.reserve(static_cast<std::size_t>(impl_->wait_count));
  for (const auto& state : impl_->objects) {
    all.insert(all.end(), state->waits.begin(),
               state->waits.begin() +
                   static_cast<std::ptrdiff_t>(state->flushed_waits));
  }
  std::sort(all.begin(), all.end());
  profile.p50 = util::quantile_sorted(all, 0.50);
  profile.p95 = util::quantile_sorted(all, 0.95);
  profile.p99 = util::quantile_sorted(all, 0.99);
  return profile;
}

double ServerCore::object_cost(Index object) const {
  if (object < 0 || object >= config_.objects) {
    throw std::out_of_range("ServerCore::object_cost");
  }
  return impl_->objects[index_of(object)]->outcome.cost;
}

Index ServerCore::object_clients(Index object) const {
  if (object < 0 || object >= config_.objects) {
    throw std::out_of_range("ServerCore::object_clients");
  }
  return static_cast<Index>(impl_->objects[index_of(object)]->waits.size());
}

Index ServerCore::object_last_slot(Index object) const {
  if (object < 0 || object >= config_.objects) {
    throw std::out_of_range("ServerCore::object_last_slot");
  }
  return impl_->objects[index_of(object)]->last_slot;
}

// --- Crash consistency ------------------------------------------------------

namespace {

constexpr std::string_view kCheckpointSchema = "smerge-ckpt-v1";

void save_p2(util::SnapshotWriter& w, const util::P2State& s) {
  w.f64(s.q);
  w.i64(s.n);
  for (const double x : s.heights) w.f64(x);
  for (const double x : s.positions) w.f64(x);
  for (const double x : s.desired) w.f64(x);
  for (const double x : s.increments) w.f64(x);
}

[[nodiscard]] util::P2State load_p2(util::SnapshotReader& r) {
  util::P2State s;
  s.q = r.f64();
  s.n = r.i64();
  for (double& x : s.heights) x = r.f64();
  for (double& x : s.positions) x = r.f64();
  for (double& x : s.desired) x = r.f64();
  for (double& x : s.increments) x = r.f64();
  return s;
}

void save_config(util::SnapshotWriter& w, const ServerCoreConfig& c) {
  w.i64(c.objects);
  w.f64(c.delay);
  w.f64(c.horizon);
  w.u64(c.shards);
  w.u8(static_cast<std::uint8_t>(c.serve));
  w.i64(c.channel_capacity);
  w.u8(static_cast<std::uint8_t>(c.admission));
  w.i64(c.max_defer_slots);
  w.f64(c.ledger_bucket);
  w.i64(c.dg_media_slots);
  w.boolean(c.collect_stream_intervals);
  w.boolean(c.collect_plans);
  w.boolean(c.enable_sessions);
  w.f64(c.chunking.base);
  w.f64(c.chunking.growth);
  w.f64(c.chunking.cap);
  w.i64(c.chunking.min_start_chunks);
}

/// Validates the checkpoint's config echo against the live config.
/// Shards (and the admission mode, which degrade_admissions may have
/// flipped on the *saved* core) must still agree: results are
/// shard-invariant but the per-shard dirty lists are rebuilt, so only
/// the fan-out width itself may differ.
void check_config(util::SnapshotReader& r, const ServerCoreConfig& c) {
  const auto mismatch = [](const char* field) {
    throw util::SnapshotError(std::string("checkpoint: config mismatch: ") +
                              field);
  };
  if (r.i64() != c.objects) mismatch("objects");
  if (r.f64() != c.delay) mismatch("delay");
  if (r.f64() != c.horizon) mismatch("horizon");
  (void)r.u64();  // shards: restore is shard-width independent
  if (r.u8() != static_cast<std::uint8_t>(c.serve)) mismatch("serve");
  if (r.i64() != c.channel_capacity) mismatch("channel_capacity");
  if (r.u8() != static_cast<std::uint8_t>(c.admission)) mismatch("admission");
  if (r.i64() != c.max_defer_slots) mismatch("max_defer_slots");
  if (r.f64() != c.ledger_bucket) mismatch("ledger_bucket");
  if (r.i64() != c.dg_media_slots) mismatch("dg_media_slots");
  if (r.boolean() != c.collect_stream_intervals) {
    mismatch("collect_stream_intervals");
  }
  if (r.boolean() != c.collect_plans) mismatch("collect_plans");
  if (r.boolean() != c.enable_sessions) mismatch("enable_sessions");
  if (r.f64() != c.chunking.base) mismatch("chunking.base");
  if (r.f64() != c.chunking.growth) mismatch("chunking.growth");
  if (r.f64() != c.chunking.cap) mismatch("chunking.cap");
  if (r.i64() != c.chunking.min_start_chunks) {
    mismatch("chunking.min_start_chunks");
  }
}

}  // namespace

std::vector<std::uint8_t> ServerCore::checkpoint(
    std::uint64_t wal_records, std::span<const std::uint8_t> driver_blob) const {
  if (impl_->finished) {
    throw std::logic_error("ServerCore::checkpoint: core already finished");
  }
  // Posted-but-undrained arrivals live only in the rings, which are not
  // serialized (mailbox geometry, like the shard width, is a knob
  // results never depend on) — losing them silently would break the
  // continuation, so demand a drain first.
  for (const auto& mb : impl_->mailboxes) {
    if (mb->box.has_items() || !mb->held.empty()) {
      throw std::logic_error(
          "ServerCore::checkpoint: posted arrivals pending — drain() first");
    }
  }
  util::SnapshotWriter w;
  save_config(w, config_);
  w.u64(wal_records);
  w.blob(driver_blob);

  w.i64(impl_->arrivals);
  w.i64(impl_->admitted);
  w.i64(impl_->rejected);
  w.i64(impl_->deferrals);
  w.i64(impl_->degraded);
  w.i64(impl_->streams);
  w.f64(impl_->cost);
  w.f64(impl_->clock);
  save_p2(w, impl_->p50.state());
  save_p2(w, impl_->p95.state());
  save_p2(w, impl_->p99.state());
  w.f64(impl_->wait_sum);
  w.f64(impl_->wait_max);
  w.i64(impl_->wait_count);
  impl_->ledger.save(w);

  w.u64(impl_->objects.size());
  for (const auto& state_ptr : impl_->objects) {
    const ObjectState& s = *state_ptr;
    w.i64(s.outcome.arrivals);
    w.i64(s.outcome.streams);
    w.f64(s.outcome.cost);
    w.f64(s.outcome.max_wait);
    w.i64(s.outcome.peak_concurrency);
    w.i64(s.outcome.violations);
    w.i64(s.outcome.sessions);
    w.i64(s.outcome.session_pauses);
    w.i64(s.outcome.session_seeks);
    w.i64(s.outcome.session_abandons);
    w.i64(s.outcome.plan_truncations);
    w.i64(s.outcome.plan_reroots);
    w.f64(s.outcome.retracted_cost);
    w.f64(s.outcome.extended_cost);

    w.u64(s.events.size());
    for (const ChannelEvent& e : s.events) {
      w.f64(e.time);
      w.i64(e.delta);
    }
    w.u64(s.intervals.size());
    for (const StreamInterval& iv : s.intervals) {
      w.f64(iv.start);
      w.f64(iv.end);
    }
    w.f64_vec(s.waits);
    w.f64(s.wait_sum);
    w.f64_vec(s.stream_starts);
    w.f64_vec(s.stream_durations);
    w.i64_vec(s.stream_parents);
    w.u64(s.admissions.size());
    for (const auto& [playback, wait] : s.admissions) {
      w.f64(playback);
      w.f64(wait);
    }
    plan::save_plan(w, s.plan);
    w.f64_vec(s.pending);
    w.u64(s.flushed_events);
    w.u64(s.flushed_waits);
    w.boolean(s.dirty);

    plan::save_session_traces(w, s.sessions);
    w.u64(s.resolved_sessions);
    w.f64_vec(s.session_playbacks);
    w.f64_vec(s.session_ends);
    w.boolean(s.session_ends_sorted);
    w.u64(s.plan_events.size());
    for (const ObjectState::PlanEvent& e : s.plan_events) {
      w.f64(e.wall);
      w.f64(e.playback);
      w.i64(e.session);
      w.boolean(e.is_seek);
    }
    plan::save_edits(w, s.session_edits);
    plan::save_repair_stats(w, s.repair);

    w.f64(s.last_time);
    w.f64(s.last_playback);
    w.i64(s.last_slot);
    w.i64(s.dg_emitted);
    w.u64(s.slot_has_stream.size());
    for (const std::uint8_t b : s.slot_has_stream) w.u8(b);

    util::SnapshotWriter policy_state;
    if (s.policy != nullptr) s.policy->save_state(policy_state);
    w.blob(policy_state.payload());
  }
  return w.frame(kCheckpointSchema);
}

RestoreInfo ServerCore::restore_state(std::span<const std::uint8_t> frame) {
  if (impl_->finished || impl_->arrivals != 0 || impl_->streams != 0) {
    throw std::logic_error(
        "ServerCore::restore_state: requires a freshly constructed core");
  }
  util::SnapshotReader r = util::SnapshotReader::open(frame, kCheckpointSchema);
  check_config(r, config_);
  RestoreInfo info;
  info.wal_records = r.u64();
  const auto blob = r.blob();
  info.driver_blob.assign(blob.begin(), blob.end());

  impl_->arrivals = r.i64();
  impl_->admitted = r.i64();
  impl_->rejected = r.i64();
  impl_->deferrals = r.i64();
  impl_->degraded = r.i64();
  impl_->streams = r.i64();
  impl_->cost = r.f64();
  impl_->clock = r.f64();
  impl_->p50 = util::P2Quantile(load_p2(r));
  impl_->p95 = util::P2Quantile(load_p2(r));
  impl_->p99 = util::P2Quantile(load_p2(r));
  impl_->wait_sum = r.f64();
  impl_->wait_max = r.f64();
  impl_->wait_count = r.i64();
  impl_->ledger.restore(r);

  const std::uint64_t object_count = r.u64();
  if (object_count != impl_->objects.size()) {
    throw util::SnapshotError("checkpoint: object count mismatch");
  }
  for (auto& state_ptr : impl_->objects) {
    ObjectState& s = *state_ptr;
    s.outcome.arrivals = r.i64();
    s.outcome.streams = r.i64();
    s.outcome.cost = r.f64();
    s.outcome.max_wait = r.f64();
    s.outcome.peak_concurrency = r.i64();
    s.outcome.violations = r.i64();
    s.outcome.sessions = r.i64();
    s.outcome.session_pauses = r.i64();
    s.outcome.session_seeks = r.i64();
    s.outcome.session_abandons = r.i64();
    s.outcome.plan_truncations = r.i64();
    s.outcome.plan_reroots = r.i64();
    s.outcome.retracted_cost = r.f64();
    s.outcome.extended_cost = r.f64();

    const std::uint64_t event_count = r.u64();
    if (event_count > r.remaining() / 16) {
      throw util::SnapshotError("checkpoint: event count exceeds remaining");
    }
    s.events.resize(static_cast<std::size_t>(event_count));
    for (ChannelEvent& e : s.events) {
      e.time = r.f64();
      e.delta = static_cast<int>(r.i64());
    }
    const std::uint64_t interval_count = r.u64();
    if (interval_count > r.remaining() / 16) {
      throw util::SnapshotError("checkpoint: interval count exceeds remaining");
    }
    s.intervals.resize(static_cast<std::size_t>(interval_count));
    for (StreamInterval& iv : s.intervals) {
      iv.start = r.f64();
      iv.end = r.f64();
    }
    s.waits = r.f64_vec();
    s.wait_sum = r.f64();
    s.stream_starts = r.f64_vec();
    s.stream_durations = r.f64_vec();
    s.stream_parents = r.i64_vec();
    const std::uint64_t admission_count = r.u64();
    if (admission_count > r.remaining() / 16) {
      throw util::SnapshotError(
          "checkpoint: admission count exceeds remaining");
    }
    s.admissions.resize(static_cast<std::size_t>(admission_count));
    for (auto& [playback, wait] : s.admissions) {
      playback = r.f64();
      wait = r.f64();
    }
    s.plan = plan::load_plan(r);
    s.pending = r.f64_vec();
    const std::uint64_t flushed_events = r.u64();
    const std::uint64_t flushed_waits = r.u64();
    if (flushed_events > s.events.size() || (flushed_events % 2) != 0 ||
        flushed_waits > s.waits.size()) {
      throw util::SnapshotError("checkpoint: flush cursor out of range");
    }
    s.flushed_events = static_cast<std::size_t>(flushed_events);
    s.flushed_waits = static_cast<std::size_t>(flushed_waits);
    s.dirty = r.boolean();

    s.sessions = plan::load_session_traces(r);
    const std::uint64_t resolved = r.u64();
    if (resolved > s.sessions.size()) {
      throw util::SnapshotError("checkpoint: resolved cursor out of range");
    }
    s.resolved_sessions = static_cast<std::size_t>(resolved);
    s.session_playbacks = r.f64_vec();
    s.session_ends = r.f64_vec();
    s.session_ends_sorted = r.boolean();
    const std::uint64_t plan_event_count = r.u64();
    if (plan_event_count > r.remaining() / 25) {
      throw util::SnapshotError(
          "checkpoint: plan-event count exceeds remaining");
    }
    s.plan_events.resize(static_cast<std::size_t>(plan_event_count));
    for (ObjectState::PlanEvent& e : s.plan_events) {
      e.wall = r.f64();
      e.playback = r.f64();
      e.session = r.i64();
      e.is_seek = r.boolean();
    }
    s.session_edits = plan::load_edits(r);
    s.repair = plan::load_repair_stats(r);

    s.last_time = r.f64();
    s.last_playback = r.f64();
    s.last_slot = r.i64();
    s.dg_emitted = r.i64();
    const std::uint64_t slot_count = r.u64();
    if (slot_count > r.remaining()) {
      throw util::SnapshotError("checkpoint: slot flags exceed remaining");
    }
    s.slot_has_stream.resize(static_cast<std::size_t>(slot_count));
    for (std::uint8_t& b : s.slot_has_stream) b = r.u8();

    const auto policy_blob = r.blob();
    if (s.policy != nullptr) {
      util::SnapshotReader policy_reader(policy_blob);
      s.policy->load_state(policy_reader);
      policy_reader.expect_end();
    } else if (!policy_blob.empty()) {
      throw util::SnapshotError(
          "checkpoint: policy state present on a slotted core");
    }
  }
  r.expect_end();

  // Rebuild the per-shard mailbox index for *this* core's shard width —
  // the one field the config echo lets differ.
  for (auto& list : impl_->shard_dirty) list.clear();
  for (const auto& state_ptr : impl_->objects) {
    if (state_ptr->dirty) {
      impl_->shard_dirty[index_of(state_ptr->id) % config_.shards].push_back(
          state_ptr->id);
    }
  }
  return info;
}

const char* ServerCore::admit_dispatch() const noexcept {
  if (config_.serve != ServeMode::kPolicy) return "native-slotted";
  if (impl_->objects.empty()) return "generic";
  // All objects share one policy family, so the first object's sealed
  // kind is the catalogue's.
  switch (impl_->objects.front()->fast_kind) {
    case FastSlotKind::kDgSlot:
      return "sealed:dg-slot";
    case FastSlotKind::kBatchSlot:
      return "sealed:batch-slot";
    case FastSlotKind::kNone:
      break;
  }
  return "generic";
}

Ticket ServerCore::preview_admission(Index object, double time) const {
  if (object < 0 || object >= config_.objects) {
    throw std::out_of_range("ServerCore::preview_admission: bad object id");
  }
  if (!(time >= 0.0)) {
    throw std::invalid_argument(
        "ServerCore::preview_admission: time must be nonnegative");
  }
  Ticket t;
  t.admitted = true;
  t.object = object;
  t.arrival = time;
  t.decision_time = time;
  switch (impl_->preview_kind) {
    case FastSlotKind::kDgSlot: {
      const Index slot = dg_slot_of(time, config_.delay);
      t.slot = slot;
      t.playback_start = static_cast<double>(slot + 1) * config_.delay;
      t.wait = t.playback_start - time;
      t.guarantee_wait = t.wait;
      return t;
    }
    case FastSlotKind::kBatchSlot: {
      const double start = batch_start_of(time, config_.delay);
      t.playback_start = start;
      t.wait = start - time;
      t.guarantee_wait = t.wait;
      return t;
    }
    case FastSlotKind::kNone:
      break;
  }
  // Generic policies decide at drain; the preview can only certify the
  // admission itself. Negative fields mean "not known at preview time".
  t.playback_start = -1.0;
  t.wait = -1.0;
  t.guarantee_wait = -1.0;
  return t;
}

void ServerCore::degrade_admissions() noexcept {
  if (config_.admission == AdmissionMode::kReject ||
      config_.admission == AdmissionMode::kDefer) {
    config_.admission = AdmissionMode::kDegrade;
  }
}

const DelayGuaranteedOnline& ServerCore::dg_policy() const {
  if (impl_->dg == nullptr) {
    throw std::logic_error("ServerCore::dg_policy: not a SlottedDg core");
  }
  return *impl_->dg;
}

const ProgramTable& ServerCore::programs() const {
  if (impl_->table == nullptr) {
    throw std::logic_error("ServerCore::programs: not a SlottedDg core");
  }
  return *impl_->table;
}

}  // namespace smerge::server
