// The sharded, incremental serving runtime — the one live core behind
// the simulation engine, the event-driven Delay Guaranteed server and
// the examples.
//
// A ServerCore hosts a catalogue of N media objects and ingests client
// arrivals incrementally, in either of two shapes:
//
//  * the batched path — `ingest`/`ingest_trace` append arrivals to
//    per-shard mailboxes (objects are round-robined over shards);
//    `drain()` fans the shards out over the persistent
//    `util::ThreadPool`, delivering each object's pending arrivals in
//    time order to its `ObjectPolicy` (src/online/policy.h), then runs
//    a serial epilogue in object-id order that folds the new streams
//    into the channel ledger and the new waits into the running (P²)
//    percentile trackers. Results never depend on the shard count: an
//    object's evolution is a pure function of its own arrival sequence
//    and the epilogue order is fixed.
//  * the serial live path — `admit(object, time)` decides one arrival
//    immediately and returns a Ticket. Under the slotted serving modes
//    (Delay Guaranteed and batching, where the stream an admission
//    needs is statically known) this is where capacity-aware admission
//    lives: a channel budget checked against the incremental ledger
//    *before* the client is accepted, with selectable overload
//    behaviour — reject, defer to a later slot, or degrade to
//    batching — instead of the legacy engine's post-hoc violation
//    counting.
//
// Live queries — current/peak channels, running delay percentiles
// (P² estimates or exact-on-demand), per-object cost — are answerable
// at any quiescent point (between drains, or any time on the serial
// path), not just at end-of-run. `finish()` flushes the policies'
// horizon schedules; `take_snapshot()` then yields totals bit-identical
// to the legacy engine reduction (same fold orders, same canonical
// event order in the ledger).
#ifndef SMERGE_SERVER_SERVER_CORE_H
#define SMERGE_SERVER_SERVER_CORE_H

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/plan.h"
#include "core/plan_repair.h"
#include "core/session.h"
#include "online/policy.h"
#include "online/program_table.h"
#include "schedule/channels.h"
#include "server/channel_ledger.h"
#include "util/stats.h"

namespace smerge::server {

/// What happens when an admission's stream does not fit the channel
/// budget (slotted serving only; `kObserve` is the legacy accounting
/// mode and the only mode the generic policy path supports).
enum class AdmissionMode {
  kObserve,  ///< admit everything; count saturated starts post-hoc
  kReject,   ///< turn the client away; peak stays within the budget
  kDefer,    ///< retry later slots (bounded); guarantee runs from the
             ///< deferred admission, queueing time is reported per ticket
  kDegrade,  ///< never reject: coalesce into the first batch that fits
             ///< (waits may exceed the delay and are counted as
             ///< guarantee violations)
};

/// Human-readable admission-mode name.
[[nodiscard]] const char* to_string(AdmissionMode mode) noexcept;

/// How arrivals are served.
enum class ServeMode {
  kPolicy,          ///< any OnlinePolicy via per-object ObjectPolicy state
  kSlottedDg,       ///< native Delay Guaranteed: stream per slot, O(1)
                    ///< program handout (observe only)
  kSlottedBatching, ///< native batching: one full stream per nonempty
                    ///< slot; all admission modes supported
};

/// One ServerCore run: catalogue x serving mode x channel budget.
struct ServerCoreConfig {
  Index objects = 1;            ///< catalogue size N
  double delay = 0.01;          ///< guaranteed start-up delay / slot duration
  double horizon = 100.0;       ///< served time span, in media lengths
  unsigned shards = 1;          ///< mailbox fan-out width (>= 1)
  ServeMode serve = ServeMode::kPolicy;
  Index channel_capacity = 0;   ///< channel budget; 0 = unbounded
  AdmissionMode admission = AdmissionMode::kObserve;
  Index max_defer_slots = 8;    ///< defer mode: slots probed before rejecting
  double ledger_bucket = 0.0;   ///< ledger bucket width; 0 = one slot (delay)
  Index mailbox_capacity = 0;   ///< post() ring slots per shard, rounded up
                                ///< to a power of two; 0 = 65536. Results
                                ///< never depend on it (overflow spills,
                                ///< nothing drops), so checkpoints ignore
                                ///< it like the shard width.
  Index dg_media_slots = 0;     ///< SlottedDg: L in slots; 0 = round(1/delay)
  bool collect_stream_intervals = false;  ///< keep all intervals (O(streams))
  bool collect_plans = false;   ///< assemble per-object MergePlans (O(streams))

  // Hot-path execution knobs. Pure mechanism — results, snapshots and
  // checkpoint bytes never depend on them, so (like the shard width and
  // mailbox capacity) they are not serialized into checkpoints.
  bool fast_path = true;   ///< seal slotted policies' on_arrival into the
                           ///< core's inline slot computation (see
                           ///< FastSlotKind); off = always the virtual hop
  bool pin_workers = false;  ///< route drain/finish fan-outs through the
                             ///< core-pinned pool with a stable
                             ///< shard→worker map (Linux affinity;
                             ///< elsewhere the pool just floats)

  // Session lifecycle (generic policy serving only). When enabled the
  // core takes `ingest_session_trace` instead of plain arrivals, tracks
  // live sessions, and repairs each object's plan in place at finish():
  // subtrees whose last viewer departed are truncated, seek-away
  // subtrees re-root, and every end move is folded through the channel
  // ledger as a retraction pair. Stream/admission recording is forced
  // on internally (plans are only exported when `collect_plans` is set).
  bool enable_sessions = false;
  plan::ChunkingConfig chunking;  ///< segment timeline for emitted plans
};

/// What a client receives back from `admit`. All indices are stable for
/// the core's lifetime — in particular `program` is a position in the
/// ProgramTable (never a pointer that later growth could invalidate).
struct Ticket {
  bool admitted = false;
  Index object = 0;
  Index slot = -1;              ///< serving slot (slotted modes)
  double arrival = 0.0;
  double decision_time = 0.0;   ///< == arrival unless deferred/degraded
  double playback_start = 0.0;
  double wait = 0.0;            ///< playback_start - arrival
  double guarantee_wait = 0.0;  ///< playback_start - decision_time; the
                                ///< span the delay guarantee covers
  Index deferred_slots = 0;     ///< slots the admission was pushed back
  bool degraded = false;        ///< served by a later batch than promised
  Index program = -1;           ///< ProgramTable index (SlottedDg), else -1
};

/// Per-object totals (index = object id). Field-compatible with the
/// legacy engine's per-object outcome.
struct ObjectOutcome {
  Index arrivals = 0;
  Index streams = 0;
  double cost = 0.0;           ///< transmitted media units (media length 1.0)
  double max_wait = 0.0;
  Index peak_concurrency = 0;  ///< this object's own channel peak
  Index violations = 0;        ///< clients whose wait exceeded the delay

  // Session lifecycle (zero unless enable_sessions).
  Index sessions = 0;          ///< sessions ingested for this object
  Index session_pauses = 0;
  Index session_seeks = 0;
  Index session_abandons = 0;
  Index plan_truncations = 0;  ///< stream ends pulled earlier by repair
  Index plan_reroots = 0;      ///< subtrees detached and re-rooted
  double retracted_cost = 0.0; ///< media units cancelled by repair
  double extended_cost = 0.0;  ///< media units added by re-roots

  friend bool operator==(const ObjectOutcome&, const ObjectOutcome&) = default;
};

/// A mid-run view of the core: O(log buckets) ledger queries plus the
/// running (P²) wait percentiles — no sorting, no end-of-run barrier.
struct LiveStats {
  Index arrivals = 0;
  Index admitted = 0;
  Index rejected = 0;
  Index deferrals = 0;   ///< clients admitted after >= 1 deferred slot
  Index degraded = 0;
  Index streams = 0;
  double cost = 0.0;
  Index current_channels = 0;  ///< occupancy at the latest ingested time
  Index peak_channels = 0;
  util::DelayProfile wait;     ///< mean/max exact, percentiles P² estimates

  // Session lifecycle (zero unless enable_sessions).
  Index live_sessions = 0;     ///< playing (or paused) at the clock
  Index session_pauses = 0;    ///< resolved so far (drained sessions)
  Index session_seeks = 0;
  Index session_abandons = 0;
};

/// End-of-run totals (after `finish()`); the engine adapter maps this
/// 1:1 onto `sim::EngineResult`.
struct Snapshot {
  Index total_arrivals = 0;
  Index total_streams = 0;
  double streams_served = 0.0;
  util::DelayProfile wait;     ///< exact nearest-rank percentiles
  Index peak_concurrency = 0;
  Index guarantee_violations = 0;
  Index capacity_violations = 0;  ///< observe-mode saturated starts
  Index rejected = 0;
  Index deferrals = 0;
  Index degraded = 0;

  // Session lifecycle totals (zero unless enable_sessions).
  Index total_sessions = 0;
  Index session_pauses = 0;
  Index session_seeks = 0;
  Index session_abandons = 0;
  Index plan_truncations = 0;
  Index plan_reroots = 0;
  double retracted_cost = 0.0;
  double extended_cost = 0.0;

  std::vector<ObjectOutcome> per_object;
  std::vector<StreamInterval> stream_intervals;  ///< collected only
  std::vector<plan::MergePlan> plans;            ///< collected only
};

/// True when `wait` exceeds `delay` beyond floating-point slot-boundary
/// rounding — the single definition of a guarantee violation, shared by
/// the core, the engine, the benches and the tests.
[[nodiscard]] bool violates_guarantee(double wait, double delay) noexcept;

/// What `restore_state` hands back alongside the restored core state:
/// the recovery cursor (how many WAL records the checkpoint already
/// covers) and the driver's opaque extension payload (resume cursors,
/// chunk indices — whatever the driver stored at checkpoint time).
struct RestoreInfo {
  std::uint64_t wal_records = 0;
  std::vector<std::uint8_t> driver_blob;
};

/// The serving runtime. One driver thread calls everything except
/// `post()`, which any number of producer threads may call concurrently
/// (lock-free ring mailboxes); drain() parallelizes internally.
///
/// Memory: the core retains per-object events and waits for the whole
/// run — that is what makes exact-on-demand percentiles, per-object
/// peaks and the end-of-run snapshot possible, and it matches the
/// legacy engine's footprint (O(clients + streams)). An indefinitely
/// running deployment that only needs the O(1) live stats would want a
/// retention cap; today's drivers are all bounded-horizon runs.
class ServerCore {
 public:
  /// Generic-policy core (`ServeMode::kPolicy`): calls
  /// `policy.prepare(delay, horizon)` once, then builds per-object
  /// state. The policy must outlive the core. Throws
  /// std::invalid_argument on a bad config or an unsupported
  /// mode/serve combination.
  ServerCore(const ServerCoreConfig& config, OnlinePolicy& policy);

  /// Slotted core (`kSlottedDg` / `kSlottedBatching`): self-contained,
  /// no external policy.
  explicit ServerCore(const ServerCoreConfig& config);

  ~ServerCore();
  ServerCore(const ServerCore&) = delete;
  ServerCore& operator=(const ServerCore&) = delete;

  // --- Ingest -------------------------------------------------------------

  /// Serial live path: decides this arrival now and returns its ticket.
  /// Arrivals must be nondecreasing per object (and, for the capacity
  /// modes, nondecreasing globally — admission order is decision
  /// order). O(1) amortized plus O(log buckets) when a channel-budget
  /// check runs.
  Ticket admit(Index object, double time);

  /// Batched path: appends one arrival to the owning shard's mailbox
  /// (no processing until `drain`). Generic-policy serving only.
  void ingest(Index object, double time);
  /// Appends a whole time-ordered trace for one object (moved, O(1)
  /// when the object's mailbox is empty).
  void ingest_trace(Index object, std::vector<double> times);

  /// Lock-free concurrent ingest: stamps the arrival with a per-shard
  /// ticket and publishes it to the owning shard's bounded MPSC ring
  /// (util/mpsc_ring.h); a full ring spills to a locked fallback
  /// vector, so no arrival is ever dropped. The ONLY member safe to
  /// call from other threads: any number of producers may post
  /// concurrently, including while the driver thread runs `drain()` —
  /// arrivals published before the drain claims the ring are folded in,
  /// later ones wait for the next drain. Each object must be fed by at
  /// most one producer at a time with nondecreasing times (the
  /// per-object policy contract; violations are detected at the next
  /// drain), and producers must quiesce before `finish()`,
  /// `checkpoint()` or any query. Do not mix `post` and `admit` on the
  /// same object without a `drain()` in between. Generic-policy,
  /// non-session serving only.
  void post(Index object, double time);

  /// Session-lifecycle ingest (`enable_sessions` only; plain
  /// ingest/ingest_trace then throw — a session core must know every
  /// client's lifecycle). Each trace is one client: its arrival feeds
  /// the policy exactly like a plain arrival (so the admission stream
  /// is unchanged), its events are resolved to wall times against the
  /// admitted playback at the next drain, and the plan repair they
  /// imply is applied at finish().
  void ingest_session_trace(Index object, std::vector<SessionTrace> sessions);

  /// Processes all mailboxes: each active shard claims its ring's
  /// published range in one step, restores per-object ticket order, and
  /// delivers the batch; shards with nothing pending never reach the
  /// pool. The serial epilogue then folds results in object-id order,
  /// applying each object's ledger run in bulk. Bit-identical for any
  /// shard count, thread count or drain cadence.
  void drain();

  /// Ends the run at the configured horizon: drains pending arrivals,
  /// lets every object's policy flush its fixed/late schedule, and
  /// finalizes per-object outcomes. Idempotent.
  void finish();

  // --- Live queries -------------------------------------------------------

  /// Callable mid-run (between drains / after any admit). Reflects only
  /// drained state, and every field it reads is written exclusively by
  /// the driver thread's drain/admit — so the *driver thread* may call
  /// it while producers are still post()ing (the network front end's
  /// stats surface does exactly that); arrivals still in the rings are
  /// simply not visible yet. Other threads must not call it.
  [[nodiscard]] LiveStats live_stats();
  /// Channels busy at time `t`.
  [[nodiscard]] Index current_channels(double t);
  /// Peak channels so far.
  [[nodiscard]] Index peak_channels();
  /// Wait distribution: `exact` sorts all waits recorded so far
  /// (O(n log n)); otherwise returns the O(1) P² running estimates.
  [[nodiscard]] util::DelayProfile wait_profile(bool exact);
  /// Media units transmitted by one object so far.
  [[nodiscard]] double object_cost(Index object) const;
  /// Clients admitted for one object so far.
  [[nodiscard]] Index object_clients(Index object) const;
  /// Latest slot any client of `object` was served in (-1 before the
  /// first admission). Slotted modes.
  [[nodiscard]] Index object_last_slot(Index object) const;

  /// The configuration the core was built with.
  [[nodiscard]] const ServerCoreConfig& config() const noexcept { return config_; }

  /// A thread-safe admission preview: the Ticket a client arriving at
  /// `time` will receive, computed from construction-time slot
  /// arithmetic alone (dg_slot_of / batch_start_of — the same
  /// closed-form mappings the sealed fast path replays), without
  /// touching any mutable core state. For policies with no sealed form
  /// the playback/wait fields come back negative ("decided at the next
  /// drain") and only the admission itself is certified. This is what
  /// the network front end stamps TICKET replies from: any reactor
  /// thread may call it concurrently with post() and drain(). Throws on
  /// a bad object id or negative time.
  [[nodiscard]] Ticket preview_admission(Index object, double time) const;

  /// How per-arrival admissions are dispatched on this core: a sealed
  /// fast path ("sealed:dg-slot" / "sealed:batch-slot"), the generic
  /// virtual path ("generic"), or the natively slotted serving modes
  /// ("native-slotted"). Reflects the built state, not just the config
  /// knob — a banner-friendly answer.
  [[nodiscard]] const char* admit_dispatch() const noexcept;

  // --- Slotted-DG access (the DelayGuaranteedServer adapter) --------------

  /// The shared static DG policy; throws std::logic_error outside
  /// `kSlottedDg`.
  [[nodiscard]] const DelayGuaranteedOnline& dg_policy() const;
  /// The O(1) receiving-program table; `Ticket::program` indexes into
  /// it and stays valid for the core's lifetime (entries are built once
  /// at construction and never reallocated afterwards).
  [[nodiscard]] const ProgramTable& programs() const;

  // --- Crash consistency --------------------------------------------------

  /// Serializes the core's complete state — configuration echo, running
  /// counters, P² percentile markers, the channel ledger (difference
  /// counters + sorted-prefix cursors), and every object's recorder,
  /// mailbox, session log and policy state — into a checksummed
  /// `smerge-ckpt-v1` frame. Valid at any quiescent pre-finish point
  /// (between drains / admits). `wal_records` is the number of admission
  /// WAL records this state already covers (the replay cursor);
  /// `driver_blob` is an opaque extension the driver gets back verbatim
  /// from `restore_state`.
  [[nodiscard]] std::vector<std::uint8_t> checkpoint(
      std::uint64_t wal_records = 0,
      std::span<const std::uint8_t> driver_blob = {}) const;

  /// Restores state from a `checkpoint` frame into this freshly
  /// constructed core (nothing ingested yet; same config as the saved
  /// core except the shard width, which results never depend on).
  /// After it returns, every future ingest/drain/finish produces
  /// results bit-identical to the saved core's continuation. Throws
  /// util::SnapshotError on corruption, schema/config mismatch, or
  /// structurally inconsistent state; std::logic_error when this core
  /// already served traffic.
  RestoreInfo restore_state(std::span<const std::uint8_t> frame);

  /// Graceful degradation for recovery under capacity pressure: flips a
  /// reject/defer admission core to the degrade path (never refuse
  /// service; late batches count as guarantee violations instead).
  /// No-op in observe or degrade mode.
  void degrade_admissions() noexcept;

  // --- End of run ---------------------------------------------------------

  /// Totals after `finish()` (throws std::logic_error before it).
  /// Moves the collected intervals/plans out of the core.
  [[nodiscard]] Snapshot take_snapshot();

 private:
  struct ObjectState;
  struct Impl;

  void validate() const;
  void build_objects(OnlinePolicy* policy);
  void collect_posted(unsigned shard);
  Ticket admit_slotted(Index object, double time);
  Ticket admit_policy(Index object, double time);
  void deliver_arrivals(ObjectState& state, const double* times,
                        std::size_t count);
  void process_object(ObjectState& state);
  void resolve_sessions(ObjectState& state);
  void repair_object_plan(ObjectState& state);
  void flush_object(Index object);
  void epilogue(std::span<const Index> objects);
  void dg_emit_through(ObjectState& state, Index slot);
  bool slot_stream_fits(double start, double duration);
  void start_slot_stream(ObjectState& state, Index slot, double start,
                         double duration, Index parent);

  ServerCoreConfig config_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace smerge::server

#endif  // SMERGE_SERVER_SERVER_CORE_H
