#include "server/channel_ledger.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/simd.h"
#include "util/snapshot.h"

namespace smerge::server {

namespace {

/// The canonical sweep order: time ascending, ends (-1) before starts
/// (+1) at equal times, retraction compensations before genuine starts,
/// object id as the final tie-break. For runs without retraction every
/// +1 is a stream start and every -1 is not, so the order degenerates
/// to the exact order the legacy k-way merge popped events in.
bool event_less(const LedgerEvent& a, const LedgerEvent& b) noexcept {
  if (a.time != b.time) return a.time < b.time;
  if (a.delta != b.delta) return a.delta < b.delta;
  if (a.stream_start != b.stream_start) return !a.stream_start;
  return a.object < b.object;
}

// Branch-free max of the scan loops, now shared with the vector kernels
// it is the oracle for.
using util::simd::bmax;

/// First index in a *sorted* bucket whose event time exceeds `t`.
std::size_t first_after(const std::vector<LedgerEvent>& events,
                        double t) noexcept {
  return static_cast<std::size_t>(
      std::upper_bound(events.begin(), events.end(), t,
                       [](double v, const LedgerEvent& e) {
                         return v < e.time;
                       }) -
      events.begin());
}

/// First index in a *sorted* bucket whose event time is at least `t`.
std::size_t first_at_or_after(const std::vector<LedgerEvent>& events,
                              double t) noexcept {
  return static_cast<std::size_t>(
      std::lower_bound(events.begin(), events.end(), t,
                       [](const LedgerEvent& e, double v) {
                         return e.time < v;
                       }) -
      events.begin());
}

}  // namespace

ChannelLedger::ChannelLedger(double span, double bucket_width) : width_(bucket_width) {
  if (!(span > 0.0)) {
    throw std::invalid_argument("ChannelLedger: span must be positive");
  }
  if (!(bucket_width > 0.0)) {
    throw std::invalid_argument("ChannelLedger: bucket width must be positive");
  }
  const double count = std::ceil(span / bucket_width) + 1.0;
  if (!(count < 1e8)) {
    throw std::invalid_argument("ChannelLedger: too many buckets");
  }
  buckets_.resize(static_cast<std::size_t>(count));
  leaves_ = 1;
  while (leaves_ < buckets_.size()) leaves_ *= 2;
  tree_net_.assign(2 * leaves_, 0);
  tree_maxp_.assign(2 * leaves_, 0);
}

std::size_t ChannelLedger::bucket_of(double t) const noexcept {
  if (!(t > 0.0)) return 0;
  const double b = std::floor(t / width_);
  const auto last = buckets_.size() - 1;
  return b >= static_cast<double>(last) ? last : static_cast<std::size_t>(b);
}

void ChannelLedger::tree_update(std::size_t b) noexcept {
  std::size_t pos = leaves_ + b;
  tree_net_[pos] = buckets_[b].net;
  tree_maxp_[pos] = buckets_[b].max_prefix;
  for (pos /= 2; pos >= 1; pos /= 2) {
    const std::size_t l = 2 * pos;
    const std::size_t r = 2 * pos + 1;
    tree_net_[pos] = tree_net_[l] + tree_net_[r];
    tree_maxp_[pos] = std::max(tree_maxp_[l], tree_net_[l] + tree_maxp_[r]);
    if (pos == 1) break;
  }
}

void ChannelLedger::push_event(const LedgerEvent& e) {
  const std::size_t b = bucket_of(e.time);
  Bucket& bucket = buckets_[b];
  const bool was_clean = bucket.sorted == bucket.events.size();
  const bool in_order =
      bucket.events.empty() || !event_less(e, bucket.events.back());
  bucket.events.push_back(e);
  bucket.deltas.push_back(e.delta);
  bucket.net += e.delta;
  if (was_clean && in_order) {
    // Common case (streams arrive roughly in time order): the bucket
    // stays sorted and its max-prefix extends in O(1).
    bucket.sorted = bucket.events.size();
    bucket.max_prefix = std::max(bucket.max_prefix, bucket.net);
  } else if (was_clean) {
    dirty_.push_back(static_cast<std::uint32_t>(b));
  }
  tree_update(b);
  ++events_;
}

void ChannelLedger::add_interval(double start, double end, Index object) {
  if (!(start >= 0.0) || !(end >= start)) {
    throw std::invalid_argument("ChannelLedger: bad interval");
  }
  push_event({start, object, +1, true});
  push_event({end, object, -1, false});
}

void ChannelLedger::apply_batch(std::span<const LedgerEvent> batch) {
  if (batch.empty()) return;
  touched_.clear();
  for (const LedgerEvent& e : batch) {
    // Byte-for-byte the push_event append: same bucket contents in the
    // same insertion order, same sorted cursor, same dirty-list order —
    // a checkpoint taken after apply_batch equals one taken after the
    // equivalent push_event sequence. Only the tree replay is deferred.
    const std::size_t b = bucket_of(e.time);
    Bucket& bucket = buckets_[b];
    const bool was_clean = bucket.sorted == bucket.events.size();
    const bool in_order =
        bucket.events.empty() || !event_less(e, bucket.events.back());
    bucket.events.push_back(e);
    bucket.deltas.push_back(e.delta);
    bucket.net += e.delta;
    if (was_clean && in_order) {
      bucket.sorted = bucket.events.size();
      bucket.max_prefix = bmax(bucket.max_prefix, bucket.net);
    } else if (was_clean) {
      dirty_.push_back(static_cast<std::uint32_t>(b));
    }
    if (touched_.empty() || touched_.back() != b) {
      touched_.push_back(static_cast<std::uint32_t>(b));
    }
  }
  events_ += static_cast<std::int64_t>(batch.size());
  // One tree path per touched bucket. Consecutive events usually share
  // a bucket (the batch is an object's time-ordered run), so touched_
  // is tiny and nearly sorted already.
  std::sort(touched_.begin(), touched_.end());
  touched_.erase(std::unique(touched_.begin(), touched_.end()),
                 touched_.end());
  for (const std::uint32_t b : touched_) tree_update(b);
}

void ChannelLedger::move_end(double old_end, double new_end, Index object) {
  if (!(old_end >= 0.0) || !(new_end >= 0.0)) {
    throw std::invalid_argument("ChannelLedger: bad end move");
  }
  if (old_end == new_end) return;
  // A difference pair cancelling [min, max) of the original interval
  // (retraction) or reserving the extra [old, new) (extension). Neither
  // +1 is a stream start.
  if (new_end < old_end) {
    push_event({new_end, object, -1, false});
    push_event({old_end, object, +1, false});
  } else {
    push_event({old_end, object, +1, false});
    push_event({new_end, object, -1, false});
  }
}

void ChannelLedger::ensure_sorted(std::size_t b) {
  Bucket& bucket = buckets_[b];
  if (bucket.sorted == bucket.events.size()) return;
  const auto mid = bucket.events.begin() + static_cast<std::ptrdiff_t>(bucket.sorted);
  std::sort(mid, bucket.events.end(), event_less);
  std::inplace_merge(bucket.events.begin(), mid, bucket.events.end(), event_less);
  bucket.sorted = bucket.events.size();
  for (std::size_t i = 0; i < bucket.events.size(); ++i) {
    bucket.deltas[i] = bucket.events[i].delta;
  }
  bucket.max_prefix =
      util::simd::prefix_scan(bucket.deltas.data(), bucket.deltas.size(),
                              /*running=*/0, /*best=*/0)
          .best;
  tree_update(b);
}

void ChannelLedger::flush() {
  for (const std::uint32_t b : dirty_) ensure_sorted(b);
  dirty_.clear();
}

std::pair<std::int64_t, std::int64_t> ChannelLedger::combine_range(
    std::size_t lo, std::size_t hi) const noexcept {
  // Left-to-right combine: maxp is relative to the range's start, with
  // the empty prefix (0) always a candidate — exact because occupancy
  // at a bucket boundary is itself a genuine sweep value.
  std::int64_t lnet = 0, lmax = 0, rnet = 0, rmax = 0;
  std::size_t l = leaves_ + lo;
  std::size_t r = leaves_ + hi;
  while (l < r) {
    if (l & 1) {
      lmax = std::max(lmax, lnet + tree_maxp_[l]);
      lnet += tree_net_[l];
      ++l;
    }
    if (r & 1) {
      --r;
      rmax = std::max(tree_maxp_[r], tree_net_[r] + rmax);
      rnet = tree_net_[r] + rnet;
    }
    l /= 2;
    r /= 2;
  }
  return {lnet + rnet, std::max(lmax, lnet + rmax)};
}

std::int64_t ChannelLedger::net_before(std::size_t b) const noexcept {
  return combine_range(0, b).first;
}

Index ChannelLedger::peak() {
  flush();
  return static_cast<Index>(tree_maxp_[1]);
}

Index ChannelLedger::occupancy_at(double t) {
  const std::size_t b = bucket_of(t);
  ensure_sorted(b);
  const Bucket& bucket = buckets_[b];
  // The bucket is sorted, so "everything at or before t" is a prefix:
  // locate it by time and let the vector kernel sum the deltas.
  const std::size_t k = first_after(bucket.events, t);
  const std::int64_t depth =
      net_before(b) + util::simd::sum(bucket.deltas.data(), k);
  return static_cast<Index>(depth);
}

Index ChannelLedger::max_over(double a, double b) {
  if (!(a <= b)) {
    throw std::invalid_argument("ChannelLedger::max_over: requires a <= b");
  }
  // The window may span dirty buckets whose tree summaries are stale —
  // bring every one current before combining.
  flush();
  const std::size_t ba = bucket_of(a);
  const std::size_t bb = bucket_of(b);
  std::int64_t depth = net_before(ba);
  std::int64_t best;
  {
    const Bucket& bucket = buckets_[ba];
    // Everything at or before `a` contributes to the occupancy at the
    // window's left edge — the first candidate. flush() left every
    // bucket sorted, so both boundaries are binary searches and the
    // scans between them run through the vector kernels.
    const std::size_t i = first_after(bucket.events, a);
    depth += util::simd::sum(bucket.deltas.data(), i);
    best = depth;
    const std::size_t stop = ba == bb ? first_at_or_after(bucket.events, b)
                                      : bucket.events.size();
    const auto scan = util::simd::prefix_scan(bucket.deltas.data() + i,
                                              stop - i, depth, best);
    depth = scan.running;
    best = scan.best;
  }
  if (bb > ba) {
    const auto [mid_net, mid_max] = combine_range(ba + 1, bb);
    best = std::max(best, depth + mid_max);
    depth += mid_net;
    const Bucket& last = buckets_[bb];
    const std::size_t k = first_at_or_after(last.events, b);
    best = util::simd::prefix_scan(last.deltas.data(), k, depth, best).best;
  }
  return static_cast<Index>(best);
}

void ChannelLedger::save(util::SnapshotWriter& writer) const {
  writer.f64(width_);
  writer.u64(buckets_.size());
  writer.i64(events_);
  for (const Bucket& bucket : buckets_) {
    writer.u64(bucket.events.size());
    for (const LedgerEvent& e : bucket.events) {
      writer.f64(e.time);
      writer.i64(e.object);
      writer.i64(e.delta);
      writer.boolean(e.stream_start);
    }
    writer.u64(bucket.sorted);
  }
  std::vector<std::int64_t> dirty(dirty_.begin(), dirty_.end());
  writer.i64_vec(dirty);
}

void ChannelLedger::restore(util::SnapshotReader& reader) {
  const double width = reader.f64();
  const std::uint64_t bucket_count = reader.u64();
  if (width != width_ || bucket_count != buckets_.size()) {
    throw util::SnapshotError(
        "ChannelLedger: restore geometry mismatch (span/bucket width differ "
        "from the constructed ledger)");
  }
  const std::int64_t events = reader.i64();
  std::vector<Bucket> buckets(buckets_.size());
  std::int64_t counted = 0;
  for (Bucket& bucket : buckets) {
    const std::uint64_t n = reader.u64();
    // time + object + delta + stream_start byte per event.
    if (n > reader.remaining() / 25) {
      throw util::SnapshotError(
          "ChannelLedger: event count exceeds remaining bytes");
    }
    bucket.events.resize(static_cast<std::size_t>(n));
    for (LedgerEvent& e : bucket.events) {
      e.time = reader.f64();
      e.object = reader.i64();
      const std::int64_t delta = reader.i64();
      if (delta != 1 && delta != -1) {
        throw util::SnapshotError("ChannelLedger: bad event delta");
      }
      e.delta = static_cast<std::int32_t>(delta);
      e.stream_start = reader.boolean();
      bucket.net += e.delta;
    }
    const std::uint64_t sorted = reader.u64();
    if (sorted > n) {
      throw util::SnapshotError("ChannelLedger: sorted prefix exceeds bucket");
    }
    bucket.sorted = static_cast<std::size_t>(sorted);
    bucket.deltas.resize(bucket.events.size());
    for (std::size_t i = 0; i < bucket.events.size(); ++i) {
      bucket.deltas[i] = bucket.events[i].delta;
    }
    // The stored max_prefix is not serialized: recompute it over the
    // *sorted prefix interleaved with the tail in insertion order*, the
    // same value push_event maintained. For a clean bucket that is just
    // the running max; a dirty bucket's summary is stale anyway (its
    // tree path replays on the next ensure_sorted), so the running max
    // over insertion order reproduces the saved ledger's answers.
    bucket.max_prefix = util::simd::prefix_scan(bucket.deltas.data(),
                                                bucket.sorted, /*running=*/0,
                                                /*best=*/0)
                            .best;
    counted += static_cast<std::int64_t>(n);
  }
  if (counted != events) {
    throw util::SnapshotError("ChannelLedger: event total disagrees");
  }
  const std::vector<std::int64_t> dirty = reader.i64_vec();
  std::vector<std::uint32_t> dirty32;
  dirty32.reserve(dirty.size());
  for (const std::int64_t b : dirty) {
    if (b < 0 || static_cast<std::uint64_t>(b) >= bucket_count) {
      throw util::SnapshotError("ChannelLedger: dirty list references a bad "
                                "bucket");
    }
    dirty32.push_back(static_cast<std::uint32_t>(b));
  }
  buckets_ = std::move(buckets);
  dirty_ = std::move(dirty32);
  events_ = events;
  for (std::size_t b = 0; b < buckets_.size(); ++b) tree_update(b);
}

Index ChannelLedger::capacity_violations(Index capacity) {
  if (capacity < 1) return 0;
  flush();
  std::int64_t depth = 0;
  Index violations = 0;
  for (const Bucket& bucket : buckets_) {
    for (const LedgerEvent& e : bucket.events) {
      depth += e.delta;
      if (e.stream_start && depth > capacity) ++violations;
    }
  }
  return violations;
}

}  // namespace smerge::server
