#include "server/wire.h"

#include "util/snapshot.h"

namespace smerge::server {

namespace {

void write_profile(util::SnapshotWriter& writer, const util::DelayProfile& p) {
  writer.f64(p.mean);
  writer.f64(p.p50);
  writer.f64(p.p95);
  writer.f64(p.p99);
  writer.f64(p.max);
}

util::DelayProfile read_profile(util::SnapshotReader& reader) {
  util::DelayProfile p;
  p.mean = reader.f64();
  p.p50 = reader.f64();
  p.p95 = reader.f64();
  p.p99 = reader.f64();
  p.max = reader.f64();
  return p;
}

}  // namespace

void write_ticket(util::SnapshotWriter& writer, const Ticket& ticket) {
  writer.boolean(ticket.admitted);
  writer.i64(ticket.object);
  writer.i64(ticket.slot);
  writer.f64(ticket.arrival);
  writer.f64(ticket.decision_time);
  writer.f64(ticket.playback_start);
  writer.f64(ticket.wait);
  writer.f64(ticket.guarantee_wait);
  writer.i64(ticket.deferred_slots);
  writer.boolean(ticket.degraded);
  writer.i64(ticket.program);
}

Ticket read_ticket(util::SnapshotReader& reader) {
  Ticket t;
  t.admitted = reader.boolean();
  t.object = reader.i64();
  t.slot = reader.i64();
  t.arrival = reader.f64();
  t.decision_time = reader.f64();
  t.playback_start = reader.f64();
  t.wait = reader.f64();
  t.guarantee_wait = reader.f64();
  t.deferred_slots = reader.i64();
  t.degraded = reader.boolean();
  t.program = reader.i64();
  return t;
}

void write_live_stats(util::SnapshotWriter& writer, const LiveStats& stats) {
  writer.i64(stats.arrivals);
  writer.i64(stats.admitted);
  writer.i64(stats.rejected);
  writer.i64(stats.deferrals);
  writer.i64(stats.degraded);
  writer.i64(stats.streams);
  writer.f64(stats.cost);
  writer.i64(stats.current_channels);
  writer.i64(stats.peak_channels);
  write_profile(writer, stats.wait);
  writer.i64(stats.live_sessions);
  writer.i64(stats.session_pauses);
  writer.i64(stats.session_seeks);
  writer.i64(stats.session_abandons);
}

LiveStats read_live_stats(util::SnapshotReader& reader) {
  LiveStats s;
  s.arrivals = reader.i64();
  s.admitted = reader.i64();
  s.rejected = reader.i64();
  s.deferrals = reader.i64();
  s.degraded = reader.i64();
  s.streams = reader.i64();
  s.cost = reader.f64();
  s.current_channels = reader.i64();
  s.peak_channels = reader.i64();
  s.wait = read_profile(reader);
  s.live_sessions = reader.i64();
  s.session_pauses = reader.i64();
  s.session_seeks = reader.i64();
  s.session_abandons = reader.i64();
  return s;
}

WireSummary summarize(const Snapshot& snapshot) {
  WireSummary s;
  s.ok = true;
  s.digest = snapshot_digest(snapshot);
  s.total_arrivals = snapshot.total_arrivals;
  s.total_streams = snapshot.total_streams;
  s.streams_served = snapshot.streams_served;
  s.peak_concurrency = snapshot.peak_concurrency;
  s.guarantee_violations = snapshot.guarantee_violations;
  s.rejected = snapshot.rejected;
  s.wait = snapshot.wait;
  return s;
}

void write_summary(util::SnapshotWriter& writer, const WireSummary& summary) {
  writer.boolean(summary.ok);
  writer.u64(summary.digest);
  writer.i64(summary.total_arrivals);
  writer.i64(summary.total_streams);
  writer.f64(summary.streams_served);
  writer.i64(summary.peak_concurrency);
  writer.i64(summary.guarantee_violations);
  writer.i64(summary.rejected);
  write_profile(writer, summary.wait);
}

WireSummary read_summary(util::SnapshotReader& reader) {
  WireSummary s;
  s.ok = reader.boolean();
  s.digest = reader.u64();
  s.total_arrivals = reader.i64();
  s.total_streams = reader.i64();
  s.streams_served = reader.f64();
  s.peak_concurrency = reader.i64();
  s.guarantee_violations = reader.i64();
  s.rejected = reader.i64();
  s.wait = read_profile(reader);
  return s;
}

std::uint64_t snapshot_digest(const Snapshot& snapshot) {
  util::SnapshotWriter w;
  w.i64(snapshot.total_arrivals);
  w.i64(snapshot.total_streams);
  w.f64(snapshot.streams_served);
  write_profile(w, snapshot.wait);
  w.i64(snapshot.peak_concurrency);
  w.i64(snapshot.guarantee_violations);
  w.i64(snapshot.capacity_violations);
  w.i64(snapshot.rejected);
  w.i64(snapshot.deferrals);
  w.i64(snapshot.degraded);
  w.i64(snapshot.total_sessions);
  w.i64(snapshot.session_pauses);
  w.i64(snapshot.session_seeks);
  w.i64(snapshot.session_abandons);
  w.i64(snapshot.plan_truncations);
  w.i64(snapshot.plan_reroots);
  w.f64(snapshot.retracted_cost);
  w.f64(snapshot.extended_cost);
  w.u64(snapshot.per_object.size());
  for (const ObjectOutcome& o : snapshot.per_object) {
    w.i64(o.arrivals);
    w.i64(o.streams);
    w.f64(o.cost);
    w.f64(o.max_wait);
    w.i64(o.peak_concurrency);
    w.i64(o.violations);
    w.i64(o.sessions);
    w.i64(o.session_pauses);
    w.i64(o.session_seeks);
    w.i64(o.session_abandons);
    w.i64(o.plan_truncations);
    w.i64(o.plan_reroots);
    w.f64(o.retracted_cost);
    w.f64(o.extended_cost);
  }
  return util::fnv1a64(w.payload());
}

}  // namespace smerge::server
