// The incremental server-wide channel ledger.
//
// The legacy engine learned its channel occupancy only at end-of-run: a
// k-way merge over every object's sorted +-1 event sequence. The ledger
// replaces that with bucketed difference counters maintained *while the
// run is in flight*, so "how many channels are busy right now", "what
// is the peak so far" and "would one more stream fit under the budget"
// are O(log B) queries at any time — the substrate for live stats and
// capacity-aware admission (src/server/server_core.h).
//
// Layout: the time axis is cut into fixed-width buckets (one slot wide
// by default). A stream [start, end) contributes a +1 event to the
// bucket of `start` and a -1 event to the bucket of `end`; each bucket
// keeps its events sorted in the canonical sweep order — (time, ends
// before starts, object id) — alongside two summaries: `net`, the sum
// of its deltas, and `max_prefix`, the maximum running sum over its
// prefixes (floored at the empty prefix, 0). A segment tree over the
// bucket summaries combines them left-to-right
// (net = l.net + r.net, max_prefix = max(l.max_prefix, l.net +
// r.max_prefix)), which makes global peak O(1) at the root and
// occupancy / windowed-maximum queries O(log B) plus two partial bucket
// scans. Appends are O(1) amortized: a bucket only re-sorts its
// unsorted tail (and replays its tree path) when a query actually
// needs it.
//
// Exactness: the canonical in-bucket order is the same order the
// legacy k-way merge popped events in, and equal-key events commute in
// any depth computation, so peak and capacity accounting are
// bit-identical to the end-of-run reduction they replace (asserted by
// tests/test_server_core.cpp against `peak_overlap`).
#ifndef SMERGE_SERVER_CHANNEL_LEDGER_H
#define SMERGE_SERVER_CHANNEL_LEDGER_H

#include <cstdint>
#include <span>
#include <vector>

#include "fib/fibonacci.h"

namespace smerge::util {
class SnapshotReader;
class SnapshotWriter;
}  // namespace smerge::util

namespace smerge::server {

/// One +-1 occupancy edge, tagged with the emitting object so ties
/// break deterministically in the canonical sweep order.
/// `stream_start` marks the +1 of a genuine stream admission; the
/// compensation events a retraction appends carry false, so capacity
/// accounting never mistakes "a retracted reservation ended here" for
/// "a new stream started here".
struct LedgerEvent {
  double time = 0.0;
  Index object = 0;
  std::int32_t delta = 0;
  bool stream_start = false;
};

/// Sorted, bucketed, incrementally queryable channel occupancy.
class ChannelLedger {
 public:
  /// Buckets cover [0, span) in `bucket_width` steps; events at or
  /// beyond the span clamp into the final bucket (order inside a
  /// bucket is still exact, so clamping never changes any result).
  /// Throws std::invalid_argument on a non-positive span or width.
  ChannelLedger(double span, double bucket_width);

  /// Records one transmission interval [start, end). O(1) amortized.
  void add_interval(double start, double end, Index object);

  /// Records a whole run of events in one step: every event is appended
  /// exactly as the per-event path would (same bucket contents, same
  /// insertion order, same dirty-list order — checkpoint bytes are
  /// unchanged), but the segment-tree path replays once per *touched
  /// bucket* instead of once per ±1 event. The batched admission drain
  /// hands an object's whole difference run here, turning
  /// O(events · log B) tree work into O(buckets_touched · log B).
  void apply_batch(std::span<const LedgerEvent> batch);

  /// Moves a previously recorded interval's end (plan repair): appends
  /// the compensating difference pair — {new_end, -1}, {old_end, +1}
  /// for a retraction, the mirror for an extension — instead of
  /// rewriting history, so the ledger stays append-only and O(1)
  /// amortized. The +1 of a retraction pair is *not* a stream start
  /// (`stream_start` false) and never counts as a capacity violation.
  void move_end(double old_end, double new_end, Index object);

  /// Number of recorded events (two per interval).
  [[nodiscard]] std::int64_t events() const noexcept { return events_; }

  /// Peak simultaneous occupancy over everything recorded so far.
  [[nodiscard]] Index peak();

  /// Channels busy at time `t`: streams with start <= t and end > t.
  [[nodiscard]] Index occupancy_at(double t);

  /// Maximum occupancy over the window [a, b) — the admission-time
  /// "would a stream spanning this window fit" primitive. Requires
  /// a <= b.
  [[nodiscard]] Index max_over(double a, double b);

  /// Stream starts that found more than `capacity` channels busy after
  /// starting — the legacy engine's end-of-run accounting, now one
  /// O(events) sweep over the sorted buckets. Requires capacity >= 1.
  [[nodiscard]] Index capacity_violations(Index capacity);

  /// Appends the ledger's full state — every event in insertion order
  /// per bucket, each bucket's sorted-prefix cursor, and the dirty list
  /// — to a checkpoint payload. The insertion-order arrays are what
  /// make the restore exact: the staged sort (sorted tail + stable
  /// merge) is a deterministic function of (array, prefix), so a
  /// restored ledger answers every future query bit-identically.
  void save(util::SnapshotWriter& writer) const;

  /// Restores state written by `save` into this ledger, which must have
  /// been constructed with the same span/bucket width (the bucket count
  /// and width are validated). Segment-tree summaries are rebuilt from
  /// the restored buckets. Throws util::SnapshotError on mismatch or
  /// malformed bytes.
  void restore(util::SnapshotReader& reader);

 private:
  struct Bucket {
    std::vector<LedgerEvent> events;
    /// Derived shadow of `events[i].delta` in the same order, kept
    /// contiguous so the summary recompute and the windowed-max scans
    /// run through the SIMD kernels (util/simd.h) without a gather.
    /// Never serialized: rebuilt on restore and on every re-sort.
    std::vector<std::int32_t> deltas;
    std::size_t sorted = 0;        ///< prefix of `events` already in order
    std::int64_t net = 0;          ///< sum of deltas (always current)
    std::int64_t max_prefix = 0;   ///< max running sum over prefixes (>= 0)
  };

  [[nodiscard]] std::size_t bucket_of(double t) const noexcept;
  void push_event(const LedgerEvent& e);
  void ensure_sorted(std::size_t b);
  void flush();
  /// Sum of bucket nets over [0, b) — occupancy at bucket b's start.
  [[nodiscard]] std::int64_t net_before(std::size_t b) const noexcept;
  /// Combined (net, max_prefix) over buckets [lo, hi).
  [[nodiscard]] std::pair<std::int64_t, std::int64_t> combine_range(
      std::size_t lo, std::size_t hi) const noexcept;
  void tree_update(std::size_t b) noexcept;

  double width_;
  std::vector<Bucket> buckets_;
  std::vector<std::uint32_t> dirty_;  ///< bucket ids with unsorted tails
  std::vector<std::uint32_t> touched_;  ///< apply_batch scratch
  std::int64_t events_ = 0;

  // Flat segment tree over bucket summaries: leaves_ buckets rounded up
  // to a power of two, nodes 1-based (node 1 = root).
  std::size_t leaves_ = 1;
  std::vector<std::int64_t> tree_net_;
  std::vector<std::int64_t> tree_maxp_;
};

}  // namespace smerge::server

#endif  // SMERGE_SERVER_CHANNEL_LEDGER_H
