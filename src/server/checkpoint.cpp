#include "server/checkpoint.h"

#include <utility>

#include "core/plan_io.h"
#include "util/snapshot.h"

namespace smerge::server {

namespace {

// "SMWL" little-endian — WAL header magic.
constexpr std::uint32_t kWalMagic = 0x4c574d53u;
constexpr std::uint32_t kWalVersion = 1;
constexpr std::size_t kWalHeaderBytes = 16;  // magic + version + checksum
constexpr std::size_t kRecordHeaderBytes = 12;  // u32 length + u64 checksum

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void append_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

[[nodiscard]] WalRecord parse_record(std::span<const std::uint8_t> payload) {
  util::SnapshotReader r(payload);
  WalRecord record;
  const std::uint8_t tag = r.u8();
  switch (tag) {
    case 1:
      record.type = WalRecordType::kIngest;
      record.object = r.i64();
      record.times.push_back(r.f64());
      break;
    case 2:
      record.type = WalRecordType::kIngestTrace;
      record.object = r.i64();
      record.times = r.f64_vec();
      break;
    case 3:
      record.type = WalRecordType::kIngestSessions;
      record.object = r.i64();
      record.sessions = plan::load_session_traces(r);
      break;
    case 4:
      record.type = WalRecordType::kAdmit;
      record.object = r.i64();
      record.times.push_back(r.f64());
      break;
    case 5:
      record.type = WalRecordType::kDrain;
      break;
    default:
      throw util::SnapshotError("wal: bad record type " + std::to_string(tag));
  }
  r.expect_end();
  return record;
}

}  // namespace

AdmissionWal::AdmissionWal() {
  append_u32(bytes_, kWalMagic);
  append_u32(bytes_, kWalVersion);
  append_u64(bytes_, util::fnv1a64({bytes_.data(), 8}));
}

void AdmissionWal::append_record(std::span<const std::uint8_t> payload) {
  append_u32(bytes_, static_cast<std::uint32_t>(payload.size()));
  append_u64(bytes_, util::fnv1a64(payload));
  bytes_.insert(bytes_.end(), payload.begin(), payload.end());
  ++records_;
}

void AdmissionWal::log_ingest(Index object, double time) {
  util::SnapshotWriter w;
  w.u8(1);
  w.i64(object);
  w.f64(time);
  append_record(w.payload());
}

void AdmissionWal::log_ingest_trace(Index object,
                                    std::span<const double> times) {
  util::SnapshotWriter w;
  w.u8(2);
  w.i64(object);
  w.f64_vec(times);
  append_record(w.payload());
}

void AdmissionWal::log_ingest_sessions(Index object,
                                       std::span<const SessionTrace> sessions) {
  util::SnapshotWriter w;
  w.u8(3);
  w.i64(object);
  plan::save_session_traces(w, sessions);
  append_record(w.payload());
}

void AdmissionWal::log_admit(Index object, double time) {
  util::SnapshotWriter w;
  w.u8(4);
  w.i64(object);
  w.f64(time);
  append_record(w.payload());
}

void AdmissionWal::log_drain() {
  util::SnapshotWriter w;
  w.u8(5);
  append_record(w.payload());
}

void AdmissionWal::commit_to_file(const std::string& path, bool fsync) const {
  util::write_bytes_file(path, {bytes_.data(), bytes_.size()}, fsync);
}

WalReadResult read_wal(std::span<const std::uint8_t> bytes) {
  WalReadResult result;
  if (bytes.empty()) return result;
  if (bytes.size() < kWalHeaderBytes) {
    throw util::SnapshotError("wal: header truncated");
  }
  util::SnapshotReader header(bytes.first(kWalHeaderBytes));
  if (header.u32() != kWalMagic) {
    throw util::SnapshotError("wal: bad magic");
  }
  if (const std::uint32_t version = header.u32(); version != kWalVersion) {
    throw util::SnapshotError("wal: unsupported version " +
                              std::to_string(version));
  }
  if (header.u64() != util::fnv1a64(bytes.first(8))) {
    throw util::SnapshotError("wal: header checksum mismatch");
  }

  std::size_t pos = kWalHeaderBytes;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < kRecordHeaderBytes) break;  // torn mid-header
    util::SnapshotReader frame(bytes.subspan(pos, kRecordHeaderBytes));
    const std::uint32_t length = frame.u32();
    const std::uint64_t checksum = frame.u64();
    if (length > bytes.size() - pos - kRecordHeaderBytes) break;  // torn body
    const auto payload = bytes.subspan(pos + kRecordHeaderBytes, length);
    if (util::fnv1a64(payload) != checksum) break;  // corrupt record
    WalRecord record;
    try {
      record = parse_record(payload);
    } catch (const util::SnapshotError&) {
      break;  // checksummed but malformed — treat as damage, drop the tail
    }
    result.records.push_back(std::move(record));
    pos += kRecordHeaderBytes + length;
  }
  result.dropped_bytes = bytes.size() - pos;
  result.torn = result.dropped_bytes > 0;
  return result;
}

RecoveredCore recover(
    const ServerCoreConfig& config, OnlinePolicy* policy,
    std::span<const std::vector<std::uint8_t>> checkpoints_newest_first,
    std::span<const std::uint8_t> wal, const RecoveryOptions& options) {
  RecoveredCore out;
  const auto make_core = [&] {
    return config.serve == ServeMode::kPolicy
               ? std::make_unique<ServerCore>(config, *policy)
               : std::make_unique<ServerCore>(config);
  };
  if (config.serve == ServeMode::kPolicy && policy == nullptr) {
    throw std::invalid_argument("recover: ServeMode::kPolicy needs a policy");
  }

  std::uint64_t covered = 0;
  for (std::size_t i = 0; i < checkpoints_newest_first.size(); ++i) {
    auto core = make_core();
    try {
      RestoreInfo info = core->restore_state(
          {checkpoints_newest_first[i].data(), checkpoints_newest_first[i].size()});
      out.core = std::move(core);
      out.report.used_checkpoint = true;
      out.report.checkpoint_index = i;
      out.driver_blob = std::move(info.driver_blob);
      covered = info.wal_records;
      break;
    } catch (const util::SnapshotError& e) {
      out.report.rejected_checkpoints.emplace_back(e.what());
    }
  }
  if (out.core == nullptr) out.core = make_core();  // cold start

  WalReadResult parsed = read_wal(wal);
  out.report.wal_records_total = parsed.records.size();
  out.report.wal_dropped_bytes = parsed.dropped_bytes;
  out.report.wal_torn = parsed.torn;
  for (std::size_t i = static_cast<std::size_t>(
           covered < parsed.records.size() ? covered : parsed.records.size());
       i < parsed.records.size(); ++i) {
    WalRecord& record = parsed.records[i];
    switch (record.type) {
      case WalRecordType::kIngest:
        out.core->ingest(record.object, record.times.front());
        break;
      case WalRecordType::kIngestTrace:
        out.core->ingest_trace(record.object, record.times);
        break;
      case WalRecordType::kIngestSessions:
        // Copied, not moved: the replayed record keeps its sessions so
        // the driver can derive per-object resume cursors from it.
        out.core->ingest_session_trace(record.object, record.sessions);
        break;
      case WalRecordType::kAdmit:
        (void)out.core->admit(record.object, record.times.front());
        break;
      case WalRecordType::kDrain:
        out.core->drain();
        break;
    }
    ++out.report.wal_records_replayed;
    out.replayed.push_back(std::move(record));
  }

  if (options.degrade_under_pressure && config.channel_capacity > 0 &&
      (config.admission == AdmissionMode::kReject ||
       config.admission == AdmissionMode::kDefer)) {
    const LiveStats live = out.core->live_stats();
    if (live.current_channels >= config.channel_capacity) {
      out.core->degrade_admissions();
      out.report.degraded_admissions = true;
    }
  }
  return out;
}

}  // namespace smerge::server
