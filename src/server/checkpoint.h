// The admission write-ahead log and the crash-recovery entry point.
//
// Crash consistency is a pair of artifacts: a `ServerCore::checkpoint`
// frame (the core's full state at some quiescent point) and an
// `AdmissionWal` — an append-only log with one checksummed record per
// ingest/admit batch and a marker per drain, group-committed at drain
// boundaries. `recover` puts them back together: it restores the
// newest checkpoint that validates (falling back candidate by
// candidate, then to a cold start), parses the WAL tolerating a torn
// tail (a half-written record and everything after it is dropped, never
// misread), skips the records the checkpoint already covers, and
// replays the rest through the ordinary ingest/drain path. Replay is
// deterministic — records carry the exact arguments the driver passed —
// so the recovered core's continuation is bit-identical to the
// uninterrupted run's (the kill-point oracle of tests/test_recovery.cpp).
//
// Graceful degradation: when recovery lands under capacity pressure (a
// reject/defer core whose channels are saturated at the recovered
// clock), `RecoveryOptions::degrade_under_pressure` flips admissions to
// the degrade path — clients get late batches and counted guarantee
// violations instead of refusals while the backlog clears.
#ifndef SMERGE_SERVER_CHECKPOINT_H
#define SMERGE_SERVER_CHECKPOINT_H

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/session.h"
#include "server/server_core.h"

namespace smerge::server {

/// What one WAL record describes.
enum class WalRecordType : std::uint8_t {
  kIngest = 1,          ///< one arrival: ingest(object, time)
  kIngestTrace = 2,     ///< a trace batch: ingest_trace(object, times)
  kIngestSessions = 3,  ///< a session batch: ingest_session_trace(...)
  kAdmit = 4,           ///< serial live path: admit(object, time)
  kDrain = 5,           ///< a drain boundary (the group-commit marker)
};

/// One parsed WAL record — the exact arguments to replay.
struct WalRecord {
  WalRecordType type = WalRecordType::kDrain;
  Index object = -1;
  std::vector<double> times;            ///< kIngest/kAdmit: one; kIngestTrace: all
  std::vector<SessionTrace> sessions;   ///< kIngestSessions only
};

/// Append-only admission log (`smerge-wal-v1`). Records accumulate in
/// memory; `commit_to_file` is the fsync-optional group commit the
/// driver calls at drain boundaries. Every record is individually
/// length-prefixed and checksummed, so a torn tail is detected record
/// by record, never misread.
class AdmissionWal {
 public:
  AdmissionWal();

  void log_ingest(Index object, double time);
  void log_ingest_trace(Index object, std::span<const double> times);
  void log_ingest_sessions(Index object,
                           std::span<const SessionTrace> sessions);
  void log_admit(Index object, double time);
  void log_drain();

  /// Records appended so far — the cursor `ServerCore::checkpoint`
  /// stores so recovery knows where replay starts.
  [[nodiscard]] std::uint64_t records() const noexcept { return records_; }
  /// The serialized log (header + records).
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept {
    return bytes_;
  }

  /// Group commit: writes the whole log to `path` (optionally fsynced).
  void commit_to_file(const std::string& path, bool fsync) const;

 private:
  void append_record(std::span<const std::uint8_t> payload);

  std::vector<std::uint8_t> bytes_;
  std::uint64_t records_ = 0;
};

/// Outcome of parsing a WAL byte stream.
struct WalReadResult {
  std::vector<WalRecord> records;  ///< every record before the first damage
  std::size_t dropped_bytes = 0;   ///< torn/corrupt suffix length
  bool torn = false;               ///< true when a suffix was dropped
};

/// Parses WAL bytes written by AdmissionWal. A damaged record (bad
/// checksum, truncated frame, malformed payload) ends the parse: it and
/// everything after it are reported as the dropped torn tail. An
/// invalid *header* (wrong magic/version — not a crash artifact but a
/// wrong file) throws util::SnapshotError. An empty span is a valid
/// empty log.
[[nodiscard]] WalReadResult read_wal(std::span<const std::uint8_t> bytes);

/// Recovery knobs.
struct RecoveryOptions {
  /// Flip a reject/defer core to degrade when the recovered clock finds
  /// the channels saturated (serve everyone late rather than refuse).
  bool degrade_under_pressure = true;
};

/// What recovery did — which artifacts were usable and how.
struct RecoveryReport {
  bool used_checkpoint = false;
  std::size_t checkpoint_index = 0;  ///< candidate restored (newest-first)
  std::vector<std::string> rejected_checkpoints;  ///< error per bad candidate
  std::uint64_t wal_records_total = 0;
  std::uint64_t wal_records_replayed = 0;
  std::size_t wal_dropped_bytes = 0;
  bool wal_torn = false;
  bool degraded_admissions = false;
};

/// A recovered core plus everything the driver needs to resume: the
/// recovery report, its own checkpoint-time extension blob, and the
/// replayed tail records (from which per-object resume cursors follow).
struct RecoveredCore {
  std::unique_ptr<ServerCore> core;
  RecoveryReport report;
  std::vector<std::uint8_t> driver_blob;
  std::vector<WalRecord> replayed;
};

/// Recovers a core from checkpoint candidates (newest first) and a WAL.
/// Tries each candidate in order — construct a fresh core from
/// `config` (+ `policy` for ServeMode::kPolicy; must outlive the core),
/// restore, and on a structured validation failure fall back to the
/// next — then replays the WAL tail past the restored cursor. With no
/// valid candidate the whole WAL replays against a cold core. Throws
/// util::SnapshotError only for a WAL that is not a WAL at all (bad
/// file header); damaged checkpoints and torn tails are handled and
/// reported, never fatal.
[[nodiscard]] RecoveredCore recover(
    const ServerCoreConfig& config, OnlinePolicy* policy,
    std::span<const std::vector<std::uint8_t>> checkpoints_newest_first,
    std::span<const std::uint8_t> wal, const RecoveryOptions& options = {});

}  // namespace smerge::server

#endif  // SMERGE_SERVER_CHECKPOINT_H
