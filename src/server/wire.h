// Wire-facing serialization for the serving runtime: tickets, live
// stats and end-of-run summaries encoded through the same typed
// little-endian substrate as the crash-consistency codec
// (util/snapshot.h), plus the canonical snapshot digest the network
// soak and the loopback bench assert identity on.
//
// Why a digest over `Snapshot` and not over `checkpoint()` bytes: the
// running P² percentile markers fold waits in drain order, so
// checkpoint *bytes* depend on the drain cadence even though every
// *result* does not. `Snapshot` is the cadence-invariant surface —
// exact sorted percentiles, per-object outcomes in object-id order —
// so two runs of the same workload hash equal regardless of shard
// width, producer count or drain timing. That is exactly the identity
// the wire path must preserve against `ingest_trace`.
#ifndef SMERGE_SERVER_WIRE_H
#define SMERGE_SERVER_WIRE_H

#include <cstdint>

#include "server/server_core.h"

namespace smerge::util {
class SnapshotReader;
class SnapshotWriter;
}  // namespace smerge::util

namespace smerge::server {

/// Appends every Ticket field to `writer` (bit-exact doubles). The wire
/// TICKET record is `u64 request_id` followed by these bytes.
void write_ticket(util::SnapshotWriter& writer, const Ticket& ticket);

/// Mirror of `write_ticket`. Throws util::SnapshotError on truncation.
[[nodiscard]] Ticket read_ticket(util::SnapshotReader& reader);

/// Appends every LiveStats field to `writer`.
void write_live_stats(util::SnapshotWriter& writer, const LiveStats& stats);

/// Mirror of `write_live_stats`.
[[nodiscard]] LiveStats read_live_stats(util::SnapshotReader& reader);

/// End-of-run totals carried by the FINISHED record: the snapshot
/// digest plus the headline scalars a client needs to certify a run
/// without pulling the whole per-object table over the wire.
struct WireSummary {
  bool ok = false;               ///< false: finish failed server-side
  std::uint64_t digest = 0;      ///< snapshot_digest() of the final state
  Index total_arrivals = 0;
  Index total_streams = 0;
  double streams_served = 0.0;
  Index peak_concurrency = 0;
  Index guarantee_violations = 0;
  Index rejected = 0;
  util::DelayProfile wait;       ///< exact end-of-run percentiles
};

/// Builds the summary (with `ok = true`) from a finished snapshot.
[[nodiscard]] WireSummary summarize(const Snapshot& snapshot);

void write_summary(util::SnapshotWriter& writer, const WireSummary& summary);
[[nodiscard]] WireSummary read_summary(util::SnapshotReader& reader);

/// FNV-1a 64 over the canonical serialization of a snapshot's totals,
/// exact wait percentiles and every per-object outcome (collected
/// intervals/plans excluded — the wire path never records them). Equal
/// digests certify equal results: the serialization is bit-exact and
/// covers every field the engine reduction reports.
[[nodiscard]] std::uint64_t snapshot_digest(const Snapshot& snapshot);

}  // namespace smerge::server

#endif  // SMERGE_SERVER_WIRE_H
