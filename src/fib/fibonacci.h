// Fibonacci-number utilities.
//
// The optimal merge cost of the paper is governed by Fibonacci numbers
// (Eq. 6, Theorem 3): M(n) = (k-1)n - F_{k+2} + 2 for F_k <= n <= F_{k+1}.
// Every core algorithm needs fast, overflow-checked access to F_k and to
// the bracketing index k for a given n. All values are exact 64-bit
// integers; F_92 = 7540113804746346429 is the largest representable term.
#ifndef SMERGE_FIB_FIBONACCI_H
#define SMERGE_FIB_FIBONACCI_H

#include <cstdint>

namespace smerge {

/// Signed 64-bit integer type used for arrival counts, slot indices and
/// costs throughout the library. Costs are O(n log n) so 64 bits suffice
/// for any in-memory instance.
using Index = std::int64_t;
/// Bandwidth cost in slot units (one unit = one slot of one channel).
using Cost = std::int64_t;

namespace fib {

/// Largest k for which F_k fits in a signed 64-bit integer.
inline constexpr int kMaxIndex = 92;

/// The golden ratio phi = (1+sqrt(5))/2, the base of the paper's logs.
inline constexpr double kGoldenRatio = 1.6180339887498948482;

/// Returns the k-th Fibonacci number with F_0 = 0, F_1 = F_2 = 1.
/// Throws std::out_of_range unless 0 <= k <= kMaxIndex.
[[nodiscard]] std::int64_t fibonacci(int k);

/// Returns the largest index k such that F_k <= n (using the convention
/// above; for ambiguous n = 1 this returns k = 2). Requires n >= 1,
/// otherwise throws std::invalid_argument. This is the canonical bracket
/// "F_k <= n <= F_{k+1}" used by Eq. (6): the result always satisfies
/// k >= 2 and fibonacci(k) <= n < fibonacci(k+1) + (n == F_{k+1} ? 1 : 0).
[[nodiscard]] int bracket_index(std::int64_t n);

/// True iff n is a Fibonacci number (n >= 0).
[[nodiscard]] bool is_fibonacci(std::int64_t n);

/// log base phi. Requires x > 0.
[[nodiscard]] double log_phi(double x);

/// The decomposition n = F_k + m of Theorem 3, with k = bracket_index(n)
/// and m = n - F_k in [0, F_{k-1}).
struct Bracket {
  int k;              ///< index with F_k <= n < F_{k+1} (k = 2 for n = 1)
  std::int64_t fk;    ///< F_k
  std::int64_t m;     ///< n - F_k
};

/// Computes the Theorem-3 decomposition of n >= 1.
[[nodiscard]] Bracket decompose(std::int64_t n);

}  // namespace fib
}  // namespace smerge

#endif  // SMERGE_FIB_FIBONACCI_H
