#include "fib/fibonacci.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

namespace smerge::fib {

namespace {

// Precomputed table F_0..F_92; the recurrence at namespace scope keeps
// every call O(1) and trivially overflow-safe.
constexpr std::array<std::int64_t, kMaxIndex + 1> kTable = [] {
  std::array<std::int64_t, kMaxIndex + 1> t{};
  t[0] = 0;
  t[1] = 1;
  for (int i = 2; i <= kMaxIndex; ++i) t[static_cast<std::size_t>(i)] =
      t[static_cast<std::size_t>(i - 1)] + t[static_cast<std::size_t>(i - 2)];
  return t;
}();

}  // namespace

std::int64_t fibonacci(int k) {
  if (k < 0 || k > kMaxIndex) {
    throw std::out_of_range("fibonacci: index outside [0, 92]");
  }
  return kTable[static_cast<std::size_t>(k)];
}

int bracket_index(std::int64_t n) {
  if (n < 1) {
    throw std::invalid_argument("bracket_index: n must be >= 1");
  }
  // Upper-bound binary search over the strictly increasing tail F_2..F_92
  // (F_1 = F_2 = 1 makes the full table non-strict; starting at index 2
  // guarantees the "largest k" convention picks k = 2 for n = 1).
  const auto first = kTable.begin() + 2;
  auto it = std::upper_bound(first, kTable.end(), n);
  return static_cast<int>((it - kTable.begin()) - 1);
}

bool is_fibonacci(std::int64_t n) {
  if (n < 0) return false;
  if (n == 0 || n == 1) return true;
  const int k = bracket_index(n);
  return kTable[static_cast<std::size_t>(k)] == n;
}

double log_phi(double x) {
  if (!(x > 0.0)) {
    throw std::invalid_argument("log_phi: x must be positive");
  }
  return std::log(x) / std::log(kGoldenRatio);
}

Bracket decompose(std::int64_t n) {
  const int k = bracket_index(n);
  const std::int64_t fk = fibonacci(k);
  return Bracket{k, fk, n - fk};
}

}  // namespace smerge::fib
