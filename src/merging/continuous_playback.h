// Continuous-time playback verification for general merge forests.
//
// The slotted verifier (src/schedule/playback.h) covers the
// delay-guaranteed model; this is its continuous analogue for the
// general-arrivals substrate (dyadic forests, batched starts, the [6]
// optimum). A client arriving at time `a` with root path
// x_0 < x_1 < ... < x_k = a receives media *positions* (real numbers in
// [0, L]) instead of integer segments:
//
//   from x_k = a:        positions (0,                      a - x_{k-1}]
//   from x_m (0<m<k):    positions (2a - x_{m+1} - x_m,     2a - x_m - x_{m-1}]
//   from the root x_0:   positions (2a - x_1 - x_0,         L]   (capped)
//
// Position p of stream x is on the air at time x + p, the client plays it
// at a + p, and the checks mirror the slotted invariants: the pieces
// partition (0, L], every piece lies within its stream's transmitted
// duration (Lemma-1 truncation suffices), reception never trails
// playback, and at most two streams are read concurrently.
#ifndef SMERGE_MERGING_CONTINUOUS_PLAYBACK_H
#define SMERGE_MERGING_CONTINUOUS_PLAYBACK_H

#include <string>
#include <vector>

#include "merging/general_forest.h"

namespace smerge::merging {

/// One contiguous media piece received from one stream.
struct ContinuousReception {
  Index stream = -1;   ///< source stream index in the forest
  double from = 0.0;   ///< media position range (from, to]
  double to = 0.0;

  /// Time window during which the piece is received: [x+from, x+to].
  [[nodiscard]] double start_time(double stream_start) const noexcept {
    return stream_start + from;
  }
};

/// Verification outcome for one client.
struct ContinuousClientReport {
  Index client = -1;        ///< stream index whose start is the arrival
  bool ok = true;
  std::string error;
  Index max_concurrent = 0; ///< peak simultaneous stream reads
  double peak_buffer = 0.0; ///< peak buffered media (time units)
};

/// Aggregate outcome over all clients of the forest.
struct ContinuousForestReport {
  bool ok = true;
  std::string first_error;
  Index clients = 0;
  Index max_concurrent = 0;
  double peak_buffer = 0.0;
};

/// Builds the receiving pieces of the client served by stream `client`
/// (the client arriving exactly at that stream's start).
///
/// NOTE: the per-client entry points below convert the whole forest to
/// its canonical `plan::MergePlan` on every call (O(n) + two arena
/// allocations). For one-shot queries that is fine; a loop over many
/// clients should call `forest.to_plan()` once and use
/// `plan::client_program` / `plan::verify_client` directly.
[[nodiscard]] std::vector<ContinuousReception> continuous_program(
    const GeneralMergeForest& forest, Index client);

/// Verifies one client against the forest's Lemma-1 stream durations.
/// (Same per-call conversion cost as `continuous_program`; see above.)
[[nodiscard]] ContinuousClientReport verify_continuous_client(
    const GeneralMergeForest& forest, Index client);

/// Verifies every client of the forest.
[[nodiscard]] ContinuousForestReport verify_continuous_forest(
    const GeneralMergeForest& forest);

}  // namespace smerge::merging

#endif  // SMERGE_MERGING_CONTINUOUS_PLAYBACK_H
