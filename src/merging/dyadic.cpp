#include "merging/dyadic.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/snapshot.h"

namespace smerge::merging {

namespace {

void check_params(double media_length, const DyadicParams& params) {
  if (!(media_length > 0.0)) {
    throw std::invalid_argument("dyadic: media length must be positive");
  }
  if (!(params.alpha > 1.0)) {
    throw std::invalid_argument("dyadic: alpha must exceed 1");
  }
  if (!(params.beta > 0.0) || params.beta > 0.5) {
    throw std::invalid_argument("dyadic: beta must lie in (0, 1/2]");
  }
}

// The dyadic subinterval (lo, hi] of window (x, y] containing t: with
// w = y - x and d = t - x, subinterval i satisfies w/alpha^i < d <=
// w/alpha^{i-1}, i.e. i = floor(log_alpha(w/d)) + 1, spanning
// (x + w/alpha^i, x + w/alpha^{i-1}].
struct SubInterval {
  double lo;
  double hi;
};

SubInterval subinterval_of(double x, double y, double t, double alpha) {
  const double w = y - x;
  const double d = t - x;
  double i = std::max(1.0, std::floor(std::log(w / d) / std::log(alpha)) + 1.0);
  double hi = x + w / std::pow(alpha, i - 1.0);
  double lo = x + w / std::pow(alpha, i);
  // Nudge across floating-point boundary cases (t exactly on a boundary).
  while (hi < t) {
    i -= 1.0;
    hi = x + w / std::pow(alpha, i - 1.0);
    lo = x + w / std::pow(alpha, i);
  }
  while (lo >= t) {  // requires t > x, which callers guarantee
    i += 1.0;
    hi = x + w / std::pow(alpha, i - 1.0);
    lo = x + w / std::pow(alpha, i);
  }
  return SubInterval{lo, std::min(hi, y)};
}

}  // namespace

DyadicMerger::DyadicMerger(double media_length, DyadicParams params)
    : media_length_(media_length), params_(params), forest_(media_length) {
  check_params(media_length, params);
}

Index DyadicMerger::arrive(double time) {
  // Drop finished windows from the rightmost path.
  while (!stack_.empty() && time > stack_.back().window_end) stack_.pop_back();

  if (stack_.empty()) {
    const Index id = forest_.add_stream(time, -1);
    stack_.push_back(Frame{id, time + params_.beta * media_length_});
    return id;
  }

  // Arrivals coinciding with an in-flight stream simply join it.
  if (forest_.stream(stack_.back().stream).time == time) {
    return stack_.back().stream;
  }

  const Frame& top = stack_.back();
  const double x = forest_.stream(top.stream).time;
  const SubInterval sub = subinterval_of(x, top.window_end, time, params_.alpha);
  const Index id = forest_.add_stream(time, top.stream);
  stack_.push_back(Frame{id, sub.hi});
  return id;
}

void DyadicMerger::save(util::SnapshotWriter& writer) const {
  writer.f64(media_length_);
  writer.u64(static_cast<std::uint64_t>(forest_.size()));
  for (Index i = 0; i < forest_.size(); ++i) {
    const GeneralStream& s = forest_.stream(i);
    writer.f64(s.time);
    writer.i64(s.parent);
  }
  writer.u64(stack_.size());
  for (const Frame& f : stack_) {
    writer.i64(f.stream);
    writer.f64(f.window_end);
  }
}

void DyadicMerger::restore(util::SnapshotReader& reader) {
  const double media_length = reader.f64();
  if (media_length != media_length_) {
    throw util::SnapshotError("dyadic: media length mismatch on restore");
  }
  const std::uint64_t n = reader.u64();
  if (n > reader.remaining() / 16) {
    throw util::SnapshotError("dyadic: stream count exceeds remaining bytes");
  }
  GeneralMergeForest forest(media_length_);
  for (std::uint64_t i = 0; i < n; ++i) {
    const double time = reader.f64();
    const Index parent = reader.i64();
    (void)forest.add_stream(time, parent);
  }
  const std::uint64_t depth = reader.u64();
  if (depth > reader.remaining() / 16) {
    throw util::SnapshotError("dyadic: stack depth exceeds remaining bytes");
  }
  std::vector<Frame> stack;
  stack.reserve(static_cast<std::size_t>(depth));
  for (std::uint64_t i = 0; i < depth; ++i) {
    Frame f{};
    f.stream = reader.i64();
    f.window_end = reader.f64();
    if (f.stream < 0 || f.stream >= forest.size()) {
      throw util::SnapshotError("dyadic: stack frame references a bad stream");
    }
    stack.push_back(f);
  }
  forest_ = std::move(forest);
  stack_ = std::move(stack);
}

GeneralMergeForest dyadic_forest_recursive(double media_length,
                                           const std::vector<double>& arrivals,
                                           DyadicParams params) {
  check_params(media_length, params);
  std::vector<double> sorted = arrivals;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

  // Roots by greedy window covering.
  std::vector<double> roots;
  for (const double t : sorted) {
    if (roots.empty() || t > roots.back() + params.beta * media_length) {
      roots.push_back(t);
    }
  }

  // Earliest arrival strictly inside (lo, hi].
  const auto earliest_in = [&sorted](double lo, double hi) {
    const auto it = std::upper_bound(sorted.begin(), sorted.end(), lo);
    return (it != sorted.end() && *it <= hi) ? *it : std::nan("");
  };

  GeneralMergeForest forest(media_length);
  std::vector<Index> ids(sorted.size(), -1);

  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const double t = sorted[i];
    // Find this arrival's root window.
    const auto rit = std::upper_bound(roots.begin(), roots.end(), t);
    const double root = *(rit - 1);
    if (t == root) {
      ids[i] = forest.add_stream(t, -1);
      continue;
    }
    // Independent per-arrival descent through the dyadic subdivision: at
    // each level, locate the subinterval of the owner's window containing
    // t; the earliest arrival strictly inside that subinterval heads it.
    double owner = root;
    double win_end = root + params.beta * media_length;
    while (true) {
      const SubInterval sub = subinterval_of(owner, win_end, t, params.alpha);
      const double head = earliest_in(std::max(sub.lo, owner), sub.hi);
      if (head == t) {
        // t itself heads this subinterval: it merges into the owner.
        const auto oit = std::lower_bound(sorted.begin(), sorted.end(), owner);
        ids[i] = forest.add_stream(t, ids[static_cast<std::size_t>(oit - sorted.begin())]);
        break;
      }
      owner = head;
      win_end = sub.hi;
    }
  }
  return forest;
}

}  // namespace smerge::merging
