#include "merging/continuous_playback.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace smerge::merging {

namespace {

constexpr double kEps = 1e-9;

std::size_t index_of(Index x) { return static_cast<std::size_t>(x); }

void fail(ContinuousClientReport& report, const std::string& message) {
  if (report.ok) {
    report.ok = false;
    std::ostringstream os;
    os << "client " << report.client << ": " << message;
    report.error = os.str();
  }
}

}  // namespace

std::vector<ContinuousReception> continuous_program(const GeneralMergeForest& forest,
                                                    Index client) {
  // Root path by parent chasing.
  std::vector<Index> path;
  for (Index v = client; v != -1; v = forest.stream(v).parent) path.push_back(v);
  std::reverse(path.begin(), path.end());

  const double L = forest.media_length();
  const double a = forest.stream(client).time;
  const auto k = static_cast<Index>(path.size()) - 1;
  const auto t = [&](Index m) { return forest.stream(path[index_of(m)]).time; };

  std::vector<ContinuousReception> out;
  auto push = [&out, &path](Index m, double from, double to) {
    if (to > from + kEps) {
      out.push_back(ContinuousReception{path[index_of(m)], from, to});
    }
  };

  if (k == 0) {
    push(0, 0.0, L);
    return out;
  }
  push(k, 0.0, a - t(k - 1));
  for (Index m = k - 1; m >= 1; --m) {
    push(m, 2.0 * a - t(m + 1) - t(m), 2.0 * a - t(m) - t(m - 1));
  }
  // Root reception capped at the media end (Lemma 15 case 2's analogue).
  push(0, std::min(2.0 * a - t(1) - t(0), L), L);
  return out;
}

ContinuousClientReport verify_continuous_client(const GeneralMergeForest& forest,
                                                Index client) {
  ContinuousClientReport report;
  report.client = client;
  const double L = forest.media_length();
  const double a = forest.stream(client).time;
  const std::vector<ContinuousReception> pieces = continuous_program(forest, client);

  // Partition of (0, L].
  double cursor = 0.0;
  for (const ContinuousReception& r : pieces) {
    if (std::abs(r.from - cursor) > kEps) {
      fail(report, "media gap before position " + std::to_string(r.from));
    }
    cursor = r.to;
  }
  if (std::abs(cursor - L) > kEps) {
    fail(report, "program ends at position " + std::to_string(cursor));
  }

  // Feasibility and deadlines.
  for (const ContinuousReception& r : pieces) {
    const GeneralStream& src = forest.stream(r.stream);
    if (r.to > forest.stream_duration(r.stream) + kEps) {
      fail(report, "stream " + std::to_string(r.stream) + " truncated at " +
                       std::to_string(forest.stream_duration(r.stream)) +
                       " but position " + std::to_string(r.to) + " requested");
    }
    // Position p received at src.time + p, played at a + p.
    if (src.time > a + kEps) {
      fail(report, "source stream starts after the client");
    }
  }

  // Concurrency: reception intervals [src+from, src+to].
  {
    std::vector<std::pair<double, int>> events;
    for (const ContinuousReception& r : pieces) {
      const double s = forest.stream(r.stream).time;
      events.emplace_back(s + r.from, +1);
      events.emplace_back(s + r.to, -1);
    }
    std::sort(events.begin(), events.end(), [](const auto& x, const auto& y) {
      if (x.first != y.first) return x.first < y.first;
      return x.second < y.second;
    });
    // Adjacent windows share endpoints computed through different
    // floating-point expressions (e.g. x_{m+2} + to vs x_{m+1} + to'),
    // which can mis-order by an ulp. Resolve events in kEps-wide groups,
    // applying closes before opens, and measure depth after each group.
    Index depth = 0;
    std::size_t i = 0;
    while (i < events.size()) {
      std::size_t j = i;
      while (j < events.size() && events[j].first <= events[i].first + kEps) ++j;
      for (std::size_t e = i; e < j; ++e) {
        if (events[e].second < 0) depth += events[e].second;
      }
      for (std::size_t e = i; e < j; ++e) {
        if (events[e].second > 0) depth += events[e].second;
      }
      report.max_concurrent = std::max(report.max_concurrent, depth);
      i = j;
    }
    if (report.max_concurrent > 2) {
      fail(report, "reads " + std::to_string(report.max_concurrent) +
                       " streams at once (receive-two model)");
    }
  }

  // Peak buffered media: at any time T the client has received
  // sum over pieces of |{p in (from, to]: src + p <= T}| and has played
  // min(max(T - a, 0), L). Evaluate at all reception endpoints.
  {
    std::vector<double> probes;
    for (const ContinuousReception& r : pieces) {
      const double s = forest.stream(r.stream).time;
      probes.push_back(s + r.from);
      probes.push_back(s + r.to);
    }
    for (const double T : probes) {
      double received = 0.0;
      for (const ContinuousReception& r : pieces) {
        const double s = forest.stream(r.stream).time;
        received += std::clamp(T - s, r.from, r.to) - r.from;
      }
      const double played = std::clamp(T - a, 0.0, L);
      report.peak_buffer = std::max(report.peak_buffer, received - played);
    }
  }
  return report;
}

ContinuousForestReport verify_continuous_forest(const GeneralMergeForest& forest) {
  ContinuousForestReport report;
  for (Index c = 0; c < forest.size(); ++c) {
    const ContinuousClientReport client = verify_continuous_client(forest, c);
    ++report.clients;
    report.max_concurrent = std::max(report.max_concurrent, client.max_concurrent);
    report.peak_buffer = std::max(report.peak_buffer, client.peak_buffer);
    if (!client.ok && report.ok) {
      report.ok = false;
      report.first_error = client.error;
    }
  }
  return report;
}

}  // namespace smerge::merging
