#include "merging/continuous_playback.h"

#include "core/plan.h"

namespace smerge::merging {

// The checks themselves live in the universal plan verifier
// (core/plan.h); this translation unit only adapts the general-forest
// API onto it, so the continuous and slotted worlds share one oracle.

std::vector<ContinuousReception> continuous_program(const GeneralMergeForest& forest,
                                                    Index client) {
  const plan::MergePlan p = forest.to_plan();
  std::vector<ContinuousReception> out;
  for (const plan::Piece& piece :
       plan::client_program(p, client, Model::kReceiveTwo)) {
    out.push_back(ContinuousReception{piece.stream, piece.from, piece.to});
  }
  return out;
}

ContinuousClientReport verify_continuous_client(const GeneralMergeForest& forest,
                                                Index client) {
  const plan::ClientReport r =
      plan::verify_client(forest.to_plan(), client, Model::kReceiveTwo);
  ContinuousClientReport out;
  out.client = r.client;
  out.ok = r.ok;
  out.error = r.error;
  out.max_concurrent = r.max_concurrent;
  out.peak_buffer = r.peak_buffer;
  return out;
}

ContinuousForestReport verify_continuous_forest(const GeneralMergeForest& forest) {
  const plan::PlanReport r = plan::verify(forest.to_plan(), Model::kReceiveTwo);
  ContinuousForestReport out;
  out.ok = r.ok;
  out.first_error = r.first_error;
  out.clients = r.clients;
  out.max_concurrent = r.max_concurrent;
  out.peak_buffer = r.peak_buffer;
  return out;
}

}  // namespace smerge::merging
