// The (alpha,beta)-dyadic stream merging algorithm of Coffman, Jelenkovic
// and Momcilovic [9], as described in Section 4.2 and Fig. 10.
//
// Every root stream at time x owns the window (x, x + beta*L]. The window
// is split into dyadic subintervals I_1, I_2, ... counted from its *end*:
// with w = window width, I_i = (x + w/alpha^i, x + w/alpha^{i-1}]. The
// earliest arrival inside a subinterval becomes a child of x and owns the
// remainder of that subinterval; the rule recurses inside each child.
// Arrivals past the window start a fresh root.
//
// The on-line form keeps the current rightmost path on a stack: a new
// arrival pops finished windows, attaches below the first window that
// still contains it, and pushes its own window — O(1) amortized.
//
// The original paper used alpha = 2, beta = 0.5; following Section 4.2 we
// default to alpha = phi and make beta configurable (0.5 for Poisson
// arrivals, F_h/L for constant-rate arrivals).
#ifndef SMERGE_MERGING_DYADIC_H
#define SMERGE_MERGING_DYADIC_H

#include <vector>

#include "merging/general_forest.h"

namespace smerge::util {
class SnapshotReader;
class SnapshotWriter;
}  // namespace smerge::util

namespace smerge::merging {

/// Tunables of the (alpha,beta)-dyadic algorithm.
struct DyadicParams {
  double alpha = fib::kGoldenRatio;  ///< subinterval ratio, must be > 1
  double beta = 0.5;                 ///< root window as a fraction of L, in (0, 1/2]
};

/// On-line dyadic merger. Feed nondecreasing arrival times; inspect the
/// resulting forest at any point.
class DyadicMerger {
 public:
  /// Throws std::invalid_argument on non-positive media length, alpha <= 1
  /// or beta outside (0, 1/2] (beta > 1/2 would let merges outlive their
  /// target stream).
  DyadicMerger(double media_length, DyadicParams params = {});

  /// Processes one arrival; returns the index of the stream it started.
  Index arrive(double time);

  /// The forest built so far.
  [[nodiscard]] const GeneralMergeForest& forest() const noexcept { return forest_; }
  /// Parameters in use.
  [[nodiscard]] const DyadicParams& params() const noexcept { return params_; }
  /// Total bandwidth consumed so far (continuous Fcost).
  [[nodiscard]] double total_cost() const { return forest_.total_cost(); }

  /// Appends the merger's full state (forest structure + rightmost-path
  /// stack) to a checkpoint payload.
  void save(util::SnapshotWriter& writer) const;

  /// Restores state written by `save` into this merger (which must have
  /// the same media length and params). The forest is rebuilt by
  /// replaying `add_stream`, so its incrementally maintained subtree
  /// summaries — and therefore every future `arrive` decision — are
  /// bit-identical to the saved merger's. Throws util::SnapshotError on
  /// malformed bytes.
  void restore(util::SnapshotReader& reader);

 private:
  struct Frame {
    Index stream;
    double window_end;  ///< arrivals at or before this time attach below
  };

  double media_length_;
  DyadicParams params_;
  GeneralMergeForest forest_;
  std::vector<Frame> stack_;
};

/// Reference implementation: builds the dyadic forest for a full batch of
/// arrivals by direct recursion over the Fig.-10 definition. O(n log n)-ish;
/// used by tests to pin down the stack version.
[[nodiscard]] GeneralMergeForest dyadic_forest_recursive(
    double media_length, const std::vector<double>& arrivals,
    DyadicParams params = {});

}  // namespace smerge::merging

#endif  // SMERGE_MERGING_DYADIC_H
