// Batching front-ends and the non-merging baselines of Section 4.2.
//
// * `batch_arrivals` quantizes raw client arrivals to the ends of D-long
//   intervals — a stream starts at the end of an interval only if at
//   least one client arrived inside it (this is what distinguishes the
//   batched dyadic algorithm from the Delay Guaranteed algorithm, which
//   starts a stream every interval unconditionally).
// * `unicast_cost` is the no-multicast baseline (one full stream per
//   arrival); `batching_cost` is batching alone (one full stream per
//   nonempty interval) — the Theorem-14 comparison point.
#ifndef SMERGE_MERGING_BATCHING_H
#define SMERGE_MERGING_BATCHING_H

#include <vector>

#include "merging/general_forest.h"

namespace smerge::merging {

/// Maps each arrival to the end of its batching interval of length
/// `delay` (intervals are ((k-1)D, kD], producing start time kD), and
/// deduplicates: the result is the sorted set of stream start times.
/// Guarantees every client a start-up delay < D. Requires delay > 0 and
/// nondecreasing arrivals.
[[nodiscard]] std::vector<double> batch_arrivals(const std::vector<double>& arrivals,
                                                 double delay);

/// Immediate service with no merging: every arrival gets a private full
/// stream. Cost = arrivals.size() * media_length.
[[nodiscard]] double unicast_cost(const std::vector<double>& arrivals,
                                  double media_length);

/// Batching alone (no merging): one full stream per nonempty interval.
[[nodiscard]] double batching_cost(const std::vector<double>& arrivals,
                                   double media_length, double delay);

}  // namespace smerge::merging

#endif  // SMERGE_MERGING_BATCHING_H
