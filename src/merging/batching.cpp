#include "merging/batching.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace smerge::merging {

std::vector<double> batch_arrivals(const std::vector<double>& arrivals, double delay) {
  if (!(delay > 0.0)) {
    throw std::invalid_argument("batch_arrivals: delay must be positive");
  }
  std::vector<double> starts;
  starts.reserve(arrivals.size());
  double prev = -std::numeric_limits<double>::infinity();
  for (const double t : arrivals) {
    if (t < prev) {
      throw std::invalid_argument("batch_arrivals: arrivals must be nondecreasing");
    }
    prev = t;
    // Interval ((k-1)D, kD] -> start kD; an arrival exactly at a boundary
    // is served by the stream starting there (zero delay).
    const double start = std::ceil(t / delay) * delay;
    if (starts.empty() || start > starts.back()) starts.push_back(start);
  }
  return starts;
}

double unicast_cost(const std::vector<double>& arrivals, double media_length) {
  if (!(media_length > 0.0)) {
    throw std::invalid_argument("unicast_cost: media length must be positive");
  }
  return static_cast<double>(arrivals.size()) * media_length;
}

double batching_cost(const std::vector<double>& arrivals, double media_length,
                     double delay) {
  if (!(media_length > 0.0)) {
    throw std::invalid_argument("batching_cost: media length must be positive");
  }
  return static_cast<double>(batch_arrivals(arrivals, delay).size()) * media_length;
}

}  // namespace smerge::merging
