// Optimal off-line stream merging for *general* arrivals — the [6]
// baseline the paper's Theorem 7 improves upon in the delay-guaranteed
// special case.
//
// Given distinct arrival times t_0 < ... < t_{n-1} and media length L,
// the optimal merge forest minimizes
//     (#roots) L + sum over non-roots of (2 z(x) - x - p(x))
// subject to feasibility: within a tree rooted at r every stream length
// is at most L and the last arrival satisfies z - r < L (an "L-tree").
//
// The tree cost over a block [i..j] obeys the Lemma-2 interval recurrence
//     M[i][j] = min_{i < h <= j} M[i][h-1] + M[h][j] + (2 t_j - t_h - t_i)
// with the glue term being exactly the length of the last root child h,
// so the L-tree constraint is enforced by skipping splits whose glue
// exceeds L. A forest DP over prefixes adds the root costs.
//
// Two implementations are provided:
//  * an O(n^2) DP using the monotonicity of the optimal split point
//    (the Observation-4 property [6] exploits; the delay-guaranteed
//    instance makes it visible as the I(n) interval table of Fig. 8), and
//  * an O(n^3) plain interval DP used as ground truth in tests.
#ifndef SMERGE_MERGING_OPTIMAL_GENERAL_H
#define SMERGE_MERGING_OPTIMAL_GENERAL_H

#include <vector>

#include "merging/general_forest.h"

namespace smerge::merging {

/// Largest instance the quadratic DP accepts (O(n^2) memory: two n*n
/// tables, ~64 MiB at the cap).
inline constexpr Index kMaxGeneralArrivals = 2000;

/// Result of the general off-line optimization.
struct GeneralOptimum {
  double cost = 0.0;          ///< optimal full cost in time units
  GeneralMergeForest forest;  ///< an optimal feasible forest attaining it
};

/// Computes an optimal feasible merge forest for the given strictly
/// increasing arrival times. O(n^2) time and memory. Throws
/// std::invalid_argument on unsorted/duplicate arrivals, non-positive L
/// or more than kMaxGeneralArrivals arrivals.
[[nodiscard]] GeneralOptimum optimal_general_forest(const std::vector<double>& arrivals,
                                                    double media_length);

/// Cost-only variant of `optimal_general_forest`.
[[nodiscard]] double optimal_general_cost(const std::vector<double>& arrivals,
                                          double media_length);

/// Ground-truth O(n^3) interval DP (no split-monotonicity assumption).
/// Tests cross-check the quadratic solver against this.
[[nodiscard]] double optimal_general_cost_cubic(const std::vector<double>& arrivals,
                                                double media_length);

}  // namespace smerge::merging

#endif  // SMERGE_MERGING_OPTIMAL_GENERAL_H
