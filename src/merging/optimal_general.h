// Optimal off-line stream merging for *general* arrivals — the [6]
// baseline the paper's Theorem 7 improves upon in the delay-guaranteed
// special case.
//
// Given distinct arrival times t_0 < ... < t_{n-1} and media length L,
// the optimal merge forest minimizes
//     (#roots) L + sum over non-roots of (2 z(x) - x - p(x))
// subject to feasibility: within a tree rooted at r every stream length
// is at most L and the last arrival satisfies z - r < L (an "L-tree").
//
// The tree cost over a block [i..j] obeys the Lemma-2 interval recurrence
//     M[i][j] = min_{i < h <= j} M[i][h-1] + M[h][j] + (2 t_j - t_h - t_i)
// with the glue term being exactly the length of the last root child h,
// so the L-tree constraint is enforced by skipping splits whose glue
// exceeds L. A forest DP over prefixes adds the root costs.
//
// The L-tree constraint also *bounds the table*: M[i][j] is finite only
// when t_j - t_i < L, i.e. only inside a ragged band of per-row width
// w_i = #{j >= i : t_j - t_i < L}. The production solver therefore
// stores and fills nothing outside the band — O(sum w_i) = O(n w) time
// and memory where w = max_i w_i — and parallelizes each diagonal
// wavefront of the fill over the shared util::ThreadPool (all cells of
// one `len` depend only on shorter intervals, so they are independent).
// The cost-only entry point additionally drops to a rolling window of
// the most recent w rows (O(n + w^2) transient state), independent of n.
//
// Two dense reference implementations are kept as test oracles:
//  * the historical O(n^2) split-monotone DP (the Observation-4 property
//    [6] exploits; the delay-guaranteed instance makes it visible as the
//    I(n) interval table of Fig. 8), capped at kMaxGeneralArrivalsDense,
//  * an O(n^3) plain interval DP with no monotonicity assumption.
// The banded solver is bit-identical to both on feasible instances.
#ifndef SMERGE_MERGING_OPTIMAL_GENERAL_H
#define SMERGE_MERGING_OPTIMAL_GENERAL_H

#include <cstddef>
#include <vector>

#include "merging/general_forest.h"

namespace smerge::merging {

/// Sanity cap on the number of arrivals the banded solver accepts (the
/// real resource guard is kMaxGeneralBandCells below).
inline constexpr Index kMaxGeneralArrivals = 1'000'000;

/// Largest total band size (sum of per-row widths) the banded solver
/// will materialize: 2^26 cells, ~0.75 GiB for the M + K tables. A
/// fully dense band (every arrival within one media length) stays under
/// this up to n ~ 11,500; a width-200 band up to n ~ 335,000.
inline constexpr std::size_t kMaxGeneralBandCells = std::size_t{1} << 26;

/// Largest instance the dense O(n^2) test oracle accepts (two n*n
/// tables, ~64 MiB at the cap).
inline constexpr Index kMaxGeneralArrivalsDense = 2000;

/// Result of the general off-line optimization.
struct GeneralOptimum {
  double cost = 0.0;          ///< optimal full cost in time units
  GeneralMergeForest forest;  ///< an optimal feasible forest attaining it
};

/// Computes an optimal feasible merge forest for the given strictly
/// increasing arrival times. O(n w) time and memory (banded DP);
/// `threads > 1` fans the fill's diagonal wavefronts out over the shared
/// ThreadPool without changing the result. Throws std::invalid_argument
/// on unsorted/duplicate arrivals, non-positive L, more than
/// kMaxGeneralArrivals arrivals, or a band exceeding
/// kMaxGeneralBandCells.
[[nodiscard]] GeneralOptimum optimal_general_forest(const std::vector<double>& arrivals,
                                                    double media_length,
                                                    unsigned threads = 1);

/// As `optimal_general_forest`, but assembles the reconstructed parent
/// vector directly into the canonical flat IR (core/plan.h) — the
/// banded optimum as a `plan::verify`-able MergePlan.
[[nodiscard]] plan::MergePlan optimal_general_plan(const std::vector<double>& arrivals,
                                                   double media_length,
                                                   unsigned threads = 1);

/// Cost-only variant of `optimal_general_forest`. With `threads <= 1`
/// it keeps only a rolling window of band rows — O(n + w^2) transient
/// memory — so instance size is bounded by time, not table storage.
[[nodiscard]] double optimal_general_cost(const std::vector<double>& arrivals,
                                          double media_length,
                                          unsigned threads = 1);

/// Ground-truth O(n^3) interval DP (no split-monotonicity assumption).
/// Tests cross-check the banded solver against this.
[[nodiscard]] double optimal_general_cost_cubic(const std::vector<double>& arrivals,
                                                double media_length);

/// The historical dense O(n^2) split-monotone DP, retained as a second
/// test oracle and as the "before" baseline of the cpx_general_scaling
/// bench. Capped at kMaxGeneralArrivalsDense arrivals.
[[nodiscard]] double optimal_general_cost_dense(const std::vector<double>& arrivals,
                                                double media_length);

}  // namespace smerge::merging

#endif  // SMERGE_MERGING_OPTIMAL_GENERAL_H
