#include "merging/general_forest.h"

#include <algorithm>
#include <stdexcept>

namespace smerge::merging {

namespace {

std::size_t index_of(Index x) { return static_cast<std::size_t>(x); }

}  // namespace

GeneralMergeForest::GeneralMergeForest(double media_length)
    : media_length_(media_length) {
  if (!(media_length > 0.0)) {
    throw std::invalid_argument("GeneralMergeForest: media length must be positive");
  }
}

Index GeneralMergeForest::add_stream(double time, Index parent) {
  if (!streams_.empty() && time < streams_.back().time) {
    throw std::invalid_argument("GeneralMergeForest: arrivals must be nondecreasing");
  }
  if (parent != -1) {
    if (parent < 0 || parent >= size()) {
      throw std::invalid_argument("GeneralMergeForest: parent index out of range");
    }
    if (!(streams_[index_of(parent)].time < time)) {
      throw std::invalid_argument("GeneralMergeForest: parent must start strictly earlier");
    }
  } else {
    ++roots_;
  }
  streams_.push_back(GeneralStream{time, parent});
  z_cache_.push_back(time);
  // `time` is the forest's latest arrival, so it becomes z for every
  // ancestor of the new stream. Walk the chain until an ancestor already
  // carries it (another just-appended sibling at the same time), which
  // makes growth O(depth) amortized instead of an O(n) rescan per query
  // batch — build-then-query loops stay near-linear.
  for (Index a = parent; a != -1 && z_cache_[index_of(a)] < time;
       a = streams_[index_of(a)].parent) {
    z_cache_[index_of(a)] = time;
  }
  return size() - 1;
}

const GeneralStream& GeneralMergeForest::stream(Index id) const {
  if (id < 0 || id >= size()) throw std::out_of_range("GeneralMergeForest::stream");
  return streams_[index_of(id)];
}

double GeneralMergeForest::last_descendant_time(Index id) const {
  if (id < 0 || id >= size()) {
    throw std::out_of_range("GeneralMergeForest::last_descendant_time");
  }
  return z_cache_[index_of(id)];
}

double GeneralMergeForest::duration_unchecked(std::size_t id) const {
  const GeneralStream& s = streams_[id];
  if (s.parent == -1) return media_length_;
  return 2.0 * z_cache_[id] - s.time - streams_[index_of(s.parent)].time;
}

double GeneralMergeForest::stream_duration(Index id) const {
  if (id < 0 || id >= size()) {
    throw std::out_of_range("GeneralMergeForest::stream_duration");
  }
  return duration_unchecked(index_of(id));
}

double GeneralMergeForest::total_cost() const {
  // One flat pass over the stream and z arrays — no per-stream bounds
  // or cache checks on this hot path (it closes every sim round).
  double total = 0.0;
  const std::size_t n = streams_.size();
  for (std::size_t i = 0; i < n; ++i) total += duration_unchecked(i);
  return total;
}

Index GeneralMergeForest::peak_concurrency() const {
  // One home for the sweep: arrivals are already time-ordered, so the
  // flat IR sorts only the ends (ends count before starts at equal
  // times there too — a zero-length overlap is not an overlap).
  return to_plan().peak_bandwidth();
}

plan::MergePlan GeneralMergeForest::to_plan() const {
  plan::PlanBuilder builder(media_length_, Model::kReceiveTwo);
  for (const GeneralStream& s : streams_) {
    builder.add_stream(s.time, s.parent);
  }
  return builder.build();
}

bool GeneralMergeForest::merges_complete_in_time() const {
  const std::size_t n = streams_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const GeneralStream& s = streams_[i];
    if (s.parent == -1) continue;
    const std::size_t p = index_of(s.parent);
    // The subtree of i finishes merging into the parent at 2 z(i) - p;
    // the parent transmits until p + duration(parent).
    const double merge_point = 2.0 * z_cache_[i] - streams_[p].time;
    const double parent_end = streams_[p].time + duration_unchecked(p);
    if (merge_point > parent_end + 1e-9) return false;
  }
  return true;
}

}  // namespace smerge::merging
