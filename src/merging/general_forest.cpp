#include "merging/general_forest.h"

#include <algorithm>
#include <stdexcept>

namespace smerge::merging {

namespace {

std::size_t index_of(Index x) { return static_cast<std::size_t>(x); }

}  // namespace

GeneralMergeForest::GeneralMergeForest(double media_length)
    : media_length_(media_length) {
  if (!(media_length > 0.0)) {
    throw std::invalid_argument("GeneralMergeForest: media length must be positive");
  }
}

Index GeneralMergeForest::add_stream(double time, Index parent) {
  if (!streams_.empty() && time < streams_.back().time) {
    throw std::invalid_argument("GeneralMergeForest: arrivals must be nondecreasing");
  }
  if (parent != -1) {
    if (parent < 0 || parent >= size()) {
      throw std::invalid_argument("GeneralMergeForest: parent index out of range");
    }
    if (!(streams_[index_of(parent)].time < time)) {
      throw std::invalid_argument("GeneralMergeForest: parent must start strictly earlier");
    }
  } else {
    ++roots_;
  }
  streams_.push_back(GeneralStream{time, parent});
  cache_valid_ = false;
  return size() - 1;
}

const GeneralStream& GeneralMergeForest::stream(Index id) const {
  if (id < 0 || id >= size()) throw std::out_of_range("GeneralMergeForest::stream");
  return streams_[index_of(id)];
}

void GeneralMergeForest::refresh_cache() const {
  if (cache_valid_) return;
  z_cache_.resize(streams_.size());
  for (Index i = size() - 1; i >= 0; --i) {
    z_cache_[index_of(i)] = streams_[index_of(i)].time;
  }
  for (Index i = size() - 1; i >= 1; --i) {
    const Index p = streams_[index_of(i)].parent;
    if (p != -1) {
      z_cache_[index_of(p)] = std::max(z_cache_[index_of(p)], z_cache_[index_of(i)]);
    }
  }
  cache_valid_ = true;
}

double GeneralMergeForest::last_descendant_time(Index id) const {
  if (id < 0 || id >= size()) {
    throw std::out_of_range("GeneralMergeForest::last_descendant_time");
  }
  refresh_cache();
  return z_cache_[index_of(id)];
}

double GeneralMergeForest::stream_duration(Index id) const {
  const GeneralStream& s = stream(id);
  if (s.parent == -1) return media_length_;
  refresh_cache();
  const double z = z_cache_[index_of(id)];
  const double p = streams_[index_of(s.parent)].time;
  return 2.0 * z - s.time - p;  // Lemma 1 in continuous time
}

double GeneralMergeForest::total_cost() const {
  double total = 0.0;
  for (Index i = 0; i < size(); ++i) total += stream_duration(i);
  return total;
}

Index GeneralMergeForest::peak_concurrency() const {
  std::vector<std::pair<double, int>> events;
  events.reserve(streams_.size() * 2);
  for (Index i = 0; i < size(); ++i) {
    const double start = streams_[index_of(i)].time;
    events.emplace_back(start, +1);
    events.emplace_back(start + stream_duration(i), -1);
  }
  // Ends sort before starts at equal times (a zero-length overlap is not
  // an overlap).
  std::sort(events.begin(), events.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first < b.first;
    return a.second < b.second;
  });
  Index depth = 0;
  Index peak = 0;
  for (const auto& [t, delta] : events) {
    depth += delta;
    peak = std::max(peak, depth);
  }
  return peak;
}

bool GeneralMergeForest::merges_complete_in_time() const {
  refresh_cache();
  for (Index i = 0; i < size(); ++i) {
    const GeneralStream& s = streams_[index_of(i)];
    if (s.parent == -1) continue;
    const GeneralStream& par = streams_[index_of(s.parent)];
    // The subtree of i finishes merging into the parent at 2 z(i) - p;
    // the parent transmits until p + duration(parent).
    const double merge_point = 2.0 * z_cache_[index_of(i)] - par.time;
    const double parent_end = par.time + stream_duration(s.parent);
    if (merge_point > parent_end + 1e-9) return false;
  }
  return true;
}

}  // namespace smerge::merging
