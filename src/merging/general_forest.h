// Stream merging over general (continuous-time) arrivals.
//
// The delay-guaranteed model of src/core is the special case of one
// arrival per slot. The on-line baselines of Section 4.2 — the dyadic
// algorithm [9] and its batched variant — operate on arbitrary arrival
// times instead, so this substrate re-implements merge forests over
// real-valued times. Lemma 1 carries over verbatim: a non-root stream at
// time x merging into p(x) and last used by z(x) transmits for
// 2 z(x) - x - p(x) time units; roots transmit the full media length.
#ifndef SMERGE_MERGING_GENERAL_FOREST_H
#define SMERGE_MERGING_GENERAL_FOREST_H

#include <vector>

#include "core/plan.h"
#include "fib/fibonacci.h"

namespace smerge::merging {

/// One stream in a general merge forest.
struct GeneralStream {
  double time = 0.0;   ///< start time (the arrival it serves first)
  Index parent = -1;   ///< index of the stream it merges into; -1 = root
};

/// An append-only merge forest over nondecreasing arrival times.
///
/// Invariants: parents precede children (parent index < node index),
/// parent times are strictly earlier, and sibling order follows time —
/// i.e. the preorder property of Section 2 in continuous time.
class GeneralMergeForest {
 public:
  /// Media length in the same time unit as the arrivals.
  explicit GeneralMergeForest(double media_length);

  /// Appends a stream at `time` merging into `parent` (-1 for a new
  /// root). Returns its index. Throws std::invalid_argument if `time`
  /// precedes the last appended stream or the parent is invalid.
  Index add_stream(double time, Index parent);

  /// Number of streams.
  [[nodiscard]] Index size() const noexcept { return static_cast<Index>(streams_.size()); }
  /// The stream at `id`.
  [[nodiscard]] const GeneralStream& stream(Index id) const;
  /// Number of roots (full streams).
  [[nodiscard]] Index num_roots() const noexcept { return roots_; }
  /// Media length.
  [[nodiscard]] double media_length() const noexcept { return media_length_; }

  /// Last arrival time in the subtree of `id` (z in Lemma 1). O(1):
  /// `add_stream` maintains the z values incrementally by walking the
  /// new stream's ancestor chain, so queries never rescan the forest.
  [[nodiscard]] double last_descendant_time(Index id) const;

  /// Transmission duration of stream `id`: media length for roots,
  /// Lemma-1 length otherwise.
  [[nodiscard]] double stream_duration(Index id) const;

  /// Total transmitted time-units: num_roots * L + sum of Lemma-1 lengths
  /// — the continuous analogue of Fcost.
  [[nodiscard]] double total_cost() const;

  /// Peak number of simultaneously transmitting streams (the maximum
  /// channel requirement of Section 5's discussion). Delegates to the
  /// flat IR's single sweep (`MergePlan::peak_bandwidth`).
  [[nodiscard]] Index peak_concurrency() const;

  /// The canonical-IR view (receive-two: the general-arrivals substrate
  /// is the Section-4.2 model): same stream ids, Lemma-1 lengths.
  [[nodiscard]] plan::MergePlan to_plan() const;

  /// True iff every merge completes while its target is still alive:
  /// for every non-root x, 2 z(x) - x - p(x) <= duration(p(x)) + (p - x)
  /// ... equivalently the merge point 2 z(x) - p(x) does not exceed the
  /// end of p(x)'s own transmission. Guaranteed by construction for the
  /// dyadic algorithm with beta <= 1/2; checked explicitly in tests.
  [[nodiscard]] bool merges_complete_in_time() const;

 private:
  /// Lemma-1 transmission duration of `id`, no bounds checks: callers
  /// iterate validated index ranges over the flat arrays.
  [[nodiscard]] double duration_unchecked(std::size_t id) const;

  double media_length_;
  std::vector<GeneralStream> streams_;
  Index roots_ = 0;
  /// z_cache_[i] = latest arrival in the subtree of i, maintained
  /// incrementally on append (O(depth) amortized, and depth is bounded
  /// by the L-tree band width for feasible forests).
  std::vector<double> z_cache_;
};

}  // namespace smerge::merging

#endif  // SMERGE_MERGING_GENERAL_FOREST_H
