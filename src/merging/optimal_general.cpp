#include "merging/optimal_general.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace smerge::merging {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kTieEps = 1e-12;
constexpr double kFeasEps = 1e-12;

std::size_t index_of(Index x) { return static_cast<std::size_t>(x); }

void check_input(const std::vector<double>& t, double L, const char* fn) {
  if (!(L > 0.0)) {
    throw std::invalid_argument(std::string(fn) + ": media length must be positive");
  }
  if (static_cast<Index>(t.size()) > kMaxGeneralArrivals) {
    throw std::invalid_argument(std::string(fn) + ": too many arrivals (quadratic DP)");
  }
  for (std::size_t i = 1; i < t.size(); ++i) {
    if (!(t[i - 1] < t[i])) {
      throw std::invalid_argument(std::string(fn) +
                                  ": arrivals must be strictly increasing");
    }
  }
}

// Shared state of the quadratic solver: interval costs M, max-argmin
// splits K, and prefix forest costs G with their split points.
struct Tables {
  Index n = 0;
  std::vector<double> m;   // n*n, M[i][j] at i*n+j
  std::vector<Index> k;    // n*n, K[i][j]
  std::vector<double> g;   // n+1 prefix costs
  std::vector<Index> g_split;  // forest reconstruction

  [[nodiscard]] double& M(Index i, Index j) { return m[index_of(i * n + j)]; }
  [[nodiscard]] Index& K(Index i, Index j) { return k[index_of(i * n + j)]; }
};

// Fills the interval tables using split-point monotonicity
// (K[i][j-1] <= K[i][j] <= K[i+1][j]), the [6] quadratic scheme. The
// L-tree constraint restricts feasible splits to the suffix where the
// glue 2 t_j - t_h - t_i fits in L.
Tables solve(const std::vector<double>& t, double L) {
  Tables tab;
  tab.n = static_cast<Index>(t.size());
  const Index n = tab.n;
  tab.m.assign(index_of(n * n), 0.0);
  tab.k.assign(index_of(n * n), 0);

  for (Index len = 1; len < n; ++len) {
    for (Index i = 0; i + len < n; ++i) {
      const Index j = i + len;
      if (!(t[index_of(j)] - t[index_of(i)] < L - kFeasEps)) {
        // The root cannot serve the last arrival: infeasible tree.
        tab.M(i, j) = kInf;
        tab.K(i, j) = j;
        continue;
      }
      const Index lo = len == 1 ? i + 1 : std::max(i + 1, tab.K(i, j - 1));
      const Index hi = len == 1 ? j : std::min(j, tab.K(i + 1, j));
      double best = kInf;
      Index best_h = j;
      for (Index h = lo; h <= hi; ++h) {
        const double glue =
            2.0 * t[index_of(j)] - t[index_of(h)] - t[index_of(i)];
        if (glue > L + kFeasEps) continue;  // last root child too long
        const double left = h == i + 1 ? 0.0 : tab.M(i, h - 1);
        const double right = tab.M(h, j);
        const double cost = left + right + glue;
        if (cost < best - kTieEps) {
          best = cost;
          best_h = h;
        } else if (cost <= best + kTieEps) {
          best_h = std::max(best_h, h);  // canonical: largest optimal split
        }
      }
      tab.M(i, j) = best;
      tab.K(i, j) = best_h;
    }
  }

  // Forest DP over prefixes.
  tab.g.assign(index_of(n) + 1, kInf);
  tab.g_split.assign(index_of(n) + 1, 0);
  tab.g[0] = 0.0;
  for (Index kk = 1; kk <= n; ++kk) {
    for (Index m0 = 0; m0 < kk; ++m0) {
      const double tree = m0 == kk - 1 ? 0.0 : tab.M(m0, kk - 1);
      if (tree == kInf || tab.g[index_of(m0)] == kInf) continue;
      const double cost = tab.g[index_of(m0)] + L + tree;
      if (cost < tab.g[index_of(kk)] - kTieEps) {
        tab.g[index_of(kk)] = cost;
        tab.g_split[index_of(kk)] = m0;
      }
    }
  }
  return tab;
}

// Parent assignment for the tree block [i..j] from the split table.
void rebuild(const Tables& tab, Index i, Index j, std::vector<Index>& parent) {
  if (i == j) return;
  const Index h = tab.k[index_of(i * tab.n + j)];
  parent[index_of(h)] = i;
  if (h > i + 1) rebuild(tab, i, h - 1, parent);
  rebuild(tab, h, j, parent);
}

}  // namespace

GeneralOptimum optimal_general_forest(const std::vector<double>& arrivals,
                                      double media_length) {
  check_input(arrivals, media_length, "optimal_general_forest");
  GeneralOptimum out{0.0, GeneralMergeForest(media_length)};
  if (arrivals.empty()) return out;

  const Tables tab = solve(arrivals, media_length);
  const Index n = tab.n;
  if (tab.g[index_of(n)] == kInf) {
    throw std::logic_error("optimal_general_forest: no feasible forest (unexpected)");
  }
  out.cost = tab.g[index_of(n)];

  // Recover the root blocks, then each block's tree.
  std::vector<Index> parent(index_of(n), -1);
  std::vector<Index> blocks;  // block starts, reversed
  for (Index kk = n; kk > 0; kk = tab.g_split[index_of(kk)]) {
    blocks.push_back(tab.g_split[index_of(kk)]);
  }
  std::reverse(blocks.begin(), blocks.end());
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    const Index i = blocks[b];
    const Index j = (b + 1 < blocks.size() ? blocks[b + 1] : n) - 1;
    if (i < j) rebuild(tab, i, j, parent);
  }
  for (Index x = 0; x < n; ++x) {
    out.forest.add_stream(arrivals[index_of(x)], parent[index_of(x)]);
  }
  return out;
}

double optimal_general_cost(const std::vector<double>& arrivals, double media_length) {
  check_input(arrivals, media_length, "optimal_general_cost");
  if (arrivals.empty()) return 0.0;
  const Tables tab = solve(arrivals, media_length);
  return tab.g[index_of(tab.n)];
}

double optimal_general_cost_cubic(const std::vector<double>& arrivals,
                                  double media_length) {
  check_input(arrivals, media_length, "optimal_general_cost_cubic");
  const Index n = static_cast<Index>(arrivals.size());
  if (n == 0) return 0.0;
  const double L = media_length;
  const auto& t = arrivals;

  std::vector<double> m(index_of(n * n), 0.0);
  const auto M = [&m, n](Index i, Index j) -> double& {
    return m[index_of(i * n + j)];
  };
  for (Index len = 1; len < n; ++len) {
    for (Index i = 0; i + len < n; ++i) {
      const Index j = i + len;
      if (!(t[index_of(j)] - t[index_of(i)] < L - kFeasEps)) {
        M(i, j) = kInf;
        continue;
      }
      double best = kInf;
      for (Index h = i + 1; h <= j; ++h) {  // no monotonicity assumption
        const double glue = 2.0 * t[index_of(j)] - t[index_of(h)] - t[index_of(i)];
        if (glue > L + kFeasEps) continue;
        const double left = h == i + 1 ? 0.0 : M(i, h - 1);
        best = std::min(best, left + M(h, j) + glue);
      }
      M(i, j) = best;
    }
  }
  std::vector<double> g(index_of(n) + 1, kInf);
  g[0] = 0.0;
  for (Index kk = 1; kk <= n; ++kk) {
    for (Index m0 = 0; m0 < kk; ++m0) {
      const double tree = m0 == kk - 1 ? 0.0 : M(m0, kk - 1);
      if (tree == kInf || g[index_of(m0)] == kInf) continue;
      g[index_of(kk)] = std::min(g[index_of(kk)], g[index_of(m0)] + L + tree);
    }
  }
  return g[index_of(n)];
}

}  // namespace smerge::merging
