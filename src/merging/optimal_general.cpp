#include "merging/optimal_general.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>

#include "util/thread_pool.h"

namespace smerge::merging {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kTieEps = 1e-12;
constexpr double kFeasEps = 1e-12;

std::size_t index_of(Index x) { return static_cast<std::size_t>(x); }

void check_input(const std::vector<double>& t, double L, const char* fn) {
  if (!(L > 0.0)) {
    throw std::invalid_argument(std::string(fn) + ": media length must be positive");
  }
  if (static_cast<Index>(t.size()) > kMaxGeneralArrivals) {
    throw std::invalid_argument(std::string(fn) + ": too many arrivals");
  }
  for (std::size_t i = 1; i < t.size(); ++i) {
    if (!(t[i - 1] < t[i])) {
      throw std::invalid_argument(std::string(fn) +
                                  ": arrivals must be strictly increasing");
    }
  }
}

// The L-feasible band. M[i][j] can be finite only when t_j - t_i < L
// (the root of [i..j] must still be transmitting at the last arrival),
// so row i of the interval table holds columns [i, end[i]) only. Both
// bounds are monotone in i, which also makes the set of rows covering a
// fixed column j the contiguous range [row_lo[j], j].
struct Band {
  std::size_t n = 0;
  std::size_t width = 0;              ///< max row width (incl. diagonal)
  std::vector<std::size_t> end;       ///< row i spans columns [i, end[i])
  std::vector<std::size_t> row_lo;    ///< first row whose band covers j
};

Band band_of(const std::vector<double>& t, double L) {
  Band band;
  band.n = t.size();
  band.end.resize(band.n);
  band.row_lo.resize(band.n);
  std::size_t e = 0;
  for (std::size_t i = 0; i < band.n; ++i) {
    if (e < i + 1) e = i + 1;  // the diagonal is always stored
    while (e < band.n && t[e] - t[i] < L - kFeasEps) ++e;
    band.end[i] = e;
    band.width = std::max(band.width, e - i);
  }
  std::size_t lo = 0;
  for (std::size_t j = 0; j < band.n; ++j) {
    while (lo < j && !(t[j] - t[lo] < L - kFeasEps)) ++lo;
    band.row_lo[j] = lo;
  }
  return band;
}

// One interval cell via the split-monotone scan (K[i][j-1] <= K[i][j]
// <= K[i+1][j], the [6] Observation-4 property). `m_at`/`k_at` abstract
// the storage so the full band table and the rolling window share the
// scan; every (row, col) they are asked for lies inside the band
// whenever (i, j) does, because t_{h-1} - t_i and t_j - t_h are both
// bounded by t_j - t_i.
struct CellResult {
  double cost = kInf;
  std::size_t split = 0;
};

template <typename MAt, typename KAt>
CellResult solve_cell(const std::vector<double>& t, double L, std::size_t i,
                      std::size_t j, const MAt& m_at, const KAt& k_at) {
  const bool adjacent = j == i + 1;
  const std::size_t lo = adjacent ? i + 1 : std::max(i + 1, k_at(i, j - 1));
  const std::size_t hi = adjacent ? j : std::min(j, k_at(i + 1, j));
  CellResult out;
  out.split = j;
  for (std::size_t h = lo; h <= hi; ++h) {
    const double glue = 2.0 * t[j] - t[h] - t[i];
    if (glue > L + kFeasEps) continue;  // last root child too long
    const double left = h == i + 1 ? 0.0 : m_at(i, h - 1);
    const double cost = left + m_at(h, j) + glue;
    if (cost < out.cost - kTieEps) {
      out.cost = cost;
      out.split = h;
    } else if (cost <= out.cost + kTieEps) {
      out.split = std::max(out.split, h);  // canonical: largest optimal split
    }
  }
  return out;
}

// Ragged band storage of the interval tables: cell (i, j) lives at
// offset[i] + (j - i). All index arithmetic is std::size_t, so the
// flattened position cannot overflow an Index even at the arrival cap
// (the historical dense layout computed i*n+j in Index first).
struct BandTable {
  std::vector<std::size_t> offset;  ///< n+1 prefix sums of row widths
  std::vector<double> m;
  std::vector<std::int32_t> k;  ///< split indices; n < 2^31 by the cap

  void allocate(const Band& band, const char* fn) {
    offset.resize(band.n + 1);
    offset[0] = 0;
    for (std::size_t i = 0; i < band.n; ++i) {
      offset[i + 1] = offset[i] + (band.end[i] - i);
    }
    if (offset[band.n] > kMaxGeneralBandCells) {
      throw std::invalid_argument(
          std::string(fn) + ": feasible band too large to materialize (" +
          std::to_string(offset[band.n]) + " cells > " +
          std::to_string(kMaxGeneralBandCells) +
          "); the instance is too dense for its size — shorten the trace "
          "or tighten L");
    }
    m.assign(offset[band.n], 0.0);
    k.assign(offset[band.n], 0);
  }

  [[nodiscard]] std::size_t at(std::size_t i, std::size_t j) const {
    return offset[i] + (j - i);
  }
};

// Fills the band in diagonal wavefronts: every cell of length `len`
// depends only on strictly shorter intervals (the split bounds K[i][j-1]
// and K[i+1][j] are length len-1), so all rows of one wavefront are
// independent and fan out over the shared ThreadPool. Serial and
// threaded fills are bit-identical: each cell's scan is sequential and
// self-contained.
void fill_band(const std::vector<double>& t, double L, const Band& band,
               BandTable& tab, unsigned threads) {
  const auto m_at = [&tab](std::size_t a, std::size_t b) {
    return tab.m[tab.at(a, b)];
  };
  const auto k_at = [&tab](std::size_t a, std::size_t b) {
    return static_cast<std::size_t>(tab.k[tab.at(a, b)]);
  };
  // Below this many rows a wavefront is cheaper to fill inline than to
  // dispatch (tests cross it deliberately to cover the pooled path).
  constexpr std::int64_t kMinRowsForPool = 4096;
  for (std::size_t len = 1; len < band.width; ++len) {
    const auto rows = static_cast<std::int64_t>(band.n - len);
    const auto body = [&, len](std::int64_t row) {
      const auto i = static_cast<std::size_t>(row);
      const std::size_t j = i + len;
      if (j >= band.end[i]) return;  // outside the band: stays infeasible
      const CellResult cell = solve_cell(t, L, i, j, m_at, k_at);
      tab.m[tab.at(i, j)] = cell.cost;
      tab.k[tab.at(i, j)] = static_cast<std::int32_t>(cell.split);
    };
    if (threads > 1 && rows >= kMinRowsForPool) {
      util::ThreadPool::shared().run(0, rows, 1024, threads, body);
    } else {
      for (std::int64_t row = 0; row < rows; ++row) body(row);
    }
  }
}

// Forest DP over prefixes: g[kk] = min over root blocks [m0..kk-1]. The
// band bounds the inner loop to the rows covering column kk-1, so the
// prefix pass is O(sum w_i) like the fill (the dense original scanned
// all m0 < kk).
struct PrefixDP {
  std::vector<double> g;
  std::vector<std::size_t> split;
};

template <typename MAt>
PrefixDP forest_dp(double L, const Band& band, const MAt& m_at) {
  PrefixDP dp;
  dp.g.assign(band.n + 1, kInf);
  dp.split.assign(band.n + 1, 0);
  dp.g[0] = 0.0;
  for (std::size_t kk = 1; kk <= band.n; ++kk) {
    const std::size_t j = kk - 1;
    for (std::size_t m0 = band.row_lo[j]; m0 < kk; ++m0) {
      const double tree = m0 == j ? 0.0 : m_at(m0, j);
      if (tree == kInf || dp.g[m0] == kInf) continue;
      const double cost = dp.g[m0] + L + tree;
      if (cost < dp.g[kk] - kTieEps) {
        dp.g[kk] = cost;
        dp.split[kk] = m0;
      }
    }
  }
  return dp;
}

// Cost-only solve keeping a rolling window of the most recent rows:
// row i is written at columns [i, end[i]) and never read after column
// end[i]-1 < i + width, so a width x width ring (indexed i mod width)
// holds every live cell — O(n + w^2) transient state independent of n.
// Columns advance left to right; within a column rows fill bottom-up so
// K[i+1][j] is ready when row i needs it, and the prefix DP consumes
// column j before it can be overwritten.
double rolling_cost(const std::vector<double>& t, double L, const Band& band) {
  const std::size_t w = band.width;
  std::vector<double> m(w * w, 0.0);
  std::vector<std::int32_t> k(w * w, 0);
  const auto at = [w](std::size_t i, std::size_t j) {
    return (i % w) * w + (j - i);
  };
  const auto m_at = [&m, at](std::size_t a, std::size_t b) { return m[at(a, b)]; };
  const auto k_at = [&k, at](std::size_t a, std::size_t b) {
    return static_cast<std::size_t>(k[at(a, b)]);
  };

  std::vector<double> g(band.n + 1, kInf);
  g[0] = 0.0;
  for (std::size_t j = 0; j < band.n; ++j) {
    m[at(j, j)] = 0.0;  // activate row j
    for (std::size_t i = j; i-- > band.row_lo[j];) {
      const CellResult cell = solve_cell(t, L, i, j, m_at, k_at);
      m[at(i, j)] = cell.cost;
      k[at(i, j)] = static_cast<std::int32_t>(cell.split);
    }
    for (std::size_t m0 = band.row_lo[j]; m0 <= j; ++m0) {
      const double tree = m0 == j ? 0.0 : m_at(m0, j);
      if (tree == kInf || g[m0] == kInf) continue;
      const double cost = g[m0] + L + tree;
      if (cost < g[j + 1] - kTieEps) g[j + 1] = cost;
    }
  }
  return g[band.n];
}

}  // namespace

namespace {

/// The shared solve-and-reconstruct core: fills the band, runs the
/// prefix forest DP and recovers the optimal parent vector (-1 for
/// roots). Every structured output — GeneralMergeForest or the flat
/// MergePlan IR — is assembled from this one result.
struct SolvedParents {
  double cost = 0.0;
  std::vector<Index> parent;
};

SolvedParents solve_parents(const std::vector<double>& arrivals,
                            double media_length, unsigned threads,
                            const char* fn) {
  SolvedParents out;
  if (arrivals.empty()) return out;

  const Band band = band_of(arrivals, media_length);
  BandTable tab;
  tab.allocate(band, fn);
  fill_band(arrivals, media_length, band, tab, threads);
  const auto m_at = [&tab](std::size_t a, std::size_t b) {
    return tab.m[tab.at(a, b)];
  };
  const PrefixDP dp = forest_dp(media_length, band, m_at);
  const std::size_t n = band.n;
  if (dp.g[n] == kInf) {
    throw std::logic_error(std::string(fn) + ": no feasible forest (unexpected)");
  }
  out.cost = dp.g[n];

  // Recover the root blocks, then each block's tree. The per-tree
  // parent assignment walks the split table iteratively (trees can be
  // hundreds of levels deep at large n; no recursion).
  out.parent.assign(n, -1);
  std::vector<std::size_t> blocks;  // block starts, reversed
  for (std::size_t kk = n; kk > 0; kk = dp.split[kk]) {
    blocks.push_back(dp.split[kk]);
  }
  std::reverse(blocks.begin(), blocks.end());
  std::vector<std::pair<std::size_t, std::size_t>> stack;
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    const std::size_t i = blocks[b];
    const std::size_t j = (b + 1 < blocks.size() ? blocks[b + 1] : n) - 1;
    if (i < j) stack.emplace_back(i, j);
  }
  while (!stack.empty()) {
    const auto [i, j] = stack.back();
    stack.pop_back();
    const auto h = static_cast<std::size_t>(tab.k[tab.at(i, j)]);
    out.parent[h] = static_cast<Index>(i);
    if (h > i + 1) stack.emplace_back(i, h - 1);
    if (h < j) stack.emplace_back(h, j);
  }
  return out;
}

}  // namespace

GeneralOptimum optimal_general_forest(const std::vector<double>& arrivals,
                                      double media_length, unsigned threads) {
  check_input(arrivals, media_length, "optimal_general_forest");
  GeneralOptimum out{0.0, GeneralMergeForest(media_length)};
  const SolvedParents solved =
      solve_parents(arrivals, media_length, threads, "optimal_general_forest");
  out.cost = solved.cost;
  for (std::size_t x = 0; x < arrivals.size(); ++x) {
    out.forest.add_stream(arrivals[x], solved.parent[x]);
  }
  return out;
}

plan::MergePlan optimal_general_plan(const std::vector<double>& arrivals,
                                     double media_length, unsigned threads) {
  check_input(arrivals, media_length, "optimal_general_plan");
  const SolvedParents solved =
      solve_parents(arrivals, media_length, threads, "optimal_general_plan");
  plan::PlanBuilder builder(media_length, Model::kReceiveTwo);
  for (std::size_t x = 0; x < arrivals.size(); ++x) {
    builder.add_stream(arrivals[x], solved.parent[x]);
  }
  return builder.build();
}

double optimal_general_cost(const std::vector<double>& arrivals,
                            double media_length, unsigned threads) {
  check_input(arrivals, media_length, "optimal_general_cost");
  if (arrivals.empty()) return 0.0;
  const Band band = band_of(arrivals, media_length);
  std::size_t total_cells = 0;
  for (std::size_t i = 0; i < band.n; ++i) total_cells += band.end[i] - i;
  const bool rolling_fits =
      band.width * band.width <= kMaxGeneralBandCells;
  // Materialize the band when the caller wants the fill fanned out (and
  // it fits) or when the rolling ring itself would blow the cell cap
  // (a dense instance, where materializing costs no more than the
  // ring); otherwise stay on the rolling path — its memory is
  // independent of n, so a huge-but-narrow instance that can never be
  // materialized still solves serially rather than throwing.
  if ((threads > 1 && total_cells <= kMaxGeneralBandCells) || !rolling_fits) {
    BandTable tab;
    tab.allocate(band, "optimal_general_cost");
    fill_band(arrivals, media_length, band, tab, threads);
    const auto m_at = [&tab](std::size_t a, std::size_t b) {
      return tab.m[tab.at(a, b)];
    };
    return forest_dp(media_length, band, m_at).g[band.n];
  }
  return rolling_cost(arrivals, media_length, band);
}

double optimal_general_cost_cubic(const std::vector<double>& arrivals,
                                  double media_length) {
  check_input(arrivals, media_length, "optimal_general_cost_cubic");
  const Index n = static_cast<Index>(arrivals.size());
  if (n == 0) return 0.0;
  const double L = media_length;
  const auto& t = arrivals;

  std::vector<double> m(index_of(n) * index_of(n), 0.0);
  const auto M = [&m, n](Index i, Index j) -> double& {
    return m[index_of(i) * index_of(n) + index_of(j)];
  };
  for (Index len = 1; len < n; ++len) {
    for (Index i = 0; i + len < n; ++i) {
      const Index j = i + len;
      if (!(t[index_of(j)] - t[index_of(i)] < L - kFeasEps)) {
        M(i, j) = kInf;
        continue;
      }
      double best = kInf;
      for (Index h = i + 1; h <= j; ++h) {  // no monotonicity assumption
        const double glue = 2.0 * t[index_of(j)] - t[index_of(h)] - t[index_of(i)];
        if (glue > L + kFeasEps) continue;
        const double left = h == i + 1 ? 0.0 : M(i, h - 1);
        best = std::min(best, left + M(h, j) + glue);
      }
      M(i, j) = best;
    }
  }
  std::vector<double> g(index_of(n) + 1, kInf);
  g[0] = 0.0;
  for (Index kk = 1; kk <= n; ++kk) {
    for (Index m0 = 0; m0 < kk; ++m0) {
      const double tree = m0 == kk - 1 ? 0.0 : M(m0, kk - 1);
      if (tree == kInf || g[index_of(m0)] == kInf) continue;
      g[index_of(kk)] = std::min(g[index_of(kk)], g[index_of(m0)] + L + tree);
    }
  }
  return g[index_of(n)];
}

double optimal_general_cost_dense(const std::vector<double>& arrivals,
                                  double media_length) {
  check_input(arrivals, media_length, "optimal_general_cost_dense");
  const Index n = static_cast<Index>(arrivals.size());
  if (n == 0) return 0.0;
  if (n > kMaxGeneralArrivalsDense) {
    throw std::invalid_argument(
        "optimal_general_cost_dense: too many arrivals (dense quadratic oracle)");
  }
  const double L = media_length;
  const auto& t = arrivals;

  // The historical dense layout: two n*n tables filled with the same
  // split-monotone scan the banded solver uses, kept verbatim as an
  // oracle (and as the cpx_general_scaling "before" baseline).
  const std::size_t un = index_of(n);
  std::vector<double> m(un * un, 0.0);
  std::vector<Index> k(un * un, 0);
  const auto M = [&m, un](Index i, Index j) -> double& {
    return m[index_of(i) * un + index_of(j)];
  };
  const auto K = [&k, un](Index i, Index j) -> Index& {
    return k[index_of(i) * un + index_of(j)];
  };
  for (Index len = 1; len < n; ++len) {
    for (Index i = 0; i + len < n; ++i) {
      const Index j = i + len;
      if (!(t[index_of(j)] - t[index_of(i)] < L - kFeasEps)) {
        M(i, j) = kInf;
        K(i, j) = j;
        continue;
      }
      const Index lo = len == 1 ? i + 1 : std::max(i + 1, K(i, j - 1));
      const Index hi = len == 1 ? j : std::min(j, K(i + 1, j));
      double best = kInf;
      Index best_h = j;
      for (Index h = lo; h <= hi; ++h) {
        const double glue =
            2.0 * t[index_of(j)] - t[index_of(h)] - t[index_of(i)];
        if (glue > L + kFeasEps) continue;
        const double left = h == i + 1 ? 0.0 : M(i, h - 1);
        const double cost = left + M(h, j) + glue;
        if (cost < best - kTieEps) {
          best = cost;
          best_h = h;
        } else if (cost <= best + kTieEps) {
          best_h = std::max(best_h, h);
        }
      }
      M(i, j) = best;
      K(i, j) = best_h;
    }
  }
  std::vector<double> g(un + 1, kInf);
  g[0] = 0.0;
  for (Index kk = 1; kk <= n; ++kk) {
    for (Index m0 = 0; m0 < kk; ++m0) {
      const double tree = m0 == kk - 1 ? 0.0 : M(m0, kk - 1);
      if (tree == kInf || g[index_of(m0)] == kInf) continue;
      const double cost = g[index_of(m0)] + L + tree;
      if (cost < g[index_of(kk)] - kTieEps) g[index_of(kk)] = cost;
    }
  }
  return g[un];
}

}  // namespace smerge::merging
