// Crash consistency — checkpoint/restore throughput and recovery
// fidelity at the engine's load shape.
//
// Three faces of the recovery stack, measured at two catalogue sizes:
//
//  1. Kill-and-recover oracle: a Poisson run is crashed mid-ingest by
//     the deterministic fault harness (crash after WAL record k, a torn
//     byte suffix on the durable log), recovered from the latest
//     checkpoint plus the WAL tail, re-fed and finished. The recovered
//     snapshot must equal the uninterrupted run's bit for bit — counts,
//     served cost, exact percentiles, every per-object outcome.
//
//  2. Checkpoint throughput: serialize/restore cycles on a mid-run core
//     (the state a production cadence would write every few drains),
//     reported as MB/s each way plus the frame size.
//
//  3. WAL replay rate: the whole run replayed record by record against
//     a cold core (the no-valid-checkpoint worst case), reported as
//     records/s.
#include "bench/registry.h"
#include "online/policy.h"
#include "server/checkpoint.h"
#include "sim/engine.h"
#include "sim/fault.h"
#include "util/table.h"

#include <chrono>
#include <utility>
#include <vector>

namespace {

using namespace smerge;
using namespace smerge::sim;

[[nodiscard]] bool same_wait(const util::DelayProfile& a,
                             const util::DelayProfile& b) {
  return a.mean == b.mean && a.p50 == b.p50 && a.p95 == b.p95 &&
         a.p99 == b.p99 && a.max == b.max;
}

[[nodiscard]] bool same_result(const EngineResult& a, const EngineResult& b) {
  return a.total_arrivals == b.total_arrivals &&
         a.total_streams == b.total_streams &&
         a.streams_served == b.streams_served && same_wait(a.wait, b.wait) &&
         a.peak_concurrency == b.peak_concurrency &&
         a.guarantee_violations == b.guarantee_violations &&
         a.capacity_violations == b.capacity_violations &&
         a.total_sessions == b.total_sessions &&
         a.retracted_cost == b.retracted_cost &&
         a.extended_cost == b.extended_cost && a.per_object == b.per_object;
}

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

SMERGE_BENCH(sim_recovery,
             "Crash consistency — kill/recover bit-identity through the "
             "fault harness, checkpoint serialize/restore throughput, and "
             "cold WAL replay rate",
             "ckpt_bytes", "ckpt_write_mb_s", "ckpt_restore_mb_s",
             "wal_records", "wal_replay_records_s", "recovered_identical") {
  bench::BenchResult result;

  bench::BenchSeries& ckpt_bytes_series = result.add_series("ckpt_bytes");
  bench::BenchSeries& write_series = result.add_series("ckpt_write_mb_s");
  bench::BenchSeries& restore_series = result.add_series("ckpt_restore_mb_s");
  bench::BenchSeries& wal_series = result.add_series("wal_records");
  bench::BenchSeries& replay_series =
      result.add_series("wal_replay_records_s");
  bench::BenchSeries& identical_series =
      result.add_series("recovered_identical");

  util::TextTable table({"objects", "arrivals", "identical", "ckpt_bytes",
                         "write MB/s", "restore MB/s", "replay rec/s"});
  const std::vector<Index> catalogue_sizes =
      ctx.quick ? std::vector<Index>{8, 16} : std::vector<Index>{64, 128};
  for (const Index objects : catalogue_sizes) {
    EngineConfig config;
    config.workload.process = ArrivalProcess::kPoisson;
    config.workload.objects = objects;
    config.workload.zipf_exponent = 1.0;
    config.workload.mean_gap = ctx.quick ? 2e-3 : 2e-4;
    config.workload.horizon = ctx.quick ? 4.0 : 20.0;
    config.workload.seed = ctx.seed;
    config.delay = 0.01;
    config.threads = ctx.threads;

    // --- Part 1: kill mid-run, recover, compare with the straight run ------
    GreedyMergePolicy baseline_policy(merging::DyadicParams{},
                                      /*batched=*/true);
    const EngineResult baseline = run_engine(config, baseline_policy);

    FaultPlan plan;
    plan.ingest_chunks = 8;
    plan.checkpoint_every_drains = 2;
    // Lands mid-run for every size this bench uses (each chunk logs one
    // record per active object plus a drain marker).
    plan.crash_at_record = static_cast<std::int64_t>(objects * 3);
    plan.wal_torn_bytes = 7;
    GreedyMergePolicy faulted_policy(merging::DyadicParams{},
                                     /*batched=*/true);
    const FaultRunResult faulted =
        run_engine_with_faults(config, faulted_policy, plan);
    const bool identical = same_result(baseline, faulted.result);
    result.ok = result.ok && faulted.report.crashed &&
                faulted.report.recovery.used_checkpoint &&
                faulted.report.recovery.wal_torn && identical;

    // --- Part 2: checkpoint serialize/restore throughput --------------------
    GreedyMergePolicy ckpt_policy(merging::DyadicParams{}, /*batched=*/true);
    server::ServerCore core(core_config(config), ckpt_policy);
    {
      const std::vector<double> weights =
          zipf_weights(objects, config.workload.zipf_exponent);
      for (Index m = 0; m < objects; ++m) {
        std::vector<double> trace = generate_arrivals(
            config.workload, m, weights[static_cast<std::size_t>(m)]);
        // Half the run in the mailbox-drained state a cadence would see.
        trace.resize(trace.size() / 2);
        core.ingest_trace(m, std::move(trace));
      }
      core.drain();
    }
    const int cycles = ctx.quick ? 3 : 10;
    std::vector<std::uint8_t> frame;
    const auto write_start = std::chrono::steady_clock::now();
    for (int i = 0; i < cycles; ++i) frame = core.checkpoint();
    const double write_ms = ms_since(write_start);
    GreedyMergePolicy restore_policy(merging::DyadicParams{},
                                     /*batched=*/true);
    const auto restore_start = std::chrono::steady_clock::now();
    for (int i = 0; i < cycles; ++i) {
      server::ServerCore restored(core_config(config), restore_policy);
      (void)restored.restore_state({frame.data(), frame.size()});
    }
    const double restore_ms = ms_since(restore_start);
    const double mb =
        static_cast<double>(frame.size()) * static_cast<double>(cycles) / 1e6;
    const double write_mb_s = write_ms > 0.0 ? mb / (write_ms / 1000.0) : 0.0;
    const double restore_mb_s =
        restore_ms > 0.0 ? mb / (restore_ms / 1000.0) : 0.0;
    result.ok = result.ok && !frame.empty();

    // --- Part 3: cold WAL replay rate ---------------------------------------
    server::AdmissionWal wal;
    {
      const std::vector<double> weights =
          zipf_weights(objects, config.workload.zipf_exponent);
      for (Index m = 0; m < objects; ++m) {
        const std::vector<double> trace = generate_arrivals(
            config.workload, m, weights[static_cast<std::size_t>(m)]);
        wal.log_ingest_trace(m, trace);
      }
      wal.log_drain();
    }
    GreedyMergePolicy replay_policy(merging::DyadicParams{},
                                    /*batched=*/true);
    const auto replay_start = std::chrono::steady_clock::now();
    server::RecoveredCore cold = server::recover(
        core_config(config), &replay_policy, {},
        {wal.bytes().data(), wal.bytes().size()});
    const double replay_ms = ms_since(replay_start);
    const double replay_rate =
        replay_ms > 0.0
            ? static_cast<double>(cold.report.wal_records_replayed) /
                  (replay_ms / 1000.0)
            : 0.0;
    result.ok = result.ok && !cold.report.used_checkpoint &&
                cold.report.wal_records_replayed == wal.records();
    cold.core->finish();
    const server::Snapshot cold_snap = cold.core->take_snapshot();
    result.ok =
        result.ok && cold_snap.total_arrivals == baseline.total_arrivals;

    ckpt_bytes_series.values.push_back(static_cast<double>(frame.size()));
    write_series.values.push_back(write_mb_s);
    restore_series.values.push_back(restore_mb_s);
    wal_series.values.push_back(static_cast<double>(wal.records()));
    replay_series.values.push_back(replay_rate);
    identical_series.values.push_back(identical ? 1.0 : 0.0);

    table.add_row(objects, baseline.total_arrivals, identical ? "yes" : "NO",
                  frame.size(), util::format_fixed(write_mb_s, 1),
                  util::format_fixed(restore_mb_s, 1),
                  util::format_fixed(replay_rate, 0));
  }
  result.tables.push_back(std::move(table));

  result.notes.push_back(
      "crash after 3 WAL records per object with a 7-byte torn WAL tail; "
      "recovery must reproduce the uninterrupted snapshot bit for bit");
  return result;
}
