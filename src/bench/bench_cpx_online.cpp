// Complexity bench — per-arrival work of the on-line algorithms (the
// Section-4.2 simplicity argument).
//
// The Delay Guaranteed server answers each arrival from a precomputed
// table (O(1), no decisions); the dyadic server must maintain its stack
// and compute a dyadic subinterval per arrival (O(1) amortized but with
// real work: log/pow and window popping).
#include "bench/registry.h"
#include "bench/timing.h"
#include "merging/dyadic.h"
#include "online/delay_guaranteed.h"
#include "sim/arrivals.h"

namespace {

using smerge::Index;

}  // namespace

SMERGE_BENCH(cpx_online,
             "Complexity — per-arrival work of the on-line algorithms and "
             "DelayGuaranteed setup cost",
             "setup_L", "setup_ns") {
  const double min_ms = ctx.quick ? 1.0 : 20.0;
  smerge::bench::BenchResult result;

  // Per-arrival cost of the two on-line policies.
  {
    const smerge::DelayGuaranteedOnline dg(100);
    const Index horizon = 100'000;
    Index t = 0;
    result.add_metric("dg_arrival_ns",
                      smerge::bench::time_ns_per_call(
                          [&] {
                            (void)dg.stream_length(t, horizon);
                            t = (t + 1) % horizon;
                          },
                          min_ms));
  }
  {
    const std::vector<double> arrivals =
        smerge::sim::poisson_arrivals(0.005, ctx.quick ? 50.0 : 200.0, 1);
    std::size_t i = 0;
    smerge::merging::DyadicMerger merger(1.0, {});
    result.add_metric("dyadic_arrival_ns",
                      smerge::bench::time_ns_per_call(
                          [&] {
                            if (i == arrivals.size()) {
                              // Fresh merger once the trace is exhausted;
                              // the reset cost is amortized over the trace.
                              merger = smerge::merging::DyadicMerger(1.0, {});
                              i = 0;
                            }
                            (void)merger.arrive(arrivals[i++]);
                          },
                          min_ms));
  }

  // Setup cost of the Delay Guaranteed program table in L.
  const std::vector<Index> setup_sizes =
      ctx.quick ? std::vector<Index>{64, 1024}
                : std::vector<Index>{64, 1024, 16384, 65536};
  auto& l_series = result.add_series("setup_L");
  auto& setup_series = result.add_series("setup_ns");
  smerge::util::TextTable table({"L", "DelayGuaranteedOnline setup (ns)"});
  for (const Index L : setup_sizes) {
    const double t = smerge::bench::time_ns_per_call(
        [L] { (void)smerge::DelayGuaranteedOnline(L); }, min_ms);
    l_series.values.push_back(static_cast<double>(L));
    setup_series.values.push_back(t);
    table.add_row(L, t);
  }
  result.tables.push_back(std::move(table));

  {
    const smerge::DelayGuaranteedOnline dg(1000);
    Index n = 1;
    result.add_metric("cost_query_ns",
                      smerge::bench::time_ns_per_call(
                          [&] {
                            (void)dg.cost(n);
                            n = n % 10'000'000 + 1;
                          },
                          min_ms));
  }
  result.add_metric(
      "setup_exponent",
      smerge::bench::fitted_exponent(l_series.values, setup_series.values));
  return result;
}
