// Theorem 13 — F(L,n) = n log_phi(L) + Theta(n) for n > L.
//
// Rows sweep L for a fixed arrival density (n = 64 L); the per-arrival
// cost F/n must track log_phi(L) with a bounded additive offset, and the
// ratio must drift toward 1 as L grows.
#include <cmath>

#include "bench/registry.h"
#include "core/full_cost.h"
#include "util/parallel.h"

namespace {

using namespace smerge;

}  // namespace

SMERGE_BENCH(thm13_full_cost_asymptotics,
             "Theorem 13 — F(L,n) = n log_phi(L) + Theta(n) with n = 64 L",
             "L", "full_cost", "per_arrival", "ratio") {
  const std::vector<Index> media =
      ctx.quick ? std::vector<Index>{8, 55, 377}
                : std::vector<Index>{8, 21, 55, 144, 377, 987, 2584, 6765,
                                     17711};

  std::vector<Cost> costs(media.size());
  util::parallel_for(
      0, static_cast<std::int64_t>(media.size()),
      [&](std::int64_t i) {
        const auto idx = static_cast<std::size_t>(i);
        costs[idx] = full_cost(media[idx], 64 * media[idx]);
      },
      ctx.threads);

  bench::BenchResult result;
  auto& ls = result.add_series("L");
  auto& f_series = result.add_series("full_cost");
  auto& per_series = result.add_series("per_arrival");
  auto& ratio_series = result.add_series("ratio");
  util::TextTable table(
      {"L", "n", "F(L,n)", "F/n", "log_phi L", "F/(n log_phi L)"});
  for (std::size_t i = 0; i < media.size(); ++i) {
    const Index L = media[i];
    const Index n = 64 * L;
    const double per_arrival =
        static_cast<double>(costs[i]) / static_cast<double>(n);
    const double logl = fib::log_phi(static_cast<double>(L));
    result.ok = result.ok && std::abs(per_arrival - logl) < 3.0;
    ls.values.push_back(static_cast<double>(L));
    f_series.values.push_back(static_cast<double>(costs[i]));
    per_series.values.push_back(per_arrival);
    ratio_series.values.push_back(per_arrival / logl);
    table.add_row(L, n, costs[i], per_arrival, logl, per_arrival / logl);
  }
  result.tables.push_back(std::move(table));
  result.notes.push_back(std::string("additive offset |F/n - log_phi L| < 3: ") +
                         (result.ok ? "yes" : "NO"));
  return result;
}
