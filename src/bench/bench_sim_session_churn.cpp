// Session churn — in-place plan repair vs replay-from-scratch.
//
// Part A (plan level): a delay-guaranteed on-line plan over n slots
// takes ~20% session churn (abandons with a sprinkle of seeks). The
// incremental SessionPlan repairs each event along the root path in
// O(depth); the baseline replays the same events with a full O(n)
// recompute per event. Both evaluate identical formulas, so the
// resulting durations must be bit-equal — and the incremental path must
// be >= 10x faster at n = 100k (asserted in full mode).
//
// Part B (engine level): a flash crowd with 20% abandonment runs
// through the full multi-object engine at shard widths 1, 2 and 4; the
// resulting snapshots — occupancy, cost, repair tallies — must be
// identical at every width (the bit-identical-snapshot invariant now
// covering retraction).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "bench/registry.h"
#include "bench/timing.h"
#include "core/plan.h"
#include "core/plan_repair.h"
#include "merging/dyadic.h"
#include "online/delay_guaranteed.h"
#include "online/policy.h"
#include "sim/engine.h"
#include "util/rng.h"

namespace {

using smerge::Index;

struct ChurnEvent {
  bool is_seek = false;
  Index stream = -1;
  double at = 0.0;
};

/// One-shot wall-clock timing: churn application mutates the session,
/// so the repeated-call harness in bench/timing.h does not apply.
double time_once_ms(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

/// ~rate of the streams get one churn event each, seeks making up a
/// fifth of them, at a wall time inside the stream's transmission.
std::vector<ChurnEvent> make_churn(const smerge::plan::MergePlan& plan,
                                   double rate, std::uint64_t seed) {
  smerge::util::SplitMix64 rng(seed);
  std::vector<ChurnEvent> events;
  for (Index i = 0; i < plan.size(); ++i) {
    if (rng.next_double() >= rate) continue;
    ChurnEvent e;
    e.stream = i;
    e.is_seek = rng.next_double() < 0.2;
    const double start = plan.start()[static_cast<std::size_t>(i)];
    const double length = plan.length()[static_cast<std::size_t>(i)];
    e.at = start + rng.next_double() * std::max(length, 1e-9);
    events.push_back(e);
  }
  std::sort(events.begin(), events.end(),
            [](const ChurnEvent& a, const ChurnEvent& b) {
              if (a.at != b.at) return a.at < b.at;
              return a.stream < b.stream;
            });
  return events;
}

}  // namespace

SMERGE_BENCH(sim_session_churn,
             "Session churn — O(depth) in-place plan repair vs the "
             "replay-from-scratch baseline, plus engine-level shard "
             "determinism under a 20% abandonment flash crowd",
             "n", "events", "repair_ms", "replay_ms", "speedup") {
  smerge::bench::BenchResult result;
  auto& n_series = result.add_series("n");
  auto& events_series = result.add_series("events");
  auto& repair_series = result.add_series("repair_ms");
  auto& replay_series = result.add_series("replay_ms");
  auto& speedup_series = result.add_series("speedup");
  smerge::util::TextTable table(
      {"n", "events", "repair (ms)", "replay (ms)", "speedup"});

  const std::vector<Index> sizes = ctx.quick
                                       ? std::vector<Index>{800, 2000}
                                       : std::vector<Index>{20000, 100000};
  for (const Index n : sizes) {
    const Index media = std::min<Index>(n, 4096);
    const smerge::DelayGuaranteedOnline policy(media);
    const smerge::plan::MergePlan base = policy.to_plan(n);
    const std::vector<ChurnEvent> churn = make_churn(
        base, 0.2, static_cast<std::uint64_t>(ctx.seed) ^ 0x5e55'0000u);

    // Incremental: apply every event through the in-place repair.
    smerge::plan::SessionPlan session(base);
    const double repair_ms = time_once_ms([&] {
      for (const ChurnEvent& e : churn) {
        if (e.is_seek) {
          session.seek(e.stream, e.at);
        } else {
          session.abandon(e.stream, e.at);
        }
      }
    });

    // Baseline: replay the same log with a full recompute per event.
    std::vector<double> reference;
    const double replay_ms =
        time_once_ms([&] { reference = session.reference_lengths(); });

    // Same formulas, same order: the durations must be bit-equal.
    const auto lengths = session.lengths();
    bool equal = lengths.size() == reference.size();
    for (std::size_t i = 0; equal && i < reference.size(); ++i) {
      equal = lengths[i] == reference[i];
    }
    result.ok = result.ok && equal;
    if (!equal) result.notes.push_back("repair/replay length mismatch");

    // The repaired plan must still pass the verifier for the survivors.
    const smerge::plan::PlanReport report = smerge::plan::verify(
        session.snapshot(), base.model(), {session.active_mask()});
    result.ok = result.ok && report.ok;
    if (!report.ok) result.notes.push_back(report.first_error);

    const double speedup = repair_ms > 0.0 ? replay_ms / repair_ms : 0.0;
    n_series.values.push_back(static_cast<double>(n));
    events_series.values.push_back(static_cast<double>(churn.size()));
    repair_series.values.push_back(repair_ms);
    replay_series.values.push_back(replay_ms);
    speedup_series.values.push_back(speedup);
    table.add_row(n, static_cast<Index>(churn.size()), repair_ms, replay_ms,
                  speedup);

    if (!ctx.quick && n >= 100000) {
      // Acceptance: in-place repair >= 10x faster than replaying.
      result.ok = result.ok && speedup >= 10.0;
      if (speedup < 10.0) {
        result.notes.push_back("repair speedup below 10x: " +
                               smerge::util::format_fixed(speedup, 2));
      }
      result.add_metric("repair_speedup", speedup);
    }
  }
  result.tables.push_back(std::move(table));

  // Part B: a flash crowd with 20% abandonment through the full engine
  // at shard widths 1, 2 and 4 — every total (occupancy, cost, repair
  // tallies) must be identical at every width.
  smerge::sim::EngineConfig config;
  config.workload.process = smerge::sim::ArrivalProcess::kFlashCrowd;
  config.workload.objects = 16;
  config.workload.mean_gap = ctx.quick ? 0.004 : 0.001;
  config.workload.horizon = ctx.quick ? 6.0 : 12.0;
  config.workload.seed = static_cast<std::uint64_t>(ctx.seed);
  config.workload.burst_start = 1.0;
  config.workload.burst_duration = 1.0;
  config.workload.burst_multiplier = 10.0;
  config.delay = 0.02;
  config.churn = {.abandon_rate = 0.2, .pause_rate = 0.1, .seek_rate = 0.05};
  smerge::util::TextTable engine_table(
      {"shards", "sessions", "abandons", "truncations", "reroots",
       "retracted", "served"});
  std::vector<smerge::sim::EngineResult> runs;
  for (const unsigned threads : {1u, 2u, 4u}) {
    smerge::GreedyMergePolicy policy(smerge::merging::DyadicParams{}, false);
    config.threads = threads;
    runs.push_back(run_engine(config, policy));
    const smerge::sim::EngineResult& r = runs.back();
    engine_table.add_row(static_cast<Index>(threads), r.total_sessions,
                         r.session_abandons, r.plan_truncations,
                         r.plan_reroots, r.retracted_cost, r.streams_served);
  }
  bool identical = true;
  for (std::size_t i = 1; i < runs.size(); ++i) {
    const smerge::sim::EngineResult& a = runs.front();
    const smerge::sim::EngineResult& b = runs[i];
    identical = identical && a.total_arrivals == b.total_arrivals &&
                a.total_streams == b.total_streams &&
                a.streams_served == b.streams_served &&
                a.peak_concurrency == b.peak_concurrency &&
                a.wait.mean == b.wait.mean && a.wait.max == b.wait.max &&
                a.total_sessions == b.total_sessions &&
                a.session_abandons == b.session_abandons &&
                a.plan_truncations == b.plan_truncations &&
                a.plan_reroots == b.plan_reroots &&
                a.retracted_cost == b.retracted_cost &&
                a.extended_cost == b.extended_cost &&
                a.per_object == b.per_object;
  }
  result.ok = result.ok && identical;
  if (!identical) {
    result.notes.push_back("shard widths disagree under churn");
  }
  result.add_metric("shard_identical", identical ? 1.0 : 0.0);
  result.add_metric("engine_retracted_cost", runs.front().retracted_cost);
  result.tables.push_back(std::move(engine_table));
  return result;
}
