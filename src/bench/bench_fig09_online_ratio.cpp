// Fig. 9 — ratio of the on-line Delay Guaranteed bandwidth to the optimal
// off-line bandwidth as the time horizon grows.
//
// The paper's empirical point: the ratio tends to 1 (Theorem 22 gives the
// guarantee 1 + 2L/n). We sweep several media lengths; each row prints
// the exact on-line cost A(L,n), the optimum F(L,n), their ratio and the
// Theorem-22 bound where it applies.
#include "bench/registry.h"
#include "core/full_cost.h"
#include "online/delay_guaranteed.h"
#include "util/parallel.h"

namespace {

using namespace smerge;

}  // namespace

SMERGE_BENCH(fig09_online_ratio,
             "Fig. 9 — on-line / off-line total bandwidth vs horizon for "
             "several media lengths (Theorem-22 bound alongside)",
             "L", "n", "online_cost", "offline_cost", "ratio") {
  const std::vector<Index> media = ctx.quick ? std::vector<Index>{15, 50}
                                             : std::vector<Index>{15, 50, 100};
  const std::vector<Index> horizon_mults =
      ctx.quick ? std::vector<Index>{1, 16, 256}
                : std::vector<Index>{1, 4, 16, 64, 256, 1024, 4096};

  struct Row {
    Index L = 0;
    Index n = 0;
    Cost a = 0;
    Cost f = 0;
  };
  std::vector<Row> rows(media.size() * horizon_mults.size());
  util::parallel_for(
      0, static_cast<std::int64_t>(rows.size()),
      [&](std::int64_t i) {
        const auto idx = static_cast<std::size_t>(i);
        const Index L = media[idx / horizon_mults.size()];
        const Index n = L * horizon_mults[idx % horizon_mults.size()];
        const DelayGuaranteedOnline dg(L);
        rows[idx] = Row{L, n, dg.cost(n), full_cost(L, n)};
      },
      ctx.threads);

  bench::BenchResult result;
  auto& ls = result.add_series("L");
  auto& ns = result.add_series("n");
  auto& on = result.add_series("online_cost");
  auto& off = result.add_series("offline_cost");
  auto& ratios = result.add_series("ratio");
  for (std::size_t m = 0; m < media.size(); ++m) {
    const Index L = media[m];
    const DelayGuaranteedOnline dg(L);
    util::TextTable table(
        {"n (slots)", "A(L,n)", "F(L,n)", "ratio", "1+2L/n bound"});
    for (std::size_t h = 0; h < horizon_mults.size(); ++h) {
      const Row& row = rows[m * horizon_mults.size() + h];
      const double ratio =
          static_cast<double>(row.a) / static_cast<double>(row.f);
      const bool bound_applies = L >= 7 && row.n > L * L + 2;
      if (bound_applies) {
        result.ok = result.ok &&
                    ratio <= DelayGuaranteedOnline::theorem22_bound(L, row.n);
      }
      ls.values.push_back(static_cast<double>(L));
      ns.values.push_back(static_cast<double>(row.n));
      on.values.push_back(static_cast<double>(row.a));
      off.values.push_back(static_cast<double>(row.f));
      ratios.values.push_back(ratio);
      table.add_row(row.n, row.a, row.f, util::format_fixed(ratio, 6),
                    bound_applies
                        ? util::TextTable::cell(
                              DelayGuaranteedOnline::theorem22_bound(L, row.n))
                        : std::string("n/a"));
    }
    result.notes.push_back("L = " + std::to_string(L) +
                           " slots (block size F_h = " +
                           std::to_string(dg.block_size()) + "):");
    result.tables.push_back(std::move(table));
  }
  return result;
}
