// Fig. 9 — ratio of the on-line Delay Guaranteed bandwidth to the optimal
// off-line bandwidth as the time horizon grows.
//
// The paper's empirical point: the ratio tends to 1 (Theorem 22 gives the
// guarantee 1 + 2L/n). We sweep several media lengths; each row prints
// the exact on-line cost A(L,n), the optimum F(L,n), their ratio and the
// Theorem-22 bound where it applies.
#include <cmath>

#include "bench/registry.h"
#include "core/full_cost.h"
#include "online/delay_guaranteed.h"
#include "online/policy.h"
#include "sim/engine.h"
#include "util/parallel.h"

namespace {

using namespace smerge;

/// Simulates DG through the discrete-event engine for media length L
/// (delay 1/L) over `n` slots and returns the bandwidth in streams
/// served — must equal the analytic A(L,n)/L.
double engine_dg_streams(Index L, Index n) {
  sim::EngineConfig config;
  config.workload.process = sim::ArrivalProcess::kConstantRate;
  config.workload.objects = 1;
  config.workload.mean_gap = 0.5 / static_cast<double>(L);  // 2 clients/slot
  config.workload.horizon =
      static_cast<double>(n) / static_cast<double>(L);
  config.delay = 1.0 / static_cast<double>(L);
  DelayGuaranteedPolicy dg;
  return sim::run_engine(config, dg).streams_served;
}

}  // namespace

SMERGE_BENCH(fig09_online_ratio,
             "Fig. 9 — on-line / off-line total bandwidth vs horizon for "
             "several media lengths (Theorem-22 bound alongside)",
             "L", "n", "online_cost", "offline_cost", "ratio") {
  const std::vector<Index> media = ctx.quick ? std::vector<Index>{15, 50}
                                             : std::vector<Index>{15, 50, 100};
  const std::vector<Index> horizon_mults =
      ctx.quick ? std::vector<Index>{1, 16, 256}
                : std::vector<Index>{1, 4, 16, 64, 256, 1024, 4096};

  struct Row {
    Index L = 0;
    Index n = 0;
    Cost a = 0;
    Cost f = 0;
  };
  std::vector<Row> rows(media.size() * horizon_mults.size());
  util::parallel_for(
      0, static_cast<std::int64_t>(rows.size()),
      [&](std::int64_t i) {
        const auto idx = static_cast<std::size_t>(i);
        const Index L = media[idx / horizon_mults.size()];
        const Index n = L * horizon_mults[idx % horizon_mults.size()];
        const DelayGuaranteedOnline dg(L);
        rows[idx] = Row{L, n, dg.cost(n), full_cost(L, n)};
      },
      ctx.threads);

  bench::BenchResult result;
  auto& ls = result.add_series("L");
  auto& ns = result.add_series("n");
  auto& on = result.add_series("online_cost");
  auto& off = result.add_series("offline_cost");
  auto& ratios = result.add_series("ratio");
  for (std::size_t m = 0; m < media.size(); ++m) {
    const Index L = media[m];
    const DelayGuaranteedOnline dg(L);
    util::TextTable table(
        {"n (slots)", "A(L,n)", "F(L,n)", "ratio", "1+2L/n bound"});
    for (std::size_t h = 0; h < horizon_mults.size(); ++h) {
      const Row& row = rows[m * horizon_mults.size() + h];
      const double ratio =
          static_cast<double>(row.a) / static_cast<double>(row.f);
      const bool bound_applies = L >= 7 && row.n > L * L + 2;
      if (bound_applies) {
        result.ok = result.ok &&
                    ratio <= DelayGuaranteedOnline::theorem22_bound(L, row.n);
      }
      ls.values.push_back(static_cast<double>(L));
      ns.values.push_back(static_cast<double>(row.n));
      on.values.push_back(static_cast<double>(row.a));
      off.values.push_back(static_cast<double>(row.f));
      ratios.values.push_back(ratio);
      table.add_row(row.n, row.a, row.f, util::format_fixed(ratio, 6),
                    bound_applies
                        ? util::TextTable::cell(
                              DelayGuaranteedOnline::theorem22_bound(L, row.n))
                        : std::string("n/a"));
    }
    result.notes.push_back("L = " + std::to_string(L) +
                           " slots (block size F_h = " +
                           std::to_string(dg.block_size()) + "):");
    result.tables.push_back(std::move(table));
  }

  // The on-line algorithm as the engine simulates it (a stream per slot,
  // template truncation) must reproduce the analytic cost A(L,n) that
  // the figure is built from. One modest instance keeps this cheap.
  {
    const Index L = media.front();
    const Index n = L * horizon_mults[1];
    const DelayGuaranteedOnline dg(L);
    const double analytic =
        static_cast<double>(dg.cost(n)) / static_cast<double>(L);
    const double simulated = engine_dg_streams(L, n);
    result.add_metric("engine_dg_streams_served", simulated);
    result.ok = result.ok && std::abs(simulated - analytic) <= 1e-6 * analytic;
    result.notes.push_back(
        "engine cross-check at L = " + std::to_string(L) + ", n = " +
        std::to_string(n) + ": simulated " + util::format_fixed(simulated, 6) +
        " vs analytic " + util::format_fixed(analytic, 6) + " streams");
  }
  return result;
}
