#include "bench/runner.h"

#include <chrono>
#include <exception>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>

#include "util/cli.h"
#include "util/json_writer.h"
#include "util/parallel.h"

namespace smerge::bench {

namespace {

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::stringstream stream(text);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

void print_run(const BenchRun& run, std::ostream& os) {
  os << "=== " << run.spec->name << " ===\n"
     << run.spec->description << "\n\n";
  if (!run.error.empty()) {
    os << "ERROR: " << run.error << "\n\n";
    return;
  }
  for (const auto& table : run.result.tables) os << table.to_string() << '\n';
  for (const auto& note : run.result.notes) os << note << '\n';
  os << (run.result.ok ? "ok" : "FAILED") << " ("
     << util::format_fixed(run.elapsed_ms, 1) << " ms)\n\n";
}

}  // namespace

BenchRun run_bench(const BenchSpec& spec, const BenchContext& ctx) {
  BenchRun run;
  run.spec = &spec;
  const auto start = std::chrono::steady_clock::now();
  try {
    run.result = spec.run(ctx);
  } catch (const std::exception& e) {
    run.error = e.what();
  } catch (...) {
    run.error = "unknown exception";
  }
  const auto end = std::chrono::steady_clock::now();
  run.elapsed_ms =
      std::chrono::duration<double, std::milli>(end - start).count();
  return run;
}

std::string to_json(const std::vector<BenchRun>& runs, const BenchContext& ctx) {
  util::JsonWriter w;
  w.begin_object();
  w.key("schema").value("smerge-bench-v1");
  w.key("quick").value(ctx.quick);
  w.key("threads").value(static_cast<std::int64_t>(ctx.threads));
  w.key("seed").value(ctx.seed);
  // Machine context for the comparator: concurrency-sensitive sim_*
  // throughput floors only make sense between runs on comparable
  // hardware, so record what this host offered and whether workers were
  // pinned.
  w.key("hardware_concurrency")
      .value(static_cast<std::int64_t>(std::thread::hardware_concurrency()));
  w.key("pinned").value(ctx.pin);
  w.key("benches").begin_array();
  for (const BenchRun& run : runs) {
    w.begin_object();
    w.key("name").value(run.spec->name);
    w.key("description").value(run.spec->description);
    w.key("ok").value(run.ok());
    w.key("elapsed_ms").value(run.elapsed_ms);
    if (!run.error.empty()) w.key("error").value(run.error);
    w.key("series").begin_object();
    for (const BenchSeries& series : run.result.series) {
      w.key(series.name).begin_array();
      for (const double v : series.values) w.value(v);
      w.end_array();
    }
    w.end_object();
    w.key("metrics").begin_object();
    for (const auto& [name, value] : run.result.metrics) {
      w.key(name).value(value);
    }
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

int run_cli(int argc, const char* const* argv) {
  util::ArgParser parser(
      "smerge_bench — registry-driven benchmark harness reproducing the "
      "paper's figures, tables and theorems");
  parser.add_bool("list", false, "print registered benches and exit");
  parser.add_string("only", "",
                    "comma-separated bench names to run (default: all)");
  parser.add_string("json", "", "write the JSON results document to this path");
  parser.add_int("threads", static_cast<std::int64_t>(util::default_thread_count()),
                 "worker threads for sweep fan-out");
  parser.add_bool("quick", false, "reduced parameters (sub-second smoke run)");
  parser.add_int("seed", static_cast<std::int64_t>(kDefaultBenchSeed),
                 "master RNG seed for the stochastic sim_* benches");
  parser.add_bool("pin", false,
                  "run shard fan-outs on the core-pinned static pool");

  try {
    if (!parser.parse(argc, argv)) {
      std::cout << parser.help();
      return 0;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n' << parser.help();
    return 2;
  }

  const BenchRegistry& registry = BenchRegistry::instance();
  if (parser.get_bool("list")) {
    for (const BenchSpec* spec : registry.all()) {
      std::cout << spec->name << "\n    " << spec->description << '\n';
    }
    std::cout << registry.size() << " benches registered\n";
    return 0;
  }

  std::vector<const BenchSpec*> selected;
  const std::string only = parser.get_string("only");
  if (only.empty()) {
    selected = registry.all();
  } else {
    for (const std::string& name : split_csv(only)) {
      const BenchSpec* spec = registry.find(name);
      if (spec == nullptr) {
        std::cerr << "error: unknown bench '" << name
                  << "' (use --list to see the registry)\n";
        return 2;
      }
      selected.push_back(spec);
    }
    if (selected.empty()) {
      std::cerr << "error: --only='" << only << "' names no benches\n";
      return 2;
    }
  }

  BenchContext ctx;
  ctx.quick = parser.get_bool("quick");
  const std::int64_t threads = parser.get_int("threads");
  if (threads < 1) {
    std::cerr << "error: --threads must be >= 1\n";
    return 2;
  }
  ctx.threads = static_cast<unsigned>(threads);
  const std::int64_t seed = parser.get_int("seed");
  if (seed < 0) {
    std::cerr << "error: --seed must be >= 0\n";
    return 2;
  }
  ctx.seed = static_cast<std::uint64_t>(seed);
  ctx.pin = parser.get_bool("pin");

  std::vector<BenchRun> runs;
  runs.reserve(selected.size());
  bool all_ok = true;
  for (const BenchSpec* spec : selected) {
    runs.push_back(run_bench(*spec, ctx));
    print_run(runs.back(), std::cout);
    all_ok = all_ok && runs.back().ok();
  }

  const std::string json_path = parser.get_string("json");
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "error: cannot open '" << json_path << "' for writing\n";
      return 2;
    }
    out << to_json(runs, ctx);
    std::cout << "wrote " << json_path << '\n';
  }

  std::cout << runs.size() << " benches, "
            << (all_ok ? "all ok" : "FAILURES above") << '\n';
  return all_ok ? 0 : 1;
}

}  // namespace smerge::bench
