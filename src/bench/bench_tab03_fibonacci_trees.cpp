// Figs. 6 and 7 — optimal merge trees.
//
// Fig. 6: the two optimal trees for n = 4 (both of merge cost 6).
// Fig. 7: the unique Fibonacci merge trees for n = 3, 5, 8, 13 with merge
// costs 3, 9, 21, 46, whose right subtree is the tree for F_{k-2} and
// whose remainder is the tree for F_{k-1}.
#include "bench/registry.h"
#include "core/tree_builder.h"
#include "schedule/diagram.h"

namespace {

using namespace smerge;

}  // namespace

SMERGE_BENCH(tab03_fibonacci_trees,
             "Figs. 6/7 — optimal merge trees for n = 4 and the Fibonacci "
             "trees for n = F_k (exhaustive enumeration)",
             "k", "n", "merge_cost", "optimal_trees") {
  bench::BenchResult result;

  // Fig. 6: every optimal tree for n = 4.
  Index optimal_count = 0;
  std::vector<std::string> shapes;
  enumerate_merge_trees(4, [&](const MergeTree& t) {
    if (t.merge_cost() == merge_cost(4)) {
      ++optimal_count;
      shapes.push_back(t.to_string());
    }
  });
  result.add_metric("n4_optimal_trees", static_cast<double>(optimal_count));
  result.ok = result.ok && optimal_count == 2;
  result.notes.push_back("Fig. 6: optimal trees for n = 4 (cost " +
                         std::to_string(merge_cost(4)) + "):");
  for (const std::string& shape : shapes) {
    result.notes.push_back("  " + shape);
  }

  // Fig. 7: the Fibonacci merge trees. Enumeration is exponential in n,
  // so --quick stops at F_6 = 8.
  const std::vector<int> ks =
      ctx.quick ? std::vector<int>{4, 5, 6} : std::vector<int>{4, 5, 6, 7};
  auto& k_series = result.add_series("k");
  auto& n_series = result.add_series("n");
  auto& cost_series = result.add_series("merge_cost");
  auto& count_series = result.add_series("optimal_trees");
  util::TextTable table({"k", "n = F_k", "M(n)", "optimal trees", "structure"});
  for (const int k : ks) {
    const Index n = fib::fibonacci(k);
    Index count = 0;
    enumerate_merge_trees(n, [&](const MergeTree& t) {
      if (t.merge_cost() == merge_cost(n)) ++count;
    });
    k_series.values.push_back(k);
    n_series.values.push_back(static_cast<double>(n));
    cost_series.values.push_back(static_cast<double>(merge_cost(n)));
    count_series.values.push_back(static_cast<double>(count));
    // The paper: the Fibonacci tree is the unique optimal tree at n = F_k.
    result.ok = result.ok && count == 1;
    table.add_row(k, n, merge_cost(n), count, fibonacci_merge_tree(k).to_string());
  }
  result.tables.push_back(std::move(table));
  result.notes.push_back(
      "The largest Fibonacci tree (right subtree = previous-but-one, rest = "
      "previous):\n" +
      render_tree(fibonacci_merge_tree(ks.back())));
  return result;
}
