// Ablation — the Section-5 hybrid server across the load spectrum.
//
// Sweep the Poisson mean gap through the Fig.-11 crossover and print the
// hybrid cost next to the two pure policies plus its mode telemetry. The
// shape: hybrid tracks DG on the dense side, tracks dyadic on the sparse
// side, and pays a bounded switching overhead at the crossover.
#include "bench/registry.h"
#include "sim/arrivals.h"
#include "sim/experiment.h"
#include "sim/hybrid.h"
#include "util/parallel.h"

namespace {

using namespace smerge;
using namespace smerge::sim;

}  // namespace

SMERGE_BENCH(abl_hybrid,
             "Section 5 ablation — hybrid DG/dyadic server vs the two pure "
             "policies across the load spectrum",
             "gap_pct", "dg_streams", "dyadic_streams", "hybrid_streams",
             "mode_switches") {
  const double delay = 0.01;
  const double horizon = ctx.quick ? 15.0 : 60.0;
  const double dg_cost = run_delay_guaranteed(delay, horizon).streams_served;

  const std::vector<double> pcts =
      ctx.quick ? std::vector<double>{0.25, 1.0, 4.0}
                : std::vector<double>{0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0};

  struct Row {
    double dyadic = 0.0;
    HybridOutcome hybrid;
  };
  std::vector<Row> rows(pcts.size());
  util::parallel_for(
      0, static_cast<std::int64_t>(pcts.size()),
      [&](std::int64_t i) {
        const auto idx = static_cast<std::size_t>(i);
        const auto arrivals = poisson_arrivals(pcts[idx] / 100.0, horizon, 9);
        rows[idx].dyadic = run_dyadic(arrivals).streams_served;
        HybridParams params;
        params.delay = delay;
        rows[idx].hybrid = run_hybrid(arrivals, horizon, params);
      },
      ctx.threads);

  bench::BenchResult result;
  auto& gap_series = result.add_series("gap_pct");
  auto& dg_series = result.add_series("dg_streams");
  auto& dyadic_series = result.add_series("dyadic_streams");
  auto& hybrid_series = result.add_series("hybrid_streams");
  auto& switch_series = result.add_series("mode_switches");
  util::TextTable table({"gap (% media)", "DG", "dyadic", "hybrid", "DG slots",
                         "dyadic slots", "switches"});
  for (std::size_t i = 0; i < pcts.size(); ++i) {
    const Row& row = rows[i];
    gap_series.values.push_back(pcts[i]);
    dg_series.values.push_back(dg_cost);
    dyadic_series.values.push_back(row.dyadic);
    hybrid_series.values.push_back(row.hybrid.bandwidth.streams_served);
    switch_series.values.push_back(static_cast<double>(row.hybrid.mode_switches));
    table.add_row(util::format_fixed(pcts[i], 2), dg_cost, row.dyadic,
                  row.hybrid.bandwidth.streams_served, row.hybrid.dg_slots,
                  row.hybrid.dyadic_slots, row.hybrid.mode_switches);
  }
  result.tables.push_back(std::move(table));
  result.notes.push_back("delay = 1% of the media, Poisson arrivals (seed 9)");
  return result;
}
