// Scale — the discrete-event multi-object engine at the ROADMAP's load.
//
// Full mode simulates >= 1M Poisson arrivals over catalogues up to 1000
// Zipf-weighted objects (exponent 1.0, aggregate mean gap 1e-4 of the
// media length over a 100-media horizon) under the greedy dyadic policy,
// immediate and batched. The run asserts the engine's guarantees rather
// than just timing it: batched waits never exceed the configured delay
// (zero guarantee violations), immediate service has zero wait, and
// batching strictly reduces bandwidth when arrivals are denser than the
// delay. All series are deterministic for the seed — identical at any
// --threads — while wall-clock throughput lands in the (timing) metrics.
#include "bench/registry.h"
#include "online/policy.h"
#include "sim/engine.h"
#include "util/table.h"

#include <chrono>

namespace {

using namespace smerge;
using namespace smerge::sim;

constexpr double kDelay = 0.01;

struct ScaleRow {
  Index objects = 0;
  EngineResult immediate;
  EngineResult batched;
  double elapsed_ms = 0.0;
};

EngineConfig scale_config(Index objects, double mean_gap, double horizon,
                          const smerge::bench::BenchContext& ctx) {
  EngineConfig config;
  config.workload.process = ArrivalProcess::kPoisson;
  config.workload.objects = objects;
  config.workload.zipf_exponent = 1.0;
  config.workload.mean_gap = mean_gap;
  config.workload.horizon = horizon;
  config.workload.seed = ctx.seed;  // reproducible from the CLI (--seed)
  config.delay = kDelay;
  config.threads = ctx.threads;
  return config;
}

}  // namespace

SMERGE_BENCH(sim_multi_object_scale,
             "Scale — event-driven engine: ~1M Poisson arrivals over Zipf "
             "catalogues under immediate and batched greedy merging",
             "objects", "arrivals", "immediate_streams_served", "immediate_peak",
             "batched_streams_served", "batched_peak", "batched_p50_wait",
             "batched_p99_wait", "batched_max_wait", "violations") {
  const std::vector<Index> catalogues =
      ctx.quick ? std::vector<Index>{8, 32} : std::vector<Index>{128, 1000};
  const double mean_gap = ctx.quick ? 2e-3 : 1e-4;
  const double horizon = ctx.quick ? 10.0 : 100.0;

  bench::BenchResult result;
  std::vector<ScaleRow> rows;
  rows.reserve(catalogues.size());
  double total_arrivals = 0.0;
  double total_elapsed_ms = 0.0;
  for (const Index objects : catalogues) {
    ScaleRow row;
    row.objects = objects;
    const EngineConfig config = scale_config(objects, mean_gap, horizon, ctx);
    const auto start = std::chrono::steady_clock::now();
    GreedyMergePolicy immediate(merging::DyadicParams{}, /*batched=*/false);
    row.immediate = run_engine(config, immediate);
    GreedyMergePolicy batched(merging::DyadicParams{}, /*batched=*/true);
    row.batched = run_engine(config, batched);
    const auto end = std::chrono::steady_clock::now();
    row.elapsed_ms =
        std::chrono::duration<double, std::milli>(end - start).count();
    total_arrivals += static_cast<double>(row.immediate.total_arrivals) +
                      static_cast<double>(row.batched.total_arrivals);
    total_elapsed_ms += row.elapsed_ms;
    rows.push_back(std::move(row));
  }

  auto& objects_series = result.add_series("objects");
  auto& arrivals_series = result.add_series("arrivals");
  auto& imm_streams = result.add_series("immediate_streams_served");
  auto& imm_peak = result.add_series("immediate_peak");
  auto& bat_streams = result.add_series("batched_streams_served");
  auto& bat_peak = result.add_series("batched_peak");
  auto& bat_p50 = result.add_series("batched_p50_wait");
  auto& bat_p99 = result.add_series("batched_p99_wait");
  auto& bat_max = result.add_series("batched_max_wait");
  auto& violations = result.add_series("violations");
  util::TextTable table({"objects", "arrivals", "immediate streams",
                         "immediate peak", "batched streams", "batched peak",
                         "batched p99 wait", "sim ms"});
  for (const ScaleRow& row : rows) {
    const EngineResult& imm = row.immediate;
    const EngineResult& bat = row.batched;
    // The guarantees under test: immediate service waits nothing, the
    // batched variant always starts within the delay, and batching pays
    // off when arrivals are denser than the delay.
    result.ok = result.ok && imm.wait.max == 0.0 &&
                imm.guarantee_violations == 0 && bat.guarantee_violations == 0 &&
                !violates_guarantee(bat.wait.max, kDelay) &&
                bat.streams_served < imm.streams_served;
    objects_series.values.push_back(static_cast<double>(row.objects));
    arrivals_series.values.push_back(static_cast<double>(imm.total_arrivals));
    imm_streams.values.push_back(imm.streams_served);
    imm_peak.values.push_back(static_cast<double>(imm.peak_concurrency));
    bat_streams.values.push_back(bat.streams_served);
    bat_peak.values.push_back(static_cast<double>(bat.peak_concurrency));
    bat_p50.values.push_back(bat.wait.p50);
    bat_p99.values.push_back(bat.wait.p99);
    bat_max.values.push_back(bat.wait.max);
    violations.values.push_back(static_cast<double>(
        imm.guarantee_violations + bat.guarantee_violations));
    table.add_row(row.objects, imm.total_arrivals, imm.streams_served,
                  imm.peak_concurrency, bat.streams_served, bat.peak_concurrency,
                  util::format_fixed(bat.wait.p99, 6),
                  util::format_fixed(row.elapsed_ms, 1));
  }
  result.tables.push_back(std::move(table));
  result.add_metric("arrivals_total", total_arrivals);
  result.add_metric("sim_elapsed_ms", total_elapsed_ms);
  result.add_metric("throughput_arrivals_per_sec",
                    total_elapsed_ms > 0.0
                        ? total_arrivals / (total_elapsed_ms / 1000.0)
                        : 0.0);
  result.notes.push_back(
      "aggregate mean gap " + util::format_fixed(mean_gap, 6) + ", horizon " +
      util::format_fixed(horizon, 0) + " media, delay 1% — " +
      util::format_fixed(total_arrivals, 0) + " arrivals simulated in " +
      util::format_fixed(total_elapsed_ms, 0) + " ms");
  return result;
}
