#include "bench/registry.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

namespace smerge::bench {

BenchSeries& BenchResult::add_series(std::string name) {
  series.emplace_back(BenchSeries{std::move(name), {}});
  return series.back();
}

void BenchResult::add_metric(std::string name, double value) {
  metrics.emplace_back(std::move(name), value);
}

BenchRegistry& BenchRegistry::instance() {
  static BenchRegistry registry;
  return registry;
}

bool BenchRegistry::add(BenchSpec spec) {
  // Registration runs during static initialization, before main; abort
  // with a plain message instead of throwing through a dynamic
  // initializer (which would terminate without context).
  if (spec.name.empty() || !spec.run) {
    std::fprintf(stderr, "BenchRegistry: empty name or missing run function\n");
    std::abort();
  }
  const auto [it, inserted] = specs_.emplace(spec.name, std::move(spec));
  if (!inserted) {
    std::fprintf(stderr, "BenchRegistry: duplicate bench '%s'\n",
                 it->first.c_str());
    std::abort();
  }
  return true;
}

std::vector<const BenchSpec*> BenchRegistry::all() const {
  std::vector<const BenchSpec*> out;
  out.reserve(specs_.size());
  for (const auto& [name, spec] : specs_) out.push_back(&spec);
  return out;
}

const BenchSpec* BenchRegistry::find(const std::string& name) const {
  const auto it = specs_.find(name);
  return it == specs_.end() ? nullptr : &it->second;
}

}  // namespace smerge::bench
