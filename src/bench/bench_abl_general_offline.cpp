// Ablation — on-line heuristics vs the general-arrivals off-line optimum.
//
// The [6] baseline (banded interval DP, src/merging/optimal_general)
// lower-bounds every policy on a given trace. Rows sweep the Poisson
// intensity at the Fig.-11 operating point and print the competitive
// ratios of immediate dyadic, batched dyadic, and the off-line optimum
// applied to the *batched* starts (the fair delay-respecting reference
// for the Delay Guaranteed algorithm).
#include "bench/registry.h"
#include "merging/batching.h"
#include "merging/optimal_general.h"
#include "sim/arrivals.h"
#include "sim/experiment.h"
#include "util/parallel.h"

namespace {

using namespace smerge;
using namespace smerge::sim;

}  // namespace

SMERGE_BENCH(abl_general_offline,
             "Ablation — dyadic and Delay Guaranteed vs the [6] "
             "general-arrivals off-line optimum (banded DP)",
             "gap_pct", "clients", "opt_immediate", "dyadic_ratio",
             "opt_batched", "batched_ratio", "dg_ratio") {
  const double delay = 0.01;
  // The horizon bounds trace length, not solver reach (the banded DP
  // handles orders of magnitude more; see cpx_general_scaling).
  const double horizon = ctx.quick ? 4.0 : 8.0;
  const double dg = run_delay_guaranteed(delay, horizon).streams_served;

  const std::vector<double> pcts = ctx.quick
                                       ? std::vector<double>{0.8, 3.2}
                                       : std::vector<double>{0.4, 0.8, 1.6, 3.2};

  struct Row {
    double clients = 0.0;
    double opt = 0.0;
    double dyadic = 0.0;
    double opt_batched = 0.0;
    double dyadic_batched = 0.0;
  };
  std::vector<Row> rows(pcts.size());
  util::parallel_for(
      0, static_cast<std::int64_t>(pcts.size()),
      [&](std::int64_t i) {
        const auto idx = static_cast<std::size_t>(i);
        const auto arrivals = poisson_arrivals(pcts[idx] / 100.0, horizon, 77);
        rows[idx].clients = static_cast<double>(arrivals.size());
        rows[idx].opt = merging::optimal_general_cost(arrivals, 1.0);
        rows[idx].dyadic = run_dyadic(arrivals).streams_served;
        const auto starts = merging::batch_arrivals(arrivals, delay);
        rows[idx].opt_batched = merging::optimal_general_cost(starts, 1.0);
        rows[idx].dyadic_batched =
            run_batched_dyadic(arrivals, delay).streams_served;
      },
      ctx.threads);

  bench::BenchResult result;
  auto& gap_series = result.add_series("gap_pct");
  auto& clients_series = result.add_series("clients");
  auto& opt_series = result.add_series("opt_immediate");
  auto& dyadic_ratio_series = result.add_series("dyadic_ratio");
  auto& opt_batched_series = result.add_series("opt_batched");
  auto& batched_ratio_series = result.add_series("batched_ratio");
  auto& dg_ratio_series = result.add_series("dg_ratio");
  util::TextTable table({"gap (% media)", "clients", "OPT immediate",
                         "dyadic/OPT", "OPT batched", "batched dyadic/OPT",
                         "DG/OPT batched"});
  for (std::size_t i = 0; i < pcts.size(); ++i) {
    const Row& row = rows[i];
    // Heuristics can never beat the off-line optimum on the same input.
    result.ok = result.ok && row.dyadic >= row.opt - 1e-9 &&
                row.dyadic_batched >= row.opt_batched - 1e-9;
    gap_series.values.push_back(pcts[i]);
    clients_series.values.push_back(row.clients);
    opt_series.values.push_back(row.opt);
    dyadic_ratio_series.values.push_back(row.dyadic / row.opt);
    opt_batched_series.values.push_back(row.opt_batched);
    batched_ratio_series.values.push_back(row.dyadic_batched / row.opt_batched);
    dg_ratio_series.values.push_back(dg / row.opt_batched);
    table.add_row(util::format_fixed(pcts[i], 2),
                  static_cast<std::int64_t>(row.clients), row.opt,
                  row.dyadic / row.opt, row.opt_batched,
                  row.dyadic_batched / row.opt_batched, dg / row.opt_batched);
  }
  result.tables.push_back(std::move(table));
  result.notes.push_back(
      "(the dyadic heuristic stays within a few percent of the off-line "
      "optimum, matching the comparison study cited in Section 4.2)");
  return result;
}
