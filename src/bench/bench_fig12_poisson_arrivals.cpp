// Fig. 12 — immediate-service dyadic vs batched dyadic vs on-line Delay
// Guaranteed under Poisson arrivals.
//
// Same setup as Fig. 11 but with Poisson arrivals of mean inter-arrival
// gap lambda, and beta = 0.5 (Section 4.2 found 0.5 best under the
// variance of Poisson gaps). Results average three seeds. The paper's
// extra observation: DG fares slightly worse relative to the dyadic
// algorithms than in the constant-rate case, because gap variance leaves
// some slots empty even when the mean gap is below the delay.
#include "bench/registry.h"
#include "sim/arrivals.h"
#include "sim/experiment.h"
#include "util/parallel.h"
#include "util/stats.h"

namespace {

using namespace smerge;
using namespace smerge::sim;

constexpr std::uint64_t kSeeds[] = {11u, 23u, 47u};

}  // namespace

SMERGE_BENCH(fig12_poisson_arrivals,
             "Fig. 12 — dyadic (immediate/batched) vs Delay Guaranteed under "
             "Poisson arrivals, delay 1%, 3 seeds per point",
             "lambda_pct", "mean_clients", "dyadic_immediate", "dyadic_batched",
             "delay_guaranteed") {
  const double delay = 0.01;
  const double horizon = ctx.quick ? 20.0 : 100.0;
  const double dg = run_delay_guaranteed(delay, horizon).streams_served;
  const merging::DyadicParams params;  // alpha = phi, beta = 0.5

  const std::vector<double> pcts =
      ctx.quick ? std::vector<double>{0.1, 1.0, 5.0}
                : std::vector<double>{0.05, 0.1, 0.2, 0.4, 0.6, 0.8,
                                      1.0,  1.5, 2.0, 3.0, 4.0, 5.0};

  // Fan out over (gap, seed) pairs: the per-seed simulations are the
  // expensive part and are fully independent.
  constexpr std::size_t kReps = std::size(kSeeds);
  struct Cell {
    double clients = 0.0;
    double immediate = 0.0;
    double batched = 0.0;
  };
  std::vector<Cell> cells(pcts.size() * kReps);
  util::parallel_for(
      0, static_cast<std::int64_t>(cells.size()),
      [&](std::int64_t i) {
        const auto idx = static_cast<std::size_t>(i);
        const double gap = pcts[idx / kReps] / 100.0;
        const std::uint64_t seed = kSeeds[idx % kReps];
        const auto arrivals = poisson_arrivals(gap, horizon, seed);
        cells[idx].clients = static_cast<double>(arrivals.size());
        cells[idx].immediate = run_dyadic(arrivals, params).streams_served;
        cells[idx].batched =
            run_batched_dyadic(arrivals, delay, params).streams_served;
      },
      ctx.threads);

  bench::BenchResult result;
  auto& lambda = result.add_series("lambda_pct");
  auto& clients_series = result.add_series("mean_clients");
  auto& immediate_series = result.add_series("dyadic_immediate");
  auto& batched_series = result.add_series("dyadic_batched");
  auto& dg_series = result.add_series("delay_guaranteed");
  util::TextTable table({"lambda (% media)", "mean clients", "dyadic immediate",
                         "dyadic batched", "delay guaranteed"});
  for (std::size_t i = 0; i < pcts.size(); ++i) {
    util::RunningStats clients;
    util::RunningStats immediate;
    util::RunningStats batched;
    for (std::size_t r = 0; r < kReps; ++r) {
      const Cell& cell = cells[i * kReps + r];
      clients.add(cell.clients);
      immediate.add(cell.immediate);
      batched.add(cell.batched);
    }
    lambda.values.push_back(pcts[i]);
    clients_series.values.push_back(clients.mean());
    immediate_series.values.push_back(immediate.mean());
    batched_series.values.push_back(batched.mean());
    dg_series.values.push_back(dg);
    table.add_row(util::format_fixed(pcts[i], 2), clients.mean(),
                  immediate.mean(), batched.mean(), dg);
  }
  result.tables.push_back(std::move(table));
  result.notes.push_back("dyadic: alpha = phi, beta = 0.5; " +
                         std::to_string(kReps) + " seeds per row");
  return result;
}
