// Fig. 12 — immediate-service dyadic vs batched dyadic vs on-line Delay
// Guaranteed under Poisson arrivals, driven by the discrete-event engine.
//
// Same setup as Fig. 11 but with Poisson arrivals of mean inter-arrival
// gap lambda, and beta = 0.5 (Section 4.2 found 0.5 best under the
// variance of Poisson gaps). Results average three seeds. The paper's
// extra observation: DG fares slightly worse relative to the dyadic
// algorithms than in the constant-rate case, because gap variance leaves
// some slots empty even when the mean gap is below the delay.
//
// Each (gap, seed) cell is an engine run (one object, Poisson workload
// from the splittable RNG) cross-checked against the legacy
// sim/experiment runners on the identical trace.
#include <cmath>

#include "bench/registry.h"
#include "online/policy.h"
#include "sim/engine.h"
#include "sim/experiment.h"
#include "util/parallel.h"
#include "util/stats.h"

namespace {

using namespace smerge;
using namespace smerge::sim;

constexpr std::uint64_t kSeeds[] = {11u, 23u, 47u};

}  // namespace

SMERGE_BENCH(fig12_poisson_arrivals,
             "Fig. 12 — dyadic (immediate/batched) vs Delay Guaranteed under "
             "Poisson arrivals, delay 1%, 3 seeds per point (engine-backed)",
             "lambda_pct", "mean_clients", "dyadic_immediate", "dyadic_batched",
             "delay_guaranteed", "batched_p99_wait") {
  const double delay = 0.01;
  const double horizon = ctx.quick ? 20.0 : 100.0;
  const double dg = run_delay_guaranteed(delay, horizon).streams_served;
  const merging::DyadicParams params;  // alpha = phi, beta = 0.5

  const std::vector<double> pcts =
      ctx.quick ? std::vector<double>{0.1, 1.0, 5.0}
                : std::vector<double>{0.05, 0.1, 0.2, 0.4, 0.6, 0.8,
                                      1.0,  1.5, 2.0, 3.0, 4.0, 5.0};

  // Fan out over (gap, seed) pairs: the per-seed simulations are the
  // expensive part and are fully independent.
  constexpr std::size_t kReps = std::size(kSeeds);
  struct Cell {
    double clients = 0.0;
    double immediate = 0.0;
    double batched = 0.0;
    double batched_p99 = 0.0;
    bool ok = true;
  };
  std::vector<Cell> cells(pcts.size() * kReps);
  util::parallel_for(
      0, static_cast<std::int64_t>(cells.size()),
      [&](std::int64_t i) {
        const auto idx = static_cast<std::size_t>(i);
        EngineConfig config;
        config.workload.process = ArrivalProcess::kPoisson;
        config.workload.objects = 1;
        config.workload.mean_gap = pcts[idx / kReps] / 100.0;
        config.workload.horizon = horizon;
        config.workload.seed = kSeeds[idx % kReps];
        config.delay = delay;

        GreedyMergePolicy immediate(params, /*batched=*/false);
        GreedyMergePolicy batched(params, /*batched=*/true);
        const EngineResult imm = run_engine(config, immediate);
        const EngineResult bat = run_engine(config, batched);

        Cell& cell = cells[idx];
        cell.clients = static_cast<double>(imm.total_arrivals);
        cell.immediate = imm.streams_served;
        cell.batched = bat.streams_served;
        cell.batched_p99 = bat.wait.p99;

        const auto arrivals = generate_arrivals(config.workload, 0);
        const double legacy_imm = run_dyadic(arrivals, params).streams_served;
        const double legacy_bat =
            run_batched_dyadic(arrivals, delay, params).streams_served;
        cell.ok = std::abs(cell.immediate - legacy_imm) <= 1e-9 * legacy_imm &&
                  std::abs(cell.batched - legacy_bat) <= 1e-9 * legacy_bat &&
                  imm.guarantee_violations == 0 && bat.guarantee_violations == 0;
      },
      ctx.threads);

  bench::BenchResult result;
  auto& lambda = result.add_series("lambda_pct");
  auto& clients_series = result.add_series("mean_clients");
  auto& immediate_series = result.add_series("dyadic_immediate");
  auto& batched_series = result.add_series("dyadic_batched");
  auto& dg_series = result.add_series("delay_guaranteed");
  auto& p99_series = result.add_series("batched_p99_wait");
  util::TextTable table({"lambda (% media)", "mean clients", "dyadic immediate",
                         "dyadic batched", "delay guaranteed",
                         "batched p99 wait"});
  for (std::size_t i = 0; i < pcts.size(); ++i) {
    util::RunningStats clients;
    util::RunningStats immediate;
    util::RunningStats batched;
    util::RunningStats batched_p99;
    for (std::size_t r = 0; r < kReps; ++r) {
      const Cell& cell = cells[i * kReps + r];
      result.ok = result.ok && cell.ok;
      clients.add(cell.clients);
      immediate.add(cell.immediate);
      batched.add(cell.batched);
      batched_p99.add(cell.batched_p99);
    }
    lambda.values.push_back(pcts[i]);
    clients_series.values.push_back(clients.mean());
    immediate_series.values.push_back(immediate.mean());
    batched_series.values.push_back(batched.mean());
    dg_series.values.push_back(dg);
    p99_series.values.push_back(batched_p99.mean());
    table.add_row(util::format_fixed(pcts[i], 2), clients.mean(),
                  immediate.mean(), batched.mean(), dg,
                  util::format_fixed(batched_p99.mean(), 6));
  }
  result.tables.push_back(std::move(table));
  result.notes.push_back("dyadic: alpha = phi, beta = 0.5; " +
                         std::to_string(kReps) +
                         " seeds per row; engine runs cross-checked against "
                         "sim/experiment");
  return result;
}
