// Section 3.1 / 3.4 in-text tables — M(n) and Mw(n) for n = 1..16.
//
// Columns: the Eq.-5/Eq.-19 dynamic program, the Fibonacci/power-of-two
// closed forms (Eq. 6 / Eq. 20), and the cost of the constructed optimal
// tree. The paper's rows are reproduced exactly:
//   M(n):  0 1 3 6 9 13 17 21 26 31 36 41 46 52 58 64
//   Mw(n): 0 1 3 5 8 11 14 17 21 25 29 33 37 41 45 49
#include "bench/registry.h"
#include "core/tree_builder.h"

namespace {

using namespace smerge;

}  // namespace

SMERGE_BENCH(tab01_merge_cost,
             "Sections 3.1/3.4 tables — optimal merge costs M(n), Mw(n) for "
             "n = 1..16 (DP vs closed form vs constructed tree)",
             "n", "merge_cost", "merge_cost_receive_all") {
  const Index n_max = ctx.quick ? 8 : 16;
  const auto dp_two = merge_cost_table_dp(n_max, Model::kReceiveTwo);
  const auto dp_all = merge_cost_table_dp(n_max, Model::kReceiveAll);

  bench::BenchResult result;
  auto& ns = result.add_series("n");
  auto& m = result.add_series("merge_cost");
  auto& mw = result.add_series("merge_cost_receive_all");
  util::TextTable table({"n", "M(n) DP", "M(n) Eq.6", "M(n) tree", "Mw(n) DP",
                         "Mw(n) Eq.20", "Mw(n) tree"});
  for (Index n = 1; n <= n_max; ++n) {
    const Cost m_dp = dp_two[static_cast<std::size_t>(n)];
    const Cost m_cf = merge_cost(n);
    const Cost m_tree = optimal_merge_tree(n).merge_cost();
    const Cost w_dp = dp_all[static_cast<std::size_t>(n)];
    const Cost w_cf = merge_cost_receive_all(n);
    const Cost w_tree =
        optimal_merge_tree(n, Model::kReceiveAll).merge_cost(Model::kReceiveAll);
    result.ok = result.ok && m_dp == m_cf && m_cf == m_tree && w_dp == w_cf &&
                w_cf == w_tree;
    ns.values.push_back(static_cast<double>(n));
    m.values.push_back(static_cast<double>(m_cf));
    mw.values.push_back(static_cast<double>(w_cf));
    table.add_row(n, m_dp, m_cf, m_tree, w_dp, w_cf, w_tree);
  }
  result.tables.push_back(std::move(table));
  result.notes.push_back(std::string("all columns agree: ") +
                         (result.ok ? "yes" : "NO"));
  return result;
}
