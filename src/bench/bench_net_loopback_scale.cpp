// Network front end — aggregate admission throughput and client-observed
// ticket latency over loopback (ROADMAP item 1).
//
// The same Poisson/Zipf catalogue the hotpath bench drives in-process is
// here sent over TCP: N client threads (one connection each, objects
// partitioned round-robin, per-connection streams merged into
// nondecreasing time order) batch ADMIT records at the socket, the
// NetServer's reactors decode and post() into the per-shard MPSC
// mailboxes, and a timerfd-cadenced driver drains. Reported per
// connection count:
//
//  * aggregate admissions/s (wall clock from first send to last ticket
//    — the closed-loop wire rate, which on a single-core host is
//    server+clients sharing one CPU, so the recorded numbers are
//    floor-of-the-floor; the >= 1M admissions/s target is a multi-core
//    loopback run), and
//  * client-observed p50/p95/p99 ticket latency in ns (admit() call to
//    TICKET decode; dominated by the drain cadence by design — tickets
//    certify a completed drain).
//
// Asserted invariants (never wall-clock):
//  * every wire run's FINISHED digest equals the serial ingest_trace
//    baseline's snapshot_digest — same workload, same results, whether
//    arrivals came over the wire or in-process;
//  * the full snapshot matches field-by-field at shard widths 1, 2 and
//    4 (the acceptance identity for the wire path);
//  * every client's ticket count equals its admit count.
#include "bench/registry.h"
#include "net/client.h"
#include "net/server.h"
#include "online/policy.h"
#include "server/wire.h"
#include "sim/engine.h"
#include "util/parallel.h"
#include "util/table.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace {

using namespace smerge;
using namespace smerge::sim;

constexpr double kDelay = 0.01;

EngineConfig loopback_config(const bench::BenchContext& ctx) {
  EngineConfig config;
  config.workload.process = ArrivalProcess::kPoisson;
  config.workload.objects = ctx.quick ? 32 : 256;
  config.workload.zipf_exponent = 1.0;
  // Quick: ~40k aggregate arrivals — enough wire traffic to dwarf
  // connection setup, small enough for the CI soak. Full: ~1M.
  config.workload.mean_gap = ctx.quick ? 2.5e-4 : 4e-5;
  config.workload.horizon = ctx.quick ? 10.0 : 40.0;
  config.workload.seed = ctx.seed;
  config.delay = kDelay;
  return config;
}

std::vector<std::vector<double>> make_traces(const EngineConfig& config,
                                             unsigned threads) {
  const std::vector<double> weights =
      zipf_weights(config.workload.objects, config.workload.zipf_exponent);
  const auto n = static_cast<std::size_t>(config.workload.objects);
  std::vector<std::vector<double>> traces(n);
  util::parallel_for(
      0, static_cast<std::int64_t>(n),
      [&](std::int64_t i) {
        traces[static_cast<std::size_t>(i)] = generate_arrivals(
            config.workload, static_cast<Index>(i),
            weights[static_cast<std::size_t>(i)]);
      },
      threads);
  return traces;
}

bool snapshots_match(const server::Snapshot& a, const server::Snapshot& b) {
  return a.total_arrivals == b.total_arrivals &&
         a.total_streams == b.total_streams &&
         a.streams_served == b.streams_served &&
         a.peak_concurrency == b.peak_concurrency &&
         a.guarantee_violations == b.guarantee_violations &&
         a.wait.mean == b.wait.mean && a.wait.max == b.wait.max &&
         a.wait.p50 == b.wait.p50 && a.wait.p95 == b.wait.p95 &&
         a.wait.p99 == b.wait.p99 && a.per_object == b.per_object;
}

/// One connection's send order: its objects' traces merged to
/// nondecreasing time (stable, so each object keeps its arrival order —
/// the wire contract and the core's per-object contract in one move).
std::vector<std::pair<double, Index>> merged_sends(
    const std::vector<std::vector<double>>& traces, std::size_t client,
    std::size_t clients) {
  std::vector<std::pair<double, Index>> sends;
  for (std::size_t m = client; m < traces.size(); m += clients) {
    for (const double t : traces[m]) sends.emplace_back(t, static_cast<Index>(m));
  }
  std::stable_sort(sends.begin(), sends.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  return sends;
}

struct ClientOutcome {
  std::uint64_t sent = 0;
  std::uint64_t ticketed = 0;
  std::vector<double> latencies_ns;
};

/// Closed-loop client: at most `window` admissions outstanding, ticket
/// latency sampled admit()-call to TICKET-decode.
ClientOutcome run_client(const std::string& host, std::uint16_t port,
                         const std::vector<std::pair<double, Index>>& sends) {
  using clock = std::chrono::steady_clock;
  constexpr std::uint64_t kWindow = 8192;
  ClientOutcome out;
  out.latencies_ns.reserve(sends.size());
  std::vector<clock::time_point> sent_at(sends.size());
  net::BlockingClient client;
  client.connect(host, port);
  std::uint64_t acked = 0;
  const auto on_ticket = [&](const net::TicketReply& reply) {
    const auto idx = static_cast<std::size_t>(reply.request_id - 1);
    out.latencies_ns.push_back(
        std::chrono::duration<double, std::nano>(clock::now() - sent_at[idx])
            .count());
    ++out.ticketed;
  };
  for (const auto& [time, object] : sends) {
    while (out.sent - acked >= kWindow) {
      client.flush();
      acked += client.poll_tickets(on_ticket, true);
    }
    const std::uint64_t id = client.admit(object, time);
    sent_at[static_cast<std::size_t>(id - 1)] = clock::now();
    ++out.sent;
  }
  client.flush();
  while (acked < out.sent) acked += client.poll_tickets(on_ticket, true);
  client.close();
  return out;
}

double percentile_ns(std::vector<double>& values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(values.size() - 1));
  return values[rank];
}

struct WireRun {
  std::uint64_t admissions = 0;
  double elapsed_s = 0.0;
  double p50_ns = 0.0, p95_ns = 0.0, p99_ns = 0.0;
  bool tickets_complete = true;
  bool snapshot_matches = false;
  server::WireSummary summary;
};

WireRun run_wire(const EngineConfig& config,
                 const std::vector<std::vector<double>>& traces,
                 unsigned clients, unsigned shards, unsigned reactors,
                 const server::Snapshot& reference) {
  BatchingPolicy policy;
  auto core_cfg = core_config(config);
  core_cfg.shards = shards;
  net::NetServerConfig net_cfg;
  net_cfg.reactors = reactors;
  net_cfg.drain_interval_us = 200;
  net::NetServer server(net_cfg, core_cfg, policy);
  server.start();

  std::vector<std::vector<std::pair<double, Index>>> sends(clients);
  for (unsigned c = 0; c < clients; ++c) {
    sends[c] = merged_sends(traces, c, clients);
  }
  std::vector<ClientOutcome> outcomes(clients);
  const auto start = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (unsigned c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        outcomes[c] = run_client(net_cfg.host, server.port(), sends[c]);
      });
    }
    for (auto& t : threads) t.join();
  }
  const auto end = std::chrono::steady_clock::now();

  WireRun run;
  run.elapsed_s = std::chrono::duration<double>(end - start).count();
  std::vector<double> all_latencies;
  for (const ClientOutcome& o : outcomes) {
    run.admissions += o.sent;
    run.tickets_complete = run.tickets_complete && o.ticketed == o.sent;
    all_latencies.insert(all_latencies.end(), o.latencies_ns.begin(),
                         o.latencies_ns.end());
  }
  run.p50_ns = percentile_ns(all_latencies, 0.50);
  run.p95_ns = percentile_ns(all_latencies, 0.95);
  run.p99_ns = percentile_ns(all_latencies, 0.99);

  // Certify the run: one control connection drives the FINISH handshake
  // after every producer quiesced (all tickets collected above).
  net::BlockingClient control;
  control.connect(net_cfg.host, server.port());
  run.summary = control.finish();
  control.close();
  server.wait_finished(std::chrono::seconds(30));
  run.snapshot_matches = snapshots_match(server.snapshot(), reference);
  server.stop();
  return run;
}

}  // namespace

SMERGE_BENCH(net_loopback_scale,
             "Wire ingest over loopback: admissions/s + ticket latency per "
             "connection count; FINISHED digest vs trace-fed baseline at "
             "shard widths 1/2/4",
             "connections", "admissions", "admissions_per_s", "ticket_p50_ns",
             "ticket_p95_ns", "ticket_p99_ns") {
  bench::BenchResult result;
  const EngineConfig config = loopback_config(ctx);
  const auto traces = make_traces(config, ctx.threads);

  // Serial trace-fed reference: the digest every wire run must hit.
  BatchingPolicy baseline_policy;
  auto baseline_cfg = core_config(config);
  baseline_cfg.shards = 2;
  server::ServerCore baseline(baseline_cfg, baseline_policy);
  for (std::size_t m = 0; m < traces.size(); ++m) {
    baseline.ingest_trace(static_cast<Index>(m),
                          std::vector<double>(traces[m]));
  }
  baseline.finish();
  server::Snapshot reference = baseline.take_snapshot();
  const std::uint64_t reference_digest = server::snapshot_digest(reference);

  const std::vector<unsigned> conn_sweep =
      ctx.quick ? std::vector<unsigned>{1, 2} : std::vector<unsigned>{1, 2, 4, 8};

  auto& s_conns = result.add_series("connections");
  auto& s_admissions = result.add_series("admissions");
  auto& s_rate = result.add_series("admissions_per_s");
  auto& s_p50 = result.add_series("ticket_p50_ns");
  auto& s_p95 = result.add_series("ticket_p95_ns");
  auto& s_p99 = result.add_series("ticket_p99_ns");

  util::TextTable table({"connections", "admissions", "admissions/s",
                         "ticket p50 ms", "ticket p99 ms", "digest ok"});
  // Closed-loop throughput over loopback is scheduler-noise-dominated on
  // shared hosts (single runs swing >20% on a 1-core box), so each
  // connection count reports its best of kReps runs; every rep must still
  // hash to the trace-fed reference.
  constexpr int kReps = 3;
  double best_rate = 0.0;
  for (const unsigned clients : conn_sweep) {
    const unsigned reactors = std::min(clients, 2u);
    WireRun run{};
    double rate = -1.0;
    bool digest_ok = true;
    for (int rep = 0; rep < kReps; ++rep) {
      WireRun attempt =
          run_wire(config, traces, clients, 2, reactors, reference);
      digest_ok = digest_ok && attempt.summary.ok &&
                  attempt.summary.digest == reference_digest &&
                  attempt.tickets_complete && attempt.snapshot_matches;
      const double attempt_rate =
          attempt.elapsed_s > 0.0
              ? static_cast<double>(attempt.admissions) / attempt.elapsed_s
              : 0.0;
      if (attempt_rate > rate) {
        rate = attempt_rate;
        run = std::move(attempt);
      }
    }
    best_rate = std::max(best_rate, rate);
    result.ok = result.ok && digest_ok;
    s_conns.values.push_back(clients);
    s_admissions.values.push_back(static_cast<double>(run.admissions));
    s_rate.values.push_back(rate);
    s_p50.values.push_back(run.p50_ns);
    s_p95.values.push_back(run.p95_ns);
    s_p99.values.push_back(run.p99_ns);
    table.add_row(std::to_string(clients), std::to_string(run.admissions),
                  util::format_fixed(rate, 0),
                  util::format_fixed(run.p50_ns / 1e6, 3),
                  util::format_fixed(run.p99_ns / 1e6, 3),
                  digest_ok ? "yes" : "NO");
  }
  result.tables.push_back(std::move(table));

  // Shard-width identity: wire-fed results are a pure function of each
  // object's arrival sequence — widths 1, 2 and 4 all hash to the
  // trace-fed reference.
  for (const unsigned shards : {1u, 2u, 4u}) {
    WireRun run = run_wire(config, traces, 2, shards, 2, reference);
    const bool identical = run.summary.ok &&
                           run.summary.digest == reference_digest &&
                           run.snapshot_matches;
    result.ok = result.ok && identical;
    result.notes.push_back("shards=" + std::to_string(shards) +
                           " wire vs trace snapshot: " +
                           (identical ? "identical" : "MISMATCH"));
  }

  result.add_metric("peak_admissions_per_s", best_rate);
  result.add_metric("reference_arrivals",
                    static_cast<double>(reference.total_arrivals));
  result.notes.push_back(
      "throughput is closed-loop over loopback: clients and server share "
      "the host, so single-core machines report contention, not capacity "
      "(each connection count reports best-of-" +
      std::to_string(kReps) + " runs)");
  return result;
}
