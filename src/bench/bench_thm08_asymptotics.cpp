// Theorem 8 — M(n) = n log_phi(n) + Theta(n).
//
// The harness prints M(n) against n log_phi(n) over ten decades: the
// normalized gap (M(n) - n log_phi n)/n must stay inside the proven
// window [-(phi^2+1), 0] and the ratio M(n)/(n log_phi n) must tend to 1.
#include "bench/registry.h"
#include "core/merge_cost.h"

namespace {

using namespace smerge;

}  // namespace

SMERGE_BENCH(thm08_asymptotics,
             "Theorem 8 — M(n) = n log_phi(n) + Theta(n) over ten decades",
             "n", "merge_cost", "ratio", "normalized_gap") {
  const Index n_max = ctx.quick ? 1'000'000 : 10'000'000'000'000;

  bench::BenchResult result;
  auto& ns = result.add_series("n");
  auto& costs = result.add_series("merge_cost");
  auto& ratios = result.add_series("ratio");
  auto& gaps = result.add_series("normalized_gap");
  util::TextTable table({"n", "M(n)", "n log_phi n", "ratio", "(M - n log)/n"});
  for (Index n = 10; n <= n_max; n *= 10) {
    const double nd = static_cast<double>(n);
    const double reference = nd * fib::log_phi(nd);
    const double m = static_cast<double>(merge_cost(n));
    const double gap = (m - reference) / nd;
    result.ok = result.ok && gap <= 1e-9 &&
                gap >= -(fib::kGoldenRatio * fib::kGoldenRatio + 1.0);
    ns.values.push_back(nd);
    costs.values.push_back(m);
    ratios.values.push_back(m / reference);
    gaps.values.push_back(gap);
    table.add_row(n, merge_cost(n), reference, m / reference, gap);
  }
  result.tables.push_back(std::move(table));
  result.notes.push_back(std::string(
                             "normalized gap within [-(phi^2+1), 0]: ") +
                         (result.ok ? "yes" : "NO"));
  return result;
}
