// Fig. 8 — the table of last-merge intervals I(n) for 2 <= n <= 55.
//
// I(n) is the set of arrivals that can be the last to merge with the root
// in an optimal merge tree (Theorem 3). The harness prints the Theorem-3
// interval next to the exact DP argmin set; the two columns must agree.
#include "bench/registry.h"
#include "core/merge_cost.h"

namespace {

using namespace smerge;

}  // namespace

SMERGE_BENCH(fig08_root_intervals,
             "Fig. 8 — last-merge intervals I(n), Theorem 3 vs exhaustive DP, "
             "2 <= n <= 55",
             "n", "interval_lo", "interval_hi") {
  const Index n_max = ctx.quick ? 21 : 55;
  const auto dp = last_merge_intervals_dp(n_max);

  bench::BenchResult result;
  auto& ns = result.add_series("n");
  auto& lo = result.add_series("interval_lo");
  auto& hi = result.add_series("interval_hi");
  util::TextTable table({"n", "I(n) Theorem 3", "I(n) exact DP", "agree",
                         "r(n)=max"});
  for (Index n = 2; n <= n_max; ++n) {
    const IndexInterval thm = last_merge_interval(n);
    const IndexInterval exact = dp[static_cast<std::size_t>(n)];
    const bool agree = thm == exact;
    result.ok = result.ok && agree;
    ns.values.push_back(static_cast<double>(n));
    lo.values.push_back(static_cast<double>(thm.lo));
    hi.values.push_back(static_cast<double>(thm.hi));
    // Built via append to dodge GCC 12's false-positive -Wrestrict on
    // operator+ with short string literals (GCC PR105651).
    const auto show = [](const IndexInterval& iv) {
      std::string s;
      s += '[';
      s += std::to_string(iv.lo);
      s += ',';
      s += std::to_string(iv.hi);
      s += ']';
      return s;
    };
    table.add_row(n, show(thm), show(exact), agree ? "yes" : "NO", thm.hi);
  }
  result.tables.push_back(std::move(table));
  result.notes.push_back(std::string("Theorem 3 vs exhaustive DP: ") +
                         (result.ok ? "all rows agree" : "MISMATCH"));
  return result;
}
