// The benchmark registry: one place where every figure/table/theorem
// bench of the paper registers a name, a description, the series it
// emits, and a parameterized run function. The `smerge_bench` driver
// (src/bench/runner.h) fronts the registry with --list/--only/--json/
// --threads/--quick, replacing the 21 copy-pasted standalone mains the
// repository started with.
#ifndef SMERGE_BENCH_REGISTRY_H
#define SMERGE_BENCH_REGISTRY_H

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "util/table.h"

namespace smerge::bench {

/// The master RNG seed benches default to when the CLI does not
/// override it (kept equal to the historical sim_* seed so the
/// committed BENCH_seed.json baseline stays reproducible).
inline constexpr std::uint64_t kDefaultBenchSeed = 20260728;

/// Runtime knobs every bench receives.
struct BenchContext {
  /// Shrink sweeps/horizons so the bench finishes in well under a second
  /// (used by --quick and the test-suite smoke run). Series must still
  /// contain at least two points.
  bool quick = false;
  /// Worker threads for util::parallel_for fan-out (>= 1).
  unsigned threads = 1;
  /// Master seed for the stochastic (sim_*) benches, threaded into
  /// `util::SplitMix64` via the workload configs so whole runs are
  /// reproducible from the CLI (--seed). Recorded in the JSON header.
  std::uint64_t seed = kDefaultBenchSeed;
  /// Run shard fan-outs on the core-pinned static pool (--pin). Pure
  /// mechanism — results never change, only where the work lands — and
  /// recorded in the JSON header so bench_compare.py can tell pinned
  /// and floating baselines apart.
  bool pin = false;
};

/// A named numeric trajectory (one curve of a figure, one column of a
/// table). Series of the same bench need not share a length.
struct BenchSeries {
  std::string name;
  std::vector<double> values;
};

/// What a bench produces: console tables plus machine-readable data.
struct BenchResult {
  std::vector<util::TextTable> tables;  ///< printed in order
  /// JSON `series` object. A deque so references returned by
  /// `add_series()` stay valid while later series are added.
  std::deque<BenchSeries> series;
  std::vector<std::pair<std::string, double>> metrics;  ///< JSON scalars
  std::vector<std::string> notes;       ///< console trailer lines
  bool ok = true;  ///< paper-invariant checks passed (drives exit code)

  /// Appends a series; returns a reference for incremental fills.
  BenchSeries& add_series(std::string name);
  /// Appends a scalar metric.
  void add_metric(std::string name, double value);
};

/// A registered bench.
struct BenchSpec {
  std::string name;         ///< CLI identifier, e.g. "fig01_delay_sweep"
  std::string description;  ///< one line for --list
  std::vector<std::string> series;  ///< names the result promises to emit
  std::function<BenchResult(const BenchContext&)> run;
};

/// Name-ordered registry of all benches linked into the binary.
class BenchRegistry {
 public:
  /// The process-wide registry (benches self-register at static init).
  static BenchRegistry& instance();

  /// Registers a spec. Returns true; aborts on duplicate or empty names
  /// (a programming error in a bench translation unit).
  bool add(BenchSpec spec);

  /// All specs in name order.
  [[nodiscard]] std::vector<const BenchSpec*> all() const;

  /// Looks up one bench; nullptr when absent.
  [[nodiscard]] const BenchSpec* find(const std::string& name) const;

  [[nodiscard]] std::size_t size() const noexcept { return specs_.size(); }

 private:
  std::map<std::string, BenchSpec> specs_;
};

}  // namespace smerge::bench

/// Defines and registers a bench in one go:
///
///   SMERGE_BENCH(fig01_delay_sweep, "Fig. 1 — ...", "delay_pct", "ratio") {
///     smerge::bench::BenchResult result;
///     ...
///     return result;
///   }
///
/// The variadic tail lists the series names the bench emits.
#define SMERGE_BENCH(ident, desc, ...)                                     \
  static ::smerge::bench::BenchResult smerge_bench_run_##ident(            \
      const ::smerge::bench::BenchContext& ctx);                           \
  [[maybe_unused]] static const bool smerge_bench_reg_##ident =            \
      ::smerge::bench::BenchRegistry::instance().add(                      \
          {#ident, desc, {__VA_ARGS__}, &smerge_bench_run_##ident});       \
  static ::smerge::bench::BenchResult smerge_bench_run_##ident(            \
      [[maybe_unused]] const ::smerge::bench::BenchContext& ctx)

#endif  // SMERGE_BENCH_REGISTRY_H
