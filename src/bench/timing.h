// Wall-clock micro-timing for the complexity benches (the cpx_* family),
// replacing the google-benchmark dependency the standalone mains used:
// the registry harness owns the process, so benches time their kernels
// directly and report ns/op series plus a fitted complexity exponent.
#ifndef SMERGE_BENCH_TIMING_H
#define SMERGE_BENCH_TIMING_H

#include <functional>
#include <vector>

namespace smerge::bench {

/// Calls `fn` repeatedly (doubling the batch size) until at least
/// `min_ms` of wall clock has elapsed, then returns the mean
/// nanoseconds per call. One untimed warm-up call precedes measurement.
[[nodiscard]] double time_ns_per_call(const std::function<void()>& fn,
                                      double min_ms);

/// Least-squares slope of log(time) vs log(n): the empirical complexity
/// exponent of a timing series (≈1 linear, ≈2 quadratic, ...). Requires
/// at least two strictly positive points; returns 0.0 otherwise.
[[nodiscard]] double fitted_exponent(const std::vector<double>& sizes,
                                     const std::vector<double>& times);

}  // namespace smerge::bench

#endif  // SMERGE_BENCH_TIMING_H
