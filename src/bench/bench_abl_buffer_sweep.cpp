// Ablation — bounded client buffers (Section 3.3, Theorem 16).
//
// Sweep the buffer size B for a fixed instance and report the optimal
// constrained cost, the number of full streams and the worst Lemma-15
// buffer need of the built forest. The cost decreases with B and freezes
// at the unconstrained optimum once B reaches half the media length.
#include "bench/registry.h"
#include "core/buffer.h"
#include "core/full_cost.h"
#include "util/parallel.h"

namespace {

using namespace smerge;

}  // namespace

SMERGE_BENCH(abl_buffer_sweep,
             "Section 3.3 ablation — optimal cost under a client buffer "
             "bound B, swept over B",
             "buffer", "cost", "overhead", "streams", "measured_buffer") {
  const Index L = ctx.quick ? 13 : 34;
  const Index n = ctx.quick ? 80 : 300;
  const Cost unconstrained = full_cost(L, n);

  struct Row {
    StreamPlan plan;
    Index measured = 0;
  };
  std::vector<Row> rows(static_cast<std::size_t>(L));
  util::parallel_for(
      0, static_cast<std::int64_t>(L),
      [&](std::int64_t i) {
        const Index B = static_cast<Index>(i) + 1;
        const auto idx = static_cast<std::size_t>(i);
        rows[idx].plan = optimal_stream_count_bounded(L, n, B);
        rows[idx].measured =
            max_buffer_requirement(optimal_merge_forest_bounded(L, n, B));
      },
      ctx.threads);

  bench::BenchResult result;
  auto& buffers = result.add_series("buffer");
  auto& costs = result.add_series("cost");
  auto& overheads = result.add_series("overhead");
  auto& streams = result.add_series("streams");
  auto& measured_series = result.add_series("measured_buffer");
  util::TextTable table({"B (slots)", "F_B(L,n)", "overhead vs unbounded",
                         "full streams", "measured max buffer"});
  bool monotone = true;
  Cost prev = -1;
  for (Index B = 1; B <= L; ++B) {
    const Row& row = rows[static_cast<std::size_t>(B - 1)];
    if (prev != -1 && row.plan.cost > prev) monotone = false;
    prev = row.plan.cost;
    const double overhead = static_cast<double>(row.plan.cost) /
                            static_cast<double>(unconstrained);
    buffers.values.push_back(static_cast<double>(B));
    costs.values.push_back(static_cast<double>(row.plan.cost));
    overheads.values.push_back(overhead);
    streams.values.push_back(static_cast<double>(row.plan.streams));
    measured_series.values.push_back(static_cast<double>(row.measured));
    table.add_row(B, row.plan.cost, overhead, row.plan.streams, row.measured);
    if (row.measured > B && 2 * B < L) {
      result.notes.push_back("buffer bound violated at B = " +
                             std::to_string(B));
      result.ok = false;
    }
  }
  result.ok = result.ok && monotone;
  result.tables.push_back(std::move(table));
  result.add_metric("unconstrained_cost", static_cast<double>(unconstrained));
  result.notes.push_back(std::string("cost non-increasing in B: ") +
                         (monotone ? "yes" : "NO"));
  return result;
}
