// Ablation — the Section-5 multi-object server: average vs peak bandwidth.
//
// Sweep the aggregate load over a 10-movie Zipf catalogue and print, per
// policy, the total streams served and the aggregate peak channel count.
// The claim under test: the DG peak is flat in the load (the server can
// always admit), while the dyadic policies' peak grows with demand.
#include "bench/registry.h"
#include "sim/multi_object.h"
#include "util/parallel.h"

namespace {

using namespace smerge;
using namespace smerge::sim;

}  // namespace

SMERGE_BENCH(abl_multi_object,
             "Section 5 ablation — multi-object Zipf catalogue: streams "
             "served and peak concurrency per policy",
             "gap_pct", "dg_streams", "dg_peak", "dyadic_streams",
             "dyadic_peak", "batched_streams", "batched_peak") {
  const std::vector<double> pcts =
      ctx.quick ? std::vector<double>{2.0, 0.5}
                : std::vector<double>{2.0, 1.0, 0.5, 0.2, 0.1};

  struct Row {
    MultiObjectResult dg;
    MultiObjectResult dyadic;
    MultiObjectResult batched;
  };
  const double horizon = ctx.quick ? 10.0 : 25.0;
  std::vector<Row> rows(pcts.size());
  util::parallel_for(
      0, static_cast<std::int64_t>(pcts.size()),
      [&](std::int64_t i) {
        const auto idx = static_cast<std::size_t>(i);
        MultiObjectConfig config;
        config.objects = 10;
        config.zipf_exponent = 1.0;
        config.mean_gap = pcts[idx] / 100.0;
        config.horizon = horizon;
        config.delay = 0.02;
        config.seed = 31;
        rows[idx].dg = run_multi_object(config, Policy::kDelayGuaranteed);
        rows[idx].dyadic = run_multi_object(config, Policy::kDyadicImmediate);
        rows[idx].batched = run_multi_object(config, Policy::kDyadicBatched);
      },
      ctx.threads);

  bench::BenchResult result;
  auto& gap_series = result.add_series("gap_pct");
  auto& dg_streams = result.add_series("dg_streams");
  auto& dg_peak = result.add_series("dg_peak");
  auto& dyadic_streams = result.add_series("dyadic_streams");
  auto& dyadic_peak = result.add_series("dyadic_peak");
  auto& batched_streams = result.add_series("batched_streams");
  auto& batched_peak = result.add_series("batched_peak");
  util::TextTable table({"mean gap (% media)", "DG streams", "DG peak",
                         "dyadic streams", "dyadic peak", "batched streams",
                         "batched peak"});
  bool dg_peak_flat = true;
  Index first_dg_peak = -1;
  for (std::size_t i = 0; i < pcts.size(); ++i) {
    const Row& row = rows[i];
    if (first_dg_peak == -1) first_dg_peak = row.dg.peak_concurrency;
    dg_peak_flat = dg_peak_flat && row.dg.peak_concurrency == first_dg_peak;
    gap_series.values.push_back(pcts[i]);
    dg_streams.values.push_back(row.dg.streams_served);
    dg_peak.values.push_back(static_cast<double>(row.dg.peak_concurrency));
    dyadic_streams.values.push_back(row.dyadic.streams_served);
    dyadic_peak.values.push_back(
        static_cast<double>(row.dyadic.peak_concurrency));
    batched_streams.values.push_back(row.batched.streams_served);
    batched_peak.values.push_back(
        static_cast<double>(row.batched.peak_concurrency));
    table.add_row(util::format_fixed(pcts[i], 2), row.dg.streams_served,
                  row.dg.peak_concurrency, row.dyadic.streams_served,
                  row.dyadic.peak_concurrency, row.batched.streams_served,
                  row.batched.peak_concurrency);
  }
  result.ok = result.ok && dg_peak_flat;
  result.tables.push_back(std::move(table));
  result.notes.push_back(std::string("DG peak independent of load: ") +
                         (dg_peak_flat ? "yes" : "NO"));
  return result;
}
