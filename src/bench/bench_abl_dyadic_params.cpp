// Ablation — the (alpha, beta) parameters of the dyadic algorithm.
//
// Section 4.2 chooses alpha = phi (from the comparison study [4]) and
// beta = 0.5 for Poisson / F_h/L for constant-rate arrivals "based on
// intuition and experimentation". This harness redoes that experiment:
// a grid over alpha in {phi, 2} and beta in {0.2, 0.3, 0.382, 0.45, 0.5}
// under both arrival types at the Fig.-11 operating point.
#include "bench/registry.h"
#include "sim/arrivals.h"
#include "sim/experiment.h"
#include "util/parallel.h"
#include "util/stats.h"

namespace {

using namespace smerge;
using namespace smerge::sim;

constexpr std::uint64_t kSeeds[] = {5u, 6u, 7u};

}  // namespace

SMERGE_BENCH(abl_dyadic_params,
             "Section 4.2 ablation — dyadic (alpha, beta) grid under "
             "constant-rate and Poisson arrivals",
             "alpha", "beta", "constant_streams", "poisson_streams") {
  const double delay = 0.01;
  const double horizon = ctx.quick ? 20.0 : 100.0;
  const double gap = 0.004;  // denser than the delay: merging matters

  const std::vector<double> alphas = {fib::kGoldenRatio, 2.0};
  const std::vector<double> betas =
      ctx.quick ? std::vector<double>{0.30, 0.50}
                : std::vector<double>{0.20, 0.30, 0.382, 0.45, 0.50};
  const auto constant = constant_arrivals(gap, horizon);

  struct Cell {
    double constant_streams = 0.0;
    double poisson_streams = 0.0;
  };
  std::vector<Cell> cells(alphas.size() * betas.size());
  util::parallel_for(
      0, static_cast<std::int64_t>(cells.size()),
      [&](std::int64_t i) {
        const auto idx = static_cast<std::size_t>(i);
        const merging::DyadicParams params{alphas[idx / betas.size()],
                                           betas[idx % betas.size()]};
        cells[idx].constant_streams =
            run_dyadic(constant, params).streams_served;
        util::RunningStats poisson;
        for (const std::uint64_t seed : kSeeds) {
          poisson.add(run_dyadic(poisson_arrivals(gap, horizon, seed), params)
                          .streams_served);
        }
        cells[idx].poisson_streams = poisson.mean();
      },
      ctx.threads);

  bench::BenchResult result;
  auto& alpha_series = result.add_series("alpha");
  auto& beta_series = result.add_series("beta");
  auto& constant_series = result.add_series("constant_streams");
  auto& poisson_series = result.add_series("poisson_streams");
  util::TextTable table({"alpha", "beta", "constant-rate streams",
                         "Poisson streams (3 seeds)"});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const double alpha = alphas[i / betas.size()];
    const double beta = betas[i % betas.size()];
    alpha_series.values.push_back(alpha);
    beta_series.values.push_back(beta);
    constant_series.values.push_back(cells[i].constant_streams);
    poisson_series.values.push_back(cells[i].poisson_streams);
    table.add_row(util::format_fixed(alpha, 4), util::format_fixed(beta, 3),
                  cells[i].constant_streams, cells[i].poisson_streams);
  }
  result.tables.push_back(std::move(table));
  result.notes.push_back(
      "beta* = F_h/L clamp = " +
      util::format_fixed(dyadic_beta_for_constant_rate(delay), 4) +
      " (constant-rate recommendation); the paper's beta = 0.5 is near-best "
      "for Poisson");
  return result;
}
