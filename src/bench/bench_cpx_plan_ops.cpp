// Complexity — the flat MergePlan IR vs the legacy per-structure walks.
//
// Every producer used to carry its own cost / peak-bandwidth traversal:
// `MergeForest::full_cost` walks trees through bounds-checked
// `MergeTree` accessors, and the general forest's peak sweep
// materialized and sorted 2n (time, delta) event pairs. The canonical
// IR stores `{start, delay, parent, merge_time, length}` as contiguous
// arena arrays, so the same queries become straight-line scans: cost is
// one flat sum, and the peak sweep sorts only the end times (starts are
// sorted by construction). This bench drives both representations on
// identical structures — an off-line uniform-arrival optimal forest and
// a dyadic general-arrivals forest — at n up to 100k, checks the
// answers are identical, runs `plan::verify` over each plan, and
// reports the speedups (asserted >= parity in full mode).
#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "bench/registry.h"
#include "bench/timing.h"
#include "core/full_cost.h"
#include "core/plan.h"
#include "merging/dyadic.h"
#include "sim/arrivals.h"

namespace {

using smerge::Index;

/// The historical `GeneralMergeForest::peak_concurrency` walk, kept
/// verbatim as the "before" baseline (the member now delegates to the
/// flat IR, so the old event-pair sweep lives on only here).
Index legacy_peak_sweep(const smerge::merging::GeneralMergeForest& forest) {
  std::vector<std::pair<double, int>> events;
  events.reserve(static_cast<std::size_t>(forest.size()) * 2);
  for (Index i = 0; i < forest.size(); ++i) {
    const double start = forest.stream(i).time;
    events.emplace_back(start, +1);
    events.emplace_back(start + forest.stream_duration(i), -1);
  }
  std::sort(events.begin(), events.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first < b.first;
    return a.second < b.second;
  });
  Index depth = 0;
  Index peak = 0;
  for (const auto& [t, delta] : events) {
    depth += delta;
    peak = std::max(peak, depth);
  }
  return peak;
}

}  // namespace

SMERGE_BENCH(cpx_plan_ops,
             "Complexity — cost/peak traversal on the flat MergePlan IR vs "
             "the legacy forest walks (uniform and general arrivals)",
             "n", "forest_cost_ns", "plan_cost_ns", "general_cost_ns",
             "general_plan_cost_ns", "legacy_peak_ns", "plan_peak_ns") {
  const Index L = 512;  // slots; block size F_13 = 233 per Theorem 12
  const double min_ms = ctx.quick ? 0.5 : 20.0;
  const std::vector<Index> sizes = ctx.quick
                                       ? std::vector<Index>{2000, 8000}
                                       : std::vector<Index>{30000, 100000};

  smerge::bench::BenchResult result;
  auto& n_series = result.add_series("n");
  auto& forest_cost_series = result.add_series("forest_cost_ns");
  auto& plan_cost_series = result.add_series("plan_cost_ns");
  auto& general_cost_series = result.add_series("general_cost_ns");
  auto& general_plan_cost_series = result.add_series("general_plan_cost_ns");
  auto& legacy_peak_series = result.add_series("legacy_peak_ns");
  auto& plan_peak_series = result.add_series("plan_peak_ns");
  smerge::util::TextTable table({"n", "forest cost (ns)", "plan cost (ns)",
                                 "general cost (ns)", "plan cost (ns) ",
                                 "legacy peak (ns)", "plan peak (ns)"});

  double to_plan_ns = 0.0;
  for (const Index n : sizes) {
    // --- Off-line uniform arrivals: the Theorem-10 optimal forest. ---
    const smerge::MergeForest forest = smerge::optimal_merge_forest(L, n);
    const smerge::plan::MergePlan uniform = forest.to_plan();
    const double forest_cost_ns = smerge::bench::time_ns_per_call(
        [&forest] { (void)forest.full_cost(); }, min_ms);
    const double plan_cost_ns = smerge::bench::time_ns_per_call(
        [&uniform] { (void)uniform.total_cost(); }, min_ms);
    to_plan_ns = smerge::bench::time_ns_per_call(
        [&forest] { (void)forest.to_plan(); }, min_ms);
    result.ok = result.ok &&
                std::abs(uniform.total_cost() -
                         static_cast<double>(forest.full_cost())) < 1e-6;

    // --- General arrivals: a dyadic merge forest over Poisson. ---
    const std::vector<double> arrivals = smerge::sim::poisson_arrivals(
        20.0 / static_cast<double>(n), 20.0, static_cast<std::uint64_t>(ctx.seed));
    smerge::merging::DyadicMerger merger(1.0, {});
    for (const double t : arrivals) merger.arrive(t);
    const smerge::merging::GeneralMergeForest& general = merger.forest();
    const smerge::plan::MergePlan general_plan = general.to_plan();
    const double general_cost_ns = smerge::bench::time_ns_per_call(
        [&general] { (void)general.total_cost(); }, min_ms);
    const double general_plan_cost_ns = smerge::bench::time_ns_per_call(
        [&general_plan] { (void)general_plan.total_cost(); }, min_ms);
    const double legacy_peak_ns = smerge::bench::time_ns_per_call(
        [&general] { (void)legacy_peak_sweep(general); }, min_ms);
    const double plan_peak_ns = smerge::bench::time_ns_per_call(
        [&general_plan] { (void)general_plan.peak_bandwidth(); }, min_ms);
    result.ok = result.ok &&
                std::abs(general_plan.total_cost() - general.total_cost()) <=
                    1e-9 * std::max(1.0, general.total_cost()) &&
                general_plan.peak_bandwidth() == legacy_peak_sweep(general);

    // Both producers must pass the universal verifier.
    const smerge::plan::PlanReport uniform_report = smerge::plan::verify(uniform);
    const smerge::plan::PlanReport general_report =
        smerge::plan::verify(general_plan);
    result.ok = result.ok && uniform_report.ok && general_report.ok;
    if (!uniform_report.ok) result.notes.push_back(uniform_report.first_error);
    if (!general_report.ok) result.notes.push_back(general_report.first_error);

    n_series.values.push_back(static_cast<double>(n));
    forest_cost_series.values.push_back(forest_cost_ns);
    plan_cost_series.values.push_back(plan_cost_ns);
    general_cost_series.values.push_back(general_cost_ns);
    general_plan_cost_series.values.push_back(general_plan_cost_ns);
    legacy_peak_series.values.push_back(legacy_peak_ns);
    plan_peak_series.values.push_back(plan_peak_ns);
    table.add_row(n, forest_cost_ns, plan_cost_ns, general_cost_ns,
                  general_plan_cost_ns, legacy_peak_ns, plan_peak_ns);
  }
  result.tables.push_back(std::move(table));

  const double cost_speedup = plan_cost_series.values.back() > 0.0
                                  ? forest_cost_series.values.back() /
                                        plan_cost_series.values.back()
                                  : 0.0;
  const double general_cost_speedup =
      general_plan_cost_series.values.back() > 0.0
          ? general_cost_series.values.back() /
                general_plan_cost_series.values.back()
          : 0.0;
  const double peak_speedup =
      plan_peak_series.values.back() > 0.0
          ? legacy_peak_series.values.back() / plan_peak_series.values.back()
          : 0.0;
  result.add_metric("uniform_cost_speedup", cost_speedup);
  result.add_metric("general_cost_speedup", general_cost_speedup);
  result.add_metric("peak_speedup", peak_speedup);
  result.add_metric("to_plan_ns", to_plan_ns);
  // The acceptance bar: flat-IR traversals at least at parity with the
  // legacy walks at the largest n (asserted with headroom for timer
  // noise; quick-mode kernels are too short to time reliably).
  if (!ctx.quick) {
    result.ok = result.ok && cost_speedup > 0.9 &&
                general_cost_speedup > 0.9 && peak_speedup > 0.9;
  }
  result.notes.push_back(
      "flat-IR speedups at n = " +
      std::to_string(sizes.back()) + ": uniform cost " +
      smerge::util::format_fixed(cost_speedup, 2) + "x, general cost " +
      smerge::util::format_fixed(general_cost_speedup, 2) + "x, peak " +
      smerge::util::format_fixed(peak_speedup, 2) + "x");
  return result;
}
