#include "bench/timing.h"

#include <chrono>
#include <cmath>
#include <cstdint>

namespace smerge::bench {

double time_ns_per_call(const std::function<void()>& fn, double min_ms) {
  using Clock = std::chrono::steady_clock;
  fn();  // warm-up (first-touch allocations, caches)
  std::int64_t batch = 1;
  while (true) {
    const auto start = Clock::now();
    for (std::int64_t i = 0; i < batch; ++i) fn();
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start).count();
    if (elapsed_ms >= min_ms) {
      return elapsed_ms * 1e6 / static_cast<double>(batch);
    }
    // Re-time with a batch sized to overshoot min_ms, but at least 2x.
    const double scale =
        elapsed_ms > 0.0 ? (1.5 * min_ms / elapsed_ms) : 2.0;
    batch = std::max<std::int64_t>(batch * 2,
                                   static_cast<std::int64_t>(
                                       static_cast<double>(batch) * scale));
  }
}

double fitted_exponent(const std::vector<double>& sizes,
                       const std::vector<double>& times) {
  if (sizes.size() != times.size() || sizes.size() < 2) return 0.0;
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    if (sizes[i] <= 0.0 || times[i] <= 0.0) continue;
    const double x = std::log(sizes[i]);
    const double y = std::log(times[i]);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    ++count;
  }
  if (count < 2) return 0.0;
  const double n = static_cast<double>(count);
  const double denom = n * sxx - sx * sx;
  return denom == 0.0 ? 0.0 : (n * sxy - sx * sy) / denom;
}

}  // namespace smerge::bench
