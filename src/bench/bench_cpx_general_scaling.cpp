// Complexity bench — the banded general-arrivals optimizer at scale.
//
// The L-tree constraint (t_j - t_i < L) makes every interval outside a
// width-w band infeasible, so the banded solver runs in O(n w) while
// the historical dense DP is Theta(n^2) in time *and* memory and capped
// at kMaxGeneralArrivalsDense. This bench drives both on a fixed-width
// trace (arrivals spaced L / w apart): the dense oracle up to its cap,
// the banded solver serial and pooled far beyond it, demonstrating the
// regime change the band exploits. Two speedup metrics: dense vs
// banded at the largest common n (the algorithmic win), and — apples
// to apples — the materialized band fill with threads=1 vs
// threads=ctx.threads at the largest n via the forest path, isolating
// the ThreadPool contribution (~1 on single-core hosts, and in quick
// mode, whose wavefronts stay under the pool-dispatch threshold). The
// `banded_ns` series is the cost-only rolling path; `pooled_ns` is the
// materialized band with the fill fanned out, so their ratio mixes
// storage layout with threading and is reported only as a table.
#include <algorithm>
#include <cmath>

#include "bench/registry.h"
#include "bench/timing.h"
#include "merging/optimal_general.h"

namespace {

using smerge::Index;

// n arrivals spaced L / width apart: every row of the DP band holds
// ~width columns, independent of n.
std::vector<double> banded_trace(std::size_t n, double media_length,
                                 std::size_t width) {
  std::vector<double> t(n);
  const double step = media_length / static_cast<double>(width);
  for (std::size_t i = 0; i < n; ++i) t[i] = static_cast<double>(i) * step;
  return t;
}

}  // namespace

SMERGE_BENCH(cpx_general_scaling,
             "Complexity — banded O(n w) general-arrivals DP vs the dense "
             "O(n^2) baseline, serial and ThreadPool-fanned",
             "n", "banded_ns", "pooled_ns") {
  const double L = 1.0;
  const std::size_t width = ctx.quick ? 96 : 160;
  const double min_ms = ctx.quick ? 1.0 : 20.0;
  const std::vector<std::size_t> sizes =
      ctx.quick ? std::vector<std::size_t>{512, 1024, 2048}
                : std::vector<std::size_t>{1000, 2000, 8000, 32000, 100000};
  const auto dense_cap = static_cast<std::size_t>(
      smerge::merging::kMaxGeneralArrivalsDense);

  smerge::bench::BenchResult result;
  auto& n_series = result.add_series("n");
  auto& banded_series = result.add_series("banded_ns");
  auto& pooled_series = result.add_series("pooled_ns");
  auto& dense_n_series = result.add_series("dense_n");
  auto& dense_series = result.add_series("dense_ns");
  smerge::util::TextTable table(
      {"n", "banded serial (ns)", "banded pooled (ns)", "dense (ns)"});

  double dense_at_common = 0.0;
  double banded_at_common = 0.0;
  for (const std::size_t n : sizes) {
    const std::vector<double> arrivals = banded_trace(n, L, width);
    const double banded_ns = smerge::bench::time_ns_per_call(
        [&arrivals, L] {
          (void)smerge::merging::optimal_general_cost(arrivals, L);
        },
        min_ms);
    const double pooled_ns = smerge::bench::time_ns_per_call(
        [&arrivals, L, &ctx] {
          (void)smerge::merging::optimal_general_cost(arrivals, L, ctx.threads);
        },
        min_ms);
    n_series.values.push_back(static_cast<double>(n));
    banded_series.values.push_back(banded_ns);
    pooled_series.values.push_back(pooled_ns);

    std::string dense_cell = "-";
    if (n <= dense_cap) {
      const double dense_ns = smerge::bench::time_ns_per_call(
          [&arrivals, L] {
            (void)smerge::merging::optimal_general_cost_dense(arrivals, L);
          },
          min_ms);
      dense_n_series.values.push_back(static_cast<double>(n));
      dense_series.values.push_back(dense_ns);
      dense_cell = smerge::util::format_fixed(dense_ns, 0);
      dense_at_common = dense_ns;
      banded_at_common = banded_ns;
      // Identical optima: the band never discards a feasible interval.
      const double banded_cost =
          smerge::merging::optimal_general_cost(arrivals, L, ctx.threads);
      const double dense_cost =
          smerge::merging::optimal_general_cost_dense(arrivals, L);
      result.ok = result.ok &&
                  std::abs(banded_cost - dense_cost) <=
                      1e-9 * std::max(1.0, std::abs(dense_cost));
    }
    table.add_row(static_cast<std::int64_t>(n), banded_ns, pooled_ns,
                  dense_cell);
  }
  result.tables.push_back(std::move(table));

  // Pool contribution in isolation: the same materialized-band fill,
  // serial vs fanned, at the largest n (forest path so both sides run
  // identical storage and reconstruction).
  const std::vector<double> largest = banded_trace(sizes.back(), L, width);
  const double fill_serial_ns = smerge::bench::time_ns_per_call(
      [&largest, L] {
        (void)smerge::merging::optimal_general_forest(largest, L, 1);
      },
      min_ms);
  const double fill_pooled_ns = smerge::bench::time_ns_per_call(
      [&largest, L, &ctx] {
        (void)smerge::merging::optimal_general_forest(largest, L, ctx.threads);
      },
      min_ms);

  const double dense_speedup =
      banded_at_common > 0.0 ? dense_at_common / banded_at_common : 0.0;
  const double pool_speedup =
      fill_pooled_ns > 0.0 ? fill_serial_ns / fill_pooled_ns : 0.0;
  result.add_metric("band_width", static_cast<double>(width));
  result.add_metric("dense_over_banded_speedup", dense_speedup);
  result.add_metric("pool_fill_speedup", pool_speedup);
  result.add_metric("largest_n_banded_ms",
                    banded_series.values.back() / 1e6);
  const double banded_exp = smerge::bench::fitted_exponent(
      n_series.values, banded_series.values);
  result.add_metric("banded_exponent", banded_exp);
  // The regime change: near-linear growth for the banded fill, and a
  // clear win over the dense table at its cap. Quick sizes are too
  // small to separate exponents reliably, so only the full run asserts.
  if (!ctx.quick) {
    result.ok = result.ok && dense_speedup > 1.0 && banded_exp < 1.6;
  }
  result.notes.push_back(
      "band width ~" + std::to_string(width) + "; dense/banded " +
      smerge::util::format_fixed(dense_at_common > 0 ? dense_speedup : 0.0, 1) +
      "x at the dense cap; pool fill speedup at n=" +
      std::to_string(sizes.back()) + " " +
      smerge::util::format_fixed(pool_speedup, 2) +
      "x (expect ~1 on single-core hosts and in quick mode)");
  return result;
}
