// Theorem 22 — the on-line competitive guarantee A(L,n)/F(L,n) <= 1+2L/n
// for L >= 7 and n > L^2 + 2.
//
// For each (L, n) in range the measured ratio must sit below the bound;
// the table also shows the slack, which the proof predicts grows as the
// bound is loose by roughly a factor 2 (the proof budgets one extra tree).
#include "bench/registry.h"
#include "core/full_cost.h"
#include "online/delay_guaranteed.h"
#include "util/parallel.h"

namespace {

using namespace smerge;

constexpr Index kMults[] = {1, 4, 32};

}  // namespace

SMERGE_BENCH(thm22_online_bound,
             "Theorem 22 — A(L,n)/F(L,n) <= 1 + 2L/n for L >= 7, n > L^2+2",
             "L", "n", "ratio", "bound") {
  const std::vector<Index> media = ctx.quick
                                      ? std::vector<Index>{7, 21}
                                      : std::vector<Index>{7, 10, 15, 21, 34, 55};
  constexpr std::size_t kPerL = std::size(kMults);

  struct Row {
    Index n = 0;
    double ratio = 0.0;
    double bound = 0.0;
  };
  std::vector<Row> rows(media.size() * kPerL);
  util::parallel_for(
      0, static_cast<std::int64_t>(rows.size()),
      [&](std::int64_t i) {
        const auto idx = static_cast<std::size_t>(i);
        const Index L = media[idx / kPerL];
        const Index n = (L * L + 3) * kMults[idx % kPerL];
        const DelayGuaranteedOnline dg(L);
        rows[idx].n = n;
        rows[idx].ratio = static_cast<double>(dg.cost(n)) /
                          static_cast<double>(full_cost(L, n));
        rows[idx].bound = DelayGuaranteedOnline::theorem22_bound(L, n);
      },
      ctx.threads);

  bench::BenchResult result;
  auto& ls = result.add_series("L");
  auto& ns = result.add_series("n");
  auto& ratios = result.add_series("ratio");
  auto& bounds = result.add_series("bound");
  util::TextTable table({"L", "n", "ratio A/F", "bound", "holds"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Index L = media[i / kPerL];
    const Row& row = rows[i];
    const bool holds = row.ratio <= row.bound;
    result.ok = result.ok && holds;
    ls.values.push_back(static_cast<double>(L));
    ns.values.push_back(static_cast<double>(row.n));
    ratios.values.push_back(row.ratio);
    bounds.values.push_back(row.bound);
    table.add_row(L, row.n, util::format_fixed(row.ratio, 6),
                  util::format_fixed(row.bound, 6), holds ? "yes" : "NO");
  }
  result.tables.push_back(std::move(table));
  result.notes.push_back(std::string("bound holds everywhere: ") +
                         (result.ok ? "yes" : "NO"));
  return result;
}
