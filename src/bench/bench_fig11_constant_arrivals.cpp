// Fig. 11 — immediate-service dyadic vs batched dyadic vs on-line Delay
// Guaranteed under constant-rate arrivals.
//
// Paper setup: delay fixed at 1% of the media length; the inter-arrival
// gap lambda sweeps from near 0% to 5% of the media; horizon 100 media
// lengths; dyadic uses alpha = phi and beta = F_h/L for constant-rate
// arrivals (Section 4.2). Expected shape: the DG line is flat; immediate
// service loses when lambda < delay (batching shares streams) and the DG
// algorithm is worst once lambda exceeds the delay.
#include "bench/registry.h"
#include "sim/arrivals.h"
#include "sim/experiment.h"
#include "util/parallel.h"

namespace {

using namespace smerge;
using namespace smerge::sim;

}  // namespace

SMERGE_BENCH(fig11_constant_arrivals,
             "Fig. 11 — dyadic (immediate/batched) vs Delay Guaranteed under "
             "constant-rate arrivals, delay 1%",
             "lambda_pct", "clients", "dyadic_immediate", "dyadic_batched",
             "delay_guaranteed") {
  const double delay = 0.01;
  const double horizon = ctx.quick ? 20.0 : 100.0;
  const double dg = run_delay_guaranteed(delay, horizon).streams_served;
  merging::DyadicParams params;
  params.beta = dyadic_beta_for_constant_rate(delay);

  const std::vector<double> pcts =
      ctx.quick ? std::vector<double>{0.1, 1.0, 5.0}
                : std::vector<double>{0.05, 0.1, 0.2, 0.4, 0.6, 0.8,
                                      1.0,  1.5, 2.0, 3.0, 4.0, 5.0};

  struct Row {
    double clients = 0.0;
    double immediate = 0.0;
    double batched = 0.0;
  };
  std::vector<Row> rows(pcts.size());
  util::parallel_for(
      0, static_cast<std::int64_t>(pcts.size()),
      [&](std::int64_t i) {
        const auto idx = static_cast<std::size_t>(i);
        const auto arrivals = constant_arrivals(pcts[idx] / 100.0, horizon);
        rows[idx].clients = static_cast<double>(arrivals.size());
        rows[idx].immediate = run_dyadic(arrivals, params).streams_served;
        rows[idx].batched =
            run_batched_dyadic(arrivals, delay, params).streams_served;
      },
      ctx.threads);

  bench::BenchResult result;
  auto& lambda = result.add_series("lambda_pct");
  auto& clients = result.add_series("clients");
  auto& immediate = result.add_series("dyadic_immediate");
  auto& batched = result.add_series("dyadic_batched");
  auto& dg_series = result.add_series("delay_guaranteed");
  util::TextTable table({"lambda (% media)", "clients", "dyadic immediate",
                         "dyadic batched", "delay guaranteed"});
  for (std::size_t i = 0; i < pcts.size(); ++i) {
    lambda.values.push_back(pcts[i]);
    clients.values.push_back(rows[i].clients);
    immediate.values.push_back(rows[i].immediate);
    batched.values.push_back(rows[i].batched);
    dg_series.values.push_back(dg);
    table.add_row(util::format_fixed(pcts[i], 2),
                  static_cast<std::int64_t>(rows[i].clients), rows[i].immediate,
                  rows[i].batched, dg);
  }
  result.tables.push_back(std::move(table));
  result.notes.push_back("dyadic: alpha = phi, beta = " +
                         util::format_fixed(params.beta, 4) +
                         " (constant-rate recommendation)");
  return result;
}
