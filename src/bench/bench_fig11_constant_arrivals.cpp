// Fig. 11 — immediate-service dyadic vs batched dyadic vs on-line Delay
// Guaranteed under constant-rate arrivals, driven by the discrete-event
// engine.
//
// Paper setup: delay fixed at 1% of the media length; the inter-arrival
// gap lambda sweeps from near 0% to 5% of the media; horizon 100 media
// lengths; dyadic uses alpha = phi and beta = F_h/L for constant-rate
// arrivals (Section 4.2). Expected shape: the DG line is flat; immediate
// service loses when lambda < delay (batching shares streams) and the DG
// algorithm is worst once lambda exceeds the delay.
//
// Each point is an engine run (one object, constant-rate workload) whose
// bandwidth is cross-checked against the legacy sim/experiment runners
// on the identical arrival trace, and whose waits must respect each
// policy's guarantee (0 for immediate, < delay for batched).
#include <cmath>

#include "bench/registry.h"
#include "online/policy.h"
#include "sim/engine.h"
#include "sim/experiment.h"
#include "util/parallel.h"

namespace {

using namespace smerge;
using namespace smerge::sim;

}  // namespace

SMERGE_BENCH(fig11_constant_arrivals,
             "Fig. 11 — dyadic (immediate/batched) vs Delay Guaranteed under "
             "constant-rate arrivals, delay 1% (engine-backed)",
             "lambda_pct", "clients", "dyadic_immediate", "dyadic_batched",
             "delay_guaranteed", "batched_p99_wait") {
  const double delay = 0.01;
  const double horizon = ctx.quick ? 20.0 : 100.0;
  const double dg = run_delay_guaranteed(delay, horizon).streams_served;
  merging::DyadicParams params;
  params.beta = dyadic_beta_for_constant_rate(delay);

  const std::vector<double> pcts =
      ctx.quick ? std::vector<double>{0.1, 1.0, 5.0}
                : std::vector<double>{0.05, 0.1, 0.2, 0.4, 0.6, 0.8,
                                      1.0,  1.5, 2.0, 3.0, 4.0, 5.0};

  struct Row {
    double clients = 0.0;
    double immediate = 0.0;
    double batched = 0.0;
    double batched_p99 = 0.0;
    bool ok = true;
  };
  std::vector<Row> rows(pcts.size());
  util::parallel_for(
      0, static_cast<std::int64_t>(pcts.size()),
      [&](std::int64_t i) {
        const auto idx = static_cast<std::size_t>(i);
        EngineConfig config;
        config.workload.process = ArrivalProcess::kConstantRate;
        config.workload.objects = 1;
        config.workload.mean_gap = pcts[idx] / 100.0;
        config.workload.horizon = horizon;
        config.delay = delay;

        GreedyMergePolicy immediate(params, /*batched=*/false);
        GreedyMergePolicy batched(params, /*batched=*/true);
        const EngineResult imm = run_engine(config, immediate);
        const EngineResult bat = run_engine(config, batched);

        Row& row = rows[idx];
        row.clients = static_cast<double>(imm.total_arrivals);
        row.immediate = imm.streams_served;
        row.batched = bat.streams_served;
        row.batched_p99 = bat.wait.p99;

        // Cross-check the engine against the legacy experiment runners
        // on the identical arrival trace, and assert the wait
        // guarantees each policy promises.
        const auto arrivals = generate_arrivals(config.workload, 0);
        const double legacy_imm = run_dyadic(arrivals, params).streams_served;
        const double legacy_bat =
            run_batched_dyadic(arrivals, delay, params).streams_served;
        row.ok = std::abs(row.immediate - legacy_imm) <= 1e-9 * legacy_imm &&
                 std::abs(row.batched - legacy_bat) <= 1e-9 * legacy_bat &&
                 imm.wait.max == 0.0 && imm.guarantee_violations == 0 &&
                 bat.guarantee_violations == 0;
      },
      ctx.threads);

  bench::BenchResult result;
  auto& lambda = result.add_series("lambda_pct");
  auto& clients = result.add_series("clients");
  auto& immediate = result.add_series("dyadic_immediate");
  auto& batched = result.add_series("dyadic_batched");
  auto& dg_series = result.add_series("delay_guaranteed");
  auto& p99_series = result.add_series("batched_p99_wait");
  util::TextTable table({"lambda (% media)", "clients", "dyadic immediate",
                         "dyadic batched", "delay guaranteed",
                         "batched p99 wait"});
  for (std::size_t i = 0; i < pcts.size(); ++i) {
    result.ok = result.ok && rows[i].ok;
    lambda.values.push_back(pcts[i]);
    clients.values.push_back(rows[i].clients);
    immediate.values.push_back(rows[i].immediate);
    batched.values.push_back(rows[i].batched);
    dg_series.values.push_back(dg);
    p99_series.values.push_back(rows[i].batched_p99);
    table.add_row(util::format_fixed(pcts[i], 2),
                  static_cast<std::int64_t>(rows[i].clients), rows[i].immediate,
                  rows[i].batched, dg,
                  util::format_fixed(rows[i].batched_p99, 6));
  }
  result.tables.push_back(std::move(table));
  result.notes.push_back("dyadic: alpha = phi, beta = " +
                         util::format_fixed(params.beta, 4) +
                         " (constant-rate recommendation); engine runs "
                         "cross-checked against sim/experiment");
  return result;
}
