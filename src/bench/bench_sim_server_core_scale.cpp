// Scale — the sharded incremental ServerCore at the ROADMAP's load.
//
// Two faces of the serving runtime:
//
//  1. Shard scaling (observe mode, generic batched greedy policy):
//     full mode pushes ~10M Poisson arrivals over a 1000-object Zipf
//     catalogue through ingest_trace/drain/finish at increasing shard
//     counts. The snapshot must be identical at every width (the
//     determinism contract) while wall-clock throughput scales with the
//     hardware; a mid-run live query between two drains exercises the
//     incremental ledger + P² percentiles under load.
//
//  2. Capacity-aware admission (slotted batching): a flash-crowd is
//     driven over a channel budget in all four admission modes. The
//     asserted semantics: reject/defer keep the peak within the budget
//     and every admitted client within the delay guarantee (measured
//     from the deferred slot in defer mode); degrade never rejects and
//     never exceeds the budget, paying with guarantee violations;
//     observe admits everything and counts the saturated starts.
#include "bench/registry.h"
#include "online/policy.h"
#include "sim/engine.h"
#include "util/parallel.h"
#include "util/table.h"

#include <algorithm>
#include <chrono>
#include <string>

namespace {

using namespace smerge;
using namespace smerge::sim;

constexpr double kDelay = 0.01;

struct ShardRow {
  unsigned shards = 0;
  server::Snapshot snapshot;
  double elapsed_ms = 0.0;
  server::LiveStats mid_run;
};

ShardRow run_sharded(const EngineConfig& config, unsigned shards) {
  ShardRow row;
  row.shards = shards;
  GreedyMergePolicy policy(merging::DyadicParams{}, /*batched=*/true);
  const std::vector<double> weights =
      zipf_weights(config.workload.objects, config.workload.zipf_exponent);
  const auto n = static_cast<std::size_t>(config.workload.objects);
  std::vector<std::vector<double>> traces(n);
  util::parallel_for(
      0, static_cast<std::int64_t>(n),
      [&](std::int64_t i) {
        traces[static_cast<std::size_t>(i)] = generate_arrivals(
            config.workload, static_cast<Index>(i),
            weights[static_cast<std::size_t>(i)]);
      },
      shards);

  auto core_cfg = core_config(config);
  core_cfg.shards = shards;
  server::ServerCore core(core_cfg, policy);
  const auto start = std::chrono::steady_clock::now();
  // Two ingest waves with a drain + live query between them: the
  // incremental path, not just a batch replay.
  for (int wave = 0; wave < 2; ++wave) {
    for (std::size_t m = 0; m < n; ++m) {
      auto& trace = traces[m];
      if (wave == 0) {
        const auto half = trace.size() / 2;
        std::vector<double> head(trace.begin(),
                                 trace.begin() + static_cast<std::ptrdiff_t>(half));
        trace.erase(trace.begin(), trace.begin() + static_cast<std::ptrdiff_t>(half));
        core.ingest_trace(static_cast<Index>(m), std::move(head));
      } else {
        core.ingest_trace(static_cast<Index>(m), std::move(trace));
      }
    }
    if (wave == 0) {
      core.drain();
      row.mid_run = core.live_stats();
    }
  }
  core.finish();
  const auto end = std::chrono::steady_clock::now();
  row.elapsed_ms = std::chrono::duration<double, std::milli>(end - start).count();
  row.snapshot = core.take_snapshot();
  return row;
}

struct CapacityRow {
  server::AdmissionMode mode = server::AdmissionMode::kObserve;
  server::Snapshot snapshot;
  Index peak = 0;
  double max_guarantee_wait = 0.0;
  double max_wait = 0.0;
  Index arrivals = 0;
};

CapacityRow run_capacity(server::AdmissionMode mode, Index capacity,
                         const WorkloadConfig& workload, double delay) {
  CapacityRow row;
  row.mode = mode;
  server::ServerCoreConfig config;
  config.objects = workload.objects;
  config.delay = delay;
  config.horizon = workload.horizon;
  config.serve = server::ServeMode::kSlottedBatching;
  config.channel_capacity = capacity;
  config.admission = mode;
  config.max_defer_slots = 16;
  server::ServerCore core(config);

  // Merge the per-object traces into one global time order — admission
  // decisions are made in arrival order across the whole catalogue.
  const std::vector<double> weights =
      zipf_weights(workload.objects, workload.zipf_exponent);
  std::vector<std::pair<double, Index>> arrivals;
  for (Index m = 0; m < workload.objects; ++m) {
    for (const double t :
         generate_arrivals(workload, m, weights[static_cast<std::size_t>(m)])) {
      arrivals.push_back({t, m});
    }
  }
  std::sort(arrivals.begin(), arrivals.end());
  row.arrivals = static_cast<Index>(arrivals.size());

  for (const auto& [t, m] : arrivals) {
    const server::Ticket ticket = core.admit(m, t);
    if (ticket.admitted) {
      row.max_guarantee_wait = std::max(row.max_guarantee_wait, ticket.guarantee_wait);
      row.max_wait = std::max(row.max_wait, ticket.wait);
    }
  }
  row.peak = core.peak_channels();
  core.finish();
  row.snapshot = core.take_snapshot();
  return row;
}

}  // namespace

SMERGE_BENCH(sim_server_core_scale,
             "Scale — sharded incremental ServerCore: ~10M arrivals over a "
             "1000-object catalogue with shard-count determinism, plus "
             "capacity-aware admission (reject/defer/degrade) under a "
             "flash crowd",
             "shards", "arrivals", "arrivals_per_s",
             "streams_served", "peak_channels", "p99_wait", "mode",
             "mode_admitted", "mode_rejected", "mode_deferrals",
             "mode_degraded", "mode_peak", "mode_violations") {
  bench::BenchResult result;

  // --- Part 1: shard scaling at the 10M-arrival load ------------------------
  EngineConfig config;
  config.workload.process = ArrivalProcess::kPoisson;
  config.workload.objects = ctx.quick ? 32 : 1000;
  config.workload.zipf_exponent = 1.0;
  // Full mode: expected arrivals = horizon / mean_gap ~ 10.2M, so the
  // >= 10M assertion holds with many sigmas of Poisson slack.
  config.workload.mean_gap = ctx.quick ? 2e-3 : 9.8e-6;
  config.workload.horizon = ctx.quick ? 10.0 : 100.0;
  config.workload.seed = ctx.seed;
  config.delay = kDelay;

  std::vector<unsigned> widths{1, 2, 4};
  if (ctx.quick) widths = {1, 2};

  auto& shards_series = result.add_series("shards");
  auto& arrivals_series = result.add_series("arrivals");
  auto& throughput_series = result.add_series("arrivals_per_s");
  auto& streams_series = result.add_series("streams_served");
  auto& peak_series = result.add_series("peak_channels");
  auto& p99_series = result.add_series("p99_wait");
  util::TextTable scale_table({"shards", "arrivals", "streams served",
                               "peak channels", "p99 wait", "core ms",
                               "arrivals/s"});

  ShardRow first;
  for (std::size_t i = 0; i < widths.size(); ++i) {
    ShardRow row = run_sharded(config, widths[i]);
    const double throughput =
        row.elapsed_ms > 0.0
            ? static_cast<double>(row.snapshot.total_arrivals) /
                  (row.elapsed_ms / 1000.0)
            : 0.0;
    // Determinism: every shard width lands on the identical snapshot.
    if (i == 0) {
      first = std::move(row);
      row.snapshot = server::Snapshot{};  // moved-from; reuse `first` below
      result.ok = result.ok && first.snapshot.guarantee_violations == 0 &&
                  (ctx.quick || first.snapshot.total_arrivals >= 10'000'000);
      // The mid-run live query saw a genuinely partial run.
      result.ok = result.ok &&
                  first.mid_run.admitted > 0 &&
                  first.mid_run.admitted < first.snapshot.total_arrivals &&
                  first.mid_run.peak_channels <= first.snapshot.peak_concurrency;
      shards_series.values.push_back(static_cast<double>(widths[i]));
      arrivals_series.values.push_back(
          static_cast<double>(first.snapshot.total_arrivals));
      streams_series.values.push_back(first.snapshot.streams_served);
      peak_series.values.push_back(
          static_cast<double>(first.snapshot.peak_concurrency));
      p99_series.values.push_back(first.snapshot.wait.p99);
      throughput_series.values.push_back(throughput);
      scale_table.add_row(widths[i], first.snapshot.total_arrivals,
                          first.snapshot.streams_served,
                          first.snapshot.peak_concurrency,
                          util::format_fixed(first.snapshot.wait.p99, 6),
                          util::format_fixed(row.elapsed_ms, 0),
                          util::format_fixed(throughput, 0));
      continue;
    }
    result.ok = result.ok &&
                row.snapshot.total_arrivals == first.snapshot.total_arrivals &&
                row.snapshot.total_streams == first.snapshot.total_streams &&
                row.snapshot.streams_served == first.snapshot.streams_served &&
                row.snapshot.peak_concurrency == first.snapshot.peak_concurrency &&
                row.snapshot.wait.p99 == first.snapshot.wait.p99 &&
                row.snapshot.per_object == first.snapshot.per_object;
    shards_series.values.push_back(static_cast<double>(widths[i]));
    arrivals_series.values.push_back(
        static_cast<double>(row.snapshot.total_arrivals));
    streams_series.values.push_back(row.snapshot.streams_served);
    peak_series.values.push_back(
        static_cast<double>(row.snapshot.peak_concurrency));
    p99_series.values.push_back(row.snapshot.wait.p99);
    throughput_series.values.push_back(throughput);
    scale_table.add_row(widths[i], row.snapshot.total_arrivals,
                        row.snapshot.streams_served,
                        row.snapshot.peak_concurrency,
                        util::format_fixed(row.snapshot.wait.p99, 6),
                        util::format_fixed(row.elapsed_ms, 0),
                        util::format_fixed(throughput, 0));
  }
  result.tables.push_back(std::move(scale_table));

  // --- Part 2: capacity-aware admission under a flash crowd -----------------
  // Steady demand sits just under the budget (full streams last one
  // media length, so steady concurrent streams ~ aggregate arrival rate
  // x distinct-slot fraction); the x10 burst drives it far over.
  WorkloadConfig crowd;
  crowd.process = ArrivalProcess::kFlashCrowd;
  crowd.objects = ctx.quick ? 8 : 64;
  crowd.zipf_exponent = 1.0;
  crowd.mean_gap = ctx.quick ? 0.1 : 0.04;
  crowd.horizon = ctx.quick ? 4.0 : 20.0;
  crowd.seed = ctx.seed;
  crowd.burst_start = 1.0;
  crowd.burst_duration = 1.0;
  crowd.burst_multiplier = 10.0;
  const Index capacity = ctx.quick ? 4 : 32;
  const double delay = ctx.quick ? 0.1 : 0.02;

  auto& mode_series = result.add_series("mode");
  auto& admitted_series = result.add_series("mode_admitted");
  auto& rejected_series = result.add_series("mode_rejected");
  auto& deferral_series = result.add_series("mode_deferrals");
  auto& degraded_series = result.add_series("mode_degraded");
  auto& mode_peak_series = result.add_series("mode_peak");
  auto& violation_series = result.add_series("mode_violations");
  util::TextTable cap_table({"mode", "arrivals", "admitted", "rejected",
                             "deferrals", "degraded", "peak", "violations",
                             "max guarantee wait"});

  const server::AdmissionMode modes[] = {
      server::AdmissionMode::kObserve, server::AdmissionMode::kReject,
      server::AdmissionMode::kDefer, server::AdmissionMode::kDegrade};
  for (std::size_t i = 0; i < 4; ++i) {
    const CapacityRow row = run_capacity(modes[i], capacity, crowd, delay);
    const server::Snapshot& snap = row.snapshot;
    const Index admitted = snap.total_arrivals - snap.rejected;
    switch (modes[i]) {
      case server::AdmissionMode::kObserve:
        // The crowd genuinely exceeds the budget, and nobody is turned
        // away or delayed past the guarantee.
        result.ok = result.ok && row.peak > capacity && snap.rejected == 0 &&
                    snap.capacity_violations > 0 &&
                    snap.guarantee_violations == 0;
        break;
      case server::AdmissionMode::kReject:
        // The acceptance criterion: waits <= delay for every admitted
        // client, peak within the budget, overload sheds as rejects.
        result.ok = result.ok && row.peak <= capacity && snap.rejected > 0 &&
                    !server::violates_guarantee(row.max_wait, delay) &&
                    snap.guarantee_violations == 0 &&
                    snap.capacity_violations == 0;
        break;
      case server::AdmissionMode::kDefer:
        // Guarantee measured from the deferred admission; still within
        // the budget, strictly fewer rejects than reject mode would
        // produce (deferred batches are shared by later clients).
        result.ok = result.ok && row.peak <= capacity &&
                    snap.deferrals > 0 &&
                    !server::violates_guarantee(row.max_guarantee_wait, delay) &&
                    snap.capacity_violations == 0;
        break;
      case server::AdmissionMode::kDegrade:
        // Nobody is rejected, the budget holds, and the cost is visible
        // as guarantee violations.
        result.ok = result.ok && row.peak <= capacity && snap.rejected == 0 &&
                    snap.degraded > 0 && snap.guarantee_violations > 0 &&
                    admitted == snap.total_arrivals;
        break;
    }
    mode_series.values.push_back(static_cast<double>(i));
    admitted_series.values.push_back(static_cast<double>(admitted));
    rejected_series.values.push_back(static_cast<double>(snap.rejected));
    deferral_series.values.push_back(static_cast<double>(snap.deferrals));
    degraded_series.values.push_back(static_cast<double>(snap.degraded));
    mode_peak_series.values.push_back(static_cast<double>(row.peak));
    violation_series.values.push_back(
        static_cast<double>(snap.guarantee_violations));
    cap_table.add_row(server::to_string(modes[i]), snap.total_arrivals, admitted,
                      snap.rejected, snap.deferrals, snap.degraded, row.peak,
                      snap.guarantee_violations,
                      util::format_fixed(row.max_guarantee_wait, 4));
  }
  result.tables.push_back(std::move(cap_table));

  result.add_metric("capacity_budget", static_cast<double>(capacity));
  result.notes.push_back(
      "part 1: batched greedy over " +
      std::to_string(config.workload.objects) +
      " objects, identical snapshots at every shard width; part 2: flash "
      "crowd x" +
      util::format_fixed(crowd.burst_multiplier, 0) + " against a " +
      std::to_string(capacity) + "-channel budget, delay " +
      util::format_fixed(delay, 2));
  return result;
}
