// Theorems 19 and 20 — receive-two vs receive-all costs approach
// log_phi(2) ~ 1.4404.
//
// Two tables: the merge-cost ratio M(n)/Mw(n) in n (Theorem 19, fast
// convergence) and the full-cost ratio F(L,n)/Fw(L,n) in L with n = 50 L
// (Theorem 20, logarithmic convergence — the paper's double limit).
#include "bench/registry.h"
#include "core/full_cost.h"
#include "util/parallel.h"

namespace {

using namespace smerge;

}  // namespace

SMERGE_BENCH(thm19_receive_all_ratio,
             "Theorems 19/20 — receive-two vs receive-all cost ratios "
             "approach log_phi 2",
             "n", "merge_ratio", "L", "full_ratio") {
  const double target = fib::log_phi(2.0);
  bench::BenchResult result;

  // Theorem 19: merge-cost ratio (closed forms, cheap, serial).
  const Index n_max = ctx.quick ? 1'000'000 : 10'000'000'000;
  auto& ns = result.add_series("n");
  auto& merge_ratio = result.add_series("merge_ratio");
  util::TextTable mc({"n", "M(n)", "Mw(n)", "ratio"});
  for (Index n = 100; n <= n_max; n *= 100) {
    const double ratio = static_cast<double>(merge_cost(n)) /
                         static_cast<double>(merge_cost_receive_all(n));
    ns.values.push_back(static_cast<double>(n));
    merge_ratio.values.push_back(ratio);
    result.ok = result.ok && ratio < target;
    mc.add_row(n, merge_cost(n), merge_cost_receive_all(n), ratio);
  }
  result.tables.push_back(std::move(mc));

  // Theorem 20: full-cost ratio (forest planners, worth fanning out).
  const std::vector<Index> media =
      ctx.quick ? std::vector<Index>{55, 987}
                : std::vector<Index>{55, 233, 987, 4181, 17711};
  struct Pair {
    Cost two = 0;
    Cost all = 0;
  };
  std::vector<Pair> pairs(media.size());
  util::parallel_for(
      0, static_cast<std::int64_t>(media.size()),
      [&](std::int64_t i) {
        const auto idx = static_cast<std::size_t>(i);
        const Index L = media[idx];
        const Index n = 50 * L;
        pairs[idx].two = full_cost(L, n);
        pairs[idx].all = full_cost(L, n, Model::kReceiveAll);
      },
      ctx.threads);

  auto& ls = result.add_series("L");
  auto& full_ratio = result.add_series("full_ratio");
  util::TextTable fc({"L", "F(L,n)", "Fw(L,n)", "ratio"});
  double last = 0.0;
  for (std::size_t i = 0; i < media.size(); ++i) {
    last = static_cast<double>(pairs[i].two) /
           static_cast<double>(pairs[i].all);
    ls.values.push_back(static_cast<double>(media[i]));
    full_ratio.values.push_back(last);
    fc.add_row(media[i], pairs[i].two, pairs[i].all, last);
  }
  result.tables.push_back(std::move(fc));
  result.add_metric("log_phi_2", target);
  result.notes.push_back("final full-cost ratio " + util::format_fixed(last, 4) +
                         " climbing toward " + util::format_fixed(target, 4));
  return result;
}
