// Theorem 14 — batching with stream merging is Theta(L / log L) better
// than batching alone.
//
// Batching alone transmits a full stream per slot: cost n L. The optimal
// merge forest costs n log_phi(L) + Theta(n), so the saving factor is
// ~ L / log_phi(L). Rows sweep L at fixed density and print the measured
// factor next to the predictor.
#include "bench/registry.h"
#include "core/full_cost.h"
#include "util/parallel.h"

namespace {

using namespace smerge;

}  // namespace

SMERGE_BENCH(thm14_batching_ratio,
             "Theorem 14 — batching+merging vs batching alone is "
             "Theta(L / log L), n = 32 L",
             "L", "batching_cost", "merging_cost", "saving_factor",
             "predictor") {
  const std::vector<Index> media =
      ctx.quick ? std::vector<Index>{8, 55, 377}
                : std::vector<Index>{8, 21, 55, 144, 377, 987, 2584};

  std::vector<Cost> merging(media.size());
  util::parallel_for(
      0, static_cast<std::int64_t>(media.size()),
      [&](std::int64_t i) {
        const auto idx = static_cast<std::size_t>(i);
        merging[idx] = full_cost(media[idx], 32 * media[idx]);
      },
      ctx.threads);

  bench::BenchResult result;
  auto& ls = result.add_series("L");
  auto& batch_series = result.add_series("batching_cost");
  auto& merge_series = result.add_series("merging_cost");
  auto& factor_series = result.add_series("saving_factor");
  auto& predictor_series = result.add_series("predictor");
  util::TextTable table({"L", "batching nL", "merging F(L,n)", "saving factor",
                         "L / log_phi L"});
  for (std::size_t i = 0; i < media.size(); ++i) {
    const Index L = media[i];
    const Index n = 32 * L;
    const Cost batching = n * L;
    const double factor =
        static_cast<double>(batching) / static_cast<double>(merging[i]);
    const double predictor =
        static_cast<double>(L) / fib::log_phi(static_cast<double>(L));
    result.ok =
        result.ok && factor > predictor / 2.5 && factor < predictor * 2.5;
    ls.values.push_back(static_cast<double>(L));
    batch_series.values.push_back(static_cast<double>(batching));
    merge_series.values.push_back(static_cast<double>(merging[i]));
    factor_series.values.push_back(factor);
    predictor_series.values.push_back(predictor);
    table.add_row(L, batching, merging[i], factor, predictor);
  }
  result.tables.push_back(std::move(table));
  result.notes.push_back(
      std::string("factor within 2.5x of L/log_phi(L) everywhere: ") +
      (result.ok ? "yes" : "NO"));
  return result;
}
