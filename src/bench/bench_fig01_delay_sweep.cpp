// Fig. 1 — bandwidth savings as the guaranteed start-up delay increases.
//
// Paper setup: a stream starts at the end of every unit (unit = delay);
// the x-axis is the delay as a percentage of the media length, the y-axis
// the server bandwidth in total complete media streams served. Both the
// optimal off-line algorithm and the on-line algorithm are plotted; the
// paper's observation is a steep drop with delay and the on-line curve
// hugging the off-line one.
#include "bench/registry.h"
#include "sim/experiment.h"
#include "util/parallel.h"

namespace {

using namespace smerge;
using namespace smerge::sim;

}  // namespace

SMERGE_BENCH(fig01_delay_sweep,
             "Fig. 1 — server bandwidth vs guaranteed start-up delay "
             "(off-line optimum and on-line algorithm)",
             "delay_pct", "offline_streams", "online_streams", "ratio") {
  const double horizon = ctx.quick ? 20.0 : 100.0;
  const std::vector<double> pcts =
      ctx.quick ? std::vector<double>{0.5, 2.0, 10.0}
                : std::vector<double>{0.1, 0.2, 0.5, 1.0, 2.0, 3.0,
                                      5.0,  7.5, 10.0, 12.5, 15.0};

  struct Row {
    double off = 0.0;
    double on = 0.0;
  };
  std::vector<Row> rows(pcts.size());
  util::parallel_for(
      0, static_cast<std::int64_t>(pcts.size()),
      [&](std::int64_t i) {
        const auto idx = static_cast<std::size_t>(i);
        const double delay = pcts[idx] / 100.0;
        rows[idx].off = run_offline_optimal(delay, horizon).streams_served;
        rows[idx].on = run_delay_guaranteed(delay, horizon).streams_served;
      },
      ctx.threads);

  bench::BenchResult result;
  auto& delay_pct = result.add_series("delay_pct");
  auto& offline = result.add_series("offline_streams");
  auto& online = result.add_series("online_streams");
  auto& ratio = result.add_series("ratio");
  util::TextTable table({"delay (% media)", "off-line streams",
                         "on-line streams", "on-line/off-line"});
  for (std::size_t i = 0; i < pcts.size(); ++i) {
    delay_pct.values.push_back(pcts[i]);
    offline.values.push_back(rows[i].off);
    online.values.push_back(rows[i].on);
    ratio.values.push_back(rows[i].on / rows[i].off);
    table.add_row(util::format_fixed(pcts[i], 1), rows[i].off, rows[i].on,
                  rows[i].on / rows[i].off);
    // The paper's curves: on-line never beats off-line and stays close.
    result.ok = result.ok && rows[i].on >= rows[i].off;
  }
  result.tables.push_back(std::move(table));
  result.notes.push_back("horizon = " + util::format_fixed(horizon, 0) +
                         " media lengths");
  return result;
}
