// Hot path — lock-free post() ingest under genuinely concurrent
// producers.
//
// The ROADMAP's admission-speed item: single-core trace ingest tops out
// near ~2.8M arrivals/s (`sim_server_core_scale`); the lock-free MPSC
// ring mailboxes + batched drains are the attack on that ceiling. This
// bench drives the same Poisson/Zipf catalogue through `post()` from
// 1/2/4/8 producer threads while the driver thread runs the drain loop
// concurrently, and reports
//
//  * aggregate arrivals/s per producer count (wall clock over the
//    whole concurrent phase including finish), and
//  * p99 per-admission ns — sampled steady_clock timings around
//    individual post() calls, the published cost of the hot path.
//
// Asserted invariants (never wall-clock — CI machines vary):
//  * every producer count lands on a snapshot identical to the serial
//    ingest_trace baseline, field by field and per object — the
//    bit-identical-snapshot contract extended to the concurrent path;
//  * a deliberately tiny ring (forcing the overflow-spill path under
//    load) still lands on the identical snapshot: spilling reorders
//    nothing observable.
//
// PR-9 adds the variant matrix: the same producers=2 load through every
// hot-path mechanism combination — generic virtual dispatch vs the
// sealed slot fast path, scalar vs SIMD ledger kernels, floating vs
// core-pinned static drain scheduling — reporting per-variant
// throughput and a serial-admit burst p99 (where the devirtualized
// delivery actually shows), plus an untimed deterministic-cadence
// checkpoint pass asserting byte-identity against the generic/scalar
// serial reference.
#include "bench/registry.h"
#include "online/policy.h"
#include "sim/engine.h"
#include "util/parallel.h"
#include "util/simd.h"
#include "util/table.h"
#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace {

using namespace smerge;
using namespace smerge::sim;

constexpr double kDelay = 0.01;

/// Every 2^7th post is timed individually — cheap enough to leave on
/// (the clock calls are off the untimed posts' path) and plenty of
/// samples for a stable p99 at bench scale.
constexpr std::uint64_t kSampleMask = 127;

EngineConfig hotpath_config(const bench::BenchContext& ctx) {
  EngineConfig config;
  config.workload.process = ArrivalProcess::kPoisson;
  config.workload.objects = ctx.quick ? 32 : 1000;
  config.workload.zipf_exponent = 1.0;
  // Full mode: expected aggregate arrivals = horizon / mean_gap ~ 10.2M
  // — the sim_server_core_scale load, so throughputs are comparable.
  // Quick mode still pushes ~100k arrivals: the throughput numbers feed
  // CI's 15% perf-trend floor, so the timed region must dwarf
  // scheduler jitter (a few ms of work is 20% noise on shared runners).
  config.workload.mean_gap = ctx.quick ? 1e-4 : 9.8e-6;
  config.workload.horizon = ctx.quick ? 10.0 : 100.0;
  config.workload.seed = ctx.seed;
  config.delay = kDelay;
  return config;
}

std::vector<std::vector<double>> make_traces(const EngineConfig& config,
                                             unsigned threads) {
  const std::vector<double> weights =
      zipf_weights(config.workload.objects, config.workload.zipf_exponent);
  const auto n = static_cast<std::size_t>(config.workload.objects);
  std::vector<std::vector<double>> traces(n);
  util::parallel_for(
      0, static_cast<std::int64_t>(n),
      [&](std::int64_t i) {
        traces[static_cast<std::size_t>(i)] = generate_arrivals(
            config.workload, static_cast<Index>(i),
            weights[static_cast<std::size_t>(i)]);
      },
      threads);
  return traces;
}

struct HotpathRow {
  unsigned producers = 0;
  server::Snapshot snapshot;
  double elapsed_ms = 0.0;
  double p99_post_ns = 0.0;
};

/// Serial ingest_trace baseline — the mutex-era shape the concurrent
/// runs must reproduce byte for byte.
HotpathRow run_baseline(const EngineConfig& config,
                        const std::vector<std::vector<double>>& traces) {
  HotpathRow row;
  BatchingPolicy policy;
  auto core_cfg = core_config(config);
  core_cfg.shards = 1;
  server::ServerCore core(core_cfg, policy);
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t m = 0; m < traces.size(); ++m) {
    core.ingest_trace(static_cast<Index>(m), std::vector<double>(traces[m]));
  }
  core.finish();
  const auto end = std::chrono::steady_clock::now();
  row.elapsed_ms = std::chrono::duration<double, std::milli>(end - start).count();
  row.snapshot = core.take_snapshot();
  return row;
}

/// One hot-path mechanism combination (the PR-9 variant matrix).
struct VariantSpec {
  const char* label;
  bool fast = false;  ///< sealed slot admit vs generic virtual dispatch
  bool simd = false;  ///< vector ledger kernels vs forced scalar
  bool pin = false;   ///< core-pinned static drain pool vs floating
};

constexpr VariantSpec kVariantSpecs[] = {
    {"generic", false, false, false},
    {"fast", true, false, false},
    {"fast_simd", true, true, false},
    {"fast_simd_pin", true, true, true},
};

/// Scoped scalar-kernel override (force_scalar is process-global).
struct ScalarGuard {
  explicit ScalarGuard(bool scalar) { util::simd::force_scalar(scalar); }
  ~ScalarGuard() { util::simd::force_scalar(false); }
};

/// Concurrent run: `producers` threads publish through post() (objects
/// partitioned round-robin, so every object keeps a single producer)
/// while the caller's thread claims rings in a continuous drain loop.
HotpathRow run_posted(const EngineConfig& config,
                      const std::vector<std::vector<double>>& traces,
                      unsigned producers, Index mailbox_capacity,
                      bool fast_path = true, bool pin = false) {
  HotpathRow row;
  row.producers = producers;
  BatchingPolicy policy;
  auto core_cfg = core_config(config);
  core_cfg.shards = producers;
  core_cfg.mailbox_capacity = mailbox_capacity;
  core_cfg.fast_path = fast_path;
  core_cfg.pin_workers = pin;
  server::ServerCore core(core_cfg, policy);

  std::vector<std::vector<double>> samples(producers);
  std::atomic<unsigned> remaining{producers};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(producers);
  for (unsigned p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      std::vector<double>& mine = samples[p];
      std::uint64_t posted = 0;
      for (std::size_t m = p; m < traces.size(); m += producers) {
        const auto object = static_cast<Index>(m);
        for (const double t : traces[m]) {
          if ((++posted & kSampleMask) == 0) {
            const auto t0 = std::chrono::steady_clock::now();
            core.post(object, t);
            const auto t1 = std::chrono::steady_clock::now();
            mine.push_back(
                std::chrono::duration<double, std::nano>(t1 - t0).count());
          } else {
            core.post(object, t);
          }
        }
      }
      remaining.fetch_sub(1, std::memory_order_release);
    });
  }
  // The drain loop overlaps publication: each pass claims whatever the
  // producers have published so far. The yield keeps producers running
  // on machines with fewer cores than threads.
  while (remaining.load(std::memory_order_acquire) > 0) {
    core.drain();
    std::this_thread::yield();
  }
  for (std::thread& t : threads) t.join();
  core.drain();  // the tail published between the last pass and the joins
  core.finish();
  const auto end = std::chrono::steady_clock::now();
  row.elapsed_ms = std::chrono::duration<double, std::milli>(end - start).count();
  row.snapshot = core.take_snapshot();

  std::vector<double> all;
  for (const auto& s : samples) all.insert(all.end(), s.begin(), s.end());
  std::sort(all.begin(), all.end());
  if (!all.empty()) {
    const auto rank = static_cast<std::size_t>(
        0.99 * static_cast<double>(all.size() - 1));
    row.p99_post_ns = all[rank];
  }
  return row;
}

bool snapshots_match(const server::Snapshot& a, const server::Snapshot& b) {
  return a.total_arrivals == b.total_arrivals &&
         a.total_streams == b.total_streams &&
         a.streams_served == b.streams_served &&
         a.peak_concurrency == b.peak_concurrency &&
         a.guarantee_violations == b.guarantee_violations &&
         a.wait.mean == b.wait.mean && a.wait.max == b.wait.max &&
         a.wait.p50 == b.wait.p50 && a.wait.p95 == b.wait.p95 &&
         a.wait.p99 == b.wait.p99 && a.per_object == b.per_object;
}

/// Serial-admit burst sampling: the sealed fast path saves its virtual
/// hops at delivery time, which post() never touches — so per-admission
/// cost is measured on the live admit() path. Every 2^7th admission a
/// burst of 8 calls shares one clock pair (amortizing timer overhead
/// below the ~20ns effect being measured), and every 2^16th admission
/// issues untimed live channel queries so the SIMD ledger scans run
/// against a growing ledger mid-phase.
double admit_phase_p99(const EngineConfig& config,
                       const std::vector<std::vector<double>>& traces,
                       bool fast_path, bool pin, std::uint64_t max_arrivals,
                       const char** dispatch) {
  BatchingPolicy policy;
  auto core_cfg = core_config(config);
  core_cfg.shards = 1;
  core_cfg.fast_path = fast_path;
  core_cfg.pin_workers = pin;
  server::ServerCore core(core_cfg, policy);
  *dispatch = core.admit_dispatch();
  std::vector<double> samples;
  std::uint64_t admitted = 0;
  for (std::size_t m = 0; m < traces.size() && admitted < max_arrivals; ++m) {
    const auto object = static_cast<Index>(m);
    const std::vector<double>& trace = traces[m];
    std::size_t k = 0;
    while (k < trace.size() && admitted < max_arrivals) {
      if ((admitted & kSampleMask) == 0 && k + 8 <= trace.size()) {
        const auto t0 = std::chrono::steady_clock::now();
        for (std::size_t j = 0; j < 8; ++j) {
          (void)core.admit(object, trace[k + j]);
        }
        const auto t1 = std::chrono::steady_clock::now();
        samples.push_back(
            std::chrono::duration<double, std::nano>(t1 - t0).count() / 8.0);
        k += 8;
        admitted += 8;
      } else {
        (void)core.admit(object, trace[k]);
        ++k;
        ++admitted;
      }
      if ((admitted & 0xFFFF) == 0) {
        (void)core.peak_channels();
        (void)core.current_channels(trace[k - 1]);
      }
    }
  }
  std::sort(samples.begin(), samples.end());
  if (samples.empty()) return 0.0;
  return samples[static_cast<std::size_t>(
      0.99 * static_cast<double>(samples.size() - 1))];
}

/// The deterministic-cadence identity pass: checkpoint bytes include
/// the P2 percentile marker state, which folds in drain order — so
/// byte-compares fix the cadence (kIdentityWaves waves, drain after
/// each) and vary only the mechanism under test. The reference is the
/// serial generic/scalar/floating ingest_trace run at the same shard
/// width (the config echo serializes `shards`).
constexpr std::size_t kIdentityWaves = 4;
constexpr unsigned kIdentityShards = 2;

std::vector<std::pair<std::size_t, std::size_t>> wave_bounds(std::size_t n) {
  std::vector<std::pair<std::size_t, std::size_t>> bounds;
  for (std::size_t w = 0; w < kIdentityWaves; ++w) {
    bounds.emplace_back(w * n / kIdentityWaves, (w + 1) * n / kIdentityWaves);
  }
  return bounds;
}

std::vector<std::uint8_t> identity_reference(
    const EngineConfig& config, const std::vector<std::vector<double>>& traces) {
  const ScalarGuard guard(true);
  BatchingPolicy policy;
  auto core_cfg = core_config(config);
  core_cfg.shards = kIdentityShards;
  core_cfg.fast_path = false;
  server::ServerCore core(core_cfg, policy);
  for (std::size_t w = 0; w < kIdentityWaves; ++w) {
    for (std::size_t m = 0; m < traces.size(); ++m) {
      const auto [lo, hi] = wave_bounds(traces[m].size())[w];
      core.ingest_trace(static_cast<Index>(m),
                        {traces[m].begin() + static_cast<std::ptrdiff_t>(lo),
                         traces[m].begin() + static_cast<std::ptrdiff_t>(hi)});
    }
    core.drain();
  }
  return core.checkpoint();
}

bool identity_matches(const EngineConfig& config,
                      const std::vector<std::vector<double>>& traces,
                      const VariantSpec& v,
                      const std::vector<std::uint8_t>& reference) {
  const ScalarGuard guard(!v.simd);
  BatchingPolicy policy;
  auto core_cfg = core_config(config);
  core_cfg.shards = kIdentityShards;
  core_cfg.fast_path = v.fast;
  core_cfg.pin_workers = v.pin;
  server::ServerCore core(core_cfg, policy);
  for (std::size_t w = 0; w < kIdentityWaves; ++w) {
    for (std::size_t m = 0; m < traces.size(); ++m) {
      const auto [lo, hi] = wave_bounds(traces[m].size())[w];
      for (std::size_t k = lo; k < hi; ++k) {
        core.post(static_cast<Index>(m), traces[m][k]);
      }
    }
    core.drain();
  }
  return core.checkpoint() == reference;
}

}  // namespace

SMERGE_BENCH(sim_server_core_hotpath,
             "Hot path — lock-free MPSC post() ingest: concurrent "
             "producers vs the serial ingest_trace baseline, identical "
             "snapshots at every producer count (including a tiny ring "
             "that forces overflow spill), aggregate arrivals/s, sampled "
             "p99 per-admission ns, and the {generic, fast, fast_simd, "
             "fast_simd_pin} variant matrix with deterministic-cadence "
             "checkpoint byte-identity",
             "producers", "arrivals", "arrivals_per_s", "p99_admission_ns",
             "baseline_arrivals_per_s", "variant_arrivals_per_s",
             "variant_p99_admission_ns") {
  bench::BenchResult result;
  const EngineConfig config = hotpath_config(ctx);
  const std::vector<std::vector<double>> traces = make_traces(config, ctx.threads);

  // Quick mode is CI's perf-trend input: report each configuration's
  // best of three runs, the standard way to strip one-off scheduler
  // noise from a short timed region. Every repetition's snapshot is
  // still checked — determinism costs nothing here. Full-mode runs are
  // seconds long and stable, one repetition suffices.
  const int reps = ctx.quick ? 3 : 1;

  HotpathRow baseline = run_baseline(config, traces);
  for (int r = 1; r < reps; ++r) {
    HotpathRow again = run_baseline(config, traces);
    result.ok = result.ok && snapshots_match(again.snapshot, baseline.snapshot);
    if (again.elapsed_ms < baseline.elapsed_ms) baseline = std::move(again);
  }
  const double baseline_per_s =
      baseline.elapsed_ms > 0.0
          ? static_cast<double>(baseline.snapshot.total_arrivals) /
                (baseline.elapsed_ms / 1000.0)
          : 0.0;
  result.ok = result.ok && baseline.snapshot.guarantee_violations == 0 &&
              (ctx.quick || baseline.snapshot.total_arrivals >= 10'000'000);

  std::vector<unsigned> producer_counts{1, 2, 4, 8};
  if (ctx.quick) producer_counts = {1, 2};

  auto& producers_series = result.add_series("producers");
  auto& arrivals_series = result.add_series("arrivals");
  auto& throughput_series = result.add_series("arrivals_per_s");
  auto& p99_series = result.add_series("p99_admission_ns");
  auto& baseline_series = result.add_series("baseline_arrivals_per_s");
  util::TextTable table({"producers", "arrivals", "arrivals/s",
                         "p99 post ns", "core ms", "vs baseline"});

  for (const unsigned producers : producer_counts) {
    HotpathRow row = run_posted(config, traces, producers,
                                /*mailbox_capacity=*/0,
                                /*fast_path=*/true, ctx.pin);
    result.ok = result.ok && snapshots_match(row.snapshot, baseline.snapshot);
    for (int r = 1; r < reps; ++r) {
      HotpathRow again = run_posted(config, traces, producers,
                                    /*mailbox_capacity=*/0,
                                    /*fast_path=*/true, ctx.pin);
      result.ok =
          result.ok && snapshots_match(again.snapshot, baseline.snapshot);
      if (again.elapsed_ms < row.elapsed_ms) row = std::move(again);
    }
    const double per_s =
        row.elapsed_ms > 0.0
            ? static_cast<double>(row.snapshot.total_arrivals) /
                  (row.elapsed_ms / 1000.0)
            : 0.0;
    producers_series.values.push_back(static_cast<double>(producers));
    arrivals_series.values.push_back(
        static_cast<double>(row.snapshot.total_arrivals));
    throughput_series.values.push_back(per_s);
    p99_series.values.push_back(row.p99_post_ns);
    // One point per row (series stay aligned); the serial anchor every
    // concurrent throughput is read against.
    baseline_series.values.push_back(baseline_per_s);
    table.add_row(producers, row.snapshot.total_arrivals,
                  util::format_fixed(per_s, 0),
                  util::format_fixed(row.p99_post_ns, 0),
                  util::format_fixed(row.elapsed_ms, 0),
                  util::format_fixed(
                      baseline_per_s > 0.0 ? per_s / baseline_per_s : 0.0, 2));
  }
  result.tables.push_back(std::move(table));

  // Overflow-spill determinism: a ring far smaller than the load forces
  // the locked fallback path; the snapshot must not move.
  const HotpathRow spill =
      run_posted(config, traces, /*producers=*/2, /*mailbox_capacity=*/256);
  result.ok = result.ok && snapshots_match(spill.snapshot, baseline.snapshot);

  // --- The variant matrix ---------------------------------------------------
  // Same producers=2 load, one hot-path mechanism flipped on at a time.
  // Throughput comes from the concurrent posted run; p99 per-admission
  // ns from the serial-admit burst phase (capped in full mode — the
  // per-admission cost stabilizes long before 10M arrivals). ok asserts
  // only identity (snapshots + deterministic-cadence checkpoint bytes),
  // never wall-clock.
  const std::uint64_t admit_cap =
      ctx.quick ? UINT64_MAX : std::uint64_t{2'000'000};
  auto& variant_throughput = result.add_series("variant_arrivals_per_s");
  auto& variant_p99 = result.add_series("variant_p99_admission_ns");
  util::TextTable variant_table({"variant", "arrivals/s", "p99 admit ns",
                                 "vs generic", "dispatch", "kernel",
                                 "pinned"});
  const std::vector<std::uint8_t> identity_ref =
      identity_reference(config, traces);
  double generic_p99 = 0.0;
  for (const VariantSpec& v : kVariantSpecs) {
    const ScalarGuard guard(!v.simd);
    HotpathRow row = run_posted(config, traces, /*producers=*/2,
                                /*mailbox_capacity=*/0, v.fast, v.pin);
    result.ok = result.ok && snapshots_match(row.snapshot, baseline.snapshot);
    for (int r = 1; r < reps; ++r) {
      HotpathRow again = run_posted(config, traces, /*producers=*/2,
                                    /*mailbox_capacity=*/0, v.fast, v.pin);
      result.ok =
          result.ok && snapshots_match(again.snapshot, baseline.snapshot);
      if (again.elapsed_ms < row.elapsed_ms) row = std::move(again);
    }
    const double per_s =
        row.elapsed_ms > 0.0
            ? static_cast<double>(row.snapshot.total_arrivals) /
                  (row.elapsed_ms / 1000.0)
            : 0.0;
    const char* dispatch = "";
    const double p99 =
        admit_phase_p99(config, traces, v.fast, v.pin, admit_cap, &dispatch);
    if (std::string(v.label) == "generic") generic_p99 = p99;
    result.ok = result.ok && identity_matches(config, traces, v, identity_ref);
    variant_throughput.values.push_back(per_s);
    variant_p99.values.push_back(p99);
    const unsigned pinned =
        v.pin ? util::ThreadPool::shared_pinned().pinned_workers() : 0;
    variant_table.add_row(
        v.label, util::format_fixed(per_s, 0), util::format_fixed(p99, 0),
        util::format_fixed(generic_p99 > 0.0 ? p99 / generic_p99 : 0.0, 2),
        dispatch, v.simd ? util::simd::active_kernel() : "scalar",
        std::to_string(pinned));
  }
  result.tables.push_back(std::move(variant_table));

  result.add_metric("baseline_arrivals_per_s", baseline_per_s);
  result.notes.push_back(
      "batching policy over " + std::to_string(config.workload.objects) +
      " objects; every producer count (and the 256-slot spill ring) lands "
      "on the serial baseline's exact snapshot");
  result.notes.push_back(
      "variant matrix: every {fast, simd, pin} combination reproduces the "
      "generic/scalar reference's snapshot and deterministic-cadence "
      "checkpoint bytes");
  return result;
}
