// Complexity bench — strong scaling of the util::parallel_for sweep
// fan-out that every sweep bench in this registry rides on.
//
// A fixed grid of Eq.-5 quadratic-DP merge-cost tables (real per-point
// work, no shared state) is evaluated at 1, 2, 4, ... workers up to the
// harness --threads setting; the table reports wall-clock per sweep and
// speedup over one thread. On a multi-core host the speedup must be
// visible (this is the acceptance check for the harness's --threads
// flag); on a single core the fan-out degrades to the serial loop.
#include <algorithm>
#include <chrono>

#include "bench/registry.h"
#include "core/merge_cost.h"
#include "util/parallel.h"

namespace {

using namespace smerge;

double sweep_ms(const std::vector<Index>& grid, unsigned threads) {
  std::vector<Cost> costs(grid.size());
  const auto start = std::chrono::steady_clock::now();
  util::parallel_for(
      0, static_cast<std::int64_t>(grid.size()),
      [&](std::int64_t i) {
        const auto idx = static_cast<std::size_t>(i);
        costs[idx] = merge_cost_table_dp(grid[idx]).back();
      },
      threads);
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

SMERGE_BENCH(cpx_parallel_scaling,
             "Complexity — strong scaling of the parallel_for sweep fan-out "
             "on a grid of Eq.-5 quadratic-DP tables",
             "threads", "sweep_ms", "speedup") {
  // Enough independent quadratic DPs that the serial sweep takes tens of
  // milliseconds — room for fan-out to show, still fast in CI.
  std::vector<Index> grid;
  const Index table_n = ctx.quick ? 256 : 1024;
  const std::size_t points = ctx.quick ? 8 : 32;
  for (std::size_t i = 0; i < points; ++i) {
    grid.push_back(table_n + static_cast<Index>(i) * 16);
  }

  bench::BenchResult result;
  auto& threads_series = result.add_series("threads");
  auto& ms_series = result.add_series("sweep_ms");
  auto& speedup_series = result.add_series("speedup");
  util::TextTable table({"threads", "sweep (ms)", "speedup"});

  std::vector<unsigned> ladder{1};
  for (unsigned t = 2; t <= ctx.threads; t *= 2) ladder.push_back(t);
  // Even at --threads=1 the series keeps two points (the second rung
  // oversubscribes a single core, which is itself informative).
  if (ladder.size() == 1) ladder.push_back(2);

  sweep_ms(grid, 1);  // warm-up
  const double serial = sweep_ms(grid, 1);
  for (const unsigned t : ladder) {
    const double ms = t == 1 ? serial : sweep_ms(grid, t);
    threads_series.values.push_back(static_cast<double>(t));
    ms_series.values.push_back(ms);
    speedup_series.values.push_back(serial / ms);
    table.add_row(t, ms, serial / ms);
  }
  result.tables.push_back(std::move(table));
  result.add_metric("grid_points", static_cast<double>(grid.size()));
  result.add_metric("max_speedup",
                    *std::max_element(speedup_series.values.begin(),
                                      speedup_series.values.end()));
  result.notes.push_back("grid of " + std::to_string(grid.size()) +
                         " quadratic-DP tables (n ~ " +
                         std::to_string(table_n) +
                         "); speedup is relative to --threads=1");
  return result;
}
