// Complexity bench — the off-line algorithms.
//
// Theorem 7's claim in wall-clock form: the closed-form/r-table pipeline
// computes optimal merge costs and trees in O(n) while the Eq.-5 dynamic
// program the paper improves upon is O(n^2). A log-log fit over the
// range makes the asymptotic visible; the forest planner (Theorem 12 +
// Theorem 10) is also timed.
#include "bench/registry.h"
#include "bench/timing.h"
#include "core/full_cost.h"
#include "core/tree_builder.h"
#include "util/parallel.h"

namespace {

using namespace smerge;

}  // namespace

SMERGE_BENCH(cpx_offline,
             "Complexity — Eq.-5 quadratic DP vs the O(n) closed-form "
             "pipeline, tree construction and forest planning",
             "n", "dp_ns", "closed_form_ns", "tree_build_ns") {
  const double min_ms = ctx.quick ? 1.0 : 20.0;
  const std::vector<Index> dp_sizes =
      ctx.quick ? std::vector<Index>{64, 128, 256}
                : std::vector<Index>{64, 128, 256, 512, 1024, 2048};

  bench::BenchResult result;
  auto& ns_series = result.add_series("n");
  auto& dp_series = result.add_series("dp_ns");
  auto& cf_series = result.add_series("closed_form_ns");
  util::TextTable table({"n", "Eq.-5 DP (ns)", "closed form (ns)", "DP/closed"});
  for (const Index n : dp_sizes) {
    const double dp_ns = bench::time_ns_per_call(
        [n] { (void)merge_cost_table_dp(n); }, min_ms);
    const double cf_ns = bench::time_ns_per_call(
        [n] {
          Cost sum = 0;
          for (Index i = 1; i <= n; ++i) sum += merge_cost(i);
          (void)sum;
        },
        min_ms);
    ns_series.values.push_back(static_cast<double>(n));
    dp_series.values.push_back(dp_ns);
    cf_series.values.push_back(cf_ns);
    table.add_row(n, dp_ns, cf_ns, dp_ns / cf_ns);
  }
  result.tables.push_back(std::move(table));

  const double dp_exp = bench::fitted_exponent(ns_series.values,
                                               dp_series.values);
  const double cf_exp = bench::fitted_exponent(ns_series.values,
                                               cf_series.values);
  result.add_metric("dp_exponent", dp_exp);
  result.add_metric("closed_form_exponent", cf_exp);
  // The separation the paper proves: quadratic DP vs (near-)linear
  // closed form. Loose windows keep machine noise out of the verdict;
  // quick runs use sizes too small for a reliable fit.
  if (!ctx.quick) {
    result.ok = result.ok && dp_exp > 1.5 && cf_exp < 1.7 && dp_exp > cf_exp;
  }

  // Tree construction and the Theorem-12 forest planner at larger sizes.
  const std::vector<Index> build_sizes =
      ctx.quick ? std::vector<Index>{1 << 10, 1 << 12}
                : std::vector<Index>{1 << 10, 1 << 14, 1 << 18, 1 << 20};
  auto& build_n = result.add_series("build_n");
  auto& build_series = result.add_series("tree_build_ns");
  util::TextTable build({"n", "optimal tree build (ns)", "r-table (ns)"});
  for (const Index n : build_sizes) {
    const double tree_ns = bench::time_ns_per_call(
        [n] { (void)optimal_merge_tree(n); }, min_ms);
    const double table_ns = bench::time_ns_per_call(
        [n] { (void)last_merge_table(n); }, min_ms);
    build_n.values.push_back(static_cast<double>(n));
    build_series.values.push_back(tree_ns);
    build.add_row(n, tree_ns, table_ns);
  }
  result.tables.push_back(std::move(build));

  const double plan_ns = bench::time_ns_per_call(
      [] { (void)optimal_stream_count(987, 1'000'000); }, min_ms);
  result.add_metric("forest_plan_ns", plan_ns);
  result.notes.push_back(
      "fitted exponents: DP " + util::format_fixed(dp_exp, 2) +
      " (expect ~2), closed form " + util::format_fixed(cf_exp, 2) +
      " (expect ~1)");
  return result;
}
