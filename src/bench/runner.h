// Execution and reporting for registered benches: the engine behind the
// `smerge_bench` CLI and the registry smoke test.
#ifndef SMERGE_BENCH_RUNNER_H
#define SMERGE_BENCH_RUNNER_H

#include <string>
#include <vector>

#include "bench/registry.h"

namespace smerge::bench {

/// One completed bench execution.
struct BenchRun {
  const BenchSpec* spec = nullptr;
  BenchResult result;
  double elapsed_ms = 0.0;
  std::string error;  ///< non-empty when the bench threw; result is empty

  [[nodiscard]] bool ok() const { return error.empty() && result.ok; }
};

/// Runs one bench, timing it and capturing exceptions into `error`.
[[nodiscard]] BenchRun run_bench(const BenchSpec& spec, const BenchContext& ctx);

/// Renders runs as the stable `smerge-bench-v1` JSON document:
/// `{"schema", "quick", "threads", "benches": [{"name", "description",
/// "ok", "elapsed_ms", "series": {...}, "metrics": {...}}]}`.
[[nodiscard]] std::string to_json(const std::vector<BenchRun>& runs,
                                  const BenchContext& ctx);

/// The `smerge_bench` command line:
///   --list          print all registered benches and exit
///   --only=a,b      run a subset (comma-separated registry names)
///   --json=PATH     also write the JSON document to PATH
///   --threads=N     parallel_for fan-out width (default: all cores)
///   --quick         reduced parameters (sub-second smoke run)
/// Returns the process exit code: 0 on success, 1 when a bench fails or
/// throws, 2 on usage errors.
[[nodiscard]] int run_cli(int argc, const char* const* argv);

}  // namespace smerge::bench

#endif  // SMERGE_BENCH_RUNNER_H
