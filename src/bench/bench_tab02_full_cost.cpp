// Section 3.2 worked examples — optimal full costs and stream counts.
//
// The paper's numbers:
//   F(15, 8)  = 36 with s = 1        (Fig. 3 instance)
//   F(15, 14) = 64 with s = 2        (30 + 17 + 17)
//   L=4, n=16: s0=4, s1=5, F(4,16,4)=40, F(4,16,5)=38, F(4,16,6)=38
// plus the Theorem-12 machinery (h, F_h, s1) for each instance.
#include "bench/registry.h"
#include "core/full_cost.h"
#include "util/parallel.h"

namespace {

using namespace smerge;

}  // namespace

SMERGE_BENCH(tab02_full_cost,
             "Section 3.2 — optimal full costs F(L,n) and stream counts "
             "(Theorem 12 vs exhaustive scan vs partition DP)",
             "L", "n", "full_cost", "streams") {
  using Instance = std::pair<Index, Index>;
  const std::vector<Instance> instances =
      ctx.quick ? std::vector<Instance>{{15, 8}, {15, 14}, {4, 16}}
                : std::vector<Instance>{{15, 8}, {15, 14}, {4, 16}, {2, 9},
                                        {1, 10}, {8, 100}, {100, 1000}};

  struct Row {
    int h = 0;
    StreamPlan plan;
    Cost scan = 0;
    Cost dp = 0;
  };
  std::vector<Row> rows(instances.size());
  util::parallel_for(
      0, static_cast<std::int64_t>(instances.size()),
      [&](std::int64_t i) {
        const auto idx = static_cast<std::size_t>(i);
        const auto [L, n] = instances[idx];
        rows[idx].h = theorem12_index(L);
        rows[idx].plan = optimal_stream_count(L, n);
        rows[idx].scan = full_cost_scan(L, n);
        rows[idx].dp = full_cost_partition_dp(L, n);
      },
      ctx.threads);

  bench::BenchResult result;
  auto& ls = result.add_series("L");
  auto& ns = result.add_series("n");
  auto& costs = result.add_series("full_cost");
  auto& streams = result.add_series("streams");
  util::TextTable table({"L", "n", "h", "F_h", "s0", "s1", "s*", "F(L,n)",
                         "scan", "partition DP"});
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const auto [L, n] = instances[i];
    const Row& row = rows[i];
    result.ok = result.ok && row.plan.cost == row.scan && row.scan == row.dp;
    ls.values.push_back(static_cast<double>(L));
    ns.values.push_back(static_cast<double>(n));
    costs.values.push_back(static_cast<double>(row.plan.cost));
    streams.values.push_back(static_cast<double>(row.plan.streams));
    table.add_row(L, n, row.h, fib::fibonacci(row.h), min_streams(L, n),
                  n / fib::fibonacci(row.h), row.plan.streams, row.plan.cost,
                  row.scan, row.dp);
  }
  result.tables.push_back(std::move(table));

  // The L=4, n=16 candidate costs (paper: 40, 38, 38).
  util::TextTable cands({"s", "F(4,16,s)"});
  for (Index s = 4; s <= 6; ++s) {
    cands.add_row(s, full_cost_given_streams(4, 16, s));
  }
  result.tables.push_back(std::move(cands));
  result.notes.push_back(std::string("formula == scan == partition DP: ") +
                         (result.ok ? "yes" : "NO"));
  return result;
}
