// Complexity bench — the [6] general-arrivals baseline: the
// split-monotone banded DP vs the assumption-free O(n^3) DP. This is the
// algorithm class the paper's O(n) delay-guaranteed result improves upon
// (Section 1.1). The trace keeps every arrival inside one media length,
// so the band covers the whole table and the banded solver faces its
// dense O(n^2) worst case (cpx_general_scaling covers the narrow-band
// regime where it is near-linear).
#include "bench/registry.h"
#include "bench/timing.h"
#include "merging/optimal_general.h"

namespace {

using smerge::Index;

std::vector<double> trace(Index n) {
  // n arrivals inside one media length, so every tree window is feasible
  // and the DPs face their full asymptotic work (a trace spanning many
  // media lengths would cap the feasible window and hide the exponent).
  std::vector<double> t(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) {
    t[static_cast<std::size_t>(i)] =
        0.9 * static_cast<double>(i) / static_cast<double>(n);
  }
  return t;
}

}  // namespace

SMERGE_BENCH(cpx_general,
             "Complexity — [6] general-arrivals optimum: banded "
             "split-monotone DP (full band here, so O(n^2)) vs "
             "assumption-free O(n^3) DP",
             "n", "quadratic_ns", "cubic_ns") {
  const double min_ms = ctx.quick ? 1.0 : 20.0;
  const std::vector<Index> quad_sizes =
      ctx.quick ? std::vector<Index>{64, 128, 256}
                : std::vector<Index>{64, 128, 256, 512, 1024};
  const std::vector<Index> cubic_sizes =
      ctx.quick ? std::vector<Index>{64, 128}
                : std::vector<Index>{64, 128, 256, 512};

  smerge::bench::BenchResult result;
  auto& ns_series = result.add_series("n");
  auto& quad_series = result.add_series("quadratic_ns");
  smerge::util::TextTable quad({"n", "O(n^2) DP (ns)"});
  for (const Index n : quad_sizes) {
    const std::vector<double> arrivals = trace(n);
    const double t = smerge::bench::time_ns_per_call(
        [&arrivals] {
          (void)smerge::merging::optimal_general_cost(arrivals, 1.0);
        },
        min_ms);
    ns_series.values.push_back(static_cast<double>(n));
    quad_series.values.push_back(t);
    quad.add_row(n, t);
  }
  result.tables.push_back(std::move(quad));

  auto& cubic_n = result.add_series("cubic_n");
  auto& cubic_series = result.add_series("cubic_ns");
  smerge::util::TextTable cubic({"n", "O(n^3) DP (ns)"});
  for (const Index n : cubic_sizes) {
    const std::vector<double> arrivals = trace(n);
    const double t = smerge::bench::time_ns_per_call(
        [&arrivals] {
          (void)smerge::merging::optimal_general_cost_cubic(arrivals, 1.0);
        },
        min_ms);
    cubic_n.values.push_back(static_cast<double>(n));
    cubic_series.values.push_back(t);
    cubic.add_row(n, t);
  }
  result.tables.push_back(std::move(cubic));

  const double quad_exp =
      smerge::bench::fitted_exponent(ns_series.values, quad_series.values);
  const double cubic_exp =
      smerge::bench::fitted_exponent(cubic_n.values, cubic_series.values);
  result.add_metric("quadratic_exponent", quad_exp);
  result.add_metric("cubic_exponent", cubic_exp);
  // Quick runs use sizes too small to separate the exponents reliably.
  if (!ctx.quick) result.ok = result.ok && quad_exp < cubic_exp;

  // Forest reconstruction on top of the banded DP.
  const std::vector<double> arrivals = trace(ctx.quick ? 128 : 512);
  result.add_metric("forest_reconstruction_ns",
                    smerge::bench::time_ns_per_call(
                        [&arrivals] {
                          (void)smerge::merging::optimal_general_forest(
                              arrivals, 1.0);
                        },
                        min_ms));
  result.notes.push_back("fitted exponents: quadratic DP " +
                         smerge::util::format_fixed(quad_exp, 2) +
                         ", cubic DP " +
                         smerge::util::format_fixed(cubic_exp, 2));
  return result;
}
